#include "sim/mna_system.hpp"

#include "util/error.hpp"

namespace softfet::sim {

MnaSystem::MnaSystem(Circuit& circuit, const SimOptions& options,
                     LoadContext& context)
    : circuit_(circuit),
      options_(options),
      context_(context),
      gmin_(options.gmin),
      voltage_unknowns_(circuit.node_count() - 1) {
  if (!circuit.prepared()) {
    throw InvalidCircuitError("MnaSystem: circuit not prepared");
  }
}

std::size_t MnaSystem::size() const { return circuit_.unknown_count(); }

void MnaSystem::load(const std::vector<double>& x,
                     numeric::SparseMatrix& jacobian,
                     std::vector<double>& residual) {
  Stamper stamper(jacobian, residual);
  for (const auto& device : circuit_.devices()) {
    device->load(x, stamper, context_);
  }
  // gmin shunts keep otherwise-floating nodes (capacitor-only, gate nodes
  // in DC) numerically pinned.
  for (std::size_t i = 0; i < voltage_unknowns_; ++i) {
    const int unknown = static_cast<int>(i);
    stamper.add_residual(unknown, gmin_ * x[i]);
    stamper.add_jacobian(unknown, unknown, gmin_);
  }
}

double MnaSystem::abstol(std::size_t unknown) const {
  return unknown < voltage_unknowns_ ? options_.vabstol : options_.iabstol;
}

double MnaSystem::max_step(std::size_t unknown) const {
  return unknown < voltage_unknowns_ ? options_.v_max_step : 0.0;
}

}  // namespace softfet::sim
