#include "sim/mna_system.hpp"

#include <cmath>

#include "util/error.hpp"

namespace softfet::sim {

MnaSystem::MnaSystem(Circuit& circuit, const SimOptions& options,
                     LoadContext& context)
    : circuit_(circuit),
      options_(options),
      context_(context),
      gmin_(options.gmin),
      voltage_unknowns_(circuit.node_count() - 1) {
  if (!circuit.prepared()) {
    throw InvalidCircuitError("MnaSystem: circuit not prepared");
  }
}

std::size_t MnaSystem::size() const { return circuit_.unknown_count(); }

void MnaSystem::load(const std::vector<double>& x,
                     numeric::SparseMatrix& jacobian,
                     std::vector<double>& residual) {
  Stamper stamper(jacobian, residual);
  for (const auto& device : circuit_.devices()) {
    device->load(x, stamper, context_);
  }
  // gmin shunts keep otherwise-floating nodes (capacitor-only, gate nodes
  // in DC) numerically pinned.
  for (std::size_t i = 0; i < voltage_unknowns_; ++i) {
    const int unknown = static_cast<int>(i);
    stamper.add_residual(unknown, gmin_ * x[i]);
    stamper.add_jacobian(unknown, unknown, gmin_);
  }
}

double MnaSystem::abstol(std::size_t unknown) const {
  return unknown < voltage_unknowns_ ? options_.vabstol : options_.iabstol;
}

double MnaSystem::max_step(std::size_t unknown) const {
  return unknown < voltage_unknowns_ ? options_.v_max_step : 0.0;
}

std::string MnaSystem::unknown_label(std::size_t unknown) const {
  const auto& labels = circuit_.unknown_labels();
  if (unknown < labels.size()) return labels[unknown];
  return NonlinearSystem::unknown_label(unknown);
}

std::string MnaSystem::blame_device(const std::vector<double>& x,
                                    std::size_t unknown) const {
  const std::size_t n = circuit_.unknown_count();
  if (x.size() != n) return "";
  numeric::SparseMatrix jacobian(n);
  std::vector<double> residual(n, 0.0);
  std::string best;
  double best_magnitude = 0.0;
  for (const auto& device : circuit_.devices()) {
    jacobian.resize(n);
    std::fill(residual.begin(), residual.end(), 0.0);
    Stamper stamper(jacobian, residual);
    device->load(x, stamper, context_);
    // A device emitting NaN/Inf anywhere is the offender regardless of row.
    for (const double r : residual) {
      if (!std::isfinite(r)) return device->name();
    }
    for (std::size_t row = 0; row < n; ++row) {
      for (const auto& [col, value] : jacobian.row(row)) {
        (void)col;
        if (!std::isfinite(value)) return device->name();
      }
    }
    if (unknown < n && std::fabs(residual[unknown]) > best_magnitude) {
      best_magnitude = std::fabs(residual[unknown]);
      best = device->name();
    }
  }
  return best;
}

}  // namespace softfet::sim
