// AC small-signal analysis: complex MNA assembled at the DC operating
// point, solved per frequency point.
#pragma once

#include <complex>
#include <string>
#include <vector>

#include "numeric/complex_lu.hpp"
#include "sim/circuit.hpp"
#include "sim/options.hpp"

namespace softfet::sim {

/// Assembly target for device AC stamps: direct A·x = b (AC is linear, so
/// there is no residual form; constants go to the right-hand side).
class AcStamper {
 public:
  AcStamper(numeric::ComplexMatrix& matrix, std::vector<numeric::Complex>& rhs)
      : matrix_(matrix), rhs_(rhs) {}

  AcStamper(const AcStamper&) = delete;
  AcStamper& operator=(const AcStamper&) = delete;

  void add_matrix(int row, int col, numeric::Complex value) {
    if (row == kGround || col == kGround) return;
    matrix_(static_cast<std::size_t>(row), static_cast<std::size_t>(col)) +=
        value;
  }

  void add_rhs(int row, numeric::Complex value) {
    if (row == kGround) return;
    rhs_[static_cast<std::size_t>(row)] += value;
  }

  /// Two-terminal admittance y between unknowns a and b.
  void add_admittance(int a, int b, numeric::Complex y) {
    add_matrix(a, a, y);
    add_matrix(b, b, y);
    add_matrix(a, b, -y);
    add_matrix(b, a, -y);
  }

 private:
  numeric::ComplexMatrix& matrix_;
  std::vector<numeric::Complex>& rhs_;
};

/// AC sweep result: complex solution per unknown per frequency.
class AcResult {
 public:
  AcResult(std::vector<std::string> names, std::vector<double> freq)
      : names_(std::move(names)), freq_(std::move(freq)),
        columns_(names_.size()) {}

  [[nodiscard]] const std::vector<double>& freq() const noexcept {
    return freq_;
  }
  [[nodiscard]] const std::vector<std::string>& names() const noexcept {
    return names_;
  }
  [[nodiscard]] const std::vector<numeric::Complex>& signal(
      const std::string& name) const;
  /// |x(f)| for one signal.
  [[nodiscard]] std::vector<double> magnitude(const std::string& name) const;
  /// Phase in degrees.
  [[nodiscard]] std::vector<double> phase_deg(const std::string& name) const;

  void append_point(const std::vector<numeric::Complex>& x);

 private:
  std::vector<std::string> names_;
  std::vector<double> freq_;
  std::vector<std::vector<numeric::Complex>> columns_;
};

/// Linearize at the DC operating point and solve at each frequency [Hz].
/// AC magnitudes come from sources' SourceSpec ac values.
[[nodiscard]] AcResult ac_sweep(Circuit& circuit,
                                const std::vector<double>& frequencies,
                                const SimOptions& options = {});

/// Log-spaced frequency grid: `per_decade` points from f_start to f_stop.
[[nodiscard]] std::vector<double> decade_frequencies(double f_start,
                                                     double f_stop,
                                                     int per_decade);

}  // namespace softfet::sim
