#include "sim/result.hpp"

#include "util/error.hpp"
#include "util/strings.hpp"

namespace softfet::sim {

SignalTable::SignalTable(std::vector<std::string> names)
    : names_(std::move(names)), columns_(names_.size()) {}

bool SignalTable::has(const std::string& name) const {
  for (const auto& n : names_) {
    if (util::iequals(n, name)) return true;
  }
  return false;
}

const std::vector<double>& SignalTable::signal(const std::string& name) const {
  for (std::size_t i = 0; i < names_.size(); ++i) {
    if (util::iequals(names_[i], name)) return columns_[i];
  }
  std::string candidates;
  for (const auto& n : names_) {
    if (!candidates.empty()) candidates += ", ";
    candidates += n;
    if (candidates.size() > 200) {
      candidates += ", ...";
      break;
    }
  }
  throw Error("SignalTable: no signal '" + name + "' (have: " + candidates +
              ")");
}

void SignalTable::append_row(const std::vector<double>& row) {
  if (row.size() != names_.size()) {
    throw Error("SignalTable: row width mismatch");
  }
  for (std::size_t i = 0; i < row.size(); ++i) columns_[i].push_back(row[i]);
}

double OpResult::voltage(const std::string& node) const {
  return unknown("v(" + util::to_lower(node) + ")");
}

double OpResult::unknown(const std::string& label) const {
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (util::iequals(labels[i], label)) return x[i];
  }
  throw Error("OpResult: no unknown labelled '" + label + "'");
}

}  // namespace softfet::sim
