// Bridges a Circuit to the generic Newton solver: gathers device stamps
// into the MNA Jacobian/residual and supplies per-unknown tolerances.
#pragma once

#include <vector>

#include "numeric/newton.hpp"
#include "sim/circuit.hpp"
#include "sim/options.hpp"

namespace softfet::sim {

class MnaSystem final : public numeric::NonlinearSystem {
 public:
  /// `circuit` must be prepared; `context` is shared with the analysis
  /// driver which mutates time/dt/method between solves.
  MnaSystem(Circuit& circuit, const SimOptions& options, LoadContext& context);

  [[nodiscard]] std::size_t size() const override;
  void load(const std::vector<double>& x, numeric::SparseMatrix& jacobian,
            std::vector<double>& residual) override;
  [[nodiscard]] double abstol(std::size_t unknown) const override;
  [[nodiscard]] double max_step(std::size_t unknown) const override;
  [[nodiscard]] std::string unknown_label(std::size_t unknown) const override;

  /// Failure-path attribution: re-stamp each device in isolation at `x` and
  /// name the one contributing a non-finite entry anywhere, or failing that
  /// the largest-magnitude residual contribution to row `unknown`. Returns
  /// "" when nothing stamps that row (e.g. a structurally empty equation).
  [[nodiscard]] std::string blame_device(const std::vector<double>& x,
                                         std::size_t unknown) const;

  /// Shunt conductance to ground on every node (homotopy knob).
  void set_gmin(double gmin) noexcept { gmin_ = gmin; }
  [[nodiscard]] double gmin() const noexcept { return gmin_; }

 private:
  Circuit& circuit_;
  const SimOptions& options_;
  LoadContext& context_;
  double gmin_;
  std::size_t voltage_unknowns_;
};

}  // namespace softfet::sim
