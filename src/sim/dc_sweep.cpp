// DC sweep with solution and quasistatic-state continuation.
#include "sim/analyses.hpp"
#include "sim/detail.hpp"
#include "util/error.hpp"

namespace softfet::sim {

SweepResult dc_sweep(Circuit& circuit, const std::string& source_name,
                     const std::vector<double>& values,
                     const SimOptions& options) {
  circuit.prepare();
  Device* device = circuit.find_device(source_name);
  if (device == nullptr) {
    throw InvalidCircuitError("dc_sweep: no device named '" + source_name +
                              "'");
  }
  auto* settable = dynamic_cast<DcSettable*>(device);
  if (settable == nullptr) {
    throw InvalidCircuitError("dc_sweep: device '" + source_name +
                              "' is not a sweepable source");
  }

  SweepResult result;
  result.table = SignalTable(detail::signal_names(circuit));
  LoadContext ctx;
  // The sweep re-solves the same circuit at every bias point; one solver
  // keeps the factorization structure cached across the whole sweep.
  numeric::LinearSolver solver(options.solver_config());
  std::vector<double> x(circuit.unknown_count(), 0.0);

  for (const double value : values) {
    settable->set_dc(value);
    detail::solve_dc(circuit, options, ctx, x, &solver);

    // Hysteretic devices (PTM) may flip phase at this bias; iterate until
    // the quasistatic state is self-consistent.
    constexpr int kMaxStateIterations = 20;
    for (int i = 0; i < kMaxStateIterations; ++i) {
      bool changed = false;
      for (const auto& dev : circuit.devices()) {
        changed = dev->update_quasistatic_state(x) || changed;
      }
      if (!changed) break;
      detail::solve_dc(circuit, options, ctx, x, &solver);
    }

    for (const auto& dev : circuit.devices()) dev->init_state(x);
    result.axis.push_back(value);
    result.table.append_row(detail::sample_row(circuit, x));
  }
  return result;
}

}  // namespace softfet::sim
