// MNA stamping interface handed to devices during Newton loads.
//
// Unknown indexing: node unknowns first (ground is index kGround = -1 and is
// never stamped), then branch-current unknowns appended by devices at setup.
// The residual convention is Kirchhoff current law written as
// "sum of currents *leaving* each node = 0"; devices add their leaving
// current to the residual and dI/dV terms to the Jacobian.
//
// Two Jacobian backends share one Stamper front end:
//  - the classic map-backed SparseMatrix (general path);
//  - a FlatJacobian slot array for the batched lockstep engine, which
//    records the (row, col) sequence of the first load and replays it as
//    straight array accumulation afterwards. Device stamp sequences are
//    value-independent for a fixed analysis mode, so the replay tape is
//    stable; a mismatch (a device changing its stamp pattern mid-run) is
//    flagged so the caller can fall back to the scalar path.
//
// Bitwise contract: for a given load, both backends accumulate each (row,
// col) entry in identical stamp-call order, so the per-entry sums — and any
// dense scatter of them — are bitwise identical.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "numeric/sparse_matrix.hpp"

namespace softfet::sim {

/// Sentinel unknown index for the ground node.
inline constexpr int kGround = -1;

/// Flat Jacobian value store with a record/replay stamp tape. One unique
/// (row, col) pattern entry owns one value slot; repeated stamps of the
/// same entry accumulate in call order exactly like the map backend.
class FlatJacobian {
 public:
  struct Slot {
    std::int32_t row = 0;
    std::int32_t col = 0;
  };

  /// Start over for an n-unknown system: drops the tape and pattern.
  void reset(std::size_t n) {
    n_ = n;
    building_ = true;
    mismatch_ = false;
    cursor_ = 0;
    tape_.clear();
    slots_.clear();
    values_.clear();
    index_.clear();
  }

  [[nodiscard]] std::size_t size() const noexcept { return n_; }

  /// Begin one load. Restarts the recording from scratch so a
  /// failed first load (non-finite residual -> step retry) cannot leave a
  /// half-recorded tape that the retry would double-append to.
  void begin_load() {
    cursor_ = 0;
    mismatch_ = false;
    if (building_) {
      tape_.clear();
      slots_.clear();
      values_.clear();
      index_.clear();
    } else {
      std::fill(values_.begin(), values_.end(), 0.0);
    }
  }

  /// Accumulate `value` at (row, col). The first load records the tape;
  /// subsequent loads replay it (two array reads and one add).
  void add(int row, int col, double value) {
    if (!building_) {
      if (cursor_ >= tape_.size()) {
        mismatch_ = true;
        return;
      }
      const Tape& t = tape_[cursor_];
      if (t.row != row || t.col != col) {
        mismatch_ = true;
        return;
      }
      values_[t.slot] += value;
      ++cursor_;
      return;
    }
    const auto [it, inserted] =
        index_.try_emplace({row, col}, static_cast<std::uint32_t>(slots_.size()));
    if (inserted) {
      slots_.push_back(
          {static_cast<std::int32_t>(row), static_cast<std::int32_t>(col)});
      values_.push_back(0.0);
    }
    tape_.push_back({static_cast<std::int32_t>(row),
                     static_cast<std::int32_t>(col), it->second});
    values_[it->second] += value;
  }

  /// Finish one load. Returns false when the stamp sequence diverged from
  /// the recorded tape (caller must abandon the flat path for this system).
  [[nodiscard]] bool end_load() {
    if (building_) {
      building_ = false;
      index_.clear();
      return true;
    }
    return !mismatch_ && cursor_ == tape_.size();
  }

  /// Pattern entries (one per unique (row, col)) and their current values.
  [[nodiscard]] const std::vector<Slot>& slots() const noexcept {
    return slots_;
  }
  [[nodiscard]] const std::vector<double>& values() const noexcept {
    return values_;
  }

 private:
  struct Tape {
    std::int32_t row = 0;
    std::int32_t col = 0;
    std::uint32_t slot = 0;
  };

  std::size_t n_ = 0;
  bool building_ = true;
  bool mismatch_ = false;
  std::size_t cursor_ = 0;
  std::vector<Tape> tape_;
  std::vector<Slot> slots_;
  std::vector<double> values_;
  std::map<std::pair<int, int>, std::uint32_t> index_;  // build phase only
};

class Stamper {
 public:
  Stamper(numeric::SparseMatrix& jacobian, std::vector<double>& residual)
      : jacobian_(&jacobian), residual_(residual) {}

  /// Flat-backend stamper for the batched engine.
  Stamper(FlatJacobian& flat, std::vector<double>& residual)
      : flat_(&flat), residual_(residual) {}

  Stamper(const Stamper&) = delete;
  Stamper& operator=(const Stamper&) = delete;

  /// Add `current` to the KCL residual of unknown `row` (ignored for ground).
  void add_residual(int row, double current) {
    if (row == kGround) return;
    residual_[static_cast<std::size_t>(row)] += current;
  }

  /// Add dF(row)/dx(col) to the Jacobian (ignored if either is ground).
  void add_jacobian(int row, int col, double value) {
    if (row == kGround || col == kGround) return;
    if (jacobian_ != nullptr) {
      jacobian_->add(static_cast<std::size_t>(row),
                     static_cast<std::size_t>(col), value);
    } else {
      flat_->add(row, col, value);
    }
  }

  /// Stamp a linear conductance `g` between unknowns `a` and `b` carrying
  /// current g*(va - vb): both residual and Jacobian entries.
  void add_conductance(int a, int b, double g, double va, double vb) {
    const double i = g * (va - vb);
    add_residual(a, i);
    add_residual(b, -i);
    add_jacobian(a, a, g);
    add_jacobian(b, b, g);
    add_jacobian(a, b, -g);
    add_jacobian(b, a, -g);
  }

 private:
  numeric::SparseMatrix* jacobian_ = nullptr;
  FlatJacobian* flat_ = nullptr;
  std::vector<double>& residual_;
};

}  // namespace softfet::sim
