// MNA stamping interface handed to devices during Newton loads.
//
// Unknown indexing: node unknowns first (ground is index kGround = -1 and is
// never stamped), then branch-current unknowns appended by devices at setup.
// The residual convention is Kirchhoff current law written as
// "sum of currents *leaving* each node = 0"; devices add their leaving
// current to the residual and dI/dV terms to the Jacobian.
#pragma once

#include <vector>

#include "numeric/sparse_matrix.hpp"

namespace softfet::sim {

/// Sentinel unknown index for the ground node.
inline constexpr int kGround = -1;

class Stamper {
 public:
  Stamper(numeric::SparseMatrix& jacobian, std::vector<double>& residual)
      : jacobian_(jacobian), residual_(residual) {}

  Stamper(const Stamper&) = delete;
  Stamper& operator=(const Stamper&) = delete;

  /// Add `current` to the KCL residual of unknown `row` (ignored for ground).
  void add_residual(int row, double current) {
    if (row == kGround) return;
    residual_[static_cast<std::size_t>(row)] += current;
  }

  /// Add dF(row)/dx(col) to the Jacobian (ignored if either is ground).
  void add_jacobian(int row, int col, double value) {
    if (row == kGround || col == kGround) return;
    jacobian_.add(static_cast<std::size_t>(row),
                  static_cast<std::size_t>(col), value);
  }

  /// Stamp a linear conductance `g` between unknowns `a` and `b` carrying
  /// current g*(va - vb): both residual and Jacobian entries.
  void add_conductance(int a, int b, double g, double va, double vb) {
    const double i = g * (va - vb);
    add_residual(a, i);
    add_residual(b, -i);
    add_jacobian(a, a, g);
    add_jacobian(b, b, g);
    add_jacobian(a, b, -g);
    add_jacobian(b, a, -g);
  }

 private:
  numeric::SparseMatrix& jacobian_;
  std::vector<double>& residual_;
};

}  // namespace softfet::sim
