// Charge-based companion model for capacitive elements.
//
// A dynamic element provides its charge q(v); the companion turns the charge
// into a branch current for the active integration method:
//   BE:   i_n = (q_n - q_{n-1}) / dt
//   TRAP: i_n = 2 (q_n - q_{n-1}) / dt - i_{n-1}
// and the conductance contribution is d(i)/d(v) = scale * dq/dv.
#pragma once

#include "sim/device.hpp"

namespace softfet::sim {

struct CompanionCap {
  double q_prev = 0.0;
  double i_prev = 0.0;

  [[nodiscard]] static double scale(const LoadContext& ctx) noexcept {
    return (ctx.method == IntegrationMethod::kTrapezoidal) ? 2.0 / ctx.dt
                                                           : 1.0 / ctx.dt;
  }

  /// Branch current for candidate charge `q` within the step in `ctx`.
  [[nodiscard]] double current(double q, const LoadContext& ctx) const noexcept {
    double i = scale(ctx) * (q - q_prev);
    if (ctx.method == IntegrationMethod::kTrapezoidal) i -= i_prev;
    return i;
  }

  /// Commit state at the accepted end-of-step charge.
  void accept(double q, const LoadContext& ctx) noexcept {
    i_prev = current(q, ctx);
    q_prev = q;
  }

  /// Initialize from the DC operating point (no current flowing).
  void init(double q) noexcept {
    q_prev = q;
    i_prev = 0.0;
  }
};

}  // namespace softfet::sim
