// Simulator tolerances and analysis controls (SPICE-style .options).
#pragma once

#include <cstddef>
#include <memory>

#include "numeric/linear_solver.hpp"
#include "util/budget.hpp"

namespace softfet::sim {

/// Floating-point reproducibility contract of a run.
enum class Determinism {
  /// Every result is bit-for-bit identical to the scalar reference engine.
  /// Batched lanes may share factor/solve structure but device model math
  /// stays scalar, capping the batched speedup (the documented ≈2.8×
  /// Amdahl ceiling of EXPERIMENTS.md).
  kBitwise,
  /// Device models may evaluate across lanes with the SIMD vecmath kernels
  /// (numeric/vecmath.hpp). Results agree with the scalar engine only to
  /// the kernels' documented ULP bounds — still deterministic for a given
  /// binary and lane-independent (the kernels are elementwise), but not
  /// bitwise-equal to kBitwise runs. Checkpoints are tagged with the mode
  /// so resumes never silently mix rounding regimes.
  kRelaxedUlp,
};

[[nodiscard]] constexpr const char* to_string(Determinism mode) noexcept {
  return mode == Determinism::kRelaxedUlp ? "relaxed" : "bitwise";
}

struct SimOptions {
  // --- Newton convergence ---------------------------------------------
  double reltol = 1e-3;    ///< relative dx tolerance
  double vabstol = 1e-6;   ///< absolute tolerance for node voltages [V]
  double iabstol = 1e-12;  ///< absolute tolerance for branch currents [A]
  int newton_max_iter = 150;
  double v_max_step = 0.5;  ///< Newton dv clamp for node voltages [V]

  // --- Conductance regularization --------------------------------------
  double gmin = 1e-12;  ///< node-to-ground shunt conductance [S]

  // --- DC operating point homotopy --------------------------------------
  int gmin_steps = 10;    ///< decades of gmin stepping before giving up
  int source_steps = 20;  ///< source-stepping points in the fallback

  // --- Transient --------------------------------------------------------
  double dtmin = 1e-18;      ///< smallest step before declaring failure [s]
  double dtmax = 0.0;        ///< largest step; 0 selects tstop/200
  double dt_initial = 0.0;   ///< first step; 0 selects tstop/1e6
  double lte_reltol = 5e-3;  ///< local-error target relative to signal swing
  double dt_grow = 1.6;      ///< max step growth per accepted step
  double dt_shrink = 0.25;   ///< shrink factor on Newton failure
  std::size_t max_steps = 20'000'000;
  bool use_trapezoidal = true;  ///< false = backward Euler everywhere

  // --- Transient recovery ladder ----------------------------------------
  /// After this many consecutive Newton failures at one step the engine
  /// escalates beyond dt shrinking: predictor reset, transient gmin ramp,
  /// then per-step source ramping (each attempt recorded in the result's
  /// diagnostics). The ladder also runs once more at the minimum timestep
  /// before the run gives up. <= 0 disables escalation (shrink-only).
  int recovery_escalate_after = 6;
  /// Starting shunt conductance of the transient gmin-ramp rung [S].
  double recovery_gmin_start = 1e-3;
  /// Continuation points of the per-step source-ramp rung.
  int recovery_source_steps = 4;

  // --- Linear solver ----------------------------------------------------
  numeric::SolverKind solver = numeric::SolverKind::kAuto;
  /// Direct vs. preconditioned-iterative strategy. kDirect (the default)
  /// keeps every result bitwise identical to the historical behavior;
  /// kIterative answers solves with BiCGSTAB preconditioned by the last
  /// cached LU and only refactors on convergence failure; kAuto starts
  /// direct and flips to iterative when an analysis reports explosive
  /// fill-in (see numeric::LinearSolverConfig).
  numeric::SolverPolicy solver_policy = numeric::SolverPolicy::kDirect;
  /// Fill-reducing ordering ahead of the sparse symbolic phase. kAuto
  /// applies AMD at or above SparseLu::kAutoOrderingThreshold unknowns, so
  /// small circuits keep their natural order bit-for-bit.
  numeric::OrderingKind solver_ordering = numeric::OrderingKind::kAuto;
  /// Shared AMD-permutation memo attached to every LinearSolver this run
  /// creates (null = compute per solver). The simulation service points
  /// runs of one cached netlist at one OrderingCache so repeat requests
  /// skip the symbolic ordering work; results are bitwise unchanged.
  std::shared_ptr<numeric::OrderingCache> ordering_cache;

  /// Facade configuration handed to every LinearSolver this run creates.
  [[nodiscard]] numeric::LinearSolverConfig solver_config() const {
    numeric::LinearSolverConfig config;
    config.kind = solver;
    config.policy = solver_policy;
    config.ordering = solver_ordering;
    config.ordering_cache = ordering_cache;
    return config;
  }

  // --- Reproducibility --------------------------------------------------
  /// Floating-point contract (see Determinism above). kBitwise keeps every
  /// analysis bit-for-bit equal to the scalar reference engine; kRelaxedUlp
  /// lets the batched Monte-Carlo engine evaluate device models across
  /// lanes with SIMD kernels, trading ULP-level agreement for throughput
  /// beyond the bitwise Amdahl ceiling.
  Determinism determinism = Determinism::kBitwise;

  // --- Run budget -------------------------------------------------------
  /// Wall-clock / step / iteration limits plus an optional cancel token.
  /// Default-constructed = unlimited. Each analysis arms its own
  /// util::BudgetTimer from this spec at entry; transients that trip it
  /// return a partial result flagged `truncated` instead of throwing.
  util::RunBudget budget;
};

}  // namespace softfet::sim
