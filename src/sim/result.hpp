// Analysis result containers: a generic signal table plus per-analysis
// wrappers (operating point, DC sweep, transient).
#pragma once

#include <string>
#include <vector>

namespace softfet::sim {

/// Column-oriented table of named signals sampled over a common axis
/// (time for transients, the swept value for DC sweeps).
class SignalTable {
 public:
  SignalTable() = default;
  explicit SignalTable(std::vector<std::string> names);

  [[nodiscard]] const std::vector<std::string>& names() const noexcept {
    return names_;
  }
  [[nodiscard]] bool has(const std::string& name) const;

  /// Samples of one signal; throws softfet::Error for unknown names
  /// (listing close candidates).
  [[nodiscard]] const std::vector<double>& signal(const std::string& name) const;

  /// Append one sample row (size must equal names().size()).
  void append_row(const std::vector<double>& row);

  [[nodiscard]] std::size_t rows() const noexcept {
    return columns_.empty() ? 0 : columns_.front().size();
  }
  [[nodiscard]] std::size_t columns() const noexcept { return names_.size(); }

 private:
  std::vector<std::string> names_;
  std::vector<std::vector<double>> columns_;
};

/// DC operating point.
struct OpResult {
  std::vector<double> x;                 ///< raw unknown vector
  std::vector<std::string> labels;       ///< unknown labels ("v(out)", ...)
  int iterations = 0;
  /// Convenience: value of a labelled unknown, e.g. voltage("out").
  [[nodiscard]] double voltage(const std::string& node) const;
  [[nodiscard]] double unknown(const std::string& label) const;
};

/// DC sweep: `axis` holds the swept values.
struct SweepResult {
  std::vector<double> axis;
  SignalTable table;
};

/// Transient: `time` holds accepted step times (non-uniform).
struct TranResult {
  std::vector<double> time;
  SignalTable table;
  std::size_t accepted_steps = 0;
  std::size_t rejected_steps = 0;
  std::size_t newton_iterations = 0;
  std::size_t event_count = 0;  ///< discrete device events (PTM transitions)
};

}  // namespace softfet::sim
