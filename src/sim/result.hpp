// Analysis result containers: a generic signal table plus per-analysis
// wrappers (operating point, DC sweep, transient).
#pragma once

#include <string>
#include <vector>

#include "util/budget.hpp"
#include "util/error.hpp"

namespace softfet::sim {

/// Column-oriented table of named signals sampled over a common axis
/// (time for transients, the swept value for DC sweeps).
class SignalTable {
 public:
  SignalTable() = default;
  explicit SignalTable(std::vector<std::string> names);

  [[nodiscard]] const std::vector<std::string>& names() const noexcept {
    return names_;
  }
  [[nodiscard]] bool has(const std::string& name) const;

  /// Samples of one signal; throws softfet::Error for unknown names
  /// (listing close candidates).
  [[nodiscard]] const std::vector<double>& signal(const std::string& name) const;

  /// Append one sample row (size must equal names().size()).
  void append_row(const std::vector<double>& row);

  [[nodiscard]] std::size_t rows() const noexcept {
    return columns_.empty() ? 0 : columns_.front().size();
  }
  [[nodiscard]] std::size_t columns() const noexcept { return names_.size(); }

 private:
  std::vector<std::string> names_;
  std::vector<std::vector<double>> columns_;
};

/// DC operating point.
struct OpResult {
  std::vector<double> x;                 ///< raw unknown vector
  std::vector<std::string> labels;       ///< unknown labels ("v(out)", ...)
  int iterations = 0;
  /// Homotopy strategies the solve had to escalate through (direct Newton,
  /// gmin stepping, source stepping); empty attempts = clean direct solve.
  SolverDiagnostics diagnostics;
  /// Convenience: value of a labelled unknown, e.g. voltage("out").
  [[nodiscard]] double voltage(const std::string& node) const;
  [[nodiscard]] double unknown(const std::string& label) const;
};

/// DC sweep: `axis` holds the swept values.
struct SweepResult {
  std::vector<double> axis;
  SignalTable table;
};

/// Transient: `time` holds accepted step times (non-uniform).
struct TranResult {
  std::vector<double> time;
  SignalTable table;
  std::size_t accepted_steps = 0;
  std::size_t rejected_steps = 0;
  std::size_t newton_iterations = 0;
  std::size_t event_count = 0;  ///< discrete device events (PTM transitions)
  /// Steps accepted only thanks to an escalated recovery rung (predictor
  /// reset, gmin ramp, source ramp) — dt shrinks alone don't count.
  std::size_t recovered_steps = 0;
  /// Recovery-attempt log and last-failure context (populated even when the
  /// run ultimately succeeds; attempts empty = no Newton trouble at all).
  SolverDiagnostics diagnostics;
  /// True when the run stopped early because SimOptions::budget tripped (or
  /// a cancel was requested). `time`/`table` then hold the partial waveform
  /// up to the stop; `stop_reason` and `diagnostics.failure` say why.
  bool truncated = false;
  util::BudgetStop stop_reason = util::BudgetStop::kNone;
};

}  // namespace softfet::sim
