// Analysis entry points: DC operating point, DC sweep, transient.
#pragma once

#include <string>
#include <vector>

#include "sim/circuit.hpp"
#include "sim/options.hpp"
#include "sim/result.hpp"

namespace softfet::sim {

/// Interface for devices whose DC value a sweep can set (voltage/current
/// sources implement this).
class DcSettable {
 public:
  virtual ~DcSettable() = default;
  virtual void set_dc(double value) = 0;
};

/// Solve the DC operating point (capacitors open, inductors short, sources
/// at their t = 0 values). Falls back to gmin stepping then source stepping.
/// Throws softfet::ConvergenceError if all strategies fail.
[[nodiscard]] OpResult dc_operating_point(Circuit& circuit,
                                          const SimOptions& options = {});

/// Sweep the DC value of the named source over `values`, carrying the
/// solution and quasistatic device state (PTM phase) from point to point —
/// hysteresis loops emerge when `values` goes up then down.
[[nodiscard]] SweepResult dc_sweep(Circuit& circuit,
                                   const std::string& source_name,
                                   const std::vector<double>& values,
                                   const SimOptions& options = {});

/// Adaptive-timestep transient from t = 0 to `tstop`, starting from the DC
/// operating point. Records every accepted step: all unknowns plus device
/// probes.
[[nodiscard]] TranResult run_transient(Circuit& circuit, double tstop,
                                       const SimOptions& options = {});

}  // namespace softfet::sim
