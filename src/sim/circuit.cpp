#include "sim/circuit.hpp"

#include "util/error.hpp"
#include "util/strings.hpp"

namespace softfet::sim {

namespace {
[[nodiscard]] std::string canonical(const std::string& name) {
  std::string n = util::to_lower(util::trim(name));
  if (n == "gnd" || n == "vss!" || n == "ground") return "0";
  return n;
}
}  // namespace

Circuit::Circuit() {
  node_names_.push_back("0");
  node_index_.emplace("0", kGroundNode);
}

NodeId Circuit::node(const std::string& name) {
  const std::string key = canonical(name);
  if (key.empty()) throw InvalidCircuitError("empty node name");
  const auto it = node_index_.find(key);
  if (it != node_index_.end()) return it->second;
  const NodeId id = static_cast<NodeId>(node_names_.size());
  node_names_.push_back(key);
  node_index_.emplace(key, id);
  prepared_ = false;
  return id;
}

NodeId Circuit::find_node(const std::string& name) const {
  const auto it = node_index_.find(canonical(name));
  if (it == node_index_.end()) {
    throw InvalidCircuitError("unknown node: '" + name + "'");
  }
  return it->second;
}

bool Circuit::has_node(const std::string& name) const {
  return node_index_.find(canonical(name)) != node_index_.end();
}

const std::string& Circuit::node_name(NodeId id) const {
  return node_names_.at(static_cast<std::size_t>(id));
}

Device* Circuit::find_device(const std::string& name) const {
  for (const auto& device : devices_) {
    if (util::iequals(device->name(), name)) return device.get();
  }
  return nullptr;
}

int Circuit::node_unknown(NodeId id) const {
  if (id == kGroundNode) return kGround;
  return id - 1;
}

int Circuit::claim_branch_unknown(const std::string& label) {
  const int index =
      static_cast<int>(node_names_.size() - 1 + branch_count_);
  ++branch_count_;
  unknown_labels_.push_back(label);
  return index;
}

void Circuit::prepare() {
  if (prepared_) return;
  // Rebuild unknown labels: node voltages first, then branch labels are
  // appended by device setup() calls via claim_branch_unknown().
  branch_count_ = 0;
  unknown_labels_.clear();
  unknown_labels_.reserve(node_names_.size() - 1);
  for (std::size_t i = 1; i < node_names_.size(); ++i) {
    unknown_labels_.push_back("v(" + node_names_[i] + ")");
  }
  for (const auto& device : devices_) device->setup(*this);
  prepared_ = true;
}

std::size_t Circuit::unknown_count() const {
  return node_names_.size() - 1 + branch_count_;
}

}  // namespace softfet::sim
