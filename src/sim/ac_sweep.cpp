#include "sim/ac.hpp"

#include <cmath>
#include <numbers>

#include "sim/analyses.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace softfet::sim {

// Default Device::load_ac: no AC contribution. Every conducting element
// overrides this; leaving it virtual-with-default keeps exotic user devices
// compiling until they opt into AC.
void Device::load_ac(const std::vector<double>& x_op, AcStamper& ac,
                     double omega) {
  (void)x_op;
  (void)ac;
  (void)omega;
}

const std::vector<numeric::Complex>& AcResult::signal(
    const std::string& name) const {
  for (std::size_t i = 0; i < names_.size(); ++i) {
    if (util::iequals(names_[i], name)) return columns_[i];
  }
  throw Error("AcResult: no signal '" + name + "'");
}

std::vector<double> AcResult::magnitude(const std::string& name) const {
  const auto& column = signal(name);
  std::vector<double> out;
  out.reserve(column.size());
  for (const auto& v : column) out.push_back(std::abs(v));
  return out;
}

std::vector<double> AcResult::phase_deg(const std::string& name) const {
  const auto& column = signal(name);
  std::vector<double> out;
  out.reserve(column.size());
  for (const auto& v : column) {
    out.push_back(std::arg(v) * 180.0 / std::numbers::pi);
  }
  return out;
}

void AcResult::append_point(const std::vector<numeric::Complex>& x) {
  if (x.size() != columns_.size()) throw Error("AcResult: size mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) columns_[i].push_back(x[i]);
}

std::vector<double> decade_frequencies(double f_start, double f_stop,
                                       int per_decade) {
  if (!(f_start > 0.0) || !(f_stop > f_start) || per_decade < 1) {
    throw Error("decade_frequencies: need 0 < f_start < f_stop, points >= 1");
  }
  std::vector<double> freqs;
  const double step = 1.0 / per_decade;
  for (double e = std::log10(f_start);
       e <= std::log10(f_stop) + 1e-12; e += step) {
    freqs.push_back(std::pow(10.0, e));
  }
  return freqs;
}

AcResult ac_sweep(Circuit& circuit, const std::vector<double>& frequencies,
                  const SimOptions& options) {
  circuit.prepare();
  const OpResult op = dc_operating_point(circuit, options);

  const std::size_t n = circuit.unknown_count();
  const std::size_t voltage_unknowns = circuit.node_count() - 1;
  AcResult result(circuit.unknown_labels(), frequencies);

  numeric::ComplexMatrix matrix(n, n);
  std::vector<numeric::Complex> rhs(n);
  numeric::ComplexLu lu;  // reused: factor() recycles its storage per point
  for (const double f : frequencies) {
    if (!(f >= 0.0)) throw Error("ac_sweep: negative frequency");
    const double omega = 2.0 * std::numbers::pi * f;
    matrix.set_zero();
    std::fill(rhs.begin(), rhs.end(), numeric::Complex{});
    AcStamper stamper(matrix, rhs);
    for (const auto& device : circuit.devices()) {
      device->load_ac(op.x, stamper, omega);
    }
    for (std::size_t i = 0; i < voltage_unknowns; ++i) {
      matrix(i, i) += options.gmin;  // same regularization as DC
    }
    lu.factor(matrix);
    result.append_point(lu.solve(rhs));
  }
  return result;
}

}  // namespace softfet::sim
