// DC operating point with gmin-stepping and source-stepping homotopies.
#include <cmath>

#include "sim/analyses.hpp"
#include "sim/detail.hpp"
#include "sim/mna_system.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"

namespace softfet::sim {

namespace {

[[nodiscard]] numeric::NewtonOptions newton_options(const SimOptions& options) {
  numeric::NewtonOptions nopt;
  nopt.max_iterations = options.newton_max_iter;
  nopt.reltol = options.reltol;
  nopt.solver = options.solver;
  return nopt;
}

}  // namespace

namespace detail {

void fill_solver_stats(SolverDiagnostics& diag,
                       const numeric::LinearSolver& solver) {
  const numeric::LinearSolverStats stats = solver.stats();
  diag.symbolic_analyses = stats.symbolic_analyses;
  diag.refactorizations = stats.refactorizations;
  diag.fill_ratio = stats.fill_ratio;
  diag.reordered = stats.reordered;
  diag.krylov_solves = stats.krylov_solves;
  diag.krylov_iterations = stats.krylov_iterations;
  diag.krylov_fallbacks = stats.krylov_fallbacks;
}

/// Shared by dc_operating_point / dc_sweep / run_transient. `x` carries the
/// warm start in and the solution out. Returns Newton iterations used.
int solve_dc(Circuit& circuit, const SimOptions& options, LoadContext& ctx,
             std::vector<double>& x, numeric::LinearSolver* solver,
             SolverDiagnostics* diag, const util::BudgetTimer* budget) {
  MnaSystem system(circuit, options, ctx);
  numeric::NewtonOptions nopt = newton_options(options);
  numeric::LinearSolver local_solver(options.solver_config());
  nopt.solver_instance = solver != nullptr ? solver : &local_solver;
  nopt.budget = budget;
  int total_iterations = 0;

  ctx.mode = AnalysisMode::kDcOp;
  ctx.dt = 0.0;
  ctx.source_scale = 1.0;

  numeric::NewtonResult last;
  std::vector<double> last_x;
  const auto attempt = [&](std::vector<double>& guess) {
    last = numeric::solve_newton(system, guess, nopt);
    total_iterations += last.iterations;
    if (last.failure == numeric::NewtonFailure::kBudgetExhausted) {
      // Not a homotopy failure: stop the whole DC solve, skipping the
      // remaining (expensive) rungs.
      util::BudgetStop stop = budget != nullptr ? budget->check_now()
                                                : util::BudgetStop::kNone;
      if (stop == util::BudgetStop::kNone) stop = util::BudgetStop::kWallClock;
      SolverDiagnostics d;
      if (diag != nullptr) d = *diag;
      d.analysis = "dc operating point";
      d.determinism = to_string(options.determinism);
      d.failure = std::string("run budget: ") + util::to_string(stop);
      d.total_iterations = total_iterations;
      fill_solver_stats(d, *nopt.solver_instance);
      throw BudgetExceededError("dc operating point", stop, std::move(d));
    }
    if (!last.converged) last_x = guess;
    return last.converged;
  };
  // Record a homotopy rung in the caller's diagnostics (when given).
  const auto note = [&](const char* strategy, bool succeeded) {
    if (diag != nullptr) {
      diag->record_attempt({strategy, succeeded,
                            succeeded ? ""
                                      : numeric::to_string(last.failure)});
    }
  };

  // 1. Direct Newton from the warm start. A clean solve records nothing:
  // the attempt log is the history of escalations, not of routine work.
  std::vector<double> trial = x;
  if (attempt(trial)) {
    x = trial;
    return total_iterations;
  }
  note("direct_newton", false);

  // 2. gmin stepping: start heavily regularized, relax decade by decade.
  trial = x;
  bool ok = true;
  double g = 1e-2;
  while (true) {
    system.set_gmin(g);
    if (!attempt(trial)) {
      ok = false;
      break;
    }
    if (g <= options.gmin * 1.001) break;
    g = std::max(g / 10.0, options.gmin);
  }
  system.set_gmin(options.gmin);
  note("gmin_stepping", ok);
  if (ok) {
    x = trial;
    return total_iterations;
  }
  util::log_debug("dc: gmin stepping failed, trying source stepping");

  // 3. Source stepping: ramp all independent sources from 0 to full value.
  trial.assign(x.size(), 0.0);
  ok = true;
  for (int k = 1; k <= options.source_steps; ++k) {
    ctx.source_scale =
        static_cast<double>(k) / static_cast<double>(options.source_steps);
    if (!attempt(trial)) {
      ok = false;
      break;
    }
  }
  ctx.source_scale = 1.0;
  note("source_stepping", ok);
  if (!ok) {
    SolverDiagnostics d;
    if (diag != nullptr) d = *diag;
    d.analysis = "dc operating point";
    d.determinism = to_string(options.determinism);
    d.failure = std::string("all homotopies failed (last: ") +
                numeric::to_string(last.failure) + ")";
    d.iterations = last.iterations;
    d.total_iterations = total_iterations;
    d.worst_residual = last.worst_residual;
    d.iteration_trace = last.trace;
    if (last.worst_unknown != numeric::kNoUnknown) {
      d.worst_node = system.unknown_label(last.worst_unknown);
      d.worst_device = system.blame_device(last_x, last.worst_unknown);
    }
    fill_solver_stats(d, *nopt.solver_instance);
    if (diag != nullptr) *diag = d;
    throw ConvergenceError("dc operating point", std::move(d));
  }
  x = trial;
  return total_iterations;
}

std::vector<std::string> signal_names(const Circuit& circuit) {
  std::vector<std::string> names = circuit.unknown_labels();
  for (const auto& device : circuit.devices()) {
    for (const auto& [probe_name, value] : device->probes()) {
      (void)value;
      names.push_back(probe_name);
    }
  }
  return names;
}

std::vector<double> sample_row(const Circuit& circuit,
                               const std::vector<double>& x) {
  std::vector<double> row;
  sample_row_into(circuit, x, row);
  return row;
}

void sample_row_into(const Circuit& circuit, const std::vector<double>& x,
                     std::vector<double>& row) {
  row.assign(x.begin(), x.end());
  for (const auto& device : circuit.devices()) {
    device->probe_values(row);
  }
}

}  // namespace detail

OpResult dc_operating_point(Circuit& circuit, const SimOptions& options) {
  circuit.prepare();
  LoadContext ctx;
  numeric::LinearSolver solver(options.solver_config());
  std::vector<double> x(circuit.unknown_count(), 0.0);
  SolverDiagnostics diag;
  diag.analysis = "dc operating point";
  diag.determinism = to_string(options.determinism);
  const util::BudgetTimer budget(options.budget);
  const int iterations =
      detail::solve_dc(circuit, options, ctx, x, &solver, &diag, &budget);
  // Let hysteretic devices settle their quasistatic state, re-solving until
  // the (state, solution) pair is self-consistent.
  constexpr int kMaxStateIterations = 20;
  for (int i = 0; i < kMaxStateIterations; ++i) {
    bool changed = false;
    for (const auto& device : circuit.devices()) {
      changed = device->update_quasistatic_state(x) || changed;
    }
    if (!changed) break;
    detail::solve_dc(circuit, options, ctx, x, &solver, &diag, &budget);
  }
  for (const auto& device : circuit.devices()) device->init_state(x);

  OpResult result;
  result.x = std::move(x);
  result.labels = circuit.unknown_labels();
  result.iterations = iterations;
  detail::fill_solver_stats(diag, solver);
  result.diagnostics = std::move(diag);
  return result;
}

}  // namespace softfet::sim
