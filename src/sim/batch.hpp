// Batched lockstep transient engine.
//
// Runs K sibling transients ("lanes") that share one topology shape — e.g.
// Monte-Carlo samples of the same testbench differing only in device
// parameter values — by advancing all lanes one Newton iteration per round
// and funnelling the K linear systems through one structure-of-arrays
// factor/solve (numeric::BatchDenseLu). Device evaluation stays per-lane
// (each lane owns its Circuit), but stamps land in a FlatJacobian replay
// tape instead of the map-backed SparseMatrix, and the numeric core — the
// dominant scalar cost — runs lane-contiguous.
//
// Determinism contract: a lane that runs to completion executes exactly the
// floating-point operation sequence of scalar run_transient on the same
// circuit (same predictor, same Newton updates, same dt controller, same
// accept/reject decisions), so its TranResult is bitwise identical to the
// scalar engine's. Anything the scalar engine would handle with machinery
// the batch cannot replicate cheaply — the PR 3 recovery ladder, budget
// truncation, non-finite blow-ups, singular pivots at minimum timestep —
// instead *evicts* the lane: its partial result is discarded and the caller
// reruns that sample on the untouched scalar path, which reproduces the
// scalar behaviour by construction. One bad sample therefore never
// serializes or perturbs the other K-1 lanes.
//
// Divergence handling: lanes converge/accept/reject on their own schedules;
// each round simply packs the still-active lanes into slots [0, m) of the
// batch solver (lane masking by compaction). Finished and evicted lanes
// drop out of the rounds entirely.
#pragma once

#include <string>
#include <vector>

#include "sim/circuit.hpp"
#include "sim/options.hpp"
#include "sim/result.hpp"

namespace softfet::sim {

/// One lane of a lockstep batch: a caller-owned circuit plus its stop time.
struct BatchLaneSpec {
  Circuit* circuit = nullptr;
  double tstop = 0.0;
};

/// Per-lane outcome. When `evicted` is set the lane left the batch before
/// finishing; `tran` is meaningless and the caller must rerun the sample on
/// the scalar path (which reproduces exactly what the scalar engine would
/// have done, including its failure behaviour).
struct BatchLaneOutcome {
  TranResult tran;
  bool evicted = false;
  std::string eviction_reason;
};

/// True when `options` lets the batched engine honour its determinism
/// contract at all: numeric budget limits (wall clock, step and iteration
/// caps) force per-lane truncation the batch cannot replicate, so those
/// runs stay on the scalar engine. A cancel token alone is fine — a tripped
/// cancel evicts, and cancelled samples are never persisted by the batch
/// drivers, so observable results are unchanged.
[[nodiscard]] bool batch_transient_supported(const SimOptions& options);

/// Run all lanes to completion (or eviction) in lockstep. Lanes must share
/// the unknown count of the first lane and be dense-solver eligible;
/// offenders are evicted, not failed. Circuits are prepared and mutated
/// exactly as run_transient would (device state reflects the end of the
/// run for completed lanes).
[[nodiscard]] std::vector<BatchLaneOutcome> run_transient_batch(
    const std::vector<BatchLaneSpec>& lanes, const SimOptions& options);

}  // namespace softfet::sim
