// Device interface: every circuit element implements this.
#pragma once

#include <cstddef>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "sim/stamper.hpp"

namespace softfet::sim {

class Circuit;

enum class AnalysisMode {
  kDcOp,       ///< capacitors open, inductors short, sources at time 0
  kTransient,  ///< companion models active
};

enum class IntegrationMethod { kBackwardEuler, kTrapezoidal };

/// Per-evaluation context passed to Device::load.
struct LoadContext {
  AnalysisMode mode = AnalysisMode::kDcOp;
  IntegrationMethod method = IntegrationMethod::kBackwardEuler;
  double time = 0.0;          ///< end-of-step time being solved for [s]
  double dt = 0.0;            ///< step size (0 in DC) [s]
  double source_scale = 1.0;  ///< source-stepping homotopy factor (DC only)
};

/// Value used by devices when they have no breakpoint/event to report.
inline constexpr double kNeverTime = std::numeric_limits<double>::infinity();

/// A named probe value (e.g. {"id(m1)", 1.2e-5}).
using Probe = std::pair<std::string, double>;

/// One lane of a batched (relaxed-determinism) device load: the lane's
/// solution vector, its stamp sink, and its per-lane context. The batch
/// engine guarantees every view of one load_lanes call shares the same
/// netlist topology — peers[i] is the *same* device (same name, same nodes,
/// possibly different parameters) in lane i's circuit clone.
struct LaneLoadView {
  const std::vector<double>* x = nullptr;
  Stamper* stamper = nullptr;
  const LoadContext* ctx = nullptr;
};

class Device {
 public:
  explicit Device(std::string name) : name_(std::move(name)) {}
  virtual ~Device() = default;

  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  /// Resolve node ids to unknown indices; claim branch unknowns.
  /// Called once when the circuit is prepared for analysis.
  virtual void setup(Circuit& circuit) = 0;

  /// Add this device's residual and Jacobian contributions at solution `x`.
  virtual void load(const std::vector<double>& x, Stamper& stamper,
                    const LoadContext& ctx) = 0;

  // --- Batched (relaxed-determinism) evaluation ------------------------

  /// True when this device implements load_lanes with vectorized math. The
  /// batch engine only calls load_lanes under SimOptions' kRelaxedUlp mode
  /// and only when every lane's device at this position reports support.
  [[nodiscard]] virtual bool supports_lane_load() const { return false; }

  /// Evaluate this device across `m` lanes at once. `peers[i]` is lane i's
  /// instance of this device (peers[0] == this); `views[i]` carries lane
  /// i's solution, stamper, and context. Implementations gather per-lane
  /// operating points into SoA blocks, run the vecmath kernels across all
  /// lanes, and scatter stamps back per lane — in exactly the same
  /// add_residual/add_jacobian order as load() so the FlatJacobian tape
  /// replays. The default is the scalar loop (bitwise-identical fallback).
  virtual void load_lanes(Device* const* peers, const LaneLoadView* views,
                          std::size_t m) {
    for (std::size_t i = 0; i < m; ++i) {
      peers[i]->load(*views[i].x, *views[i].stamper, *views[i].ctx);
    }
  }

  // --- State hooks (defaults are no-ops for memoryless devices) --------

  /// Initialize internal state from the DC operating point.
  virtual void init_state(const std::vector<double>& x_op) { (void)x_op; }

  /// Commit internal state at the end of an accepted step ending at `time`.
  /// `ctx` matches the LoadContext the step was solved with.
  virtual void accept_step(const std::vector<double>& x,
                           const LoadContext& ctx) {
    (void)x;
    (void)ctx;
  }

  /// If the device detects a discrete event strictly inside the candidate
  /// step (t_start, t_end) given converged solution `x`, return the
  /// estimated event time so the engine can cut the step there; otherwise
  /// return kNeverTime.
  virtual double event_time(const std::vector<double>& x, double t_start,
                            double t_end) const {
    (void)x;
    (void)t_start;
    (void)t_end;
    return kNeverTime;
  }

  /// Next known waveform corner strictly after `time` (PWL/pulse edges);
  /// the engine lands a step exactly on it.
  [[nodiscard]] virtual double next_breakpoint(double time) const {
    (void)time;
    return kNeverTime;
  }

  /// Largest timestep this device tolerates right now (e.g. a PTM mid-
  /// transition wants steps well below its switching time).
  [[nodiscard]] virtual double max_timestep() const { return kNeverTime; }

  /// Named currents/values recorded per accepted point (after accept_step).
  [[nodiscard]] virtual std::vector<Probe> probes() const { return {}; }

  /// Append this device's probe *values* to `out`, in probes() order.
  /// Row sampling runs once per accepted step, so hot devices override this
  /// to skip building the name strings probes() returns; overrides must
  /// stay consistent with probes().
  virtual void probe_values(std::vector<double>& out) const {
    for (const auto& probe : probes()) out.push_back(probe.second);
  }

  /// Restore construction-time dynamic state so the owning testbench can be
  /// re-run as if freshly elaborated (a new analysis re-derives everything
  /// else via init_state). Only devices with state that survives across
  /// runs and is *not* reset by init_state need to override.
  virtual void reset_state() {}

  /// Quasistatic state update for DC sweeps (e.g. PTM phase snapping).
  /// Returns true if state changed and the point must be re-solved.
  virtual bool update_quasistatic_state(const std::vector<double>& x) {
    (void)x;
    return false;
  }

  /// AC small-signal stamp at the DC operating point `x_op` for angular
  /// frequency `omega` [rad/s]. Defined in sim/ac.hpp; default contributes
  /// nothing (correct only for independent sources with no AC magnitude).
  virtual void load_ac(const std::vector<double>& x_op, class AcStamper& ac,
                       double omega);

 private:
  std::string name_;
};

}  // namespace softfet::sim
