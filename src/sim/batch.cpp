// Batched lockstep transient engine (see batch.hpp for the contract).
//
// Implementation notes: every lane carries the complete scalar run_transient
// control state (dt controller, predictor history, reject counters) and the
// round loop advances each active lane exactly one Newton iteration, packing
// the lanes' linear systems into one BatchDenseLu factor/solve. The per-lane
// code below intentionally mirrors transient.cpp and newton.cpp line for
// line — any arithmetic drift there breaks the bitwise-identity contract, so
// edits to those files must be reflected here (the equivalence tests catch
// it).
#include "sim/batch.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <typeinfo>

#include "numeric/batch_lu.hpp"
#include "numeric/linear_solver.hpp"
#include "sim/analyses.hpp"
#include "sim/detail.hpp"
#include "sim/device.hpp"
#include "sim/stamper.hpp"
#include "util/budget.hpp"
#include "util/error.hpp"
#include "util/units.hpp"

namespace softfet::sim {

namespace {

constexpr double kEventBoundaryTolerance = 1e-9;  // matches transient.cpp

/// Allocation-free twin of transient.cpp's History.
struct LaneHistory {
  double t_prev = 0.0;
  double t_curr = 0.0;
  std::vector<double> x_prev;
  std::vector<double> x_curr;
  bool has_two_points = false;

  void reset(double t, const std::vector<double>& x) {
    t_curr = t;
    x_curr = x;
    has_two_points = false;
  }

  void push(double t, const std::vector<double>& x) {
    t_prev = t_curr;
    x_prev = x_curr;
    t_curr = t;
    x_curr = x;
    has_two_points = true;
  }

  void predict_into(double t, std::vector<double>& out) const {
    if (!has_two_points || t_curr <= t_prev) {
      out = x_curr;
      return;
    }
    const double alpha = (t - t_curr) / (t_curr - t_prev);
    out.resize(x_curr.size());
    for (std::size_t i = 0; i < out.size(); ++i) {
      out[i] = x_curr[i] + alpha * (x_curr[i] - x_prev[i]);
    }
  }
};

/// Same arithmetic as transient.cpp's lte_ratio.
[[nodiscard]] double lte_ratio(const std::vector<double>& x,
                               const std::vector<double>& x_pred,
                               std::size_t voltage_unknowns,
                               const SimOptions& options) {
  double worst = 0.0;
  for (std::size_t i = 0; i < voltage_unknowns; ++i) {
    const double scale = std::max({std::fabs(x[i]), std::fabs(x_pred[i]), 0.05});
    const double tol = options.lte_reltol * scale;
    worst = std::max(worst, std::fabs(x[i] - x_pred[i]) / tol);
  }
  return worst;
}

[[nodiscard]] std::size_t first_non_finite(const std::vector<double>& v) {
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (!std::isfinite(v[i])) return i;
  }
  return v.size();
}

enum class LanePhase { kSolving, kDone, kEvicted };

struct Lane {
  Circuit* circuit = nullptr;
  double tstop = 0.0;
  BatchLaneOutcome* out = nullptr;

  LoadContext ctx;
  FlatJacobian flat;
  std::vector<double> residual;
  std::vector<double> x;       // last accepted solution
  std::vector<double> x_new;   // Newton iterate of the step in flight
  std::vector<double> x_pred;  // predictor of the step in flight
  std::vector<double> dx;
  std::vector<double> row;  // sample-row buffer
  LaneHistory history;

  double dtmax = 0.0;
  double dt = 0.0;
  double t = 0.0;
  bool force_backward_euler = true;
  int consecutive_rejects = 0;
  int newton_failures = 0;
  std::size_t voltage_unknowns = 0;
  std::vector<int> pending_shrinks;

  int solve_iterations = 0;  // iterations of the solve in flight
  std::size_t slot = 0;      // batch slot this round (when in_round)
  bool in_round = false;
  LanePhase phase = LanePhase::kSolving;

  /// Stamp sink of the load in flight. Opened by begin_iteration and
  /// released by finish_load so the relaxed device-major phase can stamp
  /// into every staged lane between the two. (unique_ptr because Stamper
  /// pins references and Lane must stay movable.)
  std::unique_ptr<Stamper> stamper;
};

class BatchEngine {
 public:
  BatchEngine(const std::vector<BatchLaneSpec>& specs,
              const SimOptions& options,
              std::vector<BatchLaneOutcome>& outcomes)
      : options_(options), budget_timer_(options.budget) {
    lanes_.resize(specs.size());
    for (std::size_t s = 0; s < specs.size(); ++s) {
      Lane& lane = lanes_[s];
      lane.circuit = specs[s].circuit;
      lane.tstop = specs[s].tstop;
      lane.out = &outcomes[s];
    }
  }

  void run() {
    for (Lane& lane : lanes_) init_lane(lane);
    build_lane_plan();
    if (n_ > 0) {
      lu_.configure(n_, lanes_.size());
      b_.assign(n_ * lanes_.size(), 0.0);
      dx_soa_.assign(n_ * lanes_.size(), 0.0);
      ok_.assign(lanes_.size(), 0);
    }

    std::vector<Lane*> round;
    std::vector<Lane*> staged;
    round.reserve(lanes_.size());
    staged.reserve(lanes_.size());
    while (true) {
      round.clear();
      // Zero every lane column at once (cheaper than per-lane strided
      // clears); prepare_iteration stages each load in the lane's flat
      // values buffer (L1-resident) and scatter copies the live patterns
      // on top. (Stamping straight into the strided SoA cells was tried
      // and measured slower: it turns every accumulate into a scattered
      // read-modify-write in the middle of the device-model code.)
      std::fill(lu_.values(), lu_.values() + n_ * n_ * lanes_.size(), 0.0);
      if (!lane_plan_ok_) {
        // Bitwise contract (or no uniform device plan): the scalar-math
        // lane loop, untouched.
        for (Lane& lane : lanes_) {
          if (lane.phase != LanePhase::kSolving) continue;
          lane.slot = round.size();
          if (prepare_iteration(lane)) {
            scatter(lane);
            lane.in_round = true;
            round.push_back(&lane);
          } else {
            lane.in_round = false;
          }
        }
      } else {
        // Relaxed contract: open every live lane's load, evaluate the
        // devices column-major across all of them (SIMD across lanes),
        // then close out each load.
        staged.clear();
        for (Lane& lane : lanes_) {
          if (lane.phase != LanePhase::kSolving) continue;
          lane.in_round = false;
          if (begin_iteration(lane)) staged.push_back(&lane);
        }
        load_round(staged);
        for (Lane* lane : staged) {
          if (lane->phase != LanePhase::kSolving || !lane->stamper) continue;
          lane->slot = round.size();
          if (finish_load(*lane)) {
            scatter(*lane);
            lane->in_round = true;
            round.push_back(lane);
          }
        }
      }
      bool any_active = false;
      for (const Lane& lane : lanes_) {
        any_active = any_active || lane.phase == LanePhase::kSolving;
      }
      if (!any_active) break;
      if (round.empty()) continue;  // all active lanes restarted their steps

      const std::size_t m = round.size();
      lu_.factor(m, ok_.data());
      lu_.solve(m, b_.data(), dx_soa_.data());
      for (Lane* lane : round) finish_iteration(*lane);
    }
  }

 private:
  void evict(Lane& lane, std::string reason) {
    lane.phase = LanePhase::kEvicted;
    lane.out->evicted = true;
    lane.out->eviction_reason = std::move(reason);
  }

  /// transient.cpp's note_attempt, against this lane's diagnostics.
  int note_attempt(Lane& lane, const char* strategy) {
    auto& diag = lane.out->tran.diagnostics;
    const std::size_t before = diag.attempts.size();
    diag.record_attempt({strategy, false,
                         "t=" + util::format_si(lane.t, 4, "s") +
                             " dt=" + util::format_si(lane.dt, 3, "s")});
    return diag.attempts.size() > before ? static_cast<int>(before) : -1;
  }

  void mark_succeeded(Lane& lane, int attempt) {
    if (attempt >= 0) {
      lane.out->tran.diagnostics.attempts[static_cast<std::size_t>(attempt)]
          .succeeded = true;
    }
  }

  void init_lane(Lane& lane) {
    TranResult& out = lane.out->tran;
    out.diagnostics.analysis = "transient";
    out.diagnostics.determinism = to_string(options_.determinism);
    try {
      if (!(lane.tstop > 0.0)) {
        // run_transient throws Error here; the scalar rerun reproduces it.
        evict(lane, "non-positive tstop");
        return;
      }
      lane.circuit->prepare();
      const std::size_t n = lane.circuit->unknown_count();
      const std::size_t vu = lane.circuit->node_count() - 1;
      if (n_ == 0) {
        n_ = n;
        voltage_unknowns_ = vu;
      }
      if (n != n_ || vu != voltage_unknowns_) {
        evict(lane, "unknown count differs from batch");
        return;
      }
      if (options_.solver == numeric::SolverKind::kSparse ||
          (options_.solver == numeric::SolverKind::kAuto &&
           n > numeric::LinearSolver::kDenseThreshold)) {
        evict(lane, "not dense-solver eligible");
        return;
      }
      out.table = SignalTable(detail::signal_names(*lane.circuit));

      OpResult op = dc_operating_point(*lane.circuit, options_);
      lane.x = std::move(op.x);
      detail::sample_row_into(*lane.circuit, lane.x, lane.row);
      out.time.push_back(0.0);
      out.table.append_row(lane.row);

      lane.dtmax =
          options_.dtmax > 0.0 ? options_.dtmax : lane.tstop / 200.0;
      lane.dt = options_.dt_initial > 0.0
                    ? options_.dt_initial
                    : std::min(lane.tstop / 1e6, lane.dtmax);
      lane.history.reset(0.0, lane.x);
      lane.voltage_unknowns = lane.circuit->node_count() - 1;
      lane.t = 0.0;
      lane.force_backward_euler = true;
      lane.flat.reset(n_);
      lane.residual.assign(n_, 0.0);
      lane.dx.assign(n_, 0.0);
      begin_step(lane);
    } catch (const Error& e) {
      // OP budget truncation, OP convergence failure, bad circuit — all
      // reproduced faithfully by the scalar rerun.
      evict(lane, std::string("setup/op: ") + e.what());
    }
  }

  /// Scalar loop head: decide whether another step starts, clamp dt, land
  /// on breakpoints, build the predictor, and open a fresh Newton solve.
  void begin_step(Lane& lane) {
    TranResult& out = lane.out->tran;
    if (!(lane.t < lane.tstop * (1.0 - 1e-12))) {
      lane.phase = LanePhase::kDone;
      return;
    }
    if (budget_timer_.check(out.accepted_steps, out.newton_iterations) !=
        util::BudgetStop::kNone) {
      evict(lane, "budget stop at step head");
      return;
    }
    if (out.accepted_steps + out.rejected_steps >= options_.max_steps) {
      evict(lane, "step budget exhausted");
      return;
    }

    double device_cap = kNeverTime;
    for (const auto& device : lane.circuit->devices()) {
      device_cap = std::min(device_cap, device->max_timestep());
    }
    lane.dt = std::min({lane.dt, device_cap, lane.dtmax, lane.tstop - lane.t});
    lane.dt = std::max(lane.dt, options_.dtmin);

    double breakpoint = kNeverTime;
    for (const auto& device : lane.circuit->devices()) {
      breakpoint = std::min(breakpoint, device->next_breakpoint(lane.t));
    }
    if (breakpoint > lane.t && breakpoint < lane.t + lane.dt) {
      lane.dt = std::max(breakpoint - lane.t, options_.dtmin);
    }

    lane.ctx.mode = AnalysisMode::kTransient;
    lane.ctx.method = (lane.force_backward_euler || !options_.use_trapezoidal)
                          ? IntegrationMethod::kBackwardEuler
                          : IntegrationMethod::kTrapezoidal;
    lane.ctx.time = lane.t + lane.dt;
    lane.ctx.dt = lane.dt;
    lane.ctx.source_scale = 1.0;

    lane.history.predict_into(lane.t + lane.dt, lane.x_pred);
    lane.x_new = lane.x_pred;
    lane.solve_iterations = 0;
  }

  /// Newton-iteration loop head (budget check, counters) through opening
  /// the lane's stamp sink. Returns false when the lane was evicted.
  bool begin_iteration(Lane& lane) {
    TranResult& out = lane.out->tran;
    if (budget_timer_.check_now() != util::BudgetStop::kNone) {
      // solve_newton reports kBudgetExhausted; run_transient truncates.
      evict(lane, "budget stop in newton");
      return false;
    }
    ++lane.solve_iterations;
    out.newton_iterations += 1;

    lane.flat.begin_load();
    std::fill(lane.residual.begin(), lane.residual.end(), 0.0);
    lane.stamper = std::make_unique<Stamper>(lane.flat, lane.residual);
    return true;
  }

  /// Tail of the RHS build after the device loads: gmin shunts, tape
  /// check, finite check. Returns true when the lane should join the
  /// round's batch solve.
  bool finish_load(Lane& lane) {
    // gmin shunts in MnaSystem::load order (devices first, then shunts).
    for (std::size_t i = 0; i < lane.voltage_unknowns; ++i) {
      const int unknown = static_cast<int>(i);
      lane.stamper->add_residual(unknown, options_.gmin * lane.x_new[i]);
      lane.stamper->add_jacobian(unknown, unknown, options_.gmin);
    }
    lane.stamper.reset();
    if (!lane.flat.end_load()) {
      evict(lane, "stamp pattern changed mid-run");
      return false;
    }
    if (first_non_finite(lane.residual) != n_) {
      on_solve_failure(lane);
      return false;
    }
    return true;
  }

  /// Front half of one Newton iteration (newton.cpp's loop head through the
  /// RHS build), scalar device math. Returns true when the lane joined this
  /// round's batch solve; false when the iteration was fully handled here
  /// (failure paths and evictions — the lane may have already begun its
  /// next step).
  bool prepare_iteration(Lane& lane) {
    if (!begin_iteration(lane)) return false;
    try {
      for (const auto& device : lane.circuit->devices()) {
        device->load(lane.x_new, *lane.stamper, lane.ctx);
      }
    } catch (const Error& e) {
      lane.stamper.reset();
      evict(lane, std::string("device load: ") + e.what());
      return false;
    }
    return finish_load(lane);
  }

  /// Decide, once per run, whether the relaxed device-major load phase can
  /// drive the lanes: every live lane must expose the same device sequence
  /// (count and dynamic type per position — Monte-Carlo lanes are clones,
  /// so this holds). Columns whose type implements load_lanes run batched;
  /// the rest fall back to per-lane scalar loads inside load_round.
  void build_lane_plan() {
    lane_plan_ok_ = false;
    if (options_.determinism != Determinism::kRelaxedUlp) return;
    const Lane* first = nullptr;
    for (const Lane& lane : lanes_) {
      if (lane.phase == LanePhase::kSolving) {
        first = &lane;
        break;
      }
    }
    if (first == nullptr) return;
    const auto& ref = first->circuit->devices();
    for (const Lane& lane : lanes_) {
      if (lane.phase != LanePhase::kSolving) continue;
      if (lane.circuit->devices().size() != ref.size()) return;
    }
    column_batched_.assign(ref.size(), 0);
    for (std::size_t j = 0; j < ref.size(); ++j) {
      bool batched = ref[j]->supports_lane_load();
      if (batched) {
        const std::type_info& type = typeid(*ref[j]);
        for (const Lane& lane : lanes_) {
          if (lane.phase != LanePhase::kSolving) continue;
          if (typeid(*lane.circuit->devices()[j]) != type) {
            batched = false;
            break;
          }
        }
      }
      column_batched_[j] = batched ? 1 : 0;
    }
    lane_plan_ok_ = true;
  }

  /// Device-major load phase of one relaxed round: column j of every
  /// staged lane is evaluated together — batched through load_lanes when
  /// the column supports it, per-lane scalar otherwise.
  void load_round(std::vector<Lane*>& staged) {
    if (staged.empty()) return;
    for (std::size_t j = 0; j < column_batched_.size(); ++j) {
      live_.clear();
      peers_.clear();
      views_.clear();
      for (Lane* lane : staged) {
        if (lane->phase != LanePhase::kSolving || !lane->stamper) continue;
        live_.push_back(lane);
        peers_.push_back(lane->circuit->devices()[j].get());
        views_.push_back({&lane->x_new, lane->stamper.get(), &lane->ctx});
      }
      if (live_.empty()) return;
      if (column_batched_[j] != 0) {
        try {
          peers_[0]->load_lanes(peers_.data(), views_.data(), peers_.size());
        } catch (const Error& e) {
          // A batched evaluation cannot attribute the throw to one lane;
          // hand every staged lane back to the scalar engine.
          for (Lane* lane : live_) {
            lane->stamper.reset();
            evict(*lane, std::string("device load (batched): ") + e.what());
          }
          return;
        }
      } else {
        for (std::size_t i = 0; i < live_.size(); ++i) {
          try {
            peers_[i]->load(*views_[i].x, *views_[i].stamper, *views_[i].ctx);
          } catch (const Error& e) {
            live_[i]->stamper.reset();
            evict(*live_[i], std::string("device load: ") + e.what());
          }
        }
      }
    }
  }

  /// Copy a staged load (flat values buffer) into the lane's SoA column
  /// and RHS.
  void scatter(Lane& lane) {
    const std::size_t L = lanes_.size();
    double* lu = lu_.values();
    const auto& slots = lane.flat.slots();
    const auto& values = lane.flat.values();
    for (std::size_t e = 0; e < slots.size(); ++e) {
      const auto r = static_cast<std::size_t>(slots[e].row);
      const auto c = static_cast<std::size_t>(slots[e].col);
      lu[(r * n_ + c) * L + lane.slot] = values[e];
    }
    for (std::size_t i = 0; i < n_; ++i) {
      b_[i * L + lane.slot] = -lane.residual[i];
    }
  }

  /// Back half of one Newton iteration (update, convergence test) plus the
  /// step-completion logic when the solve ended this round.
  void finish_iteration(Lane& lane) {
    const std::size_t L = lanes_.size();
    if (ok_[lane.slot] == 0) {
      // DenseLu would have thrown SingularMatrixError -> kSingularMatrix.
      on_solve_failure(lane);
      return;
    }
    for (std::size_t i = 0; i < n_; ++i) {
      lane.dx[i] = dx_soa_[i * L + lane.slot];
    }
    if (first_non_finite(lane.dx) != n_) {
      on_solve_failure(lane);
      return;
    }
    // Per-unknown step limiting, then the dx convergence test — identical
    // arithmetic and order to solve_newton.
    for (std::size_t i = 0; i < n_; ++i) {
      const double limit = max_step(i);
      if (limit > 0.0 && std::fabs(lane.dx[i]) > limit) {
        lane.dx[i] = (lane.dx[i] > 0.0) ? limit : -limit;
      }
    }
    bool dx_converged = true;
    for (std::size_t i = 0; i < n_; ++i) {
      const double x_old = lane.x_new[i];
      lane.x_new[i] += lane.dx[i];
      const double tol =
          options_.reltol *
              std::max(std::fabs(lane.x_new[i]), std::fabs(x_old)) +
          abstol(i);
      if (std::fabs(lane.dx[i]) > tol) dx_converged = false;
    }
    if (dx_converged) {
      on_solve_converged(lane);
      return;
    }
    if (lane.solve_iterations >= options_.newton_max_iter) {
      on_solve_failure(lane);  // kMaxIterations
    }
    // Otherwise: the solve continues next round with the updated iterate.
  }

  /// run_transient's !newton.converged branch. Budget exhaustion is handled
  /// at prepare_iteration; everything that would climb the recovery ladder
  /// or throw evicts instead.
  void on_solve_failure(Lane& lane) {
    TranResult& out = lane.out->tran;
    ++out.rejected_steps;
    ++lane.consecutive_rejects;
    ++lane.newton_failures;
    const bool at_min = lane.dt <= options_.dtmin * 1.0001;
    const bool ladder_enabled = options_.recovery_escalate_after > 0;
    if (ladder_enabled &&
        (lane.newton_failures == options_.recovery_escalate_after || at_min)) {
      // The scalar engine would climb the recovery ladder here (PR 3); the
      // batch hands the sample back to it instead.
      evict(lane, "recovery ladder triggered");
      return;
    }
    if (budget_timer_.check_now() != util::BudgetStop::kNone) {
      evict(lane, "budget stop after failed solve");
      return;
    }
    if (at_min) {
      // Ladder disabled: run_transient throws ConvergenceError at dtmin.
      evict(lane, "newton failed at minimum timestep");
      return;
    }
    lane.pending_shrinks.push_back(note_attempt(lane, "dt_shrink"));
    lane.dt *= options_.dt_shrink;
    lane.force_backward_euler = true;
    begin_step(lane);
  }

  /// run_transient's post-convergence logic: shrink vindication, event
  /// cuts, LTE control, acceptance, and the next-step dt policy.
  void on_solve_converged(Lane& lane) {
    TranResult& out = lane.out->tran;
    for (const int attempt : lane.pending_shrinks) {
      mark_succeeded(lane, attempt);
    }
    lane.pending_shrinks.clear();

    double event_at = kNeverTime;
    for (const auto& device : lane.circuit->devices()) {
      event_at = std::min(
          event_at, device->event_time(lane.x_new, lane.t, lane.t + lane.dt));
    }
    const bool event_on_boundary =
        std::isfinite(event_at) &&
        event_at >= lane.t + lane.dt * (1.0 - kEventBoundaryTolerance);
    if (std::isfinite(event_at) && !event_on_boundary) {
      const double cut = event_at - lane.t;
      if (cut >= std::max(options_.dtmin, lane.dt * 1e-6)) {
        ++out.rejected_steps;
        lane.dt = cut;
        begin_step(lane);
        return;
      }
    }

    if (!lane.force_backward_euler && lane.consecutive_rejects < 15) {
      const double ratio =
          lte_ratio(lane.x_new, lane.x_pred, lane.voltage_unknowns, options_);
      if (ratio > 4.0 && lane.dt > options_.dtmin * 4.0) {
        ++out.rejected_steps;
        ++lane.consecutive_rejects;
        lane.dt *= 0.5;
        begin_step(lane);
        return;
      }
      if (ratio < 0.25) {
        lane.dt *= options_.dt_grow;
      } else if (ratio < 1.0) {
        lane.dt *= 1.15;
      }
    } else {
      lane.dt *= 1.5;  // recover step size after BE / trouble
    }

    for (const auto& device : lane.circuit->devices()) {
      device->accept_step(lane.x_new, lane.ctx);
    }
    lane.t = lane.ctx.time;
    lane.history.push(lane.t, lane.x_new);
    lane.x = lane.x_new;
    out.time.push_back(lane.t);
    detail::sample_row_into(*lane.circuit, lane.x, lane.row);
    out.table.append_row(lane.row);
    ++out.accepted_steps;
    lane.consecutive_rejects = 0;
    lane.newton_failures = 0;

    if (event_on_boundary) {
      ++out.event_count;
      lane.history.reset(lane.t, lane.x);
      lane.force_backward_euler = true;
    } else {
      lane.force_backward_euler = false;
    }
    if (lane.solve_iterations > 25) lane.dt *= 0.7;
    begin_step(lane);
  }

  [[nodiscard]] double abstol(std::size_t unknown) const {
    return unknown < voltage_unknowns_ ? options_.vabstol : options_.iabstol;
  }
  [[nodiscard]] double max_step(std::size_t unknown) const {
    return unknown < voltage_unknowns_ ? options_.v_max_step : 0.0;
  }

  const SimOptions& options_;
  util::BudgetTimer budget_timer_;
  std::vector<Lane> lanes_;
  std::size_t n_ = 0;
  std::size_t voltage_unknowns_ = 0;
  numeric::BatchDenseLu lu_;
  std::vector<double> b_;
  std::vector<double> dx_soa_;
  std::vector<std::uint8_t> ok_;

  // Relaxed device-major plan (build_lane_plan) and per-round scratch.
  bool lane_plan_ok_ = false;
  std::vector<std::uint8_t> column_batched_;
  std::vector<Lane*> live_;
  std::vector<Device*> peers_;
  std::vector<LaneLoadView> views_;
};

}  // namespace

bool batch_transient_supported(const SimOptions& options) {
  const util::RunBudget& budget = options.budget;
  return budget.max_wall_seconds <= 0.0 && budget.max_accepted_steps == 0 &&
         budget.max_newton_iterations == 0;
}

std::vector<BatchLaneOutcome> run_transient_batch(
    const std::vector<BatchLaneSpec>& lanes, const SimOptions& options) {
  std::vector<BatchLaneOutcome> outcomes(lanes.size());
  if (lanes.empty()) return outcomes;
  BatchEngine engine(lanes, options, outcomes);
  engine.run();
  return outcomes;
}

}  // namespace softfet::sim
