// Flat circuit: a node table plus an owning list of devices.
//
// Nodes are created on demand by name ("0", "gnd" and "vss!" alias ground).
// After all devices are added, prepare() resolves unknown indices:
// node voltages first, then branch currents claimed by devices.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sim/device.hpp"

namespace softfet::sim {

/// Dense node identifier; ground is kGroundNode.
using NodeId = int;
inline constexpr NodeId kGroundNode = 0;

class Circuit {
 public:
  Circuit();

  Circuit(const Circuit&) = delete;
  Circuit& operator=(const Circuit&) = delete;
  Circuit(Circuit&&) = default;
  Circuit& operator=(Circuit&&) = default;

  /// Find-or-create a node. Names are case-insensitive; "0" and "gnd"
  /// return ground.
  NodeId node(const std::string& name);

  /// Look up an existing node; throws InvalidCircuitError if unknown.
  [[nodiscard]] NodeId find_node(const std::string& name) const;
  [[nodiscard]] bool has_node(const std::string& name) const;

  [[nodiscard]] const std::string& node_name(NodeId id) const;
  [[nodiscard]] std::size_t node_count() const noexcept {
    return node_names_.size();
  }

  /// Construct and own a device of type T; returns a non-owning pointer.
  template <typename T, typename... Args>
  T* add(Args&&... args) {
    auto device = std::make_unique<T>(std::forward<Args>(args)...);
    T* raw = device.get();
    devices_.push_back(std::move(device));
    prepared_ = false;
    return raw;
  }

  [[nodiscard]] const std::vector<std::unique_ptr<Device>>& devices() const {
    return devices_;
  }

  /// Find a device by (case-insensitive) name; nullptr if absent.
  [[nodiscard]] Device* find_device(const std::string& name) const;

  // --- Unknown-index management (used during prepare / by devices) -----

  /// Unknown index of a node (kGround for ground). Valid after prepare().
  [[nodiscard]] int node_unknown(NodeId id) const;

  /// Claim a new branch-current unknown (called by devices from setup()).
  int claim_branch_unknown(const std::string& label);

  /// Resolve all device unknowns; idempotent.
  void prepare();
  [[nodiscard]] bool prepared() const noexcept { return prepared_; }

  /// Total unknown count (node voltages + branch currents).
  [[nodiscard]] std::size_t unknown_count() const;

  /// Human-readable label of each unknown: "v(name)" or the branch label.
  [[nodiscard]] const std::vector<std::string>& unknown_labels() const {
    return unknown_labels_;
  }

  /// True if unknown `i` is a node voltage (false: branch current).
  [[nodiscard]] bool unknown_is_voltage(std::size_t i) const {
    return i < node_names_.size() - 1;
  }

 private:
  std::vector<std::string> node_names_;  // index = NodeId, [0] = "0"
  std::unordered_map<std::string, NodeId> node_index_;
  std::vector<std::unique_ptr<Device>> devices_;
  std::vector<std::string> unknown_labels_;
  std::size_t branch_count_ = 0;
  bool prepared_ = false;
};

}  // namespace softfet::sim
