// Internal helpers shared between analysis translation units.
#pragma once

#include <vector>

#include "numeric/linear_solver.hpp"
#include "sim/circuit.hpp"
#include "sim/device.hpp"
#include "sim/options.hpp"
#include "util/error.hpp"

namespace softfet::sim::detail {

/// Robust DC solve (direct Newton -> gmin stepping -> source stepping).
/// `x` is the warm start in and the solution out; returns Newton iterations.
/// Throws softfet::ConvergenceError when every strategy fails. `solver`, if
/// given, carries the cached factorization across calls (one per circuit).
/// `diag`, if given, accumulates the homotopy attempt log; on total failure
/// the thrown error carries a copy with the failing node/device filled in.
/// `budget`, if given, is checked inside every Newton solve; tripping it
/// throws softfet::BudgetExceededError (never retried by batch drivers).
int solve_dc(Circuit& circuit, const SimOptions& options, LoadContext& ctx,
             std::vector<double>& x, numeric::LinearSolver* solver = nullptr,
             SolverDiagnostics* diag = nullptr,
             const util::BudgetTimer* budget = nullptr);

/// Copy a LinearSolver's lifetime counters (analyses, refactors, fill
/// ratio, Krylov work) into the diagnostics' plain mirror fields.
void fill_solver_stats(SolverDiagnostics& diag,
                       const numeric::LinearSolver& solver);

/// Collect the full signal-name list: unknown labels then device probes.
[[nodiscard]] std::vector<std::string> signal_names(const Circuit& circuit);

/// Build one sample row matching signal_names(): unknowns then probes.
[[nodiscard]] std::vector<double> sample_row(const Circuit& circuit,
                                             const std::vector<double>& x);

/// sample_row into a caller-owned buffer — no per-row allocation, and probe
/// values come from Device::probe_values so no name strings are built.
/// Row sampling runs once per accepted step, making this the hot variant.
void sample_row_into(const Circuit& circuit, const std::vector<double>& x,
                     std::vector<double>& row);

}  // namespace softfet::sim::detail
