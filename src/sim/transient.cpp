// Adaptive-timestep transient analysis.
//
// Strategy:
//  - start from the DC operating point;
//  - backward Euler on the first step and immediately after discrete device
//    events (PTM phase flips), trapezoidal otherwise;
//  - linear-extrapolation predictor doubles as the Newton initial guess and
//    the local-truncation-error estimate;
//  - source corner times (PWL/pulse edges) are honoured exactly as
//    breakpoints;
//  - devices may cut a candidate step at an internal event time (PTM
//    threshold crossings) so state flips land on step boundaries.
//  - on Newton failure a recovery ladder escalates instead of aborting:
//    dt shrink with forced backward Euler (the cheap, common rung), then —
//    after repeated failures or at the minimum timestep — predictor reset
//    to the last accepted state, transient gmin ramping, and per-step
//    source ramping; every attempt is recorded in the result diagnostics.
#include <algorithm>
#include <cmath>

#include "sim/analyses.hpp"
#include "sim/detail.hpp"
#include "sim/mna_system.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"
#include "util/units.hpp"

namespace softfet::sim {

namespace {

constexpr double kEventBoundaryTolerance = 1e-9;  // relative to dt

struct History {
  double t_prev = 0.0;
  double t_curr = 0.0;
  std::vector<double> x_prev;
  std::vector<double> x_curr;
  bool has_two_points = false;

  void reset(double t, const std::vector<double>& x) {
    t_curr = t;
    x_curr = x;
    has_two_points = false;
  }

  void push(double t, const std::vector<double>& x) {
    t_prev = t_curr;
    x_prev = x_curr;
    t_curr = t;
    x_curr = x;
    has_two_points = true;
  }

  /// Linear extrapolation to `t` (constant when only one point is known).
  [[nodiscard]] std::vector<double> predict(double t) const {
    if (!has_two_points || t_curr <= t_prev) return x_curr;
    const double alpha = (t - t_curr) / (t_curr - t_prev);
    std::vector<double> x(x_curr.size());
    for (std::size_t i = 0; i < x.size(); ++i) {
      x[i] = x_curr[i] + alpha * (x_curr[i] - x_prev[i]);
    }
    return x;
  }
};

/// Ratio of predictor-corrector mismatch to the acceptable local error;
/// > 1 means the step was too optimistic. Only node voltages participate:
/// trapezoidal companion state makes branch currents jump as dt -> 0
/// (i = 2C/dt*dq - i_prev), so a current-based LTE never converges.
[[nodiscard]] double lte_ratio(const std::vector<double>& x,
                               const std::vector<double>& x_pred,
                               std::size_t voltage_unknowns,
                               const SimOptions& options) {
  double worst = 0.0;
  for (std::size_t i = 0; i < voltage_unknowns; ++i) {
    const double scale = std::max({std::fabs(x[i]), std::fabs(x_pred[i]), 0.05});
    const double tol = options.lte_reltol * scale;
    worst = std::max(worst, std::fabs(x[i] - x_pred[i]) / tol);
  }
  return worst;
}

}  // namespace

TranResult run_transient(Circuit& circuit, double tstop,
                         const SimOptions& options) {
  if (!(tstop > 0.0)) throw Error("run_transient: tstop must be positive");
  circuit.prepare();

  // Arm the run budget before the operating point so its wall clock counts
  // against the transient too (the OP additionally arms its own timer from
  // the same spec for the checks inside its homotopy ladder).
  const util::BudgetTimer budget_timer(options.budget);

  TranResult out;
  out.diagnostics.analysis = "transient";
  out.diagnostics.determinism = to_string(options.determinism);
  out.table = SignalTable(detail::signal_names(circuit));

  // Operating point at t = 0 (also initializes device state).
  std::vector<double> x;
  try {
    OpResult op = dc_operating_point(circuit, options);
    x = std::move(op.x);
  } catch (const BudgetExceededError& e) {
    // Budget spent before a single timepoint existed: a truncated result
    // with an empty waveform, not a failure throw — the caller's contract
    // for budget stops is uniform.
    out.truncated = true;
    out.stop_reason = e.stop();
    out.diagnostics.failure = e.what();
    return out;
  }
  // Reused for every accepted point: sampling runs per step, so the row
  // buffer and the string-free probe_values path keep it allocation-free.
  std::vector<double> row_buffer;
  detail::sample_row_into(circuit, x, row_buffer);
  out.time.push_back(0.0);
  out.table.append_row(row_buffer);

  LoadContext ctx;
  MnaSystem system(circuit, options, ctx);
  // One solver for the whole transient: the MNA pattern is fixed, so every
  // step after the first reuses the symbolic analysis and pivot order.
  numeric::LinearSolver solver(options.solver_config());
  numeric::NewtonOptions nopt;
  nopt.max_iterations = options.newton_max_iter;
  nopt.reltol = options.reltol;
  nopt.solver = options.solver;
  nopt.solver_instance = &solver;
  nopt.budget = &budget_timer;

  const double dtmax = options.dtmax > 0.0 ? options.dtmax : tstop / 200.0;
  double dt = options.dt_initial > 0.0 ? options.dt_initial
                                       : std::min(tstop / 1e6, dtmax);

  History history;
  history.reset(0.0, x);

  const std::size_t voltage_unknowns = circuit.node_count() - 1;
  double t = 0.0;
  bool force_backward_euler = true;  // first step
  int consecutive_rejects = 0;
  int newton_failures = 0;        // consecutive, reset on acceptance
  bool escalated_at_min = false;  // ladder runs at most twice per step

  // Record a recovery attempt; returns its index for later success marking
  // (-1 when the bounded log is full).
  const auto note_attempt = [&](const char* strategy) {
    const std::size_t before = out.diagnostics.attempts.size();
    out.diagnostics.record_attempt(
        {strategy, false,
         "t=" + util::format_si(t, 4, "s") +
             " dt=" + util::format_si(dt, 3, "s")});
    return out.diagnostics.attempts.size() > before
               ? static_cast<int>(before)
               : -1;
  };
  const auto mark_succeeded = [&](int attempt) {
    if (attempt >= 0) {
      out.diagnostics.attempts[static_cast<std::size_t>(attempt)].succeeded =
          true;
    }
  };

  // Failure context for a thrown ConvergenceError: the accumulated attempt
  // log plus the last failed solve's worst node/device and iteration trace.
  const auto failure_diagnostics = [&](const numeric::NewtonResult& last,
                                       const std::vector<double>& x_at_failure,
                                       MnaSystem& sys, std::string why) {
    SolverDiagnostics d = out.diagnostics;
    d.failure = std::move(why);
    d.time = t;
    d.last_dt = dt;
    d.iterations = last.iterations;
    d.total_iterations = static_cast<int>(out.newton_iterations);
    d.worst_residual = last.worst_residual;
    d.iteration_trace = last.trace;
    if (last.worst_unknown != numeric::kNoUnknown) {
      d.worst_node = sys.unknown_label(last.worst_unknown);
      d.worst_device = sys.blame_device(x_at_failure, last.worst_unknown);
    }
    detail::fill_solver_stats(d, solver);
    return d;
  };

  // One backward-Euler corrector solve for the current (t, dt) window.
  const auto solve_once = [&](std::vector<double>& trial) {
    ctx.mode = AnalysisMode::kTransient;
    ctx.method = IntegrationMethod::kBackwardEuler;
    ctx.time = t + dt;
    ctx.dt = dt;
    const auto r = numeric::solve_newton(system, trial, nopt);
    out.newton_iterations += static_cast<std::size_t>(r.iterations);
    return r;
  };

  // Escalated recovery: backward-Euler solves at the current dt starting
  // from the last accepted state. On success `x_rec` holds the solution.
  const auto try_ladder = [&](std::vector<double>& x_rec) -> bool {
    // Rung 1: predictor reset — retry from the last accepted state instead
    // of the (possibly wild) extrapolated predictor.
    {
      const int attempt = note_attempt("predictor_reset");
      x_rec = x;
      ctx.source_scale = 1.0;
      if (solve_once(x_rec).converged) {
        mark_succeeded(attempt);
        return true;
      }
    }
    // Rung 2: transient gmin ramp — solve under a strong node-to-ground
    // shunt, then walk it back down in decades to the configured floor.
    {
      const int attempt = note_attempt("gmin_ramp");
      x_rec = x;
      ctx.source_scale = 1.0;
      bool ok = true;
      for (double g = std::max(options.recovery_gmin_start, options.gmin);;
           g = std::max(g * 0.1, options.gmin)) {
        system.set_gmin(g);
        if (!solve_once(x_rec).converged) {
          ok = false;
          break;
        }
        if (g <= options.gmin) break;
      }
      system.set_gmin(options.gmin);
      if (ok) {
        mark_succeeded(attempt);
        return true;
      }
    }
    // Rung 3: per-step source ramp — continuation from weak drive back up
    // to the full sources at this timepoint.
    {
      const int attempt = note_attempt("source_ramp");
      x_rec = x;
      bool ok = true;
      const int steps = std::max(options.recovery_source_steps, 1);
      for (int k = 1; k <= steps; ++k) {
        ctx.source_scale = static_cast<double>(k) / steps;
        if (!solve_once(x_rec).converged) {
          ok = false;
          break;
        }
      }
      ctx.source_scale = 1.0;
      if (ok) {
        mark_succeeded(attempt);
        return true;
      }
    }
    ctx.source_scale = 1.0;
    return false;
  };

  // Flag the result truncated with full failure context; the partial
  // waveform accepted so far stays in `out`.
  const auto mark_truncated = [&](util::BudgetStop stop,
                                  const numeric::NewtonResult& last) {
    out.diagnostics = failure_diagnostics(
        last, x, system, std::string("run budget: ") + util::to_string(stop));
    out.truncated = true;
    out.stop_reason = stop;
  };

  // dt_shrink attempts whose outcome is not yet known; marked succeeded
  // when a subsequent plain solve converges.
  std::vector<int> pending_shrinks;

  while (t < tstop * (1.0 - 1e-12)) {
    // The budget gate covers every loop path — accepted steps, LTE rejects,
    // and event cuts alike — so an event storm spinning on tiny cut steps
    // still terminates when the wall clock runs out.
    if (const util::BudgetStop stop =
            budget_timer.check(out.accepted_steps, out.newton_iterations);
        stop != util::BudgetStop::kNone) {
      mark_truncated(stop, numeric::NewtonResult{});
      return out;
    }
    if (out.accepted_steps + out.rejected_steps >= options.max_steps) {
      numeric::NewtonResult none;
      throw ConvergenceError(
          "transient",
          failure_diagnostics(none, x, system, "step budget exhausted"));
    }

    // Clamp dt: device caps, global max, remaining span.
    double device_cap = kNeverTime;
    for (const auto& device : circuit.devices()) {
      device_cap = std::min(device_cap, device->max_timestep());
    }
    dt = std::min({dt, device_cap, dtmax, tstop - t});
    dt = std::max(dt, options.dtmin);

    // Land exactly on the next source breakpoint if it falls inside.
    double breakpoint = kNeverTime;
    for (const auto& device : circuit.devices()) {
      breakpoint = std::min(breakpoint, device->next_breakpoint(t));
    }
    if (breakpoint > t && breakpoint < t + dt) {
      dt = std::max(breakpoint - t, options.dtmin);
    }

    ctx.mode = AnalysisMode::kTransient;
    ctx.method = (force_backward_euler || !options.use_trapezoidal)
                     ? IntegrationMethod::kBackwardEuler
                     : IntegrationMethod::kTrapezoidal;
    ctx.time = t + dt;
    ctx.dt = dt;
    ctx.source_scale = 1.0;

    const std::vector<double> x_pred = history.predict(t + dt);
    std::vector<double> x_new = x_pred;
    const auto newton = numeric::solve_newton(system, x_new, nopt);
    out.newton_iterations += static_cast<std::size_t>(newton.iterations);

    bool recovered = false;
    if (!newton.converged &&
        newton.failure == numeric::NewtonFailure::kBudgetExhausted) {
      // Not a numerical reject: the solve was cut short by the budget.
      util::BudgetStop stop = budget_timer.check_now();
      if (stop == util::BudgetStop::kNone) stop = util::BudgetStop::kWallClock;
      mark_truncated(stop, newton);
      return out;
    }
    if (!newton.converged) {
      ++out.rejected_steps;
      ++consecutive_rejects;
      ++newton_failures;
      const bool at_min = dt <= options.dtmin * 1.0001;
      const bool ladder_enabled = options.recovery_escalate_after > 0;
      if (ladder_enabled &&
          (newton_failures == options.recovery_escalate_after ||
           (at_min && !escalated_at_min))) {
        if (at_min) escalated_at_min = true;
        recovered = try_ladder(x_new);
      }
      if (!recovered) {
        // A ladder defeated by the budget (its solves stop converging once
        // the timer trips) must truncate, not throw the at-min failure.
        if (const util::BudgetStop stop = budget_timer.check_now();
            stop != util::BudgetStop::kNone) {
          mark_truncated(stop, newton);
          return out;
        }
        if (at_min) {
          throw ConvergenceError(
              "transient",
              failure_diagnostics(
                  newton, x_new, system,
                  std::string("Newton failed at minimum timestep (") +
                      numeric::to_string(newton.failure) + ")"));
        }
        pending_shrinks.push_back(note_attempt("dt_shrink"));
        dt *= options.dt_shrink;
        force_backward_euler = true;  // robustness after trouble
        continue;
      }
    }

    // A converged plain solve vindicates any outstanding dt shrinks; a
    // ladder recovery means they were not what fixed the step.
    if (newton.converged) {
      for (const int attempt : pending_shrinks) mark_succeeded(attempt);
    }
    pending_shrinks.clear();

    // Discrete device events strictly inside the step: cut the step there.
    double event_at = kNeverTime;
    for (const auto& device : circuit.devices()) {
      event_at = std::min(event_at, device->event_time(x_new, t, t + dt));
    }
    const bool event_on_boundary =
        std::isfinite(event_at) &&
        event_at >= t + dt * (1.0 - kEventBoundaryTolerance);
    if (std::isfinite(event_at) && !event_on_boundary) {
      const double cut = event_at - t;
      if (cut >= std::max(options.dtmin, dt * 1e-6)) {
        ++out.rejected_steps;
        dt = cut;
        continue;
      }
      // Event essentially at the step start: take a minimal step so the
      // device can commit the flip.
    }

    // Local-error control (not after discontinuities, where the predictor
    // is meaningless, and not when we are already struggling).
    if (!recovered && !force_backward_euler && consecutive_rejects < 15) {
      const double ratio = lte_ratio(x_new, x_pred, voltage_unknowns, options);
      if (ratio > 4.0 && dt > options.dtmin * 4.0) {
        ++out.rejected_steps;
        ++consecutive_rejects;
        dt *= 0.5;
        continue;
      }
      // Pre-compute growth for the next step from this ratio.
      if (ratio < 0.25) {
        dt *= options.dt_grow;
      } else if (ratio < 1.0) {
        dt *= 1.15;
      }
    } else if (!recovered) {
      dt *= 1.5;  // recover step size after BE / trouble
    }

    // Accept.
    for (const auto& device : circuit.devices()) {
      device->accept_step(x_new, ctx);
    }
    t = ctx.time;
    history.push(t, x_new);
    x = x_new;
    out.time.push_back(t);
    detail::sample_row_into(circuit, x, row_buffer);
    out.table.append_row(row_buffer);
    ++out.accepted_steps;
    if (recovered) ++out.recovered_steps;
    consecutive_rejects = 0;
    newton_failures = 0;
    escalated_at_min = false;

    if (event_on_boundary) {
      ++out.event_count;
      history.reset(t, x);          // old slope is meaningless now
      force_backward_euler = true;  // BE across the discontinuity
    } else {
      // A recovered step converged under backward Euler from a troubled
      // spot: stay on BE for one more step before trusting trapezoidal.
      force_backward_euler = recovered;
    }
    if (newton.iterations > 25) dt *= 0.7;
  }

  detail::fill_solver_stats(out.diagnostics, solver);
  return out;
}

}  // namespace softfet::sim
