// Adaptive-timestep transient analysis.
//
// Strategy:
//  - start from the DC operating point;
//  - backward Euler on the first step and immediately after discrete device
//    events (PTM phase flips), trapezoidal otherwise;
//  - linear-extrapolation predictor doubles as the Newton initial guess and
//    the local-truncation-error estimate;
//  - source corner times (PWL/pulse edges) are honoured exactly as
//    breakpoints;
//  - devices may cut a candidate step at an internal event time (PTM
//    threshold crossings) so state flips land on step boundaries.
#include <algorithm>
#include <cmath>

#include "sim/analyses.hpp"
#include "sim/detail.hpp"
#include "sim/mna_system.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"

namespace softfet::sim {

namespace {

constexpr double kEventBoundaryTolerance = 1e-9;  // relative to dt

struct History {
  double t_prev = 0.0;
  double t_curr = 0.0;
  std::vector<double> x_prev;
  std::vector<double> x_curr;
  bool has_two_points = false;

  void reset(double t, const std::vector<double>& x) {
    t_curr = t;
    x_curr = x;
    has_two_points = false;
  }

  void push(double t, const std::vector<double>& x) {
    t_prev = t_curr;
    x_prev = x_curr;
    t_curr = t;
    x_curr = x;
    has_two_points = true;
  }

  /// Linear extrapolation to `t` (constant when only one point is known).
  [[nodiscard]] std::vector<double> predict(double t) const {
    if (!has_two_points || t_curr <= t_prev) return x_curr;
    const double alpha = (t - t_curr) / (t_curr - t_prev);
    std::vector<double> x(x_curr.size());
    for (std::size_t i = 0; i < x.size(); ++i) {
      x[i] = x_curr[i] + alpha * (x_curr[i] - x_prev[i]);
    }
    return x;
  }
};

/// Ratio of predictor-corrector mismatch to the acceptable local error;
/// > 1 means the step was too optimistic. Only node voltages participate:
/// trapezoidal companion state makes branch currents jump as dt -> 0
/// (i = 2C/dt*dq - i_prev), so a current-based LTE never converges.
[[nodiscard]] double lte_ratio(const std::vector<double>& x,
                               const std::vector<double>& x_pred,
                               std::size_t voltage_unknowns,
                               const SimOptions& options) {
  double worst = 0.0;
  for (std::size_t i = 0; i < voltage_unknowns; ++i) {
    const double scale = std::max({std::fabs(x[i]), std::fabs(x_pred[i]), 0.05});
    const double tol = options.lte_reltol * scale;
    worst = std::max(worst, std::fabs(x[i] - x_pred[i]) / tol);
  }
  return worst;
}

}  // namespace

TranResult run_transient(Circuit& circuit, double tstop,
                         const SimOptions& options) {
  if (!(tstop > 0.0)) throw Error("run_transient: tstop must be positive");
  circuit.prepare();

  // Operating point at t = 0 (also initializes device state).
  OpResult op = dc_operating_point(circuit, options);
  std::vector<double> x = op.x;

  TranResult out;
  out.table = SignalTable(detail::signal_names(circuit));
  out.time.push_back(0.0);
  out.table.append_row(detail::sample_row(circuit, x));

  LoadContext ctx;
  MnaSystem system(circuit, options, ctx);
  // One solver for the whole transient: the MNA pattern is fixed, so every
  // step after the first reuses the symbolic analysis and pivot order.
  numeric::LinearSolver solver(options.solver);
  numeric::NewtonOptions nopt;
  nopt.max_iterations = options.newton_max_iter;
  nopt.reltol = options.reltol;
  nopt.solver = options.solver;
  nopt.solver_instance = &solver;

  const double dtmax = options.dtmax > 0.0 ? options.dtmax : tstop / 200.0;
  double dt = options.dt_initial > 0.0 ? options.dt_initial
                                       : std::min(tstop / 1e6, dtmax);

  History history;
  history.reset(0.0, x);

  const std::size_t voltage_unknowns = circuit.node_count() - 1;
  double t = 0.0;
  bool force_backward_euler = true;  // first step
  int consecutive_rejects = 0;

  while (t < tstop * (1.0 - 1e-12)) {
    if (out.accepted_steps + out.rejected_steps >= options.max_steps) {
      throw ConvergenceError("run_transient: step budget exhausted at t=" +
                             std::to_string(t));
    }

    // Clamp dt: device caps, global max, remaining span.
    double device_cap = kNeverTime;
    for (const auto& device : circuit.devices()) {
      device_cap = std::min(device_cap, device->max_timestep());
    }
    dt = std::min({dt, device_cap, dtmax, tstop - t});
    dt = std::max(dt, options.dtmin);

    // Land exactly on the next source breakpoint if it falls inside.
    double breakpoint = kNeverTime;
    for (const auto& device : circuit.devices()) {
      breakpoint = std::min(breakpoint, device->next_breakpoint(t));
    }
    if (breakpoint > t && breakpoint < t + dt) {
      dt = std::max(breakpoint - t, options.dtmin);
    }

    ctx.mode = AnalysisMode::kTransient;
    ctx.method = (force_backward_euler || !options.use_trapezoidal)
                     ? IntegrationMethod::kBackwardEuler
                     : IntegrationMethod::kTrapezoidal;
    ctx.time = t + dt;
    ctx.dt = dt;
    ctx.source_scale = 1.0;

    const std::vector<double> x_pred = history.predict(t + dt);
    std::vector<double> x_new = x_pred;
    const auto newton = numeric::solve_newton(system, x_new, nopt);
    out.newton_iterations += static_cast<std::size_t>(newton.iterations);

    if (!newton.converged) {
      ++out.rejected_steps;
      ++consecutive_rejects;
      if (dt <= options.dtmin * 1.0001) {
        throw ConvergenceError("run_transient: Newton failed at minimum "
                               "timestep, t=" + std::to_string(t));
      }
      dt *= options.dt_shrink;
      force_backward_euler = true;  // robustness after trouble
      continue;
    }

    // Discrete device events strictly inside the step: cut the step there.
    double event_at = kNeverTime;
    for (const auto& device : circuit.devices()) {
      event_at = std::min(event_at, device->event_time(x_new, t, t + dt));
    }
    const bool event_on_boundary =
        std::isfinite(event_at) &&
        event_at >= t + dt * (1.0 - kEventBoundaryTolerance);
    if (std::isfinite(event_at) && !event_on_boundary) {
      const double cut = event_at - t;
      if (cut >= std::max(options.dtmin, dt * 1e-6)) {
        ++out.rejected_steps;
        dt = cut;
        continue;
      }
      // Event essentially at the step start: take a minimal step so the
      // device can commit the flip.
    }

    // Local-error control (not after discontinuities, where the predictor
    // is meaningless, and not when we are already struggling).
    if (!force_backward_euler && consecutive_rejects < 15) {
      const double ratio = lte_ratio(x_new, x_pred, voltage_unknowns, options);
      if (ratio > 4.0 && dt > options.dtmin * 4.0) {
        ++out.rejected_steps;
        ++consecutive_rejects;
        dt *= 0.5;
        continue;
      }
      // Pre-compute growth for the next step from this ratio.
      if (ratio < 0.25) {
        dt *= options.dt_grow;
      } else if (ratio < 1.0) {
        dt *= 1.15;
      }
    } else {
      dt *= 1.5;  // recover step size after BE / trouble
    }

    // Accept.
    for (const auto& device : circuit.devices()) {
      device->accept_step(x_new, ctx);
    }
    t = ctx.time;
    history.push(t, x_new);
    x = x_new;
    out.time.push_back(t);
    out.table.append_row(detail::sample_row(circuit, x));
    ++out.accepted_steps;
    consecutive_rejects = 0;

    if (event_on_boundary) {
      ++out.event_count;
      history.reset(t, x);          // old slope is meaningless now
      force_backward_euler = true;  // BE across the discontinuity
    } else {
      force_backward_euler = false;
    }
    if (newton.iterations > 25) dt *= 0.7;
  }

  return out;
}

}  // namespace softfet::sim
