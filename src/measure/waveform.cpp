#include "measure/waveform.hpp"

#include <algorithm>
#include <cmath>

#include "numeric/interp.hpp"
#include "util/error.hpp"

namespace softfet::measure {

Waveform::Waveform(std::vector<double> t, std::vector<double> y)
    : t_(std::move(t)), y_(std::move(y)) {
  if (t_.size() != y_.size()) throw Error("Waveform: size mismatch");
  for (std::size_t i = 1; i < t_.size(); ++i) {
    if (t_[i] < t_[i - 1]) throw Error("Waveform: time must be non-decreasing");
  }
}

Waveform Waveform::from_tran(const sim::TranResult& result,
                             const std::string& signal) {
  return Waveform(result.time, result.table.signal(signal));
}

Waveform Waveform::from_sweep(const sim::SweepResult& result,
                              const std::string& signal) {
  return Waveform(result.axis, result.table.signal(signal));
}

double Waveform::t_begin() const {
  if (empty()) throw Error("Waveform: empty");
  return t_.front();
}

double Waveform::t_end() const {
  if (empty()) throw Error("Waveform: empty");
  return t_.back();
}

double Waveform::value(double t) const {
  return numeric::lerp_sorted(t_, y_, t);
}

double Waveform::min_value() const {
  if (empty()) throw Error("Waveform: empty");
  return *std::min_element(y_.begin(), y_.end());
}

double Waveform::max_value() const {
  if (empty()) throw Error("Waveform: empty");
  return *std::max_element(y_.begin(), y_.end());
}

double Waveform::peak_magnitude() const {
  if (empty()) throw Error("Waveform: empty");
  double m = 0.0;
  for (double v : y_) m = std::max(m, std::fabs(v));
  return m;
}

Waveform Waveform::derivative() const {
  std::vector<double> t;
  std::vector<double> d;
  for (std::size_t i = 1; i < t_.size(); ++i) {
    const double dt = t_[i] - t_[i - 1];
    if (dt <= 0.0) continue;
    t.push_back(0.5 * (t_[i] + t_[i - 1]));
    d.push_back((y_[i] - y_[i - 1]) / dt);
  }
  return Waveform(std::move(t), std::move(d));
}

double Waveform::max_abs_derivative(double min_dt) const {
  double worst = 0.0;
  std::size_t i = 0;
  while (i + 1 < t_.size()) {
    // Merge samples until the window is at least min_dt wide.
    std::size_t j = i + 1;
    while (j + 1 < t_.size() && t_[j] - t_[i] < min_dt) ++j;
    const double dt = t_[j] - t_[i];
    if (dt > 0.0) {
      worst = std::max(worst, std::fabs((y_[j] - y_[i]) / dt));
    }
    ++i;
  }
  return worst;
}

double Waveform::integral(double t0, double t1) const {
  if (empty() || t1 <= t0) return 0.0;
  // Segment-wise clipping handles repeated time points (discontinuities)
  // exactly: zero-width segments contribute nothing and window endpoints
  // take the value from within the clipped segment.
  double acc = 0.0;
  for (std::size_t i = 0; i + 1 < t_.size(); ++i) {
    const double a = t_[i];
    const double b = t_[i + 1];
    if (b <= t0 || a >= t1 || b <= a) continue;
    const double lo = std::max(a, t0);
    const double hi = std::min(b, t1);
    if (hi <= lo) continue;
    const double slope = (y_[i + 1] - y_[i]) / (b - a);
    const double yl = y_[i] + slope * (lo - a);
    const double yh = y_[i] + slope * (hi - a);
    acc += 0.5 * (yl + yh) * (hi - lo);
  }
  // Clamp-extension beyond the sampled range.
  if (t0 < t_.front()) acc += y_.front() * (std::min(t1, t_.front()) - t0);
  if (t1 > t_.back()) acc += y_.back() * (t1 - std::max(t0, t_.back()));
  return acc;
}

double Waveform::integral() const {
  if (empty()) return 0.0;
  return integral(t_.front(), t_.back());
}

std::vector<double> Waveform::crossings(double level,
                                        CrossDirection direction) const {
  std::vector<double> times;
  for (std::size_t i = 1; i < t_.size(); ++i) {
    const double a = y_[i - 1] - level;
    const double b = y_[i] - level;
    const bool rising = a < 0.0 && b >= 0.0;
    const bool falling = a > 0.0 && b <= 0.0;
    const bool take = (direction == CrossDirection::kRising && rising) ||
                      (direction == CrossDirection::kFalling && falling) ||
                      (direction == CrossDirection::kEither &&
                       (rising || falling));
    if (!take) continue;
    const double frac = (b == a) ? 0.0 : -a / (b - a);
    times.push_back(t_[i - 1] + frac * (t_[i] - t_[i - 1]));
  }
  return times;
}

double Waveform::first_crossing(double level, CrossDirection direction,
                                double after) const {
  for (const double t : crossings(level, direction)) {
    if (t >= after) return t;
  }
  throw Error("Waveform: no crossing of level " + std::to_string(level) +
              " after t=" + std::to_string(after));
}

bool Waveform::has_crossing(double level, CrossDirection direction,
                            double after) const {
  for (const double t : crossings(level, direction)) {
    if (t >= after) return true;
  }
  return false;
}

Waveform Waveform::window(double t0, double t1) const {
  std::vector<double> t;
  std::vector<double> y;
  if (empty() || t1 <= t0) return {};
  t.push_back(t0);
  y.push_back(value(t0));
  for (std::size_t i = 0; i < t_.size(); ++i) {
    if (t_[i] <= t0 || t_[i] >= t1) continue;
    t.push_back(t_[i]);
    y.push_back(y_[i]);
  }
  t.push_back(t1);
  y.push_back(value(t1));
  return Waveform(std::move(t), std::move(y));
}

Waveform Waveform::scaled(double scale, double offset) const {
  std::vector<double> y = y_;
  for (double& v : y) v = scale * v + offset;
  return Waveform(t_, std::move(y));
}

Waveform Waveform::clamped_min(double floor) const {
  std::vector<double> y = y_;
  for (double& v : y) v = std::max(v, floor);
  return Waveform(t_, std::move(y));
}

Waveform Waveform::multiply(const Waveform& a, const Waveform& b) {
  std::vector<double> t;
  t.reserve(a.size() + b.size());
  std::merge(a.t().begin(), a.t().end(), b.t().begin(), b.t().end(),
             std::back_inserter(t));
  t.erase(std::unique(t.begin(), t.end()), t.end());
  std::vector<double> y;
  y.reserve(t.size());
  for (const double ti : t) y.push_back(a.value(ti) * b.value(ti));
  return Waveform(std::move(t), std::move(y));
}

}  // namespace softfet::measure
