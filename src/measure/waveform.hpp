// Waveform: a non-uniformly sampled real signal y(t) with the interpolation
// and calculus operations the paper's measurements need.
#pragma once

#include <string>
#include <vector>

#include "sim/result.hpp"

namespace softfet::measure {

enum class CrossDirection { kRising, kFalling, kEither };

class Waveform {
 public:
  Waveform() = default;
  /// `t` must be non-decreasing and the sizes equal.
  Waveform(std::vector<double> t, std::vector<double> y);

  /// Extract a signal from a transient result.
  static Waveform from_tran(const sim::TranResult& result,
                            const std::string& signal);
  /// Extract a signal from a DC sweep (axis as the abscissa).
  static Waveform from_sweep(const sim::SweepResult& result,
                             const std::string& signal);

  [[nodiscard]] std::size_t size() const noexcept { return t_.size(); }
  [[nodiscard]] bool empty() const noexcept { return t_.empty(); }
  [[nodiscard]] const std::vector<double>& t() const noexcept { return t_; }
  [[nodiscard]] const std::vector<double>& y() const noexcept { return y_; }
  [[nodiscard]] double t_begin() const;
  [[nodiscard]] double t_end() const;

  /// Linear interpolation, clamped outside the range.
  [[nodiscard]] double value(double t) const;

  [[nodiscard]] double min_value() const;
  [[nodiscard]] double max_value() const;
  /// max |y|.
  [[nodiscard]] double peak_magnitude() const;

  /// Piecewise derivative (forward differences, one sample shorter).
  [[nodiscard]] Waveform derivative() const;
  /// max |dy/dt|; intervals shorter than `min_dt` are merged with their
  /// neighbours so event-cut micro-steps do not fake huge slopes.
  [[nodiscard]] double max_abs_derivative(double min_dt = 0.0) const;

  /// Trapezoidal integral of y over [t0, t1] (interpolated endpoints).
  [[nodiscard]] double integral(double t0, double t1) const;
  [[nodiscard]] double integral() const;

  /// Times where the signal crosses `level` in the given direction.
  [[nodiscard]] std::vector<double> crossings(
      double level, CrossDirection direction = CrossDirection::kEither) const;
  /// First crossing at or after `after`; throws softfet::Error if none.
  [[nodiscard]] double first_crossing(double level, CrossDirection direction,
                                      double after) const;
  [[nodiscard]] bool has_crossing(double level, CrossDirection direction,
                                  double after) const;

  /// Restrict to [t0, t1] (interpolated endpoints included).
  [[nodiscard]] Waveform window(double t0, double t1) const;

  /// y -> scale*y + offset.
  [[nodiscard]] Waveform scaled(double scale, double offset = 0.0) const;

  /// y -> max(y, floor): clip everything below `floor` (e.g. keep only the
  /// forward part of a crowbar current before integrating).
  [[nodiscard]] Waveform clamped_min(double floor) const;

  /// Pointwise product on the union of both time grids.
  [[nodiscard]] static Waveform multiply(const Waveform& a, const Waveform& b);

 private:
  std::vector<double> t_;
  std::vector<double> y_;
};

}  // namespace softfet::measure
