#include "measure/metrics.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace softfet::measure {

double peak_current(const Waveform& current) {
  return current.peak_magnitude();
}

double max_didt(const Waveform& current, double min_dt) {
  return current.max_abs_derivative(min_dt);
}

double propagation_delay(const Waveform& input, const Waveform& output,
                         double v_low, double v_high, bool output_rising,
                         double after) {
  const double swing = v_high - v_low;
  const double in_mid = v_low + 0.5 * swing;
  // Inverting stage: a rising output is driven by a falling input.
  const CrossDirection in_dir =
      output_rising ? CrossDirection::kFalling : CrossDirection::kRising;
  const double t_in = input.first_crossing(in_mid, in_dir, after);

  const double out_level =
      output_rising ? v_low + 0.8 * swing : v_low + 0.2 * swing;
  const CrossDirection out_dir =
      output_rising ? CrossDirection::kRising : CrossDirection::kFalling;
  const double t_out = output.first_crossing(out_level, out_dir, t_in);
  return t_out - t_in;
}

double transition_time(const Waveform& signal, double v_low, double v_high,
                       bool rising, double after) {
  const double swing = v_high - v_low;
  const double lo = v_low + 0.2 * swing;
  const double hi = v_low + 0.8 * swing;
  if (rising) {
    const double t0 = signal.first_crossing(lo, CrossDirection::kRising, after);
    const double t1 = signal.first_crossing(hi, CrossDirection::kRising, t0);
    return t1 - t0;
  }
  const double t0 = signal.first_crossing(hi, CrossDirection::kFalling, after);
  const double t1 = signal.first_crossing(lo, CrossDirection::kFalling, t0);
  return t1 - t0;
}

double charge(const Waveform& current, double t0, double t1) {
  return current.integral(t0, t1);
}

double worst_droop(const Waveform& rail, double nominal) {
  return std::max(0.0, nominal - rail.min_value());
}

double worst_bounce(const Waveform& rail, double nominal) {
  return std::max(std::fabs(rail.max_value() - nominal),
                  std::fabs(rail.min_value() - nominal));
}

double oscillation_period(const Waveform& signal, double level,
                          double after) {
  std::vector<double> times;
  for (const double t : signal.crossings(level, CrossDirection::kRising)) {
    if (t >= after) times.push_back(t);
  }
  if (times.size() < 3) {
    throw Error("oscillation_period: fewer than 3 rising crossings");
  }
  // Mean spacing over the observed cycles (end-to-end estimator).
  return (times.back() - times.front()) /
         static_cast<double>(times.size() - 1);
}

double energy(const Waveform& voltage, const Waveform& current) {
  const Waveform p = Waveform::multiply(voltage, current);
  const double t0 = std::max(voltage.t_begin(), current.t_begin());
  const double t1 = std::min(voltage.t_end(), current.t_end());
  return p.integral(t0, t1);
}

}  // namespace softfet::measure
