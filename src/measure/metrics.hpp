// Paper-level measurements over waveforms: peak switching current, di/dt,
// propagation delay as the paper defines it, transition (slew) times,
// charge integrals, droop/bounce, and energy.
#pragma once

#include "measure/waveform.hpp"

namespace softfet::measure {

/// Peak magnitude of a current waveform [A]. (Paper: I_MAX.)
[[nodiscard]] double peak_current(const Waveform& current);

/// Max |di/dt| [A/s]; `min_dt` merges event micro-steps (see
/// Waveform::max_abs_derivative).
[[nodiscard]] double max_didt(const Waveform& current, double min_dt = 0.0);

/// Paper delay definition (Section III.C): time from the input's 50% point
/// to the output's 80% point for a rising output, or 20% point for a
/// falling output. `v_low`/`v_high` define the 0%/100% levels.
/// `output_rising` selects which output transition is measured; the input
/// transition searched is the opposite direction (inverting stage).
[[nodiscard]] double propagation_delay(const Waveform& input,
                                       const Waveform& output, double v_low,
                                       double v_high, bool output_rising,
                                       double after = 0.0);

/// 20%-80% transition time of a signal edge found at/after `after`.
[[nodiscard]] double transition_time(const Waveform& signal, double v_low,
                                     double v_high, bool rising,
                                     double after = 0.0);

/// Charge = integral of a current waveform over [t0, t1] [C].
[[nodiscard]] double charge(const Waveform& current, double t0, double t1);

/// Worst droop below `nominal` within the waveform [V] (>= 0).
[[nodiscard]] double worst_droop(const Waveform& rail, double nominal);

/// Worst excursion magnitude away from `nominal` [V].
[[nodiscard]] double worst_bounce(const Waveform& rail, double nominal);

/// Energy = integral v*i dt over the overlap of both waveforms [J].
[[nodiscard]] double energy(const Waveform& voltage, const Waveform& current);

/// Mean oscillation period from rising crossings of `level` at/after
/// `after` [s]; throws softfet::Error when fewer than three crossings
/// exist (not oscillating).
[[nodiscard]] double oscillation_period(const Waveform& signal, double level,
                                        double after = 0.0);

}  // namespace softfet::measure
