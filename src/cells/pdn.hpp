// Power-delivery-network models: a lumped equivalent and a mesh grid.
//
// The paper adopts PDN parameters from Zhang et al. (ISLPED'13) for its
// power-gate study; the lumped equivalent reproduces the droop physics
// (L di/dt + IR + RLC resonance) of that network at block scale, and the
// mesh grid resolves the same totals spatially so droop localizes around
// the aggressor tiles (the fig. 10 message at full-die scale).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "devices/sources.hpp"
#include "sim/circuit.hpp"

namespace softfet::cells {

struct PdnParams {
  double vcc = 1.0;
  double r_pkg = 30e-3;    ///< package + grid series resistance [ohm]
  double l_pkg = 500e-12;  ///< package + bump inductance [H]
  double c_decap = 100e-12;  ///< on-die decoupling capacitance [F]
  double r_decap = 50e-3;  ///< decap effective series resistance [ohm]

  /// The Zhang et al. ISLPED'13 block-scale PDN adopted by the paper
  /// (identical to the defaults; the name is the documentation).
  [[nodiscard]] static PdnParams zhang_islped13() { return PdnParams{}; }
};

struct Pdn {
  sim::NodeId rail = 0;  ///< on-die VCC rail node
  devices::VSource* regulator = nullptr;
  std::string rail_signal;  ///< "v(<rail>)"
};

/// Build the PDN into `circuit`; `rail_name` is the on-die rail node name.
Pdn add_pdn(sim::Circuit& circuit, const std::string& name,
            const std::string& rail_name, const PdnParams& params);

/// Mesh PDN geometry and electrical totals. Package and decap values are
/// LUMPED TOTALS: the builder divides them across bumps and tiles so any
/// grid resolution presents the same aggregate impedance as add_pdn with
/// the matching PdnParams (each of B bumps carries r_pkg*B / l_pkg*B in
/// parallel; each of T tiles carries c_decap/T with ESR r_decap*T).
struct PdnGridParams {
  std::size_t rows = 16;
  std::size_t cols = 16;
  std::size_t layers = 1;  ///< metal layers; loads/decap on layer 0

  double vcc = 1.0;
  double r_pkg = 30e-3;      ///< total package resistance [ohm]
  double l_pkg = 500e-12;    ///< total package inductance [H]
  double c_decap = 100e-12;  ///< total on-die decap, spread per tile [F]
  double r_decap = 50e-3;    ///< total decap ESR (parallel across tiles)

  double r_seg = 50e-3;  ///< per mesh-segment rail resistance [ohm]
  double l_seg = 0.0;    ///< per-segment inductance; 0 = pure R mesh [H]
  double r_via = 5e-3;   ///< inter-layer via resistance per tile [ohm]

  /// Package bump every `bump_pitch` tiles in each direction on the top
  /// layer (centered); a pitch >= the grid span degenerates to one
  /// center bump per axis.
  std::size_t bump_pitch = 4;

  /// Grid with the same electrical totals as a lumped PDN, so 1x1x1
  /// reproduces add_pdn and larger grids only add spatial resolution.
  [[nodiscard]] static PdnGridParams from_lumped(const PdnParams& lumped,
                                                 std::size_t rows,
                                                 std::size_t cols,
                                                 std::size_t layers = 1);
};

/// Handle to a built mesh PDN: tile nodes for attaching loads and probes.
struct PdnGrid {
  std::size_t rows = 0;
  std::size_t cols = 0;
  std::size_t layers = 0;
  std::string name;
  devices::VSource* regulator = nullptr;
  std::size_t bump_count = 0;

  /// Rail node of tile (row, col) on `layer` (0 = die layer).
  [[nodiscard]] sim::NodeId node(std::size_t layer, std::size_t row,
                                 std::size_t col) const;
  /// Die-layer rail node of tile (row, col) — where loads attach.
  [[nodiscard]] sim::NodeId tile(std::size_t row, std::size_t col) const {
    return node(0, row, col);
  }
  /// Waveform signal name of the die-layer rail at (row, col).
  [[nodiscard]] std::string tile_signal(std::size_t row,
                                        std::size_t col) const;
  [[nodiscard]] std::size_t tile_count() const { return rows * cols; }

  std::vector<sim::NodeId> nodes;  ///< layer-major [layer][row][col]
};

/// Build a rows x cols x layers RC(L) mesh PDN into `circuit`: per-layer
/// rail segments, inter-layer vias, per-tile decap with ESR on the die
/// layer, and package bumps (per-bump R-L branch from the regulator) on
/// the top layer. Unknown count grows as rows*cols*layers (plus branch
/// currents), which is what makes fill-reducing ordering matter.
PdnGrid make_pdn_grid(sim::Circuit& circuit, const std::string& name,
                      const PdnGridParams& params);

}  // namespace softfet::cells
