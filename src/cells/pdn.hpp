// Lumped power-delivery-network model: ideal regulator behind package
// R/L feeding an on-die rail with decoupling capacitance.
//
// The paper adopts PDN parameters from Zhang et al. (ISLPED'13) for its
// power-gate study; this lumped equivalent reproduces the droop physics
// (L di/dt + IR + RLC resonance) of that network at block scale.
#pragma once

#include <string>

#include "devices/sources.hpp"
#include "sim/circuit.hpp"

namespace softfet::cells {

struct PdnParams {
  double vcc = 1.0;
  double r_pkg = 30e-3;    ///< package + grid series resistance [ohm]
  double l_pkg = 500e-12;  ///< package + bump inductance [H]
  double c_decap = 100e-12;  ///< on-die decoupling capacitance [F]
  double r_decap = 50e-3;  ///< decap effective series resistance [ohm]
};

struct Pdn {
  sim::NodeId rail = 0;  ///< on-die VCC rail node
  devices::VSource* regulator = nullptr;
  std::string rail_signal;  ///< "v(<rail>)"
};

/// Build the PDN into `circuit`; `rail_name` is the on-die rail node name.
Pdn add_pdn(sim::Circuit& circuit, const std::string& name,
            const std::string& rail_name, const PdnParams& params);

}  // namespace softfet::cells
