#include "cells/power_gate.hpp"

#include "devices/capacitor.hpp"
#include "devices/resistor.hpp"
#include "devices/tech40.hpp"

namespace softfet::cells {

namespace sd = softfet::devices;
namespace t40 = softfet::devices::tech40;

devices::PtmParams PowerGateSpec::default_header_ptm() {
  devices::PtmParams p;
  // A physically larger PTM via for the wide header: resistances scale
  // down ~25x versus the logic-gate card; thresholds and switching time are
  // material properties and stay put (V_MIT 0.2 calibrated for a 2x inrush
  // reduction, see bench/fig10_power_gate).
  p.r_ins = 20e3;
  p.r_met = 200.0;
  p.v_imt = 0.4;
  p.v_mit = 0.2;
  p.t_ptm = 10e-12;
  return p;
}

PowerGateTestbench make_power_gate_testbench(const PowerGateSpec& spec) {
  PowerGateTestbench tb;
  tb.vcc = spec.vcc;
  tb.enable_delay = spec.enable_delay;
  auto& c = tb.circuit;

  // Shared on-die rail behind the PDN.
  PdnParams pdn_params = spec.pdn;
  pdn_params.vcc = spec.vcc;
  const Pdn pdn = add_pdn(c, "pdn", "vrail", pdn_params);
  tb.rail_signal = pdn.rail_signal;

  // Always-on neighbour modelled as a resistor sized for the nominal draw.
  c.add<sd::Resistor>("Rneighbour", pdn.rail, sim::kGroundNode,
                      spec.vcc / spec.neighbour_current);

  // Header PMOS: source on the shared rail, drain on the virtual rail.
  const auto vvdd = c.node("vvdd");
  const auto gate = c.node("pg_gate");
  tb.header = c.add<sd::Mosfet>(
      "MPG", vvdd, gate, pdn.rail, pdn.rail, t40::pmos(),
      sd::MosfetDims{t40::kWminP, t40::kLmin, spec.header_m});

  // Gated domain: big discharged cap plus a weak leak path that defines the
  // pre-wake DC level.
  c.add<sd::Capacitor>("Cdomain", vvdd, sim::kGroundNode, spec.domain_cap);
  c.add<sd::Resistor>("Rleak", vvdd, sim::kGroundNode, 1e6);

  // Enable edge: VCC -> 0 turns the header on. The Soft-FET variant routes
  // it through a PTM; the header's own gate capacitance is the soft node.
  const auto enable = c.node("enable");
  c.add<sd::VSource>("Ven", enable, sim::kGroundNode,
                     sd::SourceSpec::ramp(spec.vcc, 0.0, spec.enable_delay,
                                          spec.enable_transition));
  if (spec.ptm) {
    tb.ptm = c.add<sd::Ptm>("Pgate", enable, gate, *spec.ptm);
  } else {
    // Baseline: a small driver resistance between enable and gate.
    c.add<sd::Resistor>("Rdrv", enable, gate, 50.0);
  }

  tb.virtual_rail_signal = "v(vvdd)";
  tb.gate_signal = "v(pg_gate)";
  tb.header_current_signal = "id(mpg)";

  // Wake completes once the domain cap charges through the header; allow a
  // long tail for the soft variant.
  double settle = 30e-9;
  if (spec.ptm) {
    settle += 8.0 * spec.ptm->r_ins * tb.header->gate_capacitance();
  }
  tb.suggested_tstop = spec.enable_delay + settle;
  return tb;
}

}  // namespace softfet::cells
