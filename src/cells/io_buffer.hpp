// I/O buffer simultaneous-switching-noise testbench (paper Fig. 11).
//
// N identical output buffers (modelled as one buffer with an m-multiplier)
// share internal VCC/VSS rails connected to the board supplies through
// bondwire inductance. Each buffer is a 3-stage tapered driver chain into a
// 1 pF pad. When all N switch together, L*di/dt rings the internal rails
// (SSN). The Soft-FET variant inserts a PTM before the final driver stage's
// gate, softening the output edge and cutting the SSN.
#pragma once

#include <optional>
#include <string>

#include "devices/mosfet.hpp"
#include "devices/ptm.hpp"
#include "devices/sources.hpp"
#include "sim/circuit.hpp"

namespace softfet::cells {

struct IoBufferSpec {
  double vcc = 1.0;
  double pad_cap = 1e-12;     ///< per-buffer pad load [F]
  double bondwire_l = 0.5e-9; ///< per-rail bondwire inductance [H]
  double bondwire_r = 0.2;    ///< per-rail series resistance [ohm]
  double simultaneous = 2.0;  ///< number of buffers switching together
  double final_stage_m = 32.0;  ///< final driver size (min-inverter multiples)
  double input_transition = 100e-12;
  double input_delay = 2e-9;
  bool input_rising = true;
  std::optional<devices::PtmParams> ptm;  ///< Soft-FET final-stage gate

  /// PTM card scaled for the final driver's gate capacitance.
  [[nodiscard]] static devices::PtmParams default_driver_ptm();
};

struct IoBufferTestbench {
  sim::Circuit circuit;
  devices::Ptm* ptm = nullptr;
  std::string vddi_signal = "v(vddi)";  ///< internal VCC rail
  std::string vssi_signal = "v(vssi)";  ///< internal VSS rail
  std::string pad_signal = "v(pad)";
  std::string supply_current_signal = "i(vext)";  ///< external VCC source
  double vcc = 1.0;
  double input_delay = 0.0;
  double suggested_tstop = 0.0;
};

[[nodiscard]] IoBufferTestbench make_io_buffer_testbench(
    const IoBufferSpec& spec);

}  // namespace softfet::cells
