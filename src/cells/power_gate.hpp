// Power-gate wake-up testbench (paper Fig. 10).
//
// A PDN feeds a shared on-die rail. An always-on neighbour block draws
// steady current from the rail; a large PMOS header connects the rail to the
// gated domain (a big discharged capacitance). Waking the domain (gate
// enable VCC -> 0) causes an inrush current that droops the shared rail.
// The Soft-FET variant drives the header gate through a PTM so the gate
// voltage staircases down, spreading the inrush.
#pragma once

#include <optional>
#include <string>

#include "cells/pdn.hpp"
#include "devices/mosfet.hpp"
#include "devices/ptm.hpp"
#include "devices/sources.hpp"
#include "sim/circuit.hpp"

namespace softfet::cells {

struct PowerGateSpec {
  PdnParams pdn;
  double vcc = 1.0;
  /// Header strength as a multiplier on the minimum PMOS (m = parallel
  /// copies); 200 ~ a 48 um header.
  double header_m = 200.0;
  /// Gated-domain load capacitance (initially discharged) [F].
  double domain_cap = 50e-12;
  /// Always-on neighbour current draw at nominal VCC [A].
  double neighbour_current = 5e-3;
  /// Enable (wake) edge timing.
  double enable_delay = 2e-9;
  double enable_transition = 200e-12;
  /// Engage the Soft-FET gate network when set.
  std::optional<devices::PtmParams> ptm;

  /// PTM card scaled for the header's large gate capacitance (lower
  /// resistances than the logic-gate card; same thresholds/timing).
  [[nodiscard]] static devices::PtmParams default_header_ptm();
};

struct PowerGateTestbench {
  sim::Circuit circuit;
  devices::Mosfet* header = nullptr;
  devices::Ptm* ptm = nullptr;
  std::string rail_signal;          ///< shared VCC rail voltage
  std::string virtual_rail_signal;  ///< gated-domain rail voltage
  std::string gate_signal;          ///< header gate voltage
  std::string header_current_signal;  ///< id() of the header
  double vcc = 1.0;
  double enable_delay = 0.0;
  double suggested_tstop = 0.0;
};

[[nodiscard]] PowerGateTestbench make_power_gate_testbench(
    const PowerGateSpec& spec);

}  // namespace softfet::cells
