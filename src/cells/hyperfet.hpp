// Hyper-FET composition and PTM selector-switch crossbar (paper Table 1
// context): prior PTM applications the Soft-FET is contrasted against.
//
// Hyper-FET = PTM in series with the MOSFET *source* (Shukla et al. 2015):
// the insulating PTM starves the subthreshold current (better Ion/Ioff and
// sub-60mV/dec swing around the transition) at the cost of series
// resistance in the on state. The Soft-FET instead puts the PTM at the
// *gate*, leaving DC characteristics untouched.
#pragma once

#include <string>

#include "devices/mosfet.hpp"
#include "devices/ptm.hpp"
#include "devices/sources.hpp"
#include "sim/circuit.hpp"

namespace softfet::cells {

struct HyperFetCell {
  devices::Mosfet* mosfet = nullptr;
  devices::Ptm* ptm = nullptr;
  sim::NodeId internal_source = 0;  ///< node between MOSFET source and PTM
};

/// NMOS Hyper-FET: drain d, gate g, PTM from internal source node to s.
HyperFetCell add_hyperfet_nmos(sim::Circuit& circuit, const std::string& name,
                               sim::NodeId d, sim::NodeId g, sim::NodeId s,
                               const devices::MosfetModel& model,
                               const devices::MosfetDims& dims,
                               const devices::PtmParams& ptm);

/// Id(Vgs) transfer sweep of a grounded-source device at the given Vds;
/// returns the gate voltages and drain currents (drain supply current).
struct TransferCurve {
  std::vector<double> vgs;
  std::vector<double> id;
};

[[nodiscard]] TransferCurve hyperfet_transfer_curve(
    const devices::MosfetModel& model, const devices::MosfetDims& dims,
    const devices::PtmParams& ptm, double vds, double vgs_max, int points);

[[nodiscard]] TransferCurve mosfet_transfer_curve(
    const devices::MosfetModel& model, const devices::MosfetDims& dims,
    double vds, double vgs_max, int points);

/// 1-selector-1-resistor crossbar sneak-path demo: reading one cell of an
/// n x n resistive array with half-select bias. Returns the current through
/// the selected cell and the total sneak current, with and without PTM
/// selectors.
struct CrossbarReadResult {
  double selected_current = 0.0;
  double sneak_current = 0.0;  ///< total current on half-selected paths
};

[[nodiscard]] CrossbarReadResult crossbar_read(int n, double r_cell_low,
                                               double r_cell_high,
                                               bool with_selector,
                                               const devices::PtmParams& ptm,
                                               double v_read);

}  // namespace softfet::cells
