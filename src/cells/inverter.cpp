#include "cells/inverter.hpp"

#include "devices/capacitor.hpp"
#include "devices/resistor.hpp"
#include "devices/tech40.hpp"
#include "util/error.hpp"

namespace softfet::cells {

namespace sd = softfet::devices;
namespace t40 = softfet::devices::tech40;

InverterSpec::InverterSpec()
    : nmos_model(t40::nmos()), pmos_model(t40::pmos()) {}

InverterCell add_inverter(sim::Circuit& circuit, const std::string& name,
                          sim::NodeId in, sim::NodeId out, sim::NodeId vdd,
                          sim::NodeId vss, const InverterSpec& spec) {
  if (spec.stack < 1) {
    throw InvalidCircuitError("inverter " + name + ": stack must be >= 1");
  }
  if (spec.ptm && spec.gate_series_r > 0.0) {
    throw InvalidCircuitError("inverter " + name +
                              ": PTM and series R are mutually exclusive");
  }

  InverterCell cell;
  cell.in = in;
  cell.out = out;

  // Optional input network: PTM (Soft-FET) or constant series resistance.
  sim::NodeId gate = in;
  if (spec.ptm) {
    gate = circuit.node(name + ".g");
    cell.ptm = circuit.add<sd::Ptm>(name + ".ptm", in, gate, *spec.ptm);
  } else if (spec.gate_series_r > 0.0) {
    gate = circuit.node(name + ".g");
    circuit.add<sd::Resistor>(name + ".rg", in, gate, spec.gate_series_r);
  }
  cell.gate = gate;

  const sd::MosfetDims pdims{spec.wp, spec.l, spec.m};
  const sd::MosfetDims ndims{spec.wn, spec.l, spec.m};

  // Pull-up stack: vdd -> ... -> out.
  sim::NodeId prev = vdd;
  for (int i = 0; i < spec.stack; ++i) {
    const sim::NodeId next =
        (i == spec.stack - 1)
            ? out
            : circuit.node(name + ".p" + std::to_string(i));
    auto* mp = circuit.add<sd::Mosfet>(
        name + ".mp" + std::to_string(i), next, gate, prev, vdd,
        spec.pmos_model, pdims);
    if (i == 0) cell.pmos = mp;
    prev = next;
  }
  // Pull-down stack: out -> ... -> vss.
  prev = vss;
  for (int i = 0; i < spec.stack; ++i) {
    const sim::NodeId next =
        (i == spec.stack - 1)
            ? out
            : circuit.node(name + ".n" + std::to_string(i));
    auto* mn = circuit.add<sd::Mosfet>(
        name + ".mn" + std::to_string(i), next, gate, prev, vss,
        spec.nmos_model, ndims);
    if (i == 0) cell.nmos = mn;
    prev = next;
  }
  return cell;
}

InverterTestbench make_inverter_testbench(const InverterTestbenchSpec& spec) {
  InverterTestbench tb;
  tb.vcc = spec.vcc;
  tb.input_delay = spec.input_delay;
  tb.input_transition = spec.input_transition;

  auto& c = tb.circuit;
  const auto in = c.node("in");
  const auto out = c.node("out");
  const auto vdd = c.node("vdd");
  const auto vddl = c.node("vddl");

  // DUT supply is separate from the load supply so i(vdd) shows only the
  // device under test.
  tb.vdd_dut = c.add<sd::VSource>("Vdd", vdd, sim::kGroundNode,
                                  sd::SourceSpec::dc(spec.vcc));
  c.add<sd::VSource>("Vddl", vddl, sim::kGroundNode,
                     sd::SourceSpec::dc(spec.vcc));

  const double v0 = spec.input_rising ? 0.0 : spec.vcc;
  const double v1 = spec.input_rising ? spec.vcc : 0.0;
  tb.vin = c.add<sd::VSource>(
      "Vin", in, sim::kGroundNode,
      sd::SourceSpec::ramp(v0, v1, spec.input_delay, spec.input_transition));

  tb.dut = add_inverter(c, "dut", in, out, vdd, sim::kGroundNode, spec.dut);

  // FO4 load: a real inverter input, scaled by `fanout`, on its own rail.
  InverterSpec load = spec.dut;
  load.gate_series_r = 0.0;
  load.ptm.reset();
  load.stack = 1;
  load.m = spec.dut.m * spec.fanout;
  const auto load_out = c.node("load_out");
  add_inverter(c, "load", out, load_out, vddl, sim::kGroundNode, load);
  // Small wire cap on the load output keeps that node well-behaved.
  c.add<sd::Capacitor>("Cload_out", load_out, sim::kGroundNode, 1e-15);

  tb.gate_signal =
      (tb.dut.gate == tb.dut.in) ? "v(in)" : "v(" + c.node_name(tb.dut.gate) + ")";
  tb.pmos_current_signal = "id(dut.mp0)";
  tb.nmos_current_signal = "id(dut.mn0)";

  // Heuristic stop time: input edge + generous settle margin. Soft-FET
  // tails are governed by R_INS * C_gate.
  double settle = 30.0 * spec.input_transition;
  const double c_gate =
      tb.dut.pmos->gate_capacitance() + tb.dut.nmos->gate_capacitance();
  if (spec.dut.ptm) settle += 8.0 * spec.dut.ptm->r_ins * c_gate;
  if (spec.dut.gate_series_r > 0.0) {
    settle += 8.0 * spec.dut.gate_series_r * c_gate;
  }
  tb.suggested_tstop = spec.input_delay + spec.input_transition + settle;
  if (spec.instrument) spec.instrument(tb.circuit);
  return tb;
}

}  // namespace softfet::cells
