#include "cells/pdn.hpp"

#include "devices/capacitor.hpp"
#include "devices/inductor.hpp"
#include "devices/resistor.hpp"
#include "util/strings.hpp"

namespace softfet::cells {

namespace sd = softfet::devices;

Pdn add_pdn(sim::Circuit& circuit, const std::string& name,
            const std::string& rail_name, const PdnParams& params) {
  Pdn pdn;
  const auto vreg = circuit.node(name + ".vreg");
  const auto mid = circuit.node(name + ".pkg");
  pdn.rail = circuit.node(rail_name);

  pdn.regulator = circuit.add<sd::VSource>(
      name + ".vsrc", vreg, sim::kGroundNode, sd::SourceSpec::dc(params.vcc));
  circuit.add<sd::Inductor>(name + ".lpkg", vreg, mid, params.l_pkg);
  circuit.add<sd::Resistor>(name + ".rpkg", mid, pdn.rail, params.r_pkg);

  // Decap with its effective series resistance.
  const auto dcap = circuit.node(name + ".dcap");
  circuit.add<sd::Resistor>(name + ".resr", pdn.rail, dcap, params.r_decap);
  circuit.add<sd::Capacitor>(name + ".cdecap", dcap, sim::kGroundNode,
                             params.c_decap);

  pdn.rail_signal = "v(" + util::to_lower(rail_name) + ")";
  return pdn;
}

}  // namespace softfet::cells
