#include "cells/pdn.hpp"

#include "devices/capacitor.hpp"
#include "devices/inductor.hpp"
#include "devices/resistor.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace softfet::cells {

namespace sd = softfet::devices;

Pdn add_pdn(sim::Circuit& circuit, const std::string& name,
            const std::string& rail_name, const PdnParams& params) {
  Pdn pdn;
  const auto vreg = circuit.node(name + ".vreg");
  const auto mid = circuit.node(name + ".pkg");
  pdn.rail = circuit.node(rail_name);

  pdn.regulator = circuit.add<sd::VSource>(
      name + ".vsrc", vreg, sim::kGroundNode, sd::SourceSpec::dc(params.vcc));
  circuit.add<sd::Inductor>(name + ".lpkg", vreg, mid, params.l_pkg);
  circuit.add<sd::Resistor>(name + ".rpkg", mid, pdn.rail, params.r_pkg);

  // Decap with its effective series resistance.
  const auto dcap = circuit.node(name + ".dcap");
  circuit.add<sd::Resistor>(name + ".resr", pdn.rail, dcap, params.r_decap);
  circuit.add<sd::Capacitor>(name + ".cdecap", dcap, sim::kGroundNode,
                             params.c_decap);

  pdn.rail_signal = "v(" + util::to_lower(rail_name) + ")";
  return pdn;
}

PdnGridParams PdnGridParams::from_lumped(const PdnParams& lumped,
                                         std::size_t rows, std::size_t cols,
                                         std::size_t layers) {
  PdnGridParams p;
  p.rows = rows;
  p.cols = cols;
  p.layers = layers;
  p.vcc = lumped.vcc;
  p.r_pkg = lumped.r_pkg;
  p.l_pkg = lumped.l_pkg;
  p.c_decap = lumped.c_decap;
  p.r_decap = lumped.r_decap;
  return p;
}

sim::NodeId PdnGrid::node(std::size_t layer, std::size_t row,
                          std::size_t col) const {
  return nodes[(layer * rows + row) * cols + col];
}

std::string PdnGrid::tile_signal(std::size_t row, std::size_t col) const {
  return "v(" + util::to_lower(name) + ".n0_" + std::to_string(row) + "_" +
         std::to_string(col) + ")";
}

namespace {

/// Bump coordinates along one axis: centered, every `pitch` tiles; a
/// pitch covering the whole span degenerates to the single center tile.
std::vector<std::size_t> bump_axis(std::size_t n, std::size_t pitch) {
  std::vector<std::size_t> at;
  if (pitch == 0 || pitch >= n) {
    at.push_back(n / 2);
    return at;
  }
  for (std::size_t i = pitch / 2; i < n; i += pitch) at.push_back(i);
  return at;
}

}  // namespace

PdnGrid make_pdn_grid(sim::Circuit& circuit, const std::string& name,
                      const PdnGridParams& params) {
  if (params.rows == 0 || params.cols == 0 || params.layers == 0) {
    throw InvalidCircuitError("make_pdn_grid: rows/cols/layers must be >= 1");
  }
  PdnGrid grid;
  grid.rows = params.rows;
  grid.cols = params.cols;
  grid.layers = params.layers;
  grid.name = name;
  grid.nodes.reserve(params.layers * params.rows * params.cols);
  for (std::size_t l = 0; l < params.layers; ++l) {
    for (std::size_t r = 0; r < params.rows; ++r) {
      for (std::size_t c = 0; c < params.cols; ++c) {
        grid.nodes.push_back(circuit.node(
            name + ".n" + std::to_string(l) + "_" + std::to_string(r) + "_" +
            std::to_string(c)));
      }
    }
  }

  // Rail segments within each layer. With l_seg > 0 every segment is a
  // series R-L through an internal node; otherwise a plain resistor.
  std::size_t seg = 0;
  const auto add_segment = [&](sim::NodeId a, sim::NodeId b) {
    const std::string id = name + ".s" + std::to_string(seg++);
    if (params.l_seg > 0.0) {
      const auto mid = circuit.node(id + "m");
      circuit.add<sd::Resistor>(id + "r", a, mid, params.r_seg);
      circuit.add<sd::Inductor>(id + "l", mid, b, params.l_seg);
    } else {
      circuit.add<sd::Resistor>(id, a, b, params.r_seg);
    }
  };
  for (std::size_t l = 0; l < params.layers; ++l) {
    for (std::size_t r = 0; r < params.rows; ++r) {
      for (std::size_t c = 0; c < params.cols; ++c) {
        if (c + 1 < params.cols) {
          add_segment(grid.node(l, r, c), grid.node(l, r, c + 1));
        }
        if (r + 1 < params.rows) {
          add_segment(grid.node(l, r, c), grid.node(l, r + 1, c));
        }
      }
    }
  }

  // Inter-layer vias at every tile.
  for (std::size_t l = 0; l + 1 < params.layers; ++l) {
    for (std::size_t r = 0; r < params.rows; ++r) {
      for (std::size_t c = 0; c < params.cols; ++c) {
        circuit.add<sd::Resistor>(name + ".v" + std::to_string(l) + "_" +
                                      std::to_string(r) + "_" +
                                      std::to_string(c),
                                  grid.node(l, r, c), grid.node(l + 1, r, c),
                                  params.r_via);
      }
    }
  }

  // Per-tile decap with ESR on the die layer: T tiles in parallel present
  // the lumped totals (C/T each, ESR*T each).
  const auto tiles = static_cast<double>(params.rows * params.cols);
  for (std::size_t r = 0; r < params.rows; ++r) {
    for (std::size_t c = 0; c < params.cols; ++c) {
      const std::string id =
          name + ".d" + std::to_string(r) + "_" + std::to_string(c);
      const auto dcap = circuit.node(id);
      circuit.add<sd::Resistor>(id + "r", grid.node(0, r, c), dcap,
                                params.r_decap * tiles);
      circuit.add<sd::Capacitor>(id + "c", dcap, sim::kGroundNode,
                                 params.c_decap / tiles);
    }
  }

  // Package bumps on the top layer: each bump is an L-R branch from the
  // shared regulator node, scaled so B bumps in parallel equal the lumped
  // package impedance.
  const auto vreg = circuit.node(name + ".vreg");
  grid.regulator = circuit.add<sd::VSource>(
      name + ".vsrc", vreg, sim::kGroundNode, sd::SourceSpec::dc(params.vcc));
  const std::size_t top = params.layers - 1;
  const auto bump_rows = bump_axis(params.rows, params.bump_pitch);
  const auto bump_cols = bump_axis(params.cols, params.bump_pitch);
  grid.bump_count = bump_rows.size() * bump_cols.size();
  const auto bumps = static_cast<double>(grid.bump_count);
  for (const std::size_t r : bump_rows) {
    for (const std::size_t c : bump_cols) {
      const std::string id =
          name + ".b" + std::to_string(r) + "_" + std::to_string(c);
      const auto mid = circuit.node(id + "m");
      circuit.add<sd::Inductor>(id + "l", vreg, mid, params.l_pkg * bumps);
      circuit.add<sd::Resistor>(id + "r", mid, grid.node(top, r, c),
                                params.r_pkg * bumps);
    }
  }
  return grid;
}

}  // namespace softfet::cells
