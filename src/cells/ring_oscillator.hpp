// Ring oscillator: an odd chain of inverters (optionally Soft-FET
// inverters) closed on itself, with a startup kick. The classic dynamic
// benchmark for a logic family: its period is 2*N*t_pd and its supply
// current shows the repetitive switching signature the paper's PDN story
// cares about.
#pragma once

#include <string>
#include <vector>

#include "cells/inverter.hpp"
#include "devices/sources.hpp"
#include "sim/circuit.hpp"

namespace softfet::cells {

struct RingOscillatorSpec {
  int stages = 5;  ///< must be odd and >= 3
  InverterSpec inverter;
  double vcc = 1.0;
  /// Startup kick: a brief current pulse into stage 0's output.
  double kick_current = 20e-6;
  double kick_duration = 20e-12;
};

struct RingOscillator {
  sim::Circuit circuit;
  std::vector<InverterCell> stages;
  std::string tap_signal;             ///< "v(n0)": stage 0 output
  std::string supply_current_signal;  ///< "i(vdd)" for the whole ring
  double vcc = 1.0;
};

[[nodiscard]] RingOscillator make_ring_oscillator(
    const RingOscillatorSpec& spec);

}  // namespace softfet::cells
