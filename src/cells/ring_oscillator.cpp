#include "cells/ring_oscillator.hpp"

#include "util/error.hpp"

namespace softfet::cells {

namespace sd = softfet::devices;

RingOscillator make_ring_oscillator(const RingOscillatorSpec& spec) {
  if (spec.stages < 3 || spec.stages % 2 == 0) {
    throw InvalidCircuitError("ring oscillator needs an odd stage count >= 3");
  }
  RingOscillator ring;
  ring.vcc = spec.vcc;
  auto& c = ring.circuit;
  const auto vdd = c.node("vdd");
  c.add<sd::VSource>("Vdd", vdd, sim::kGroundNode,
                     sd::SourceSpec::dc(spec.vcc));

  // Nodes n0..n(N-1); stage k drives n(k) from n(k-1 mod N).
  std::vector<sim::NodeId> nodes;
  nodes.reserve(static_cast<std::size_t>(spec.stages));
  for (int k = 0; k < spec.stages; ++k) {
    nodes.push_back(c.node("n" + std::to_string(k)));
  }
  for (int k = 0; k < spec.stages; ++k) {
    const auto in = nodes[static_cast<std::size_t>(
        (k + spec.stages - 1) % spec.stages)];
    ring.stages.push_back(add_inverter(c, "s" + std::to_string(k), in,
                                       nodes[static_cast<std::size_t>(k)],
                                       vdd, sim::kGroundNode, spec.inverter));
  }

  // The odd ring's DC solution is the metastable all-at-VM point; kick one
  // node so the transient falls into oscillation.
  c.add<sd::ISource>(
      "Ikick", sim::kGroundNode, nodes[0],
      sd::SourceSpec::pulse(0.0, spec.kick_current, 10e-12, 1e-12, 1e-12,
                            spec.kick_duration));

  ring.tap_signal = "v(n0)";
  ring.supply_current_signal = "i(vdd)";
  return ring;
}

}  // namespace softfet::cells
