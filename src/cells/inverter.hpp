// Inverter cell builders: the baseline CMOS inverter and the peak-current
// reduction variants the paper compares in Fig. 5 (HVT, gate series
// resistance, stacked devices) plus the proposed Soft-FET inverter (PTM in
// series with the common gate).
#pragma once

#include <functional>
#include <optional>
#include <string>

#include "devices/mosfet.hpp"
#include "devices/ptm.hpp"
#include "devices/sources.hpp"
#include "sim/circuit.hpp"

namespace softfet::cells {

/// Electrical description of one inverter instance.
struct InverterSpec {
  devices::MosfetModel nmos_model;
  devices::MosfetModel pmos_model;
  double wn = 120e-9;
  double wp = 240e-9;
  double l = 40e-9;
  double m = 1.0;

  /// > 0: insert a constant resistor between input and gate (series-R
  /// variant).
  double gate_series_r = 0.0;
  /// Set: insert a PTM between input and gate (the Soft-FET).
  std::optional<devices::PtmParams> ptm;
  /// Number of series transistors in each of the pull-up/pull-down paths
  /// (1 = plain inverter, 2 = stacked variant).
  int stack = 1;

  InverterSpec();
};

/// Handles to the devices of an instantiated inverter.
struct InverterCell {
  sim::NodeId in = 0;    ///< cell input (before any PTM / series R)
  sim::NodeId gate = 0;  ///< common gate node (== in unless PTM / series R)
  sim::NodeId out = 0;
  devices::Mosfet* pmos = nullptr;  ///< rail-side PMOS
  devices::Mosfet* nmos = nullptr;  ///< rail-side NMOS
  devices::Ptm* ptm = nullptr;      ///< non-null for Soft-FET cells
};

/// Instantiate an inverter; device names are prefixed with `name`.
InverterCell add_inverter(sim::Circuit& circuit, const std::string& name,
                          sim::NodeId in, sim::NodeId out, sim::NodeId vdd,
                          sim::NodeId vss, const InverterSpec& spec);

/// The paper's single-gate characterization bench: a ramped input driving
/// one inverter (the DUT, on its own supply so its current is observable in
/// isolation) that drives an FO4 load (a fan-out-of-4 inverter on a separate
/// supply).
struct InverterTestbenchSpec {
  InverterSpec dut;
  double vcc = 1.0;
  double input_transition = 30e-12;  ///< input ramp time (0% to 100%)
  double input_delay = 100e-12;      ///< time before the ramp starts
  bool input_rising = false;  ///< paper's Fig. 4 studies the falling input
  double fanout = 4.0;        ///< load inverter size multiple
  /// Instrumentation hook: called with the fully built circuit just before
  /// the testbench is returned. Tests use it to add probes or fault
  /// devices without re-deriving the bench topology.
  std::function<void(sim::Circuit&)> instrument;
};

struct InverterTestbench {
  sim::Circuit circuit;
  InverterCell dut;
  devices::VSource* vin = nullptr;
  devices::VSource* vdd_dut = nullptr;  ///< supplies only the DUT
  /// Signal names for measurements.
  std::string input_signal = "v(in)";
  std::string gate_signal;            ///< "v(gate)" or "v(in)"
  std::string output_signal = "v(out)";
  std::string supply_current_signal = "i(vdd)";  ///< DUT VCC rail current
  std::string pmos_current_signal;    ///< "id(<dut>.mp...)"
  std::string nmos_current_signal;
  double vcc = 1.0;
  double input_delay = 0.0;
  double input_transition = 0.0;
  /// A reasonable stop time for the transition (several RC tails).
  double suggested_tstop = 0.0;
};

[[nodiscard]] InverterTestbench make_inverter_testbench(
    const InverterTestbenchSpec& spec);

}  // namespace softfet::cells
