#include "cells/io_buffer.hpp"

#include "cells/inverter.hpp"
#include "devices/capacitor.hpp"
#include "devices/inductor.hpp"
#include "devices/resistor.hpp"
#include "devices/tech40.hpp"

namespace softfet::cells {

namespace sd = softfet::devices;
namespace t40 = softfet::devices::tech40;

devices::PtmParams IoBufferSpec::default_driver_ptm() {
  devices::PtmParams p;
  // Calibrated so the Soft-FET driver lands near the paper's 46% SSN
  // reduction (see bench/fig11_io_buffer).
  p.r_ins = 60e3;
  p.r_met = 600.0;
  p.v_imt = 0.4;
  p.v_mit = 0.3;
  p.t_ptm = 10e-12;
  return p;
}

IoBufferTestbench make_io_buffer_testbench(const IoBufferSpec& spec) {
  IoBufferTestbench tb;
  tb.vcc = spec.vcc;
  tb.input_delay = spec.input_delay;
  auto& c = tb.circuit;

  // Board supplies and bondwires to the internal rails.
  const auto vext = c.node("vext");
  const auto vddi = c.node("vddi");
  const auto vssi = c.node("vssi");
  c.add<sd::VSource>("Vext", vext, sim::kGroundNode,
                     sd::SourceSpec::dc(spec.vcc));
  const auto vdd_mid = c.node("vdd_mid");
  c.add<sd::Inductor>("Lvdd", vext, vdd_mid, spec.bondwire_l);
  c.add<sd::Resistor>("Rvdd", vdd_mid, vddi, spec.bondwire_r);
  const auto vss_mid = c.node("vss_mid");
  c.add<sd::Inductor>("Lvss", sim::kGroundNode, vss_mid, spec.bondwire_l);
  c.add<sd::Resistor>("Rvss", vss_mid, vssi, spec.bondwire_r);

  // Input edge (on-die signal, referenced to true ground).
  const auto in = c.node("in");
  const double v0 = spec.input_rising ? 0.0 : spec.vcc;
  const double v1 = spec.input_rising ? spec.vcc : 0.0;
  c.add<sd::VSource>(
      "Vin", in, sim::kGroundNode,
      sd::SourceSpec::ramp(v0, v1, spec.input_delay, spec.input_transition));

  // Tapered driver chain (1x -> 4x -> final), all m-scaled by the number of
  // simultaneously switching buffers.
  const double n_ssn = spec.simultaneous;
  const auto s1 = c.node("s1");
  const auto s2 = c.node("s2");
  const auto pad = c.node("pad");

  InverterSpec stage;
  stage.m = 1.0 * n_ssn;
  add_inverter(c, "st1", in, s1, vddi, vssi, stage);
  stage.m = spec.final_stage_m / 8.0 * n_ssn;
  add_inverter(c, "st2", s1, s2, vddi, vssi, stage);

  InverterSpec final_stage;
  final_stage.m = spec.final_stage_m * n_ssn;
  if (spec.ptm) final_stage.ptm = spec.ptm;
  const InverterCell drv =
      add_inverter(c, "drv", s2, pad, vddi, vssi, final_stage);
  tb.ptm = drv.ptm;

  // Pad loads (1 pF each, N in parallel).
  c.add<sd::Capacitor>("Cpad", pad, sim::kGroundNode,
                       spec.pad_cap * n_ssn);

  // On-die rail decoupling is deliberately tiny for I/O rails.
  c.add<sd::Capacitor>("Cvddi", vddi, vssi, 2e-12);

  double settle = 20e-9;
  if (spec.ptm) {
    settle += 8.0 * spec.ptm->r_ins *
              (drv.pmos->gate_capacitance() + drv.nmos->gate_capacitance());
  }
  tb.suggested_tstop = spec.input_delay + spec.input_transition + settle;
  return tb;
}

}  // namespace softfet::cells
