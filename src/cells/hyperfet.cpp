#include "cells/hyperfet.hpp"

#include <cmath>

#include "devices/resistor.hpp"
#include "sim/analyses.hpp"
#include "util/error.hpp"

namespace softfet::cells {

namespace sd = softfet::devices;

HyperFetCell add_hyperfet_nmos(sim::Circuit& circuit, const std::string& name,
                               sim::NodeId d, sim::NodeId g, sim::NodeId s,
                               const devices::MosfetModel& model,
                               const devices::MosfetDims& dims,
                               const devices::PtmParams& ptm) {
  HyperFetCell cell;
  cell.internal_source = circuit.node(name + ".si");
  cell.mosfet = circuit.add<sd::Mosfet>(name + ".m", d, g,
                                        cell.internal_source, s, model, dims);
  cell.ptm = circuit.add<sd::Ptm>(name + ".ptm", cell.internal_source, s, ptm);
  return cell;
}

namespace {

[[nodiscard]] std::vector<double> vgs_points(double vgs_max, int points) {
  std::vector<double> v;
  v.reserve(static_cast<std::size_t>(points));
  for (int i = 0; i < points; ++i) {
    v.push_back(vgs_max * static_cast<double>(i) /
                static_cast<double>(points - 1));
  }
  return v;
}

}  // namespace

TransferCurve hyperfet_transfer_curve(const devices::MosfetModel& model,
                                      const devices::MosfetDims& dims,
                                      const devices::PtmParams& ptm,
                                      double vds, double vgs_max, int points) {
  if (points < 2) throw Error("transfer curve needs >= 2 points");
  sim::Circuit c;
  const auto d = c.node("d");
  const auto g = c.node("g");
  c.add<sd::VSource>("Vd", d, sim::kGroundNode, sd::SourceSpec::dc(vds));
  c.add<sd::VSource>("Vg", g, sim::kGroundNode, sd::SourceSpec::dc(0.0));
  add_hyperfet_nmos(c, "hf", d, g, sim::kGroundNode, model, dims, ptm);

  TransferCurve curve;
  curve.vgs = vgs_points(vgs_max, points);
  const auto sweep = sim::dc_sweep(c, "Vg", curve.vgs);
  for (const double i_vd : sweep.table.signal("i(vd)")) {
    curve.id.push_back(-i_vd);  // drain supply sources the drain current
  }
  return curve;
}

TransferCurve mosfet_transfer_curve(const devices::MosfetModel& model,
                                    const devices::MosfetDims& dims,
                                    double vds, double vgs_max, int points) {
  if (points < 2) throw Error("transfer curve needs >= 2 points");
  sim::Circuit c;
  const auto d = c.node("d");
  const auto g = c.node("g");
  c.add<sd::VSource>("Vd", d, sim::kGroundNode, sd::SourceSpec::dc(vds));
  c.add<sd::VSource>("Vg", g, sim::kGroundNode, sd::SourceSpec::dc(0.0));
  c.add<sd::Mosfet>("m", d, g, sim::kGroundNode, sim::kGroundNode, model,
                    dims);

  TransferCurve curve;
  curve.vgs = vgs_points(vgs_max, points);
  const auto sweep = sim::dc_sweep(c, "Vg", curve.vgs);
  for (const double i_vd : sweep.table.signal("i(vd)")) {
    curve.id.push_back(-i_vd);
  }
  return curve;
}

namespace {

/// Build and read one n x n crossbar: cell (0,0) selected with resistance
/// `r_selected`; all other cells `r_others`. Unselected lines float.
[[nodiscard]] double crossbar_read_current(int n, double r_selected,
                                           double r_others, bool with_selector,
                                           const devices::PtmParams& ptm,
                                           double v_read) {
  sim::Circuit c;
  const auto wl0 = c.node("wl0");
  const auto bl0 = c.node("bl0");
  c.add<sd::VSource>("Vread", wl0, sim::kGroundNode,
                     sd::SourceSpec::dc(v_read));
  // Sense at virtual ground: a 0V source whose branch current is the read
  // current.
  c.add<sd::VSource>("Vsense", bl0, sim::kGroundNode, sd::SourceSpec::dc(0.0));

  for (int row = 0; row < n; ++row) {
    for (int col = 0; col < n; ++col) {
      const auto wl = c.node("wl" + std::to_string(row));
      const auto bl = c.node("bl" + std::to_string(col));
      const std::string cell =
          "c" + std::to_string(row) + "_" + std::to_string(col);
      const double r = (row == 0 && col == 0) ? r_selected : r_others;
      if (with_selector) {
        const auto mid = c.node(cell + ".mid");
        c.add<sd::Ptm>(cell + ".sel", wl, mid, ptm);
        c.add<sd::Resistor>(cell + ".r", mid, bl, r);
      } else {
        c.add<sd::Resistor>(cell + ".r", wl, bl, r);
      }
    }
  }
  const auto op = sim::dc_operating_point(c);
  return std::fabs(op.unknown("i(vsense)"));
}

}  // namespace

CrossbarReadResult crossbar_read(int n, double r_cell_low, double r_cell_high,
                                 bool with_selector,
                                 const devices::PtmParams& ptm,
                                 double v_read) {
  if (n < 2) throw Error("crossbar_read: n must be >= 2");
  CrossbarReadResult result;
  // Reading a low-resistance (programmed) cell among high-resistance
  // neighbours: the easy case.
  result.selected_current = crossbar_read_current(
      n, r_cell_low, r_cell_high, with_selector, ptm, v_read);
  // Reading a high-resistance cell among low-resistance neighbours: sneak
  // paths through three low cells fake a low reading without selectors.
  result.sneak_current = crossbar_read_current(
      n, r_cell_high, r_cell_low, with_selector, ptm, v_read);
  return result;
}

}  // namespace softfet::cells
