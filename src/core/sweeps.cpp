#include "core/sweeps.hpp"

#include "util/error.hpp"

namespace softfet::core {

namespace {
void require_softfet(const cells::InverterTestbenchSpec& base,
                     const char* who) {
  if (!base.dut.ptm) {
    throw Error(std::string(who) + ": base spec must be a Soft-FET inverter");
  }
}
}  // namespace

std::vector<DesignSpacePoint> sweep_vimt_vmit(
    const cells::InverterTestbenchSpec& base, const std::vector<double>& v_imt,
    const std::vector<double>& v_mit, const sim::SimOptions& options) {
  require_softfet(base, "sweep_vimt_vmit");
  std::vector<DesignSpacePoint> points;
  for (const double imt : v_imt) {
    for (const double mit : v_mit) {
      if (mit >= imt) continue;  // infeasible hysteresis window
      auto spec = base;
      spec.dut.ptm->v_imt = imt;
      spec.dut.ptm->v_mit = mit;
      DesignSpacePoint point;
      point.v_imt = imt;
      point.v_mit = mit;
      point.metrics = characterize_inverter(spec, options);
      points.push_back(std::move(point));
    }
  }
  return points;
}

std::vector<TptmPoint> sweep_tptm(const cells::InverterTestbenchSpec& base,
                                  const std::vector<double>& t_ptm_values,
                                  const sim::SimOptions& options) {
  require_softfet(base, "sweep_tptm");
  std::vector<TptmPoint> points;
  for (const double t_ptm : t_ptm_values) {
    auto spec = base;
    spec.dut.ptm->t_ptm = t_ptm;
    TptmPoint point;
    point.t_ptm = t_ptm;
    point.metrics = characterize_inverter(spec, options);
    points.push_back(std::move(point));
  }
  return points;
}

std::vector<SlewPoint> sweep_slew(const cells::InverterTestbenchSpec& base,
                                  const std::vector<double>& transitions,
                                  const sim::SimOptions& options) {
  require_softfet(base, "sweep_slew");
  auto baseline_spec = base;
  baseline_spec.dut.ptm.reset();
  std::vector<SlewPoint> points;
  for (const double transition : transitions) {
    SlewPoint point;
    point.input_transition = transition;
    auto soft = base;
    soft.input_transition = transition;
    point.soft = characterize_inverter(soft, options);
    auto plain = baseline_spec;
    plain.input_transition = transition;
    point.baseline = characterize_inverter(plain, options);
    points.push_back(std::move(point));
  }
  return points;
}

std::vector<RatioPoint> sweep_slew_tptm_ratio(
    const cells::InverterTestbenchSpec& base, const std::vector<double>& slews,
    const std::vector<double>& t_ptms, const sim::SimOptions& options) {
  require_softfet(base, "sweep_slew_tptm_ratio");
  auto baseline_spec = base;
  baseline_spec.dut.ptm.reset();

  std::vector<RatioPoint> points;
  for (const double slew : slews) {
    auto plain = baseline_spec;
    plain.input_transition = slew;
    const TransitionMetrics ref = characterize_inverter(plain, options);
    for (const double t_ptm : t_ptms) {
      auto spec = base;
      spec.input_transition = slew;
      spec.dut.ptm->t_ptm = t_ptm;
      const TransitionMetrics m = characterize_inverter(spec, options);
      RatioPoint point;
      point.slew = slew;
      point.t_ptm = t_ptm;
      point.ratio = slew / t_ptm;
      point.imax_reduction_pct = 100.0 * (1.0 - m.i_max / ref.i_max);
      point.delay_penalty = m.delay / ref.delay;
      points.push_back(point);
    }
  }
  return points;
}

}  // namespace softfet::core
