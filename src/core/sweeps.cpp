#include "core/sweeps.hpp"

#include "util/error.hpp"
#include "util/parallel.hpp"
#include "util/units.hpp"

namespace softfet::core {

namespace {
void require_softfet(const cells::InverterTestbenchSpec& base,
                     const char* who) {
  if (!base.dut.ptm) {
    throw Error(std::string(who) + ": base spec must be a Soft-FET inverter");
  }
}
}  // namespace

std::vector<DesignSpacePoint> sweep_vimt_vmit(
    const cells::InverterTestbenchSpec& base, const std::vector<double>& v_imt,
    const std::vector<double>& v_mit, const sim::SimOptions& options) {
  require_softfet(base, "sweep_vimt_vmit");

  // Enumerate the feasible grid first so the characterizations can run as
  // one flat parallel batch with a stable output order.
  std::vector<DesignSpacePoint> points;
  for (const double imt : v_imt) {
    for (const double mit : v_mit) {
      if (mit >= imt) continue;  // infeasible hysteresis window
      DesignSpacePoint point;
      point.v_imt = imt;
      point.v_mit = mit;
      points.push_back(std::move(point));
    }
  }
  util::parallel_for(points.size(), [&](std::size_t i) {
    auto spec = base;
    spec.dut.ptm->v_imt = points[i].v_imt;
    spec.dut.ptm->v_mit = points[i].v_mit;
    points[i].failure = run_isolated(
        i,
        "v_imt=" + util::format_si(points[i].v_imt, 3, "V") +
            " v_mit=" + util::format_si(points[i].v_mit, 3, "V"),
        options, [&](const sim::SimOptions& opts) {
          points[i].metrics = characterize_inverter(spec, opts);
        });
  });
  return points;
}

std::vector<TptmPoint> sweep_tptm(const cells::InverterTestbenchSpec& base,
                                  const std::vector<double>& t_ptm_values,
                                  const sim::SimOptions& options) {
  require_softfet(base, "sweep_tptm");
  std::vector<TptmPoint> points(t_ptm_values.size());
  util::parallel_for(points.size(), [&](std::size_t i) {
    auto spec = base;
    spec.dut.ptm->t_ptm = t_ptm_values[i];
    points[i].t_ptm = t_ptm_values[i];
    points[i].failure = run_isolated(
        i, "t_ptm=" + util::format_si(t_ptm_values[i], 3, "s"), options,
        [&](const sim::SimOptions& opts) {
          points[i].metrics = characterize_inverter(spec, opts);
        });
  });
  return points;
}

std::vector<SlewPoint> sweep_slew(const cells::InverterTestbenchSpec& base,
                                  const std::vector<double>& transitions,
                                  const sim::SimOptions& options) {
  require_softfet(base, "sweep_slew");
  auto baseline_spec = base;
  baseline_spec.dut.ptm.reset();
  std::vector<SlewPoint> points(transitions.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    points[i].input_transition = transitions[i];
  }
  // Two independent characterizations per slew point; flatten to 2N tasks.
  // Failures land in per-task slots (two tasks share one point, so writing
  // points[i].failure directly from both would race) and merge serially.
  std::vector<std::optional<FailureRecord>> slots(2 * points.size());
  util::parallel_for(2 * points.size(), [&](std::size_t task) {
    const std::size_t i = task / 2;
    const std::string context =
        "slew=" + util::format_si(transitions[i], 3, "s") +
        (task % 2 == 0 ? " (soft)" : " (baseline)");
    slots[task] =
        run_isolated(i, context, options, [&](const sim::SimOptions& opts) {
          if (task % 2 == 0) {
            auto soft = base;
            soft.input_transition = transitions[i];
            points[i].soft = characterize_inverter(soft, opts);
          } else {
            auto plain = baseline_spec;
            plain.input_transition = transitions[i];
            points[i].baseline = characterize_inverter(plain, opts);
          }
        });
  });
  for (std::size_t i = 0; i < points.size(); ++i) {
    points[i].failure = slots[2 * i] ? slots[2 * i] : slots[2 * i + 1];
  }
  return points;
}

std::vector<RatioPoint> sweep_slew_tptm_ratio(
    const cells::InverterTestbenchSpec& base, const std::vector<double>& slews,
    const std::vector<double>& t_ptms, const sim::SimOptions& options) {
  require_softfet(base, "sweep_slew_tptm_ratio");
  auto baseline_spec = base;
  baseline_spec.dut.ptm.reset();

  // Per-slew baseline references, computed in parallel.
  std::vector<TransitionMetrics> refs(slews.size());
  std::vector<std::optional<FailureRecord>> ref_failures(slews.size());
  util::parallel_for(slews.size(), [&](std::size_t s) {
    ref_failures[s] = run_isolated(
        s, "baseline slew=" + util::format_si(slews[s], 3, "s"), options,
        [&](const sim::SimOptions& opts) {
          auto plain = baseline_spec;
          plain.input_transition = slews[s];
          refs[s] = characterize_inverter(plain, opts);
        });
  });

  // The full (slew, t_ptm) grid as one flat batch. Points whose per-slew
  // baseline reference failed inherit that failure without re-simulating.
  std::vector<RatioPoint> points(slews.size() * t_ptms.size());
  util::parallel_for(points.size(), [&](std::size_t task) {
    const std::size_t s = task / t_ptms.size();
    const std::size_t t = task % t_ptms.size();
    RatioPoint& point = points[task];
    point.slew = slews[s];
    point.t_ptm = t_ptms[t];
    point.ratio = slews[s] / t_ptms[t];
    if (ref_failures[s].has_value()) {
      point.failure = ref_failures[s];
      point.failure->index = task;
      return;
    }
    point.failure = run_isolated(
        task,
        "slew=" + util::format_si(slews[s], 3, "s") +
            " t_ptm=" + util::format_si(t_ptms[t], 3, "s"),
        options, [&](const sim::SimOptions& opts) {
          auto spec = base;
          spec.input_transition = slews[s];
          spec.dut.ptm->t_ptm = t_ptms[t];
          const TransitionMetrics m = characterize_inverter(spec, opts);
          point.imax_reduction_pct = 100.0 * (1.0 - m.i_max / refs[s].i_max);
          point.delay_penalty = m.delay / refs[s].delay;
        });
  });
  return points;
}

}  // namespace softfet::core
