#include "core/sweeps.hpp"

#include <algorithm>
#include <atomic>
#include <sstream>

#include "sim/batch.hpp"
#include "util/checkpoint.hpp"
#include "util/error.hpp"
#include "util/parallel.hpp"
#include "util/units.hpp"

namespace softfet::core {

namespace {
void require_softfet(const cells::InverterTestbenchSpec& base,
                     const char* who) {
  if (!base.dut.ptm) {
    throw Error(std::string(who) + ": base spec must be a Soft-FET inverter");
  }
}
}  // namespace

std::vector<DesignSpacePoint> sweep_vimt_vmit(
    const cells::InverterTestbenchSpec& base, const std::vector<double>& v_imt,
    const std::vector<double>& v_mit, const sim::SimOptions& options,
    const CheckpointSpec& checkpoint_spec, int lanes) {
  require_softfet(base, "sweep_vimt_vmit");
  throw_if_cancelled(options, "sweep_vimt_vmit");

  // Enumerate the feasible grid first so the characterizations can run as
  // one flat parallel batch with a stable output order.
  std::vector<DesignSpacePoint> points;
  for (const double imt : v_imt) {
    for (const double mit : v_mit) {
      if (mit >= imt) continue;  // infeasible hysteresis window
      DesignSpacePoint point;
      point.v_imt = imt;
      point.v_mit = mit;
      points.push_back(std::move(point));
    }
  }

  // One checkpoint slot per feasible grid point; the tag pins the file to
  // this exact grid (bit-exact axis values), refusing stale files.
  const bool use_checkpoint = checkpoint_spec.enabled();
  util::Checkpoint checkpoint;
  std::vector<char> point_done(points.size(), 0);
  if (use_checkpoint) {
    std::string tag = "vimt_vmit imt=";
    for (std::size_t i = 0; i < v_imt.size(); ++i) {
      tag += (i == 0 ? "" : ",") + encode_double(v_imt[i]);
    }
    tag += " mit=";
    for (std::size_t i = 0; i < v_mit.size(); ++i) {
      tag += (i == 0 ? "" : ",") + encode_double(v_mit[i]);
    }
    // Tag also pins the determinism mode; strict<->relaxed resume is
    // refused with a mode-specific error (see load_checkpoint_for_mode).
    checkpoint = load_checkpoint_for_mode(checkpoint_spec.path, tag,
                                          options.determinism, points.size());
    for (std::size_t i = 0; i < points.size(); ++i) {
      const auto payload = checkpoint.payload(i);
      if (!payload.has_value()) continue;
      std::istringstream in(*payload);
      std::string keyword, tail;
      in >> keyword;
      std::getline(in, tail);
      if (!tail.empty() && tail.front() == ' ') tail.erase(0, 1);
      if (keyword == "ok") {
        points[i].metrics = decode_metrics(tail);
      } else if (keyword == "fail") {
        points[i].failure = decode_failure(i, tail);
      } else {
        throw Error("checkpoint '" + checkpoint_spec.path + "': slot " +
                    std::to_string(i) + " has malformed payload '" + *payload +
                    "'");
      }
      point_done[i] = 1;
    }
  }

  std::atomic<int> completions_since_flush{0};
  const auto note_done = [&](std::size_t i, std::string payload) {
    if (!use_checkpoint) return;
    checkpoint.record(i, std::move(payload));
    const int fresh = completions_since_flush.fetch_add(1) + 1;
    if (fresh >= std::max(checkpoint_spec.flush_every, 1)) {
      completions_since_flush.store(0);
      checkpoint.save(checkpoint_spec.path);
    }
  };

  const auto make_spec = [&](std::size_t i) {
    auto spec = base;
    spec.dut.ptm->v_imt = points[i].v_imt;
    spec.dut.ptm->v_mit = points[i].v_mit;
    return spec;
  };

  const auto run_point = [&](std::size_t i) {
    auto spec = make_spec(i);
    points[i].failure = run_isolated(
        i,
        "v_imt=" + util::format_si(points[i].v_imt, 3, "V") +
            " v_mit=" + util::format_si(points[i].v_mit, 3, "V"),
        options, [&](const sim::SimOptions& opts) {
          points[i].metrics = characterize_inverter(spec, opts);
        });
    if (!points[i].failure.has_value()) {
      note_done(i, "ok " + encode_metrics(points[i].metrics));
    } else if (!points[i].failure->cancelled()) {
      note_done(i, "fail " + encode_failure(*points[i].failure));
    }
  };

  // One block of consecutive grid points through the lockstep batch engine;
  // any lane the batch cannot finish (eviction, measurement throw) falls
  // back to run_point, whose behaviour IS the scalar path. Blocks are fixed
  // spans of point indices, so results match the scalar scheduler bitwise
  // for any worker count.
  const auto run_block = [&](std::size_t begin, std::size_t end) {
    std::vector<std::size_t> lane_points;
    std::vector<cells::InverterTestbenchSpec> lane_specs;
    lane_points.reserve(end - begin);
    lane_specs.reserve(end - begin);
    for (std::size_t i = begin; i < end; ++i) {
      if (point_done[i] != 0) continue;
      lane_points.push_back(i);
      lane_specs.push_back(make_spec(i));
    }
    if (lane_specs.empty()) return;
    const auto lane_results = characterize_inverter_batch(lane_specs, options);
    for (std::size_t j = 0; j < lane_results.size(); ++j) {
      const std::size_t i = lane_points[j];
      if (lane_results[j].has_value()) {
        points[i].metrics = *lane_results[j];
        points[i].failure.reset();
        note_done(i, "ok " + encode_metrics(points[i].metrics));
      } else {
        run_point(i);
      }
    }
  };

  // Same lane-knob policy as MonteCarloSpec::lanes (0 = auto). Budgeted
  // runs stay scalar: the batch cannot replicate per-lane truncation.
  constexpr int kAutoLanes = 8;
  const int lane_knob = lanes == 0 ? kAutoLanes : std::max(lanes, 1);
  const bool use_batch =
      lane_knob > 1 && sim::batch_transient_supported(options);

  if (use_batch) {
    const auto lane_width = static_cast<std::size_t>(lane_knob);
    const std::size_t blocks =
        (points.size() + lane_width - 1) / lane_width;
    util::parallel_for(
        blocks,
        [&](std::size_t b) {
          const std::size_t begin = b * lane_width;
          run_block(begin, std::min(begin + lane_width, points.size()));
        },
        0, options.budget.cancel);
  } else {
    util::parallel_for(
        points.size(),
        [&](std::size_t i) {
          if (point_done[i] != 0) return;
          run_point(i);
        },
        0, options.budget.cancel);
  }

  // Cancel-poisoned points were never really attempted: clear them (they
  // rerun on resume), flush what is real, and surface the cancel — a
  // silently partial design-space map would mislead.
  bool cancelled = options.budget.cancel != nullptr &&
                   options.budget.cancel->requested();
  for (auto& point : points) {
    if (point.failure.has_value() && point.failure->cancelled()) {
      point.failure.reset();
      cancelled = true;
    }
  }
  if (cancelled) {
    std::string message = "sweep_vimt_vmit: cancelled";
    if (use_checkpoint) {
      checkpoint.save(checkpoint_spec.path);
      message += " with " + std::to_string(checkpoint.completed()) + "/" +
                 std::to_string(points.size()) +
                 " points checkpointed; rerun against '" +
                 checkpoint_spec.path + "' to resume";
    }
    throw BudgetExceededError(message, util::BudgetStop::kCancel);
  }
  if (use_checkpoint) checkpoint.save(checkpoint_spec.path);
  return points;
}

// The remaining sweeps stay on the scalar path deliberately: they are
// small (tens of points), run once per study, and two of them interleave
// soft/baseline topologies per task — different circuits cannot share a
// lane batch. The V_IMT/V_MIT grid above is the only sweep whose point
// count grows quadratically with resolution.
std::vector<TptmPoint> sweep_tptm(const cells::InverterTestbenchSpec& base,
                                  const std::vector<double>& t_ptm_values,
                                  const sim::SimOptions& options) {
  require_softfet(base, "sweep_tptm");
  std::vector<TptmPoint> points(t_ptm_values.size());
  util::parallel_for(
      points.size(),
      [&](std::size_t i) {
        auto spec = base;
        spec.dut.ptm->t_ptm = t_ptm_values[i];
        points[i].t_ptm = t_ptm_values[i];
        points[i].failure = run_isolated(
            i, "t_ptm=" + util::format_si(t_ptm_values[i], 3, "s"), options,
            [&](const sim::SimOptions& opts) {
              points[i].metrics = characterize_inverter(spec, opts);
            });
      },
      0, options.budget.cancel);
  throw_if_cancelled(options, "sweep_tptm");
  return points;
}

std::vector<SlewPoint> sweep_slew(const cells::InverterTestbenchSpec& base,
                                  const std::vector<double>& transitions,
                                  const sim::SimOptions& options) {
  require_softfet(base, "sweep_slew");
  auto baseline_spec = base;
  baseline_spec.dut.ptm.reset();
  std::vector<SlewPoint> points(transitions.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    points[i].input_transition = transitions[i];
  }
  // Two independent characterizations per slew point; flatten to 2N tasks.
  // Failures land in per-task slots (two tasks share one point, so writing
  // points[i].failure directly from both would race) and merge serially.
  std::vector<std::optional<FailureRecord>> slots(2 * points.size());
  util::parallel_for(
      2 * points.size(),
      [&](std::size_t task) {
        const std::size_t i = task / 2;
        const std::string context =
            "slew=" + util::format_si(transitions[i], 3, "s") +
            (task % 2 == 0 ? " (soft)" : " (baseline)");
        slots[task] =
            run_isolated(i, context, options, [&](const sim::SimOptions& opts) {
              if (task % 2 == 0) {
                auto soft = base;
                soft.input_transition = transitions[i];
                points[i].soft = characterize_inverter(soft, opts);
              } else {
                auto plain = baseline_spec;
                plain.input_transition = transitions[i];
                points[i].baseline = characterize_inverter(plain, opts);
              }
            });
      },
      0, options.budget.cancel);
  throw_if_cancelled(options, "sweep_slew");
  for (std::size_t i = 0; i < points.size(); ++i) {
    points[i].failure = slots[2 * i] ? slots[2 * i] : slots[2 * i + 1];
  }
  return points;
}

std::vector<RatioPoint> sweep_slew_tptm_ratio(
    const cells::InverterTestbenchSpec& base, const std::vector<double>& slews,
    const std::vector<double>& t_ptms, const sim::SimOptions& options) {
  require_softfet(base, "sweep_slew_tptm_ratio");
  auto baseline_spec = base;
  baseline_spec.dut.ptm.reset();

  // Per-slew baseline references, computed in parallel.
  std::vector<TransitionMetrics> refs(slews.size());
  std::vector<std::optional<FailureRecord>> ref_failures(slews.size());
  util::parallel_for(
      slews.size(),
      [&](std::size_t s) {
        ref_failures[s] = run_isolated(
            s, "baseline slew=" + util::format_si(slews[s], 3, "s"), options,
            [&](const sim::SimOptions& opts) {
              auto plain = baseline_spec;
              plain.input_transition = slews[s];
              refs[s] = characterize_inverter(plain, opts);
            });
      },
      0, options.budget.cancel);
  throw_if_cancelled(options, "sweep_slew_tptm_ratio");

  // The full (slew, t_ptm) grid as one flat batch. Points whose per-slew
  // baseline reference failed inherit that failure without re-simulating.
  std::vector<RatioPoint> points(slews.size() * t_ptms.size());
  util::parallel_for(
      points.size(),
      [&](std::size_t task) {
        const std::size_t s = task / t_ptms.size();
        const std::size_t t = task % t_ptms.size();
        RatioPoint& point = points[task];
        point.slew = slews[s];
        point.t_ptm = t_ptms[t];
        point.ratio = slews[s] / t_ptms[t];
        if (ref_failures[s].has_value()) {
          point.failure = ref_failures[s];
          point.failure->index = task;
          return;
        }
        point.failure = run_isolated(
            task,
            "slew=" + util::format_si(slews[s], 3, "s") +
                " t_ptm=" + util::format_si(t_ptms[t], 3, "s"),
            options, [&](const sim::SimOptions& opts) {
              auto spec = base;
              spec.input_transition = slews[s];
              spec.dut.ptm->t_ptm = t_ptms[t];
              const TransitionMetrics m = characterize_inverter(spec, opts);
              point.imax_reduction_pct =
                  100.0 * (1.0 - m.i_max / refs[s].i_max);
              point.delay_penalty = m.delay / refs[s].delay;
            });
      },
      0, options.budget.cancel);
  throw_if_cancelled(options, "sweep_slew_tptm_ratio");
  return points;
}

}  // namespace softfet::core
