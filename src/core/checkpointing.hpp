// Checkpoint payload codec for the batch drivers (Monte Carlo, design-space
// sweeps): bitwise-exact double encoding plus FailureRecord round-tripping.
//
// Payloads use C hexfloat ("%a") for every double so a resumed run decodes
// exactly the bits the interrupted run computed — resume is bitwise
// identical to an uninterrupted run, not merely close. FailureRecords keep
// index/context/message/retried/budget_stop across the round trip; the
// structured SolverDiagnostics are summarized into the message and not
// persisted (re-running the point is the way to regenerate them).
#pragma once

#include <cstddef>
#include <string>

#include "core/characterize.hpp"
#include "core/failure.hpp"
#include "sim/options.hpp"
#include "util/checkpoint.hpp"

namespace softfet::core {

/// Where (and how often) a batch driver persists completed-point slots.
/// An empty path disables checkpointing entirely.
struct CheckpointSpec {
  std::string path;     ///< checkpoint file (atomic tmp+rename saves)
  int flush_every = 16; ///< save after this many newly completed points

  [[nodiscard]] bool enabled() const noexcept { return !path.empty(); }
};

/// Append the determinism-mode marker to a checkpoint tag. kBitwise leaves
/// the tag untouched so every checkpoint written before the mode existed
/// stays resumable; kRelaxedUlp appends " det=relaxed" so a file is pinned
/// to the rounding regime that produced it and strict<->relaxed mixing is
/// structurally impossible.
[[nodiscard]] std::string tag_for_mode(std::string tag, sim::Determinism mode);

/// util::Checkpoint::load_or_create with determinism-mode tagging: the tag
/// is suffixed via tag_for_mode(), and a tag mismatch caused purely by the
/// mode marker is rethrown as a clear "written under a different determinism
/// mode" error instead of the generic different-batch refusal.
[[nodiscard]] util::Checkpoint load_checkpoint_for_mode(
    const std::string& path, const std::string& tag, sim::Determinism mode,
    std::size_t total);

/// Bitwise-exact double -> token ("%a" hexfloat; round-trips -0.0/inf/nan).
[[nodiscard]] std::string encode_double(double value);
/// Inverse of encode_double; throws softfet::Error on a malformed token.
[[nodiscard]] double decode_double(const std::string& token);

/// FailureRecord -> payload tail (the tokens after a leading "fail"
/// keyword): "<retried> <budget_stop> <context> <message>" with the string
/// fields percent-escaped.
[[nodiscard]] std::string encode_failure(const FailureRecord& failure);
/// Inverse of encode_failure; `index` restores the batch position (it is
/// implied by the slot, not stored in the payload).
[[nodiscard]] FailureRecord decode_failure(std::size_t index,
                                           const std::string& tail);

/// TransitionMetrics -> payload tail: the nine scalar metrics plus the PTM
/// transition counters, all bitwise round-trippable. The full waveforms
/// (`tran`) are NOT serialized: a resumed sweep point carries empty
/// waveforms, which the sweep consumers (statistics, CSV dumps of the
/// scalar metrics) never read.
[[nodiscard]] std::string encode_metrics(const TransitionMetrics& metrics);
/// Inverse of encode_metrics (minus `tran`, see above).
[[nodiscard]] TransitionMetrics decode_metrics(const std::string& tail);

}  // namespace softfet::core
