#include "core/failure.hpp"

#include <algorithm>

namespace softfet::core {

void require_complete(const sim::TranResult& tran, const std::string& who) {
  if (!tran.truncated) return;
  SolverDiagnostics d = tran.diagnostics;
  if (d.analysis.empty()) d.analysis = "transient";
  throw BudgetExceededError(who, tran.stop_reason, std::move(d));
}

void throw_if_cancelled(const sim::SimOptions& options, const char* who) {
  if (options.budget.cancel != nullptr && options.budget.cancel->requested()) {
    throw BudgetExceededError(who, util::BudgetStop::kCancel);
  }
}

sim::SimOptions tightened_options(const sim::SimOptions& options) {
  sim::SimOptions tight = options;
  // Backward Euler is L-stable: no trapezoidal ringing across the PTM's
  // near-discontinuous transitions.
  tight.use_trapezoidal = false;
  tight.newton_max_iter = std::max(options.newton_max_iter, 300);
  // Start cautiously and grow slowly; shrink harder on trouble.
  tight.dt_shrink = std::min(options.dt_shrink, 0.1);
  tight.dt_grow = std::min(options.dt_grow, 1.3);
  // Escalate to the heavy recovery rungs sooner.
  if (options.recovery_escalate_after > 0) {
    tight.recovery_escalate_after =
        std::min(options.recovery_escalate_after, 3);
  }
  return tight;
}

}  // namespace softfet::core
