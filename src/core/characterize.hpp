// Single-gate transition characterization: runs the paper's inverter
// testbench and extracts I_MAX, di/dt, delay, and charge metrics
// (paper Figs. 4-9 all build on this).
#pragma once

#include <optional>
#include <vector>

#include "cells/inverter.hpp"
#include "sim/analyses.hpp"
#include "sim/options.hpp"

namespace softfet::core {

struct TransitionMetrics {
  double i_max = 0.0;     ///< peak current drawn from the DUT VCC rail [A]
  double max_didt = 0.0;  ///< max |di/dt| of the VCC rail current [A/s]
  double delay = 0.0;     ///< 50% input -> 20/80% output (paper def.) [s]
  double output_transition = 0.0;  ///< 20%-80% output edge time [s]
  double q_short = 0.0;   ///< short-circuit charge [C]
  double q_output = 0.0;  ///< output switching charge [C]
  double energy = 0.0;    ///< energy drawn from the DUT rail [J]
  long imt_count = 0;     ///< PTM insulator->metal transitions
  long mit_count = 0;     ///< PTM metal->insulator transitions
  sim::TranResult tran;   ///< full waveforms (figure dumps)
};

/// Smoothing window for the di/dt measurement: slopes are averaged over at
/// least this long. Rationale: the droop a PDN develops responds to the
/// band-limited di/dt (its L/R and LC time constants are far slower than
/// the PTM's intrinsic transition), so di/dt is measured at the PTM
/// switching-time scale rather than at solver event resolution.
inline constexpr double kDidtWindow = 10e-12;

/// Run the testbench described by `spec` and measure one transition.
[[nodiscard]] TransitionMetrics characterize_inverter(
    const cells::InverterTestbenchSpec& spec, const sim::SimOptions& options = {});

/// Characterize K sibling specs (same topology, different parameter values)
/// through the batched lockstep transient engine. Entry k is the metrics
/// for specs[k], bitwise identical to characterize_inverter(specs[k]), or
/// nullopt when the engine evicted that lane — the caller must rerun those
/// samples through scalar characterize_inverter, which reproduces the
/// scalar behaviour (including its failure throws) exactly.
[[nodiscard]] std::vector<std::optional<TransitionMetrics>>
characterize_inverter_batch(const std::vector<cells::InverterTestbenchSpec>& specs,
                            const sim::SimOptions& options = {});

}  // namespace softfet::core
