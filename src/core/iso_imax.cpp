#include "core/iso_imax.hpp"

#include <cmath>
#include <functional>
#include <optional>

#include "util/error.hpp"
#include "util/logging.hpp"
#include "util/parallel.hpp"
#include "util/units.hpp"

namespace softfet::core {

double bisect_to_target(const std::function<double(double)>& f, double lo,
                        double hi, double target, bool increasing,
                        double rel_tol, int max_iterations) {
  double f_lo = f(lo);
  double f_hi = f(hi);
  const auto below = [&](double value) {
    return increasing ? value < target : value > target;
  };
  if (!below(f_lo) || below(f_hi)) {
    // Accept an endpoint that already matches within tolerance.
    if (std::fabs(f_lo - target) <= rel_tol * std::fabs(target)) return lo;
    if (std::fabs(f_hi - target) <= rel_tol * std::fabs(target)) return hi;
    throw ConvergenceError("bisect_to_target: target " +
                           util::format_si(target, 4) + " not bracketed by [" +
                           util::format_si(f_lo, 4) + ", " +
                           util::format_si(f_hi, 4) + "]");
  }
  double knob = 0.5 * (lo + hi);
  for (int i = 0; i < max_iterations; ++i) {
    knob = 0.5 * (lo + hi);
    const double value = f(knob);
    if (std::fabs(value - target) <= rel_tol * std::fabs(target)) return knob;
    if (below(value)) {
      lo = knob;
    } else {
      hi = knob;
    }
  }
  util::log_warn("bisect_to_target: tolerance not reached, returning best");
  return knob;
}

namespace {

/// I_MAX of a variant at the calibration VCC.
[[nodiscard]] double imax_of(const cells::InverterTestbenchSpec& spec,
                             const sim::SimOptions& options) {
  return characterize_inverter(spec, options).i_max;
}

[[nodiscard]] cells::InverterTestbenchSpec with_vcc(
    cells::InverterTestbenchSpec spec, double vcc) {
  spec.vcc = vcc;
  return spec;
}

/// Strip the Soft-FET PTM from a spec, leaving the plain baseline inverter.
[[nodiscard]] cells::InverterTestbenchSpec baseline_of(
    cells::InverterTestbenchSpec spec) {
  spec.dut.ptm.reset();
  spec.dut.gate_series_r = 0.0;
  spec.dut.stack = 1;
  return spec;
}

}  // namespace

IsoImaxResult run_iso_imax_study(const IsoImaxSpec& spec,
                                 const sim::SimOptions& options) {
  if (!spec.base.dut.ptm) {
    throw Error("run_iso_imax_study: base spec must be a Soft-FET inverter");
  }
  IsoImaxResult result;

  // --- target: Soft-FET peak current at the calibration VCC -------------
  const auto soft_cal = with_vcc(spec.base, spec.calibration_vcc);
  result.target_imax = imax_of(soft_cal, options);
  util::log_info("iso-imax: Soft-FET target I_MAX = " +
                 std::to_string(result.target_imax));

  const auto base = baseline_of(spec.base);

  // --- calibrate the three iso-I_MAX knobs (independent bisections) -----
  const auto calibrate_hvt = [&](const sim::SimOptions& opts) {
    result.hvt_delta_vt = bisect_to_target(
        [&](double dvt) {
          auto s = with_vcc(base, spec.calibration_vcc);
          s.dut.nmos_model.vt0 += dvt;
          s.dut.pmos_model.vt0 += dvt;
          return imax_of(s, opts);
        },
        0.0, 0.45, result.target_imax, /*increasing=*/false, spec.tolerance);
  };
  const auto calibrate_series_r = [&](const sim::SimOptions& opts) {
    result.series_r = bisect_to_target(
        [&](double log_r) {
          auto s = with_vcc(base, spec.calibration_vcc);
          s.dut.gate_series_r = std::exp(log_r);
          return imax_of(s, opts);
        },
        std::log(10.0), std::log(1e8), result.target_imax,
        /*increasing=*/false, spec.tolerance);
    result.series_r = std::exp(result.series_r);
  };
  const auto calibrate_stack = [&](const sim::SimOptions& opts) {
    result.stack_width_mult = bisect_to_target(
        [&](double mult) {
          auto s = with_vcc(base, spec.calibration_vcc);
          s.dut.stack = 2;
          s.dut.m = spec.base.dut.m * mult;
          return imax_of(s, opts);
        },
        0.1, 6.0, result.target_imax, /*increasing=*/true, spec.tolerance);
  };
  // Each bisection is sequential internally but they don't depend on each
  // other; run them side by side. A calibration that cannot converge is
  // isolated: it leaves its knob at zero and marks the variant instead of
  // aborting the other four curves.
  std::vector<std::optional<FailureRecord>> calibration_failures(3);
  const char* const calibration_names[] = {"hvt", "series-r", "stacked"};
  util::parallel_for(
      3,
      [&](std::size_t task) {
        calibration_failures[task] = run_isolated(
            task, std::string("calibrate ") + calibration_names[task], options,
            [&](const sim::SimOptions& opts) {
              switch (task) {
                case 0: calibrate_hvt(opts); break;
                case 1: calibrate_series_r(opts); break;
                default: calibrate_stack(opts); break;
              }
            });
      },
      0, options.budget.cancel);
  throw_if_cancelled(options, "run_iso_imax_study");

  // --- sweep VCC for every variant --------------------------------------
  using SpecMaker = std::function<cells::InverterTestbenchSpec(double)>;
  const std::vector<std::pair<std::string, SpecMaker>> variants = {
      {"softfet", [&](double vcc) { return with_vcc(spec.base, vcc); }},
      {"baseline", [&](double vcc) { return with_vcc(base, vcc); }},
      {"hvt",
       [&](double vcc) {
         auto s = with_vcc(base, vcc);
         s.dut.nmos_model.vt0 += result.hvt_delta_vt;
         s.dut.pmos_model.vt0 += result.hvt_delta_vt;
         return s;
       }},
      {"series-r",
       [&](double vcc) {
         auto s = with_vcc(base, vcc);
         s.dut.gate_series_r = result.series_r;
         return s;
       }},
      {"stacked",
       [&](double vcc) {
         auto s = with_vcc(base, vcc);
         s.dut.stack = 2;
         s.dut.m = spec.base.dut.m * result.stack_width_mult;
         return s;
       }},
  };

  // Variants whose calibration failed skip their sweep entirely.
  const auto calibration_failure_of =
      [&](const std::string& variant) -> const std::optional<FailureRecord>* {
    if (variant == "hvt") return &calibration_failures[0];
    if (variant == "series-r") return &calibration_failures[1];
    if (variant == "stacked") return &calibration_failures[2];
    return nullptr;
  };

  // Pre-size every curve, then characterize the whole (variant, vcc) grid
  // as one flat parallel batch writing into disjoint slots.
  const std::size_t sweep_size = spec.vcc_sweep.size();
  for (const auto& [name, make_spec] : variants) {
    (void)make_spec;
    result.curves[name].resize(sweep_size);
  }
  std::vector<std::optional<FailureRecord>> grid_failures(variants.size() *
                                                          sweep_size);
  util::parallel_for(
      variants.size() * sweep_size,
      [&](std::size_t task) {
        const std::size_t v = task / sweep_size;
        const std::size_t i = task % sweep_size;
        const double vcc = spec.vcc_sweep[i];
        VariantPoint& point = result.curves[variants[v].first][i];
        const auto* calibration = calibration_failure_of(variants[v].first);
        if (calibration != nullptr && calibration->has_value()) {
          point = {vcc, 0.0, 0.0, 0.0, /*ok=*/false};
          return;
        }
        grid_failures[task] = run_isolated(
            task,
            variants[v].first + " vcc=" + util::format_si(vcc, 3, "V"), options,
            [&](const sim::SimOptions& opts) {
              const TransitionMetrics m =
                  characterize_inverter(variants[v].second(vcc), opts);
              point = {vcc, m.i_max, m.max_didt, m.delay, /*ok=*/true};
            });
        if (grid_failures[task].has_value()) {
          point = {vcc, 0.0, 0.0, 0.0, /*ok=*/false};
        }
      },
      0, options.budget.cancel);
  throw_if_cancelled(options, "run_iso_imax_study");

  // Serial, index-ordered failure report (calibrations first, then grid).
  for (auto& failure : calibration_failures) {
    if (failure.has_value()) result.failures.push_back(std::move(*failure));
  }
  for (auto& failure : grid_failures) {
    if (failure.has_value()) result.failures.push_back(std::move(*failure));
  }
  return result;
}

}  // namespace softfet::core
