// Parameter-sweep studies over the Soft-FET inverter:
//  - PTM threshold design space (paper Fig. 6),
//  - intrinsic switching time T_PTM (paper Fig. 8),
//  - input slew rate (paper Fig. 9),
//  - slew/T_PTM ratio ablation (paper Section IV.E recommendation).
#pragma once

#include <optional>
#include <vector>

#include "core/characterize.hpp"
#include "core/checkpointing.hpp"
#include "core/failure.hpp"

namespace softfet::core {

struct DesignSpacePoint {
  double v_imt = 0.0;
  double v_mit = 0.0;
  TransitionMetrics metrics;
  /// Set when this point's characterization failed (after a tightened
  /// retry); `metrics` is then default-initialized and must be ignored.
  std::optional<FailureRecord> failure;
};

/// Grid sweep of (V_IMT, V_MIT); infeasible combinations (v_mit >= v_imt)
/// are skipped. `base.dut.ptm` must be set.
///
/// With `checkpoint.path` set, completed grid points (scalar metrics and
/// isolated failures — never cancel-poisoned ones) persist via atomic saves;
/// a rerun against the same file skips them and reproduces the
/// uninterrupted sweep bitwise, except that resumed points carry empty
/// `metrics.tran` waveforms. The file's tag binds it to this exact grid.
///
/// `lanes` selects the batched lockstep transient engine, exactly as
/// MonteCarloSpec::lanes does: 0 = auto (8-lane blocks when the engine
/// supports `options`), 1 = the scalar oracle path, K > 1 = explicit block
/// width. Evicted lanes transparently rerun on the scalar path; results
/// and checkpoint payloads are bitwise identical for every setting.
[[nodiscard]] std::vector<DesignSpacePoint> sweep_vimt_vmit(
    const cells::InverterTestbenchSpec& base, const std::vector<double>& v_imt,
    const std::vector<double>& v_mit, const sim::SimOptions& options = {},
    const CheckpointSpec& checkpoint = {}, int lanes = 0);

struct TptmPoint {
  double t_ptm = 0.0;
  TransitionMetrics metrics;
  std::optional<FailureRecord> failure;  ///< see DesignSpacePoint::failure
};

[[nodiscard]] std::vector<TptmPoint> sweep_tptm(
    const cells::InverterTestbenchSpec& base,
    const std::vector<double>& t_ptm_values, const sim::SimOptions& options = {});

struct SlewPoint {
  double input_transition = 0.0;
  TransitionMetrics soft;      ///< Soft-FET inverter
  TransitionMetrics baseline;  ///< plain CMOS at the same slew
  /// First failure of either the soft or baseline run at this slew; the
  /// reduction accessors are meaningless when set.
  std::optional<FailureRecord> failure;
  /// Percent I_MAX reduction of the Soft-FET versus baseline.
  [[nodiscard]] double imax_reduction_pct() const {
    return 100.0 * (1.0 - soft.i_max / baseline.i_max);
  }
  [[nodiscard]] double didt_reduction_pct() const {
    return 100.0 * (1.0 - soft.max_didt / baseline.max_didt);
  }
};

[[nodiscard]] std::vector<SlewPoint> sweep_slew(
    const cells::InverterTestbenchSpec& base,
    const std::vector<double>& transitions, const sim::SimOptions& options = {});

struct RatioPoint {
  double slew = 0.0;
  double t_ptm = 0.0;
  double ratio = 0.0;  ///< slew / t_ptm
  double imax_reduction_pct = 0.0;
  double delay_penalty = 0.0;  ///< delay / baseline delay
  /// Failure of this grid point or of its per-slew baseline reference.
  std::optional<FailureRecord> failure;
};

/// 2-D (slew, T_PTM) ablation supporting the paper's "ratio 1.5-3" guidance.
[[nodiscard]] std::vector<RatioPoint> sweep_slew_tptm_ratio(
    const cells::InverterTestbenchSpec& base, const std::vector<double>& slews,
    const std::vector<double>& t_ptms, const sim::SimOptions& options = {});

}  // namespace softfet::core
