#include "core/case_studies.hpp"

#include <algorithm>

#include "core/failure.hpp"
#include "measure/metrics.hpp"
#include "measure/waveform.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"

namespace softfet::core {

using measure::CrossDirection;
using measure::Waveform;

namespace {

/// Run a case-study leg; on a ConvergenceError retry once under tightened
/// options and flag the outcome. A second failure propagates — unlike the
/// batch sweeps, a case study has nothing meaningful to report without
/// both legs. Budget/cancel stops propagate immediately: retrying them
/// doubles the spent wall clock (or defeats the cancel).
template <typename Runner>
[[nodiscard]] auto with_retry(const Runner& runner,
                              const sim::SimOptions& options) {
  try {
    return runner(options);
  } catch (const BudgetExceededError&) {
    throw;
  } catch (const ConvergenceError& e) {
    util::log_warn(std::string("case study: retrying with tightened "
                               "options after: ") +
                   e.what());
    auto outcome = runner(tightened_options(options));
    outcome.retried = true;
    return outcome;
  }
}

[[nodiscard]] PowerGateOutcome run_power_gate_once(
    const cells::PowerGateSpec& spec, const sim::SimOptions& options) {
  cells::PowerGateTestbench tb = cells::make_power_gate_testbench(spec);
  PowerGateOutcome out;
  out.tran = sim::run_transient(tb.circuit, tb.suggested_tstop, options);
  require_complete(out.tran, "power gate study");

  const Waveform rail = Waveform::from_tran(out.tran, tb.rail_signal);
  const Waveform vvdd = Waveform::from_tran(out.tran, tb.virtual_rail_signal);
  const Waveform i_header =
      Waveform::from_tran(out.tran, tb.header_current_signal);

  // The pre-wake rail sits slightly below VCC (neighbour IR drop); droop is
  // measured from that settled level.
  const double settled = rail.value(0.9 * tb.enable_delay);
  out.droop = measure::worst_droop(rail.window(tb.enable_delay,
                                               out.tran.time.back()),
                                   settled);
  out.peak_current = i_header.peak_magnitude();
  out.max_didt = i_header.max_abs_derivative(1e-12);

  const Waveform gate = Waveform::from_tran(out.tran, tb.gate_signal);
  const double t_enable =
      gate.first_crossing(0.5 * tb.vcc, CrossDirection::kFalling, 0.0);
  if (vvdd.has_crossing(0.95 * settled, CrossDirection::kRising, t_enable)) {
    out.wake_time =
        vvdd.first_crossing(0.95 * settled, CrossDirection::kRising, t_enable) -
        t_enable;
  } else {
    out.wake_time = out.tran.time.back() - t_enable;  // did not finish
  }
  return out;
}

[[nodiscard]] IoBufferOutcome run_io_buffer_once(
    const cells::IoBufferSpec& spec, const sim::SimOptions& options) {
  cells::IoBufferTestbench tb = cells::make_io_buffer_testbench(spec);
  IoBufferOutcome out;
  out.tran = sim::run_transient(tb.circuit, tb.suggested_tstop, options);
  require_complete(out.tran, "io buffer study");

  const Waveform vddi = Waveform::from_tran(out.tran, tb.vddi_signal);
  const Waveform vssi = Waveform::from_tran(out.tran, tb.vssi_signal);
  out.vcc_bounce = measure::worst_bounce(vddi, spec.vcc);
  out.gnd_bounce = measure::worst_bounce(vssi, 0.0);
  out.ssn = std::max(out.vcc_bounce, out.gnd_bounce);

  const Waveform icc =
      Waveform::from_tran(out.tran, tb.supply_current_signal).scaled(-1.0);
  out.peak_current = icc.peak_magnitude();

  const Waveform vin = Waveform::from_tran(out.tran, "v(in)");
  const Waveform pad = Waveform::from_tran(out.tran, tb.pad_signal);
  const double t_in = vin.first_crossing(
      0.5 * spec.vcc, CrossDirection::kEither, 0.9 * tb.input_delay);
  out.pad_delay =
      pad.first_crossing(0.5 * spec.vcc, CrossDirection::kEither, t_in) - t_in;
  return out;
}

}  // namespace

PowerGateStudy run_power_gate_study(cells::PowerGateSpec spec,
                                    const sim::SimOptions& options) {
  PowerGateStudy study;
  const auto ptm = spec.ptm ? *spec.ptm
                            : cells::PowerGateSpec::default_header_ptm();
  spec.ptm.reset();
  study.baseline = with_retry(
      [&](const sim::SimOptions& o) { return run_power_gate_once(spec, o); },
      options);
  spec.ptm = ptm;
  study.soft = with_retry(
      [&](const sim::SimOptions& o) { return run_power_gate_once(spec, o); },
      options);
  return study;
}

IoBufferStudy run_io_buffer_study(cells::IoBufferSpec spec,
                                  const sim::SimOptions& options) {
  IoBufferStudy study;
  const auto ptm =
      spec.ptm ? *spec.ptm : cells::IoBufferSpec::default_driver_ptm();
  spec.ptm.reset();
  study.baseline = with_retry(
      [&](const sim::SimOptions& o) { return run_io_buffer_once(spec, o); },
      options);
  spec.ptm = ptm;
  study.soft = with_retry(
      [&](const sim::SimOptions& o) { return run_io_buffer_once(spec, o); },
      options);
  return study;
}

}  // namespace softfet::core
