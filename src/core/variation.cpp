#include "core/variation.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <functional>
#include <iterator>
#include <random>
#include <sstream>

#include "sim/batch.hpp"
#include "util/checkpoint.hpp"
#include "util/error.hpp"
#include "util/parallel.hpp"

namespace softfet::core {

namespace {

using ParamAccessor = double devices::PtmParams::*;

struct ParamInfo {
  const char* name;
  ParamAccessor member;
};

constexpr ParamInfo kParams[] = {
    {"r_ins", &devices::PtmParams::r_ins},
    {"r_met", &devices::PtmParams::r_met},
    {"v_imt", &devices::PtmParams::v_imt},
    {"v_mit", &devices::PtmParams::v_mit},
    {"t_ptm", &devices::PtmParams::t_ptm},
};

constexpr std::size_t kParamCount = std::size(kParams);

void require_softfet(const cells::InverterTestbenchSpec& base,
                     const char* who) {
  if (!base.dut.ptm) {
    throw Error(std::string(who) + ": base spec must be a Soft-FET inverter");
  }
}

}  // namespace

std::vector<SensitivityRow> ptm_sensitivity(
    const cells::InverterTestbenchSpec& base, double delta_fraction,
    const sim::SimOptions& options) {
  require_softfet(base, "ptm_sensitivity");
  if (!(delta_fraction > 0.0) || delta_fraction >= 0.5) {
    throw Error("ptm_sensitivity: delta_fraction must be in (0, 0.5)");
  }

  const auto metrics_at = [&](const ParamInfo& info, double scale) {
    auto spec = base;
    (*spec.dut.ptm).*(info.member) = ((*base.dut.ptm).*(info.member)) * scale;
    // Perturbations can make the hysteresis window collapse; surface
    // that as an invalid-parameter error instead of a crash.
    spec.dut.ptm->validate();
    return characterize_inverter(spec, options);
  };

  // The unperturbed characterization is identical for every parameter, so
  // it runs once; the 2 perturbed runs per parameter are all independent.
  // Flatten everything into one parallel batch (task 0 is the baseline,
  // then hi/lo pairs per parameter).
  TransitionMetrics mid;
  std::vector<TransitionMetrics> hi(kParamCount);
  std::vector<TransitionMetrics> lo(kParamCount);
  util::parallel_for(
      1 + 2 * kParamCount,
      [&](std::size_t task) {
        if (task == 0) {
          mid = characterize_inverter(base, options);
          return;
        }
        const std::size_t p = (task - 1) / 2;
        const bool is_hi = (task - 1) % 2 == 0;
        auto& out = is_hi ? hi[p] : lo[p];
        out = metrics_at(kParams[p],
                         is_hi ? 1.0 + delta_fraction : 1.0 - delta_fraction);
      },
      0, options.budget.cancel);
  // Partially filled hi/lo tables would silently skew the central
  // differences; a cancel must surface instead.
  throw_if_cancelled(options, "ptm_sensitivity");

  const auto central = [&](double y_hi, double y_lo, double y_mid) {
    // %metric per %param.
    return ((y_hi - y_lo) / y_mid) / (2.0 * delta_fraction);
  };

  std::vector<SensitivityRow> rows;
  rows.reserve(kParamCount);
  for (std::size_t p = 0; p < kParamCount; ++p) {
    SensitivityRow row;
    row.parameter = kParams[p].name;
    row.nominal = (*base.dut.ptm).*(kParams[p].member);
    row.imax_sensitivity = central(hi[p].i_max, lo[p].i_max, mid.i_max);
    row.didt_sensitivity =
        central(hi[p].max_didt, lo[p].max_didt, mid.max_didt);
    row.delay_sensitivity = central(hi[p].delay, lo[p].delay, mid.delay);
    rows.push_back(std::move(row));
  }
  return rows;
}

MonteCarloStats ptm_monte_carlo(const cells::InverterTestbenchSpec& base,
                                const MonteCarloSpec& mc,
                                const sim::SimOptions& options) {
  require_softfet(base, "ptm_monte_carlo");
  if (mc.samples < 2) throw Error("ptm_monte_carlo: need >= 2 samples");
  throw_if_cancelled(options, "ptm_monte_carlo");

  const auto sample_count = static_cast<std::size_t>(mc.samples);
  double baseline_imax = 0.0;
  std::vector<double> imaxes(sample_count, 0.0);
  std::vector<double> delays(sample_count, 0.0);
  // Per-sample failure slots: a set slot marks the sample as isolated, and
  // keeping them indexed (rather than pushing to a shared list) makes the
  // failure report thread-count independent too.
  std::vector<std::optional<FailureRecord>> failure_slots(sample_count);

  // Checkpoint slot 0 is the baseline, slot k+1 is sample k. The tag pins
  // the file to this exact study so a stale file cannot contaminate it.
  const bool use_checkpoint = mc.checkpoint.enabled();
  util::Checkpoint checkpoint;
  bool baseline_done = false;
  std::vector<char> sample_done(sample_count, 0);
  if (use_checkpoint) {
    const std::string tag =
        "mc seed=" + std::to_string(mc.seed) +
        " samples=" + std::to_string(mc.samples) +
        " sig_th=" + encode_double(mc.sigma_threshold) +
        " sig_r=" + encode_double(mc.sigma_resistance) +
        " sig_t=" + encode_double(mc.sigma_tptm);
    // The tag additionally pins the determinism mode (relaxed-mode files
    // carry a " det=relaxed" marker); a strict<->relaxed resume is refused
    // with a mode-specific error instead of silently mixing rounding
    // regimes.
    checkpoint = load_checkpoint_for_mode(mc.checkpoint.path, tag,
                                          options.determinism,
                                          sample_count + 1);
    const auto malformed = [&](std::size_t slot, const std::string& payload) {
      return Error("checkpoint '" + mc.checkpoint.path + "': slot " +
                   std::to_string(slot) + " has malformed payload '" +
                   payload + "'");
    };
    if (const auto payload = checkpoint.payload(0)) {
      std::istringstream in(*payload);
      std::string keyword, token;
      if (!(in >> keyword >> token) || keyword != "base") {
        throw malformed(0, *payload);
      }
      baseline_imax = decode_double(token);
      baseline_done = true;
    }
    for (std::size_t k = 0; k < sample_count; ++k) {
      const auto payload = checkpoint.payload(k + 1);
      if (!payload.has_value()) continue;
      std::istringstream in(*payload);
      std::string keyword;
      in >> keyword;
      if (keyword == "ok") {
        std::string imax_token, delay_token;
        if (!(in >> imax_token >> delay_token)) throw malformed(k + 1, *payload);
        imaxes[k] = decode_double(imax_token);
        delays[k] = decode_double(delay_token);
      } else if (keyword == "fail") {
        std::string tail;
        std::getline(in, tail);
        if (!tail.empty() && tail.front() == ' ') tail.erase(0, 1);
        failure_slots[k] = decode_failure(k, tail);
      } else {
        throw malformed(k + 1, *payload);
      }
      sample_done[k] = 1;
    }
  }

  std::atomic<int> completions_since_flush{0};
  const auto note_done = [&](std::size_t slot, std::string payload) {
    if (!use_checkpoint) return;
    checkpoint.record(slot, std::move(payload));
    const int fresh = completions_since_flush.fetch_add(1) + 1;
    if (fresh >= std::max(mc.checkpoint.flush_every, 1)) {
      completions_since_flush.store(0);
      checkpoint.save(mc.checkpoint.path);
    }
  };

  // Every sample owns an independent RNG stream seeded from mc.seed + k, so
  // the draws — and therefore the statistics — are identical for any worker
  // count, including the serial path. The batched engine consumes the exact
  // same stream through the same code, which is what makes its results
  // bitwise identical to the scalar oracle.
  const int draw_budget = std::max(mc.max_draw_attempts, 1);
  const auto draw_sample = [&](std::size_t k,
                               cells::InverterTestbenchSpec& spec) {
    std::mt19937 rng(mc.seed + static_cast<unsigned>(k));
    std::normal_distribution<double> gauss(0.0, 1.0);
    const auto draw = [&](double nominal, double sigma_rel) {
      // Truncate at +-3 sigma so extreme tails can't invert the hysteresis.
      double z = gauss(rng);
      z = std::clamp(z, -3.0, 3.0);
      return nominal * (1.0 + sigma_rel * z);
    };
    auto& p = *spec.dut.ptm;
    for (int attempt = 0; attempt < draw_budget; ++attempt) {
      p.r_ins = draw(base.dut.ptm->r_ins, mc.sigma_resistance);
      p.r_met = draw(base.dut.ptm->r_met, mc.sigma_resistance);
      p.v_imt = draw(base.dut.ptm->v_imt, mc.sigma_threshold);
      p.v_mit = draw(base.dut.ptm->v_mit, mc.sigma_threshold);
      p.t_ptm = draw(base.dut.ptm->t_ptm, mc.sigma_tptm);
      if (p.r_ins > p.r_met && p.v_imt > p.v_mit && p.v_mit > 0.0 &&
          p.t_ptm > 0.0) {
        return true;
      }
    }
    return false;  // p keeps the last (invalid) draw; validate() reports it
  };

  const auto run_sample = [&](std::size_t k) {
    auto spec = base;
    draw_sample(k, spec);
    auto& p = *spec.dut.ptm;
    failure_slots[k] = run_isolated(
        k, "sample " + std::to_string(k), options,
        [&](const sim::SimOptions& opts) {
          try {
            p.validate();
          } catch (const Error& e) {
            throw Error("ptm_monte_carlo: sample " + std::to_string(k) +
                        " found no valid PTM parameter draw in " +
                        std::to_string(draw_budget) + " attempts (" +
                        e.what() +
                        "); check the sigma_* spreads against the card");
          }
          auto sample_spec = spec;
          if (mc.per_sample_hook) mc.per_sample_hook(k, sample_spec);
          const TransitionMetrics m = characterize_inverter(sample_spec, opts);
          imaxes[k] = m.i_max;
          delays[k] = m.delay;
        });
    if (!failure_slots[k].has_value()) {
      note_done(k + 1, "ok " + encode_double(imaxes[k]) + ' ' +
                           encode_double(delays[k]));
    } else if (!failure_slots[k]->cancelled()) {
      // Real failures (incl. per-point budget timeouts) persist so resume
      // does not redo them; cancel-poisoned slots must rerun instead.
      note_done(k + 1, "fail " + encode_failure(*failure_slots[k]));
    }
  };

  const auto run_baseline = [&] {
    if (baseline_done) return;
    auto spec = base;
    spec.dut.ptm.reset();
    baseline_imax = characterize_inverter(spec, options).i_max;
    note_done(0, "base " + encode_double(baseline_imax));
  };

  // One block of consecutive samples through the lockstep batch engine.
  // Unfinished samples draw their specs (same RNG streams as run_sample),
  // run as lanes of one batch, and record exactly what the scalar path
  // would; anything the batch cannot finish (invalid draw, eviction,
  // failure, cancel) falls back to run_sample, whose behaviour — including
  // isolation retries and failure records — IS the scalar path.
  const auto run_block = [&](std::size_t begin, std::size_t end) {
    std::vector<std::size_t> lane_samples;
    std::vector<cells::InverterTestbenchSpec> lane_specs;
    lane_samples.reserve(end - begin);
    lane_specs.reserve(end - begin);
    for (std::size_t k = begin; k < end; ++k) {
      if (sample_done[k] != 0) continue;
      auto spec = base;
      if (!draw_sample(k, spec)) {
        run_sample(k);  // reproduces the no-valid-draw error verbatim
        continue;
      }
      if (mc.per_sample_hook) mc.per_sample_hook(k, spec);
      lane_samples.push_back(k);
      lane_specs.push_back(std::move(spec));
    }
    if (lane_specs.empty()) return;
    const auto lane_results = characterize_inverter_batch(lane_specs, options);
    for (std::size_t j = 0; j < lane_results.size(); ++j) {
      const std::size_t k = lane_samples[j];
      if (lane_results[j].has_value()) {
        imaxes[k] = lane_results[j]->i_max;
        delays[k] = lane_results[j]->delay;
        failure_slots[k].reset();
        note_done(k + 1, "ok " + encode_double(imaxes[k]) + ' ' +
                             encode_double(delays[k]));
      } else {
        run_sample(k);
      }
    }
  };

  // Resolve the lane knob: 0 = auto. Budgeted runs (wall-clock/step caps)
  // stay scalar because the batch cannot replicate per-lane truncation.
  // Auto width is mode-dependent: 8 lanes saturate the bitwise engine
  // (wider only grows the working set), but the relaxed SIMD device
  // kernels keep paying past that — 16 lanes measure ~7% faster than 8 on
  // the inverter study (EXPERIMENTS.md) before the working set wins again.
  constexpr int kAutoLanes = 8;
  constexpr int kAutoLanesRelaxed = 16;
  const int auto_lanes = options.determinism == sim::Determinism::kRelaxedUlp
                             ? kAutoLanesRelaxed
                             : kAutoLanes;
  const int lane_knob = mc.lanes == 0 ? auto_lanes : std::max(mc.lanes, 1);
  const bool use_batch =
      lane_knob > 1 && sim::batch_transient_supported(options);
  const auto threads = static_cast<std::size_t>(std::max(mc.threads, 0));

  if (use_batch) {
    // Task 0 is the PTM-less baseline; task b >= 1 is the block of samples
    // [(b-1)*K, b*K). Blocks are fixed spans of sample indices, so the
    // work-to-result mapping — and every result — is identical for any
    // worker count, exactly as in the scalar scheduler.
    const auto lane_width = static_cast<std::size_t>(lane_knob);
    const std::size_t blocks = (sample_count + lane_width - 1) / lane_width;
    util::parallel_for(
        blocks + 1,
        [&](std::size_t task) {
          if (task == 0) {
            run_baseline();
            return;
          }
          const std::size_t begin = (task - 1) * lane_width;
          run_block(begin, std::min(begin + lane_width, sample_count));
        },
        threads, options.budget.cancel);
  } else {
    // Scalar oracle path: task 0 is the baseline; tasks 1..N are the
    // samples. Resumed slots return immediately, so a restart only pays
    // for unfinished points.
    util::parallel_for(
        sample_count + 1,
        [&](std::size_t task) {
          if (task == 0) {
            run_baseline();
            return;
          }
          if (sample_done[task - 1] != 0) return;
          run_sample(task - 1);
        },
        threads, options.budget.cancel);
  }

  // A cancel mid-batch leaves poisoned failure slots (and unclaimed
  // samples). Clear the poisoned ones — they were never really attempted —
  // then flush and surface the cancel: partial statistics would mislead.
  bool cancelled = options.budget.cancel != nullptr &&
                   options.budget.cancel->requested();
  for (auto& slot : failure_slots) {
    if (slot.has_value() && slot->cancelled()) {
      slot.reset();
      cancelled = true;
    }
  }
  if (cancelled) {
    std::string message = "ptm_monte_carlo: cancelled";
    if (use_checkpoint) {
      checkpoint.save(mc.checkpoint.path);
      message += " with " + std::to_string(checkpoint.completed()) + "/" +
                 std::to_string(sample_count + 1) +
                 " points checkpointed; rerun against '" + mc.checkpoint.path +
                 "' to resume";
    }
    throw BudgetExceededError(message, util::BudgetStop::kCancel);
  }
  if (use_checkpoint) checkpoint.save(mc.checkpoint.path);

  // Compact survivors serially in index order so the floating-point
  // accumulation order — hence the result — is thread-count independent.
  MonteCarloStats stats;
  stats.samples = mc.samples;
  std::vector<double> ok_imaxes;
  std::vector<double> ok_delays;
  ok_imaxes.reserve(sample_count);
  ok_delays.reserve(sample_count);
  for (std::size_t k = 0; k < sample_count; ++k) {
    if (failure_slots[k].has_value()) {
      stats.failures.push_back(std::move(*failure_slots[k]));
    } else {
      ok_imaxes.push_back(imaxes[k]);
      ok_delays.push_back(delays[k]);
    }
  }
  stats.failed_samples = static_cast<int>(stats.failures.size());
  if (ok_imaxes.size() < 2) {
    throw Error("ptm_monte_carlo: only " + std::to_string(ok_imaxes.size()) +
                " of " + std::to_string(mc.samples) +
                " samples survived; first failure: " +
                stats.failures.front().message);
  }

  int beat_baseline = 0;
  for (const double imax : ok_imaxes) {
    if (imax < baseline_imax) ++beat_baseline;
  }
  const auto mean_std = [](const std::vector<double>& v, double& mean,
                           double& stddev, double& worst) {
    mean = 0.0;
    worst = 0.0;
    for (const double x : v) {
      mean += x;
      worst = std::max(worst, x);
    }
    mean /= static_cast<double>(v.size());
    double var = 0.0;
    for (const double x : v) var += (x - mean) * (x - mean);
    stddev = std::sqrt(var / static_cast<double>(v.size() - 1));
  };
  mean_std(ok_imaxes, stats.imax_mean, stats.imax_std, stats.imax_worst);
  mean_std(ok_delays, stats.delay_mean, stats.delay_std, stats.delay_worst);
  stats.fraction_below_baseline =
      static_cast<double>(beat_baseline) / static_cast<double>(ok_imaxes.size());
  return stats;
}

}  // namespace softfet::core
