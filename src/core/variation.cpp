#include "core/variation.hpp"

#include <cmath>
#include <functional>
#include <random>

#include "util/error.hpp"

namespace softfet::core {

namespace {

using ParamAccessor = double devices::PtmParams::*;

struct ParamInfo {
  const char* name;
  ParamAccessor member;
};

constexpr ParamInfo kParams[] = {
    {"r_ins", &devices::PtmParams::r_ins},
    {"r_met", &devices::PtmParams::r_met},
    {"v_imt", &devices::PtmParams::v_imt},
    {"v_mit", &devices::PtmParams::v_mit},
    {"t_ptm", &devices::PtmParams::t_ptm},
};

void require_softfet(const cells::InverterTestbenchSpec& base,
                     const char* who) {
  if (!base.dut.ptm) {
    throw Error(std::string(who) + ": base spec must be a Soft-FET inverter");
  }
}

}  // namespace

std::vector<SensitivityRow> ptm_sensitivity(
    const cells::InverterTestbenchSpec& base, double delta_fraction,
    const sim::SimOptions& options) {
  require_softfet(base, "ptm_sensitivity");
  if (!(delta_fraction > 0.0) || delta_fraction >= 0.5) {
    throw Error("ptm_sensitivity: delta_fraction must be in (0, 0.5)");
  }

  std::vector<SensitivityRow> rows;
  for (const auto& info : kParams) {
    const double nominal = (*base.dut.ptm).*(info.member);

    const auto metrics_at = [&](double scale) {
      auto spec = base;
      (*spec.dut.ptm).*(info.member) = nominal * scale;
      // Perturbations can make the hysteresis window collapse; surface
      // that as an invalid-parameter error instead of a crash.
      spec.dut.ptm->validate();
      return characterize_inverter(spec, options);
    };

    const TransitionMetrics hi = metrics_at(1.0 + delta_fraction);
    const TransitionMetrics lo = metrics_at(1.0 - delta_fraction);

    const auto central = [&](double y_hi, double y_lo, double y_mid) {
      // %metric per %param.
      return ((y_hi - y_lo) / y_mid) / (2.0 * delta_fraction);
    };
    const TransitionMetrics mid = metrics_at(1.0);

    SensitivityRow row;
    row.parameter = info.name;
    row.nominal = nominal;
    row.imax_sensitivity = central(hi.i_max, lo.i_max, mid.i_max);
    row.didt_sensitivity = central(hi.max_didt, lo.max_didt, mid.max_didt);
    row.delay_sensitivity = central(hi.delay, lo.delay, mid.delay);
    rows.push_back(std::move(row));
  }
  return rows;
}

MonteCarloStats ptm_monte_carlo(const cells::InverterTestbenchSpec& base,
                                const MonteCarloSpec& mc,
                                const sim::SimOptions& options) {
  require_softfet(base, "ptm_monte_carlo");
  if (mc.samples < 2) throw Error("ptm_monte_carlo: need >= 2 samples");

  const double baseline_imax = [&] {
    auto spec = base;
    spec.dut.ptm.reset();
    return characterize_inverter(spec, options).i_max;
  }();

  std::mt19937 rng(mc.seed);
  std::normal_distribution<double> gauss(0.0, 1.0);
  const auto draw = [&](double nominal, double sigma_rel) {
    // Truncate at +-3 sigma so extreme tails can't invert the hysteresis.
    double z = gauss(rng);
    z = std::clamp(z, -3.0, 3.0);
    return nominal * (1.0 + sigma_rel * z);
  };

  MonteCarloStats stats;
  std::vector<double> imaxes;
  std::vector<double> delays;
  int beat_baseline = 0;
  for (int k = 0; k < mc.samples; ++k) {
    auto spec = base;
    auto& p = *spec.dut.ptm;
    for (int attempt = 0; attempt < 100; ++attempt) {
      p.r_ins = draw(base.dut.ptm->r_ins, mc.sigma_resistance);
      p.r_met = draw(base.dut.ptm->r_met, mc.sigma_resistance);
      p.v_imt = draw(base.dut.ptm->v_imt, mc.sigma_threshold);
      p.v_mit = draw(base.dut.ptm->v_mit, mc.sigma_threshold);
      p.t_ptm = draw(base.dut.ptm->t_ptm, mc.sigma_tptm);
      if (p.r_ins > p.r_met && p.v_imt > p.v_mit && p.v_mit > 0.0 &&
          p.t_ptm > 0.0) {
        break;
      }
    }
    const TransitionMetrics m = characterize_inverter(spec, options);
    imaxes.push_back(m.i_max);
    delays.push_back(m.delay);
    if (m.i_max < baseline_imax) ++beat_baseline;
  }

  const auto mean_std = [](const std::vector<double>& v, double& mean,
                           double& stddev, double& worst) {
    mean = 0.0;
    worst = 0.0;
    for (const double x : v) {
      mean += x;
      worst = std::max(worst, x);
    }
    mean /= static_cast<double>(v.size());
    double var = 0.0;
    for (const double x : v) var += (x - mean) * (x - mean);
    stddev = std::sqrt(var / static_cast<double>(v.size() - 1));
  };
  stats.samples = mc.samples;
  mean_std(imaxes, stats.imax_mean, stats.imax_std, stats.imax_worst);
  mean_std(delays, stats.delay_mean, stats.delay_std, stats.delay_worst);
  stats.fraction_below_baseline =
      static_cast<double>(beat_baseline) / mc.samples;
  return stats;
}

}  // namespace softfet::core
