#include "core/checkpointing.hpp"

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "util/checkpoint.hpp"
#include "util/error.hpp"

namespace softfet::core {

std::string tag_for_mode(std::string tag, sim::Determinism mode) {
  if (mode == sim::Determinism::kRelaxedUlp) tag += " det=relaxed";
  return tag;
}

util::Checkpoint load_checkpoint_for_mode(const std::string& path,
                                          const std::string& tag,
                                          sim::Determinism mode,
                                          std::size_t total) {
  try {
    return util::Checkpoint::load_or_create(path, tag_for_mode(tag, mode),
                                            total);
  } catch (const Error& e) {
    // If the mismatch disappears under the other mode's tag, the file is
    // from the same study but the opposite rounding regime: diagnose the
    // mode clash instead of the generic "different batch" refusal.
    const auto other = mode == sim::Determinism::kRelaxedUlp
                           ? sim::Determinism::kBitwise
                           : sim::Determinism::kRelaxedUlp;
    try {
      (void)util::Checkpoint::load_or_create(path, tag_for_mode(tag, other),
                                             total);
    } catch (const Error&) {
      throw e;  // genuinely a different study
    }
    throw Error(
        "checkpoint '" + path + "' was written under determinism mode '" +
        sim::to_string(other) + "' but this run uses '" +
        sim::to_string(mode) +
        "'; resuming across modes would mix rounding regimes -- rerun with "
        "determinism=" +
        sim::to_string(other) + " or delete the file to start over");
  }
}

std::string encode_double(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%a", value);
  return buffer;
}

double decode_double(const std::string& token) {
  char* end = nullptr;
  const double value = std::strtod(token.c_str(), &end);
  if (end == token.c_str() || *end != '\0') {
    throw Error("checkpoint: malformed double token '" + token + "'");
  }
  return value;
}

std::string encode_failure(const FailureRecord& failure) {
  return std::to_string(failure.retried ? 1 : 0) + ' ' +
         std::to_string(static_cast<int>(failure.budget_stop)) + ' ' +
         util::escape_field(failure.context) + ' ' +
         util::escape_field(failure.message);
}

std::string encode_metrics(const TransitionMetrics& metrics) {
  return encode_double(metrics.i_max) + ' ' + encode_double(metrics.max_didt) +
         ' ' + encode_double(metrics.delay) + ' ' +
         encode_double(metrics.output_transition) + ' ' +
         encode_double(metrics.q_short) + ' ' +
         encode_double(metrics.q_output) + ' ' + encode_double(metrics.energy) +
         ' ' + std::to_string(metrics.imt_count) + ' ' +
         std::to_string(metrics.mit_count);
}

TransitionMetrics decode_metrics(const std::string& tail) {
  std::istringstream in(tail);
  std::string i_max, max_didt, delay, output_transition, q_short, q_output,
      energy;
  TransitionMetrics metrics;
  if (!(in >> i_max >> max_didt >> delay >> output_transition >> q_short >>
        q_output >> energy >> metrics.imt_count >> metrics.mit_count)) {
    throw Error("checkpoint: malformed metrics payload '" + tail + "'");
  }
  metrics.i_max = decode_double(i_max);
  metrics.max_didt = decode_double(max_didt);
  metrics.delay = decode_double(delay);
  metrics.output_transition = decode_double(output_transition);
  metrics.q_short = decode_double(q_short);
  metrics.q_output = decode_double(q_output);
  metrics.energy = decode_double(energy);
  return metrics;
}

FailureRecord decode_failure(std::size_t index, const std::string& tail) {
  std::istringstream in(tail);
  int retried = 0;
  int stop = 0;
  std::string context;
  std::string message;
  if (!(in >> retried >> stop >> context >> message) || stop < 0 ||
      stop > static_cast<int>(util::BudgetStop::kNewtonIterations)) {
    throw Error("checkpoint: malformed failure payload '" + tail + "'");
  }
  FailureRecord failure;
  failure.index = index;
  failure.retried = retried != 0;
  failure.budget_stop = static_cast<util::BudgetStop>(stop);
  failure.context = util::unescape_field(context);
  failure.message = util::unescape_field(message);
  return failure;
}

}  // namespace softfet::core
