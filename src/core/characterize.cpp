#include "core/characterize.hpp"

#include <cmath>

#include "core/failure.hpp"
#include "measure/metrics.hpp"
#include "measure/waveform.hpp"

namespace softfet::core {

using measure::Waveform;

TransitionMetrics characterize_inverter(const cells::InverterTestbenchSpec& spec,
                                        const sim::SimOptions& options) {
  // Slow variants (HVT near threshold, huge series R) can take orders of
  // magnitude longer than the heuristic stop time suggests; retry with a
  // stretched window until the output transition completes.
  double tstop = 0.0;
  TransitionMetrics out;
  cells::InverterTestbench tb;
  constexpr int kMaxStretches = 10;
  for (int attempt = 0;; ++attempt) {
    tb = cells::make_inverter_testbench(spec);
    if (attempt == 0) tstop = tb.suggested_tstop;
    out.tran = sim::run_transient(tb.circuit, tstop, options);
    // A budget-truncated waveform must not be measured as if it completed
    // (and may be empty, which Waveform::from_tran rejects).
    require_complete(out.tran, "characterize_inverter");
    const Waveform vout_probe = Waveform::from_tran(out.tran, tb.output_signal);
    const bool output_rising_probe = !spec.input_rising;
    const double target =
        output_rising_probe ? 0.85 * spec.vcc : 0.15 * spec.vcc;
    const bool done = output_rising_probe
                          ? vout_probe.max_value() >= target
                          : vout_probe.min_value() <= target;
    if (done || attempt >= kMaxStretches) break;
    tstop *= 4.0;
  }

  const Waveform vin = Waveform::from_tran(out.tran, tb.input_signal);
  const Waveform vout = Waveform::from_tran(out.tran, tb.output_signal);
  // SPICE sign convention: a sourcing supply reads negative; flip so that
  // "current drawn from the VCC rail" is positive.
  const Waveform icc =
      Waveform::from_tran(out.tran, tb.supply_current_signal).scaled(-1.0);

  // Measure from just before the edge so DC leakage does not pollute the
  // charge integrals but the whole transition (including Soft-FET tails)
  // counts.
  const double t_edge = tb.input_delay;
  const double t_end = out.tran.time.back();
  const Waveform icc_win = icc.window(0.5 * t_edge, t_end);

  out.i_max = icc_win.peak_magnitude();
  out.max_didt = icc_win.max_abs_derivative(kDidtWindow);

  const bool output_rising = !spec.input_rising;
  out.delay = measure::propagation_delay(vin, vout, 0.0, spec.vcc,
                                         output_rising, 0.9 * t_edge);
  out.output_transition =
      measure::transition_time(vout, 0.0, spec.vcc, output_rising, 0.9 * t_edge);

  // Charge split (paper Fig. 7): for a rising output the PMOS delivers the
  // output charge and the NMOS conducts the short-circuit (crowbar) charge;
  // mirrored for a falling output. Channel-current probes use the
  // NMOS-positive drain->source convention, so the PMOS pull-up current is
  // negative while charging the output.
  // Short-circuit charge counts only the forward (crowbar) direction of the
  // off-side device; brief capacitive reversals through the Miller path are
  // not crowbar current.
  const Waveform ip = Waveform::from_tran(out.tran, tb.pmos_current_signal);
  const Waveform in = Waveform::from_tran(out.tran, tb.nmos_current_signal);
  if (output_rising) {
    out.q_output = -measure::charge(ip, 0.5 * t_edge, t_end);
    out.q_short =
        measure::charge(in.clamped_min(0.0), 0.5 * t_edge, t_end);
  } else {
    out.q_output = measure::charge(in, 0.5 * t_edge, t_end);
    out.q_short = measure::charge(ip.scaled(-1.0).clamped_min(0.0),
                                  0.5 * t_edge, t_end);
  }

  const Waveform vcc_wave({0.0, t_end}, {spec.vcc, spec.vcc});
  out.energy = measure::energy(vcc_wave, icc_win);

  if (tb.dut.ptm != nullptr) {
    out.imt_count = tb.dut.ptm->imt_count();
    out.mit_count = tb.dut.ptm->mit_count();
  }
  return out;
}

}  // namespace softfet::core
