#include "core/characterize.hpp"

#include <cmath>
#include <utility>

#include "core/failure.hpp"
#include "measure/metrics.hpp"
#include "measure/waveform.hpp"
#include "sim/batch.hpp"

namespace softfet::core {

using measure::Waveform;

namespace {

/// Has the output transition completed within the captured window? Shared
/// by the scalar stretch loop and the batched one so both make the same
/// stretch decisions.
[[nodiscard]] bool transition_complete(const sim::TranResult& tran,
                                       const cells::InverterTestbench& tb,
                                       const cells::InverterTestbenchSpec& spec) {
  const Waveform vout_probe = Waveform::from_tran(tran, tb.output_signal);
  const bool output_rising_probe = !spec.input_rising;
  const double target =
      output_rising_probe ? 0.85 * spec.vcc : 0.15 * spec.vcc;
  return output_rising_probe ? vout_probe.max_value() >= target
                             : vout_probe.min_value() <= target;
}

/// Extract every metric from the (final) transient already stored in
/// `out.tran`. One body for the scalar and batched paths guarantees they
/// measure identically.
void measure_transition(const cells::InverterTestbench& tb,
                        const cells::InverterTestbenchSpec& spec,
                        TransitionMetrics& out) {
  const Waveform vin = Waveform::from_tran(out.tran, tb.input_signal);
  const Waveform vout = Waveform::from_tran(out.tran, tb.output_signal);
  // SPICE sign convention: a sourcing supply reads negative; flip so that
  // "current drawn from the VCC rail" is positive.
  const Waveform icc =
      Waveform::from_tran(out.tran, tb.supply_current_signal).scaled(-1.0);

  // Measure from just before the edge so DC leakage does not pollute the
  // charge integrals but the whole transition (including Soft-FET tails)
  // counts.
  const double t_edge = tb.input_delay;
  const double t_end = out.tran.time.back();
  const Waveform icc_win = icc.window(0.5 * t_edge, t_end);

  out.i_max = icc_win.peak_magnitude();
  out.max_didt = icc_win.max_abs_derivative(kDidtWindow);

  const bool output_rising = !spec.input_rising;
  out.delay = measure::propagation_delay(vin, vout, 0.0, spec.vcc,
                                         output_rising, 0.9 * t_edge);
  out.output_transition =
      measure::transition_time(vout, 0.0, spec.vcc, output_rising, 0.9 * t_edge);

  // Charge split (paper Fig. 7): for a rising output the PMOS delivers the
  // output charge and the NMOS conducts the short-circuit (crowbar) charge;
  // mirrored for a falling output. Channel-current probes use the
  // NMOS-positive drain->source convention, so the PMOS pull-up current is
  // negative while charging the output.
  // Short-circuit charge counts only the forward (crowbar) direction of the
  // off-side device; brief capacitive reversals through the Miller path are
  // not crowbar current.
  const Waveform ip = Waveform::from_tran(out.tran, tb.pmos_current_signal);
  const Waveform in = Waveform::from_tran(out.tran, tb.nmos_current_signal);
  if (output_rising) {
    out.q_output = -measure::charge(ip, 0.5 * t_edge, t_end);
    out.q_short =
        measure::charge(in.clamped_min(0.0), 0.5 * t_edge, t_end);
  } else {
    out.q_output = measure::charge(in, 0.5 * t_edge, t_end);
    out.q_short = measure::charge(ip.scaled(-1.0).clamped_min(0.0),
                                  0.5 * t_edge, t_end);
  }

  const Waveform vcc_wave({0.0, t_end}, {spec.vcc, spec.vcc});
  out.energy = measure::energy(vcc_wave, icc_win);

  if (tb.dut.ptm != nullptr) {
    out.imt_count = tb.dut.ptm->imt_count();
    out.mit_count = tb.dut.ptm->mit_count();
  }
}

constexpr int kMaxStretches = 10;

}  // namespace

TransitionMetrics characterize_inverter(const cells::InverterTestbenchSpec& spec,
                                        const sim::SimOptions& options) {
  // Slow variants (HVT near threshold, huge series R) can take orders of
  // magnitude longer than the heuristic stop time suggests; retry with a
  // stretched window until the output transition completes. The testbench
  // is elaborated once — retries reset device state instead of rebuilding
  // the circuit (bitwise-equivalent to a fresh build: the operating point
  // re-derives everything reset_state does not cover).
  TransitionMetrics out;
  cells::InverterTestbench tb = cells::make_inverter_testbench(spec);
  double tstop = tb.suggested_tstop;
  for (int attempt = 0;; ++attempt) {
    if (attempt > 0) {
      for (const auto& device : tb.circuit.devices()) device->reset_state();
    }
    out.tran = sim::run_transient(tb.circuit, tstop, options);
    // A budget-truncated waveform must not be measured as if it completed
    // (and may be empty, which Waveform::from_tran rejects).
    require_complete(out.tran, "characterize_inverter");
    if (transition_complete(out.tran, tb, spec) || attempt >= kMaxStretches) {
      break;
    }
    tstop *= 4.0;
  }
  measure_transition(tb, spec, out);
  return out;
}

std::vector<std::optional<TransitionMetrics>> characterize_inverter_batch(
    const std::vector<cells::InverterTestbenchSpec>& specs,
    const sim::SimOptions& options) {
  const std::size_t count = specs.size();
  std::vector<std::optional<TransitionMetrics>> results(count);

  struct LaneState {
    cells::InverterTestbench tb;
    double tstop = 0.0;
    int attempt = 0;
    bool active = false;  // needs a (re-)run this generation
  };
  std::vector<LaneState> lanes(count);
  for (std::size_t k = 0; k < count; ++k) {
    try {
      lanes[k].tb = cells::make_inverter_testbench(specs[k]);
      lanes[k].tstop = lanes[k].tb.suggested_tstop;
      lanes[k].active = true;
    } catch (const Error&) {
      // Invalid spec: leave nullopt; the scalar rerun throws identically
      // and the caller's failure isolation records it.
      lanes[k].active = false;
    }
  }

  // Stretch generations: each pass runs every still-unfinished lane in one
  // lockstep batch, then applies the same done/stretch decision the scalar
  // loop makes per sample.
  std::vector<sim::BatchLaneSpec> batch;
  std::vector<std::size_t> batch_index;
  while (true) {
    batch.clear();
    batch_index.clear();
    for (std::size_t k = 0; k < count; ++k) {
      LaneState& lane = lanes[k];
      if (!lane.active) continue;
      if (lane.attempt > 0) {
        for (const auto& device : lane.tb.circuit.devices()) {
          device->reset_state();
        }
      }
      batch.push_back({&lane.tb.circuit, lane.tstop});
      batch_index.push_back(k);
    }
    if (batch.empty()) break;

    std::vector<sim::BatchLaneOutcome> outcomes =
        sim::run_transient_batch(batch, options);
    for (std::size_t j = 0; j < outcomes.size(); ++j) {
      const std::size_t k = batch_index[j];
      LaneState& lane = lanes[k];
      if (outcomes[j].evicted) {
        lane.active = false;  // nullopt -> caller reruns on the scalar path
        continue;
      }
      sim::TranResult& tran = outcomes[j].tran;
      if (tran.truncated) {
        // Cannot happen (batch_transient_supported excludes budgets and a
        // tripped cancel evicts), but stay honest if that ever changes.
        lane.active = false;
        continue;
      }
      if (transition_complete(tran, lane.tb, specs[k]) ||
          lane.attempt >= kMaxStretches) {
        TransitionMetrics metrics;
        metrics.tran = std::move(tran);
        try {
          measure_transition(lane.tb, specs[k], metrics);
          results[k] = std::move(metrics);
        } catch (const Error&) {
          // Measurement rejected the waveform; the scalar rerun reproduces
          // the same throw for the caller's failure isolation to record.
        }
        lane.active = false;
      } else {
        lane.tstop *= 4.0;
        ++lane.attempt;
      }
    }
  }
  return results;
}

}  // namespace softfet::core
