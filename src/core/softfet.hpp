// Umbrella header: the public API of the Soft-FET library.
//
// Pull this in to get the circuit simulator, device models, the Soft-FET /
// baseline cell builders, and the paper's experiment runners.
#pragma once

#include "cells/hyperfet.hpp"     // IWYU pragma: export
#include "cells/inverter.hpp"     // IWYU pragma: export
#include "cells/io_buffer.hpp"    // IWYU pragma: export
#include "cells/pdn.hpp"          // IWYU pragma: export
#include "cells/power_gate.hpp"   // IWYU pragma: export
#include "cells/ring_oscillator.hpp"  // IWYU pragma: export
#include "core/case_studies.hpp"  // IWYU pragma: export
#include "core/characterize.hpp"  // IWYU pragma: export
#include "core/iso_imax.hpp"      // IWYU pragma: export
#include "core/sweeps.hpp"        // IWYU pragma: export
#include "core/variation.hpp"     // IWYU pragma: export
#include "devices/mosfet.hpp"     // IWYU pragma: export
#include "devices/ptm.hpp"        // IWYU pragma: export
#include "devices/tech40.hpp"     // IWYU pragma: export
#include "measure/metrics.hpp"    // IWYU pragma: export
#include "measure/waveform.hpp"   // IWYU pragma: export
#include "netlist/elaborate.hpp"  // IWYU pragma: export
#include "sim/analyses.hpp"       // IWYU pragma: export
