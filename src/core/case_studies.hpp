// The two application case studies (paper Section V): power-gate wake-up
// droop (Fig. 10) and I/O buffer simultaneous switching noise (Fig. 11).
#pragma once

#include "cells/io_buffer.hpp"
#include "cells/power_gate.hpp"
#include "sim/analyses.hpp"
#include "sim/options.hpp"

namespace softfet::core {

struct PowerGateOutcome {
  double droop = 0.0;         ///< worst shared-rail droop below VCC [V]
  double peak_current = 0.0;  ///< peak header inrush current [A]
  double max_didt = 0.0;      ///< max |di/dt| of the header current [A/s]
  double wake_time = 0.0;     ///< enable 50% -> virtual rail at 95% VCC [s]
  /// True when the first attempt hit a ConvergenceError and the run only
  /// succeeded under tightened (backward-Euler, slow-step) options.
  bool retried = false;
  sim::TranResult tran;
};

struct PowerGateStudy {
  PowerGateOutcome baseline;
  PowerGateOutcome soft;
  [[nodiscard]] double droop_improvement() const {
    return baseline.droop - soft.droop;
  }
  [[nodiscard]] double current_reduction_factor() const {
    return baseline.peak_current / soft.peak_current;
  }
};

/// Run the wake-up experiment twice: direct gate drive vs Soft-FET gate.
/// `spec.ptm` selects the PTM card used for the soft run (falls back to
/// PowerGateSpec::default_header_ptm()).
[[nodiscard]] PowerGateStudy run_power_gate_study(
    cells::PowerGateSpec spec, const sim::SimOptions& options = {});

struct IoBufferOutcome {
  double ssn = 0.0;           ///< worst bounce across both internal rails [V]
  double vcc_bounce = 0.0;    ///< worst |v(vddi) - VCC| [V]
  double gnd_bounce = 0.0;    ///< worst |v(vssi)| [V]
  double peak_current = 0.0;  ///< peak external supply current [A]
  double pad_delay = 0.0;     ///< input 50% -> pad 50% [s]
  bool retried = false;       ///< see PowerGateOutcome::retried
  sim::TranResult tran;
};

struct IoBufferStudy {
  IoBufferOutcome baseline;
  IoBufferOutcome soft;
  [[nodiscard]] double ssn_reduction_pct() const {
    return 100.0 * (1.0 - soft.ssn / baseline.ssn);
  }
  /// CV^2 energy-efficiency gain from the reduced guardband: operating at
  /// VCC + bounce instead of VCC + bounce' scales switching energy by the
  /// voltage ratio squared.
  [[nodiscard]] double energy_efficiency_gain_pct(double vcc) const {
    const double v_base = vcc + baseline.ssn;
    const double v_soft = vcc + soft.ssn;
    return 100.0 * (1.0 - (v_soft * v_soft) / (v_base * v_base));
  }
};

[[nodiscard]] IoBufferStudy run_io_buffer_study(
    cells::IoBufferSpec spec, const sim::SimOptions& options = {});

}  // namespace softfet::core
