// Iso-I_MAX comparison study (paper Fig. 5): tune each baseline CMOS
// variant's knob so its peak switching current at VCC = 1 V matches the
// Soft-FET inverter's, then sweep VCC and compare delays.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "core/characterize.hpp"
#include "core/failure.hpp"

namespace softfet::core {

struct IsoImaxSpec {
  cells::InverterTestbenchSpec base;   ///< Soft-FET spec (dut.ptm must be set)
  double calibration_vcc = 1.0;
  std::vector<double> vcc_sweep{0.5, 0.6, 0.7, 0.8, 0.9, 1.0};
  double tolerance = 0.02;  ///< relative I_MAX matching tolerance
};

struct VariantPoint {
  double vcc = 0.0;
  double i_max = 0.0;
  double max_didt = 0.0;
  double delay = 0.0;
  bool ok = true;  ///< false when this grid point failed (values are zero)
};

struct IsoImaxResult {
  double target_imax = 0.0;  ///< Soft-FET I_MAX at the calibration VCC
  double hvt_delta_vt = 0.0;   ///< calibrated threshold increase [V]
  double series_r = 0.0;       ///< calibrated gate series resistance [ohm]
  double stack_width_mult = 0.0;  ///< calibrated stacked-pair width multiple
  /// Curves keyed by variant name: "softfet", "baseline", "hvt",
  /// "series-r", "stacked".
  std::map<std::string, std::vector<VariantPoint>> curves;
  /// Isolated failures: calibration bisections that did not converge and
  /// (variant, VCC) grid points whose characterization failed. A variant
  /// whose calibration failed has every curve point marked !ok.
  std::vector<FailureRecord> failures;
};

[[nodiscard]] IsoImaxResult run_iso_imax_study(
    const IsoImaxSpec& spec, const sim::SimOptions& options = {});

/// Generic monotone-knob bisection used by the study (exposed for tests):
/// finds knob in [lo, hi] such that f(knob) ~ target. `increasing` states
/// whether f grows with the knob. Throws ConvergenceError if the bracket
/// does not contain the target.
[[nodiscard]] double bisect_to_target(const std::function<double(double)>& f,
                                      double lo, double hi, double target,
                                      bool increasing, double rel_tol,
                                      int max_iterations = 40);

}  // namespace softfet::core
