// Failure isolation for batch drivers: a failed sample or grid point is
// recorded as a structured FailureRecord (optionally after one retry under
// tightened solver options) instead of poisoning the whole parallel run.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <utility>

#include "sim/options.hpp"
#include "sim/result.hpp"
#include "util/budget.hpp"
#include "util/error.hpp"

namespace softfet::core {

/// One isolated batch-point failure: which point, why, and — when the
/// error was a ConvergenceError — the full solver diagnostics (worst node,
/// offending device, time, recovery-attempt log).
struct FailureRecord {
  std::size_t index = 0;  ///< sample / grid-point index within the batch
  std::string context;    ///< point description, e.g. "sample 17" or "vcc=0.5"
  std::string message;    ///< what() of the final error
  SolverDiagnostics diagnostics;  ///< populated when the error carried one
  bool retried = false;   ///< a tightened-options retry was attempted first
  /// Which budget limit stopped the point (kNone = a numerical failure).
  util::BudgetStop budget_stop = util::BudgetStop::kNone;

  /// True when the point did not fail on its own merits but was swept up by
  /// a cooperative cancel. Cancelled records must not enter statistics or
  /// checkpoints — the point reruns on resume.
  [[nodiscard]] bool cancelled() const noexcept {
    return budget_stop == util::BudgetStop::kCancel;
  }
};

/// Conservative option set for retrying a failed batch point: backward
/// Euler everywhere, a larger Newton budget, and an earlier, stronger
/// recovery ladder. Slower but markedly more robust.
[[nodiscard]] sim::SimOptions tightened_options(const sim::SimOptions& options);

/// Throw BudgetExceededError when a transient came back truncated. Batch
/// points and case studies call this right after run_transient so a
/// budget-stopped partial waveform is recorded as an isolated failure (or
/// surfaces the cancel) instead of being measured as if it completed.
void require_complete(const sim::TranResult& tran, const std::string& who);

/// Throw BudgetExceededError(kCancel) when the options' cancel token has
/// been tripped. Batch drivers call this between serial phases so a Ctrl-C
/// lands promptly even outside parallel loops.
void throw_if_cancelled(const sim::SimOptions& options, const char* who);

/// Run `body(options)`; on a ConvergenceError retry once with
/// tightened_options(). Returns nullopt on success, otherwise a
/// FailureRecord describing the final error. Budget/cancel stops are
/// recorded WITHOUT the retry: retrying a point that ran out of budget only
/// doubles the spent wall clock, and retrying under cancellation defeats
/// the cancel. Non-softfet exceptions propagate: they indicate bugs, not
/// convergence trouble.
template <typename Body>
[[nodiscard]] std::optional<FailureRecord> run_isolated(
    std::size_t index, std::string context, const sim::SimOptions& options,
    Body&& body) {
  const auto record = [&](const Error& e, bool retried) {
    FailureRecord rec;
    rec.index = index;
    rec.context = std::move(context);
    rec.message = e.what();
    if (const auto* conv = dynamic_cast<const ConvergenceError*>(&e);
        conv != nullptr && conv->has_diagnostics()) {
      rec.diagnostics = conv->diagnostics();
    }
    if (const auto* budget = dynamic_cast<const BudgetExceededError*>(&e)) {
      rec.budget_stop = budget->stop();
    }
    rec.retried = retried;
    return rec;
  };
  try {
    body(options);
    return std::nullopt;
  } catch (const BudgetExceededError& e) {
    return record(e, /*retried=*/false);
  } catch (const ConvergenceError&) {
    try {
      body(tightened_options(options));
      return std::nullopt;
    } catch (const Error& e) {
      return record(e, /*retried=*/true);
    }
  } catch (const Error& e) {
    return record(e, /*retried=*/false);
  }
}

}  // namespace softfet::core
