// PTM parameter sensitivity and variability analysis (paper contribution 3:
// "detailed PTM device parameter variations and their sensitivity to the
// Soft-FET peak current and/or di/dt reduction").
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "core/characterize.hpp"
#include "core/checkpointing.hpp"
#include "core/failure.hpp"

namespace softfet::core {

/// Normalized local sensitivities of the Soft-FET metrics to one PTM
/// parameter: percent change of metric per percent change of parameter
/// (central differences at +-delta).
struct SensitivityRow {
  std::string parameter;
  double nominal = 0.0;
  double imax_sensitivity = 0.0;   ///< %I_MAX / %param
  double didt_sensitivity = 0.0;   ///< %di/dt / %param
  double delay_sensitivity = 0.0;  ///< %delay / %param
};

/// Sensitivity of all five PTM parameters (r_ins, r_met, v_imt, v_mit,
/// t_ptm). `base.dut.ptm` must be set; `delta_fraction` is the relative
/// perturbation (0.1 = +-10%).
[[nodiscard]] std::vector<SensitivityRow> ptm_sensitivity(
    const cells::InverterTestbenchSpec& base, double delta_fraction = 0.1,
    const sim::SimOptions& options = {});

/// Monte-Carlo fabrication-variability study: PTM thresholds and
/// resistances drawn from independent Gaussians around the card.
struct MonteCarloSpec {
  int samples = 100;
  unsigned seed = 1;
  double sigma_threshold = 0.05;   ///< relative sigma of V_IMT / V_MIT
  double sigma_resistance = 0.15;  ///< relative sigma of R_INS / R_MET
  double sigma_tptm = 0.10;        ///< relative sigma of T_PTM
  /// Worker threads for the sample loop: 0 = all hardware threads,
  /// 1 = serial. Results are identical for every setting (each sample has
  /// its own RNG stream seeded from `seed` + sample index).
  int threads = 0;
  /// Rejection-sampling budget per sample before the draw is declared
  /// impossible for the given sigma_* spreads.
  int max_draw_attempts = 100;
  /// Lane width for the batched lockstep transient engine: 0 = auto
  /// (8 lanes whenever the engine supports `options`), 1 = always the
  /// scalar oracle path, K > 1 = explicit width. Consecutive samples are
  /// grouped into K-lane blocks that share one batched factor/solve; a
  /// sample the engine evicts (recovery-ladder trigger, cancel, non-finite
  /// math) transparently reruns on the scalar path. Per-sample results are
  /// bitwise identical for every setting under the default
  /// sim::Determinism::kBitwise mode; under kRelaxedUlp (from the
  /// SimOptions passed to ptm_monte_carlo) batched lanes use the SIMD
  /// device kernels, whose results agree with the scalar oracle to the
  /// documented ULP bounds rather than bitwise.
  int lanes = 0;
  /// Test / instrumentation hook: called with the sample index and the
  /// fully drawn spec just before characterization (fault injection,
  /// logging). Must be thread-safe; it runs from the worker pool and may be
  /// called more than once for one sample (isolation retries and batch
  /// eviction reruns repeat it), so it must be idempotent per index.
  std::function<void(std::size_t, cells::InverterTestbenchSpec&)>
      per_sample_hook;
  /// Checkpoint/resume: with `checkpoint.path` set, completed sample slots
  /// (and isolated failures — but never cancel-poisoned ones) persist via
  /// atomic saves every `checkpoint.flush_every` completions, on
  /// cancellation, and at the end. A rerun against the same file skips
  /// finished samples and reproduces the uninterrupted statistics bitwise
  /// (payloads are hexfloat-encoded). The file's tag binds it to this
  /// (seed, samples, sigma_*) study and to the determinism mode of the
  /// run; mismatches — including strict<->relaxed resume — are refused.
  CheckpointSpec checkpoint;
};

struct MonteCarloStats {
  /// Requested sample count; statistics cover the samples - failed_samples
  /// survivors (in index order, so results are thread-count independent).
  int samples = 0;
  double imax_mean = 0.0;
  double imax_std = 0.0;
  double imax_worst = 0.0;  ///< largest sampled I_MAX
  double delay_mean = 0.0;
  double delay_std = 0.0;
  double delay_worst = 0.0;
  /// Fraction of surviving samples that still beat the baseline I_MAX.
  double fraction_below_baseline = 0.0;
  /// Samples whose characterization failed even after a tightened-options
  /// retry; each carries the solver diagnostics of the final error. The
  /// run only throws when fewer than 2 samples survive.
  int failed_samples = 0;
  std::vector<FailureRecord> failures;
};

[[nodiscard]] MonteCarloStats ptm_monte_carlo(
    const cells::InverterTestbenchSpec& base, const MonteCarloSpec& mc = {},
    const sim::SimOptions& options = {});

}  // namespace softfet::core
