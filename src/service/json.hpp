// Minimal JSON value model for the NDJSON service protocol.
//
// Hand-rolled on purpose: the daemon must not pull in external
// dependencies, and the protocol needs only the JSON core — objects,
// arrays, strings, numbers, booleans, null. Two properties matter more
// than generality:
//
//  - parse errors carry 1-based line/column positions (a malformed request
//    line must produce a structured, pinpointed rejection, never a hang or
//    a vague message), and
//  - object members keep insertion order, so serialized responses are
//    deterministic and the soak test can compare transcripts textually.
//
// Numbers are doubles; integral values within the exact-double range print
// without a fractional part, everything else uses round-trip precision
// ("%.17g"), so hexfloat-critical payloads (checkpoint codecs) stay out of
// JSON numbers and travel as strings instead.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace softfet::service {

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  using Member = std::pair<std::string, JsonValue>;

  JsonValue() = default;  // null
  static JsonValue null() { return JsonValue(); }
  static JsonValue boolean(bool v);
  static JsonValue number(double v);
  static JsonValue string(std::string v);
  static JsonValue array();
  static JsonValue object();

  [[nodiscard]] Kind kind() const noexcept { return kind_; }
  [[nodiscard]] bool is_null() const noexcept { return kind_ == Kind::kNull; }
  [[nodiscard]] bool is_bool() const noexcept { return kind_ == Kind::kBool; }
  [[nodiscard]] bool is_number() const noexcept {
    return kind_ == Kind::kNumber;
  }
  [[nodiscard]] bool is_string() const noexcept {
    return kind_ == Kind::kString;
  }
  [[nodiscard]] bool is_array() const noexcept {
    return kind_ == Kind::kArray;
  }
  [[nodiscard]] bool is_object() const noexcept {
    return kind_ == Kind::kObject;
  }

  /// Typed accessors throw softfet::Error on a kind mismatch.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const std::vector<JsonValue>& items() const;
  [[nodiscard]] const std::vector<Member>& members() const;

  /// Object lookup: nullptr when absent (or when this is not an object).
  [[nodiscard]] const JsonValue* get(std::string_view key) const;

  /// Convenience lookups with defaults for optional request fields.
  [[nodiscard]] double number_or(std::string_view key, double fallback) const;
  [[nodiscard]] bool bool_or(std::string_view key, bool fallback) const;
  [[nodiscard]] std::string string_or(std::string_view key,
                                      std::string fallback) const;

  /// Builder helpers (no-ops unless this value is the right kind).
  JsonValue& set(std::string key, JsonValue value);  ///< object member
  JsonValue& push(JsonValue value);                  ///< array element

  /// Compact single-line serialization (NDJSON-safe: no raw newlines).
  [[nodiscard]] std::string dump() const;

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<Member> members_;
};

/// Parse one JSON document (the full text must be consumed, trailing
/// whitespace aside). Throws softfet::ParseError with the 1-based line and
/// column of the offending character.
[[nodiscard]] JsonValue json_parse(std::string_view text);

/// Escape a string into a JSON string literal (with quotes).
[[nodiscard]] std::string json_quote(std::string_view text);

/// 0-based byte offset of the opening quote of the top-level string value
/// for `key` in a JSON object document (nullopt when absent or not a
/// string). Used to map positions inside escaped embedded netlists back to
/// request-line columns without retaining a full parse tree.
[[nodiscard]] std::optional<std::size_t> locate_string_value(
    std::string_view text, std::string_view key);

/// Map a 1-based (line, column) position inside the *decoded* value of the
/// string literal opening at `quote_offset` back to the 1-based column in
/// `text` itself, walking "\n"/"\t"/"\uXXXX" escapes. Returns nullopt when
/// the literal is malformed or too short to reach the position.
[[nodiscard]] std::optional<std::size_t> column_in_string_literal(
    std::string_view text, std::size_t quote_offset, int line, int column);

}  // namespace softfet::service
