#include "service/cache.hpp"

#include "netlist/parser.hpp"
#include "service/retry.hpp"

namespace softfet::service {

std::string options_fingerprint(const sim::SimOptions& options) {
  // Only fields that change what the cached artifacts *are* belong here:
  // the ordering kind decides whether AMD permutations apply at all, and
  // the solver kind/policy decide which code paths consult them. Newton
  // tolerances etc. never affect the AST or the pattern, so they stay out
  // and keep the hit rate high.
  std::string out;
  out += to_string(options.solver_ordering);
  out += '/';
  out += to_string(options.solver_policy);
  return out;
}

NetlistCache::NetlistCache(std::size_t max_entries, std::size_t max_bytes)
    : max_entries_(max_entries == 0 ? 1 : max_entries),
      max_bytes_(max_bytes) {}

CompiledNetlist NetlistCache::lookup(const std::string& netlist_text,
                                     const std::string& fingerprint) {
  const std::uint64_t hash = fnv1a64(netlist_text) ^ fnv1a64(fingerprint);
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (auto it = lru_.begin(); it != lru_.end(); ++it) {
      if (it->hash == hash && it->fingerprint == fingerprint &&
          it->netlist_text == netlist_text) {
        ++hits_;
        lru_.splice(lru_.begin(), lru_, it);  // bump to MRU
        return it->compiled;
      }
    }
    ++misses_;
  }

  // Parse outside the lock — it can be arbitrarily slow and may throw.
  // Concurrent misses on the same text both parse; the duplicate insert
  // below is detected and dropped (ASTs are interchangeable).
  CompiledNetlist compiled;
  compiled.ast = std::make_shared<const netlist::NetlistAst>(
      netlist::parse(netlist_text));
  compiled.orderings = std::make_shared<numeric::OrderingCache>();

  const std::lock_guard<std::mutex> lock(mutex_);
  for (auto it = lru_.begin(); it != lru_.end(); ++it) {
    if (it->hash == hash && it->fingerprint == fingerprint &&
        it->netlist_text == netlist_text) {
      lru_.splice(lru_.begin(), lru_, it);
      return it->compiled;  // a racer inserted first; share its entry
    }
  }
  lru_.push_front(Entry{hash, netlist_text, fingerprint, compiled});
  bytes_ += netlist_text.size();
  while (lru_.size() > max_entries_ ||
         (bytes_ > max_bytes_ && lru_.size() > 1)) {
    bytes_ -= lru_.back().netlist_text.size();
    lru_.pop_back();
    ++evictions_;
  }
  return compiled;
}

NetlistCacheStats NetlistCache::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  NetlistCacheStats out;
  out.hits = hits_;
  out.misses = misses_;
  out.evictions = evictions_;
  out.entries = lru_.size();
  out.bytes = bytes_;
  return out;
}

}  // namespace softfet::service
