#include "service/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/error.hpp"

namespace softfet::service {

JsonValue JsonValue::boolean(bool v) {
  JsonValue out;
  out.kind_ = Kind::kBool;
  out.bool_ = v;
  return out;
}

JsonValue JsonValue::number(double v) {
  JsonValue out;
  out.kind_ = Kind::kNumber;
  out.number_ = v;
  return out;
}

JsonValue JsonValue::string(std::string v) {
  JsonValue out;
  out.kind_ = Kind::kString;
  out.string_ = std::move(v);
  return out;
}

JsonValue JsonValue::array() {
  JsonValue out;
  out.kind_ = Kind::kArray;
  return out;
}

JsonValue JsonValue::object() {
  JsonValue out;
  out.kind_ = Kind::kObject;
  return out;
}

namespace {

[[noreturn]] void kind_error(const char* wanted) {
  throw Error(std::string("json: value is not ") + wanted);
}

}  // namespace

bool JsonValue::as_bool() const {
  if (!is_bool()) kind_error("a boolean");
  return bool_;
}

double JsonValue::as_number() const {
  if (!is_number()) kind_error("a number");
  return number_;
}

const std::string& JsonValue::as_string() const {
  if (!is_string()) kind_error("a string");
  return string_;
}

const std::vector<JsonValue>& JsonValue::items() const {
  if (!is_array()) kind_error("an array");
  return items_;
}

const std::vector<JsonValue::Member>& JsonValue::members() const {
  if (!is_object()) kind_error("an object");
  return members_;
}

const JsonValue* JsonValue::get(std::string_view key) const {
  if (!is_object()) return nullptr;
  for (const auto& [name, value] : members_) {
    if (name == key) return &value;
  }
  return nullptr;
}

double JsonValue::number_or(std::string_view key, double fallback) const {
  const JsonValue* v = get(key);
  return (v != nullptr && v->is_number()) ? v->as_number() : fallback;
}

bool JsonValue::bool_or(std::string_view key, bool fallback) const {
  const JsonValue* v = get(key);
  return (v != nullptr && v->is_bool()) ? v->as_bool() : fallback;
}

std::string JsonValue::string_or(std::string_view key,
                                 std::string fallback) const {
  const JsonValue* v = get(key);
  return (v != nullptr && v->is_string()) ? v->as_string()
                                          : std::move(fallback);
}

JsonValue& JsonValue::set(std::string key, JsonValue value) {
  if (is_object()) {
    for (auto& [name, existing] : members_) {
      if (name == key) {
        existing = std::move(value);
        return *this;
      }
    }
    members_.emplace_back(std::move(key), std::move(value));
  }
  return *this;
}

JsonValue& JsonValue::push(JsonValue value) {
  if (is_array()) items_.push_back(std::move(value));
  return *this;
}

std::string json_quote(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  out += '"';
  for (const char c : text) {
    const auto u = static_cast<unsigned char>(c);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (u < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", u);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

namespace {

void dump_number(double v, std::string& out) {
  if (!std::isfinite(v)) {
    // JSON has no inf/nan; the protocol encodes such payloads as strings.
    out += "null";
    return;
  }
  char buf[32];
  // Integers within the exact-double range print without a fraction so
  // counters and indices stay readable; everything else round-trips.
  if (v == static_cast<double>(static_cast<long long>(v)) &&
      std::fabs(v) < 9.0e15) {
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof buf, "%.17g", v);
  }
  out += buf;
}

void dump_value(const JsonValue& v, std::string& out) {
  switch (v.kind()) {
    case JsonValue::Kind::kNull: out += "null"; break;
    case JsonValue::Kind::kBool: out += v.as_bool() ? "true" : "false"; break;
    case JsonValue::Kind::kNumber: dump_number(v.as_number(), out); break;
    case JsonValue::Kind::kString: out += json_quote(v.as_string()); break;
    case JsonValue::Kind::kArray: {
      out += '[';
      bool first = true;
      for (const auto& item : v.items()) {
        if (!first) out += ',';
        first = false;
        dump_value(item, out);
      }
      out += ']';
      break;
    }
    case JsonValue::Kind::kObject: {
      out += '{';
      bool first = true;
      for (const auto& [name, value] : v.members()) {
        if (!first) out += ',';
        first = false;
        out += json_quote(name);
        out += ':';
        dump_value(value, out);
      }
      out += '}';
      break;
    }
  }
}

/// Recursive-descent parser with line/column tracking.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    skip_whitespace();
    JsonValue value = parse_value(0);
    skip_whitespace();
    if (pos_ != text_.size()) fail("trailing characters after JSON value");
    return value;
  }

 private:
  // Bound on nesting so a hostile request ("[[[[...") cannot overflow the
  // stack; far beyond anything the protocol legitimately produces.
  static constexpr int kMaxDepth = 64;

  [[noreturn]] void fail(const std::string& why) const {
    throw ParseError("json: " + why, line_, column_);
  }

  [[nodiscard]] bool eof() const noexcept { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const noexcept { return text_[pos_]; }

  char take() {
    const char c = text_[pos_++];
    if (c == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    return c;
  }

  void skip_whitespace() {
    while (!eof()) {
      const char c = peek();
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        take();
      } else {
        break;
      }
    }
  }

  void expect(char c) {
    if (eof() || peek() != c) {
      fail(std::string("expected '") + c + "'");
    }
    take();
  }

  void expect_keyword(const char* word) {
    for (const char* p = word; *p != '\0'; ++p) {
      if (eof() || peek() != *p) fail(std::string("bad literal"));
      take();
    }
  }

  JsonValue parse_value(int depth) {
    if (depth > kMaxDepth) fail("nesting too deep");
    if (eof()) fail("unexpected end of input");
    const char c = peek();
    switch (c) {
      case '{': return parse_object(depth);
      case '[': return parse_array(depth);
      case '"': return JsonValue::string(parse_string());
      case 't':
        expect_keyword("true");
        return JsonValue::boolean(true);
      case 'f':
        expect_keyword("false");
        return JsonValue::boolean(false);
      case 'n':
        expect_keyword("null");
        return JsonValue::null();
      default:
        if (c == '-' || (c >= '0' && c <= '9')) return parse_number();
        fail(std::string("unexpected character '") + c + "'");
    }
  }

  JsonValue parse_object(int depth) {
    expect('{');
    JsonValue out = JsonValue::object();
    skip_whitespace();
    if (!eof() && peek() == '}') {
      take();
      return out;
    }
    while (true) {
      skip_whitespace();
      if (eof() || peek() != '"') fail("expected object key string");
      std::string key = parse_string();
      skip_whitespace();
      expect(':');
      skip_whitespace();
      out.set(std::move(key), parse_value(depth + 1));
      skip_whitespace();
      if (eof()) fail("unterminated object");
      const char c = take();
      if (c == '}') return out;
      if (c != ',') fail("expected ',' or '}' in object");
    }
  }

  JsonValue parse_array(int depth) {
    expect('[');
    JsonValue out = JsonValue::array();
    skip_whitespace();
    if (!eof() && peek() == ']') {
      take();
      return out;
    }
    while (true) {
      skip_whitespace();
      out.push(parse_value(depth + 1));
      skip_whitespace();
      if (eof()) fail("unterminated array");
      const char c = take();
      if (c == ']') return out;
      if (c != ',') fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (eof()) fail("unterminated string");
      const char c = take();
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("raw control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (eof()) fail("unterminated escape");
      const char e = take();
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            if (eof()) fail("unterminated \\u escape");
            const char h = take();
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("bad \\u escape digit");
            }
          }
          // UTF-8 encode the code point (surrogate pairs are not needed by
          // the protocol; lone surrogates encode as-is).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail(std::string("bad escape '\\") + e + "'");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (!eof() && peek() == '-') take();
    while (!eof() && peek() >= '0' && peek() <= '9') take();
    if (!eof() && peek() == '.') {
      take();
      while (!eof() && peek() >= '0' && peek() <= '9') take();
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      take();
      if (!eof() && (peek() == '+' || peek() == '-')) take();
      while (!eof() && peek() >= '0' && peek() <= '9') take();
    }
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0' || token.empty() || token == "-") {
      fail("malformed number '" + token + "'");
    }
    return JsonValue::number(value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
};

}  // namespace

std::string JsonValue::dump() const {
  std::string out;
  dump_value(*this, out);
  return out;
}

JsonValue json_parse(std::string_view text) {
  return Parser(text).parse_document();
}

std::optional<std::size_t> locate_string_value(std::string_view text,
                                               std::string_view key) {
  // Token scan tracking depth: find `"key"` at depth 1, skip the colon, and
  // report the opening quote of its string value. No tree retained.
  int depth = 0;
  std::size_t i = 0;
  const auto skip_string = [&](std::size_t from) -> std::size_t {
    // from points at the opening quote; returns index past closing quote
    // (or text.size() when unterminated).
    std::size_t j = from + 1;
    while (j < text.size()) {
      if (text[j] == '\\') {
        j += 2;
        continue;
      }
      if (text[j] == '"') return j + 1;
      ++j;
    }
    return text.size();
  };
  while (i < text.size()) {
    const char c = text[i];
    if (c == '{' || c == '[') {
      ++depth;
      ++i;
    } else if (c == '}' || c == ']') {
      --depth;
      ++i;
    } else if (c == '"') {
      const std::size_t end = skip_string(i);
      const std::string_view token = text.substr(i + 1, end - i - 2);
      if (depth == 1 && token == key) {
        // Find the colon, then the value.
        std::size_t j = end;
        while (j < text.size() &&
               (text[j] == ' ' || text[j] == '\t' || text[j] == '\n' ||
                text[j] == '\r')) {
          ++j;
        }
        if (j < text.size() && text[j] == ':') {
          ++j;
          while (j < text.size() &&
                 (text[j] == ' ' || text[j] == '\t' || text[j] == '\n' ||
                  text[j] == '\r')) {
            ++j;
          }
          if (j < text.size() && text[j] == '"') return j;
          // The key's value is not a string; keep scanning (a nested
          // object later could hold the key, but at depth 1 keys are
          // unique in well-formed requests).
          i = j;
          continue;
        }
      }
      i = end;
    } else {
      ++i;
    }
  }
  return std::nullopt;
}

std::optional<std::size_t> column_in_string_literal(std::string_view text,
                                                    std::size_t quote_offset,
                                                    int line, int column) {
  if (quote_offset >= text.size() || text[quote_offset] != '"' || line < 1 ||
      column < 1) {
    return std::nullopt;
  }
  int cur_line = 1;
  int cur_column = 1;
  std::size_t i = quote_offset + 1;
  while (i < text.size() && text[i] != '"') {
    if (cur_line == line && cur_column == column) return i + 1;  // 1-based
    char decoded = text[i];
    std::size_t advance = 1;
    if (text[i] == '\\' && i + 1 < text.size()) {
      const char e = text[i + 1];
      advance = 2;
      switch (e) {
        case 'n': decoded = '\n'; break;
        case 'r': decoded = '\r'; break;
        case 't': decoded = '\t'; break;
        case 'u': advance = (i + 5 < text.size()) ? 6 : text.size() - i;
                  decoded = '?';
                  break;
        default: decoded = e; break;
      }
    }
    if (decoded == '\n') {
      ++cur_line;
      cur_column = 1;
    } else {
      ++cur_column;
    }
    i += advance;
  }
  // Position at the very end of the last line (e.g. "unexpected EOF").
  if (cur_line == line && cur_column == column && i < text.size()) {
    return i + 1;
  }
  return std::nullopt;
}

}  // namespace softfet::service
