// Built-in job handlers of the simulation service: "netlist" runs a
// SPICE-style netlist embedded in the request (op/dc/tran/ac + measures,
// waveforms streamed in bounded chunks), "monte_carlo" runs the PTM
// fabrication-variability study with per-sample progress events and
// checkpoint/resume through the job's state file. Both produce exactly the
// numbers the direct library calls produce — the service layer adds
// streaming and robustness, never different math.
#include <algorithm>
#include <atomic>
#include <string>
#include <vector>

#include "cells/inverter.hpp"
#include "core/failure.hpp"
#include "core/variation.hpp"
#include "devices/ptm.hpp"
#include "netlist/elaborate.hpp"
#include "netlist/measure_eval.hpp"
#include "netlist/parser.hpp"
#include "service/server.hpp"
#include "sim/ac.hpp"
#include "sim/analyses.hpp"
#include "sim/options.hpp"
#include "util/strings.hpp"

namespace softfet::service {

namespace {

/// Column selection mirroring netlist_runner's --signals filter.
[[nodiscard]] std::vector<std::string> wanted_signals(const Request& request) {
  std::vector<std::string> wanted;
  if (const JsonValue* signals = request.payload.get("signals");
      signals != nullptr && signals->is_array()) {
    for (const JsonValue& name : signals->items()) {
      if (name.is_string()) wanted.push_back(name.as_string());
    }
  }
  return wanted;
}

/// Stream one axis+table result as `chunk` events of at most
/// config->chunk_rows rows. Every chunk is self-describing (kind, columns,
/// row_offset) so clients can reassemble without cross-chunk state; `last`
/// marks the final chunk.
void stream_table(JobContext& ctx, const char* kind,
                  const std::string& axis_name,
                  const std::vector<double>& axis,
                  const sim::SignalTable& table,
                  const std::vector<std::string>& wanted) {
  std::vector<std::string> columns{axis_name};
  std::vector<const std::vector<double>*> data;
  for (const auto& name : table.names()) {
    bool take = wanted.empty();
    for (const auto& w : wanted) {
      if (util::iequals(w, name)) take = true;
    }
    if (!take) continue;
    columns.push_back(name);
    data.push_back(&table.signal(name));
  }

  const std::size_t rows = axis.size();
  const std::size_t chunk_rows =
      ctx.config != nullptr && ctx.config->chunk_rows > 0
          ? ctx.config->chunk_rows
          : 256;
  for (std::size_t start = 0; start < rows; start += chunk_rows) {
    const std::size_t stop = std::min(rows, start + chunk_rows);
    JsonValue fields = JsonValue::object();
    fields.set("kind", JsonValue::string(kind));
    JsonValue names = JsonValue::array();
    for (const auto& column : columns) names.push(JsonValue::string(column));
    fields.set("columns", std::move(names));
    fields.set("row_offset", JsonValue::number(static_cast<double>(start)));
    JsonValue block = JsonValue::array();
    for (std::size_t row = start; row < stop; ++row) {
      JsonValue values = JsonValue::array();
      values.push(JsonValue::number(axis[row]));
      for (const auto* column : data)
        values.push(JsonValue::number((*column)[row]));
      block.push(std::move(values));
    }
    fields.set("rows", std::move(block));
    fields.set("last", JsonValue::boolean(stop == rows));
    ctx.emit("chunk", std::move(fields));
  }
}

/// Optional "determinism" request field: "bitwise" (default) or "relaxed".
/// Unknown values are refused with a structured error before any work runs.
void apply_determinism(const Request& request, sim::SimOptions& options) {
  const JsonValue* mode = request.payload.get("determinism");
  if (mode == nullptr) return;
  if (mode->is_string()) {
    const std::string& name = mode->as_string();
    if (name == "bitwise") {
      options.determinism = sim::Determinism::kBitwise;
      return;
    }
    if (name == "relaxed") {
      options.determinism = sim::Determinism::kRelaxedUlp;
      return;
    }
  }
  throw Error(
      "\"determinism\" must be \"bitwise\" or \"relaxed\"");
}

}  // namespace

JobHandler netlist_job_handler() {
  return [](const Request& request, JobContext& ctx) {
    const JsonValue* netlist = request.payload.get("netlist");
    if (netlist == nullptr || !netlist->is_string()) {
      throw Error("netlist job needs a string \"netlist\" field");
    }

    // Content-addressed AST + ordering memo; a cache-less context (direct
    // handler use in benches) parses fresh.
    CompiledNetlist compiled;
    if (ctx.cache != nullptr) {
      compiled =
          ctx.cache->lookup(netlist->as_string(), options_fingerprint(ctx.options));
    } else {
      compiled.ast = std::make_shared<const netlist::NetlistAst>(
          netlist::parse(netlist->as_string()));
    }
    ctx.options.ordering_cache = compiled.orderings;

    auto net = netlist::elaborate(*compiled.ast);
    net.circuit->prepare();

    JsonValue result = JsonValue::object();
    if (!net.title.empty())
      result.set("title", JsonValue::string(net.title));
    result.set("nodes", JsonValue::number(
                            static_cast<double>(net.circuit->node_count())));
    result.set("devices",
               JsonValue::number(
                   static_cast<double>(net.circuit->devices().size())));
    result.set("unknowns",
               JsonValue::number(
                   static_cast<double>(net.circuit->unknown_count())));

    const std::vector<std::string> wanted = wanted_signals(request);

    if (net.op || (!net.tran && !net.dc && !net.ac)) {
      const auto op = sim::dc_operating_point(*net.circuit, ctx.options);
      JsonValue values = JsonValue::object();
      for (std::size_t i = 0; i < op.labels.size(); ++i) {
        values.set(op.labels[i], JsonValue::number(op.x[i]));
      }
      result.set("op", std::move(values));
    }
    if (net.dc) {
      const auto sweep = sim::dc_sweep(*net.circuit, net.dc->source,
                                       net.dc->points(), ctx.options);
      stream_table(ctx, "dc", net.dc->source, sweep.axis, sweep.table, wanted);
      result.set("dc_points", JsonValue::number(
                                  static_cast<double>(sweep.axis.size())));
    }
    if (net.tran) {
      sim::SimOptions tran_options = ctx.options;
      if (net.tran->tstep > 0.0) tran_options.dtmax = net.tran->tstep * 10.0;
      const auto tran =
          sim::run_transient(*net.circuit, net.tran->tstop, tran_options);
      // Stream what we have first — a budget-stopped partial waveform is
      // still delivered before the structured error goes out.
      stream_table(ctx, "tran", "time", tran.time, tran.table, wanted);
      core::require_complete(tran, "netlist transient");
      JsonValue summary = JsonValue::object();
      summary.set("tstop", JsonValue::number(net.tran->tstop));
      summary.set("accepted_steps",
                  JsonValue::number(static_cast<double>(tran.accepted_steps)));
      summary.set("rejected_steps",
                  JsonValue::number(static_cast<double>(tran.rejected_steps)));
      summary.set("newton_iterations",
                  JsonValue::number(
                      static_cast<double>(tran.newton_iterations)));
      summary.set("ptm_events",
                  JsonValue::number(static_cast<double>(tran.event_count)));
      result.set("tran", std::move(summary));
      if (!net.measures.empty()) {
        JsonValue measures = JsonValue::object();
        for (const auto& m : netlist::evaluate_measures(net.measures, tran)) {
          measures.set(m.name, JsonValue::number(m.value));
        }
        result.set("measures", std::move(measures));
      }
    }
    if (net.ac) {
      const auto freqs = net.ac->frequencies();
      const auto ac = sim::ac_sweep(*net.circuit, freqs);
      sim::SignalTable mags;
      {
        std::vector<std::string> names;
        for (const auto& name : ac.names()) names.push_back("mag(" + name + ")");
        mags = sim::SignalTable(std::move(names));
        std::vector<std::vector<double>> columns;
        for (const auto& name : ac.names())
          columns.push_back(ac.magnitude(name));
        for (std::size_t row = 0; row < freqs.size(); ++row) {
          std::vector<double> values;
          values.reserve(columns.size());
          for (const auto& column : columns) values.push_back(column[row]);
          mags.append_row(values);
        }
      }
      stream_table(ctx, "ac", "freq", freqs, mags, {});
      result.set("ac_points",
                 JsonValue::number(static_cast<double>(freqs.size())));
    }

    ctx.finish(std::move(result));
  };
}

JobHandler monte_carlo_job_handler() {
  return [](const Request& request, JobContext& ctx) {
    const int max_samples =
        ctx.config != nullptr ? ctx.config->max_samples : 100000;
    const int samples =
        static_cast<int>(request.payload.number_or("samples", 32.0));
    if (samples < 2 || samples > max_samples) {
      throw Error("monte_carlo \"samples\" must be in [2, " +
                  std::to_string(max_samples) + "]");
    }

    cells::InverterTestbenchSpec base;
    base.vcc = request.payload.number_or("vcc", base.vcc);
    base.input_transition =
        request.payload.number_or("input_transition", base.input_transition);
    base.input_rising = request.payload.bool_or("input_rising", false);
    base.fanout = request.payload.number_or("fanout", base.fanout);
    base.dut.ptm = devices::PtmParams{};

    core::MonteCarloSpec mc;
    mc.samples = samples;
    mc.seed = static_cast<unsigned>(request.payload.number_or("seed", 1.0));
    mc.sigma_threshold =
        request.payload.number_or("sigma_threshold", mc.sigma_threshold);
    mc.sigma_resistance =
        request.payload.number_or("sigma_resistance", mc.sigma_resistance);
    mc.sigma_tptm = request.payload.number_or("sigma_tptm", mc.sigma_tptm);
    mc.lanes = static_cast<int>(request.payload.number_or("lanes", 0.0));
    apply_determinism(request, ctx.options);
    // Parallelism lives at the job level (the server's worker pool);
    // nested parallel_for would run serially anyway, so be explicit.
    mc.threads = 1;
    mc.checkpoint.path = ctx.checkpoint_path;
    mc.checkpoint.flush_every = static_cast<int>(
        request.payload.number_or("checkpoint_every", 4.0));

    std::atomic<int> drawn{0};
    const int stride = std::max(1, samples / 8);
    mc.per_sample_hook = [&ctx, &drawn, stride, samples](
                             std::size_t, cells::InverterTestbenchSpec&) {
      // Counts characterization *starts* (reruns repeat the hook, so this
      // can exceed `samples` under eviction — it is a liveness signal, not
      // an exact completion count).
      const int n = drawn.fetch_add(1, std::memory_order_relaxed) + 1;
      if (n % stride == 0) {
        JsonValue fields = JsonValue::object();
        fields.set("samples_started", JsonValue::number(n));
        fields.set("total", JsonValue::number(samples));
        ctx.emit("progress", std::move(fields));
      }
    };

    const auto stats = core::ptm_monte_carlo(base, mc, ctx.options);

    JsonValue result = JsonValue::object();
    result.set("determinism",
               JsonValue::string(sim::to_string(ctx.options.determinism)));
    result.set("samples", JsonValue::number(stats.samples));
    result.set("failed_samples", JsonValue::number(stats.failed_samples));
    result.set("imax_mean", JsonValue::number(stats.imax_mean));
    result.set("imax_std", JsonValue::number(stats.imax_std));
    result.set("imax_worst", JsonValue::number(stats.imax_worst));
    result.set("delay_mean", JsonValue::number(stats.delay_mean));
    result.set("delay_std", JsonValue::number(stats.delay_std));
    result.set("delay_worst", JsonValue::number(stats.delay_worst));
    result.set("fraction_below_baseline",
               JsonValue::number(stats.fraction_below_baseline));
    if (!stats.failures.empty()) {
      JsonValue failures = JsonValue::array();
      const std::size_t shown = std::min<std::size_t>(stats.failures.size(), 8);
      for (std::size_t i = 0; i < shown; ++i) {
        const auto& f = stats.failures[i];
        JsonValue record = JsonValue::object();
        record.set("context", JsonValue::string(f.context));
        record.set("message", JsonValue::string(f.message));
        record.set("budget_stop",
                   JsonValue::string(util::to_string(f.budget_stop)));
        failures.push(std::move(record));
      }
      result.set("failures", std::move(failures));
      result.set("failures_dropped",
                 JsonValue::number(static_cast<double>(stats.failures.size() -
                                                       shown)));
    }
    ctx.finish(std::move(result));
  };
}

}  // namespace softfet::service
