// Content-addressed cross-request cache of compiled netlists.
//
// Keyed by the netlist text itself (FNV-1a hash for the bucket, full text
// retained and compared for exactness — content addressing, not
// hash-trusting) plus an options fingerprint, because solver options that
// change elaboration-adjacent behavior (ordering kind, solver policy) must
// not alias. A hit skips:
//
//  - parsing (the immutable NetlistAst is shared read-only across jobs —
//    every job still elaborates its own sim::Circuit, which carries
//    mutable device state and cannot be shared), and
//  - the AMD symbolic ordering, via a per-entry numeric::OrderingCache the
//    jobs attach to their SimOptions (the solver's symbolic analysis of a
//    repeated pattern is served from the memo).
//
// Both layers are bitwise-neutral: a cached AST elaborates to the same
// circuit a fresh parse would, and the ordering memo returns exactly the
// permutation AMD would compute. Entries are LRU-evicted beyond the entry
// and byte bounds so a daemon fed endless distinct netlists holds steady
// memory; eviction invalidates nothing in flight (jobs hold shared_ptrs).
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>

#include "netlist/ast.hpp"
#include "numeric/ordering.hpp"
#include "sim/options.hpp"

namespace softfet::service {

/// The shareable, immutable part of a compiled netlist.
struct CompiledNetlist {
  std::shared_ptr<const netlist::NetlistAst> ast;
  std::shared_ptr<numeric::OrderingCache> orderings;
};

/// Fingerprint of the SimOptions fields a cache entry must key on.
[[nodiscard]] std::string options_fingerprint(const sim::SimOptions& options);

struct NetlistCacheStats {
  std::size_t hits = 0;
  std::size_t misses = 0;
  std::size_t evictions = 0;
  std::size_t entries = 0;
  std::size_t bytes = 0;  ///< netlist-text bytes currently retained
};

class NetlistCache {
 public:
  explicit NetlistCache(std::size_t max_entries = 32,
                        std::size_t max_bytes = 8u << 20);

  /// Parse-or-fetch. Throws softfet::ParseError on a parse failure (parse
  /// failures are never cached: the error carries request-specific
  /// positions and poisoning the cache with negatives buys nothing).
  [[nodiscard]] CompiledNetlist lookup(const std::string& netlist_text,
                                       const std::string& fingerprint);

  [[nodiscard]] NetlistCacheStats stats() const;
  [[nodiscard]] std::size_t max_entries() const noexcept {
    return max_entries_;
  }
  [[nodiscard]] std::size_t max_bytes() const noexcept { return max_bytes_; }

 private:
  struct Entry {
    std::uint64_t hash = 0;
    std::string netlist_text;  ///< exact-match key
    std::string fingerprint;
    CompiledNetlist compiled;
  };

  std::size_t max_entries_;
  std::size_t max_bytes_;
  mutable std::mutex mutex_;
  std::list<Entry> lru_;  ///< front = most recently used
  std::size_t bytes_ = 0;
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
  std::size_t evictions_ = 0;
};

}  // namespace softfet::service
