#include "service/server.hpp"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <system_error>
#include <utility>
#include <vector>

#include "core/failure.hpp"
#include "service/supervisor.hpp"
#include "util/build_info.hpp"
#include "util/parallel.hpp"
#include "util/subprocess.hpp"

namespace softfet::service {

namespace {

namespace fs = std::filesystem;

/// Filesystem-safe job-state stem: the id's safe characters (bounded) plus
/// an FNV hash of the full id so distinct ids never collide on disk.
[[nodiscard]] std::string sanitize_id(const std::string& id) {
  std::string safe;
  for (const char c : id) {
    const auto u = static_cast<unsigned char>(c);
    if (std::isalnum(u) != 0 || c == '-' || c == '_') safe += c;
    if (safe.size() >= 40) break;
  }
  char hash[20];
  std::snprintf(hash, sizeof hash, "%016llx",
                static_cast<unsigned long long>(fnv1a64(id)));
  if (!safe.empty()) safe += '-';
  return safe + hash;
}

/// Journal write: tmp + rename, same-directory. The journal is an intent
/// record (the authoritative durable state is the Checkpoint, which fsyncs);
/// a torn journal line merely fails request parsing on resume.
void write_journal(const std::string& path, const std::string& line) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream file(tmp, std::ios::trunc);
    if (!file) return;
    file << line << '\n';
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) fs::remove(tmp, ec);
}

void remove_quiet(const std::string& path) {
  if (path.empty()) return;
  std::error_code ec;
  fs::remove(path, ec);
}

[[nodiscard]] bool blank_line(const std::string& line) {
  return line.find_first_not_of(" \t\r\n") == std::string::npos;
}

}  // namespace

Server::Server(ServerConfig config)
    : config_(std::move(config)),
      cache_(config_.cache_entries, config_.cache_bytes),
      queue_(config_.queue_capacity) {
  if (config_.workers == 0) config_.workers = 1;
  if (config_.retry.max_attempts < 1) config_.retry.max_attempts = 1;
  handlers_["netlist"] = netlist_job_handler();
  handlers_["monte_carlo"] = monte_carlo_job_handler();
  if (!config_.state_dir.empty()) {
    std::error_code ec;
    fs::create_directories(config_.state_dir, ec);
  }
  if (config_.isolation == IsolationMode::kProcess) {
    SupervisorConfig sup;
    sup.slots = config_.workers;
    sup.heartbeat_interval_seconds = config_.heartbeat_interval_seconds;
    sup.heartbeat_timeout_seconds = config_.heartbeat_timeout_seconds;
    sup.hang_grace_seconds = config_.hang_grace_seconds;
    sup.worker_memory_bytes = config_.worker_memory_bytes;
    sup.rlimit_cpu = config_.rlimit_cpu;
    sup.crash_dir = config_.state_dir;
    sup.build = util::build_info_line();
    sup.server_config = &config_;
    sup.handlers = &handlers_;
    // Workers fork lazily, per slot, on first dispatch — after the caller
    // has registered its handlers (the forked image must hold the final
    // handler map).
    supervisor_ = std::make_unique<Supervisor>(std::move(sup));
  }
  // The worker pool is util::parallel_for run to its natural conclusion on
  // one carrier thread: `workers` indices over `workers` threads, each body
  // a pop-until-closed loop, so the pool drains and joins exactly when the
  // queue is closed and empty. The index doubles as the thread's exclusive
  // supervisor slot in process mode.
  pool_ = std::thread([this] {
    util::parallel_for(
        config_.workers, [this](std::size_t slot) { worker_loop(slot); },
        config_.workers);
  });
}

Server::~Server() {
  shutdown(/*cancel_inflight=*/true);
  if (pool_.joinable()) pool_.join();
}

void Server::register_handler(std::string type, JobHandler handler) {
  handlers_[std::move(type)] = std::move(handler);
}

void Server::reply(const Sink& sink, const JsonValue& value) {
  const std::lock_guard<std::mutex> lock(emit_mutex_);
  sink(value.dump());
}

void Server::handle_line(const std::string& line, const Sink& sink) {
  if (blank_line(line)) return;  // NDJSON keepalive

  if (line.size() > config_.max_line_bytes) {
    ++rejected_invalid_;
    JsonValue event = make_event("", 0, "rejected");
    event.set("code", JsonValue::string(kRejectInvalid));
    event.set("message",
              JsonValue::string("request line exceeds " +
                                std::to_string(config_.max_line_bytes) +
                                " bytes"));
    reply(sink, event);
    return;
  }

  Request request;
  try {
    request = parse_request(line);
  } catch (const ParseError& e) {
    ++rejected_invalid_;
    JsonValue event = make_event("", 0, "rejected");
    event.set("code", JsonValue::string(kRejectInvalid));
    event.set("message", JsonValue::string(e.what()));
    event.set("line", JsonValue::number(e.line()));
    if (e.column() > 0) event.set("column", JsonValue::number(e.column()));
    reply(sink, event);
    return;
  } catch (const std::exception& e) {
    ++rejected_invalid_;
    JsonValue event = make_event("", 0, "rejected");
    event.set("code", JsonValue::string(kRejectInvalid));
    event.set("message", JsonValue::string(e.what()));
    reply(sink, event);
    return;
  }

  // Control requests: answered synchronously, never queued.
  if (request.type == "ping") {
    JsonValue event = make_event(request.id, 0, "result");
    event.set("pong", JsonValue::boolean(true));
    reply(sink, event);
    return;
  }
  if (request.type == "stats") {
    JsonValue event = make_event(request.id, 0, "result");
    event.set("stats", stats_json());
    reply(sink, event);
    return;
  }
  if (request.type == "cancel") {
    const std::string target = request.payload.string_or("job", "");
    bool found = false;
    {
      const std::lock_guard<std::mutex> lock(active_mutex_);
      const auto it = active_.find(target);
      if (it != active_.end()) {
        it->second->client_cancel.store(true, std::memory_order_release);
        it->second->cancel.request();
        found = true;
      }
    }
    JsonValue event = make_event(request.id, 0, "result");
    event.set("job", JsonValue::string(target));
    event.set("state", JsonValue::string(found ? "cancelling" : "unknown"));
    reply(sink, event);
    return;
  }
  if (request.type == "shutdown") {
    const bool now = request.payload.string_or("mode", "drain") == "now";
    if (now) stop_now_.store(true, std::memory_order_release);
    stop_requested_.store(true, std::memory_order_release);
    JsonValue event = make_event(request.id, 0, "result");
    event.set("draining", JsonValue::boolean(true));
    event.set("mode", JsonValue::string(now ? "now" : "drain"));
    reply(sink, event);
    return;
  }

  // Job requests: validate, then admit-or-shed.
  const auto rejected = [&](const char* code, const std::string& message,
                            bool overloaded = false) {
    if (overloaded) {
      ++rejected_overloaded_;
    } else {
      ++rejected_invalid_;
    }
    JsonValue event = make_event(request.id, 0, "rejected");
    event.set("code", JsonValue::string(code));
    event.set("message", JsonValue::string(message));
    if (overloaded) {
      event.set("retry_after_ms", JsonValue::number(dynamic_retry_after_ms()));
      event.set("queue_depth",
                JsonValue::number(static_cast<double>(queue_.depth())));
      event.set("queue_capacity",
                JsonValue::number(static_cast<double>(queue_.capacity())));
    }
    reply(sink, event);
  };

  const auto handler = handlers_.find(request.type);
  if (handler == handlers_.end()) {
    rejected(kRejectInvalid, "unknown request type '" + request.type + "'");
    return;
  }
  if (request.id.empty()) {
    rejected(kRejectInvalid, "job requests need a non-empty \"id\"");
    return;
  }
  if (const JsonValue* netlist = request.payload.get("netlist");
      netlist != nullptr && netlist->is_string() &&
      netlist->as_string().size() > config_.max_netlist_bytes) {
    rejected(kRejectInvalid,
             "embedded netlist exceeds " +
                 std::to_string(config_.max_netlist_bytes) + " bytes");
    return;
  }

  const std::lock_guard<std::mutex> admission(admission_mutex_);
  if (stop_requested_.load(std::memory_order_acquire) || queue_.closed()) {
    rejected(kRejectShuttingDown, "server is shutting down");
    return;
  }
  // Pre-check the bound under the admission lock: pops only shrink the
  // queue, so a passing check guarantees the push below admits and the
  // `accepted` line can be emitted first (lifecycle order).
  if (queue_.depth() >= queue_.capacity()) {
    rejected(kRejectOverloaded, "admission queue is full",
             /*overloaded=*/true);
    return;
  }

  {
    // Duplicate check before the id is moved out of `request`. Inserts are
    // serialized behind admission_mutex_ (workers only erase), so the
    // check-then-emplace below cannot race another admission.
    const std::lock_guard<std::mutex> lock(active_mutex_);
    if (active_.count(request.id) != 0) {
      rejected(kRejectInvalid,
               "a job with id '" + request.id + "' is still active");
      return;
    }
  }

  auto job = std::make_shared<JobState>();
  job->request = std::move(request);
  job->sink = sink;
  job->admitted_at = std::chrono::steady_clock::now();
  job->journal_path = journal_path_for(job->request);

  {
    const std::lock_guard<std::mutex> lock(active_mutex_);
    active_.emplace(job->request.id, job);
  }
  // Journal before `accepted`: once the client has seen the admission, a
  // daemon crash must not lose the job (resume_journaled re-admits it).
  if (!job->journal_path.empty()) {
    write_journal(job->journal_path, job->request.raw_line);
  }

  ++admitted_;
  JsonValue accepted_fields = JsonValue::object();
  accepted_fields.set("queue_depth",
                      JsonValue::number(static_cast<double>(queue_.depth())));
  emit_event(job, "accepted", std::move(accepted_fields), false);

  if (queue_.try_push(job) != PushResult::kAdmitted) {
    // Unreachable by construction (bound pre-checked, close serialized
    // behind the admission lock) — but never strand an accepted job.
    emit_event(job, "cancelled", JsonValue::object(), true);
    ++cancelled_;
    finish_job(job, /*keep_journal=*/false);
  }
}

std::size_t Server::resume_journaled(const Sink& sink) {
  if (config_.state_dir.empty()) return 0;
  std::vector<fs::path> journals;
  std::error_code ec;
  for (fs::directory_iterator it(config_.state_dir, ec), end;
       !ec && it != end; it.increment(ec)) {
    if (it->path().extension() == ".req") journals.push_back(it->path());
  }
  std::sort(journals.begin(), journals.end());  // deterministic replay order
  std::size_t count = 0;
  for (const auto& path : journals) {
    std::ifstream file(path);
    std::string line;
    if (!file || !std::getline(file, line) || blank_line(line)) {
      remove_quiet(path.string());
      continue;
    }
    // Torn-tail hardening: a daemon killed mid-write can leave a journal
    // whose line is a truncated prefix of the request (no rename barrier
    // survives every filesystem). Validate before replaying: a line that
    // no longer parses is dropped silently — recovery proceeds with the
    // remaining journals instead of emitting a spurious anonymous
    // `rejected` for a job no client is waiting on.
    try {
      (void)parse_request(line);
    } catch (...) {
      remove_quiet(path.string());
      continue;
    }
    const std::size_t before = admitted_.load(std::memory_order_relaxed);
    handle_line(line, sink);
    if (admitted_.load(std::memory_order_relaxed) > before) {
      ++count;
      ++resumed_;
    } else {
      // Rejected on replay (malformed after a torn write, or the queue is
      // too small) — drop the journal so restarts do not loop on it.
      remove_quiet(path.string());
    }
  }
  return count;
}

void Server::shutdown(bool cancel_inflight) {
  {
    const std::lock_guard<std::mutex> admission(admission_mutex_);
    stop_requested_.store(true, std::memory_order_release);
    if (cancel_inflight) stop_now_.store(true, std::memory_order_release);
    queue_.close();
  }
  if (cancel_inflight) {
    const std::lock_guard<std::mutex> lock(active_mutex_);
    for (auto& [id, job] : active_) job->cancel.request();
  }
  wait_idle();
  // Workers are idle now (queue closed and drained), so the supervisor can
  // EOF its worker processes without racing an in-flight dispatch.
  if (supervisor_) supervisor_->shutdown();
  shut_down_.store(true, std::memory_order_release);
}

void Server::wait_idle() {
  std::unique_lock<std::mutex> lock(idle_mutex_);
  idle_cv_.wait(lock, [this] {
    const std::lock_guard<std::mutex> active(active_mutex_);
    return active_.empty();
  });
}

ServerStats Server::stats() const {
  ServerStats s;
  s.admitted = admitted_.load(std::memory_order_relaxed);
  s.rejected_overloaded = rejected_overloaded_.load(std::memory_order_relaxed);
  s.rejected_invalid = rejected_invalid_.load(std::memory_order_relaxed);
  s.completed = completed_.load(std::memory_order_relaxed);
  s.failed = failed_.load(std::memory_order_relaxed);
  s.cancelled = cancelled_.load(std::memory_order_relaxed);
  s.retries = retries_.load(std::memory_order_relaxed);
  s.resumed = resumed_.load(std::memory_order_relaxed);
  s.queue_depth = queue_.depth();
  {
    const std::lock_guard<std::mutex> lock(idle_mutex_);
    s.active_jobs = running_;
  }
  s.worker_crashes = worker_crashes_.load(std::memory_order_relaxed);
  if (supervisor_) {
    const SupervisorStats sup = supervisor_->stats();
    s.workers_spawned = sup.spawned;
    s.workers_respawned = sup.respawned;
    s.heartbeat_kills = sup.heartbeat_kills;
    s.deadline_kills = sup.deadline_kills;
  }
  s.cache = cache_.stats();
  return s;
}

JsonValue Server::stats_json() const {
  const ServerStats s = stats();
  const auto num = [](std::size_t v) {
    return JsonValue::number(static_cast<double>(v));
  };
  JsonValue out = JsonValue::object();
  out.set("admitted", num(s.admitted));
  out.set("rejected_overloaded", num(s.rejected_overloaded));
  out.set("rejected_invalid", num(s.rejected_invalid));
  out.set("completed", num(s.completed));
  out.set("failed", num(s.failed));
  out.set("cancelled", num(s.cancelled));
  out.set("retries", num(s.retries));
  out.set("resumed", num(s.resumed));
  out.set("queue_depth", num(s.queue_depth));
  out.set("queue_capacity", num(queue_.capacity()));
  out.set("active_jobs", num(s.active_jobs));
  out.set("workers", num(config_.workers));
  out.set("isolation",
          JsonValue::string(config_.isolation == IsolationMode::kProcess
                                ? "process"
                                : "thread"));
  if (config_.isolation == IsolationMode::kProcess) {
    JsonValue iso = JsonValue::object();
    iso.set("worker_crashes", num(s.worker_crashes));
    iso.set("workers_spawned", num(s.workers_spawned));
    iso.set("workers_respawned", num(s.workers_respawned));
    iso.set("heartbeat_kills", num(s.heartbeat_kills));
    iso.set("deadline_kills", num(s.deadline_kills));
    out.set("isolation_stats", std::move(iso));
  }
  {
    const util::BuildInfo& b = util::build_info();
    JsonValue build = JsonValue::object();
    build.set("version", JsonValue::string(b.project_version));
    build.set("git_sha", JsonValue::string(b.git_sha));
    build.set("compiler", JsonValue::string(b.compiler));
    build.set("build_type", JsonValue::string(b.build_type));
    build.set("sanitizer", JsonValue::string(b.sanitizer));
    out.set("build", std::move(build));
  }
  JsonValue cache = JsonValue::object();
  cache.set("hits", num(s.cache.hits));
  cache.set("misses", num(s.cache.misses));
  cache.set("evictions", num(s.cache.evictions));
  cache.set("entries", num(s.cache.entries));
  cache.set("bytes", num(s.cache.bytes));
  out.set("cache", std::move(cache));
  return out;
}

std::string Server::journal_path_for(const Request& request) const {
  if (config_.state_dir.empty()) return {};
  return config_.state_dir + "/job-" + sanitize_id(request.id) + ".req";
}

std::string Server::checkpoint_path_for(const Request& request) const {
  if (config_.state_dir.empty()) return {};
  return config_.state_dir + "/job-" + sanitize_id(request.id) + ".ckpt";
}

void Server::worker_loop(std::size_t slot) {
  while (auto job = queue_.pop()) {
    {
      const std::lock_guard<std::mutex> lock(idle_mutex_);
      ++running_;
    }
    try {
      run_job(*job, slot);
    } catch (...) {
      // run_job's own catch blocks handle everything a handler can throw;
      // this is the "never kill the pool" backstop (e.g. a sink that
      // throws). The job is forcibly finished so no slot leaks.
      try {
        emit_terminal_error(*job, Error("job runner failed"));
      } catch (...) {
      }
      finish_job(*job, /*keep_journal=*/false);
    }
    {
      const std::lock_guard<std::mutex> lock(idle_mutex_);
      --running_;
    }
    idle_cv_.notify_all();
  }
}

AttemptOutcome run_handler_attempt(const JobHandler& handler,
                                   const Request& request,
                                   const AttemptContext& actx) {
  AttemptOutcome out;
  JobContext ctx;
  ctx.options = actx.attempt > 1 ? core::tightened_options(sim::SimOptions{})
                                 : sim::SimOptions{};
  ctx.options.budget.max_wall_seconds = actx.timeout_seconds;
  ctx.options.budget.cancel = actx.cancel;
  ctx.config = actx.config;
  ctx.cache = actx.cache;
  ctx.cancel = actx.cancel;
  ctx.attempt = actx.attempt;
  ctx.checkpoint_path = actx.checkpoint_path;
  bool finished = false;
  ctx.emit = [&](const char* event, JsonValue fields) {
    if (finished) return;  // terminal latch: nothing streams past finish()
    if (actx.emit) actx.emit(event, std::move(fields));
  };
  ctx.finish = [&](JsonValue fields) {
    if (finished) return;
    finished = true;
    out.result_fields = std::move(fields);
  };

  try {
    handler(request, ctx);
    if (!finished) {
      throw Error("handler for '" + request.type +
                  "' returned without a result");
    }
    out.kind = AttemptOutcome::Kind::kFinished;
  } catch (const std::exception& e) {
    if (finished) {
      // The handler delivered its result and then threw; the result wins
      // (the old terminal latch dropped the late error the same way).
      out.kind = AttemptOutcome::Kind::kFinished;
      return out;
    }
    out.message = e.what();
    out.failure_class = classify_failure(e);
    if (out.failure_class == FailureClass::kCancelled) {
      out.kind = AttemptOutcome::Kind::kCancelled;
    } else {
      out.kind = AttemptOutcome::Kind::kError;
      out.error_fields = error_event_fields(e, request.raw_line);
    }
  } catch (...) {
    const Error error("unknown exception in handler");
    out.kind = AttemptOutcome::Kind::kError;
    out.failure_class = FailureClass::kTerminal;
    out.message = error.what();
    out.error_fields = error_event_fields(error, request.raw_line);
  }
  return out;
}

namespace {

/// `error` event fields for a dead worker: code worker_crashed plus the
/// crash forensics object (supervisor-side reason/status merged with the
/// worker's own last-gasp record when it managed to write one).
[[nodiscard]] JsonValue crash_error_fields(const IsolatedVerdict& verdict) {
  JsonValue out = JsonValue::object();
  out.set("code", JsonValue::string(kErrorWorkerCrashed));
  out.set("message", JsonValue::string(verdict.message));
  JsonValue crash = JsonValue::object();
  crash.set("reason", JsonValue::string(verdict.crash.reason));
  crash.set("status", JsonValue::string(verdict.crash.status.describe()));
  if (verdict.crash.status.signaled) {
    crash.set("signal", JsonValue::number(verdict.crash.status.term_signal));
    crash.set("signal_name",
              JsonValue::string(
                  util::signal_name(verdict.crash.status.term_signal)));
  } else if (verdict.crash.status.exited) {
    crash.set("exit_code",
              JsonValue::number(verdict.crash.status.exit_code));
  }
  if (verdict.crash.last_gasp.is_object()) {
    // The last gasp's own signal/signal_name take precedence: for an
    // SIGXCPU-then-rekill or an abort the faulting signal is what the
    // handler recorded, not what finally reaped the process.
    for (const auto& [key, value] : verdict.crash.last_gasp.members()) {
      crash.set(key, value);
    }
  }
  if (!verdict.crash.report_path.empty()) {
    crash.set("report_path", JsonValue::string(verdict.crash.report_path));
  }
  out.set("crash", std::move(crash));
  return out;
}

}  // namespace

void Server::run_job(const JobPtr& job, std::size_t slot) {
  const auto handler = handlers_.find(job->request.type);
  if (handler == handlers_.end()) {
    emit_terminal_error(job,
                        Error("no handler for '" + job->request.type + "'"));
    finish_job(job, /*keep_journal=*/false);
    return;
  }

  const auto emit_cancelled = [&](const std::string& reason) {
    JsonValue fields = JsonValue::object();
    if (!reason.empty()) fields.set("message", JsonValue::string(reason));
    emit_event(job, "cancelled", std::move(fields), true);
    ++cancelled_;
    // A client cancel is final — drop the job's state. A shutdown cancel
    // keeps journal + checkpoint so a restarted daemon resumes the job.
    const bool client = job->client_cancel.load(std::memory_order_acquire);
    finish_job(job, /*keep_journal=*/!client);
  };

  if (job->cancel.requested()) {
    emit_cancelled("cancelled before start");
    return;
  }

  double timeout =
      job->request.payload.number_or("timeout_seconds",
                                     config_.default_timeout_seconds);
  if (!(timeout > 0.0)) timeout = config_.default_timeout_seconds;
  if (config_.max_timeout_seconds > 0.0 && timeout > config_.max_timeout_seconds)
    timeout = config_.max_timeout_seconds;

  {
    JsonValue fields = JsonValue::object();
    fields.set("type", JsonValue::string(job->request.type));
    fields.set("timeout_seconds", JsonValue::number(timeout));
    emit_event(job, "started", std::move(fields), false);
  }

  const std::uint64_t jitter_seed = fnv1a64(job->request.id);
  std::string last_failure;
  for (int attempt = 1; attempt <= config_.retry.max_attempts; ++attempt) {
    if (attempt > 1) {
      const unsigned delay = backoff_ms(config_.retry, attempt, jitter_seed);
      ++retries_;
      JsonValue fields = JsonValue::object();
      fields.set("attempt", JsonValue::number(attempt));
      fields.set("backoff_ms", JsonValue::number(delay));
      fields.set("message", JsonValue::string(last_failure));
      emit_event(job, "retrying", std::move(fields), false);
      // Cancellable backoff sleep (5 ms granularity).
      for (unsigned slept = 0; slept < delay && !job->cancel.requested();
           slept += 5) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(std::min(5u, delay - slept)));
      }
      if (job->cancel.requested()) {
        emit_cancelled("cancelled during retry backoff");
        return;
      }
    }

    // One attempt, in this thread or in the slot's worker process; both
    // paths classify into the same verdict shape, so the retry policy and
    // the emitted event stream are isolation-independent.
    IsolatedVerdict verdict;
    if (supervisor_) {
      WorkerJob wjob;
      wjob.id = job->request.id;
      wjob.request_line = job->request.raw_line;
      wjob.attempt = attempt;
      wjob.timeout_seconds = timeout;
      wjob.checkpoint_path = checkpoint_path_for(job->request);
      if (!config_.state_dir.empty()) {
        wjob.crash_archive_path = config_.state_dir + "/crash-" +
                                  sanitize_id(job->request.id) + ".json";
      }
      verdict = supervisor_->run_job(
          slot, wjob,
          [this, job](const char* event, const std::string& fields_json) {
            emit_event_raw(job, event, fields_json);
          },
          job->cancel);
    } else {
      AttemptContext actx;
      actx.config = &config_;
      actx.cache = &cache_;
      actx.cancel = &job->cancel;
      actx.attempt = attempt;
      actx.timeout_seconds = timeout;
      actx.checkpoint_path = checkpoint_path_for(job->request);
      actx.emit = [this, job](const char* event, JsonValue fields) {
        emit_event(job, event, std::move(fields), false);
      };
      AttemptOutcome out =
          run_handler_attempt(handler->second, job->request, actx);
      switch (out.kind) {
        case AttemptOutcome::Kind::kFinished:
          verdict.kind = IsolatedVerdict::Kind::kResult;
          verdict.fields = std::move(out.result_fields);
          break;
        case AttemptOutcome::Kind::kCancelled:
          verdict.kind = IsolatedVerdict::Kind::kCancelled;
          verdict.failure_class = out.failure_class;
          verdict.message = out.message;
          break;
        case AttemptOutcome::Kind::kError:
          verdict.kind = IsolatedVerdict::Kind::kError;
          verdict.failure_class = out.failure_class;
          verdict.message = out.message;
          verdict.fields = std::move(out.error_fields);
          break;
      }
    }

    switch (verdict.kind) {
      case IsolatedVerdict::Kind::kResult:
        emit_event(job, "result", std::move(verdict.fields), true);
        ++completed_;
        finish_job(job, /*keep_journal=*/false);
        return;
      case IsolatedVerdict::Kind::kCancelled:
        emit_cancelled(verdict.message);
        return;
      case IsolatedVerdict::Kind::kError:
        if (verdict.failure_class == FailureClass::kTransient &&
            attempt < config_.retry.max_attempts) {
          last_failure = verdict.message;
          continue;
        }
        ++failed_;
        emit_event(job, "error", std::move(verdict.fields), true);
        finish_job(job, /*keep_journal=*/false);
        return;
      case IsolatedVerdict::Kind::kCrashed:
        ++worker_crashes_;
        if (config_.retry_crashed && attempt < config_.retry.max_attempts) {
          last_failure = verdict.message;
          continue;
        }
        ++failed_;
        emit_event(job, "error", crash_error_fields(verdict), true);
        finish_job(job, /*keep_journal=*/false);
        return;
    }
  }
}

void Server::emit_event(const JobPtr& job, const char* event, JsonValue fields,
                        bool terminal) {
  // Sink calls happen under the emit lock: response lines are serialized
  // process-wide and every job's seq order equals its line order. Sinks
  // must not call back into the Server.
  const std::lock_guard<std::mutex> lock(emit_mutex_);
  if (job->terminal) return;  // never emit past a terminal event
  if (terminal) job->terminal = true;
  JsonValue out = make_event(job->request.id, job->seq++, event);
  for (const auto& [key, value] : fields.members()) out.set(key, value);
  job->sink(out.dump());
}

void Server::emit_event_raw(const JobPtr& job, const char* event,
                            const std::string& fields_json) {
  const std::lock_guard<std::mutex> lock(emit_mutex_);
  if (job->terminal) return;  // never emit past a terminal event
  std::string line = make_event(job->request.id, job->seq++, event).dump();
  // Splice the worker's pre-serialized fields members into the event
  // object. The worker dumped them with this process's own canonical
  // serializer, so the line is byte-identical to the parse-merge-dump the
  // thread path does — without parsing multi-KB chunk payloads twice.
  if (fields_json.size() > 2 && fields_json.front() == '{') {
    line.back() = ',';
    line.append(fields_json, 1, fields_json.size() - 1);
  }
  job->sink(line);
}

JsonValue error_event_fields(const std::exception& error,
                             const std::string& raw_line) {
  const char* code = kErrorInternal;
  JsonValue fields = JsonValue::object();
  const SolverDiagnostics* diagnostics = nullptr;

  if (const auto* parse = dynamic_cast<const ParseError*>(&error)) {
    code = kErrorParse;
    const NetlistErrorPosition pos = map_netlist_error(*parse, raw_line);
    fields.set("netlist_line", JsonValue::number(pos.netlist_line));
    if (pos.netlist_column > 0)
      fields.set("netlist_column", JsonValue::number(pos.netlist_column));
    if (pos.request_column.has_value()) {
      fields.set("request_column",
                 JsonValue::number(static_cast<double>(*pos.request_column)));
    }
  } else if (dynamic_cast<const InvalidCircuitError*>(&error) != nullptr) {
    code = kErrorInvalidCircuit;
  } else if (const auto* budget =
                 dynamic_cast<const BudgetExceededError*>(&error)) {
    code = kErrorBudget;
    fields.set("stop", JsonValue::string(util::to_string(budget->stop())));
    if (budget->has_diagnostics()) diagnostics = &budget->diagnostics();
  } else if (const auto* conv =
                 dynamic_cast<const ConvergenceError*>(&error)) {
    code = kErrorConvergence;
    if (conv->has_diagnostics()) diagnostics = &conv->diagnostics();
  }

  JsonValue out = JsonValue::object();
  out.set("code", JsonValue::string(code));
  out.set("message", JsonValue::string(error.what()));
  for (const auto& [key, value] : fields.members()) out.set(key, value);
  if (diagnostics != nullptr)
    out.set("diagnostics", diagnostics_to_json(*diagnostics));
  return out;
}

void Server::emit_terminal_error(const JobPtr& job,
                                 const std::exception& error) {
  ++failed_;
  emit_event(job, "error", error_event_fields(error, job->request.raw_line),
             true);
}

void Server::record_latency(const JobPtr& job) {
  const double ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - job->admitted_at)
          .count();
  const std::lock_guard<std::mutex> lock(latency_mutex_);
  latency_ms_[latency_count_ % kLatencyWindow] = ms;
  ++latency_count_;
}

unsigned Server::dynamic_retry_after_ms() const {
  // The static floor is the configured hint; on top of it, estimate how
  // long the backlog actually takes to drain: queue_depth jobs at the mean
  // recent latency, spread over the worker pool. A client backing off by
  // the hint should find a queue slot free with high probability instead
  // of bouncing off `overloaded` again.
  double mean = 0.0;
  std::size_t n = 0;
  {
    const std::lock_guard<std::mutex> lock(latency_mutex_);
    n = std::min(latency_count_, kLatencyWindow);
    for (std::size_t i = 0; i < n; ++i) mean += latency_ms_[i];
  }
  if (n == 0) return config_.retry_after_ms;
  mean /= static_cast<double>(n);
  const double depth = static_cast<double>(queue_.depth());
  const double workers = static_cast<double>(std::max<std::size_t>(
      1, config_.workers));
  const double hint = depth * mean / workers;
  const double floor = static_cast<double>(config_.retry_after_ms);
  constexpr double kCeilingMs = 60000.0;  // never tell clients "go away"
  return static_cast<unsigned>(std::clamp(hint, floor, kCeilingMs));
}

void Server::finish_job(const JobPtr& job, bool keep_journal) {
  record_latency(job);
  {
    const std::lock_guard<std::mutex> lock(active_mutex_);
    active_.erase(job->request.id);
  }
  if (!keep_journal) {
    remove_quiet(job->journal_path);
    remove_quiet(checkpoint_path_for(job->request));
  }
  // The empty idle_mutex_ section pairs with wait_idle's predicate check:
  // a waiter is either before the check (and sees the erased entry) or
  // already parked (and this notify wakes it) — never between.
  { const std::lock_guard<std::mutex> lock(idle_mutex_); }
  idle_cv_.notify_all();
}

}  // namespace softfet::service
