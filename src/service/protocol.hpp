// NDJSON request/response protocol of the softfet simulation service.
//
// One request per line, one JSON object each. Every request carries a
// client-chosen "id" and a "type"; job types ("netlist", "monte_carlo",
// and test-registered extensions) flow through the admission queue, while
// control types ("ping", "stats", "cancel", "shutdown") are answered
// synchronously. Every response line echoes the id and carries a per-job
// monotone "seq" plus an "event" discriminator:
//
//   accepted | rejected | started | retrying | chunk | progress |
//   result | error | cancelled
//
// The lifecycle contract the soak test enforces: an admitted job emits
// `accepted`, then `started`, then any number of `chunk`/`progress`/
// `retrying` events, and terminates in exactly one of `result`, `error`,
// or `cancelled`. A request that is never admitted terminates in a single
// `rejected` (code "overloaded" carries retry_after_ms; "invalid" and
// "shutting_down" are terminal). Errors are structured: solver failures
// embed SolverDiagnostics, parse failures carry netlist-relative line/
// column plus the mapped column in the original request line.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "service/json.hpp"
#include "util/error.hpp"

namespace softfet::service {

/// One parsed request line. `payload` is the whole request object (job
/// parameters are read from it); `raw_line` is kept for journaling and for
/// mapping embedded-netlist positions back to request columns.
struct Request {
  std::string id;
  std::string type;
  JsonValue payload;
  std::string raw_line;
};

/// Parse + structurally validate one NDJSON request line. Throws
/// softfet::ParseError (with line/column) on malformed JSON, softfet::Error
/// when id/type are missing or not strings.
[[nodiscard]] Request parse_request(const std::string& line);

/// Rejection codes (the `code` field of `rejected` events).
inline constexpr const char* kRejectOverloaded = "overloaded";
inline constexpr const char* kRejectInvalid = "invalid";
inline constexpr const char* kRejectShuttingDown = "shutting_down";

/// Error codes (the `code` field of `error` events).
inline constexpr const char* kErrorParse = "parse_error";
inline constexpr const char* kErrorInvalidCircuit = "invalid_circuit";
inline constexpr const char* kErrorConvergence = "convergence";
inline constexpr const char* kErrorBudget = "budget_exhausted";
inline constexpr const char* kErrorInternal = "internal";
/// Process isolation: the worker process died (signal, nonzero exit,
/// missed heartbeats, or blown job deadline). The event's `crash` object
/// carries the forensics: reason, wait status, and — when the worker's
/// crash handler got to run — signal, faulting stage, job id, work hash,
/// last emitted seq, and the build stamp.
inline constexpr const char* kErrorWorkerCrashed = "worker_crashed";

/// Response skeleton: {"id":…,"seq":N,"event":…}.
[[nodiscard]] JsonValue make_event(const std::string& id, std::uint64_t seq,
                                   const char* event);

/// Full SolverDiagnostics -> JSON (summary line plus the structured
/// fields batch drivers already rely on).
[[nodiscard]] JsonValue diagnostics_to_json(const SolverDiagnostics& d);

/// Position of a ParseError raised while parsing a netlist that was
/// embedded as a JSON string: netlist-relative line/column plus, when the
/// raw request line is available, the 1-based column in that line where
/// the offending netlist position sits (walking the \n escapes).
struct NetlistErrorPosition {
  int netlist_line = 0;
  int netlist_column = 0;                     ///< 0 = unknown
  std::optional<std::size_t> request_column;  ///< column in the NDJSON line
};

/// Compute the position mapping for a ParseError thrown by the netlist
/// frontend against the original request line (whose `key` field held the
/// netlist text).
[[nodiscard]] NetlistErrorPosition map_netlist_error(
    const ParseError& error, const std::string& raw_line,
    std::string_view key = "netlist");

}  // namespace softfet::service
