// Bounded retry with exponential backoff and deterministic jitter.
//
// The daemon retries only failures that a retry can plausibly cure:
// Newton/convergence trouble, which PR 3's tightened_options() already
// turns into a markedly more robust (if slower) second attempt. Everything
// else is terminal — parse and validation errors will fail identically
// forever, and budget exhaustion/cancellation must not be retried (that
// doubles the spent wall clock or defeats the cancel; the same rule
// core::run_isolated applies).
//
// Backoff is exponential with full jitter so a burst of jobs poisoned by
// the same transient condition does not re-converge into a thundering
// herd. The jitter is deterministic per (job, attempt) — splitmix64 of a
// seed derived from the job id — because the soak test asserts bounds and
// reproducibility, and the simulator's bitwise-reproducibility culture
// extends to its service layer.
#pragma once

#include <cstdint>
#include <exception>
#include <string>
#include <string_view>

namespace softfet::service {

struct RetryPolicy {
  int max_attempts = 2;            ///< total tries (1 = never retry)
  unsigned base_backoff_ms = 25;   ///< backoff before attempt 2
  double backoff_multiplier = 4.0; ///< growth per further attempt
  unsigned max_backoff_ms = 2000;  ///< cap on the exponential
  /// Fraction of the computed backoff that is jittered away: the actual
  /// sleep is uniform in [(1-jitter)*b, b]. 0 = fully deterministic.
  double jitter = 0.5;
};

/// How the server must treat a failed attempt.
enum class FailureClass {
  kTransient,  ///< retry under tightened options (up to max_attempts)
  kTerminal,   ///< structured error response, no retry
  kCancelled,  ///< cooperative cancel — `cancelled` response, no retry
};

[[nodiscard]] const char* to_string(FailureClass cls);

/// Classify a caught exception. `softfet::BudgetExceededError` maps to
/// kCancelled when its stop is the cancel token, kTerminal otherwise;
/// other ConvergenceErrors (including SingularMatrixError) are transient;
/// ParseError / InvalidCircuitError / anything non-softfet are terminal.
[[nodiscard]] FailureClass classify_failure(const std::exception& error);

/// Backoff in milliseconds before `attempt` (2-based: the sleep preceding
/// the second attempt uses attempt = 2). Exponential with the policy's cap
/// and deterministic full jitter from `seed` (use fnv1a64 of the job id).
[[nodiscard]] unsigned backoff_ms(const RetryPolicy& policy, int attempt,
                                  std::uint64_t seed);

/// FNV-1a 64-bit hash (content addressing for cache keys and jitter seeds).
[[nodiscard]] std::uint64_t fnv1a64(std::string_view text);

}  // namespace softfet::service
