// Process-isolation supervisor: a pool of forked, sandboxed worker
// processes that run job handler attempts so hard faults — SIGSEGV in a
// device model, an allocation bomb, a non-terminating Newton loop — kill a
// disposable worker instead of the daemon.
//
// Topology: supervisor slot i is driven exclusively by server worker
// thread i (the util::parallel_for index), so dispatch is lock-free per
// slot; only spawn/teardown (which snapshot other slots' fds for the
// child's fd hygiene) serialize on a mutex. Each slot owns one worker
// process connected by two pipes carrying length-prefixed JSON frames
// (util/subprocess.hpp):
//
//   parent → child   {"kind":"job", job, line, attempt, timeout_seconds,
//                     checkpoint_path}            one handler attempt
//                    {"kind":"cancel", job}       cooperative cancel
//                    EOF                          clean shutdown
//   child → parent   {"kind":"ready", pid}        spawn handshake
//                    {"kind":"heartbeat"}         liveness while busy
//                    E<name>\n<fields JSON>       chunk/progress (raw:
//                                                 spliced, never re-parsed)
//                    {"kind":"terminal", outcome, class, message, fields}
//
// The retry loop stays in the parent: a worker runs exactly one attempt
// per job frame and reports a classified outcome, so thread and process
// mode share the same attempt semantics (service::run_handler_attempt)
// and the client-visible event stream is byte-for-byte identical.
//
// Worker death is detected three ways, each mapped to a reason string in
// the crash forensics:
//   - wait status        the pipe EOFs mid-job; the child died (signal or
//                        nonzero exit — its crash handler's last-gasp
//                        record says where);
//   - heartbeat timeout  the *process* went silent (stopped, swapped out,
//                        deadlocked in a signal handler) → SIGKILL;
//   - job deadline       the process is alive and heartbeating but the
//                        attempt outran timeout + hang_grace (infinite
//                        compute loop) → SIGKILL; RLIMIT_CPU backstops
//                        this in the kernel via SIGXCPU.
// Dead workers are respawned lazily with per-slot exponential backoff so
// a crash-looping input cannot turn the pool into a fork bomb.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "service/server.hpp"
#include "util/budget.hpp"
#include "util/subprocess.hpp"

namespace softfet::service {

struct SupervisorConfig {
  std::size_t slots = 2;
  double heartbeat_interval_seconds = 0.1;
  double heartbeat_timeout_seconds = 2.0;
  double hang_grace_seconds = 2.0;
  double respawn_backoff_base_seconds = 0.05;
  double respawn_backoff_max_seconds = 2.0;
  std::size_t worker_memory_bytes = 0;  ///< RLIMIT_AS per worker (0 = off)
  bool rlimit_cpu = true;               ///< arm RLIMIT_CPU per job
  std::string crash_dir;  ///< last-gasp scratch files ("" = temp dir)
  std::string build;      ///< build stamp embedded in crash reports
  const ServerConfig* server_config = nullptr;   ///< handler environment
  const std::map<std::string, JobHandler>* handlers = nullptr;
};

struct SupervisorStats {
  std::size_t spawned = 0;          ///< successful forks
  std::size_t respawned = 0;        ///< forks replacing a dead worker
  std::size_t crashes = 0;          ///< attempts lost to worker death
  std::size_t heartbeat_kills = 0;  ///< SIGKILLs for heartbeat silence
  std::size_t deadline_kills = 0;   ///< SIGKILLs for a blown job deadline
};

/// One handler attempt to ship to a worker.
struct WorkerJob {
  std::string id;
  std::string request_line;    ///< the raw NDJSON request (re-parsed there)
  int attempt = 1;
  double timeout_seconds = 0.0;
  std::string checkpoint_path;
  /// Where to archive the worker's last-gasp record if it crashes
  /// ("" = don't archive; the verdict still carries the parsed record).
  std::string crash_archive_path;
};

/// Forensics for a dead worker.
struct WorkerCrash {
  util::ExitStatus status;  ///< decoded wait status
  /// "signal" | "exit" | "heartbeat_timeout" | "deadline_timeout" |
  /// "spawn_failed"
  std::string reason;
  JsonValue last_gasp;      ///< parsed crash-handler record (null if none)
  std::string raw_report;   ///< the record's raw line ("" if none)
  std::string report_path;  ///< archived copy ("" when not archived)
};

/// Classified outcome of one isolated attempt. kResult/kError/kCancelled
/// mirror AttemptOutcome (the worker ran the attempt to completion);
/// kCrashed means the worker died and `crash` says how.
struct IsolatedVerdict {
  enum class Kind { kResult, kError, kCancelled, kCrashed };
  Kind kind = Kind::kCrashed;
  FailureClass failure_class = FailureClass::kTerminal;
  std::string message;
  JsonValue fields;  ///< result fields (kResult) or error fields (kError)
  WorkerCrash crash; ///< populated for kCrashed
};

class Supervisor {
 public:
  explicit Supervisor(SupervisorConfig config);
  ~Supervisor();

  Supervisor(const Supervisor&) = delete;
  Supervisor& operator=(const Supervisor&) = delete;

  /// Run one attempt on slot `slot`'s worker (spawning/respawning it as
  /// needed), streaming non-terminal events through `emit` — the fields
  /// arrive as the worker's own serialized JSON object, ready to splice
  /// into a response line without re-parsing. Blocks until a terminal
  /// frame, worker death, or a kill decision. `cancel` is watched
  /// throughout and forwarded to the worker as a cancel frame. MUST only
  /// be called by the one thread that owns `slot`.
  [[nodiscard]] IsolatedVerdict run_job(
      std::size_t slot, const WorkerJob& job,
      const std::function<void(const char* event,
                               const std::string& fields_json)>& emit,
      const util::CancelToken& cancel);

  /// EOF every worker's job pipe (clean exit), escalate stragglers to
  /// SIGKILL, reap everything. Idempotent. Call only when no run_job is in
  /// flight (the server drains first).
  void shutdown();

  [[nodiscard]] SupervisorStats stats() const;

  /// Live worker pids, one entry per slot (-1 = not spawned). For
  /// lifecycle tests that kill workers externally.
  [[nodiscard]] std::vector<pid_t> worker_pids() const;

 private:
  struct Slot {
    std::atomic<pid_t> pid{-1};
    int job_fd = -1;            ///< parent write end (job/cancel frames)
    util::FrameReader reader;   ///< parent read end (result frames)
    std::string crash_path;     ///< this worker's last-gasp scratch file
    int consecutive_crashes = 0;
    bool ever_spawned = false;
    std::chrono::steady_clock::time_point earliest_respawn{};
  };

  [[nodiscard]] bool ensure_worker(std::size_t slot,
                                   const util::CancelToken& cancel);
  [[nodiscard]] bool spawn_worker(std::size_t slot);
  /// SIGKILL (when still alive), reap, collect forensics, close fds, and
  /// arm the respawn backoff. Returns the kCrashed verdict.
  [[nodiscard]] IsolatedVerdict retire_worker(std::size_t slot,
                                              const WorkerJob& job,
                                              const std::string& reason,
                                              bool kill_first);

  SupervisorConfig config_;
  std::string scratch_dir_;  ///< resolved crash_dir
  std::vector<std::unique_ptr<Slot>> slots_;
  /// Serializes fork against fd teardown: the child's close-other-slots
  /// list must be a consistent snapshot, so spawn, retire, and shutdown
  /// all hold this while touching any slot's fds.
  std::mutex spawn_mutex_;
  std::atomic<bool> shutdown_{false};

  std::atomic<std::size_t> spawned_{0};
  std::atomic<std::size_t> respawned_{0};
  std::atomic<std::size_t> crashes_{0};
  std::atomic<std::size_t> heartbeat_kills_{0};
  std::atomic<std::size_t> deadline_kills_{0};
};

}  // namespace softfet::service
