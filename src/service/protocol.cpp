#include "service/protocol.hpp"

namespace softfet::service {

Request parse_request(const std::string& line) {
  Request out;
  out.raw_line = line;
  out.payload = json_parse(line);
  if (!out.payload.is_object()) {
    throw Error("request must be a JSON object");
  }
  const JsonValue* id = out.payload.get("id");
  if (id == nullptr || !id->is_string() || id->as_string().empty()) {
    throw Error("request needs a non-empty string \"id\"");
  }
  const JsonValue* type = out.payload.get("type");
  if (type == nullptr || !type->is_string() || type->as_string().empty()) {
    throw Error("request needs a non-empty string \"type\"");
  }
  out.id = id->as_string();
  out.type = type->as_string();
  return out;
}

JsonValue make_event(const std::string& id, std::uint64_t seq,
                     const char* event) {
  JsonValue out = JsonValue::object();
  out.set("id", JsonValue::string(id));
  out.set("seq", JsonValue::number(static_cast<double>(seq)));
  out.set("event", JsonValue::string(event));
  return out;
}

JsonValue diagnostics_to_json(const SolverDiagnostics& d) {
  JsonValue out = JsonValue::object();
  out.set("summary", JsonValue::string(d.summary()));
  out.set("analysis", JsonValue::string(d.analysis));
  out.set("determinism", JsonValue::string(d.determinism));
  out.set("failure", JsonValue::string(d.failure));
  out.set("time", JsonValue::number(d.time));
  out.set("last_dt", JsonValue::number(d.last_dt));
  out.set("iterations", JsonValue::number(d.iterations));
  out.set("total_iterations", JsonValue::number(d.total_iterations));
  out.set("worst_residual", JsonValue::number(d.worst_residual));
  out.set("worst_node", JsonValue::string(d.worst_node));
  out.set("worst_device", JsonValue::string(d.worst_device));
  JsonValue attempts = JsonValue::array();
  for (const auto& attempt : d.attempts) {
    JsonValue a = JsonValue::object();
    a.set("strategy", JsonValue::string(attempt.strategy));
    a.set("succeeded", JsonValue::boolean(attempt.succeeded));
    a.set("detail", JsonValue::string(attempt.detail));
    attempts.push(std::move(a));
  }
  out.set("attempts", std::move(attempts));
  out.set("attempts_dropped",
          JsonValue::number(static_cast<double>(d.attempts_dropped)));
  JsonValue solver = JsonValue::object();
  solver.set("symbolic_analyses",
             JsonValue::number(static_cast<double>(d.symbolic_analyses)));
  solver.set("refactorizations",
             JsonValue::number(static_cast<double>(d.refactorizations)));
  solver.set("fill_ratio", JsonValue::number(d.fill_ratio));
  solver.set("reordered", JsonValue::boolean(d.reordered));
  solver.set("krylov_solves",
             JsonValue::number(static_cast<double>(d.krylov_solves)));
  solver.set("krylov_iterations",
             JsonValue::number(static_cast<double>(d.krylov_iterations)));
  solver.set("krylov_fallbacks",
             JsonValue::number(static_cast<double>(d.krylov_fallbacks)));
  out.set("linear_solver", std::move(solver));
  return out;
}

NetlistErrorPosition map_netlist_error(const ParseError& error,
                                       const std::string& raw_line,
                                       std::string_view key) {
  NetlistErrorPosition out;
  out.netlist_line = error.line();
  out.netlist_column = error.column();
  const auto quote = locate_string_value(raw_line, key);
  if (quote.has_value()) {
    // Column 1 when the tokenizer only tracked the line: the mapping then
    // points at the start of the offending netlist line within the request.
    const int column = error.column() > 0 ? error.column() : 1;
    out.request_column =
        column_in_string_literal(raw_line, *quote, error.line(), column);
  }
  return out;
}

}  // namespace softfet::service
