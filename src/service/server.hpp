// The softfet simulation service: a crash-tolerant job server behind the
// NDJSON protocol (see protocol.hpp).
//
// Composition of the robustness layers the library already has, behind one
// long-lived surface:
//
//   admission   bounded JobQueue, explicit `overloaded` shedding with
//               retry_after_ms — heavy traffic degrades into rejections,
//               never OOM or unbounded latency;
//   execution   a util::parallel_for-backed worker pool; every job runs
//               under its own RunBudget (wall clock) and CancelToken, so a
//               poisoned job times out or cancels without touching its
//               neighbors, and every throw — ParseError to std::bad_alloc —
//               maps to a structured `error` response (a job can never take
//               the process down);
//   retries     ConvergenceErrors re-run under core::tightened_options with
//               exponential backoff + deterministic jitter (retry.hpp);
//               parse/validation errors and budget exhaustion are terminal;
//   caching     a content-addressed NetlistCache shares parsed ASTs and AMD
//               ordering memos across requests of the same netlist,
//               LRU-bounded, bitwise-neutral;
//   resilience  admitted jobs journal their request line into state_dir and
//               Monte-Carlo jobs checkpoint per-sample via util::Checkpoint;
//               a killed daemon re-admits journaled jobs on restart through
//               resume_journaled() and finishes them bitwise-identically
//               (the PR 4 resume contract);
//   drainage    shutdown(cancel_inflight) stops admissions, optionally
//               cancels what is running (checkpoints flush), and waits
//               until every admitted job has produced its terminal
//               response — the SIGTERM/SIGINT path of the daemon binary.
//
// The Server is transport-agnostic: handle_line() takes one request line
// and a Sink for the response lines; examples/softfet_server.cpp wires it
// to stdin/stdout and a Unix socket.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "service/cache.hpp"
#include "service/job_queue.hpp"
#include "service/protocol.hpp"
#include "service/retry.hpp"
#include "sim/options.hpp"
#include "util/budget.hpp"

namespace softfet::service {

class Supervisor;

/// Where job handlers execute.
///
/// kThread (default): handlers run on the server's worker threads. Cheap
/// and sufficient when handlers are trusted to fail only via exceptions.
///
/// kProcess: each worker thread drives a forked, sandboxed worker process
/// (service/supervisor.hpp) and ships jobs to it over pipes. A SIGSEGV, an
/// OOM, or a non-terminating loop in a handler kills that worker — never
/// the daemon — and surfaces as a structured `worker_crashed` error with
/// the worker's last-gasp forensics attached.
enum class IsolationMode { kThread, kProcess };

struct ServerConfig {
  std::size_t workers = 2;            ///< worker pool width
  std::size_t queue_capacity = 64;    ///< admission bound (then: overloaded)
  unsigned retry_after_ms = 250;      ///< advisory backoff in rejections
  std::size_t max_line_bytes = 4u << 20;     ///< request line hard cap
  std::size_t max_netlist_bytes = 1u << 20;  ///< embedded netlist cap
  int max_samples = 100000;                  ///< Monte-Carlo sample cap
  double default_timeout_seconds = 30.0;     ///< per-job budget default
  double max_timeout_seconds = 300.0;        ///< per-job budget ceiling
  std::size_t chunk_rows = 256;       ///< waveform rows per `chunk` event
  RetryPolicy retry;                  ///< transient-failure retry policy
  std::string state_dir;              ///< journal/checkpoint dir ("" = off)
  std::size_t cache_entries = 32;     ///< NetlistCache entry bound
  std::size_t cache_bytes = 8u << 20; ///< NetlistCache byte bound

  IsolationMode isolation = IsolationMode::kThread;
  /// Process-isolation knobs (ignored in thread mode).
  double heartbeat_interval_seconds = 0.1;  ///< worker heartbeat cadence
  double heartbeat_timeout_seconds = 2.0;   ///< silence before SIGKILL
  double hang_grace_seconds = 2.0;    ///< slack past the job timeout
  std::size_t worker_memory_bytes = 0;  ///< RLIMIT_AS per worker (0 = off)
  bool rlimit_cpu = true;             ///< arm RLIMIT_CPU per job
  /// Re-run a job whose worker crashed (fresh worker, tightened options,
  /// same retry budget as transient failures). Off by default: a crash is
  /// usually deterministic and retrying doubles the blast radius.
  bool retry_crashed = false;
};

/// Point-in-time counters (all lifetime totals except the two gauges).
struct ServerStats {
  std::size_t admitted = 0;
  std::size_t rejected_overloaded = 0;
  std::size_t rejected_invalid = 0;
  std::size_t completed = 0;   ///< terminal `result`
  std::size_t failed = 0;      ///< terminal `error`
  std::size_t cancelled = 0;   ///< terminal `cancelled`
  std::size_t retries = 0;     ///< `retrying` events emitted
  std::size_t resumed = 0;     ///< jobs re-admitted by resume_journaled
  std::size_t queue_depth = 0;   ///< gauge
  std::size_t active_jobs = 0;   ///< gauge (popped, not yet terminal)
  std::size_t worker_crashes = 0;     ///< process mode: attempts lost to worker death
  std::size_t workers_spawned = 0;    ///< process mode: fork() successes
  std::size_t workers_respawned = 0;  ///< process mode: replacement forks
  std::size_t heartbeat_kills = 0;    ///< workers killed for silence
  std::size_t deadline_kills = 0;     ///< workers killed past job deadline
  NetlistCacheStats cache;
};

/// Response-line consumer. Must be callable from worker threads; the
/// server serializes calls (one line at a time, never interleaved).
using Sink = std::function<void(const std::string& line)>;

/// Execution context a job handler runs under. `options` is pre-armed with
/// the per-attempt budget, the job's cancel token and (for netlist jobs)
/// the cache's ordering memo; handlers stream via emit() and MUST end a
/// successful run with exactly one finish().
struct JobContext {
  sim::SimOptions options;
  const ServerConfig* config = nullptr;
  NetlistCache* cache = nullptr;
  util::CancelToken* cancel = nullptr;
  int attempt = 1;               ///< 1-based; >1 runs tightened options
  std::string checkpoint_path;   ///< per-job ("" when state_dir is off)
  std::function<void(const char* event, JsonValue fields)> emit;
  std::function<void(JsonValue fields)> finish;
};

using JobHandler = std::function<void(const Request&, JobContext&)>;

/// Outcome of one handler attempt, independent of where it ran. The shared
/// attempt layer below is the single implementation both execution modes
/// use: thread mode calls it on a worker thread; process mode calls it
/// inside the forked worker and ships the outcome back over the pipe — so
/// retry classification, error shaping, and the emit/finish contract stay
/// byte-for-byte identical across isolation modes.
struct AttemptOutcome {
  enum class Kind { kFinished, kError, kCancelled };
  Kind kind = Kind::kError;
  FailureClass failure_class = FailureClass::kTerminal;
  std::string message;
  JsonValue result_fields;  ///< kFinished: the handler's finish() payload
  JsonValue error_fields;   ///< kError: full `error` event fields
};

/// What one attempt needs from its surroundings (a strict subset of the
/// Server so a forked worker can build it from the job frame alone).
struct AttemptContext {
  const ServerConfig* config = nullptr;
  NetlistCache* cache = nullptr;
  util::CancelToken* cancel = nullptr;
  int attempt = 1;
  double timeout_seconds = 0.0;
  std::string checkpoint_path;
  /// Non-terminal event pass-through (chunk/progress). Events arriving
  /// after the handler's finish() are dropped, matching the server's
  /// terminal latch.
  std::function<void(const char* event, JsonValue fields)> emit;
};

/// Run one handler attempt to a classified outcome. Never throws: every
/// exception is folded into kError/kCancelled with the same structured
/// fields Server::emit_terminal_error used to produce.
[[nodiscard]] AttemptOutcome run_handler_attempt(const JobHandler& handler,
                                                 const Request& request,
                                                 const AttemptContext& ctx);

/// The structured fields of an `error` event for a caught exception:
/// code, message, error-specific extras (netlist positions, budget stop),
/// and solver diagnostics when the error carries them.
[[nodiscard]] JsonValue error_event_fields(const std::exception& error,
                                           const std::string& raw_line);

class Server {
 public:
  explicit Server(ServerConfig config);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Register (or replace) a job-type handler. The built-ins ("netlist",
  /// "monte_carlo") are registered by the constructor; tests register
  /// fault-injection types. Not thread-safe against in-flight handling —
  /// register before serving.
  void register_handler(std::string type, JobHandler handler);

  /// Process one NDJSON request line. Control responses and admission
  /// verdicts reach `sink` before returning; job events follow
  /// asynchronously from worker threads through the same sink.
  void handle_line(const std::string& line, const Sink& sink);

  /// Re-admit journaled jobs left by a killed daemon (call after handlers
  /// are registered, before serving traffic). Monte-Carlo jobs resume from
  /// their checkpoint bitwise-identically. Returns the number re-admitted.
  std::size_t resume_journaled(const Sink& sink);

  /// Stop admissions and wait for every admitted job's terminal response.
  /// cancel_inflight=false drains (jobs run to completion);
  /// cancel_inflight=true cancels running and queued jobs cooperatively
  /// (their checkpoints flush; journals survive for a restart's resume).
  /// Idempotent.
  void shutdown(bool cancel_inflight);

  /// Block until the queue is empty and no job is running.
  void wait_idle();

  /// True once a `shutdown` request was received (transports use this to
  /// exit their read loops, then call shutdown()).
  [[nodiscard]] bool stop_requested() const noexcept {
    return stop_requested_.load(std::memory_order_acquire);
  }
  /// The mode the `shutdown` request asked for (true = "now").
  [[nodiscard]] bool stop_cancels_inflight() const noexcept {
    return stop_now_.load(std::memory_order_acquire);
  }

  [[nodiscard]] ServerStats stats() const;
  [[nodiscard]] const ServerConfig& config() const noexcept {
    return config_;
  }
  /// The process-isolation supervisor (nullptr in thread mode). Exposed
  /// for lifecycle tests: worker pids, crash/kill counters.
  [[nodiscard]] Supervisor* supervisor() noexcept { return supervisor_.get(); }

 private:
  struct JobState {
    Request request;
    Sink sink;
    std::uint64_t seq = 0;             ///< guarded by emit_mutex_
    bool terminal = false;             ///< guarded by emit_mutex_
    util::CancelToken cancel;
    std::atomic<bool> client_cancel{false};  ///< cancel request vs shutdown
    std::string journal_path;          ///< "" when journaling is off
    std::chrono::steady_clock::time_point admitted_at;
  };
  using JobPtr = std::shared_ptr<JobState>;

  void worker_loop(std::size_t slot);
  void run_job(const JobPtr& job, std::size_t slot);
  void emit_event(const JobPtr& job, const char* event, JsonValue fields,
                  bool terminal);
  /// Non-terminal event whose fields are already serialized (a worker
  /// frame): splices the JSON object's members into the response line,
  /// byte-identical to emit_event but without re-parsing the fields.
  void emit_event_raw(const JobPtr& job, const char* event,
                      const std::string& fields_json);
  void record_latency(const JobPtr& job);
  [[nodiscard]] unsigned dynamic_retry_after_ms() const;
  void emit_terminal_error(const JobPtr& job, const std::exception& error);
  void finish_job(const JobPtr& job, bool keep_journal);
  [[nodiscard]] std::string journal_path_for(const Request& request) const;
  [[nodiscard]] std::string checkpoint_path_for(const Request& request) const;
  void reply(const Sink& sink, const JsonValue& value);
  [[nodiscard]] JsonValue stats_json() const;

  ServerConfig config_;
  NetlistCache cache_;
  std::map<std::string, JobHandler> handlers_;
  JobQueue<JobPtr> queue_;

  /// Serializes the admission section (active-map insert, journal write,
  /// `accepted` emission, queue push) so the capacity pre-check cannot race
  /// another admission and the `accepted` line always precedes `started`.
  std::mutex admission_mutex_;

  mutable std::mutex active_mutex_;
  std::map<std::string, JobPtr> active_;  ///< admitted, not yet terminal

  std::mutex emit_mutex_;  ///< serializes sink writes + seq/terminal state

  mutable std::mutex idle_mutex_;
  std::condition_variable idle_cv_;
  std::size_t running_ = 0;  ///< jobs popped and executing

  std::atomic<bool> stop_requested_{false};
  std::atomic<bool> stop_now_{false};
  std::atomic<bool> shut_down_{false};

  std::atomic<std::size_t> admitted_{0};
  std::atomic<std::size_t> rejected_overloaded_{0};
  std::atomic<std::size_t> rejected_invalid_{0};
  std::atomic<std::size_t> completed_{0};
  std::atomic<std::size_t> failed_{0};
  std::atomic<std::size_t> cancelled_{0};
  std::atomic<std::size_t> retries_{0};
  std::atomic<std::size_t> resumed_{0};
  std::atomic<std::size_t> worker_crashes_{0};

  /// Last-N terminal-job latencies (ms), feeding the retry_after_ms hint
  /// in `overloaded` rejections: hint = queue_depth × mean latency /
  /// workers, floored at config.retry_after_ms. Guarded by latency_mutex_.
  mutable std::mutex latency_mutex_;
  static constexpr std::size_t kLatencyWindow = 32;
  double latency_ms_[kLatencyWindow] = {};
  std::size_t latency_count_ = 0;  ///< total recorded (ring index derives)

  /// Process-isolation worker pool (null in thread mode). Worker thread i
  /// exclusively drives supervisor slot i, so job dispatch needs no
  /// cross-thread slot locking.
  std::unique_ptr<Supervisor> supervisor_;

  std::thread pool_;  ///< runs util::parallel_for over the worker loops
};

/// Built-in handlers (exposed for benches and tests that want to invoke
/// them without a Server).
[[nodiscard]] JobHandler netlist_job_handler();
[[nodiscard]] JobHandler monte_carlo_job_handler();

}  // namespace softfet::service
