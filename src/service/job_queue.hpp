// Bounded admission queue with explicit load shedding.
//
// The daemon's backpressure story in one class: a fixed-capacity FIFO whose
// push NEVER blocks and NEVER grows the queue past its bound. When the
// queue is full the push fails immediately with kOverloaded and the caller
// emits a structured `rejected` response carrying retry_after_ms — the
// client backs off, the daemon's memory stays bounded, and a traffic spike
// degrades into rejections instead of an OOM kill or an unbounded latency
// tail. Workers block in pop() until a job or shutdown arrives.
//
// close() stops admissions while letting workers drain what was already
// admitted (a drained queue returns nullopt from pop()), which is exactly
// the SIGTERM semantics: stop accepting, finish or cancel what is in
// flight, flush, exit.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace softfet::service {

enum class PushResult {
  kAdmitted,
  kOverloaded,  ///< queue at capacity — shed load, tell the client to retry
  kClosed,      ///< shutting down — no further admissions
};

template <typename T>
class JobQueue {
 public:
  explicit JobQueue(std::size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  JobQueue(const JobQueue&) = delete;
  JobQueue& operator=(const JobQueue&) = delete;

  /// Non-blocking admission. kOverloaded/kClosed leave `item` untouched in
  /// the caller's hands (it still owns the rejection response).
  [[nodiscard]] PushResult try_push(T item) {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (closed_) return PushResult::kClosed;
      if (items_.size() >= capacity_) return PushResult::kOverloaded;
      items_.push_back(std::move(item));
    }
    ready_.notify_one();
    return PushResult::kAdmitted;
  }

  /// Block until an item is available or the queue is closed and drained
  /// (then nullopt — the worker's signal to exit).
  [[nodiscard]] std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    ready_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Stop admissions; queued items still drain through pop().
  void close() {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    ready_.notify_all();
  }

  [[nodiscard]] bool closed() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  [[nodiscard]] std::size_t depth() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

 private:
  std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable ready_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace softfet::service
