#include "service/retry.hpp"

#include <algorithm>
#include <cmath>

#include "util/budget.hpp"
#include "util/error.hpp"

namespace softfet::service {

const char* to_string(FailureClass cls) {
  switch (cls) {
    case FailureClass::kTransient: return "transient";
    case FailureClass::kTerminal: return "terminal";
    case FailureClass::kCancelled: return "cancelled";
  }
  return "unknown";
}

FailureClass classify_failure(const std::exception& error) {
  if (const auto* budget = dynamic_cast<const BudgetExceededError*>(&error)) {
    return budget->stop() == util::BudgetStop::kCancel
               ? FailureClass::kCancelled
               : FailureClass::kTerminal;
  }
  if (dynamic_cast<const ConvergenceError*>(&error) != nullptr) {
    return FailureClass::kTransient;
  }
  // ParseError, InvalidCircuitError, plain softfet::Error, std:: errors:
  // a retry would fail the same way.
  return FailureClass::kTerminal;
}

namespace {

[[nodiscard]] std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

}  // namespace

std::uint64_t fnv1a64(std::string_view text) {
  std::uint64_t hash = 0xCBF29CE484222325ULL;
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001B3ULL;
  }
  return hash;
}

unsigned backoff_ms(const RetryPolicy& policy, int attempt,
                    std::uint64_t seed) {
  if (attempt <= 1) return 0;
  double backoff = static_cast<double>(policy.base_backoff_ms) *
                   std::pow(policy.backoff_multiplier, attempt - 2);
  backoff = std::min(backoff, static_cast<double>(policy.max_backoff_ms));
  const double jitter = std::clamp(policy.jitter, 0.0, 1.0);
  if (jitter > 0.0) {
    // Deterministic uniform draw in [0, 1): the same (job, attempt) always
    // sleeps the same time, and distinct jobs decorrelate.
    const std::uint64_t bits =
        splitmix64(seed ^ (std::uint64_t{0x9E3779B97F4A7C15} *
                           static_cast<std::uint64_t>(attempt)));
    const double u =
        static_cast<double>(bits >> 11) / 9007199254740992.0;  // 2^53
    backoff *= 1.0 - jitter * u;
  }
  return static_cast<unsigned>(std::lround(backoff));
}

}  // namespace softfet::service
