#include "service/supervisor.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <deque>
#include <filesystem>
#include <fstream>
#include <thread>
#include <utility>

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include "util/crash_handler.hpp"

namespace softfet::service {

namespace {

namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;

[[nodiscard]] Clock::duration seconds_of(double s) {
  return std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(std::max(0.0, s)));
}

[[nodiscard]] JsonValue frame_object(const char* kind) {
  JsonValue f = JsonValue::object();
  f.set("kind", JsonValue::string(kind));
  return f;
}

[[nodiscard]] FailureClass failure_class_from(const std::string& name) {
  if (name == "transient") return FailureClass::kTransient;
  if (name == "cancelled") return FailureClass::kCancelled;
  return FailureClass::kTerminal;
}

// ---------------------------------------------------------------------------
// Worker child. Everything below the fork: fresh objects only (its own
// cache, tokens, threads); the parent's Server state — mutexes, sinks,
// sockets — is never touched, and the only exit is _exit() via
// spawn_child(). The handler map and ServerConfig are read through const
// pointers into the (copy-on-write) parent image; both are frozen before
// the first job is served, so the fork sees a complete, immutable view.
// ---------------------------------------------------------------------------

struct ChildState {
  std::mutex mutex;
  std::condition_variable cv;
  std::deque<JsonValue> jobs;     ///< job frames queued by the reader
  bool eof = false;               ///< job pipe closed → shut down
  bool job_active = false;
  std::string active_job;
  util::CancelToken* active_cancel = nullptr;

  /// Guards result-pipe writes: event frames can exceed PIPE_BUF, and the
  /// heartbeat thread must not interleave a frame into the middle of one.
  std::mutex write_mutex;
  int result_fd = -1;
};

bool child_send(ChildState& st, const JsonValue& frame) {
  const std::string payload = frame.dump();
  const std::lock_guard<std::mutex> lock(st.write_mutex);
  return util::write_frame(st.result_fd, payload);
}

/// The sole reader of the job pipe. Job frames queue for the main loop;
/// cancel frames trip the active job's token immediately (that is the
/// point of the side thread — the main thread is busy computing). Poll
/// timeouts double as the heartbeat tick: while a job is active, each
/// quiet interval emits a heartbeat frame proving the process is alive
/// and scheduled. Idle workers stay silent so an unread result pipe can
/// never fill up between jobs.
void child_reader_loop(ChildState& st, int job_fd, int heartbeat_ms) {
  util::FrameReader reader(job_fd);
  std::string payload;
  for (;;) {
    const util::FrameRead got = reader.poll_frame(heartbeat_ms, payload);
    if (got == util::FrameRead::kTimeout) {
      bool active = false;
      {
        const std::lock_guard<std::mutex> lock(st.mutex);
        active = st.job_active;
      }
      if (active) (void)child_send(st, frame_object("heartbeat"));
      continue;
    }
    if (got != util::FrameRead::kFrame) break;  // EOF/error → shutdown
    JsonValue frame;
    try {
      frame = json_parse(payload);
    } catch (...) {
      continue;  // corrupt frame from a dying parent: ignore
    }
    const std::string kind = frame.string_or("kind", "");
    if (kind == "cancel") {
      const std::lock_guard<std::mutex> lock(st.mutex);
      if (st.job_active && st.active_cancel != nullptr &&
          frame.string_or("job", "") == st.active_job) {
        st.active_cancel->request();
      }
      continue;
    }
    if (kind == "job") {
      const std::lock_guard<std::mutex> lock(st.mutex);
      st.jobs.push_back(std::move(frame));
      st.cv.notify_all();
    }
  }
  const std::lock_guard<std::mutex> lock(st.mutex);
  st.eof = true;
  st.cv.notify_all();
}

void child_send_terminal(ChildState& st, const char* outcome,
                         FailureClass cls, const std::string& message,
                         JsonValue fields) {
  JsonValue t = frame_object("terminal");
  t.set("outcome", JsonValue::string(outcome));
  t.set("class", JsonValue::string(to_string(cls)));
  if (!message.empty()) t.set("message", JsonValue::string(message));
  t.set("fields", std::move(fields));
  (void)child_send(st, t);
}

void child_run_one_job(const SupervisorConfig& cfg, ChildState& st,
                       NetlistCache& cache, const JsonValue& frame) {
  const std::string id = frame.string_or("job", "");
  const std::string line = frame.string_or("line", "");
  const int attempt =
      std::max(1, static_cast<int>(frame.number_or("attempt", 1)));
  const double timeout = frame.number_or("timeout_seconds", 30.0);

  util::CancelToken cancel;
  {
    const std::lock_guard<std::mutex> lock(st.mutex);
    st.active_job = id;
    st.active_cancel = &cancel;
    st.job_active = true;
  }

  util::crash_set_stage("parse");
  Request request;
  bool parsed = false;
  try {
    request = parse_request(line);
    parsed = true;
  } catch (const std::exception& e) {
    // The parent admitted this line, so it parsed once already; failing
    // here means the job frame was damaged in transit. Terminal, never
    // retried.
    child_send_terminal(st, "error", FailureClass::kTerminal, e.what(),
                        error_event_fields(e, line));
  }

  if (parsed) {
    const JsonValue* netlist = request.payload.get("netlist");
    const std::uint64_t work_hash =
        fnv1a64(netlist != nullptr && netlist->is_string()
                    ? netlist->as_string()
                    : request.raw_line);
    util::crash_set_job(id.c_str(), work_hash);
    // Kernel CPU backstop: heartbeats prove liveness and the parent's job
    // deadline catches hangs, but both need the supervisor to be healthy;
    // RLIMIT_CPU fires even if it is not. Soft-only, re-armed per job.
    if (cfg.rlimit_cpu) {
      util::limit_cpu_seconds_from_now(timeout + cfg.hang_grace_seconds +
                                       1.0);
    }

    const auto handler = cfg.handlers->find(request.type);
    if (handler == cfg.handlers->end()) {
      const Error error("no handler for '" + request.type + "'");
      child_send_terminal(st, "error", FailureClass::kTerminal, error.what(),
                          error_event_fields(error, line));
    } else {
      AttemptContext actx;
      actx.config = cfg.server_config;
      actx.cache = &cache;
      actx.cancel = &cancel;
      actx.attempt = attempt;
      actx.timeout_seconds = timeout;
      actx.checkpoint_path = frame.string_or("checkpoint_path", "");
      std::uint64_t emitted = 0;
      actx.emit = [&](const char* event, JsonValue fields) {
        util::crash_set_last_seq(++emitted);
        // Raw event frame: 'E' + name + '\n' + serialized fields. The
        // fields are dumped exactly once, here; the parent splices the
        // bytes straight into its response line instead of paying a
        // parse + re-dump on every (potentially multi-KB chunk) event.
        const std::string fields_json = fields.dump();
        std::string payload;
        payload.reserve(2 + std::char_traits<char>::length(event) +
                        fields_json.size());
        payload.push_back('E');
        payload += event;
        payload.push_back('\n');
        payload += fields_json;
        const std::lock_guard<std::mutex> lock(st.write_mutex);
        (void)util::write_frame(st.result_fd, payload);
      };

      util::crash_set_stage(("handler:" + request.type).c_str());
      AttemptOutcome out = run_handler_attempt(handler->second, request, actx);
      switch (out.kind) {
        case AttemptOutcome::Kind::kFinished:
          child_send_terminal(st, "result", FailureClass::kTerminal, "",
                              std::move(out.result_fields));
          break;
        case AttemptOutcome::Kind::kCancelled:
          child_send_terminal(st, "cancelled", FailureClass::kCancelled,
                              out.message, JsonValue::object());
          break;
        case AttemptOutcome::Kind::kError:
          child_send_terminal(st, "error", out.failure_class, out.message,
                              std::move(out.error_fields));
          break;
      }
    }
  }

  util::crash_clear_job();
  const std::lock_guard<std::mutex> lock(st.mutex);
  st.job_active = false;
  st.active_cancel = nullptr;
  st.active_job.clear();
}

int worker_child_main(const SupervisorConfig& cfg, int job_fd, int result_fd,
                      int crash_fd) {
  util::install_crash_handler(crash_fd, cfg.build.c_str());
  util::crash_set_stage("startup");
  if (cfg.worker_memory_bytes > 0) {
    util::limit_address_space(cfg.worker_memory_bytes);
  }
  std::signal(SIGPIPE, SIG_IGN);

  ChildState st;
  st.result_fd = result_fd;
  // Fresh per-worker cache: netlist ASTs and ordering memos amortize
  // across this worker's jobs but are rebuilt after a respawn (a crashed
  // worker's cache is suspect by definition).
  NetlistCache cache(cfg.server_config->cache_entries,
                     cfg.server_config->cache_bytes);

  JsonValue ready = frame_object("ready");
  ready.set("pid", JsonValue::number(static_cast<double>(::getpid())));
  if (!child_send(st, ready)) return 1;

  const int heartbeat_ms = std::max(
      10, static_cast<int>(cfg.heartbeat_interval_seconds * 1000.0));
  std::thread reader(
      [&st, job_fd, heartbeat_ms] { child_reader_loop(st, job_fd, heartbeat_ms); });

  util::crash_set_stage("idle");
  for (;;) {
    JsonValue frame;
    {
      std::unique_lock<std::mutex> lock(st.mutex);
      st.cv.wait(lock, [&st] { return st.eof || !st.jobs.empty(); });
      if (st.jobs.empty()) break;  // EOF and drained → clean shutdown
      frame = std::move(st.jobs.front());
      st.jobs.pop_front();
    }
    child_run_one_job(cfg, st, cache, frame);
  }
  reader.join();
  return 0;
}

}  // namespace

// ---------------------------------------------------------------------------
// Parent side.
// ---------------------------------------------------------------------------

Supervisor::Supervisor(SupervisorConfig config) : config_(std::move(config)) {
  if (config_.slots == 0) config_.slots = 1;
  // A worker dying mid-write leaves the parent writing to a widowed pipe;
  // that must surface as write_frame() == false, not SIGPIPE.
  std::signal(SIGPIPE, SIG_IGN);
  scratch_dir_ = config_.crash_dir;
  std::error_code ec;
  if (scratch_dir_.empty()) {
    scratch_dir_ = (fs::temp_directory_path(ec) /
                    ("softfet-crash-" + std::to_string(::getpid())))
                       .string();
  }
  fs::create_directories(scratch_dir_, ec);
  slots_.reserve(config_.slots);
  for (std::size_t i = 0; i < config_.slots; ++i) {
    slots_.push_back(std::make_unique<Slot>());
    slots_.back()->crash_path =
        scratch_dir_ + "/crash-worker-" + std::to_string(i) + ".json";
  }
}

Supervisor::~Supervisor() { shutdown(); }

bool Supervisor::spawn_worker(std::size_t slot_index) {
  const std::lock_guard<std::mutex> lock(spawn_mutex_);
  Slot& slot = *slots_[slot_index];

  int job_pipe[2] = {-1, -1};
  int result_pipe[2] = {-1, -1};
  if (::pipe(job_pipe) != 0) return false;
  if (::pipe(result_pipe) != 0) {
    ::close(job_pipe[0]);
    ::close(job_pipe[1]);
    return false;
  }
  const int crash_fd =
      ::open(slot.crash_path.c_str(), O_CREAT | O_TRUNC | O_RDWR, 0600);
  if (crash_fd < 0) {
    ::close(job_pipe[0]);
    ::close(job_pipe[1]);
    ::close(result_pipe[0]);
    ::close(result_pipe[1]);
    return false;
  }

  // The child must not hold other workers' pipe ends: a dead worker's EOF
  // detection depends on *all* write-end copies closing, and stray read
  // ends could steal frames. Snapshot under spawn_mutex_ so the list is
  // consistent with the fds actually open at fork time.
  std::vector<int> close_in_child = {job_pipe[1], result_pipe[0]};
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    if (i == slot_index) continue;
    const Slot& other = *slots_[i];
    if (other.job_fd >= 0) close_in_child.push_back(other.job_fd);
    if (other.reader.fd() >= 0) close_in_child.push_back(other.reader.fd());
  }

  const SupervisorConfig* cfg = &config_;
  const int job_rd = job_pipe[0];
  const int result_wr = result_pipe[1];
  const pid_t pid = util::spawn_child([&close_in_child, cfg, job_rd,
                                       result_wr, crash_fd] {
    for (const int fd : close_in_child) ::close(fd);
    return worker_child_main(*cfg, job_rd, result_wr, crash_fd);
  });
  ::close(job_pipe[0]);
  ::close(result_pipe[1]);
  ::close(crash_fd);
  if (pid < 0) {
    ::close(job_pipe[1]);
    ::close(result_pipe[0]);
    return false;
  }

  slot.job_fd = job_pipe[1];
  slot.reader.reset(result_pipe[0]);
  slot.pid.store(pid, std::memory_order_release);
  ++spawned_;
  if (slot.ever_spawned) ++respawned_;
  slot.ever_spawned = true;
  return true;
}

bool Supervisor::ensure_worker(std::size_t slot_index,
                               const util::CancelToken& cancel) {
  Slot& slot = *slots_[slot_index];
  if (slot.pid.load(std::memory_order_acquire) > 0) return true;

  // Respawn backoff: sleep in small slices so a cancel or shutdown during
  // the window aborts the wait instead of stalling the worker thread.
  while (Clock::now() < slot.earliest_respawn) {
    if (cancel.requested() || shutdown_.load(std::memory_order_acquire)) {
      return false;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }

  for (int tries = 0; tries < 3; ++tries) {
    if (cancel.requested() || shutdown_.load(std::memory_order_acquire)) {
      return false;
    }
    if (spawn_worker(slot_index)) {
      // Spawn handshake: the first frame must be `ready`. A worker that
      // dies during startup (broken image, rlimit too tight for statics)
      // is caught here rather than poisoning the first job.
      const auto deadline = Clock::now() + std::chrono::seconds(10);
      std::string payload;
      for (;;) {
        const util::FrameRead got = slot.reader.poll_frame(100, payload);
        if (got == util::FrameRead::kFrame) {
          JsonValue frame;
          try {
            frame = json_parse(payload);
          } catch (...) {
            continue;
          }
          if (frame.string_or("kind", "") == "ready") return true;
          continue;  // tolerate stray frames
        }
        if (got == util::FrameRead::kTimeout && Clock::now() < deadline) {
          continue;
        }
        break;  // EOF, error, or handshake deadline
      }
      WorkerJob none;
      (void)retire_worker(slot_index, none, "spawn_failed",
                          /*kill_first=*/true);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return false;
}

IsolatedVerdict Supervisor::retire_worker(std::size_t slot_index,
                                          const WorkerJob& job,
                                          const std::string& reason,
                                          bool kill_first) {
  Slot& slot = *slots_[slot_index];
  const pid_t pid = slot.pid.load(std::memory_order_acquire);

  IsolatedVerdict verdict;
  verdict.kind = IsolatedVerdict::Kind::kCrashed;
  verdict.failure_class = FailureClass::kTerminal;
  verdict.crash.reason = reason;

  if (pid > 0) {
    if (kill_first) util::kill_child(pid, SIGKILL);
    if (const auto status = util::wait_child(pid, /*block=*/true)) {
      verdict.crash.status = *status;
    }
  }
  if (reason == "signal" || reason == "exit") {
    // Caller saw EOF but not the cause; refine from the wait status.
    verdict.crash.reason = verdict.crash.status.signaled ? "signal" : "exit";
  }

  // Last-gasp record: written by the worker's crash handler into the
  // pre-opened scratch file. Absent for SIGKILL (heartbeat/deadline kills
  // of a stopped or hung process) — the wait status is all there is then.
  std::string raw;
  {
    std::ifstream file(slot.crash_path);
    if (file) {
      std::getline(file, raw);
    }
  }
  if (!raw.empty()) {
    verdict.crash.raw_report = raw;
    try {
      verdict.crash.last_gasp = json_parse(raw);
    } catch (...) {
      verdict.crash.last_gasp = JsonValue::null();
    }
    if (!job.crash_archive_path.empty()) {
      std::ofstream archive(job.crash_archive_path, std::ios::trunc);
      if (archive) {
        archive << raw << '\n';
        verdict.crash.report_path = job.crash_archive_path;
      }
    }
  }

  verdict.message = "worker " + verdict.crash.status.describe() +
                    " (reason: " + verdict.crash.reason + ")";

  {
    const std::lock_guard<std::mutex> lock(spawn_mutex_);
    if (slot.job_fd >= 0) ::close(slot.job_fd);
    if (slot.reader.fd() >= 0) ::close(slot.reader.fd());
    slot.job_fd = -1;
    slot.reader.reset(-1);
    slot.pid.store(-1, std::memory_order_release);
  }

  ++crashes_;
  ++slot.consecutive_crashes;
  const double backoff =
      std::min(config_.respawn_backoff_max_seconds,
               config_.respawn_backoff_base_seconds *
                   static_cast<double>(1u << std::min(
                       slot.consecutive_crashes - 1, 16)));
  slot.earliest_respawn = Clock::now() + seconds_of(backoff);
  return verdict;
}

IsolatedVerdict Supervisor::run_job(
    std::size_t slot_index, const WorkerJob& job,
    const std::function<void(const char* event,
                             const std::string& fields_json)>& emit,
    const util::CancelToken& cancel) {
  Slot& slot = *slots_[slot_index];

  if (!ensure_worker(slot_index, cancel)) {
    if (cancel.requested()) {
      IsolatedVerdict verdict;
      verdict.kind = IsolatedVerdict::Kind::kCancelled;
      verdict.failure_class = FailureClass::kCancelled;
      verdict.message = "cancelled while waiting for a worker";
      return verdict;
    }
    IsolatedVerdict verdict;
    verdict.kind = IsolatedVerdict::Kind::kCrashed;
    verdict.crash.reason = "spawn_failed";
    verdict.message = "no worker available (spawn failed)";
    return verdict;
  }

  JsonValue frame = frame_object("job");
  frame.set("job", JsonValue::string(job.id));
  frame.set("line", JsonValue::string(job.request_line));
  frame.set("attempt", JsonValue::number(job.attempt));
  frame.set("timeout_seconds", JsonValue::number(job.timeout_seconds));
  if (!job.checkpoint_path.empty()) {
    frame.set("checkpoint_path", JsonValue::string(job.checkpoint_path));
  }
  if (!util::write_frame(slot.job_fd, frame.dump())) {
    return retire_worker(slot_index, job, "exit", /*kill_first=*/true);
  }

  const auto start = Clock::now();
  const auto job_deadline =
      start +
      seconds_of(job.timeout_seconds + config_.hang_grace_seconds);
  auto heartbeat_deadline =
      start + seconds_of(config_.heartbeat_timeout_seconds);
  bool cancel_sent = false;
  std::string payload;

  for (;;) {
    if (!cancel_sent && cancel.requested()) {
      JsonValue c = frame_object("cancel");
      c.set("job", JsonValue::string(job.id));
      (void)util::write_frame(slot.job_fd, c.dump());
      cancel_sent = true;
    }

    const util::FrameRead got = slot.reader.poll_frame(50, payload);
    const auto now = Clock::now();

    if (got == util::FrameRead::kFrame) {
      heartbeat_deadline =
          now + seconds_of(config_.heartbeat_timeout_seconds);
      // Raw event fast path ('E' + name + '\n' + fields JSON): hand the
      // already-serialized fields through verbatim — chunk frames are the
      // hot path and never need parsing here.
      if (!payload.empty() && payload[0] == 'E') {
        const std::size_t nl = payload.find('\n');
        if (nl != std::string::npos) {
          const std::string name = payload.substr(1, nl - 1);
          emit(name.c_str(), payload.substr(nl + 1));
        }
        continue;
      }
      JsonValue reply;
      try {
        reply = json_parse(payload);
      } catch (...) {
        continue;
      }
      const std::string kind = reply.string_or("kind", "");
      if (kind == "terminal") {
        slot.consecutive_crashes = 0;
        IsolatedVerdict verdict;
        const std::string outcome = reply.string_or("outcome", "error");
        verdict.failure_class =
            failure_class_from(reply.string_or("class", "terminal"));
        verdict.message = reply.string_or("message", "");
        if (const JsonValue* fields = reply.get("fields")) {
          verdict.fields = *fields;
        }
        if (outcome == "result") {
          verdict.kind = IsolatedVerdict::Kind::kResult;
        } else if (outcome == "cancelled") {
          verdict.kind = IsolatedVerdict::Kind::kCancelled;
        } else {
          verdict.kind = IsolatedVerdict::Kind::kError;
        }
        return verdict;
      }
      continue;  // heartbeat / stray ready
    }

    if (got == util::FrameRead::kTimeout) {
      if (now >= heartbeat_deadline) {
        ++heartbeat_kills_;
        return retire_worker(slot_index, job, "heartbeat_timeout",
                             /*kill_first=*/true);
      }
      if (now >= job_deadline) {
        ++deadline_kills_;
        return retire_worker(slot_index, job, "deadline_timeout",
                             /*kill_first=*/true);
      }
      continue;
    }

    // kEof / kError: the worker died mid-job. Reap and let the wait
    // status name the cause.
    return retire_worker(slot_index, job, "signal", /*kill_first=*/false);
  }
}

void Supervisor::shutdown() {
  if (shutdown_.exchange(true)) {
    // Idempotent, but late calls still sweep stragglers below.
  }
  const std::lock_guard<std::mutex> lock(spawn_mutex_);
  // Phase 1: EOF every job pipe — the worker main loop drains and _exits.
  for (const auto& slot : slots_) {
    if (slot->job_fd >= 0) {
      ::close(slot->job_fd);
      slot->job_fd = -1;
    }
  }
  // Phase 2: bounded wait, then SIGKILL. No job is in flight (the server
  // drains before shutting the supervisor down), so clean exits are fast.
  for (const auto& slot : slots_) {
    const pid_t pid = slot->pid.load(std::memory_order_acquire);
    if (pid <= 0) continue;
    bool reaped = false;
    const auto deadline = Clock::now() + std::chrono::seconds(2);
    while (Clock::now() < deadline) {
      if (util::wait_child(pid, /*block=*/false).has_value()) {
        reaped = true;
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    if (!reaped) {
      util::kill_child(pid, SIGKILL);
      (void)util::wait_child(pid, /*block=*/true);
    }
    if (slot->reader.fd() >= 0) {
      ::close(slot->reader.fd());
      slot->reader.reset(-1);
    }
    slot->pid.store(-1, std::memory_order_release);
    std::error_code ec;
    fs::remove(slot->crash_path, ec);
  }
}

SupervisorStats Supervisor::stats() const {
  SupervisorStats s;
  s.spawned = spawned_.load(std::memory_order_relaxed);
  s.respawned = respawned_.load(std::memory_order_relaxed);
  s.crashes = crashes_.load(std::memory_order_relaxed);
  s.heartbeat_kills = heartbeat_kills_.load(std::memory_order_relaxed);
  s.deadline_kills = deadline_kills_.load(std::memory_order_relaxed);
  return s;
}

std::vector<pid_t> Supervisor::worker_pids() const {
  std::vector<pid_t> pids;
  pids.reserve(slots_.size());
  for (const auto& slot : slots_) {
    pids.push_back(slot->pid.load(std::memory_order_acquire));
  }
  return pids;
}

}  // namespace softfet::service
