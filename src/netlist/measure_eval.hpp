// .measure directive evaluation over transient results.
//
// Supported forms (case-insensitive):
//   .measure tran <name> MAX|MIN|PP|AVG|RMS|INTEG <signal> [FROM=t] [TO=t]
//   .measure tran <name> TRIG <sig> VAL=<v> [RISE=1|FALL=1] [TD=t]
//                        TARG <sig> VAL=<v> [RISE=1|FALL=1]
// The TRIG/TARG form returns the time difference (SPICE delay measurement).
#pragma once

#include <string>
#include <vector>

#include "sim/result.hpp"

namespace softfet::netlist {

/// One parsed-but-unevaluated .measure card.
struct MeasureDirective {
  int line = 0;
  std::string analysis;  ///< "tran" (only transient supported)
  std::string name;
  std::vector<std::string> tokens;  ///< everything after the name
};

struct MeasureValue {
  std::string name;
  double value = 0.0;
};

/// Evaluate one measure over a transient result; throws softfet::ParseError
/// for malformed directives and softfet::Error when the measurement fails
/// (e.g. no crossing).
[[nodiscard]] MeasureValue evaluate_measure(const MeasureDirective& directive,
                                            const sim::TranResult& result);

/// Evaluate all; failures are reported as NaN with a warning log rather
/// than aborting the batch.
[[nodiscard]] std::vector<MeasureValue> evaluate_measures(
    const std::vector<MeasureDirective>& directives,
    const sim::TranResult& result);

}  // namespace softfet::netlist
