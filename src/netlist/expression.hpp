// Arithmetic expression evaluator for netlist parameters: {vcc/2 + 0.1}.
//
// Grammar (recursive descent):
//   expr    := term (('+'|'-') term)*
//   term    := factor (('*'|'/') factor)*
//   factor  := unary ('^' factor)?          (right associative)
//   unary   := ('+'|'-')* primary
//   primary := number | ident | ident '(' args ')' | '(' expr ')'
//
// Numbers accept SPICE suffixes ("10p", "1meg"); identifiers resolve
// through a parameter scope; functions: abs, sqrt, exp, ln, log10, pow,
// min, max.
#pragma once

#include <map>
#include <string>
#include <string_view>

namespace softfet::netlist {

/// Lexical parameter scope: lookups fall back to the parent.
class ParamScope {
 public:
  ParamScope() = default;
  explicit ParamScope(const ParamScope* parent) : parent_(parent) {}

  void set(const std::string& name, double value);
  [[nodiscard]] bool has(const std::string& name) const;
  /// Throws softfet::ParseError-free Error if undefined anywhere.
  [[nodiscard]] double get(const std::string& name) const;

 private:
  std::map<std::string, double> values_;  // lower-cased keys
  const ParamScope* parent_ = nullptr;
};

/// Evaluate `text` in `scope`; throws softfet::Error on malformed input or
/// undefined identifiers.
[[nodiscard]] double evaluate_expression(std::string_view text,
                                         const ParamScope& scope);

}  // namespace softfet::netlist
