#include "netlist/parser.hpp"

#include <cctype>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "util/error.hpp"
#include "util/strings.hpp"
#include "util/units.hpp"

namespace softfet::netlist {

namespace {

struct Line {
  int number = 0;
  std::string text;
};

/// Strip inline comments (';' anywhere, '$' when preceded by whitespace).
[[nodiscard]] std::string strip_inline_comment(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (c == ';') break;
    if (c == '$' && (i == 0 || std::isspace(static_cast<unsigned char>(
                                   text[i - 1])) != 0)) {
      break;
    }
    out += c;
  }
  return out;
}

/// Physical lines -> logical lines ('+' continuation), comments removed.
[[nodiscard]] std::vector<Line> logical_lines(std::string_view text) {
  std::vector<Line> lines;
  std::istringstream stream{std::string(text)};
  std::string raw;
  int number = 0;
  while (std::getline(stream, raw)) {
    ++number;
    if (!raw.empty() && raw.back() == '\r') raw.pop_back();
    const std::string stripped = strip_inline_comment(raw);
    const std::string_view trimmed = util::trim(stripped);
    if (trimmed.empty()) continue;
    if (trimmed.front() == '*') continue;  // comment line
    if (trimmed.front() == '+') {
      if (lines.empty()) {
        throw ParseError("continuation line with nothing to continue", number);
      }
      lines.back().text += ' ';
      lines.back().text += trimmed.substr(1);
      continue;
    }
    lines.push_back({number, std::string(trimmed)});
  }
  return lines;
}

/// Tokenize one logical line. '(' ')' ',' count as whitespace outside
/// braces; '{...}' is kept as a single token; 'a = b' glues to 'a=b'.
[[nodiscard]] std::vector<std::string> tokenize(const std::string& text,
                                                int line) {
  std::vector<std::string> tokens;
  std::string current;
  int brace_depth = 0;
  const auto flush = [&] {
    if (!current.empty()) {
      tokens.push_back(current);
      current.clear();
    }
  };
  for (const char c : text) {
    if (brace_depth > 0) {
      current += c;
      if (c == '{') ++brace_depth;
      if (c == '}') --brace_depth;
      continue;
    }
    if (c == '{') {
      current += c;
      ++brace_depth;
      continue;
    }
    if (c == '}') throw ParseError("unbalanced '}'", line);
    if (std::isspace(static_cast<unsigned char>(c)) != 0 || c == '(' ||
        c == ')' || c == ',') {
      flush();
      continue;
    }
    current += c;
  }
  if (brace_depth != 0) throw ParseError("unbalanced '{'", line);
  flush();

  // Glue 'name', '=', 'value' triples and 'name=' 'value' pairs.
  std::vector<std::string> glued;
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const std::string& tok = tokens[i];
    if (tok == "=") {
      if (glued.empty() || i + 1 >= tokens.size()) {
        throw ParseError("misplaced '='", line);
      }
      glued.back() += "=" + tokens[++i];
    } else if (!glued.empty() && glued.back().back() == '=') {
      glued.back() += tok;
    } else if (tok.size() > 1 && tok.front() == '=' ) {
      if (glued.empty()) throw ParseError("misplaced '='", line);
      glued.back() += tok;
    } else {
      glued.push_back(tok);
    }
  }
  return glued;
}

[[nodiscard]] bool is_assignment(const std::string& token) {
  const auto eq = token.find('=');
  return eq != std::string::npos && eq > 0 && eq + 1 < token.size();
}

[[nodiscard]] std::pair<std::string, std::string> split_assignment(
    const std::string& token, int line) {
  const auto eq = token.find('=');
  if (eq == std::string::npos || eq == 0 || eq + 1 >= token.size()) {
    throw ParseError("expected name=value, got '" + token + "'", line);
  }
  return {util::to_lower(token.substr(0, eq)), token.substr(eq + 1)};
}

[[nodiscard]] double parse_number_token(const std::string& token, int line) {
  const auto value = util::parse_spice_number(token);
  if (!value) {
    throw ParseError("expected a number, got '" + token + "'", line);
  }
  return *value;
}

class AstBuilder {
 public:
  explicit AstBuilder(std::string include_dir)
      : include_dir_(std::move(include_dir)) {}

  NetlistAst build(std::string_view text) {
    NetlistAst ast;
    auto lines = logical_lines(text);
    std::size_t start = 0;
    // SPICE semantics: the first line is the title unless it is a directive
    // (".title Foo" is also accepted).
    if (!lines.empty()) {
      const std::string lowered = util::to_lower(lines[0].text);
      if (util::istarts_with(lowered, ".title")) {
        ast.title = std::string(util::trim(lines[0].text.substr(6)));
        start = 1;
      } else if (lowered.front() != '.') {
        ast.title = lines[0].text;
        start = 1;
      }
    }
    for (std::size_t i = start; i < lines.size(); ++i) {
      process_line(ast, lines[i]);
    }
    if (in_subckt_) {
      throw ParseError("missing .ends for subckt '" + current_subckt_.name +
                       "'", current_subckt_.line);
    }
    return ast;
  }

 private:
  void process_line(NetlistAst& ast, const Line& line) {
    if (ended_) return;
    auto tokens = tokenize(line.text, line.number);
    if (tokens.empty()) return;
    const std::string keyword = util::to_lower(tokens[0]);

    if (keyword.front() == '.') {
      directive(ast, keyword, tokens, line);
      return;
    }
    DeviceCard card;
    card.line = line.number;
    card.tokens = std::move(tokens);
    if (in_subckt_) {
      current_subckt_.devices.push_back(std::move(card));
    } else {
      ast.top_devices.push_back(std::move(card));
    }
  }

  void directive(NetlistAst& ast, const std::string& keyword,
                 const std::vector<std::string>& tokens, const Line& line) {
    if (keyword == ".end") {
      ended_ = true;
      return;
    }
    if (keyword == ".param") {
      for (std::size_t i = 1; i < tokens.size(); ++i) {
        auto [name, value] = split_assignment(tokens[i], line.number);
        ast.params.emplace_back(name, value);
      }
      return;
    }
    if (keyword == ".model") {
      if (tokens.size() < 3) {
        throw ParseError(".model needs a name and a type", line.number);
      }
      ModelCard model;
      model.line = line.number;
      model.name = util::to_lower(tokens[1]);
      model.type = util::to_lower(tokens[2]);
      for (std::size_t i = 3; i < tokens.size(); ++i) {
        auto [name, value] = split_assignment(tokens[i], line.number);
        model.params[name] = value;
      }
      ast.models[model.name] = std::move(model);
      return;
    }
    if (keyword == ".subckt") {
      if (in_subckt_) {
        throw ParseError("nested .subckt is not supported", line.number);
      }
      if (tokens.size() < 2) throw ParseError(".subckt needs a name", line.number);
      in_subckt_ = true;
      current_subckt_ = SubcktDef{};
      current_subckt_.line = line.number;
      current_subckt_.name = util::to_lower(tokens[1]);
      for (std::size_t i = 2; i < tokens.size(); ++i) {
        if (is_assignment(tokens[i])) {
          auto [name, value] = split_assignment(tokens[i], line.number);
          current_subckt_.default_params.emplace_back(name, value);
        } else {
          current_subckt_.ports.push_back(util::to_lower(tokens[i]));
        }
      }
      return;
    }
    if (keyword == ".ends") {
      if (!in_subckt_) throw ParseError(".ends without .subckt", line.number);
      in_subckt_ = false;
      ast.subckts[current_subckt_.name] = std::move(current_subckt_);
      current_subckt_ = SubcktDef{};
      return;
    }
    if (keyword == ".tran") {
      if (tokens.size() < 3) {
        throw ParseError(".tran needs tstep and tstop", line.number);
      }
      TranDirective tran;
      tran.tstep = parse_number_token(tokens[1], line.number);
      tran.tstop = parse_number_token(tokens[2], line.number);
      ast.tran = tran;
      return;
    }
    if (keyword == ".dc") {
      if (tokens.size() < 5) {
        throw ParseError(".dc needs source, start, stop, step", line.number);
      }
      DcDirective dc;
      dc.source = util::to_lower(tokens[1]);
      dc.start = parse_number_token(tokens[2], line.number);
      dc.stop = parse_number_token(tokens[3], line.number);
      dc.step = parse_number_token(tokens[4], line.number);
      ast.dc = dc;
      return;
    }
    if (keyword == ".ac") {
      if (tokens.size() < 5) {
        throw ParseError(".ac needs: dec|lin points fstart fstop",
                         line.number);
      }
      AcDirective ac;
      const std::string mode = util::to_lower(tokens[1]);
      if (mode == "dec") {
        ac.decade = true;
      } else if (mode == "lin") {
        ac.decade = false;
      } else {
        throw ParseError(".ac mode must be dec or lin", line.number);
      }
      ac.points = static_cast<int>(parse_number_token(tokens[2], line.number));
      ac.f_start = parse_number_token(tokens[3], line.number);
      ac.f_stop = parse_number_token(tokens[4], line.number);
      if (ac.points < 1 || !(ac.f_start > 0.0) || !(ac.f_stop > ac.f_start)) {
        throw ParseError(".ac needs points >= 1 and 0 < fstart < fstop",
                         line.number);
      }
      ast.ac = ac;
      return;
    }
    if (keyword == ".measure" || keyword == ".meas") {
      if (tokens.size() < 4) {
        throw ParseError(".measure needs: tran <name> <op> ...", line.number);
      }
      MeasureCard card;
      card.line = line.number;
      card.analysis = util::to_lower(tokens[1]);
      card.name = util::to_lower(tokens[2]);
      // The tokenizer treats parentheses as whitespace, splitting signal
      // references like "i(vdd)" into ["i", "vdd"]; re-join them here.
      for (std::size_t i = 3; i < tokens.size(); ++i) {
        const std::string lowered = util::to_lower(tokens[i]);
        const bool signal_prefix = lowered == "v" || lowered == "i" ||
                                   lowered == "id" || lowered == "r" ||
                                   lowered == "s";
        if (signal_prefix && i + 1 < tokens.size() &&
            !is_assignment(tokens[i + 1])) {
          card.tokens.push_back(lowered + "(" +
                                util::to_lower(tokens[i + 1]) + ")");
          ++i;
        } else {
          card.tokens.push_back(tokens[i]);
        }
      }
      ast.measures.push_back(std::move(card));
      return;
    }
    if (keyword == ".op") {
      ast.op = true;
      return;
    }
    if (keyword == ".include" || keyword == ".inc") {
      if (tokens.size() < 2) throw ParseError(".include needs a path", line.number);
      std::string path = tokens[1];
      if (path.size() >= 2 && (path.front() == '"' || path.front() == '\'')) {
        path = path.substr(1, path.size() - 2);
      }
      include(ast, path, line.number);
      return;
    }
    if (keyword == ".title") return;  // handled at the top
    if (keyword == ".options" || keyword == ".option" || keyword == ".print" ||
        keyword == ".probe" || keyword == ".plot" || keyword == ".save") {
      return;  // accepted and ignored
    }
    throw ParseError("unknown directive '" + keyword + "'", line.number);
  }

  void include(NetlistAst& ast, const std::string& path, int line) {
    namespace fs = std::filesystem;
    fs::path p(path);
    if (p.is_relative() && !include_dir_.empty()) {
      p = fs::path(include_dir_) / p;
    }
    std::ifstream file(p);
    if (!file) {
      throw ParseError("cannot open include file '" + p.string() + "'", line);
    }
    std::ostringstream content;
    content << file.rdbuf();
    AstBuilder sub(p.parent_path().string());
    NetlistAst inner = sub.build(content.str());
    // Merge: included files contribute definitions and devices, not
    // analyses/titles.
    for (auto& param : inner.params) ast.params.push_back(std::move(param));
    for (auto& device : inner.top_devices) {
      ast.top_devices.push_back(std::move(device));
    }
    for (auto& [name, model] : inner.models) {
      ast.models[name] = std::move(model);
    }
    for (auto& [name, subckt] : inner.subckts) {
      ast.subckts[name] = std::move(subckt);
    }
  }

  std::string include_dir_;
  bool in_subckt_ = false;
  bool ended_ = false;
  SubcktDef current_subckt_;
};

}  // namespace

std::vector<double> AcDirective::frequencies() const {
  std::vector<double> freqs;
  if (decade) {
    const double step = 1.0 / points;
    for (double e = std::log10(f_start); e <= std::log10(f_stop) + 1e-12;
         e += step) {
      freqs.push_back(std::pow(10.0, e));
    }
    return freqs;
  }
  if (points == 1) return {f_start};
  for (int i = 0; i < points; ++i) {
    freqs.push_back(f_start + (f_stop - f_start) * i / (points - 1));
  }
  return freqs;
}

std::vector<double> DcDirective::points() const {
  std::vector<double> values;
  if (step == 0.0) {
    values.push_back(start);
    return values;
  }
  const double direction = (stop >= start) ? 1.0 : -1.0;
  const double magnitude = std::abs(step) * direction;
  for (double v = start;
       direction > 0 ? v <= stop + 1e-12 * std::abs(step)
                     : v >= stop - 1e-12 * std::abs(step);
       v += magnitude) {
    values.push_back(v);
  }
  return values;
}

NetlistAst parse(std::string_view text) {
  return AstBuilder("").build(text);
}

NetlistAst parse_file(const std::string& path) {
  std::ifstream file(path);
  if (!file) throw Error("cannot open netlist file '" + path + "'");
  std::ostringstream content;
  content << file.rdbuf();
  return AstBuilder(std::filesystem::path(path).parent_path().string())
      .build(content.str());
}

}  // namespace softfet::netlist
