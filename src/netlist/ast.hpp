// Parsed (but not yet elaborated) netlist structures.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace softfet::netlist {

/// One element card, tokenized: tokens[0] is the element name.
struct DeviceCard {
  int line = 0;
  std::vector<std::string> tokens;
};

/// .model <name> <type> [param=value ...]
struct ModelCard {
  int line = 0;
  std::string name;
  std::string type;  // nmos | pmos | ptm | d | sw
  std::map<std::string, std::string> params;
};

/// .subckt <name> <ports...> [param=default ...] ... .ends
struct SubcktDef {
  int line = 0;
  std::string name;
  std::vector<std::string> ports;
  std::vector<std::pair<std::string, std::string>> default_params;
  std::vector<DeviceCard> devices;
};

/// .ac dec <points-per-decade> <f_start> <f_stop>  (or "lin <n> f1 f2")
struct AcDirective {
  bool decade = true;   ///< false = linear spacing
  int points = 10;      ///< per decade (dec) or total (lin)
  double f_start = 1.0;
  double f_stop = 1e9;

  /// Expand into the frequency grid.
  [[nodiscard]] std::vector<double> frequencies() const;
};

/// .tran <tstep> <tstop>
struct TranDirective {
  double tstep = 0.0;  ///< suggested max step (advisory; engine is adaptive)
  double tstop = 0.0;
};

/// .dc <source> <start> <stop> <step>
struct DcDirective {
  std::string source;
  double start = 0.0;
  double stop = 0.0;
  double step = 0.0;

  /// Expand into the list of sweep points.
  [[nodiscard]] std::vector<double> points() const;
};

/// .measure card captured for post-analysis evaluation.
struct MeasureCard {
  int line = 0;
  std::string analysis;
  std::string name;
  std::vector<std::string> tokens;
};

struct NetlistAst {
  std::string title;
  std::vector<std::pair<std::string, std::string>> params;  // ordered
  std::vector<DeviceCard> top_devices;
  std::map<std::string, ModelCard> models;    // lower-case names
  std::map<std::string, SubcktDef> subckts;   // lower-case names
  std::optional<TranDirective> tran;
  std::optional<DcDirective> dc;
  std::optional<AcDirective> ac;
  std::vector<MeasureCard> measures;
  bool op = false;
};

}  // namespace softfet::netlist
