// SPICE-style netlist text -> NetlistAst.
//
// Supported syntax:
//  - first line is the title (unless it is a directive or element card);
//  - '*' full-line comments, ';' and '$ ' inline comments;
//  - '+' line continuations;
//  - case-insensitive everywhere;
//  - '(' ')' ',' act as whitespace outside '{...}' expression braces;
//  - element cards by first letter: R C L V I E G S D M P X;
//  - directives: .title .param .model .subckt/.ends .tran .dc .op .end
//    .include.
#pragma once

#include <string>
#include <string_view>

#include "netlist/ast.hpp"

namespace softfet::netlist {

/// Parse netlist text; throws softfet::ParseError with line numbers.
[[nodiscard]] NetlistAst parse(std::string_view text);

/// Read and parse a file (resolving .include relative to its directory).
[[nodiscard]] NetlistAst parse_file(const std::string& path);

}  // namespace softfet::netlist
