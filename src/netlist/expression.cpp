#include "netlist/expression.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <vector>

#include "util/error.hpp"
#include "util/strings.hpp"
#include "util/units.hpp"

namespace softfet::netlist {

void ParamScope::set(const std::string& name, double value) {
  values_[util::to_lower(name)] = value;
}

bool ParamScope::has(const std::string& name) const {
  if (values_.count(util::to_lower(name)) != 0) return true;
  return parent_ != nullptr && parent_->has(name);
}

double ParamScope::get(const std::string& name) const {
  const auto it = values_.find(util::to_lower(name));
  if (it != values_.end()) return it->second;
  if (parent_ != nullptr) return parent_->get(name);
  throw Error("undefined parameter: '" + name + "'");
}

namespace {

class Parser {
 public:
  Parser(std::string_view text, const ParamScope& scope)
      : text_(text), scope_(scope) {}

  [[nodiscard]] double parse() {
    const double v = expr();
    skip_ws();
    if (pos_ != text_.size()) {
      throw Error("unexpected trailing input in expression: '" +
                  std::string(text_.substr(pos_)) + "'");
    }
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  [[nodiscard]] char peek() {
    skip_ws();
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  bool consume(char c) {
    if (peek() == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  double expr() {
    double v = term();
    while (true) {
      if (consume('+')) {
        v += term();
      } else if (consume('-')) {
        v -= term();
      } else {
        return v;
      }
    }
  }

  double term() {
    double v = factor();
    while (true) {
      if (consume('*')) {
        v *= factor();
      } else if (consume('/')) {
        v /= factor();
      } else {
        return v;
      }
    }
  }

  double factor() {
    const double base = unary();
    if (consume('^')) return std::pow(base, factor());
    return base;
  }

  double unary() {
    if (consume('-')) return -unary();
    if (consume('+')) return unary();
    return primary();
  }

  double primary() {
    skip_ws();
    if (pos_ >= text_.size()) throw Error("expression ended unexpectedly");
    const char c = text_[pos_];
    if (c == '(') {
      ++pos_;
      const double v = expr();
      if (!consume(')')) throw Error("missing ')' in expression");
      return v;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) != 0 || c == '.') {
      return number();
    }
    if (std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_') {
      return identifier();
    }
    throw Error(std::string("unexpected character '") + c + "' in expression");
  }

  double number() {
    const std::size_t start = pos_;
    // Mantissa.
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.')) {
      ++pos_;
    }
    // Exponent or engineering suffix (letters).
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      std::size_t probe = pos_ + 1;
      if (probe < text_.size() && (text_[probe] == '+' || text_[probe] == '-')) {
        ++probe;
      }
      if (probe < text_.size() &&
          std::isdigit(static_cast<unsigned char>(text_[probe])) != 0) {
        pos_ = probe;
        while (pos_ < text_.size() &&
               std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0) {
          ++pos_;
        }
      }
    }
    // Engineering suffix letters (meg, k, p, ...), stop at operators.
    while (pos_ < text_.size() &&
           std::isalpha(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
    return util::parse_spice_number_or_throw(text_.substr(start, pos_ - start));
  }

  double identifier() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '_' || text_[pos_] == '.')) {
      ++pos_;
    }
    const std::string name(text_.substr(start, pos_ - start));
    if (peek() == '(') return function_call(name);
    return scope_.get(name);
  }

  double function_call(const std::string& name) {
    if (!consume('(')) throw Error("expected '('");
    std::vector<double> args;
    if (peek() != ')') {
      args.push_back(expr());
      while (consume(',')) args.push_back(expr());
    }
    if (!consume(')')) throw Error("missing ')' after function arguments");
    const std::string fn = util::to_lower(name);
    const auto need = [&](std::size_t n) {
      if (args.size() != n) {
        throw Error("function " + fn + " expects " + std::to_string(n) +
                    " argument(s)");
      }
    };
    if (fn == "abs") {
      need(1);
      return std::fabs(args[0]);
    }
    if (fn == "sqrt") {
      need(1);
      return std::sqrt(args[0]);
    }
    if (fn == "exp") {
      need(1);
      return std::exp(args[0]);
    }
    if (fn == "ln") {
      need(1);
      return std::log(args[0]);
    }
    if (fn == "log10") {
      need(1);
      return std::log10(args[0]);
    }
    if (fn == "pow") {
      need(2);
      return std::pow(args[0], args[1]);
    }
    if (fn == "min") {
      need(2);
      return std::min(args[0], args[1]);
    }
    if (fn == "max") {
      need(2);
      return std::max(args[0], args[1]);
    }
    throw Error("unknown function: '" + fn + "'");
  }

  std::string_view text_;
  const ParamScope& scope_;
  std::size_t pos_ = 0;
};

}  // namespace

double evaluate_expression(std::string_view text, const ParamScope& scope) {
  return Parser(text, scope).parse();
}

}  // namespace softfet::netlist
