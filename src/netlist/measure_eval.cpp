#include "netlist/measure_eval.hpp"

#include <cmath>
#include <limits>
#include <map>

#include "measure/waveform.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"
#include "util/strings.hpp"
#include "util/units.hpp"

namespace softfet::netlist {

namespace {

using measure::CrossDirection;
using measure::Waveform;

struct EdgeSpec {
  std::string signal;
  double level = 0.0;
  CrossDirection direction = CrossDirection::kEither;
  double after = 0.0;
};

[[nodiscard]] double number_of(const std::string& text, int line) {
  const auto v = util::parse_spice_number(text);
  if (!v) throw ParseError("bad number '" + text + "' in .measure", line);
  return *v;
}

/// Parse "KEY=value" options following an edge keyword; returns the index
/// of the first non-option token.
std::size_t parse_edge_options(const std::vector<std::string>& tokens,
                               std::size_t i, EdgeSpec& edge, int line) {
  for (; i < tokens.size(); ++i) {
    const auto eq = tokens[i].find('=');
    if (eq == std::string::npos) return i;
    const std::string key = util::to_lower(tokens[i].substr(0, eq));
    const std::string value = tokens[i].substr(eq + 1);
    if (key == "val") {
      edge.level = number_of(value, line);
    } else if (key == "rise") {
      edge.direction = CrossDirection::kRising;
    } else if (key == "fall") {
      edge.direction = CrossDirection::kFalling;
    } else if (key == "cross") {
      edge.direction = CrossDirection::kEither;
    } else if (key == "td") {
      edge.after = number_of(value, line);
    } else {
      throw ParseError("unknown .measure option '" + key + "'", line);
    }
  }
  return i;
}

[[nodiscard]] MeasureValue evaluate_trig_targ(
    const MeasureDirective& directive, const sim::TranResult& result) {
  const auto& tokens = directive.tokens;
  EdgeSpec trig;
  EdgeSpec targ;
  std::size_t i = 0;
  // TRIG <signal> options... TARG <signal> options...
  if (!util::iequals(tokens[i], "trig")) {
    throw ParseError("expected TRIG", directive.line);
  }
  if (++i >= tokens.size()) {
    throw ParseError("TRIG needs a signal", directive.line);
  }
  trig.signal = tokens[i];
  i = parse_edge_options(tokens, i + 1, trig, directive.line);
  if (i >= tokens.size() || !util::iequals(tokens[i], "targ")) {
    throw ParseError("expected TARG after TRIG options", directive.line);
  }
  if (++i >= tokens.size()) {
    throw ParseError("TARG needs a signal", directive.line);
  }
  targ.signal = tokens[i];
  i = parse_edge_options(tokens, i + 1, targ, directive.line);

  const Waveform w_trig = Waveform::from_tran(result, trig.signal);
  const Waveform w_targ = Waveform::from_tran(result, targ.signal);
  const double t_trig =
      w_trig.first_crossing(trig.level, trig.direction, trig.after);
  const double t_targ =
      w_targ.first_crossing(targ.level, targ.direction, t_trig);
  return {directive.name, t_targ - t_trig};
}

}  // namespace

MeasureValue evaluate_measure(const MeasureDirective& directive,
                              const sim::TranResult& result) {
  if (!util::iequals(directive.analysis, "tran")) {
    throw ParseError(".measure supports only tran analyses", directive.line);
  }
  if (directive.tokens.empty()) {
    throw ParseError(".measure needs an operation", directive.line);
  }
  const std::string op = util::to_lower(directive.tokens.front());
  if (op == "trig") return evaluate_trig_targ(directive, result);

  if (op != "max" && op != "min" && op != "pp" && op != "avg" &&
      op != "rms" && op != "integ") {
    throw ParseError("unknown .measure operation '" + op + "'",
                     directive.line);
  }
  if (directive.tokens.size() < 2) {
    throw ParseError(".measure " + op + " needs a signal", directive.line);
  }
  const std::string signal = directive.tokens[1];
  double from = -std::numeric_limits<double>::infinity();
  double to = std::numeric_limits<double>::infinity();
  for (std::size_t i = 2; i < directive.tokens.size(); ++i) {
    const auto eq = directive.tokens[i].find('=');
    if (eq == std::string::npos) {
      throw ParseError("expected FROM=/TO= option, got '" +
                           directive.tokens[i] + "'",
                       directive.line);
    }
    const std::string key = util::to_lower(directive.tokens[i].substr(0, eq));
    const double value =
        number_of(directive.tokens[i].substr(eq + 1), directive.line);
    if (key == "from") {
      from = value;
    } else if (key == "to") {
      to = value;
    } else {
      throw ParseError("unknown .measure option '" + key + "'",
                       directive.line);
    }
  }

  Waveform w = Waveform::from_tran(result, signal);
  if (std::isfinite(from) || std::isfinite(to)) {
    const double t0 = std::isfinite(from) ? from : w.t_begin();
    const double t1 = std::isfinite(to) ? to : w.t_end();
    w = w.window(t0, t1);
  }
  if (w.empty()) throw Error(".measure window is empty");

  double value = 0.0;
  if (op == "max") {
    value = w.max_value();
  } else if (op == "min") {
    value = w.min_value();
  } else if (op == "pp") {
    value = w.max_value() - w.min_value();
  } else if (op == "avg") {
    value = w.integral() / (w.t_end() - w.t_begin());
  } else if (op == "rms") {
    const Waveform squared = Waveform::multiply(w, w);
    value = std::sqrt(squared.integral() / (w.t_end() - w.t_begin()));
  } else {  // integ (validated above)
    value = w.integral();
  }
  return {directive.name, value};
}

std::vector<MeasureValue> evaluate_measures(
    const std::vector<MeasureDirective>& directives,
    const sim::TranResult& result) {
  std::vector<MeasureValue> values;
  for (const auto& directive : directives) {
    try {
      values.push_back(evaluate_measure(directive, result));
    } catch (const Error& e) {
      util::log_warn(".measure " + directive.name + " failed: " + e.what());
      values.push_back(
          {directive.name, std::numeric_limits<double>::quiet_NaN()});
    }
  }
  return values;
}

}  // namespace softfet::netlist
