// NetlistAst -> flat sim::Circuit (+ analysis directives).
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "netlist/ast.hpp"
#include "netlist/measure_eval.hpp"
#include "sim/circuit.hpp"

namespace softfet::netlist {

struct ElaboratedNetlist {
  std::string title;
  std::unique_ptr<sim::Circuit> circuit;
  std::optional<TranDirective> tran;
  std::optional<DcDirective> dc;
  std::optional<AcDirective> ac;
  std::vector<MeasureDirective> measures;
  bool op = false;
};

/// Flatten subcircuits, resolve parameters/models, create devices.
/// Throws softfet::ParseError / InvalidCircuitError on semantic errors.
[[nodiscard]] ElaboratedNetlist elaborate(const NetlistAst& ast);

/// Convenience: parse + elaborate.
[[nodiscard]] ElaboratedNetlist compile_netlist(std::string_view text);
[[nodiscard]] ElaboratedNetlist compile_netlist_file(const std::string& path);

}  // namespace softfet::netlist
