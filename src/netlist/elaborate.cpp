#include "netlist/elaborate.hpp"

#include <cmath>
#include <functional>

#include "devices/capacitor.hpp"
#include "devices/controlled.hpp"
#include "devices/diode.hpp"
#include "devices/inductor.hpp"
#include "devices/mosfet.hpp"
#include "devices/ptm.hpp"
#include "devices/resistor.hpp"
#include "devices/sources.hpp"
#include "devices/tech40.hpp"
#include "devices/vswitch.hpp"
#include "netlist/expression.hpp"
#include "netlist/parser.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"
#include "util/units.hpp"

namespace softfet::netlist {

namespace {

namespace sd = softfet::devices;
namespace t40 = softfet::devices::tech40;

/// Evaluate a value token: "{expr}", a number with suffix, or a bare
/// parameter name.
[[nodiscard]] double eval_value(const std::string& token,
                                const ParamScope& scope, int line) {
  try {
    if (token.size() >= 2 && token.front() == '{' && token.back() == '}') {
      return evaluate_expression(
          std::string_view(token).substr(1, token.size() - 2), scope);
    }
    if (const auto number = util::parse_spice_number(token)) return *number;
    if (scope.has(token)) return scope.get(token);
    // Last resort: a brace-free expression ("vcc/2").
    return evaluate_expression(token, scope);
  } catch (const Error& e) {
    throw ParseError(std::string("bad value '") + token + "': " + e.what(),
                     line);
  }
}

[[nodiscard]] bool is_assignment(const std::string& token) {
  const auto eq = token.find('=');
  return eq != std::string::npos && eq > 0 && eq + 1 < token.size();
}

struct Assignments {
  std::map<std::string, std::string> raw;

  [[nodiscard]] bool has(const std::string& key) const {
    return raw.count(key) != 0;
  }
  [[nodiscard]] double value(const std::string& key, double fallback,
                             const ParamScope& scope, int line) const {
    const auto it = raw.find(key);
    if (it == raw.end()) return fallback;
    return eval_value(it->second, scope, line);
  }
};

[[nodiscard]] Assignments collect_assignments(
    const std::vector<std::string>& tokens, std::size_t from, int line) {
  Assignments out;
  for (std::size_t i = from; i < tokens.size(); ++i) {
    if (!is_assignment(tokens[i])) {
      throw ParseError("expected name=value, got '" + tokens[i] + "'", line);
    }
    const auto eq = tokens[i].find('=');
    out.raw[util::to_lower(tokens[i].substr(0, eq))] = tokens[i].substr(eq + 1);
  }
  return out;
}

class Elaborator {
 public:
  explicit Elaborator(const NetlistAst& ast) : ast_(ast) {}

  ElaboratedNetlist run() {
    ElaboratedNetlist out;
    out.title = ast_.title;
    out.circuit = std::make_unique<sim::Circuit>();
    out.tran = ast_.tran;
    out.dc = ast_.dc;
    out.ac = ast_.ac;
    out.op = ast_.op;
    for (const auto& card : ast_.measures) {
      MeasureDirective directive;
      directive.line = card.line;
      directive.analysis = card.analysis;
      directive.name = card.name;
      directive.tokens = card.tokens;
      out.measures.push_back(std::move(directive));
    }
    circuit_ = out.circuit.get();

    ParamScope globals;
    for (const auto& [name, value] : ast_.params) {
      globals.set(name, eval_value(value, globals, 0));
    }
    for (const auto& card : ast_.top_devices) {
      instantiate(card, "", {}, globals);
    }
    return out;
  }

 private:
  using NodeMap = std::map<std::string, std::string>;

  /// Resolve a node token to a flat node name given the instance context.
  [[nodiscard]] std::string resolve_node(const std::string& token,
                                         const std::string& prefix,
                                         const NodeMap& port_map) const {
    const std::string lowered = util::to_lower(token);
    if (lowered == "0" || lowered == "gnd" || lowered == "ground" ||
        lowered == "vss!") {
      return "0";
    }
    const auto it = port_map.find(lowered);
    if (it != port_map.end()) return it->second;
    return prefix.empty() ? lowered : prefix + lowered;
  }

  [[nodiscard]] const ModelCard& find_model(const std::string& name,
                                            int line) const {
    const auto it = ast_.models.find(util::to_lower(name));
    if (it == ast_.models.end()) {
      throw ParseError("unknown model '" + name + "'", line);
    }
    return it->second;
  }

  [[nodiscard]] sd::MosfetModel mosfet_model(const ModelCard& card,
                                             const ParamScope& scope) const {
    sd::MosfetModel model =
        (card.type == "pmos") ? t40::pmos() : t40::nmos();
    Assignments a;
    a.raw = card.params;
    model.vt0 = a.value("vt0", model.vt0, scope, card.line);
    model.n = a.value("n", model.n, scope, card.line);
    model.kp = a.value("kp", model.kp, scope, card.line);
    model.lambda = a.value("lambda", model.lambda, scope, card.line);
    model.theta = a.value("theta", model.theta, scope, card.line);
    model.cox = a.value("cox", model.cox, scope, card.line);
    model.cov = a.value("cov", model.cov, scope, card.line);
    model.cj = a.value("cj", model.cj, scope, card.line);
    return model;
  }

  [[nodiscard]] sd::PtmParams ptm_params(const ModelCard& card,
                                         const ParamScope& scope) const {
    sd::PtmParams params;
    Assignments a;
    a.raw = card.params;
    params.r_ins = a.value("rins", params.r_ins, scope, card.line);
    params.r_met = a.value("rmet", params.r_met, scope, card.line);
    params.v_imt = a.value("vimt", params.v_imt, scope, card.line);
    params.v_mit = a.value("vmit", params.v_mit, scope, card.line);
    params.t_ptm = a.value("tptm", params.t_ptm, scope, card.line);
    return params;
  }

  /// Parse a source waveform from tokens starting at `from`.
  [[nodiscard]] sd::SourceSpec source_spec(
      const std::vector<std::string>& tokens, std::size_t from,
      const ParamScope& scope, int line) const {
    if (from >= tokens.size()) return sd::SourceSpec::dc(0.0);
    sd::SourceSpec spec = sd::SourceSpec::dc(0.0);
    double ac_magnitude = 0.0;
    std::size_t i = from;
    while (i < tokens.size()) {
      const std::string kind = util::to_lower(tokens[i]);
      if (kind == "dc") {
        if (i + 1 >= tokens.size()) throw ParseError("dc needs a value", line);
        spec = sd::SourceSpec::dc(eval_value(tokens[i + 1], scope, line));
        i += 2;
      } else if (kind == "ac") {
        if (i + 1 >= tokens.size()) throw ParseError("ac needs a value", line);
        ac_magnitude = eval_value(tokens[i + 1], scope, line);
        i += 2;
      } else if (kind == "pulse") {
        std::vector<double> v;
        for (++i; i < tokens.size(); ++i) v.push_back(eval_value(tokens[i], scope, line));
        if (v.size() < 6) throw ParseError("pulse needs v1 v2 td tr tf pw [per]", line);
        spec = sd::SourceSpec::pulse(v[0], v[1], v[2], v[3], v[4], v[5],
                                     v.size() > 6 ? v[6] : 0.0);
      } else if (kind == "pwl") {
        std::vector<double> v;
        for (++i; i < tokens.size(); ++i) v.push_back(eval_value(tokens[i], scope, line));
        if (v.size() < 4 || v.size() % 2 != 0) {
          throw ParseError("pwl needs t/v pairs", line);
        }
        std::vector<numeric::PwlPoint> points;
        for (std::size_t k = 0; k < v.size(); k += 2) {
          points.push_back({v[k], v[k + 1]});
        }
        try {
          spec = sd::SourceSpec::pwl(std::move(points));
        } catch (const Error& e) {
          throw ParseError(e.what(), line);
        }
      } else if (kind == "sin") {
        std::vector<double> v;
        for (++i; i < tokens.size(); ++i) v.push_back(eval_value(tokens[i], scope, line));
        if (v.size() < 3) throw ParseError("sin needs vo va freq [td]", line);
        spec = sd::SourceSpec::sine(v[0], v[1], v[2], v.size() > 3 ? v[3] : 0.0);
      } else {
        // Bare value = DC.
        spec = sd::SourceSpec::dc(eval_value(tokens[i], scope, line));
        ++i;
      }
    }
    spec.set_ac_magnitude(ac_magnitude);
    return spec;
  }

  void instantiate(const DeviceCard& card, const std::string& prefix,
                   const NodeMap& port_map, const ParamScope& scope) {
    const std::vector<std::string>& tokens = card.tokens;
    const std::string name =
        prefix.empty() ? tokens[0] : prefix + util::to_lower(tokens[0]);
    const char kind = static_cast<char>(
        std::tolower(static_cast<unsigned char>(tokens[0].front())));
    const int line = card.line;
    const auto need = [&](std::size_t n) {
      if (tokens.size() < n) {
        throw ParseError("element '" + tokens[0] + "' needs at least " +
                             std::to_string(n - 1) + " fields",
                         line);
      }
    };
    const auto node = [&](std::size_t i) {
      return circuit_->node(resolve_node(tokens[i], prefix, port_map));
    };

    switch (kind) {
      case 'r': {
        need(4);
        circuit_->add<sd::Resistor>(name, node(1), node(2),
                                    eval_value(tokens[3], scope, line));
        return;
      }
      case 'c': {
        need(4);
        circuit_->add<sd::Capacitor>(name, node(1), node(2),
                                     eval_value(tokens[3], scope, line));
        return;
      }
      case 'l': {
        need(4);
        circuit_->add<sd::Inductor>(name, node(1), node(2),
                                    eval_value(tokens[3], scope, line));
        return;
      }
      case 'v': {
        need(3);
        circuit_->add<sd::VSource>(name, node(1), node(2),
                                   source_spec(tokens, 3, scope, line));
        return;
      }
      case 'i': {
        need(3);
        circuit_->add<sd::ISource>(name, node(1), node(2),
                                   source_spec(tokens, 3, scope, line));
        return;
      }
      case 'e': {
        need(6);
        circuit_->add<sd::Vcvs>(name, node(1), node(2), node(3), node(4),
                                eval_value(tokens[5], scope, line));
        return;
      }
      case 'g': {
        need(6);
        circuit_->add<sd::Vccs>(name, node(1), node(2), node(3), node(4),
                                eval_value(tokens[5], scope, line));
        return;
      }
      case 's': {
        need(6);
        const ModelCard& model = find_model(tokens[5], line);
        if (model.type != "sw") {
          throw ParseError("switch '" + tokens[0] + "' needs a sw model", line);
        }
        Assignments a;
        a.raw = model.params;
        sd::VSwitchParams params;
        params.r_on = a.value("ron", params.r_on, scope, line);
        params.r_off = a.value("roff", params.r_off, scope, line);
        params.v_threshold = a.value("vt", params.v_threshold, scope, line);
        params.v_width = a.value("vw", params.v_width, scope, line);
        circuit_->add<sd::VSwitch>(name, node(1), node(2), node(3), node(4),
                                   params);
        return;
      }
      case 'd': {
        need(3);
        sd::DiodeParams params;
        if (tokens.size() > 3 && !is_assignment(tokens[3])) {
          const ModelCard& model = find_model(tokens[3], line);
          if (model.type != "d") {
            throw ParseError("diode '" + tokens[0] + "' needs a d model", line);
          }
          Assignments a;
          a.raw = model.params;
          params.i_sat = a.value("is", params.i_sat, scope, line);
          params.emission = a.value("n", params.emission, scope, line);
        }
        circuit_->add<sd::Diode>(name, node(1), node(2), params);
        return;
      }
      case 'm': {
        need(6);
        const ModelCard& model_card = find_model(tokens[5], line);
        if (model_card.type != "nmos" && model_card.type != "pmos") {
          throw ParseError("mosfet '" + tokens[0] + "' needs nmos/pmos model",
                           line);
        }
        const sd::MosfetModel model = mosfet_model(model_card, scope);
        const Assignments a = collect_assignments(tokens, 6, line);
        sd::MosfetDims dims = (model.polarity == sd::MosPolarity::kNmos)
                                  ? t40::min_nmos_dims()
                                  : t40::min_pmos_dims();
        dims.w = a.value("w", dims.w, scope, line);
        dims.l = a.value("l", dims.l, scope, line);
        dims.m = a.value("m", dims.m, scope, line);
        circuit_->add<sd::Mosfet>(name, node(1), node(2), node(3), node(4),
                                  model, dims);
        return;
      }
      case 'p': {
        need(4);
        const ModelCard& model_card = find_model(tokens[3], line);
        if (model_card.type != "ptm") {
          throw ParseError("ptm '" + tokens[0] + "' needs a ptm model", line);
        }
        try {
          circuit_->add<sd::Ptm>(name, node(1), node(2),
                                 ptm_params(model_card, scope));
        } catch (const InvalidCircuitError& e) {
          throw ParseError(e.what(), line);
        }
        return;
      }
      case 'x': {
        need(3);
        subcircuit(card, name, prefix, port_map, scope);
        return;
      }
      default:
        throw ParseError(std::string("unknown element type '") +
                             tokens[0].front() + "'",
                         line);
    }
  }

  void subcircuit(const DeviceCard& card, const std::string& name,
                  const std::string& prefix, const NodeMap& port_map,
                  const ParamScope& scope) {
    const std::vector<std::string>& tokens = card.tokens;
    const int line = card.line;
    // Layout: X<name> node1 ... nodeN subcktName [param=value ...]
    std::size_t first_assignment = tokens.size();
    for (std::size_t i = 1; i < tokens.size(); ++i) {
      if (is_assignment(tokens[i])) {
        first_assignment = i;
        break;
      }
    }
    if (first_assignment < 3) {
      throw ParseError("subcircuit instance needs nodes and a name", line);
    }
    const std::string subckt_name =
        util::to_lower(tokens[first_assignment - 1]);
    const auto it = ast_.subckts.find(subckt_name);
    if (it == ast_.subckts.end()) {
      throw ParseError("unknown subcircuit '" + subckt_name + "'", line);
    }
    const SubcktDef& def = it->second;
    const std::size_t node_count = first_assignment - 2;
    if (node_count != def.ports.size()) {
      throw ParseError("subcircuit '" + subckt_name + "' expects " +
                           std::to_string(def.ports.size()) + " nodes, got " +
                           std::to_string(node_count),
                       line);
    }

    // Port map: subckt port name -> flat parent node name.
    NodeMap inner_map;
    for (std::size_t i = 0; i < def.ports.size(); ++i) {
      inner_map[def.ports[i]] = resolve_node(tokens[1 + i], prefix, port_map);
    }

    // Parameter scope: defaults overridden by instance assignments,
    // evaluated in the parent scope.
    ParamScope inner(&scope);
    const Assignments overrides =
        collect_assignments(tokens, first_assignment, line);
    for (const auto& [pname, pdefault] : def.default_params) {
      const auto ov = overrides.raw.find(pname);
      const std::string& source = (ov != overrides.raw.end()) ? ov->second
                                                              : pdefault;
      inner.set(pname, eval_value(source, scope, line));
    }
    for (const auto& [pname, pvalue] : overrides.raw) {
      bool known = false;
      for (const auto& [dname, dvalue] : def.default_params) {
        (void)dvalue;
        if (dname == pname) {
          known = true;
          break;
        }
      }
      if (!known) {
        throw ParseError("subcircuit '" + subckt_name +
                             "' has no parameter '" + pname + "'",
                         line);
      }
    }

    const std::string inner_prefix = util::to_lower(name) + ".";
    for (const DeviceCard& inner_card : def.devices) {
      instantiate(inner_card, inner_prefix, inner_map, inner);
    }
  }

  const NetlistAst& ast_;
  sim::Circuit* circuit_ = nullptr;
};

}  // namespace

ElaboratedNetlist elaborate(const NetlistAst& ast) {
  return Elaborator(ast).run();
}

ElaboratedNetlist compile_netlist(std::string_view text) {
  return elaborate(parse(text));
}

ElaboratedNetlist compile_netlist_file(const std::string& path) {
  return elaborate(parse_file(path));
}

}  // namespace softfet::netlist
