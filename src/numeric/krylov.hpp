// Preconditioned Krylov solvers: CG for SPD conductance systems and
// BiCGSTAB for general (unsymmetric) MNA matrices.
//
// These are the iterative fallback behind LinearSolver's kIterative/kAuto
// policies: when direct fill-in explodes, the last cached LU factorization
// keeps serving as a preconditioner while the matrix values move (Newton
// iterations, transient steps), and only a failed Krylov solve pays for a
// fresh factorization. With M = LU of a nearby matrix, convergence is
// typically a handful of iterations; with M exactly the current matrix it
// is one.
//
// Both solvers are deterministic: fixed operation order, no randomness, no
// reductions whose order depends on thread count.
#pragma once

#include <cstddef>
#include <vector>

#include "numeric/sparse_lu.hpp"
#include "numeric/sparse_matrix.hpp"

namespace softfet::numeric {

struct KrylovOptions {
  /// Convergence target: ||b - A x||_2 <= rtol * ||b||_2 + atol.
  double rtol = 1e-12;
  double atol = 0.0;
  /// Iteration cap; 0 selects max(n, 200). Hitting the cap (or a numerical
  /// breakdown) reports converged == false — the caller decides whether to
  /// refactor and retry or to solve directly.
  std::size_t max_iterations = 0;
};

struct KrylovResult {
  bool converged = false;
  std::size_t iterations = 0;
  double residual_norm = 0.0;  ///< final true-residual estimate
};

/// Preconditioned conjugate gradients. Correct only for symmetric positive
/// definite `a` (resistive conductance networks); the preconditioner `m`
/// (applied as M^-1 v via its solve()) may be any nonsingular cached LU.
/// `x` carries the initial guess in and the solution out.
[[nodiscard]] KrylovResult conjugate_gradient(const SparseMatrix& a,
                                              const std::vector<double>& b,
                                              std::vector<double>& x,
                                              const SparseLu* m = nullptr,
                                              const KrylovOptions& options = {});

/// Preconditioned BiCGSTAB (van der Vorst) for general square systems —
/// the MNA case, where voltage-source and inductor branch rows break
/// symmetry. `x` carries the initial guess in and the solution out.
[[nodiscard]] KrylovResult bicgstab(const SparseMatrix& a,
                                    const std::vector<double>& b,
                                    std::vector<double>& x,
                                    const SparseLu* m = nullptr,
                                    const KrylovOptions& options = {});

}  // namespace softfet::numeric
