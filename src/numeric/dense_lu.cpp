#include "numeric/dense_lu.hpp"

#include <cmath>
#include <limits>

#include "util/error.hpp"

namespace softfet::numeric {

void DenseLu::factor(const DenseMatrix& a) {
  if (a.rows() != a.cols()) throw Error("DenseLu: matrix must be square");
  lu_ = a;
  const std::size_t n = a.rows();
  perm_.resize(n);
  for (std::size_t i = 0; i < n; ++i) perm_[i] = i;
  min_pivot_ = std::numeric_limits<double>::infinity();

  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivoting: find the largest |a[i][k]|, i >= k.
    std::size_t pivot_row = k;
    double pivot_mag = std::fabs(lu_(k, k));
    for (std::size_t i = k + 1; i < n; ++i) {
      const double mag = std::fabs(lu_(i, k));
      if (mag > pivot_mag) {
        pivot_mag = mag;
        pivot_row = i;
      }
    }
    if (!(pivot_mag > 0.0) || !std::isfinite(pivot_mag)) {
      throw SingularMatrixError("DenseLu: singular matrix at column " +
                                std::to_string(k), k);
    }
    min_pivot_ = std::min(min_pivot_, pivot_mag);
    if (pivot_row != k) {
      std::swap(perm_[k], perm_[pivot_row]);
      for (std::size_t c = 0; c < n; ++c) {
        std::swap(lu_(k, c), lu_(pivot_row, c));
      }
    }
    const double inv_pivot = 1.0 / lu_(k, k);
    for (std::size_t i = k + 1; i < n; ++i) {
      const double factor = lu_(i, k) * inv_pivot;
      lu_(i, k) = factor;
      if (factor == 0.0) continue;
      for (std::size_t c = k + 1; c < n; ++c) {
        lu_(i, c) -= factor * lu_(k, c);
      }
    }
  }
}

std::vector<double> DenseLu::solve(const std::vector<double>& b) const {
  const std::size_t n = lu_.rows();
  if (b.size() != n) throw Error("DenseLu::solve: size mismatch");

  // Forward substitution with the permuted RHS (L has unit diagonal).
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double acc = b[perm_[i]];
    for (std::size_t j = 0; j < i; ++j) acc -= lu_(i, j) * y[j];
    y[i] = acc;
  }
  // Back substitution.
  std::vector<double> x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double acc = y[ii];
    for (std::size_t j = ii + 1; j < n; ++j) acc -= lu_(ii, j) * x[j];
    x[ii] = acc / lu_(ii, ii);
  }
  return x;
}

}  // namespace softfet::numeric
