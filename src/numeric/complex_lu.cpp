#include "numeric/complex_lu.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace softfet::numeric {

std::vector<Complex> ComplexMatrix::multiply(
    const std::vector<Complex>& x) const {
  if (x.size() != cols_) throw Error("ComplexMatrix::multiply: size mismatch");
  std::vector<Complex> y(rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    Complex acc{};
    for (std::size_t c = 0; c < cols_; ++c) acc += (*this)(r, c) * x[c];
    y[r] = acc;
  }
  return y;
}

void ComplexLu::factor(const ComplexMatrix& a) {
  if (a.rows() != a.cols()) throw Error("ComplexLu: matrix must be square");
  lu_ = a;
  const std::size_t n = a.rows();
  perm_.resize(n);
  for (std::size_t i = 0; i < n; ++i) perm_[i] = i;

  for (std::size_t k = 0; k < n; ++k) {
    std::size_t pivot_row = k;
    double pivot_mag = std::abs(lu_(k, k));
    for (std::size_t i = k + 1; i < n; ++i) {
      const double mag = std::abs(lu_(i, k));
      if (mag > pivot_mag) {
        pivot_mag = mag;
        pivot_row = i;
      }
    }
    if (!(pivot_mag > 0.0) || !std::isfinite(pivot_mag)) {
      throw SingularMatrixError("ComplexLu: singular matrix at column " +
                                std::to_string(k), k);
    }
    if (pivot_row != k) {
      std::swap(perm_[k], perm_[pivot_row]);
      for (std::size_t c = 0; c < n; ++c) std::swap(lu_(k, c), lu_(pivot_row, c));
    }
    const Complex inv_pivot = 1.0 / lu_(k, k);
    for (std::size_t i = k + 1; i < n; ++i) {
      const Complex factor = lu_(i, k) * inv_pivot;
      lu_(i, k) = factor;
      if (factor == Complex{}) continue;
      for (std::size_t c = k + 1; c < n; ++c) {
        lu_(i, c) -= factor * lu_(k, c);
      }
    }
  }
}

std::vector<Complex> ComplexLu::solve(const std::vector<Complex>& b) const {
  const std::size_t n = lu_.rows();
  if (b.size() != n) throw Error("ComplexLu::solve: size mismatch");
  std::vector<Complex> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    Complex acc = b[perm_[i]];
    for (std::size_t j = 0; j < i; ++j) acc -= lu_(i, j) * y[j];
    y[i] = acc;
  }
  std::vector<Complex> x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    Complex acc = y[ii];
    for (std::size_t j = ii + 1; j < n; ++j) acc -= lu_(ii, j) * x[j];
    x[ii] = acc / lu_(ii, ii);
  }
  return x;
}

}  // namespace softfet::numeric
