#include "numeric/dense_matrix.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace softfet::numeric {

DenseMatrix::DenseMatrix(std::size_t rows, std::size_t cols) {
  resize(rows, cols);
}

void DenseMatrix::resize(std::size_t rows, std::size_t cols) {
  rows_ = rows;
  cols_ = cols;
  data_.assign(rows * cols, 0.0);
}

void DenseMatrix::set_zero() { std::fill(data_.begin(), data_.end(), 0.0); }

std::vector<double> DenseMatrix::multiply(const std::vector<double>& x) const {
  if (x.size() != cols_) throw Error("DenseMatrix::multiply: size mismatch");
  std::vector<double> y(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    const double* row = &data_[r * cols_];
    for (std::size_t c = 0; c < cols_; ++c) acc += row[c] * x[c];
    y[r] = acc;
  }
  return y;
}

double DenseMatrix::max_abs() const noexcept {
  double m = 0.0;
  for (double v : data_) m = std::max(m, std::fabs(v));
  return m;
}

}  // namespace softfet::numeric
