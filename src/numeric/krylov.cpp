#include "numeric/krylov.hpp"

#include <cmath>

#include "util/error.hpp"

namespace softfet::numeric {

namespace {

[[nodiscard]] double dot(const std::vector<double>& a,
                         const std::vector<double>& b) {
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

[[nodiscard]] double norm2(const std::vector<double>& v) {
  return std::sqrt(dot(v, v));
}

/// M^-1 v through the cached LU, or identity without a preconditioner.
[[nodiscard]] std::vector<double> apply_precond(const SparseLu* m,
                                                const std::vector<double>& v) {
  return m != nullptr ? m->solve(v) : v;
}

[[nodiscard]] std::size_t iteration_cap(const KrylovOptions& options,
                                        std::size_t n) {
  if (options.max_iterations != 0) return options.max_iterations;
  return std::max<std::size_t>(n, 200);
}

[[nodiscard]] bool finite(const std::vector<double>& v) {
  for (const double value : v) {
    if (!std::isfinite(value)) return false;
  }
  return true;
}

}  // namespace

KrylovResult conjugate_gradient(const SparseMatrix& a,
                                const std::vector<double>& b,
                                std::vector<double>& x, const SparseLu* m,
                                const KrylovOptions& options) {
  const std::size_t n = a.size();
  if (b.size() != n || x.size() != n) {
    throw Error("conjugate_gradient: size mismatch");
  }
  KrylovResult result;
  const double target = options.rtol * norm2(b) + options.atol;

  std::vector<double> r = a.multiply(x);
  for (std::size_t i = 0; i < n; ++i) r[i] = b[i] - r[i];
  result.residual_norm = norm2(r);
  if (result.residual_norm <= target) {
    result.converged = true;
    return result;
  }

  std::vector<double> z = apply_precond(m, r);
  std::vector<double> p = z;
  double rz = dot(r, z);

  const std::size_t cap = iteration_cap(options, n);
  for (std::size_t iter = 1; iter <= cap; ++iter) {
    result.iterations = iter;
    const std::vector<double> ap = a.multiply(p);
    const double pap = dot(p, ap);
    if (!(std::fabs(pap) > 0.0) || !std::isfinite(pap)) break;  // breakdown
    const double alpha = rz / pap;
    for (std::size_t i = 0; i < n; ++i) {
      x[i] += alpha * p[i];
      r[i] -= alpha * ap[i];
    }
    result.residual_norm = norm2(r);
    if (!std::isfinite(result.residual_norm)) break;
    if (result.residual_norm <= target) {
      result.converged = true;
      return result;
    }
    z = apply_precond(m, r);
    const double rz_next = dot(r, z);
    if (!std::isfinite(rz_next)) break;
    const double beta = rz_next / rz;
    rz = rz_next;
    for (std::size_t i = 0; i < n; ++i) p[i] = z[i] + beta * p[i];
  }
  return result;
}

KrylovResult bicgstab(const SparseMatrix& a, const std::vector<double>& b,
                      std::vector<double>& x, const SparseLu* m,
                      const KrylovOptions& options) {
  const std::size_t n = a.size();
  if (b.size() != n || x.size() != n) throw Error("bicgstab: size mismatch");
  KrylovResult result;
  const double target = options.rtol * norm2(b) + options.atol;

  std::vector<double> r = a.multiply(x);
  for (std::size_t i = 0; i < n; ++i) r[i] = b[i] - r[i];
  result.residual_norm = norm2(r);
  if (result.residual_norm <= target) {
    result.converged = true;
    return result;
  }

  const std::vector<double> r_hat = r;  // fixed shadow residual
  std::vector<double> p(n, 0.0);
  std::vector<double> v(n, 0.0);
  double rho = 1.0;
  double alpha = 1.0;
  double omega = 1.0;

  const std::size_t cap = iteration_cap(options, n);
  for (std::size_t iter = 1; iter <= cap; ++iter) {
    result.iterations = iter;
    const double rho_next = dot(r_hat, r);
    if (!(std::fabs(rho_next) > 0.0) || !std::isfinite(rho_next)) break;
    const double beta = (rho_next / rho) * (alpha / omega);
    rho = rho_next;
    for (std::size_t i = 0; i < n; ++i) {
      p[i] = r[i] + beta * (p[i] - omega * v[i]);
    }

    const std::vector<double> p_hat = apply_precond(m, p);
    v = a.multiply(p_hat);
    const double rv = dot(r_hat, v);
    if (!(std::fabs(rv) > 0.0) || !std::isfinite(rv)) break;
    alpha = rho / rv;

    std::vector<double> s = r;
    for (std::size_t i = 0; i < n; ++i) s[i] -= alpha * v[i];
    const double s_norm = norm2(s);
    if (s_norm <= target) {
      for (std::size_t i = 0; i < n; ++i) x[i] += alpha * p_hat[i];
      if (!finite(x)) break;
      result.residual_norm = s_norm;
      result.converged = true;
      return result;
    }

    const std::vector<double> s_hat = apply_precond(m, s);
    const std::vector<double> t = a.multiply(s_hat);
    const double tt = dot(t, t);
    if (!(tt > 0.0) || !std::isfinite(tt)) break;
    omega = dot(t, s) / tt;
    if (!(std::fabs(omega) > 0.0) || !std::isfinite(omega)) break;

    for (std::size_t i = 0; i < n; ++i) {
      x[i] += alpha * p_hat[i] + omega * s_hat[i];
      r[i] = s[i] - omega * t[i];
    }
    result.residual_norm = norm2(r);
    if (!std::isfinite(result.residual_norm) || !finite(x)) break;
    if (result.residual_norm <= target) {
      result.converged = true;
      return result;
    }
  }
  return result;
}

}  // namespace softfet::numeric
