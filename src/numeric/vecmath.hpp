// Branch-free, SIMD-friendly transcendental kernels for batched device
// evaluation under the relaxed-determinism mode (SimOptions::determinism =
// kRelaxedUlp).
//
// Why these exist: the batched lockstep engine (sim/batch) pins device
// model math scalar under the bitwise-identity contract — every lane must
// execute glibc's exact exp/log1p sequence — which caps Monte-Carlo
// throughput at the ≈2.8x Amdahl ceiling documented in EXPERIMENTS.md.
// These kernels trade that identity for a documented ULP bound: they are
// pure polynomial pipelines with no data-dependent branches, so a compiler
// auto-vectorizes the array forms across lanes, and a given input always
// produces the same output regardless of lane packing, lane width, or
// thread count (relaxed mode is still deterministic — it just rounds
// differently from libm).
//
// Structure: the scalar kernels (`exp_s`, ...) are defined inline here and
// are the single source of truth; the array forms (`exp_v`, ...) in
// vecmath.cpp are plain loops over them compiled with vectorization-
// friendly flags. Element i of every array form depends only on element i
// of the inputs, which is what makes relaxed-mode results independent of
// how the engine packs lanes.
//
// Clamping contract (matches the scalar device guards):
//  - exp_s clamps to [kExpArgMin, kExpArgMax] and selects 0 / +inf outside,
//    so no intermediate overflows even for the diode's pre-capped x<=80
//    range (devices::Diode::kExpCap) and the vswitch's clamp(z, -60, 60).
//  - softplus_s reproduces mosfet.cpp's overflow-safe softplus asymptote
//    (x + e^-x above x ~ 30) through the exact identity
//    softplus(x) = max(x, 0) + log1p(exp(-|x|)) instead of a branch.
//  - sigmoid_s is the sign-split logistic of mosfet.cpp, as a select.
//
// Documented accuracy (asserted by tests/numeric_vecmath_test.cpp against
// glibc over dense sweeps of the device clamp domains, subnormals, -0.0,
// and the infinities; NaN propagates):
//  - exp_s / expm1_s / log1p_s:            <= 4 ULP of the libm result
//  - softplus_s / sigmoid_s / exp_capped:  <= 8 ULP of the scalar device
//    formulas they replace (one extra rounding from the composition)
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <limits>

namespace softfet::numeric::vecmath {

/// exp() argument clamp: beyond these the true result is +inf / 0 anyway.
inline constexpr double kExpArgMax = 709.782712893383973096;   // < ln(DBL_MAX)
inline constexpr double kExpArgMin = -745.133219101941108420;  // > ln(denorm_min)

namespace detail {

// 2^52 * 1.5: adding then subtracting rounds to nearest integer without a
// float->int conversion (which would be UB for NaN and is a vector stall).
inline constexpr double kRoundMagic = 6755399441055744.0;
inline constexpr double kLog2E = 1.44269504088896340736;
// ln2 split Cody-Waite style so k*kLn2Hi is exact for |k| <= 2^20.
inline constexpr double kLn2Hi = 6.93147180369123816490e-01;
inline constexpr double kLn2Lo = 1.90821492927058770002e-10;

/// 2^k for integer k in [-1074, 1024], as two exactly-representable normal
/// factors (k split in halves keeps each exponent in range; the second
/// multiply performs the gradual underflow rounding for subnormal results).
struct PowTwoSplit {
  double hi;
  double lo;
};

[[nodiscard]] inline PowTwoSplit pow2_split(std::int64_t k) {
  const std::int64_t k1 = k >> 1;  // floor halve (negative k rounds down)
  const std::int64_t k2 = k - k1;
  PowTwoSplit s;
  s.hi = std::bit_cast<double>(static_cast<std::uint64_t>(k1 + 1023) << 52);
  s.lo = std::bit_cast<double>(static_cast<std::uint64_t>(k2 + 1023) << 52);
  return s;
}

/// Degree-13 Taylor polynomial of e^r on |r| <= ln2/2, Estrin scheme.
/// Truncation error < 0.03 ULP at the interval ends; the rounding error of
/// the evaluation dominates the kernel's total error.
[[nodiscard]] inline double exp_poly(double r) {
  const double c2 = 1.0 / 2.0;
  const double c3 = 1.0 / 6.0;
  const double c4 = 1.0 / 24.0;
  const double c5 = 1.0 / 120.0;
  const double c6 = 1.0 / 720.0;
  const double c7 = 1.0 / 5040.0;
  const double c8 = 1.0 / 40320.0;
  const double c9 = 1.0 / 362880.0;
  const double c10 = 1.0 / 3628800.0;
  const double c11 = 1.0 / 39916800.0;
  const double c12 = 1.0 / 479001600.0;
  const double c13 = 1.0 / 6227020800.0;
  const double r2 = r * r;
  const double r4 = r2 * r2;
  const double r8 = r4 * r4;
  const double q0 = (1.0 + r) + r2 * (c2 + r * c3);
  const double q1 = (c4 + r * c5) + r2 * (c6 + r * c7);
  const double q2 = (c8 + r * c9) + r2 * (c10 + r * c11);
  const double q3 = c12 + r * c13;
  return (q0 + r4 * q1) + r8 * (q2 + r4 * q3);
}

/// fdlibm log() kernel: R(z) for z = s^2, s = f/(2+f), 1+f in [0.75, 1.5);
/// log(1+f) = f - (hfsq - s*(hfsq + R)), hfsq = f^2/2.
[[nodiscard]] inline double log_poly(double z) {
  const double lg1 = 6.666666666666735130e-01;
  const double lg2 = 3.999999999940941908e-01;
  const double lg3 = 2.857142874366239149e-01;
  const double lg4 = 2.222219843214978396e-01;
  const double lg5 = 1.818357216161805012e-01;
  const double lg6 = 1.531383769920937332e-01;
  const double lg7 = 1.479819860511658591e-01;
  const double z2 = z * z;
  return z * ((lg1 + z * lg2) +
              z2 * ((lg3 + z * lg4) + z2 * ((lg5 + z * lg6) + z2 * lg7)));
}

}  // namespace detail

/// Branch-free exp. NaN propagates; x > kExpArgMax -> +inf; x < kExpArgMin
/// -> 0. Documented bound: <= 4 ULP vs glibc exp.
[[nodiscard]] inline double exp_s(double x) {
  // NaN fails both compares and passes through the polynomial as NaN.
  const double cx = (x > kExpArgMax) ? kExpArgMax
                                     : ((x < kExpArgMin) ? kExpArgMin : x);
  const double kd = cx * detail::kLog2E + detail::kRoundMagic;
  const auto k = static_cast<std::int64_t>(
      static_cast<std::int32_t>(std::bit_cast<std::uint64_t>(kd)));
  const double kdr = kd - detail::kRoundMagic;
  const double r = (cx - kdr * detail::kLn2Hi) - kdr * detail::kLn2Lo;
  const detail::PowTwoSplit scale = detail::pow2_split(k);
  double y = (detail::exp_poly(r) * scale.hi) * scale.lo;
  y = (x > kExpArgMax) ? std::numeric_limits<double>::infinity() : y;
  y = (x < kExpArgMin) ? 0.0 : y;
  return y;
}

/// Branch-free log1p. Domain behaviour matches libm: log1p(-1) = -inf,
/// x < -1 -> NaN, +inf -> +inf, +-0 -> +-0, NaN propagates. Documented
/// bound: <= 4 ULP vs glibc log1p.
[[nodiscard]] inline double log1p_s(double x) {
  const double inf = std::numeric_limits<double>::infinity();
  const double u_raw = 1.0 + x;
  // Keep the decomposition in the normal range even for u near 0 (x -> -1):
  // scale subnormal u up by 2^54 and fold the shift into k.
  const bool tiny = u_raw < std::numeric_limits<double>::min();
  // The rescale multiply is evaluated unconditionally (and selected away)
  // so the loop stays branch-free under the vectorizer's if-conversion.
  const double u_scaled = u_raw * 0x1p54;
  const double u = tiny ? u_scaled : u_raw;
  const std::uint64_t bits = std::bit_cast<std::uint64_t>(u);
  // Exponent split biased at sqrt(2)/2 (musl log style) so the mantissa
  // lands in [sqrt(2)/2, sqrt(2)) — the design range of the fdlibm
  // polynomial below (|s| <= 0.1716).
  const std::int64_t k_raw =
      static_cast<std::int64_t>(bits - 0x3fe6a09e00000000ULL) >> 52;
  const double m =
      std::bit_cast<double>(bits - (static_cast<std::uint64_t>(k_raw) << 52));
  const double k = static_cast<double>(k_raw - (tiny ? 54 : 0));
  // Low-order correction: the bits of x lost when forming 1 + x. For
  // |x| < 1 this is exact Sterbenz arithmetic; for huge u it recovers the
  // rounding error of u itself. The divide runs unconditionally on a
  // substituted-safe denominator (a divide under a condition would be real
  // control flow the vectorizer cannot if-convert); only the result is
  // selected away for the non-finite / non-positive edge cases.
  const bool c_ok = (u_raw > 0.0) && (u_raw < inf);
  const double c_den = c_ok ? u_raw : 1.0;
  const double c_q = (x - (u_raw - 1.0)) / c_den;
  const double c = c_ok ? c_q : 0.0;

  const double f = m - 1.0;
  const double hfsq = 0.5 * f * f;
  const double s = f / (2.0 + f);
  const double big_r = detail::log_poly(s * s);
  double y = k * detail::kLn2Hi -
             ((hfsq - (s * (hfsq + big_r) + (k * detail::kLn2Lo + c))) - f);
  y = (u_raw == 0.0) ? -inf : y;                    // x == -1
  y = (u_raw < 0.0) ? std::numeric_limits<double>::quiet_NaN() : y;  // x < -1
  y = (x == inf) ? inf : y;
  y = (x != x) ? x : y;   // NaN in, NaN out (the c-select above masked it)
  y = (x == 0.0) ? x : y; // preserve the sign of +-0
  return y;
}

/// Branch-free expm1 via a small-|x| Taylor path and exp_s(x) - 1 outside,
/// fused by a select (both sides are always finite to compute). Documented
/// bound: <= 4 ULP vs glibc expm1.
[[nodiscard]] inline double expm1_s(double x) {
  // Small path: degree-15 Taylor of e^x - 1 on |x| <= 0.5 (truncation
  // < 0.01 ULP there). Evaluated in Horner-on-x^2 Estrin style.
  const double c2 = 1.0 / 2.0;
  const double c3 = 1.0 / 6.0;
  const double c4 = 1.0 / 24.0;
  const double c5 = 1.0 / 120.0;
  const double c6 = 1.0 / 720.0;
  const double c7 = 1.0 / 5040.0;
  const double c8 = 1.0 / 40320.0;
  const double c9 = 1.0 / 362880.0;
  const double c10 = 1.0 / 3628800.0;
  const double c11 = 1.0 / 39916800.0;
  const double c12 = 1.0 / 479001600.0;
  const double c13 = 1.0 / 6227020800.0;
  const double c14 = 1.0 / 87178291200.0;
  const double c15 = 1.0 / 1307674368000.0;
  const double x2 = x * x;
  const double x4 = x2 * x2;
  const double x8 = x4 * x4;
  const double q0 = c2 + x * c3 + x2 * (c4 + x * c5);
  const double q1 = (c6 + x * c7) + x2 * (c8 + x * c9);
  const double q2 = (c10 + x * c11) + x2 * (c12 + x * c13);
  const double q3 = c14 + x * c15;
  const double small = x + x2 * ((q0 + x4 * q1) + x8 * (q2 + x4 * q3));
  const double big = exp_s(x) - 1.0;
  // |x| < 0.5 comparison is false for NaN -> big path -> NaN propagates.
  const double ax = (x < 0.0) ? -x : x;
  const double y = (ax < 0.5) ? small : big;
  return (x == 0.0) ? x : y;  // preserve the sign of +-0 like libm
}

/// Overflow-safe softplus ln(1 + e^x) == max(x, 0) + log1p(e^-|x|),
/// branch-free. Matches mosfet.cpp's guarded softplus to <= 8 ULP
/// (including its x > 30 asymptote x + e^-x, which differs from the exact
/// value by < 1e-27 relative there).
[[nodiscard]] inline double softplus_s(double x) {
  const double ax = (x < 0.0) ? -x : x;        // NaN stays NaN
  const double pos = (x > 0.0) ? x : 0.0;      // NaN -> 0, repoisoned below
  return pos + log1p_s(exp_s(-ax));
}

/// Branch-free logistic 1/(1 + e^-x), the sign-split form of mosfet.cpp.
/// <= 8 ULP of the scalar formula; NaN propagates.
[[nodiscard]] inline double sigmoid_s(double x) {
  const double ax = (x < 0.0) ? -x : x;
  const double e = exp_s(-ax);            // in (0, 1]
  const double denom = 1.0 + e;
  // x >= 0: 1/(1+e^-x); x < 0: e^x/(1+e^x). NaN picks either - both NaN.
  return (x >= 0.0) ? 1.0 / denom : e / denom;
}

/// Fused softplus + sigmoid sharing one exp and one log1p — the EKV model
/// needs both of the same argument, and this halves the transcendental
/// work of the mosfet hot path.
inline void softplus_sigmoid_s(double x, double& sp, double& sg) {
  const double ax = (x < 0.0) ? -x : x;
  const double e = exp_s(-ax);
  const double pos = (x > 0.0) ? x : 0.0;
  const double l = log1p_s(e);
  sp = pos + l;
  sg = (x >= 0.0) ? 1.0 / (1.0 + e) : e / (1.0 + e);
  // Repoison: pos/l are partially non-NaN for NaN x via the selects above.
  sp = (x != x) ? x : sp;
  sg = (x != x) ? x : sg;
}

/// Diode-style capped exponential: e(x) = exp(x) for x <= cap, linearly
/// extended exp(cap)*(1 + (x - cap)) above; de is its derivative (== the
/// clamped exp in both regions). Matches devices/diode.cpp exp_safe /
/// exp_safe_deriv including their NaN behaviour (e NaN, de finite).
inline void exp_capped_s(double x, double cap, double& e, double& de) {
  const double cx = (x <= cap) ? x : cap;   // NaN -> cap, like the scalar guard
  const double e0 = exp_s(cx);
  de = e0;
  e = (x <= cap) ? e0 : e0 * (1.0 + (x - cap));
}

// --- Array forms (vecmath.cpp): element i depends only on input i. -------
// Input and output arrays must not alias (the implementations carry
// __restrict so the auto-vectorizer can skip runtime overlap checks).

void exp_v(const double* x, double* y, std::size_t n);
void expm1_v(const double* x, double* y, std::size_t n);
void log1p_v(const double* x, double* y, std::size_t n);
void softplus_v(const double* x, double* y, std::size_t n);
void sigmoid_v(const double* x, double* y, std::size_t n);
/// sp[i] = softplus(x[i]), sg[i] = sigmoid(x[i]) from one shared exp/log1p.
void softplus_sigmoid_v(const double* x, double* sp, double* sg,
                        std::size_t n);
/// e[i]/de[i] = capped exponential and derivative (diode contract above).
void exp_capped_v(const double* x, double cap, double* e, double* de,
                  std::size_t n);

}  // namespace softfet::numeric::vecmath
