// Fill-reducing ordering for sparse LU factorization.
//
// Natural (stamping) order is catastrophic for 2-D mesh matrices: banded
// elimination fills the whole band, so a rows x cols PDN grid pays
// O(n * cols) factor nonzeros and O(n * cols^2) factor work. An
// approximate-minimum-degree (AMD) permutation keeps the factor within a
// few multiples of the input nonzeros on mesh-like graphs, which is the
// difference between "hundreds of unknowns" and "tens of thousands".
//
// amd_order() implements minimum degree over the quotient (element) graph
// with Amestoy/Davis/Duff-style approximate external degrees and element
// absorption. Ties break on the lowest original index, so the permutation
// is a pure function of the pattern — identical across platforms and runs,
// which the bitwise-reproducibility contract of the simulator requires.
//
// symbolic_fill() predicts nnz(L+U) of a no-pivoting elimination of the
// symmetrized pattern under a given order. It is how benchmarks compare
// orderings without paying for the bad factorization, and how the solver's
// auto policy can judge a factorization it has not yet committed to.
#pragma once

#include <cstddef>
#include <vector>

#include "numeric/sparse_matrix.hpp"

namespace softfet::numeric {

/// Which column/row ordering a factorization applies ahead of its symbolic
/// phase.
enum class OrderingKind {
  kNatural,  ///< stamp order — exactly the pre-ordering behavior
  kAmd,      ///< always apply the AMD permutation
  kAuto,     ///< AMD at or above SparseLu::kAutoOrderingThreshold unknowns
};

[[nodiscard]] const char* to_string(OrderingKind ordering);

/// Symmetrized adjacency (union of the pattern and its transpose, no self
/// loops) of a square sparse pattern; index = node, values sorted ascending.
[[nodiscard]] std::vector<std::vector<std::size_t>> pattern_adjacency(
    const SparseMatrix& a);

/// Approximate-minimum-degree permutation of a symmetric adjacency
/// structure: order[k] is the original index eliminated at step k.
/// Deterministic (lowest-index tie-break).
[[nodiscard]] std::vector<std::size_t> amd_order(
    const std::vector<std::vector<std::size_t>>& adjacency);

/// Convenience: symmetrize `a`'s pattern and order it.
[[nodiscard]] std::vector<std::size_t> amd_order(const SparseMatrix& a);

/// Structural nnz(L+U) (diagonal counted once) of eliminating the
/// symmetrized pattern in `order` without pivoting. An exact count for
/// symmetric-pattern matrices; a lower bound once partial pivoting departs
/// from the diagonal.
[[nodiscard]] std::size_t symbolic_fill(
    const std::vector<std::vector<std::size_t>>& adjacency,
    const std::vector<std::size_t>& order);

/// symbolic_fill of the natural (identity) order.
[[nodiscard]] std::size_t symbolic_fill_natural(
    const std::vector<std::vector<std::size_t>>& adjacency);

}  // namespace softfet::numeric
