// Fill-reducing ordering for sparse LU factorization.
//
// Natural (stamping) order is catastrophic for 2-D mesh matrices: banded
// elimination fills the whole band, so a rows x cols PDN grid pays
// O(n * cols) factor nonzeros and O(n * cols^2) factor work. An
// approximate-minimum-degree (AMD) permutation keeps the factor within a
// few multiples of the input nonzeros on mesh-like graphs, which is the
// difference between "hundreds of unknowns" and "tens of thousands".
//
// amd_order() implements minimum degree over the quotient (element) graph
// with Amestoy/Davis/Duff-style approximate external degrees and element
// absorption. Ties break on the lowest original index, so the permutation
// is a pure function of the pattern — identical across platforms and runs,
// which the bitwise-reproducibility contract of the simulator requires.
//
// symbolic_fill() predicts nnz(L+U) of a no-pivoting elimination of the
// symmetrized pattern under a given order. It is how benchmarks compare
// orderings without paying for the bad factorization, and how the solver's
// auto policy can judge a factorization it has not yet committed to.
#pragma once

#include <cstddef>
#include <memory>
#include <mutex>
#include <vector>

#include "numeric/sparse_matrix.hpp"

namespace softfet::numeric {

/// Which column/row ordering a factorization applies ahead of its symbolic
/// phase.
enum class OrderingKind {
  kNatural,  ///< stamp order — exactly the pre-ordering behavior
  kAmd,      ///< always apply the AMD permutation
  kAuto,     ///< AMD at or above SparseLu::kAutoOrderingThreshold unknowns
};

[[nodiscard]] const char* to_string(OrderingKind ordering);

/// Symmetrized adjacency (union of the pattern and its transpose, no self
/// loops) of a square sparse pattern; index = node, values sorted ascending.
[[nodiscard]] std::vector<std::vector<std::size_t>> pattern_adjacency(
    const SparseMatrix& a);

/// Approximate-minimum-degree permutation of a symmetric adjacency
/// structure: order[k] is the original index eliminated at step k.
/// Deterministic (lowest-index tie-break).
[[nodiscard]] std::vector<std::size_t> amd_order(
    const std::vector<std::vector<std::size_t>>& adjacency);

/// Convenience: symmetrize `a`'s pattern and order it.
[[nodiscard]] std::vector<std::size_t> amd_order(const SparseMatrix& a);

/// Structural nnz(L+U) (diagonal counted once) of eliminating the
/// symmetrized pattern in `order` without pivoting. An exact count for
/// symmetric-pattern matrices; a lower bound once partial pivoting departs
/// from the diagonal.
[[nodiscard]] std::size_t symbolic_fill(
    const std::vector<std::vector<std::size_t>>& adjacency,
    const std::vector<std::size_t>& order);

/// symbolic_fill of the natural (identity) order.
[[nodiscard]] std::size_t symbolic_fill_natural(
    const std::vector<std::vector<std::size_t>>& adjacency);

/// Cross-solver memo of AMD permutations, keyed by the *exact* sparsity
/// pattern (row pointers + column indices, compared bitwise — no hash
/// collisions by construction). amd_order is a pure deterministic function
/// of the pattern, so a hit returns exactly the permutation a fresh
/// computation would, keeping results bitwise identical whether or not the
/// cache is attached.
///
/// Built for the simulation service: every request elaborating the same
/// netlist produces the same MNA pattern, and the AMD analysis of a big
/// mesh dominates the first factorization. One OrderingCache instance per
/// cached netlist (shared via SimOptions::ordering_cache) lets later
/// requests skip straight to the numeric work. Thread-safe; entries are
/// LRU-bounded so a daemon serving many patterns stays at fixed memory.
class OrderingCache {
 public:
  explicit OrderingCache(std::size_t max_entries = 8)
      : max_entries_(max_entries == 0 ? 1 : max_entries) {}

  /// The AMD permutation for `a`'s symmetrized pattern: served from the
  /// memo on an exact pattern match, computed (and stored) otherwise.
  [[nodiscard]] std::shared_ptr<const std::vector<std::size_t>> order_for(
      const SparseMatrix& a);

  [[nodiscard]] std::size_t hits() const;
  [[nodiscard]] std::size_t misses() const;
  [[nodiscard]] std::size_t entries() const;
  [[nodiscard]] std::size_t max_entries() const noexcept {
    return max_entries_;
  }

 private:
  struct Entry {
    std::vector<std::size_t> row_ptr;  ///< pattern key: per-row extents...
    std::vector<std::size_t> cols;     ///< ...and flattened column indices
    std::shared_ptr<const std::vector<std::size_t>> order;
    std::size_t last_used = 0;
  };

  std::size_t max_entries_;
  mutable std::mutex mutex_;
  std::vector<Entry> entries_vec_;
  std::size_t tick_ = 0;
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
};

}  // namespace softfet::numeric
