#include "numeric/ordering.hpp"

#include <algorithm>
#include <limits>
#include <queue>

#include "util/error.hpp"

namespace softfet::numeric {

namespace {

/// Epoch-stamped membership set: clear() is O(1), test/insert O(1).
class MarkSet {
 public:
  explicit MarkSet(std::size_t n) : stamp_(n, 0) {}

  void clear() noexcept { ++epoch_; }
  void insert(std::size_t i) noexcept { stamp_[i] = epoch_; }
  [[nodiscard]] bool contains(std::size_t i) const noexcept {
    return stamp_[i] == epoch_;
  }

 private:
  std::vector<std::size_t> stamp_;
  std::size_t epoch_ = 1;
};

}  // namespace

const char* to_string(OrderingKind ordering) {
  switch (ordering) {
    case OrderingKind::kNatural: return "natural";
    case OrderingKind::kAmd: return "amd";
    case OrderingKind::kAuto: return "auto";
  }
  return "unknown";
}

std::vector<std::vector<std::size_t>> pattern_adjacency(
    const SparseMatrix& a) {
  const std::size_t n = a.size();
  std::vector<std::vector<std::size_t>> adj(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (const auto& [col, value] : a.row(i)) {
      (void)value;
      if (col == i) continue;
      adj[i].push_back(col);
      adj[col].push_back(i);
    }
  }
  for (auto& neighbors : adj) {
    std::sort(neighbors.begin(), neighbors.end());
    neighbors.erase(std::unique(neighbors.begin(), neighbors.end()),
                    neighbors.end());
  }
  return adj;
}

std::vector<std::size_t> amd_order(
    const std::vector<std::vector<std::size_t>>& adjacency) {
  const std::size_t n = adjacency.size();
  std::vector<std::size_t> order;
  order.reserve(n);
  if (n == 0) return order;

  // Quotient-graph state. A variable i sees plain variable neighbors
  // (var_adj, lazily pruned) plus elements (former pivots) whose member
  // lists stand in for the cliques elimination created. An element that is
  // swallowed by a newer element is "absorbed" and skipped everywhere.
  std::vector<std::vector<std::size_t>> var_adj = adjacency;
  std::vector<std::vector<std::size_t>> var_elems(n);
  std::vector<std::vector<std::size_t>> elem_vars(n);
  std::vector<bool> eliminated(n, false);
  std::vector<bool> absorbed(n, false);
  std::vector<std::size_t> degree(n);
  for (std::size_t i = 0; i < n; ++i) degree[i] = adjacency[i].size();

  // Min-heap of (approximate degree, index) with lazy invalidation: stale
  // entries (degree moved on, or already eliminated) are skipped at pop.
  using Entry = std::pair<std::size_t, std::size_t>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  for (std::size_t i = 0; i < n; ++i) heap.emplace(degree[i], i);

  MarkSet in_pivot_clique(n);  // members of the element being formed
  MarkSet seen_elem(n);        // elements already counted this round
  std::vector<std::size_t> external(n, 0);  // |L_e \ L_p| scratch per round
  std::vector<std::size_t> clique;          // L_p of the current pivot
  std::vector<std::size_t> touched_elems;

  const auto prune_eliminated = [&](std::vector<std::size_t>& vars) {
    vars.erase(std::remove_if(vars.begin(), vars.end(),
                              [&](std::size_t v) { return eliminated[v]; }),
               vars.end());
  };

  for (std::size_t k = 0; k < n; ++k) {
    // Select the minimum-degree variable (deterministic: the heap orders by
    // (degree, index) and stale entries are discarded).
    std::size_t p = n;
    while (!heap.empty()) {
      const auto [d, i] = heap.top();
      heap.pop();
      if (!eliminated[i] && degree[i] == d) {
        p = i;
        break;
      }
    }
    if (p == n) throw Error("amd_order: heap exhausted before all nodes");

    // Form L_p: live variables adjacent to p directly or through any of
    // p's elements.
    clique.clear();
    in_pivot_clique.clear();
    in_pivot_clique.insert(p);
    for (const std::size_t v : var_adj[p]) {
      if (eliminated[v] || in_pivot_clique.contains(v)) continue;
      in_pivot_clique.insert(v);
      clique.push_back(v);
    }
    for (const std::size_t e : var_elems[p]) {
      if (absorbed[e]) continue;
      for (const std::size_t v : elem_vars[e]) {
        if (eliminated[v] || in_pivot_clique.contains(v)) continue;
        in_pivot_clique.insert(v);
        clique.push_back(v);
      }
      absorbed[e] = true;  // the new element supersedes it
    }

    // External-size pass (the AMD trick): for every live element e touching
    // the clique, external[e] = |L_e \ L_p| after one decrement per shared
    // member. Prunes dead vars from the touched element lists as it goes.
    seen_elem.clear();
    touched_elems.clear();
    for (const std::size_t i : clique) {
      for (const std::size_t e : var_elems[i]) {
        if (absorbed[e] || seen_elem.contains(e)) continue;
        seen_elem.insert(e);
        prune_eliminated(elem_vars[e]);
        external[e] = elem_vars[e].size();
        touched_elems.push_back(e);
      }
    }
    for (const std::size_t i : clique) {
      for (const std::size_t e : var_elems[i]) {
        if (!absorbed[e]) --external[e];
      }
    }

    eliminated[p] = true;
    order.push_back(p);
    elem_vars[p] = clique;
    var_adj[p].clear();
    var_adj[p].shrink_to_fit();
    var_elems[p].clear();

    // Update every clique member: prune its variable adjacency of edges the
    // new element now covers, compact its element list, and recompute the
    // approximate external degree
    //   d_i = |A_i| + |L_p \ {i}| + sum over other elements |L_e \ L_p|.
    for (const std::size_t i : clique) {
      auto& vars = var_adj[i];
      vars.erase(std::remove_if(vars.begin(), vars.end(),
                                [&](std::size_t v) {
                                  return eliminated[v] ||
                                         in_pivot_clique.contains(v);
                                }),
                 vars.end());

      auto& elems = var_elems[i];
      elems.erase(std::remove_if(elems.begin(), elems.end(),
                                 [&](std::size_t e) { return absorbed[e]; }),
                  elems.end());

      std::size_t d = vars.size() + (clique.size() - 1);
      for (const std::size_t e : elems) d += external[e];
      elems.push_back(p);

      d = std::min(d, n - k - 1);
      if (d != degree[i]) {
        degree[i] = d;
        heap.emplace(d, i);
      }
    }
  }
  return order;
}

std::vector<std::size_t> amd_order(const SparseMatrix& a) {
  return amd_order(pattern_adjacency(a));
}

std::size_t symbolic_fill(const std::vector<std::vector<std::size_t>>& adjacency,
                          const std::vector<std::size_t>& order) {
  const std::size_t n = adjacency.size();
  if (order.size() != n) throw Error("symbolic_fill: order size mismatch");

  // Simulated elimination over reach sets: when v is eliminated its live
  // neighbors become a clique. Row v of L+U holds v's live neighbors (upper
  // and lower meet by symmetry) plus the diagonal.
  std::vector<std::size_t> position(n);
  for (std::size_t k = 0; k < n; ++k) position[order[k]] = k;

  std::vector<std::vector<std::size_t>> reach = adjacency;
  std::vector<bool> eliminated(n, false);
  MarkSet members(n);
  std::vector<std::size_t> live;
  std::size_t nnz = 0;

  for (const std::size_t v : order) {
    live.clear();
    members.clear();
    members.insert(v);
    for (const std::size_t u : reach[v]) {
      if (eliminated[u] || members.contains(u)) continue;
      members.insert(u);
      live.push_back(u);
    }
    // Row + column of v in the factor: one diagonal, then each live
    // neighbor appears once above and once below.
    nnz += 1 + 2 * live.size();
    eliminated[v] = true;
    reach[v].clear();
    reach[v].shrink_to_fit();

    // Connect the live neighbors pairwise. Appending v's clique list to
    // each member (minus itself) and pruning lazily keeps this near the
    // cost of the produced fill.
    for (const std::size_t u : live) {
      auto& r = reach[u];
      r.erase(std::remove_if(r.begin(), r.end(),
                             [&](std::size_t w) {
                               return eliminated[w] || members.contains(w);
                             }),
              r.end());
      for (const std::size_t w : live) {
        if (w != u) r.push_back(w);
      }
    }
  }
  return nnz;
}

std::size_t symbolic_fill_natural(
    const std::vector<std::vector<std::size_t>>& adjacency) {
  std::vector<std::size_t> order(adjacency.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  return symbolic_fill(adjacency, order);
}

namespace {

/// Flatten a SparseMatrix pattern into (row_ptr, cols) — the exact-match
/// cache key. Row maps iterate in ascending column order, so the key is
/// canonical for a given pattern.
void pattern_key(const SparseMatrix& a, std::vector<std::size_t>& row_ptr,
                 std::vector<std::size_t>& cols) {
  const std::size_t n = a.size();
  row_ptr.clear();
  row_ptr.reserve(n + 1);
  cols.clear();
  row_ptr.push_back(0);
  for (std::size_t i = 0; i < n; ++i) {
    for (const auto& [col, value] : a.row(i)) {
      (void)value;
      cols.push_back(col);
    }
    row_ptr.push_back(cols.size());
  }
}

}  // namespace

std::shared_ptr<const std::vector<std::size_t>> OrderingCache::order_for(
    const SparseMatrix& a) {
  std::vector<std::size_t> row_ptr;
  std::vector<std::size_t> cols;
  pattern_key(a, row_ptr, cols);

  {
    const std::lock_guard<std::mutex> lock(mutex_);
    ++tick_;
    for (auto& entry : entries_vec_) {
      if (entry.row_ptr == row_ptr && entry.cols == cols) {
        entry.last_used = tick_;
        ++hits_;
        return entry.order;
      }
    }
    ++misses_;
  }

  // Compute outside the lock: AMD on a big mesh is the expensive part, and
  // two threads racing on the same new pattern both produce the identical
  // permutation (amd_order is deterministic), so a duplicate store is
  // harmless — the second one just replaces an equal entry.
  auto order =
      std::make_shared<const std::vector<std::size_t>>(amd_order(a));

  const std::lock_guard<std::mutex> lock(mutex_);
  for (auto& entry : entries_vec_) {
    if (entry.row_ptr == row_ptr && entry.cols == cols) {
      entry.last_used = ++tick_;
      return entry.order;  // racer won; identical contents
    }
  }
  if (entries_vec_.size() >= max_entries_) {
    // Evict the least recently used entry to stay within the bound.
    auto lru = entries_vec_.begin();
    for (auto it = entries_vec_.begin(); it != entries_vec_.end(); ++it) {
      if (it->last_used < lru->last_used) lru = it;
    }
    entries_vec_.erase(lru);
  }
  entries_vec_.push_back(Entry{std::move(row_ptr), std::move(cols), order,
                               ++tick_});
  return order;
}

std::size_t OrderingCache::hits() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

std::size_t OrderingCache::misses() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return misses_;
}

std::size_t OrderingCache::entries() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return entries_vec_.size();
}

}  // namespace softfet::numeric
