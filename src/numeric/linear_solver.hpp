// Linear-solver facade: picks a dense or sparse LU based on system size,
// and a direct or preconditioned-iterative strategy based on policy.
//
// The solver is stateful: it caches the sparse symbolic analysis (pattern,
// fill-reducing permutation, pivot order, fill structure) and the dense
// workspaces across calls, so a Newton loop — or a whole transient — that
// repeatedly solves systems with the same sparsity pattern pays for the
// analysis once and then takes the numeric-only refactorization path. One
// LinearSolver should live per analysis (per circuit); sharing across
// unrelated patterns is safe but forfeits the caching.
//
// Policies:
//  - kDirect     factor + solve every call (the default; bitwise identical
//                to the historical behavior for small circuits).
//  - kIterative  keep the last LU as a Krylov preconditioner: each call
//                tries BiCGSTAB with the cached (possibly stale) factors
//                and only refactors when the iteration fails to converge.
//  - kAuto       direct until an analysis reports explosive fill
//                (fill_ratio > auto_fill_ratio on a system of at least
//                auto_min_unknowns), then behaves as kIterative.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "numeric/dense_lu.hpp"
#include "numeric/krylov.hpp"
#include "numeric/ordering.hpp"
#include "numeric/sparse_lu.hpp"
#include "numeric/sparse_matrix.hpp"

namespace softfet::numeric {

enum class SolverKind {
  kAuto,    ///< dense below kDenseThreshold unknowns, sparse above
  kDense,
  kSparse,
};

/// Direct / iterative strategy selection (see file comment).
enum class SolverPolicy {
  kDirect,
  kIterative,
  kAuto,
};

[[nodiscard]] const char* to_string(SolverPolicy policy);

/// Full facade configuration. SimOptions carries the kind/policy/ordering
/// knobs; the tuning fields have defaults that suit MNA systems.
struct LinearSolverConfig {
  SolverKind kind = SolverKind::kAuto;
  SolverPolicy policy = SolverPolicy::kDirect;
  OrderingKind ordering = OrderingKind::kAuto;
  /// Krylov convergence target relative to ||b|| — tight, because Newton
  /// treats the result as an exact solve.
  double krylov_rtol = 1e-12;
  /// Krylov iteration cap per solve before falling back to a refactor.
  std::size_t krylov_max_iterations = 120;
  /// kAuto goes iterative when a direct analysis exceeds this fill ratio…
  double auto_fill_ratio = 16.0;
  /// …on a system with at least this many unknowns.
  std::size_t auto_min_unknowns = 256;
  /// Optional shared AMD-permutation memo (see numeric::OrderingCache).
  /// Null (the default) computes orderings per solver, the historical
  /// behavior; attaching one never changes results, only latency.
  std::shared_ptr<OrderingCache> ordering_cache;
};

/// Counters describing the linear-solve work of one analysis run.
struct LinearSolverStats {
  std::size_t symbolic_analyses = 0;  ///< full symbolic+numeric analyses
  std::size_t refactorizations = 0;   ///< numeric-only refactor passes
  double fill_ratio = 0.0;            ///< nnz(L+U)/nnz(A) of last analysis
  bool reordered = false;             ///< last analysis used AMD
  std::size_t direct_solves = 0;      ///< solves answered by LU alone
  std::size_t krylov_solves = 0;      ///< solves answered by Krylov
  std::size_t krylov_iterations = 0;  ///< cumulative Krylov iterations
  std::size_t krylov_fallbacks = 0;   ///< Krylov failures -> fresh factor
};

/// Factor-and-solve facade over DenseLu / SparseLu / Krylov with cached
/// state.
class LinearSolver {
 public:
  /// kAuto switches to the CSR path above this many unknowns. Kept small:
  /// the cached refactorization beats a fresh dense factor well before the
  /// O(n^3) crossover because it skips pivot search and densification.
  static constexpr std::size_t kDenseThreshold = 16;

  explicit LinearSolver(SolverKind kind = SolverKind::kAuto)
      : LinearSolver(config_for(kind)) {}

  [[nodiscard]] static LinearSolverConfig config_for(SolverKind kind) {
    LinearSolverConfig config;
    config.kind = kind;
    return config;
  }

  explicit LinearSolver(const LinearSolverConfig& config) : config_(config) {
    sparse_.set_ordering(config.ordering);
    sparse_.set_ordering_cache(config.ordering_cache);
  }

  /// Factor `a` (reusing cached structure when the pattern is unchanged)
  /// and solve a·x = b. Under an iterative policy the factorization may be
  /// a stale preconditioner and the answer comes from BiCGSTAB.
  [[nodiscard]] std::vector<double> solve(const SparseMatrix& a,
                                          const std::vector<double>& b);

  /// Drop cached factorization state (e.g. before reusing this solver for a
  /// circuit with a different sparsity pattern).
  void invalidate() noexcept { sparse_.invalidate(); }

  [[nodiscard]] SolverKind kind() const noexcept { return config_.kind; }
  [[nodiscard]] const LinearSolverConfig& config() const noexcept {
    return config_;
  }

  /// Cached sparse factorization (analyze/refactor counters for tests and
  /// benchmarks). Only meaningful after a sparse-path solve.
  [[nodiscard]] const SparseLu& sparse() const noexcept { return sparse_; }

  /// Lifetime counters for diagnostics and perf reporting.
  [[nodiscard]] LinearSolverStats stats() const noexcept;

  /// True once a kAuto policy has tripped into iterative mode.
  [[nodiscard]] bool iterative_active() const noexcept {
    return config_.policy == SolverPolicy::kIterative ||
           (config_.policy == SolverPolicy::kAuto && auto_iterative_);
  }

 private:
  LinearSolverConfig config_;
  SparseLu sparse_;
  DenseMatrix dense_;
  DenseLu dense_lu_;
  bool auto_iterative_ = false;
  std::size_t direct_solves_ = 0;
  std::size_t krylov_solves_ = 0;
  std::size_t krylov_iterations_ = 0;
  std::size_t krylov_fallbacks_ = 0;
};

}  // namespace softfet::numeric
