// Linear-solver facade: picks a dense or sparse LU based on system size.
//
// The solver is stateful: it caches the sparse symbolic analysis (pattern,
// pivot order, fill structure) and the dense workspaces across calls, so a
// Newton loop — or a whole transient — that repeatedly solves systems with
// the same sparsity pattern pays for the analysis once and then takes the
// numeric-only refactorization path. One LinearSolver should live per
// analysis (per circuit); sharing across unrelated patterns is safe but
// forfeits the caching.
#pragma once

#include <cstddef>
#include <vector>

#include "numeric/dense_lu.hpp"
#include "numeric/sparse_lu.hpp"
#include "numeric/sparse_matrix.hpp"

namespace softfet::numeric {

enum class SolverKind {
  kAuto,    ///< dense below kDenseThreshold unknowns, sparse above
  kDense,
  kSparse,
};

/// Factor-and-solve facade over DenseLu / SparseLu with cached state.
class LinearSolver {
 public:
  /// kAuto switches to the CSR path above this many unknowns. Kept small:
  /// the cached refactorization beats a fresh dense factor well before the
  /// O(n^3) crossover because it skips pivot search and densification.
  static constexpr std::size_t kDenseThreshold = 16;

  explicit LinearSolver(SolverKind kind = SolverKind::kAuto) : kind_(kind) {}

  /// Factor `a` (reusing cached structure when the pattern is unchanged)
  /// and solve a·x = b.
  [[nodiscard]] std::vector<double> solve(const SparseMatrix& a,
                                          const std::vector<double>& b);

  /// Drop cached factorization state (e.g. before reusing this solver for a
  /// circuit with a different sparsity pattern).
  void invalidate() noexcept { sparse_.invalidate(); }

  [[nodiscard]] SolverKind kind() const noexcept { return kind_; }

  /// Cached sparse factorization (analyze/refactor counters for tests and
  /// benchmarks). Only meaningful after a sparse-path solve.
  [[nodiscard]] const SparseLu& sparse() const noexcept { return sparse_; }

 private:
  SolverKind kind_;
  SparseLu sparse_;
  DenseMatrix dense_;
  DenseLu dense_lu_;
};

}  // namespace softfet::numeric
