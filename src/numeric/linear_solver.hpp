// Linear-solver facade: picks a dense or sparse LU based on system size.
#pragma once

#include <cstddef>
#include <vector>

#include "numeric/sparse_matrix.hpp"

namespace softfet::numeric {

enum class SolverKind {
  kAuto,    ///< dense below kDenseThreshold unknowns, sparse above
  kDense,
  kSparse,
};

/// Factor-and-solve facade over DenseLu / SparseLu.
class LinearSolver {
 public:
  static constexpr std::size_t kDenseThreshold = 128;

  explicit LinearSolver(SolverKind kind = SolverKind::kAuto)
      : kind_(kind) {}

  /// Factor `a` and solve a·x = b in one call.
  [[nodiscard]] std::vector<double> solve(const SparseMatrix& a,
                                          const std::vector<double>& b) const;

 private:
  SolverKind kind_;
};

}  // namespace softfet::numeric
