#include "numeric/sparse_lu.hpp"

#include <cmath>
#include <limits>

#include "util/error.hpp"

namespace softfet::numeric {

SparseLu::SparseLu(const SparseMatrix& a) {
  const std::size_t n = a.size();
  rows_.resize(n);
  perm_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    rows_[i] = a.row(i);
    perm_[i] = i;
  }
  min_pivot_ = std::numeric_limits<double>::infinity();

  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivoting: among rows i >= k, pick the largest |a[i][k]|.
    std::size_t pivot_row = n;
    double pivot_mag = 0.0;
    for (std::size_t i = k; i < n; ++i) {
      const auto it = rows_[i].find(k);
      if (it == rows_[i].end()) continue;
      const double mag = std::fabs(it->second);
      if (mag > pivot_mag) {
        pivot_mag = mag;
        pivot_row = i;
      }
    }
    if (pivot_row == n || !(pivot_mag > 0.0) || !std::isfinite(pivot_mag)) {
      throw ConvergenceError("SparseLu: singular matrix at column " +
                             std::to_string(k));
    }
    min_pivot_ = std::min(min_pivot_, pivot_mag);
    if (pivot_row != k) {
      std::swap(rows_[k], rows_[pivot_row]);
      std::swap(perm_[k], perm_[pivot_row]);
    }

    const auto& pivot_entries = rows_[k];
    const double pivot = pivot_entries.at(k);
    for (std::size_t i = k + 1; i < n; ++i) {
      auto& row = rows_[i];
      const auto it = row.find(k);
      if (it == row.end()) continue;
      const double factor = it->second / pivot;
      it->second = factor;  // store the L entry in place
      if (factor == 0.0) continue;
      // row_i -= factor * pivot_row for columns > k (fill-in allowed).
      for (auto pit = pivot_entries.upper_bound(k); pit != pivot_entries.end();
           ++pit) {
        row[pit->first] -= factor * pit->second;
      }
    }
  }
}

std::vector<double> SparseLu::solve(const std::vector<double>& b) const {
  const std::size_t n = rows_.size();
  if (b.size() != n) throw Error("SparseLu::solve: size mismatch");

  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double acc = b[perm_[i]];
    const auto& row = rows_[i];
    for (auto it = row.begin(); it != row.end() && it->first < i; ++it) {
      acc -= it->second * y[it->first];
    }
    y[i] = acc;
  }
  std::vector<double> x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double acc = y[ii];
    const auto& row = rows_[ii];
    for (auto it = row.upper_bound(ii); it != row.end(); ++it) {
      acc -= it->second * x[it->first];
    }
    x[ii] = acc / row.at(ii);
  }
  return x;
}

std::size_t SparseLu::fill_nonzeros() const noexcept {
  std::size_t nnz = 0;
  for (const auto& row : rows_) nnz += row.size();
  return nnz;
}

}  // namespace softfet::numeric
