#include "numeric/sparse_lu.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>

#include "util/error.hpp"

namespace softfet::numeric {

void SparseLu::factor(const SparseMatrix& a) {
  if (a.size() == n_ && n_ != 0 && try_refactor(a)) {
    ++refactor_count_;
    return;
  }
  analyze(a);
}

void SparseLu::analyze(const SparseMatrix& a) {
  ++analyze_count_;
  const std::size_t n = a.size();

  // Fill-reducing pre-permutation. The natural path leaves q_ empty so it
  // stays bit-for-bit (and allocation-for-allocation) the pre-ordering
  // code; the AMD path renumbers both rows and columns symmetrically, and
  // partial pivoting below still permutes rows freely on top of it.
  const bool reorder =
      ordering_ == OrderingKind::kAmd ||
      (ordering_ == OrderingKind::kAuto && n >= kAutoOrderingThreshold);
  q_.clear();
  qinv_.clear();
  if (reorder) {
    // A shared OrderingCache memoizes AMD across solver instances (the
    // simulation service reuses it across requests of one netlist). The
    // cache is keyed on the exact pattern and amd_order is deterministic,
    // so the hit path yields bitwise-identical factorizations.
    q_ = ordering_cache_ ? *ordering_cache_->order_for(a) : amd_order(a);
    qinv_.resize(n);
    for (std::size_t j = 0; j < n; ++j) qinv_[q_[j]] = j;
  }

  // Right-looking elimination with partial pivoting over map rows. This is
  // the one-time symbolic+numeric pass; fill positions are inserted even
  // when a factor happens to be numerically zero so the recorded pattern is
  // purely structural and stays valid for any later values.
  std::vector<std::map<std::size_t, double>> rows(n);
  std::vector<std::size_t> perm(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (reorder) {
      for (const auto& [col, value] : a.row(q_[i])) {
        rows[i].emplace(qinv_[col], value);
      }
    } else {
      rows[i] = a.row(i);
    }
    perm[i] = i;
  }
  double min_pivot = std::numeric_limits<double>::infinity();

  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivoting: among rows i >= k, pick the largest |a[i][k]|.
    std::size_t pivot_row = n;
    double pivot_mag = 0.0;
    for (std::size_t i = k; i < n; ++i) {
      const auto it = rows[i].find(k);
      if (it == rows[i].end()) continue;
      const double mag = std::fabs(it->second);
      if (mag > pivot_mag) {
        pivot_mag = mag;
        pivot_row = i;
      }
    }
    if (pivot_row == n || !(pivot_mag > 0.0) || !std::isfinite(pivot_mag)) {
      const std::size_t original = reorder ? q_[k] : k;
      throw SingularMatrixError("SparseLu: singular matrix at column " +
                                    std::to_string(original),
                                original);
    }
    min_pivot = std::min(min_pivot, pivot_mag);
    if (pivot_row != k) {
      std::swap(rows[k], rows[pivot_row]);
      std::swap(perm[k], perm[pivot_row]);
    }

    const auto& pivot_entries = rows[k];
    const double pivot = pivot_entries.at(k);
    for (std::size_t i = k + 1; i < n; ++i) {
      auto& row = rows[i];
      const auto it = row.find(k);
      if (it == row.end()) continue;
      const double f = it->second / pivot;
      it->second = f;  // store the L entry in place
      for (auto pit = pivot_entries.upper_bound(k); pit != pivot_entries.end();
           ++pit) {
        row[pit->first] -= f * pit->second;
      }
    }
  }

  // Flatten the factored rows into CSR and record the permuted A pattern so
  // later factor() calls can scatter + eliminate without any node churn.
  n_ = n;
  min_pivot_ = min_pivot;
  // perm_ maps a factored row straight to its original A row (the pivot
  // permutation composed with the fill-reducing one).
  perm_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    perm_[i] = reorder ? q_[perm[i]] : perm[i];
  }

  std::size_t nnz = 0;
  for (const auto& row : rows) nnz += row.size();
  row_ptr_.assign(n + 1, 0);
  cols_.clear();
  vals_.clear();
  cols_.reserve(nnz);
  vals_.reserve(nnz);
  diag_.assign(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    for (const auto& [col, value] : rows[i]) {
      if (col == i) diag_[i] = cols_.size();
      cols_.push_back(col);
      vals_.push_back(value);
    }
    row_ptr_[i + 1] = cols_.size();
  }

  std::size_t a_nnz = 0;
  for (std::size_t i = 0; i < n; ++i) a_nnz += a.row(i).size();
  a_nnz_ = a_nnz;
  a_row_ptr_.assign(n + 1, 0);
  a_cols_.clear();
  a_cols_.reserve(a_nnz);
  a_scatter_.clear();
  a_scatter_.reserve(a_nnz);
  for (std::size_t i = 0; i < n; ++i) {
    for (const auto& [col, value] : a.row(perm_[i])) {
      (void)value;
      a_cols_.push_back(col);
      a_scatter_.push_back(reorder ? qinv_[col] : col);
    }
    a_row_ptr_[i + 1] = a_cols_.size();
  }

  work_.assign(n, 0.0);
}

bool SparseLu::try_refactor(const SparseMatrix& a) {
  const std::size_t n = n_;
  double min_pivot = std::numeric_limits<double>::infinity();

  // Up-looking elimination over the cached structure: per factored row,
  // scatter the permuted A row into the dense accumulator, apply the updates
  // from all earlier U rows in ascending pivot order (the same operation
  // order as the analyzing pass), then gather back into the CSR slots.
  for (std::size_t i = 0; i < n; ++i) {
    const auto& a_row = a.row(perm_[i]);
    const std::size_t expected = a_row_ptr_[i + 1] - a_row_ptr_[i];
    if (a_row.size() != expected) {
      // Pattern changed; clean the accumulator before bailing out.
      std::fill(work_.begin(), work_.end(), 0.0);
      return false;
    }
    std::size_t slot = a_row_ptr_[i];
    bool pattern_ok = true;
    for (const auto& [col, value] : a_row) {
      if (a_cols_[slot] != col) {
        pattern_ok = false;
        break;
      }
      work_[a_scatter_[slot]] = value;
      ++slot;
    }
    if (!pattern_ok) {
      std::fill(work_.begin(), work_.end(), 0.0);
      return false;
    }

    for (std::size_t s = row_ptr_[i]; s < diag_[i]; ++s) {
      const std::size_t k = cols_[s];
      const double f = work_[k] / vals_[diag_[k]];
      work_[k] = f;
      if (f != 0.0) {
        for (std::size_t t = diag_[k] + 1; t < row_ptr_[k + 1]; ++t) {
          work_[cols_[t]] -= f * vals_[t];
        }
      }
    }

    double row_max = 0.0;
    for (std::size_t s = row_ptr_[i]; s < row_ptr_[i + 1]; ++s) {
      const std::size_t col = cols_[s];
      vals_[s] = work_[col];
      work_[col] = 0.0;
      row_max = std::max(row_max, std::fabs(vals_[s]));
    }
    const double pivot_mag = std::fabs(vals_[diag_[i]]);
    if (!(pivot_mag > kPivotDegradation * row_max) ||
        !std::isfinite(pivot_mag)) {
      // The recorded pivot order is no longer numerically safe for these
      // values (or the matrix went singular) — re-pivot from scratch.
      return false;
    }
    min_pivot = std::min(min_pivot, pivot_mag);
  }

  min_pivot_ = min_pivot;
  return true;
}

std::vector<double> SparseLu::solve(const std::vector<double>& b) const {
  const std::size_t n = n_;
  if (b.size() != n) throw Error("SparseLu::solve: size mismatch");

  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double acc = b[perm_[i]];
    for (std::size_t s = row_ptr_[i]; s < diag_[i]; ++s) {
      acc -= vals_[s] * y[cols_[s]];
    }
    y[i] = acc;
  }
  std::vector<double> x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double acc = y[ii];
    for (std::size_t s = diag_[ii] + 1; s < row_ptr_[ii + 1]; ++s) {
      acc -= vals_[s] * x[cols_[s]];
    }
    x[ii] = acc / vals_[diag_[ii]];
  }
  if (q_.empty()) return x;
  // Undo the fill-reducing renumbering: permuted unknown j is original q[j].
  std::vector<double> out(n);
  for (std::size_t j = 0; j < n; ++j) out[q_[j]] = x[j];
  return out;
}

}  // namespace softfet::numeric
