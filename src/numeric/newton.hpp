// Damped Newton-Raphson for circuit-style nonlinear systems F(x) = 0.
//
// The caller supplies a NonlinearSystem that loads the Jacobian and residual
// at a given point; convergence is judged SPICE-style with per-unknown
// absolute tolerances (voltages vs branch currents differ by orders of
// magnitude) plus a relative term.
//
// Failures are reported structurally, not by throwing: a non-finite residual
// or update, a singular Jacobian, or iteration exhaustion all return a
// NewtonResult with `converged == false` and a NewtonFailure reason plus the
// offending unknown, so analysis drivers can feed a recovery ladder instead
// of unwinding the whole run.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "numeric/linear_solver.hpp"
#include "numeric/sparse_matrix.hpp"
#include "util/budget.hpp"
#include "util/error.hpp"

namespace softfet::numeric {

/// Interface the Newton loop drives.
class NonlinearSystem {
 public:
  virtual ~NonlinearSystem() = default;

  [[nodiscard]] virtual std::size_t size() const = 0;

  /// Evaluate at `x`: fill `jacobian` (pre-zeroed, structure preserved) and
  /// `residual` (pre-zeroed) with F(x) and dF/dx.
  virtual void load(const std::vector<double>& x, SparseMatrix& jacobian,
                    std::vector<double>& residual) = 0;

  /// Per-unknown absolute convergence tolerance (e.g. 1uV for node voltages,
  /// 1pA for branch currents).
  [[nodiscard]] virtual double abstol(std::size_t unknown) const = 0;

  /// Largest |dx| allowed for an unknown in one Newton step (0 = unlimited).
  /// Limiting voltage steps keeps exponential devices out of overflow.
  [[nodiscard]] virtual double max_step(std::size_t /*unknown*/) const {
    return 0.0;
  }

  /// Human-readable label of an unknown for diagnostics ("v(out)", "i(l1)").
  [[nodiscard]] virtual std::string unknown_label(std::size_t unknown) const {
    return "x[" + std::to_string(unknown) + "]";
  }
};

struct NewtonOptions {
  int max_iterations = 100;
  double reltol = 1e-3;
  /// Residual tolerance scale; convergence also requires each residual entry
  /// below `residual_tol_scale * abstol(i)` after the dx test passes.
  double residual_tol_scale = 1e3;
  SolverKind solver = SolverKind::kAuto;
  /// Optional caller-owned linear solver shared across solve_newton calls.
  /// Passing one lets the cached sparse factorization (symbolic analysis,
  /// pivot order) survive from iteration to iteration and from timestep to
  /// timestep; `solver` above is ignored in that case (the instance's own
  /// kind wins). When null, a fresh solver is created per call.
  LinearSolver* solver_instance = nullptr;
  /// Optional armed run budget, checked at every iteration head. When it
  /// trips, the solve stops with NewtonFailure::kBudgetExhausted — reported
  /// structurally like any other failure, so the analysis driver (not this
  /// loop) decides to truncate instead of climbing its recovery ladder.
  const util::BudgetTimer* budget = nullptr;
};

/// Why a solve stopped without converging.
enum class NewtonFailure {
  kNone,              ///< converged
  kMaxIterations,     ///< iteration budget exhausted
  kNonFiniteResidual, ///< NaN/Inf in F(x) from a device evaluation
  kNonFiniteUpdate,   ///< NaN/Inf in the Newton update dx
  kSingularMatrix,    ///< Jacobian factorization hit a vanishing pivot
  kBudgetExhausted,   ///< options.budget tripped (wall clock or cancel)
};

[[nodiscard]] const char* to_string(NewtonFailure failure);

/// Sentinel for "no unknown identified".
inline constexpr std::size_t kNoUnknown = static_cast<std::size_t>(-1);

struct NewtonResult {
  bool converged = false;
  int iterations = 0;
  double max_dx = 0.0;        ///< largest update in the final iteration
  double max_residual = 0.0;  ///< largest |F| entry at the solution
  NewtonFailure failure = NewtonFailure::kNone;
  /// Unknown blamed for the failure: the first non-finite entry, the
  /// singular pivot column, or the worst abstol-scaled residual.
  std::size_t worst_unknown = kNoUnknown;
  double worst_residual = 0.0;  ///< |F| at worst_unknown (last evaluation)
  std::string failure_detail;   ///< e.g. the linear solver's message
  /// Per-iteration (max_dx, max_residual) history of this solve.
  std::vector<IterationRecord> trace;
};

/// Run damped Newton from `x` (updated in place).
[[nodiscard]] NewtonResult solve_newton(NonlinearSystem& system,
                                        std::vector<double>& x,
                                        const NewtonOptions& options = {});

}  // namespace softfet::numeric
