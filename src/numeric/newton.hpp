// Damped Newton-Raphson for circuit-style nonlinear systems F(x) = 0.
//
// The caller supplies a NonlinearSystem that loads the Jacobian and residual
// at a given point; convergence is judged SPICE-style with per-unknown
// absolute tolerances (voltages vs branch currents differ by orders of
// magnitude) plus a relative term.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "numeric/linear_solver.hpp"
#include "numeric/sparse_matrix.hpp"

namespace softfet::numeric {

/// Interface the Newton loop drives.
class NonlinearSystem {
 public:
  virtual ~NonlinearSystem() = default;

  [[nodiscard]] virtual std::size_t size() const = 0;

  /// Evaluate at `x`: fill `jacobian` (pre-zeroed, structure preserved) and
  /// `residual` (pre-zeroed) with F(x) and dF/dx.
  virtual void load(const std::vector<double>& x, SparseMatrix& jacobian,
                    std::vector<double>& residual) = 0;

  /// Per-unknown absolute convergence tolerance (e.g. 1uV for node voltages,
  /// 1pA for branch currents).
  [[nodiscard]] virtual double abstol(std::size_t unknown) const = 0;

  /// Largest |dx| allowed for an unknown in one Newton step (0 = unlimited).
  /// Limiting voltage steps keeps exponential devices out of overflow.
  [[nodiscard]] virtual double max_step(std::size_t /*unknown*/) const {
    return 0.0;
  }
};

struct NewtonOptions {
  int max_iterations = 100;
  double reltol = 1e-3;
  /// Residual tolerance scale; convergence also requires each residual entry
  /// below `residual_tol_scale * abstol(i)` after the dx test passes.
  double residual_tol_scale = 1e3;
  SolverKind solver = SolverKind::kAuto;
  /// Optional caller-owned linear solver shared across solve_newton calls.
  /// Passing one lets the cached sparse factorization (symbolic analysis,
  /// pivot order) survive from iteration to iteration and from timestep to
  /// timestep; `solver` above is ignored in that case (the instance's own
  /// kind wins). When null, a fresh solver is created per call.
  LinearSolver* solver_instance = nullptr;
};

struct NewtonResult {
  bool converged = false;
  int iterations = 0;
  double max_dx = 0.0;        ///< largest update in the final iteration
  double max_residual = 0.0;  ///< largest |F| entry at the solution
};

/// Run damped Newton from `x` (updated in place).
[[nodiscard]] NewtonResult solve_newton(NonlinearSystem& system,
                                        std::vector<double>& x,
                                        const NewtonOptions& options = {});

}  // namespace softfet::numeric
