// Structure-of-arrays batch of dense LU factorizations for the lockstep
// Monte-Carlo engine: K same-size systems factored and solved together so
// the elimination/substitution inner loops run contiguously across lanes
// (lane-minor layout, SIMD-friendly) instead of pointer-chasing one matrix
// at a time.
//
// Bitwise contract: each lane executes exactly the floating-point operation
// sequence of DenseLu::factor / DenseLu::solve — same pivot choice (strict
// `>` search), same elimination order, same skip-a-row-when-the-multiplier-
// is-exactly-zero semantics, same accumulate-then-divide substitution — so
// lane results are bitwise identical to a scalar DenseLu on the same matrix.
// The zero-multiplier skip matters beyond speed: an unconditional
// `lu -= 0.0 * lu_k` can flip a -0.0 entry to +0.0, which the scalar path
// never does, so rows whose multiplier is zero in *some* lanes fall back to
// a per-lane masked loop (rare in practice: lanes share one sparsity
// pattern, so zero multipliers almost always line up across the batch).
//
// A lane whose pivot search fails (where DenseLu throws SingularMatrixError)
// is marked dead in `ok` and keeps eliminating with zero multipliers; its
// values are garbage from that column on but never contaminate other lanes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace softfet::numeric {

class BatchDenseLu {
 public:
  /// Shape the batch: n unknowns, `lanes` resident lanes. Value storage is
  /// lane-minor: entry (r, c) of lane s lives at values()[(r*n + c)*lanes + s].
  void configure(std::size_t n, std::size_t lanes);

  [[nodiscard]] std::size_t n() const noexcept { return n_; }
  [[nodiscard]] std::size_t lanes() const noexcept { return lanes_; }

  /// Lane-minor value buffer (n*n*lanes entries). The caller zeroes its
  /// lane column (clear_lane) and scatters the Jacobian in before factor();
  /// factor() consumes it in place.
  [[nodiscard]] double* values() noexcept { return lu_.data(); }

  /// Zero lane `s`'s matrix entries ahead of a fresh scatter.
  void clear_lane(std::size_t s);

  /// Factor lanes [0, m) in place. ok[s] is set to 1 on success and 0 when
  /// lane s hit a pivot DenseLu would have rejected (singular / non-finite).
  void factor(std::size_t m, std::uint8_t* ok);

  /// Solve A_s x_s = b_s for lanes [0, m). `b` and `x` are lane-minor
  /// n×lanes buffers (entry i of lane s at [i*lanes + s]) and must not
  /// alias. Lanes whose factor failed produce garbage the caller discards.
  void solve(std::size_t m, const double* b, double* x);

 private:
  std::size_t n_ = 0;
  std::size_t lanes_ = 0;
  std::vector<double> lu_;           // n*n*lanes, lane-minor
  std::vector<std::uint32_t> perm_;  // n*lanes, lane-minor
  std::vector<double> fac_;          // per-lane multiplier scratch
  std::vector<double> inv_pivot_;    // per-lane pivot reciprocal scratch
  std::vector<double> y_;            // n*lanes forward-substitution scratch
  std::vector<double> pivot_mag_;    // per-lane argmax scratch
  std::vector<std::uint32_t> pivot_row_;
};

}  // namespace softfet::numeric
