#include "numeric/batch_lu.hpp"

#include <algorithm>
#include <cmath>

namespace softfet::numeric {

void BatchDenseLu::configure(std::size_t n, std::size_t lanes) {
  n_ = n;
  lanes_ = lanes;
  lu_.assign(n * n * lanes, 0.0);
  perm_.assign(n * lanes, 0);
  fac_.assign(lanes, 0.0);
  inv_pivot_.assign(lanes, 0.0);
  y_.assign(n * lanes, 0.0);
  pivot_mag_.assign(lanes, 0.0);
  pivot_row_.assign(lanes, 0);
}

void BatchDenseLu::clear_lane(std::size_t s) {
  double* lu = lu_.data();
  const std::size_t stride = lanes_;
  for (std::size_t e = 0; e < n_ * n_; ++e) lu[e * stride + s] = 0.0;
}

void BatchDenseLu::factor(std::size_t m, std::uint8_t* ok) {
  const std::size_t n = n_;
  const std::size_t L = lanes_;
  double* lu = lu_.data();
  double* fac = fac_.data();
  double* inv_pivot = inv_pivot_.data();

  for (std::size_t s = 0; s < m; ++s) ok[s] = 1;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t s = 0; s < m; ++s) {
      perm_[i * L + s] = static_cast<std::uint32_t>(i);
    }
  }

  double* best_mag = pivot_mag_.data();
  std::uint32_t* best_row = pivot_row_.data();

  for (std::size_t k = 0; k < n; ++k) {
    // Pivot search as one lane-contiguous argmax sweep over the column.
    // Rows are visited in ascending order with a strict `>` compare, so
    // each lane selects exactly the row scalar DenseLu would (first max
    // wins) — that choice is what keeps the factorization bitwise
    // identical.
    {
      const double* rkk = lu + (k * n + k) * L;
      for (std::size_t s = 0; s < m; ++s) {
        best_mag[s] = std::fabs(rkk[s]);
        best_row[s] = static_cast<std::uint32_t>(k);
      }
    }
    for (std::size_t i = k + 1; i < n; ++i) {
      const double* rik = lu + (i * n + k) * L;
      for (std::size_t s = 0; s < m; ++s) {
        const double mag = std::fabs(rik[s]);
        if (mag > best_mag[s]) {
          best_mag[s] = mag;
          best_row[s] = static_cast<std::uint32_t>(i);
        }
      }
    }
    // Row swap and reciprocal stay per-lane scalar work: the chosen pivot
    // row differs across lanes.
    for (std::size_t s = 0; s < m; ++s) {
      if (ok[s] == 0) {
        inv_pivot[s] = 0.0;
        continue;
      }
      if (!(best_mag[s] > 0.0) || !std::isfinite(best_mag[s])) {
        // DenseLu throws SingularMatrixError here; the batch marks the lane
        // dead and lets it coast with zero multipliers.
        ok[s] = 0;
        inv_pivot[s] = 0.0;
        continue;
      }
      const std::size_t pivot_row = best_row[s];
      if (pivot_row != k) {
        std::swap(perm_[k * L + s], perm_[pivot_row * L + s]);
        for (std::size_t c = 0; c < n; ++c) {
          std::swap(lu[(k * n + c) * L + s], lu[(pivot_row * n + c) * L + s]);
        }
      }
      inv_pivot[s] = 1.0 / lu[(k * n + k) * L + s];
    }

    for (std::size_t i = k + 1; i < n; ++i) {
      std::size_t zero_lanes = 0;
      for (std::size_t s = 0; s < m; ++s) {
        double f = 0.0;
        if (ok[s] != 0) {
          f = lu[(i * n + k) * L + s] * inv_pivot[s];
          lu[(i * n + k) * L + s] = f;
        }
        fac[s] = f;
        if (f == 0.0) ++zero_lanes;
      }
      if (zero_lanes == m) continue;  // all lanes skip, as scalar would
      if (zero_lanes == 0) {
        // Common case: every lane eliminates — clean lane-contiguous loop.
        for (std::size_t c = k + 1; c < n; ++c) {
          double* row_i = lu + (i * n + c) * L;
          const double* row_k = lu + (k * n + c) * L;
          for (std::size_t s = 0; s < m; ++s) row_i[s] -= fac[s] * row_k[s];
        }
      } else {
        // Mixed: mask out zero-multiplier lanes so a -0.0 entry is not
        // rewritten to +0.0 by an `x -= 0.0 * y` the scalar path skips.
        for (std::size_t c = k + 1; c < n; ++c) {
          double* row_i = lu + (i * n + c) * L;
          const double* row_k = lu + (k * n + c) * L;
          for (std::size_t s = 0; s < m; ++s) {
            if (fac[s] != 0.0) row_i[s] -= fac[s] * row_k[s];
          }
        }
      }
    }
  }
}

void BatchDenseLu::solve(std::size_t m, const double* b, double* x) {
  const std::size_t n = n_;
  const std::size_t L = lanes_;
  const double* lu = lu_.data();
  double* y = y_.data();

  // Forward substitution with the permuted RHS (L has unit diagonal).
  for (std::size_t i = 0; i < n; ++i) {
    double* yi = y + i * L;
    for (std::size_t s = 0; s < m; ++s) yi[s] = b[perm_[i * L + s] * L + s];
    for (std::size_t j = 0; j < i; ++j) {
      const double* lij = lu + (i * n + j) * L;
      const double* yj = y + j * L;
      for (std::size_t s = 0; s < m; ++s) yi[s] -= lij[s] * yj[s];
    }
  }
  // Back substitution.
  for (std::size_t ii = n; ii-- > 0;) {
    double* xi = x + ii * L;
    const double* yi = y + ii * L;
    for (std::size_t s = 0; s < m; ++s) xi[s] = yi[s];
    for (std::size_t j = ii + 1; j < n; ++j) {
      const double* lj = lu + (ii * n + j) * L;
      const double* xj = x + j * L;
      for (std::size_t s = 0; s < m; ++s) xi[s] -= lj[s] * xj[s];
    }
    const double* diag = lu + (ii * n + ii) * L;
    for (std::size_t s = 0; s < m; ++s) xi[s] /= diag[s];
  }
}

}  // namespace softfet::numeric
