// Sparse square matrix used as the MNA stamping target.
//
// Rows are ordered maps: stamping is O(log nnz_row) and iteration is
// deterministic. Circuit matrices here are small (tens..thousands of
// unknowns) so clarity wins over raw speed; the structure is reused across
// Newton iterations via set_zero_keep_structure().
#pragma once

#include <cstddef>
#include <map>
#include <vector>

#include "numeric/dense_matrix.hpp"

namespace softfet::numeric {

class SparseMatrix {
 public:
  SparseMatrix() = default;
  explicit SparseMatrix(std::size_t n) : rows_(n) {}

  void resize(std::size_t n) {
    rows_.assign(n, {});
  }

  [[nodiscard]] std::size_t size() const noexcept { return rows_.size(); }

  /// Accumulate `value` at (r, c).
  void add(std::size_t r, std::size_t c, double value) {
    rows_[r][c] += value;
  }

  /// Overwrite the entry at (r, c).
  void set(std::size_t r, std::size_t c, double value) {
    rows_[r][c] = value;
  }

  [[nodiscard]] double get(std::size_t r, std::size_t c) const {
    const auto& row = rows_[r];
    const auto it = row.find(c);
    return it == row.end() ? 0.0 : it->second;
  }

  /// Zero all stored values but keep the sparsity structure (fast path for
  /// repeated Newton loads).
  void set_zero_keep_structure();

  [[nodiscard]] const std::map<std::size_t, double>& row(std::size_t r) const {
    return rows_[r];
  }

  [[nodiscard]] std::size_t nonzeros() const noexcept;

  [[nodiscard]] DenseMatrix to_dense() const;

  /// Densify into `out`, reusing its storage (resize + zero + scatter).
  void to_dense_into(DenseMatrix& out) const;

  /// y = A * x.
  [[nodiscard]] std::vector<double> multiply(const std::vector<double>& x) const;

 private:
  std::vector<std::map<std::size_t, double>> rows_;
};

}  // namespace softfet::numeric
