#include "numeric/newton.hpp"

#include <cmath>

#include "util/error.hpp"
#include "util/logging.hpp"

namespace softfet::numeric {

namespace {

[[nodiscard]] bool all_finite(const std::vector<double>& v) {
  for (double x : v) {
    if (!std::isfinite(x)) return false;
  }
  return true;
}

}  // namespace

NewtonResult solve_newton(NonlinearSystem& system, std::vector<double>& x,
                          const NewtonOptions& options) {
  const std::size_t n = system.size();
  if (x.size() != n) throw Error("solve_newton: initial guess size mismatch");

  SparseMatrix jacobian(n);
  std::vector<double> residual(n, 0.0);
  std::vector<double> rhs(n);
  LinearSolver local_solver(options.solver);
  LinearSolver& solver = options.solver_instance != nullptr
                             ? *options.solver_instance
                             : local_solver;

  NewtonResult result;
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    result.iterations = iter + 1;

    jacobian.set_zero_keep_structure();
    std::fill(residual.begin(), residual.end(), 0.0);
    system.load(x, jacobian, residual);
    if (!all_finite(residual)) {
      throw ConvergenceError("solve_newton: non-finite residual");
    }

    // Newton step: J·dx = -F.
    for (std::size_t i = 0; i < n; ++i) rhs[i] = -residual[i];
    std::vector<double> dx = solver.solve(jacobian, rhs);
    if (!all_finite(dx)) {
      throw ConvergenceError("solve_newton: non-finite Newton update");
    }

    // Per-unknown step limiting (keeps exponential devices in range).
    for (std::size_t i = 0; i < n; ++i) {
      const double limit = system.max_step(i);
      if (limit > 0.0 && std::fabs(dx[i]) > limit) {
        dx[i] = (dx[i] > 0.0) ? limit : -limit;
      }
    }

    bool dx_converged = true;
    double max_dx = 0.0;
    double max_residual = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double x_old = x[i];
      x[i] += dx[i];
      const double tol =
          options.reltol * std::max(std::fabs(x[i]), std::fabs(x_old)) +
          system.abstol(i);
      max_dx = std::max(max_dx, std::fabs(dx[i]));
      max_residual = std::max(
          max_residual, std::fabs(residual[i]) /
                            std::max(1.0, options.residual_tol_scale));
      if (std::fabs(dx[i]) > tol) dx_converged = false;
    }
    result.max_dx = max_dx;
    result.max_residual = max_residual;

    if (dx_converged) {
      result.converged = true;
      return result;
    }
  }

  util::log_debug("solve_newton: no convergence after " +
                  std::to_string(options.max_iterations) + " iterations (max_dx=" +
                  std::to_string(result.max_dx) + ")");
  result.converged = false;
  return result;
}

}  // namespace softfet::numeric
