#include "numeric/newton.hpp"

#include <cmath>

#include "util/error.hpp"
#include "util/logging.hpp"

namespace softfet::numeric {

namespace {

/// Index of the first non-finite entry, or kNoUnknown when all are finite.
[[nodiscard]] std::size_t first_non_finite(const std::vector<double>& v) {
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (!std::isfinite(v[i])) return i;
  }
  return kNoUnknown;
}

}  // namespace

const char* to_string(NewtonFailure failure) {
  switch (failure) {
    case NewtonFailure::kNone: return "converged";
    case NewtonFailure::kMaxIterations: return "newton max iterations";
    case NewtonFailure::kNonFiniteResidual: return "non-finite residual";
    case NewtonFailure::kNonFiniteUpdate: return "non-finite newton update";
    case NewtonFailure::kSingularMatrix: return "singular matrix";
    case NewtonFailure::kBudgetExhausted: return "run budget exhausted";
  }
  return "unknown failure";
}

NewtonResult solve_newton(NonlinearSystem& system, std::vector<double>& x,
                          const NewtonOptions& options) {
  const std::size_t n = system.size();
  if (x.size() != n) throw Error("solve_newton: initial guess size mismatch");

  SparseMatrix jacobian(n);
  std::vector<double> residual(n, 0.0);
  std::vector<double> rhs(n);
  LinearSolver local_solver(options.solver);
  LinearSolver& solver = options.solver_instance != nullptr
                             ? *options.solver_instance
                             : local_solver;

  NewtonResult result;
  // Track the residual entry that is worst relative to its own tolerance so
  // failures can name the offending unknown (voltage rows and current rows
  // differ by many orders of magnitude in absolute terms).
  const auto note_worst_residual = [&] {
    std::size_t worst = kNoUnknown;
    double worst_scaled = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double scaled = std::fabs(residual[i]) / system.abstol(i);
      if (worst == kNoUnknown || scaled > worst_scaled) {
        worst = i;
        worst_scaled = scaled;
      }
    }
    result.worst_unknown = worst;
    result.worst_residual =
        worst == kNoUnknown ? 0.0 : std::fabs(residual[worst]);
  };

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    // Budget check once per iteration: a check is a clock read, an iteration
    // is a full load + LU factorization, so the overhead is in the noise.
    if (options.budget != nullptr) {
      const util::BudgetStop stop = options.budget->check_now();
      if (stop != util::BudgetStop::kNone) {
        result.failure = NewtonFailure::kBudgetExhausted;
        result.failure_detail = util::to_string(stop);
        return result;
      }
    }
    result.iterations = iter + 1;

    jacobian.set_zero_keep_structure();
    std::fill(residual.begin(), residual.end(), 0.0);
    system.load(x, jacobian, residual);

    // Non-finite guard: a NaN/Inf from a device evaluation would otherwise
    // propagate through the factorization and burn the whole iteration
    // budget on garbage. Fail immediately and let the caller's recovery
    // ladder react.
    if (const std::size_t bad = first_non_finite(residual); bad != kNoUnknown) {
      result.failure = NewtonFailure::kNonFiniteResidual;
      result.worst_unknown = bad;
      result.worst_residual = residual[bad];
      result.failure_detail =
          "residual entry " + system.unknown_label(bad) + " is non-finite";
      return result;
    }

    // Newton step: J·dx = -F.
    for (std::size_t i = 0; i < n; ++i) rhs[i] = -residual[i];
    std::vector<double> dx;
    try {
      dx = solver.solve(jacobian, rhs);
    } catch (const SingularMatrixError& e) {
      result.failure = NewtonFailure::kSingularMatrix;
      result.failure_detail = e.what();
      note_worst_residual();
      if (e.column() < n) {
        result.worst_unknown = e.column();
        result.worst_residual = std::fabs(residual[e.column()]);
      }
      return result;
    } catch (const ConvergenceError& e) {
      result.failure = NewtonFailure::kSingularMatrix;
      result.failure_detail = e.what();
      note_worst_residual();
      return result;
    }
    if (const std::size_t bad = first_non_finite(dx); bad != kNoUnknown) {
      result.failure = NewtonFailure::kNonFiniteUpdate;
      result.worst_unknown = bad;
      result.worst_residual = std::fabs(residual[bad]);
      result.failure_detail =
          "newton update for " + system.unknown_label(bad) + " is non-finite";
      return result;
    }

    // Per-unknown step limiting (keeps exponential devices in range).
    for (std::size_t i = 0; i < n; ++i) {
      const double limit = system.max_step(i);
      if (limit > 0.0 && std::fabs(dx[i]) > limit) {
        dx[i] = (dx[i] > 0.0) ? limit : -limit;
      }
    }

    bool dx_converged = true;
    double max_dx = 0.0;
    double max_residual = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double x_old = x[i];
      x[i] += dx[i];
      const double tol =
          options.reltol * std::max(std::fabs(x[i]), std::fabs(x_old)) +
          system.abstol(i);
      max_dx = std::max(max_dx, std::fabs(dx[i]));
      max_residual = std::max(
          max_residual, std::fabs(residual[i]) /
                            std::max(1.0, options.residual_tol_scale));
      if (std::fabs(dx[i]) > tol) dx_converged = false;
    }
    result.max_dx = max_dx;
    result.max_residual = max_residual;
    result.trace.push_back({max_dx, max_residual});

    if (dx_converged) {
      result.converged = true;
      return result;
    }
  }

  result.failure = NewtonFailure::kMaxIterations;
  note_worst_residual();
  util::log_debug("solve_newton: no convergence after " +
                  std::to_string(options.max_iterations) + " iterations (max_dx=" +
                  std::to_string(result.max_dx) + ")");
  result.converged = false;
  return result;
}

}  // namespace softfet::numeric
