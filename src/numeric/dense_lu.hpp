// LU factorization with partial pivoting for dense MNA systems.
#pragma once

#include <cstddef>
#include <vector>

#include "numeric/dense_matrix.hpp"

namespace softfet::numeric {

/// Factors A = P·L·U in place and solves A·x = b.
/// Throws softfet::ConvergenceError if the matrix is numerically singular.
class DenseLu {
 public:
  DenseLu() = default;

  /// Factorize a copy of `a`.
  explicit DenseLu(const DenseMatrix& a) { factor(a); }

  /// Factorize a copy of `a`, reusing this object's internal storage (no
  /// reallocation when the size is unchanged — the repeated-solve hot path).
  void factor(const DenseMatrix& a);

  /// Solve for one right-hand side.
  [[nodiscard]] std::vector<double> solve(const std::vector<double>& b) const;

  /// Smallest pivot magnitude seen during factorization (conditioning hint).
  [[nodiscard]] double min_pivot() const noexcept { return min_pivot_; }

 private:
  DenseMatrix lu_;
  std::vector<std::size_t> perm_;
  double min_pivot_ = 0.0;
};

}  // namespace softfet::numeric
