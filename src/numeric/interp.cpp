#include "numeric/interp.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace softfet::numeric {

PwlCurve::PwlCurve(std::vector<PwlPoint> points) : points_(std::move(points)) {
  for (std::size_t i = 1; i < points_.size(); ++i) {
    if (!(points_[i].x > points_[i - 1].x)) {
      throw Error("PwlCurve: x values must be strictly increasing");
    }
  }
}

double PwlCurve::value(double x) const {
  if (points_.empty()) return 0.0;
  if (x <= points_.front().x) return points_.front().y;
  if (x >= points_.back().x) return points_.back().y;
  const auto it = std::upper_bound(
      points_.begin(), points_.end(), x,
      [](double xv, const PwlPoint& p) { return xv < p.x; });
  const PwlPoint& hi = *it;
  const PwlPoint& lo = *(it - 1);
  const double t = (x - lo.x) / (hi.x - lo.x);
  return lo.y + t * (hi.y - lo.y);
}

double PwlCurve::slope(double x) const {
  if (points_.size() < 2) return 0.0;
  if (x < points_.front().x || x >= points_.back().x) return 0.0;
  const auto it = std::upper_bound(
      points_.begin(), points_.end(), x,
      [](double xv, const PwlPoint& p) { return xv < p.x; });
  const PwlPoint& hi = *it;
  const PwlPoint& lo = *(it - 1);
  return (hi.y - lo.y) / (hi.x - lo.x);
}

double lerp_sorted(const std::vector<double>& xs, const std::vector<double>& ys,
                   double x) {
  if (xs.size() != ys.size()) throw Error("lerp_sorted: size mismatch");
  if (xs.empty()) return 0.0;
  if (x <= xs.front()) return ys.front();
  if (x >= xs.back()) return ys.back();
  const auto it = std::upper_bound(xs.begin(), xs.end(), x);
  const std::size_t hi = static_cast<std::size_t>(it - xs.begin());
  const std::size_t lo = hi - 1;
  const double t = (x - xs[lo]) / (xs[hi] - xs[lo]);
  return ys[lo] + t * (ys[hi] - ys[lo]);
}

}  // namespace softfet::numeric
