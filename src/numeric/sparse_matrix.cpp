#include "numeric/sparse_matrix.hpp"

#include "util/error.hpp"

namespace softfet::numeric {

void SparseMatrix::set_zero_keep_structure() {
  for (auto& row : rows_) {
    for (auto& [col, value] : row) value = 0.0;
  }
}

std::size_t SparseMatrix::nonzeros() const noexcept {
  std::size_t n = 0;
  for (const auto& row : rows_) n += row.size();
  return n;
}

DenseMatrix SparseMatrix::to_dense() const {
  DenseMatrix d;
  to_dense_into(d);
  return d;
}

void SparseMatrix::to_dense_into(DenseMatrix& out) const {
  out.resize(size(), size());
  out.set_zero();
  for (std::size_t r = 0; r < size(); ++r) {
    for (const auto& [c, v] : rows_[r]) out(r, c) = v;
  }
}

std::vector<double> SparseMatrix::multiply(const std::vector<double>& x) const {
  if (x.size() != size()) throw Error("SparseMatrix::multiply: size mismatch");
  std::vector<double> y(size(), 0.0);
  for (std::size_t r = 0; r < size(); ++r) {
    double acc = 0.0;
    for (const auto& [c, v] : rows_[r]) acc += v * x[c];
    y[r] = acc;
  }
  return y;
}

}  // namespace softfet::numeric
