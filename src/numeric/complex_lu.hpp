// Dense complex LU with partial pivoting, for AC small-signal MNA systems.
#pragma once

#include <complex>
#include <cstddef>
#include <vector>

namespace softfet::numeric {

using Complex = std::complex<double>;

/// Row-major dense complex matrix.
class ComplexMatrix {
 public:
  ComplexMatrix() = default;
  ComplexMatrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols) {}

  void set_zero() { std::fill(data_.begin(), data_.end(), Complex{}); }

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }

  Complex& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  Complex operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  [[nodiscard]] std::vector<Complex> multiply(
      const std::vector<Complex>& x) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<Complex> data_;
};

/// Factor A = P*L*U and solve A x = b. Throws ConvergenceError when singular.
class ComplexLu {
 public:
  ComplexLu() = default;
  explicit ComplexLu(const ComplexMatrix& a) { factor(a); }

  /// Factorize a copy of `a`, reusing internal storage across calls (AC
  /// sweeps refactor the same-size system at every frequency point).
  void factor(const ComplexMatrix& a);

  [[nodiscard]] std::vector<Complex> solve(const std::vector<Complex>& b) const;

 private:
  ComplexMatrix lu_;
  std::vector<std::size_t> perm_;
};

}  // namespace softfet::numeric
