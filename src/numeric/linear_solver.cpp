#include "numeric/linear_solver.hpp"

#include "numeric/dense_lu.hpp"
#include "numeric/sparse_lu.hpp"

namespace softfet::numeric {

std::vector<double> LinearSolver::solve(const SparseMatrix& a,
                                        const std::vector<double>& b) const {
  const bool dense = kind_ == SolverKind::kDense ||
                     (kind_ == SolverKind::kAuto && a.size() <= kDenseThreshold);
  if (dense) {
    return DenseLu(a.to_dense()).solve(b);
  }
  return SparseLu(a).solve(b);
}

}  // namespace softfet::numeric
