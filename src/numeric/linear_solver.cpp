#include "numeric/linear_solver.hpp"

namespace softfet::numeric {

const char* to_string(SolverPolicy policy) {
  switch (policy) {
    case SolverPolicy::kDirect: return "direct";
    case SolverPolicy::kIterative: return "iterative";
    case SolverPolicy::kAuto: return "auto";
  }
  return "unknown";
}

std::vector<double> LinearSolver::solve(const SparseMatrix& a,
                                        const std::vector<double>& b) {
  const bool dense =
      config_.kind == SolverKind::kDense ||
      (config_.kind == SolverKind::kAuto && a.size() <= kDenseThreshold);
  if (dense) {
    a.to_dense_into(dense_);
    dense_lu_.factor(dense_);
    ++direct_solves_;
    return dense_lu_.solve(b);
  }

  if (iterative_active() && sparse_.valid() && sparse_.size() == a.size()) {
    // Reuse the last factorization — stale values and all — as the
    // preconditioner. With M close to A this converges in a few
    // iterations and skips the refactorization entirely.
    std::vector<double> x(a.size(), 0.0);
    KrylovOptions kopt;
    kopt.rtol = config_.krylov_rtol;
    kopt.max_iterations = config_.krylov_max_iterations;
    const KrylovResult kr = bicgstab(a, b, x, &sparse_, kopt);
    krylov_iterations_ += kr.iterations;
    if (kr.converged) {
      ++krylov_solves_;
      return x;
    }
    // The preconditioner drifted too far (or the iteration broke down):
    // refresh the factors and answer directly.
    ++krylov_fallbacks_;
  }

  sparse_.factor(a);
  if (config_.policy == SolverPolicy::kAuto && !auto_iterative_ &&
      a.size() >= config_.auto_min_unknowns &&
      sparse_.fill_ratio() > config_.auto_fill_ratio) {
    auto_iterative_ = true;
  }
  ++direct_solves_;
  return sparse_.solve(b);
}

LinearSolverStats LinearSolver::stats() const noexcept {
  LinearSolverStats stats;
  stats.symbolic_analyses = sparse_.analyze_count();
  stats.refactorizations = sparse_.refactor_count();
  stats.fill_ratio = sparse_.fill_ratio();
  stats.reordered = sparse_.reordered();
  stats.direct_solves = direct_solves_;
  stats.krylov_solves = krylov_solves_;
  stats.krylov_iterations = krylov_iterations_;
  stats.krylov_fallbacks = krylov_fallbacks_;
  return stats;
}

}  // namespace softfet::numeric
