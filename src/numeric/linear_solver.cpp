#include "numeric/linear_solver.hpp"

namespace softfet::numeric {

std::vector<double> LinearSolver::solve(const SparseMatrix& a,
                                        const std::vector<double>& b) {
  const bool dense = kind_ == SolverKind::kDense ||
                     (kind_ == SolverKind::kAuto && a.size() <= kDenseThreshold);
  if (dense) {
    a.to_dense_into(dense_);
    dense_lu_.factor(dense_);
    return dense_lu_.solve(b);
  }
  sparse_.factor(a);
  return sparse_.solve(b);
}

}  // namespace softfet::numeric
