// Sparse LU with a symbolic / numeric split over flat CSR storage.
//
// MNA matrices keep the same sparsity pattern across Newton iterations and
// transient steps, so the expensive work — pivot-order selection and fill-in
// discovery — is done once per pattern (analyze) and every later call takes
// a numeric-only refactorization over the cached structure. Refactorization
// reuses the recorded pivot sequence; if a pivot degrades numerically or the
// input pattern changes, the factorization transparently falls back to a
// fresh symbolic analysis, so callers can treat factor() as always-correct.
//
// Ahead of the symbolic phase an optional fill-reducing (AMD) permutation
// reorders the unknowns; the permutation is cached with the symbolic
// structure, so the numeric-only refactorization path is identical in shape
// whether or not the matrix was reordered. Under the default kAuto policy
// small systems keep the natural order bit-for-bit (the permutation only
// kicks in at kAutoOrderingThreshold unknowns, where banded fill starts to
// dominate).
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "numeric/ordering.hpp"
#include "numeric/sparse_matrix.hpp"

namespace softfet::numeric {

class SparseLu {
 public:
  /// kAuto applies the AMD permutation at or above this many unknowns.
  /// Below it, natural-order fill is modest and skipping the reorder keeps
  /// existing small-circuit results bitwise identical.
  static constexpr std::size_t kAutoOrderingThreshold = 128;

  SparseLu() = default;

  /// Analyze + factor `a`. Throws softfet::ConvergenceError when
  /// numerically singular.
  explicit SparseLu(const SparseMatrix& a) { factor(a); }

  /// Select the fill-reducing ordering policy. Changing it invalidates the
  /// cached symbolic analysis (the next factor() re-analyzes).
  void set_ordering(OrderingKind ordering) noexcept {
    if (ordering != ordering_) {
      ordering_ = ordering;
      n_ = 0;
    }
  }
  [[nodiscard]] OrderingKind ordering() const noexcept { return ordering_; }

  /// Attach a shared AMD-permutation memo (may be null). Only consulted on
  /// the reordering path; hits are bitwise identical to computing, so this
  /// never changes results — only first-factorization latency.
  void set_ordering_cache(std::shared_ptr<OrderingCache> cache) noexcept {
    ordering_cache_ = std::move(cache);
  }

  /// Factor `a`. The first call (or a call after the pattern changed, or
  /// after a reused pivot degraded) runs the full symbolic analysis with
  /// partial pivoting; otherwise the cached structure and pivot order are
  /// reused and only the numeric elimination runs.
  void factor(const SparseMatrix& a);

  /// Drop the cached symbolic analysis (call when the pattern is about to
  /// change wholesale; factor() would also detect this on its own).
  void invalidate() noexcept { n_ = 0; }

  /// True when a factorization is cached and solve() is callable.
  [[nodiscard]] bool valid() const noexcept { return n_ != 0; }
  [[nodiscard]] std::size_t size() const noexcept { return n_; }

  [[nodiscard]] std::vector<double> solve(const std::vector<double>& b) const;

  [[nodiscard]] double min_pivot() const noexcept { return min_pivot_; }
  [[nodiscard]] std::size_t fill_nonzeros() const noexcept {
    return cols_.size();
  }
  /// nnz(L+U) / nnz(A) of the cached analysis (1.0 = no fill-in at all;
  /// 0.0 before the first factorization).
  [[nodiscard]] double fill_ratio() const noexcept {
    return a_nnz_ == 0 ? 0.0
                       : static_cast<double>(cols_.size()) /
                             static_cast<double>(a_nnz_);
  }
  /// True when the cached analysis runs under an AMD permutation.
  [[nodiscard]] bool reordered() const noexcept { return !q_.empty(); }
  /// Number of full symbolic analyses performed over this object's lifetime.
  [[nodiscard]] std::size_t analyze_count() const noexcept {
    return analyze_count_;
  }
  /// Number of fast numeric-only refactorizations performed.
  [[nodiscard]] std::size_t refactor_count() const noexcept {
    return refactor_count_;
  }

 private:
  // A reused pivot below kPivotDegradation * (inf-norm of its factored row)
  // forces a fresh analysis so the fixed pivot order cannot silently lose
  // accuracy as the Newton values move.
  static constexpr double kPivotDegradation = 1e-10;

  void analyze(const SparseMatrix& a);
  [[nodiscard]] bool try_refactor(const SparseMatrix& a);

  OrderingKind ordering_ = OrderingKind::kAuto;
  std::shared_ptr<OrderingCache> ordering_cache_;

  std::size_t n_ = 0;

  // Fill-reducing permutation of the unknowns: permuted index j holds
  // original unknown q_[j] (empty = natural order). All structures below
  // live in the permuted index space.
  std::vector<std::size_t> q_;
  std::vector<std::size_t> qinv_;  ///< qinv_[q_[j]] == j

  // CSR of L+U of P·A (A pre-permuted by q_). Columns are sorted within
  // each row; slots [row_ptr_[i], diag_[i]) hold L (already divided by the
  // pivot) and [diag_[i], row_ptr_[i+1]) hold U including the diagonal.
  std::vector<std::size_t> row_ptr_;
  std::vector<std::size_t> cols_;
  std::vector<double> vals_;
  std::vector<std::size_t> diag_;
  std::vector<std::size_t> perm_;  ///< factored row i came from A row perm_[i]

  // Expected pattern of A in permuted row order: a_cols_ holds the original
  // column indices in each A row's iteration order (the cheap pattern-
  // identity check) and a_scatter_ the permuted column each value lands in.
  std::vector<std::size_t> a_row_ptr_;
  std::vector<std::size_t> a_cols_;
  std::vector<std::size_t> a_scatter_;
  std::size_t a_nnz_ = 0;

  std::vector<double> work_;  ///< dense accumulator, zero between rows

  double min_pivot_ = 0.0;
  std::size_t analyze_count_ = 0;
  std::size_t refactor_count_ = 0;
};

}  // namespace softfet::numeric
