// Sparse LU with partial (row) pivoting over map-based rows.
//
// Right-looking elimination; fill-in is accepted as it arises. Intended for
// MNA matrices up to a few thousand unknowns where a dense factor would
// waste memory but heroic ordering is unnecessary.
#pragma once

#include <cstddef>
#include <map>
#include <vector>

#include "numeric/sparse_matrix.hpp"

namespace softfet::numeric {

class SparseLu {
 public:
  /// Factorize (a copy of) `a`. Throws softfet::ConvergenceError when
  /// numerically singular.
  explicit SparseLu(const SparseMatrix& a);

  [[nodiscard]] std::vector<double> solve(const std::vector<double>& b) const;

  [[nodiscard]] double min_pivot() const noexcept { return min_pivot_; }
  [[nodiscard]] std::size_t fill_nonzeros() const noexcept;

 private:
  // Row i holds L entries (col < i, already divided by pivot) and U entries
  // (col >= i). perm_[i] is the original index of factored row i.
  std::vector<std::map<std::size_t, double>> rows_;
  std::vector<std::size_t> perm_;
  double min_pivot_ = 0.0;
};

}  // namespace softfet::numeric
