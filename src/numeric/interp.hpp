// Piecewise-linear curves: interpolation, derivative, and corner points.
// Used by PWL sources and waveform post-processing.
#pragma once

#include <cstddef>
#include <vector>

namespace softfet::numeric {

/// One (x, y) sample of a piecewise-linear curve.
struct PwlPoint {
  double x = 0.0;
  double y = 0.0;
};

/// A piecewise-linear function defined by sorted breakpoints. Values are
/// clamped (held) outside the defined range.
class PwlCurve {
 public:
  PwlCurve() = default;
  /// Points must be sorted by x strictly increasing; throws otherwise.
  explicit PwlCurve(std::vector<PwlPoint> points);

  [[nodiscard]] double value(double x) const;

  /// Right-hand slope at x (0 outside the range and at the last point).
  [[nodiscard]] double slope(double x) const;

  [[nodiscard]] const std::vector<PwlPoint>& points() const noexcept {
    return points_;
  }
  [[nodiscard]] bool empty() const noexcept { return points_.empty(); }

 private:
  std::vector<PwlPoint> points_;
};

/// Linear interpolation in sorted `xs` (clamped at the ends).
[[nodiscard]] double lerp_sorted(const std::vector<double>& xs,
                                 const std::vector<double>& ys, double x);

}  // namespace softfet::numeric
