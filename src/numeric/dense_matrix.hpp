// Row-major dense matrix, sized for circuit MNA systems (tens to a few
// thousand unknowns).
#pragma once

#include <cstddef>
#include <vector>

namespace softfet::numeric {

class DenseMatrix {
 public:
  DenseMatrix() = default;
  DenseMatrix(std::size_t rows, std::size_t cols);

  void resize(std::size_t rows, std::size_t cols);
  void set_zero();

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }

  [[nodiscard]] double& at(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  [[nodiscard]] double at(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }
  double& operator()(std::size_t r, std::size_t c) { return at(r, c); }
  double operator()(std::size_t r, std::size_t c) const { return at(r, c); }

  /// y = A * x  (sizes must match).
  [[nodiscard]] std::vector<double> multiply(
      const std::vector<double>& x) const;

  /// Max-abs element (for conditioning diagnostics).
  [[nodiscard]] double max_abs() const noexcept;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace softfet::numeric
