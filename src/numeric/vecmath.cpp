// Array forms of the vecmath kernels. Each loop body is the branch-free
// scalar kernel from vecmath.hpp, so element i is a pure function of input
// i — the compiler's auto-vectorizer turns these into SIMD pipelines, and
// results are identical for any lane packing.
//
// Dispatch: on x86-64 ELF targets each kernel is multi-versioned
// (target_clones) into baseline / AVX2 / AVX-512 bodies with a runtime
// resolver, so one portable binary gets the host's full vector width. The
// clones are numerically identical to the scalar kernels: they execute the
// same IEEE-754 operations per element, and the global -ffp-contract=off
// keeps FMA fusion off in every clone. SIMD changes *throughput*, never
// results — which is what lets relaxed-mode runs stay deterministic across
// machines of different vector widths.
#include "numeric/vecmath.hpp"

#if defined(__x86_64__) && defined(__ELF__) && defined(__GNUC__)
#define SOFTFET_VECMATH_CLONES \
  __attribute__((target_clones("default", "avx2", "arch=x86-64-v4")))
#else
#define SOFTFET_VECMATH_CLONES
#endif

namespace softfet::numeric::vecmath {

SOFTFET_VECMATH_CLONES
void exp_v(const double* x, double* y, std::size_t n) {
  const double* __restrict xp = x;
  double* __restrict yp = y;
  for (std::size_t i = 0; i < n; ++i) yp[i] = exp_s(xp[i]);
}

SOFTFET_VECMATH_CLONES
void expm1_v(const double* x, double* y, std::size_t n) {
  const double* __restrict xp = x;
  double* __restrict yp = y;
  for (std::size_t i = 0; i < n; ++i) yp[i] = expm1_s(xp[i]);
}

SOFTFET_VECMATH_CLONES
void log1p_v(const double* x, double* y, std::size_t n) {
  const double* __restrict xp = x;
  double* __restrict yp = y;
  for (std::size_t i = 0; i < n; ++i) yp[i] = log1p_s(xp[i]);
}

namespace {
// Block size for the multi-pass composites below: big enough to amortize
// the per-call dispatch of the primitive kernels, small enough that the
// scratch stays in L1 (2 x 1 KiB).
constexpr std::size_t kCompositeBlock = 128;
}  // namespace

// softplus / softplus+sigmoid are composed as blocked multi-pass sweeps over
// the primitive kernels instead of one fused loop: GCC's vectorizer balks at
// the fused body (exp + log1p in one loop exceeds what it will if-convert),
// while each primitive pass vectorizes cleanly. The composition is the exact
// operation sequence of softplus_s / softplus_sigmoid_s, so results are
// bit-identical to the scalar forms.
SOFTFET_VECMATH_CLONES
void softplus_v(const double* x, double* y, std::size_t n) {
  double t[kCompositeBlock];
  double u[kCompositeBlock];
  for (std::size_t base = 0; base < n; base += kCompositeBlock) {
    const std::size_t m =
        (n - base < kCompositeBlock) ? (n - base) : kCompositeBlock;
    const double* __restrict xb = x + base;
    double* __restrict yb = y + base;
    for (std::size_t i = 0; i < m; ++i) {
      const double ax = (xb[i] < 0.0) ? -xb[i] : xb[i];
      t[i] = -ax;
    }
    exp_v(t, u, m);
    log1p_v(u, t, m);
    for (std::size_t i = 0; i < m; ++i) {
      yb[i] = ((xb[i] > 0.0) ? xb[i] : 0.0) + t[i];
    }
  }
}

SOFTFET_VECMATH_CLONES
void sigmoid_v(const double* x, double* y, std::size_t n) {
  const double* __restrict xp = x;
  double* __restrict yp = y;
  for (std::size_t i = 0; i < n; ++i) yp[i] = sigmoid_s(xp[i]);
}

SOFTFET_VECMATH_CLONES
void softplus_sigmoid_v(const double* x, double* sp, double* sg,
                        std::size_t n) {
  double t[kCompositeBlock];
  double u[kCompositeBlock];
  for (std::size_t base = 0; base < n; base += kCompositeBlock) {
    const std::size_t m =
        (n - base < kCompositeBlock) ? (n - base) : kCompositeBlock;
    const double* __restrict xb = x + base;
    double* __restrict spb = sp + base;
    double* __restrict sgb = sg + base;
    for (std::size_t i = 0; i < m; ++i) {
      const double ax = (xb[i] < 0.0) ? -xb[i] : xb[i];
      t[i] = -ax;
    }
    exp_v(t, u, m);  // u = e = exp(-|x|), shared by both outputs
    for (std::size_t i = 0; i < m; ++i) {
      const double xi = xb[i];
      const double denom = 1.0 + u[i];
      const double pos_half = 1.0 / denom;
      const double neg_half = u[i] / denom;
      double g = (xi >= 0.0) ? pos_half : neg_half;
      g = (xi != xi) ? xi : g;  // repoison, matching softplus_sigmoid_s
      sgb[i] = g;
    }
    log1p_v(u, t, m);
    for (std::size_t i = 0; i < m; ++i) {
      const double xi = xb[i];
      double p = ((xi > 0.0) ? xi : 0.0) + t[i];
      p = (xi != xi) ? xi : p;
      spb[i] = p;
    }
  }
}

SOFTFET_VECMATH_CLONES
void exp_capped_v(const double* x, double cap, double* e, double* de,
                  std::size_t n) {
  const double* __restrict xp = x;
  double* __restrict ep = e;
  double* __restrict dep = de;
  for (std::size_t i = 0; i < n; ++i) exp_capped_s(xp[i], cap, ep[i], dep[i]);
}

}  // namespace softfet::numeric::vecmath
