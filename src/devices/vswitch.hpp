// Smooth voltage-controlled switch: conductance blends from g_off to g_on
// with a logistic transition around the control threshold (the smoothness
// keeps Newton well-conditioned).
#pragma once

#include "sim/circuit.hpp"
#include "sim/device.hpp"

namespace softfet::devices {

struct VSwitchParams {
  double r_on = 1.0;       ///< on resistance [ohm]
  double r_off = 1e9;      ///< off resistance [ohm]
  double v_threshold = 0.5;  ///< control voltage at half transition [V]
  double v_width = 0.05;   ///< logistic transition width [V]
};

class VSwitch final : public sim::Device {
 public:
  VSwitch(std::string name, sim::NodeId p, sim::NodeId n, sim::NodeId cp,
          sim::NodeId cn, const VSwitchParams& params);

  void setup(sim::Circuit& circuit) override;
  void load(const std::vector<double>& x, sim::Stamper& stamper,
            const sim::LoadContext& ctx) override;
  /// Relaxed-determinism batched evaluation: one numeric::vecmath sigmoid
  /// sweep across all lanes' clamped control voltages.
  [[nodiscard]] bool supports_lane_load() const override { return true; }
  void load_lanes(sim::Device* const* peers, const sim::LaneLoadView* views,
                  std::size_t m) override;
  void load_ac(const std::vector<double>& x_op, sim::AcStamper& ac,
               double omega) override;

 private:
  sim::NodeId p_, n_, cp_, cn_;
  VSwitchParams params_;
  int up_ = sim::kGround, un_ = sim::kGround;
  int ucp_ = sim::kGround, ucn_ = sim::kGround;
};

}  // namespace softfet::devices
