// Phase Transition Material (PTM) two-terminal device.
//
// Substitutes the Verilog-A VO2 model the paper simulates with: a hysteretic
// resistor that abruptly switches between an insulating resistance R_INS and
// a metallic resistance R_MET.
//
// Behaviour (paper Section II, Fig. 2):
//  - insulating until the voltage magnitude across the device reaches V_IMT,
//    then an insulator->metal transition (IMT) begins;
//  - metallic until the magnitude falls to V_MIT, then a metal->insulator
//    transition (MIT) begins;
//  - each transition takes the intrinsic switching time T_PTM, modelled as a
//    constant-rate motion of the phase variable s in [0, 1]; the resistance
//    follows R(s) under the configurable PtmResistanceLaw (linear default).
//
// Threshold crossings are reported to the transient engine as events so the
// step lands exactly on the crossing; while the phase is in motion the
// device caps the timestep at T_PTM/5.
#pragma once

#include <cstdint>

#include "sim/circuit.hpp"
#include "sim/device.hpp"

namespace softfet::devices {

/// How the resistance interpolates while the phase variable s moves between
/// the insulating (s = 0) and metallic (s = 1) endpoints.
///  - kLinear: R(s) = (1-s)*R_INS + s*R_MET. The resistance recovers sharply
///    as soon as a metal->insulator transition starts, which reproduces the
///    crisp staircase steps of the paper's Verilog-A model (each metallic
///    excursion moves the soft node by ~V_IMT - V_MIT and stops).
///  - kLogarithmic: R(s) = R_INS^(1-s) * R_MET^s. The device lingers near
///    R_MET for most of the recovery; an alternative filament-style law
///    kept for ablation studies.
enum class PtmResistanceLaw : std::uint8_t { kLinear, kLogarithmic };

/// Default card: the paper's Fig. 4 experimental VO2 values (R_INS = 500k,
/// R_MET = 5k, T_PTM = 10 ps, V_IMT = 0.4 V) with V_MIT calibrated to 0.3 V
/// so the metallic catch-up re-insulates mid-edge against this technology
/// card's Miller-loaded gate capacitance (see DESIGN.md).
struct PtmParams {
  double r_ins = 500e3;   ///< insulating-state resistance [ohm]
  double r_met = 5e3;     ///< metallic-state resistance [ohm]
  double v_imt = 0.4;     ///< insulator->metal threshold voltage [V]
  double v_mit = 0.3;     ///< metal->insulator threshold voltage [V]
  double t_ptm = 10e-12;  ///< intrinsic phase switching time [s]
  PtmResistanceLaw law = PtmResistanceLaw::kLinear;

  /// Derived current thresholds (paper: I_IMT = V_IMT/R_INS etc.).
  [[nodiscard]] double i_imt() const noexcept { return v_imt / r_ins; }
  [[nodiscard]] double i_mit() const noexcept { return v_mit / r_met; }

  /// Throws InvalidCircuitError when inconsistent.
  void validate() const;
};

enum class PtmPhase : std::uint8_t { kInsulating, kMetallic };

class Ptm final : public sim::Device {
 public:
  Ptm(std::string name, sim::NodeId p, sim::NodeId n, const PtmParams& params);

  void setup(sim::Circuit& circuit) override;
  void load(const std::vector<double>& x, sim::Stamper& stamper,
            const sim::LoadContext& ctx) override;
  /// Relaxed-determinism batched evaluation. Linear-law lanes are plain
  /// arithmetic; logarithmic-law lanes share one numeric::vecmath exp sweep
  /// over the cached log-resistance interpolants.
  [[nodiscard]] bool supports_lane_load() const override { return true; }
  void load_lanes(sim::Device* const* peers, const sim::LaneLoadView* views,
                  std::size_t m) override;
  void load_ac(const std::vector<double>& x_op, sim::AcStamper& ac,
               double omega) override;
  void init_state(const std::vector<double>& x_op) override;
  void accept_step(const std::vector<double>& x,
                   const sim::LoadContext& ctx) override;
  double event_time(const std::vector<double>& x, double t_start,
                    double t_end) const override;
  [[nodiscard]] double max_timestep() const override;
  [[nodiscard]] std::vector<sim::Probe> probes() const override;
  void probe_values(std::vector<double>& out) const override {
    out.push_back(last_i_);
    out.push_back(resistance());
    out.push_back(s_);
  }
  void reset_state() override {
    s_ = 0.0;
    target_ = PtmPhase::kInsulating;
    v_prev_ = 0.0;
    last_i_ = 0.0;
    imt_count_ = 0;
    mit_count_ = 0;
  }
  bool update_quasistatic_state(const std::vector<double>& x) override;

  /// Swap in a new parameter card (validated); callers that reuse an
  /// elaborated testbench across Monte-Carlo samples pair this with
  /// reset_state() to make the device indistinguishable from freshly built.
  void set_params(const PtmParams& params) {
    params.validate();
    params_ = params;
    cache_log_resistances();
  }

  [[nodiscard]] const PtmParams& params() const noexcept { return params_; }
  [[nodiscard]] PtmPhase target_phase() const noexcept { return target_; }
  /// Phase position s in [0, 1]: 0 = fully insulating, 1 = fully metallic.
  [[nodiscard]] double phase_position() const noexcept { return s_; }
  /// Instantaneous resistance at the current phase position.
  [[nodiscard]] double resistance() const noexcept;

  [[nodiscard]] long imt_count() const noexcept { return imt_count_; }
  [[nodiscard]] long mit_count() const noexcept { return mit_count_; }
  void reset_transition_counts() noexcept {
    imt_count_ = 0;
    mit_count_ = 0;
  }

  /// R(s) under the configured resistance law, exposed for tests.
  [[nodiscard]] static double resistance_at(const PtmParams& params, double s);

 private:
  [[nodiscard]] double voltage_across(const std::vector<double>& x) const;
  /// Phase position after advancing `dt` toward the current target.
  [[nodiscard]] double projected_phase(double dt) const;
  void maybe_flip_target(double v);
  /// R(s) like resistance_at but using the cached std::log values — the
  /// same doubles resistance_at computes, so results are bit-identical
  /// while load() skips two logs per Newton iteration.
  [[nodiscard]] double resistance_cached(double s) const;
  void cache_log_resistances();

  sim::NodeId p_;
  sim::NodeId n_;
  PtmParams params_;
  double log_r_ins_ = 0.0;
  double log_r_met_ = 0.0;
  int up_ = sim::kGround;
  int un_ = sim::kGround;

  double s_ = 0.0;  // start fully insulating
  PtmPhase target_ = PtmPhase::kInsulating;
  double v_prev_ = 0.0;
  long imt_count_ = 0;
  long mit_count_ = 0;
  double last_i_ = 0.0;
  std::string probe_i_, probe_r_, probe_s_;
};

}  // namespace softfet::devices
