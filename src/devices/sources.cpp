#include "devices/sources.hpp"

#include "sim/ac.hpp"
#include <cmath>
#include <numbers>

#include "devices/common.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace softfet::devices {

// ---------------------------------------------------------------- SourceSpec

SourceSpec SourceSpec::dc(double value) {
  SourceSpec s;
  s.kind_ = Kind::kDc;
  s.dc_ = value;
  return s;
}

SourceSpec SourceSpec::pulse(double v1, double v2, double td, double tr,
                             double tf, double pw, double period) {
  if (tr < 0.0 || tf < 0.0 || pw < 0.0) {
    throw InvalidCircuitError("pulse source: negative timing parameter");
  }
  SourceSpec s;
  s.kind_ = Kind::kPulse;
  s.v1_ = v1;
  s.v2_ = v2;
  s.td_ = td;
  s.tr_ = tr;
  s.tf_ = tf;
  s.pw_ = pw;
  s.per_ = period;
  return s;
}

SourceSpec SourceSpec::pwl(std::vector<numeric::PwlPoint> points) {
  SourceSpec s;
  s.kind_ = Kind::kPwl;
  s.pwl_ = numeric::PwlCurve(std::move(points));
  return s;
}

SourceSpec SourceSpec::sine(double vo, double va, double freq, double td) {
  SourceSpec s;
  s.kind_ = Kind::kSin;
  s.vo_ = vo;
  s.va_ = va;
  s.freq_ = freq;
  s.sin_td_ = td;
  return s;
}

SourceSpec SourceSpec::ramp(double v0, double v1, double t0, double ramp_time) {
  if (t0 <= 0.0) return pwl({{0.0, v0}, {ramp_time, v1}});
  return pwl({{0.0, v0}, {t0, v0}, {t0 + ramp_time, v1}});
}

void SourceSpec::set_dc_value(double value) {
  kind_ = Kind::kDc;
  dc_ = value;
}

double SourceSpec::value(double time) const {
  switch (kind_) {
    case Kind::kDc:
      return dc_;
    case Kind::kPwl:
      return pwl_.value(time);
    case Kind::kSin: {
      if (time < sin_td_) return vo_;
      return vo_ + va_ * std::sin(2.0 * std::numbers::pi * freq_ *
                                  (time - sin_td_));
    }
    case Kind::kPulse: {
      if (time < td_) return v1_;
      double t = time - td_;
      if (per_ > 0.0) t = std::fmod(t, per_);
      if (t < tr_) return tr_ == 0.0 ? v2_ : v1_ + (v2_ - v1_) * (t / tr_);
      t -= tr_;
      if (t < pw_) return v2_;
      t -= pw_;
      if (t < tf_) return tf_ == 0.0 ? v1_ : v2_ + (v1_ - v2_) * (t / tf_);
      return v1_;
    }
  }
  return 0.0;
}

double SourceSpec::next_breakpoint(double time) const {
  constexpr double kEps = 1e-21;
  switch (kind_) {
    case Kind::kDc:
    case Kind::kSin:
      return sim::kNeverTime;
    case Kind::kPwl: {
      for (const auto& point : pwl_.points()) {
        if (point.x > time + kEps) return point.x;
      }
      return sim::kNeverTime;
    }
    case Kind::kPulse: {
      // Corners within one period, repeated if periodic.
      const double corners[4] = {0.0, tr_, tr_ + pw_, tr_ + pw_ + tf_};
      if (time < td_ - kEps) return td_;
      const double t_rel = time - td_;
      const double cycle =
          per_ > 0.0 ? std::floor(t_rel / per_) * per_ : 0.0;
      for (int rep = 0; rep < 2; ++rep) {
        const double base = cycle + (per_ > 0.0 ? rep * per_ : 0.0);
        for (const double corner : corners) {
          const double t_abs = td_ + base + corner;
          if (t_abs > time + kEps) return t_abs;
        }
        if (per_ <= 0.0) break;
      }
      return sim::kNeverTime;
    }
  }
  return sim::kNeverTime;
}

// ------------------------------------------------------------------ VSource

VSource::VSource(std::string name, sim::NodeId p, sim::NodeId n,
                 SourceSpec spec)
    : Device(std::move(name)), p_(p), n_(n), spec_(std::move(spec)) {}

void VSource::setup(sim::Circuit& circuit) {
  up_ = circuit.node_unknown(p_);
  un_ = circuit.node_unknown(n_);
  branch_ = circuit.claim_branch_unknown("i(" + util::to_lower(name()) + ")");
}

void VSource::load(const std::vector<double>& x, sim::Stamper& stamper,
                   const sim::LoadContext& ctx) {
  const double i = x[static_cast<std::size_t>(branch_)];
  stamper.add_residual(up_, i);
  stamper.add_residual(un_, -i);
  stamper.add_jacobian(up_, branch_, 1.0);
  stamper.add_jacobian(un_, branch_, -1.0);

  const double target = spec_.value(ctx.time) * ctx.source_scale;
  const double vp = voltage_of(x, up_);
  const double vn = voltage_of(x, un_);
  stamper.add_residual(branch_, vp - vn - target);
  stamper.add_jacobian(branch_, up_, 1.0);
  stamper.add_jacobian(branch_, un_, -1.0);
}

void VSource::load_ac(const std::vector<double>& /*x_op*/, sim::AcStamper& ac,
                      double /*omega*/) {
  ac.add_matrix(up_, branch_, 1.0);
  ac.add_matrix(un_, branch_, -1.0);
  ac.add_matrix(branch_, up_, 1.0);
  ac.add_matrix(branch_, un_, -1.0);
  ac.add_rhs(branch_, spec_.ac_magnitude());
}

double VSource::next_breakpoint(double time) const {
  return spec_.next_breakpoint(time);
}

void VSource::set_dc(double value) { spec_.set_dc_value(value); }

// ------------------------------------------------------------------ ISource

ISource::ISource(std::string name, sim::NodeId p, sim::NodeId n,
                 SourceSpec spec)
    : Device(std::move(name)), p_(p), n_(n), spec_(std::move(spec)) {}

void ISource::setup(sim::Circuit& circuit) {
  up_ = circuit.node_unknown(p_);
  un_ = circuit.node_unknown(n_);
}

void ISource::load(const std::vector<double>& /*x*/, sim::Stamper& stamper,
                   const sim::LoadContext& ctx) {
  const double i = spec_.value(ctx.time) * ctx.source_scale;
  stamper.add_residual(up_, i);
  stamper.add_residual(un_, -i);
}

void ISource::load_ac(const std::vector<double>& /*x_op*/, sim::AcStamper& ac,
                      double /*omega*/) {
  // KCL rows are "sum of leaving currents = 0"; the source's constant
  // contribution moves to the right-hand side with flipped sign.
  ac.add_rhs(up_, -spec_.ac_magnitude());
  ac.add_rhs(un_, spec_.ac_magnitude());
}

double ISource::next_breakpoint(double time) const {
  return spec_.next_breakpoint(time);
}

void ISource::set_dc(double value) { spec_.set_dc_value(value); }

}  // namespace softfet::devices
