#include "devices/mosfet.hpp"

#include "sim/ac.hpp"
#include <cmath>

#include "devices/common.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace softfet::devices {

namespace {

// ln(1 + e^x), overflow-safe.
[[nodiscard]] double softplus(double x) {
  if (x > 30.0) return x + std::exp(-x);  // log1p(e^-x) ~ e^-x
  return std::log1p(std::exp(x));
}

// d softplus / dx = logistic(x), overflow-safe.
[[nodiscard]] double logistic(double x) {
  if (x >= 0.0) {
    const double e = std::exp(-x);
    return 1.0 / (1.0 + e);
  }
  const double e = std::exp(x);
  return e / (1.0 + e);
}

/// Smoothed Shichman-Hodges Level-1, forward mode (vds >= 0). Hard cutoffs
/// are softened over a few mV so Newton sees continuous derivatives.
[[nodiscard]] MosOperatingPoint evaluate_square_law(const MosfetModel& m,
                                                    const MosfetDims& dims,
                                                    double vgs, double vds) {
  constexpr double kSmooth = 5e-3;  // smoothing temperature [V]
  const double beta = m.kp * (dims.w / dims.l) * dims.m;

  // Smooth overdrive: vov = softplus((vgs - vt0)/kSmooth)*kSmooth.
  const double a = (vgs - m.vt0) / kSmooth;
  const double vov = kSmooth * softplus(a);
  const double dvov = logistic(a);

  // Smooth min(vds, vov): vdse = vov - kSmooth*softplus((vov - vds)/kSmooth).
  const double b = (vov - vds) / kSmooth;
  const double vdse = vov - kSmooth * softplus(b);
  const double dvdse_dvov = 1.0 - logistic(b);
  const double dvdse_dvds = logistic(b);

  // I = beta * (vov - vdse/2) * vdse * (1 + lambda*vds).
  const double clm = 1.0 + m.lambda * vds;
  const double core = (vov - 0.5 * vdse) * vdse;
  const double dcore_dvov = vdse + (vov - vdse) * dvdse_dvov;
  const double dcore_dvds = (vov - vdse) * dvdse_dvds;

  MosOperatingPoint op;
  op.id = beta * core * clm;
  op.gm = beta * clm * dcore_dvov * dvov;
  op.gds = beta * (clm * dcore_dvds + core * m.lambda);
  return op;
}

/// Forward-mode evaluation, requires vds >= 0.
[[nodiscard]] MosOperatingPoint evaluate_forward(const MosfetModel& m,
                                                 const MosfetDims& dims,
                                                 double vgs, double vds) {
  if (m.level == MosfetLevel::kSquareLaw) {
    return evaluate_square_law(m, dims, vgs, vds);
  }
  const double nvt2 = 2.0 * m.n * m.v_thermal;
  const double i_s =
      2.0 * m.n * m.kp * (dims.w / dims.l) * dims.m * m.v_thermal * m.v_thermal;

  const double af = (vgs - m.vt0) / nvt2;
  const double ar = (vgs - m.vt0 - m.n * vds) / nvt2;
  const double lf = softplus(af);
  const double lr = softplus(ar);
  const double sf = logistic(af);
  const double sr = logistic(ar);

  const double base = lf * lf - lr * lr;
  const double dbase_dvgs = 2.0 * (lf * sf - lr * sr) / nvt2;
  const double dbase_dvds = 2.0 * lr * sr / (2.0 * m.v_thermal);  // -d(lr^2)/dvds

  const double clm = 1.0 + m.lambda * vds;

  // Smooth gate overdrive for the mobility term: ~ (vgs - vt0) when on, ~0 off.
  const double vov = nvt2 * lf;
  const double dvov_dvgs = sf;
  const double mob = 1.0 / (1.0 + m.theta * vov);
  const double dmob_dvgs = -m.theta * dvov_dvgs * mob * mob;

  MosOperatingPoint op;
  op.id = i_s * base * clm * mob;
  op.gm = i_s * clm * (mob * dbase_dvgs + base * dmob_dvgs);
  op.gds = i_s * mob * (base * m.lambda + clm * dbase_dvds);
  return op;
}

}  // namespace

MosOperatingPoint mosfet_evaluate(const MosfetModel& model,
                                  const MosfetDims& dims, double vgs,
                                  double vds) {
  if (vds >= 0.0) return evaluate_forward(model, dims, vgs, vds);
  // Source/drain exchange: id(vgs, vds) = -id'(vgs - vds, -vds).
  const MosOperatingPoint fwd =
      evaluate_forward(model, dims, vgs - vds, -vds);
  MosOperatingPoint op;
  op.id = -fwd.id;
  op.gm = -fwd.gm;
  op.gds = fwd.gm + fwd.gds;
  return op;
}

Mosfet::Mosfet(std::string name, sim::NodeId drain, sim::NodeId gate,
               sim::NodeId source, sim::NodeId bulk, const MosfetModel& model,
               const MosfetDims& dims)
    : Device(std::move(name)), d_(drain), g_(gate), s_(source), b_(bulk),
      model_(model), dims_(dims) {
  if (!(dims.w > 0.0) || !(dims.l > 0.0) || !(dims.m > 0.0)) {
    throw InvalidCircuitError("mosfet " + this->name() +
                              ": dimensions must be positive");
  }
  probe_name_ = "id(" + util::to_lower(this->name()) + ")";
}

double Mosfet::gate_capacitance() const noexcept {
  const double c_half = 0.5 * model_.cox * dims_.w * dims_.l;
  const double c_ov = model_.cov * dims_.w;
  return 2.0 * (c_half + c_ov) * dims_.m;
}

void Mosfet::setup(sim::Circuit& circuit) {
  ud_ = circuit.node_unknown(d_);
  ug_ = circuit.node_unknown(g_);
  us_ = circuit.node_unknown(s_);
  ub_ = circuit.node_unknown(b_);

  const double c_g = (0.5 * model_.cox * dims_.w * dims_.l +
                      model_.cov * dims_.w) * dims_.m;
  const double c_j = model_.cj * dims_.w * dims_.m;
  cgs_ = CapBranch{{}, ug_, us_, c_g};
  cgd_ = CapBranch{{}, ug_, ud_, c_g};
  cdb_ = CapBranch{{}, ud_, ub_, c_j};
  csb_ = CapBranch{{}, us_, ub_, c_j};
}

double Mosfet::channel_current(const std::vector<double>& x,
                               MosOperatingPoint* op) const {
  const double vd = voltage_of(x, ud_);
  const double vg = voltage_of(x, ug_);
  const double vs = voltage_of(x, us_);
  const double sign = (model_.polarity == MosPolarity::kNmos) ? 1.0 : -1.0;
  const MosOperatingPoint eq =
      mosfet_evaluate(model_, dims_, sign * (vg - vs), sign * (vd - vs));
  if (op != nullptr) *op = eq;
  return sign * eq.id;
}

void Mosfet::stamp_cap(CapBranch& cap, const std::vector<double>& x,
                       sim::Stamper& stamper,
                       const sim::LoadContext& ctx) const {
  const double q =
      cap.c * (voltage_of(x, cap.ua) - voltage_of(x, cap.ub));
  const double i = cap.companion.current(q, ctx);
  const double geq = sim::CompanionCap::scale(ctx) * cap.c;
  stamper.add_residual(cap.ua, i);
  stamper.add_residual(cap.ub, -i);
  stamper.add_jacobian(cap.ua, cap.ua, geq);
  stamper.add_jacobian(cap.ub, cap.ub, geq);
  stamper.add_jacobian(cap.ua, cap.ub, -geq);
  stamper.add_jacobian(cap.ub, cap.ua, -geq);
}

void Mosfet::load(const std::vector<double>& x, sim::Stamper& stamper,
                  const sim::LoadContext& ctx) {
  MosOperatingPoint eq;
  const double sign = (model_.polarity == MosPolarity::kNmos) ? 1.0 : -1.0;
  const double id = channel_current(x, &eq);

  // With v_eq = sign*(v - vs) the chain rule gives polarity-independent
  // partials: d id / d vg = gm, d id / d vd = gds, d id / d vs = -(gm+gds).
  (void)sign;
  const double gm = eq.gm;
  const double gds = eq.gds;

  stamper.add_residual(ud_, id);
  stamper.add_residual(us_, -id);
  stamper.add_jacobian(ud_, ug_, gm);
  stamper.add_jacobian(ud_, ud_, gds);
  stamper.add_jacobian(ud_, us_, -(gm + gds));
  stamper.add_jacobian(us_, ug_, -gm);
  stamper.add_jacobian(us_, ud_, -gds);
  stamper.add_jacobian(us_, us_, gm + gds);

  if (ctx.mode == sim::AnalysisMode::kTransient) {
    stamp_cap(cgs_, x, stamper, ctx);
    stamp_cap(cgd_, x, stamper, ctx);
    stamp_cap(cdb_, x, stamper, ctx);
    stamp_cap(csb_, x, stamper, ctx);
  }
}

void Mosfet::load_ac(const std::vector<double>& x_op, sim::AcStamper& ac,
                     double omega) {
  MosOperatingPoint eq;
  (void)channel_current(x_op, &eq);
  // Same polarity-independent partials as the transient Jacobian.
  ac.add_matrix(ud_, ug_, eq.gm);
  ac.add_matrix(ud_, ud_, eq.gds);
  ac.add_matrix(ud_, us_, -(eq.gm + eq.gds));
  ac.add_matrix(us_, ug_, -eq.gm);
  ac.add_matrix(us_, ud_, -eq.gds);
  ac.add_matrix(us_, us_, eq.gm + eq.gds);
  for (const CapBranch* cap : {&cgs_, &cgd_, &cdb_, &csb_}) {
    ac.add_admittance(cap->ua, cap->ub, numeric::Complex(0.0, omega * cap->c));
  }
}

void Mosfet::init_state(const std::vector<double>& x_op) {
  const auto init_cap = [&](CapBranch& cap) {
    cap.companion.init(cap.c *
                       (voltage_of(x_op, cap.ua) - voltage_of(x_op, cap.ub)));
  };
  init_cap(cgs_);
  init_cap(cgd_);
  init_cap(cdb_);
  init_cap(csb_);
  last_id_ = channel_current(x_op);
}

void Mosfet::accept_step(const std::vector<double>& x,
                         const sim::LoadContext& ctx) {
  const auto accept_cap = [&](CapBranch& cap) {
    cap.companion.accept(
        cap.c * (voltage_of(x, cap.ua) - voltage_of(x, cap.ub)), ctx);
  };
  accept_cap(cgs_);
  accept_cap(cgd_);
  accept_cap(cdb_);
  accept_cap(csb_);
  last_id_ = channel_current(x);
}

std::vector<sim::Probe> Mosfet::probes() const {
  return {{probe_name_, last_id_}};
}

}  // namespace softfet::devices
