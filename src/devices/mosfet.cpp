#include "devices/mosfet.hpp"

#include "sim/ac.hpp"
#include <cmath>

#include "devices/common.hpp"
#include "numeric/vecmath.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace softfet::devices {

namespace {

// ln(1 + e^x), overflow-safe.
[[nodiscard]] double softplus(double x) {
  if (x > 30.0) return x + std::exp(-x);  // log1p(e^-x) ~ e^-x
  return std::log1p(std::exp(x));
}

// d softplus / dx = logistic(x), overflow-safe.
[[nodiscard]] double logistic(double x) {
  if (x >= 0.0) {
    const double e = std::exp(-x);
    return 1.0 / (1.0 + e);
  }
  const double e = std::exp(x);
  return e / (1.0 + e);
}

// Smoothing temperature of the square-law cutoff softening [V].
constexpr double kSmooth = 5e-3;

/// Square-law arithmetic after the two softplus/logistic rounds. Shared by
/// the scalar path (libm transcendentals) and the lane path (vecmath
/// kernels) so the model algebra exists exactly once.
[[nodiscard]] MosOperatingPoint square_law_from_kernels(
    const MosfetModel& m, const MosfetDims& dims, double vds, double vov,
    double dvov, double sp_b, double sg_b) {
  const double beta = m.kp * (dims.w / dims.l) * dims.m;

  // Smooth min(vds, vov): vdse = vov - kSmooth*softplus((vov - vds)/kSmooth).
  const double vdse = vov - kSmooth * sp_b;
  const double dvdse_dvov = 1.0 - sg_b;
  const double dvdse_dvds = sg_b;

  // I = beta * (vov - vdse/2) * vdse * (1 + lambda*vds).
  const double clm = 1.0 + m.lambda * vds;
  const double core = (vov - 0.5 * vdse) * vdse;
  const double dcore_dvov = vdse + (vov - vdse) * dvdse_dvov;
  const double dcore_dvds = (vov - vdse) * dvdse_dvds;

  MosOperatingPoint op;
  op.id = beta * core * clm;
  op.gm = beta * clm * dcore_dvov * dvov;
  op.gds = beta * (clm * dcore_dvds + core * m.lambda);
  return op;
}

/// Smoothed Shichman-Hodges Level-1, forward mode (vds >= 0). Hard cutoffs
/// are softened over a few mV so Newton sees continuous derivatives.
[[nodiscard]] MosOperatingPoint evaluate_square_law(const MosfetModel& m,
                                                    const MosfetDims& dims,
                                                    double vgs, double vds) {
  // Smooth overdrive: vov = softplus((vgs - vt0)/kSmooth)*kSmooth.
  const double a = (vgs - m.vt0) / kSmooth;
  const double vov = kSmooth * softplus(a);
  const double dvov = logistic(a);
  const double b = (vov - vds) / kSmooth;
  return square_law_from_kernels(m, dims, vds, vov, dvov, softplus(b),
                                 logistic(b));
}

/// EKV arithmetic after the softplus/logistic evaluations of the forward
/// (af) and reverse (ar) normalized overdrives. Shared by the scalar and
/// lane paths like square_law_from_kernels.
[[nodiscard]] MosOperatingPoint ekv_from_kernels(const MosfetModel& m,
                                                 const MosfetDims& dims,
                                                 double vds, double lf,
                                                 double lr, double sf,
                                                 double sr) {
  const double nvt2 = 2.0 * m.n * m.v_thermal;
  const double i_s =
      2.0 * m.n * m.kp * (dims.w / dims.l) * dims.m * m.v_thermal * m.v_thermal;

  const double base = lf * lf - lr * lr;
  const double dbase_dvgs = 2.0 * (lf * sf - lr * sr) / nvt2;
  const double dbase_dvds = 2.0 * lr * sr / (2.0 * m.v_thermal);  // -d(lr^2)/dvds

  const double clm = 1.0 + m.lambda * vds;

  // Smooth gate overdrive for the mobility term: ~ (vgs - vt0) when on, ~0 off.
  const double vov = nvt2 * lf;
  const double dvov_dvgs = sf;
  const double mob = 1.0 / (1.0 + m.theta * vov);
  const double dmob_dvgs = -m.theta * dvov_dvgs * mob * mob;

  MosOperatingPoint op;
  op.id = i_s * base * clm * mob;
  op.gm = i_s * clm * (mob * dbase_dvgs + base * dmob_dvgs);
  op.gds = i_s * mob * (base * m.lambda + clm * dbase_dvds);
  return op;
}

/// Forward-mode evaluation, requires vds >= 0.
[[nodiscard]] MosOperatingPoint evaluate_forward(const MosfetModel& m,
                                                 const MosfetDims& dims,
                                                 double vgs, double vds) {
  if (m.level == MosfetLevel::kSquareLaw) {
    return evaluate_square_law(m, dims, vgs, vds);
  }
  const double nvt2 = 2.0 * m.n * m.v_thermal;
  const double af = (vgs - m.vt0) / nvt2;
  const double ar = (vgs - m.vt0 - m.n * vds) / nvt2;
  return ekv_from_kernels(m, dims, vds, softplus(af), softplus(ar),
                          logistic(af), logistic(ar));
}

/// NMOS-equivalent terminal voltages of one lane, with the source/drain
/// exchange already resolved to forward (vds >= 0) coordinates.
struct LaneVoltages {
  double vds_eq = 0.0;  ///< pre-exchange NMOS-equivalent vds
  double vgs_f = 0.0;   ///< forward-mode vgs
  double vds_f = 0.0;   ///< forward-mode vds (>= 0)
  bool reversed = false;
};

[[nodiscard]] LaneVoltages lane_voltages(const MosfetModel& m,
                                         const std::vector<double>& x, int ud,
                                         int ug, int us) {
  const double vd = voltage_of(x, ud);
  const double vg = voltage_of(x, ug);
  const double vs = voltage_of(x, us);
  const double sign = (m.polarity == MosPolarity::kNmos) ? 1.0 : -1.0;
  LaneVoltages lv;
  const double vgs = sign * (vg - vs);
  lv.vds_eq = sign * (vd - vs);
  lv.reversed = lv.vds_eq < 0.0;
  lv.vgs_f = lv.reversed ? vgs - lv.vds_eq : vgs;
  lv.vds_f = lv.reversed ? -lv.vds_eq : lv.vds_eq;
  return lv;
}

/// Fold a forward-mode operating point back through the source/drain
/// exchange (mosfet_evaluate's vds < 0 branch).
[[nodiscard]] MosOperatingPoint unexchange(const MosOperatingPoint& fwd,
                                           bool reversed) {
  if (!reversed) return fwd;
  MosOperatingPoint op;
  op.id = -fwd.id;
  op.gm = -fwd.gm;
  op.gds = fwd.gm + fwd.gds;
  return op;
}

}  // namespace

MosOperatingPoint mosfet_evaluate(const MosfetModel& model,
                                  const MosfetDims& dims, double vgs,
                                  double vds) {
  if (vds >= 0.0) return evaluate_forward(model, dims, vgs, vds);
  // Source/drain exchange: id(vgs, vds) = -id'(vgs - vds, -vds).
  return unexchange(evaluate_forward(model, dims, vgs - vds, -vds), true);
}

Mosfet::Mosfet(std::string name, sim::NodeId drain, sim::NodeId gate,
               sim::NodeId source, sim::NodeId bulk, const MosfetModel& model,
               const MosfetDims& dims)
    : Device(std::move(name)), d_(drain), g_(gate), s_(source), b_(bulk),
      model_(model), dims_(dims) {
  if (!(dims.w > 0.0) || !(dims.l > 0.0) || !(dims.m > 0.0)) {
    throw InvalidCircuitError("mosfet " + this->name() +
                              ": dimensions must be positive");
  }
  probe_name_ = "id(" + util::to_lower(this->name()) + ")";
}

double Mosfet::gate_capacitance() const noexcept {
  const double c_half = 0.5 * model_.cox * dims_.w * dims_.l;
  const double c_ov = model_.cov * dims_.w;
  return 2.0 * (c_half + c_ov) * dims_.m;
}

void Mosfet::setup(sim::Circuit& circuit) {
  ud_ = circuit.node_unknown(d_);
  ug_ = circuit.node_unknown(g_);
  us_ = circuit.node_unknown(s_);
  ub_ = circuit.node_unknown(b_);

  const double c_g = (0.5 * model_.cox * dims_.w * dims_.l +
                      model_.cov * dims_.w) * dims_.m;
  const double c_j = model_.cj * dims_.w * dims_.m;
  cgs_ = CapBranch{{}, ug_, us_, c_g};
  cgd_ = CapBranch{{}, ug_, ud_, c_g};
  cdb_ = CapBranch{{}, ud_, ub_, c_j};
  csb_ = CapBranch{{}, us_, ub_, c_j};
}

double Mosfet::channel_current(const std::vector<double>& x,
                               MosOperatingPoint* op) const {
  const double vd = voltage_of(x, ud_);
  const double vg = voltage_of(x, ug_);
  const double vs = voltage_of(x, us_);
  const double sign = (model_.polarity == MosPolarity::kNmos) ? 1.0 : -1.0;
  const MosOperatingPoint eq =
      mosfet_evaluate(model_, dims_, sign * (vg - vs), sign * (vd - vs));
  if (op != nullptr) *op = eq;
  return sign * eq.id;
}

void Mosfet::stamp_cap(CapBranch& cap, const std::vector<double>& x,
                       sim::Stamper& stamper,
                       const sim::LoadContext& ctx) const {
  const double q =
      cap.c * (voltage_of(x, cap.ua) - voltage_of(x, cap.ub));
  const double i = cap.companion.current(q, ctx);
  const double geq = sim::CompanionCap::scale(ctx) * cap.c;
  stamper.add_residual(cap.ua, i);
  stamper.add_residual(cap.ub, -i);
  stamper.add_jacobian(cap.ua, cap.ua, geq);
  stamper.add_jacobian(cap.ub, cap.ub, geq);
  stamper.add_jacobian(cap.ua, cap.ub, -geq);
  stamper.add_jacobian(cap.ub, cap.ua, -geq);
}

void Mosfet::stamp_channel(const MosOperatingPoint& eq,
                           const std::vector<double>& x, sim::Stamper& stamper,
                           const sim::LoadContext& ctx) {
  const double sign = (model_.polarity == MosPolarity::kNmos) ? 1.0 : -1.0;
  const double id = sign * eq.id;

  // With v_eq = sign*(v - vs) the chain rule gives polarity-independent
  // partials: d id / d vg = gm, d id / d vd = gds, d id / d vs = -(gm+gds).
  const double gm = eq.gm;
  const double gds = eq.gds;

  stamper.add_residual(ud_, id);
  stamper.add_residual(us_, -id);
  stamper.add_jacobian(ud_, ug_, gm);
  stamper.add_jacobian(ud_, ud_, gds);
  stamper.add_jacobian(ud_, us_, -(gm + gds));
  stamper.add_jacobian(us_, ug_, -gm);
  stamper.add_jacobian(us_, ud_, -gds);
  stamper.add_jacobian(us_, us_, gm + gds);

  if (ctx.mode == sim::AnalysisMode::kTransient) {
    stamp_cap(cgs_, x, stamper, ctx);
    stamp_cap(cgd_, x, stamper, ctx);
    stamp_cap(cdb_, x, stamper, ctx);
    stamp_cap(csb_, x, stamper, ctx);
  }
}

void Mosfet::load(const std::vector<double>& x, sim::Stamper& stamper,
                  const sim::LoadContext& ctx) {
  MosOperatingPoint eq;
  (void)channel_current(x, &eq);
  stamp_channel(eq, x, stamper, ctx);
}

void Mosfet::load_lanes(sim::Device* const* peers,
                        const sim::LaneLoadView* views, std::size_t m) {
  // The SoA gather assumes one equation set across lanes; Monte-Carlo lanes
  // only vary parameters, but guard anyway and fall back to the scalar loop.
  for (std::size_t i = 0; i < m; ++i) {
    if (static_cast<const Mosfet*>(peers[i])->model_.level != model_.level) {
      Device::load_lanes(peers, views, m);
      return;
    }
  }

  thread_local std::vector<double> arg;
  thread_local std::vector<double> sp;
  thread_local std::vector<double> sg;
  thread_local std::vector<LaneVoltages> lv;
  lv.resize(m);
  for (std::size_t i = 0; i < m; ++i) {
    const auto& dev = *static_cast<const Mosfet*>(peers[i]);
    lv[i] = lane_voltages(dev.model_, *views[i].x, dev.ud_, dev.ug_, dev.us_);
  }

  if (model_.level == MosfetLevel::kEkv) {
    // One fused kernel sweep over both normalized overdrives of every lane:
    // arg = [af0, ar0, af1, ar1, ...].
    arg.resize(2 * m);
    sp.resize(2 * m);
    sg.resize(2 * m);
    for (std::size_t i = 0; i < m; ++i) {
      const MosfetModel& mm = static_cast<const Mosfet*>(peers[i])->model_;
      const double nvt2 = 2.0 * mm.n * mm.v_thermal;
      arg[2 * i] = (lv[i].vgs_f - mm.vt0) / nvt2;
      arg[2 * i + 1] = (lv[i].vgs_f - mm.vt0 - mm.n * lv[i].vds_f) / nvt2;
    }
    numeric::vecmath::softplus_sigmoid_v(arg.data(), sp.data(), sg.data(),
                                         2 * m);
    for (std::size_t i = 0; i < m; ++i) {
      auto& dev = *static_cast<Mosfet*>(peers[i]);
      const MosOperatingPoint eq =
          unexchange(ekv_from_kernels(dev.model_, dev.dims_, lv[i].vds_f,
                                      sp[2 * i], sp[2 * i + 1], sg[2 * i],
                                      sg[2 * i + 1]),
                     lv[i].reversed);
      dev.stamp_channel(eq, *views[i].x, *views[i].stamper, *views[i].ctx);
    }
    return;
  }

  // Square law: two dependent kernel rounds (the drain-saturation argument
  // needs the overdrive from the first round).
  arg.resize(m);
  sp.resize(m);
  sg.resize(m);
  thread_local std::vector<double> vov;
  thread_local std::vector<double> dvov;
  vov.resize(m);
  dvov.resize(m);
  for (std::size_t i = 0; i < m; ++i) {
    const MosfetModel& mm = static_cast<const Mosfet*>(peers[i])->model_;
    arg[i] = (lv[i].vgs_f - mm.vt0) / kSmooth;
  }
  numeric::vecmath::softplus_sigmoid_v(arg.data(), sp.data(), sg.data(), m);
  for (std::size_t i = 0; i < m; ++i) {
    vov[i] = kSmooth * sp[i];
    dvov[i] = sg[i];
    arg[i] = (vov[i] - lv[i].vds_f) / kSmooth;
  }
  numeric::vecmath::softplus_sigmoid_v(arg.data(), sp.data(), sg.data(), m);
  for (std::size_t i = 0; i < m; ++i) {
    auto& dev = *static_cast<Mosfet*>(peers[i]);
    const MosOperatingPoint eq = unexchange(
        square_law_from_kernels(dev.model_, dev.dims_, lv[i].vds_f, vov[i],
                                dvov[i], sp[i], sg[i]),
        lv[i].reversed);
    dev.stamp_channel(eq, *views[i].x, *views[i].stamper, *views[i].ctx);
  }
}

void Mosfet::load_ac(const std::vector<double>& x_op, sim::AcStamper& ac,
                     double omega) {
  MosOperatingPoint eq;
  (void)channel_current(x_op, &eq);
  // Same polarity-independent partials as the transient Jacobian.
  ac.add_matrix(ud_, ug_, eq.gm);
  ac.add_matrix(ud_, ud_, eq.gds);
  ac.add_matrix(ud_, us_, -(eq.gm + eq.gds));
  ac.add_matrix(us_, ug_, -eq.gm);
  ac.add_matrix(us_, ud_, -eq.gds);
  ac.add_matrix(us_, us_, eq.gm + eq.gds);
  for (const CapBranch* cap : {&cgs_, &cgd_, &cdb_, &csb_}) {
    ac.add_admittance(cap->ua, cap->ub, numeric::Complex(0.0, omega * cap->c));
  }
}

void Mosfet::init_state(const std::vector<double>& x_op) {
  const auto init_cap = [&](CapBranch& cap) {
    cap.companion.init(cap.c *
                       (voltage_of(x_op, cap.ua) - voltage_of(x_op, cap.ub)));
  };
  init_cap(cgs_);
  init_cap(cgd_);
  init_cap(cdb_);
  init_cap(csb_);
  last_id_ = channel_current(x_op);
}

void Mosfet::accept_step(const std::vector<double>& x,
                         const sim::LoadContext& ctx) {
  const auto accept_cap = [&](CapBranch& cap) {
    cap.companion.accept(
        cap.c * (voltage_of(x, cap.ua) - voltage_of(x, cap.ub)), ctx);
  };
  accept_cap(cgs_);
  accept_cap(cgd_);
  accept_cap(cdb_);
  accept_cap(csb_);
  last_id_ = channel_current(x);
}

std::vector<sim::Probe> Mosfet::probes() const {
  return {{probe_name_, last_id_}};
}

}  // namespace softfet::devices
