#include "devices/capacitor.hpp"

#include "sim/ac.hpp"
#include "devices/common.hpp"
#include "util/error.hpp"

namespace softfet::devices {

Capacitor::Capacitor(std::string name, sim::NodeId p, sim::NodeId n,
                     double capacitance)
    : Device(std::move(name)), p_(p), n_(n), capacitance_(capacitance) {
  if (!(capacitance > 0.0)) {
    throw InvalidCircuitError("capacitor " + this->name() +
                              ": capacitance must be positive");
  }
}

void Capacitor::setup(sim::Circuit& circuit) {
  up_ = circuit.node_unknown(p_);
  un_ = circuit.node_unknown(n_);
}

double Capacitor::charge(const std::vector<double>& x) const {
  return capacitance_ * (voltage_of(x, up_) - voltage_of(x, un_));
}

void Capacitor::load(const std::vector<double>& x, sim::Stamper& stamper,
                     const sim::LoadContext& ctx) {
  if (ctx.mode != sim::AnalysisMode::kTransient) return;  // open in DC
  const double i = companion_.current(charge(x), ctx);
  const double geq = sim::CompanionCap::scale(ctx) * capacitance_;
  stamper.add_residual(up_, i);
  stamper.add_residual(un_, -i);
  stamper.add_jacobian(up_, up_, geq);
  stamper.add_jacobian(un_, un_, geq);
  stamper.add_jacobian(up_, un_, -geq);
  stamper.add_jacobian(un_, up_, -geq);
}

void Capacitor::init_state(const std::vector<double>& x_op) {
  companion_.init(charge(x_op));
}

void Capacitor::accept_step(const std::vector<double>& x,
                            const sim::LoadContext& ctx) {
  companion_.accept(charge(x), ctx);
}

void Capacitor::load_ac(const std::vector<double>& /*x_op*/,
                        sim::AcStamper& ac, double omega) {
  ac.add_admittance(up_, un_, numeric::Complex(0.0, omega * capacitance_));
}

}  // namespace softfet::devices
