// Junction diode with an overflow-safe exponential.
#pragma once

#include "sim/circuit.hpp"
#include "sim/device.hpp"

namespace softfet::devices {

struct DiodeParams {
  double i_sat = 1e-14;   ///< saturation current [A]
  double emission = 1.0;  ///< ideality factor n
  double v_thermal = 0.02585;  ///< kT/q [V]
};

class Diode final : public sim::Device {
 public:
  Diode(std::string name, sim::NodeId anode, sim::NodeId cathode,
        const DiodeParams& params = {});

  void setup(sim::Circuit& circuit) override;
  void load(const std::vector<double>& x, sim::Stamper& stamper,
            const sim::LoadContext& ctx) override;
  /// Relaxed-determinism batched evaluation with the numeric::vecmath
  /// capped-exp kernel across all lanes (ULP-level difference vs load()).
  [[nodiscard]] bool supports_lane_load() const override { return true; }
  void load_lanes(sim::Device* const* peers, const sim::LaneLoadView* views,
                  std::size_t m) override;
  void load_ac(const std::vector<double>& x_op, sim::AcStamper& ac,
               double omega) override;

  /// Argument above which the junction exponential is extended linearly so
  /// Newton iterates stay finite.
  static constexpr double kExpCap = 80.0;

  /// i(v) and di/dv of the junction alone (exposed for tests).
  static void evaluate(const DiodeParams& params, double v, double& i,
                       double& g);

 private:
  sim::NodeId anode_;
  sim::NodeId cathode_;
  DiodeParams params_;
  int ua_ = sim::kGround;
  int uc_ = sim::kGround;
};

}  // namespace softfet::devices
