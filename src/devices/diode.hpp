// Junction diode with an overflow-safe exponential.
#pragma once

#include "sim/circuit.hpp"
#include "sim/device.hpp"

namespace softfet::devices {

struct DiodeParams {
  double i_sat = 1e-14;   ///< saturation current [A]
  double emission = 1.0;  ///< ideality factor n
  double v_thermal = 0.02585;  ///< kT/q [V]
};

class Diode final : public sim::Device {
 public:
  Diode(std::string name, sim::NodeId anode, sim::NodeId cathode,
        const DiodeParams& params = {});

  void setup(sim::Circuit& circuit) override;
  void load(const std::vector<double>& x, sim::Stamper& stamper,
            const sim::LoadContext& ctx) override;
  void load_ac(const std::vector<double>& x_op, sim::AcStamper& ac,
               double omega) override;

  /// i(v) and di/dv of the junction alone (exposed for tests).
  static void evaluate(const DiodeParams& params, double v, double& i,
                       double& g);

 private:
  sim::NodeId anode_;
  sim::NodeId cathode_;
  DiodeParams params_;
  int ua_ = sim::kGround;
  int uc_ = sim::kGround;
};

}  // namespace softfet::devices
