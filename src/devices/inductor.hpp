// Linear two-terminal inductor; the branch current is an MNA unknown,
// so the element behaves as a short in DC.
#pragma once

#include "sim/circuit.hpp"
#include "sim/device.hpp"

namespace softfet::devices {

class Inductor final : public sim::Device {
 public:
  Inductor(std::string name, sim::NodeId p, sim::NodeId n, double inductance);

  void setup(sim::Circuit& circuit) override;
  void load(const std::vector<double>& x, sim::Stamper& stamper,
            const sim::LoadContext& ctx) override;
  void load_ac(const std::vector<double>& x_op, sim::AcStamper& ac,
               double omega) override;
  void init_state(const std::vector<double>& x_op) override;
  void accept_step(const std::vector<double>& x,
                   const sim::LoadContext& ctx) override;

  [[nodiscard]] double inductance() const noexcept { return inductance_; }

 private:
  sim::NodeId p_;
  sim::NodeId n_;
  double inductance_;
  int up_ = sim::kGround;
  int un_ = sim::kGround;
  int branch_ = sim::kGround;
  double i_prev_ = 0.0;
  double v_prev_ = 0.0;
};

}  // namespace softfet::devices
