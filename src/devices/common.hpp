// Shared helpers for device implementations.
#pragma once

#include <vector>

#include "sim/stamper.hpp"

namespace softfet::devices {

/// Voltage of an unknown index (0 for ground).
[[nodiscard]] inline double voltage_of(const std::vector<double>& x,
                                       int unknown) {
  return unknown == sim::kGround ? 0.0 : x[static_cast<std::size_t>(unknown)];
}

}  // namespace softfet::devices
