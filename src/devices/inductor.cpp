#include "devices/inductor.hpp"

#include "sim/ac.hpp"
#include "devices/common.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace softfet::devices {

Inductor::Inductor(std::string name, sim::NodeId p, sim::NodeId n,
                   double inductance)
    : Device(std::move(name)), p_(p), n_(n), inductance_(inductance) {
  if (!(inductance > 0.0)) {
    throw InvalidCircuitError("inductor " + this->name() +
                              ": inductance must be positive");
  }
}

void Inductor::setup(sim::Circuit& circuit) {
  up_ = circuit.node_unknown(p_);
  un_ = circuit.node_unknown(n_);
  branch_ = circuit.claim_branch_unknown("i(" + util::to_lower(name()) + ")");
}

void Inductor::load(const std::vector<double>& x, sim::Stamper& stamper,
                    const sim::LoadContext& ctx) {
  const double vp = voltage_of(x, up_);
  const double vn = voltage_of(x, un_);
  const double i = x[static_cast<std::size_t>(branch_)];

  // KCL: branch current flows p -> n through the device.
  stamper.add_residual(up_, i);
  stamper.add_residual(un_, -i);
  stamper.add_jacobian(up_, branch_, 1.0);
  stamper.add_jacobian(un_, branch_, -1.0);

  if (ctx.mode == sim::AnalysisMode::kDcOp) {
    // Short circuit: v_p - v_n = 0.
    stamper.add_residual(branch_, vp - vn);
    stamper.add_jacobian(branch_, up_, 1.0);
    stamper.add_jacobian(branch_, un_, -1.0);
    return;
  }

  // Transient: L di/dt = v, discretized in amp form.
  const double v = vp - vn;
  if (ctx.method == sim::IntegrationMethod::kTrapezoidal) {
    const double k = ctx.dt / (2.0 * inductance_);
    stamper.add_residual(branch_, i - i_prev_ - k * (v + v_prev_));
    stamper.add_jacobian(branch_, branch_, 1.0);
    stamper.add_jacobian(branch_, up_, -k);
    stamper.add_jacobian(branch_, un_, k);
  } else {
    const double k = ctx.dt / inductance_;
    stamper.add_residual(branch_, i - i_prev_ - k * v);
    stamper.add_jacobian(branch_, branch_, 1.0);
    stamper.add_jacobian(branch_, up_, -k);
    stamper.add_jacobian(branch_, un_, k);
  }
}

void Inductor::init_state(const std::vector<double>& x_op) {
  i_prev_ = x_op[static_cast<std::size_t>(branch_)];
  v_prev_ = voltage_of(x_op, up_) - voltage_of(x_op, un_);
}

void Inductor::accept_step(const std::vector<double>& x,
                           const sim::LoadContext& /*ctx*/) {
  i_prev_ = x[static_cast<std::size_t>(branch_)];
  v_prev_ = voltage_of(x, up_) - voltage_of(x, un_);
}

void Inductor::load_ac(const std::vector<double>& /*x_op*/, sim::AcStamper& ac,
                       double omega) {
  // Branch current coupling plus the KVL row v_p - v_n - jwL*i = 0.
  ac.add_matrix(up_, branch_, 1.0);
  ac.add_matrix(un_, branch_, -1.0);
  ac.add_matrix(branch_, up_, 1.0);
  ac.add_matrix(branch_, un_, -1.0);
  ac.add_matrix(branch_, branch_, numeric::Complex(0.0, -omega * inductance_));
}

}  // namespace softfet::devices
