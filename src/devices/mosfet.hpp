// Compact MOSFET model: EKV-style continuous interpolation from weak to
// strong inversion with channel-length modulation and mobility reduction,
// plus constant gate/junction capacitances.
//
// The model is smooth everywhere (softplus-based), has analytic
// derivatives, exact exponential subthreshold behaviour — which the
// paper's HVT-at-low-VCC comparison (Fig. 5) depends on — and is
// antisymmetric under source/drain exchange.
#pragma once

#include <string>

#include "sim/circuit.hpp"
#include "sim/companion.hpp"
#include "sim/device.hpp"

namespace softfet::devices {

enum class MosPolarity { kNmos, kPmos };

/// Model equation set.
///  - kEkv: the default continuous weak->strong inversion interpolation.
///  - kSquareLaw: lightly-smoothed Shichman-Hodges Level-1 (quadratic
///    saturation, linear triode, ~zero subthreshold) — the classic
///    first-order model, kept for comparison studies and teaching.
enum class MosfetLevel { kEkv, kSquareLaw };

struct MosfetModel {
  MosPolarity polarity = MosPolarity::kNmos;
  MosfetLevel level = MosfetLevel::kEkv;
  double vt0 = 0.35;     ///< threshold voltage magnitude [V]
  double n = 1.35;       ///< subthreshold slope factor
  double kp = 500e-6;    ///< transconductance factor mu*Cox [A/V^2]
  double lambda = 0.15;  ///< channel-length modulation [1/V]
  double theta = 1.5;    ///< mobility reduction / velocity-sat proxy [1/V]
  double v_thermal = 0.02585;  ///< kT/q [V]

  // Capacitances (constant, Meyer-style partition).
  double cox = 0.025;  ///< gate oxide capacitance [F/m^2]
  double cov = 3e-10;  ///< gate overlap capacitance per width [F/m]
  double cj = 8e-10;   ///< drain/source junction capacitance per width [F/m]

  /// Copy of the model with a different threshold magnitude (HVT variants).
  [[nodiscard]] MosfetModel with_vt(double vt) const {
    MosfetModel m = *this;
    m.vt0 = vt;
    return m;
  }
};

struct MosfetDims {
  double w = 120e-9;  ///< channel width [m]
  double l = 40e-9;   ///< channel length [m]
  double m = 1.0;     ///< parallel multiplier
};

/// DC solution of the intrinsic transistor in NMOS-equivalent quantities.
struct MosOperatingPoint {
  double id = 0.0;   ///< drain current, positive d->s [A]
  double gm = 0.0;   ///< d id / d vgs [S]
  double gds = 0.0;  ///< d id / d vds [S]
};

/// Evaluate the intrinsic DC model with NMOS-equivalent terminal voltages
/// (polarity mirroring is the caller's job; the Mosfet device does it).
/// Handles vds < 0 by source/drain exchange.
[[nodiscard]] MosOperatingPoint mosfet_evaluate(const MosfetModel& model,
                                                const MosfetDims& dims,
                                                double vgs, double vds);

class Mosfet final : public sim::Device {
 public:
  Mosfet(std::string name, sim::NodeId drain, sim::NodeId gate,
         sim::NodeId source, sim::NodeId bulk, const MosfetModel& model,
         const MosfetDims& dims);

  void setup(sim::Circuit& circuit) override;
  void load(const std::vector<double>& x, sim::Stamper& stamper,
            const sim::LoadContext& ctx) override;
  /// Relaxed-determinism batched evaluation: gathers every lane's EKV (or
  /// square-law) overdrive arguments into one SoA block, runs the fused
  /// numeric::vecmath softplus+sigmoid kernel across all lanes, and stamps
  /// each lane in exactly load()'s order. ULP-level difference vs load().
  [[nodiscard]] bool supports_lane_load() const override { return true; }
  void load_lanes(sim::Device* const* peers, const sim::LaneLoadView* views,
                  std::size_t m) override;
  void load_ac(const std::vector<double>& x_op, sim::AcStamper& ac,
               double omega) override;
  void init_state(const std::vector<double>& x_op) override;
  void accept_step(const std::vector<double>& x,
                   const sim::LoadContext& ctx) override;
  [[nodiscard]] std::vector<sim::Probe> probes() const override;
  void probe_values(std::vector<double>& out) const override {
    out.push_back(last_id_);
  }

  /// Conduction (channel) current at the last accepted point, NMOS-positive
  /// drain->source convention.
  [[nodiscard]] double last_id() const noexcept { return last_id_; }

  [[nodiscard]] const MosfetModel& model() const noexcept { return model_; }
  [[nodiscard]] const MosfetDims& dims() const noexcept { return dims_; }
  void set_model(const MosfetModel& model) { model_ = model; }

  /// Total gate input capacitance (cgs + cgd) — handy for sizing loads.
  [[nodiscard]] double gate_capacitance() const noexcept;

 private:
  struct CapBranch {
    sim::CompanionCap companion;
    int ua = sim::kGround;
    int ub = sim::kGround;
    double c = 0.0;
  };

  [[nodiscard]] double channel_current(const std::vector<double>& x,
                                       MosOperatingPoint* op = nullptr) const;
  void stamp_cap(CapBranch& cap, const std::vector<double>& x,
                 sim::Stamper& stamper, const sim::LoadContext& ctx) const;
  /// Channel + capacitance stamps from an already-evaluated NMOS-equivalent
  /// operating point — the shared tail of load() and load_lanes().
  void stamp_channel(const MosOperatingPoint& eq, const std::vector<double>& x,
                     sim::Stamper& stamper, const sim::LoadContext& ctx);

  sim::NodeId d_, g_, s_, b_;
  MosfetModel model_;
  MosfetDims dims_;
  int ud_ = sim::kGround, ug_ = sim::kGround, us_ = sim::kGround,
      ub_ = sim::kGround;
  CapBranch cgs_, cgd_, cdb_, csb_;
  double last_id_ = 0.0;
  std::string probe_name_;
};

}  // namespace softfet::devices
