// A 40 nm-class technology card for the EKV MOSFET model.
//
// The paper uses a commercial 40 nm PDK; this card substitutes public-domain
// representative values (VDD = 1 V, |VT| ~ 0.35 V SVT, Ion ~ 1 mA/um,
// subthreshold swing ~ 80 mV/dec, minimum inverter input cap ~ 0.4 fF).
// Absolute currents differ from the PDK; the trends the paper reports do not
// (see DESIGN.md, "Substitutions").
#pragma once

#include "devices/mosfet.hpp"

namespace softfet::devices::tech40 {

inline constexpr double kLmin = 40e-9;    ///< minimum channel length [m]
inline constexpr double kWminN = 120e-9;  ///< minimum NMOS width [m]
inline constexpr double kWminP = 240e-9;  ///< minimum PMOS width (2x for mobility) [m]
inline constexpr double kVdd = 1.0;       ///< nominal supply [V]

inline constexpr double kVtSvt = 0.35;  ///< standard threshold [V]
inline constexpr double kVtHvt = 0.55;  ///< high threshold [V]
inline constexpr double kVtLvt = 0.25;  ///< low threshold [V]

/// NMOS card; pass a different vt0 for HVT/LVT flavours.
[[nodiscard]] inline MosfetModel nmos(double vt0 = kVtSvt) {
  MosfetModel m;
  m.polarity = MosPolarity::kNmos;
  m.vt0 = vt0;
  m.n = 1.35;
  m.kp = 500e-6;
  m.lambda = 0.15;
  m.theta = 1.5;
  m.cox = 0.025;
  m.cov = 3e-10;
  m.cj = 8e-10;
  return m;
}

/// PMOS card (half mobility; use 2x width for balanced drive).
[[nodiscard]] inline MosfetModel pmos(double vt0 = kVtSvt) {
  MosfetModel m = nmos(vt0);
  m.polarity = MosPolarity::kPmos;
  m.kp = 250e-6;
  return m;
}

/// Process corners: threshold and mobility shifts applied per polarity.
/// SS/FF move both devices; SF = slow NMOS + fast PMOS; FS the mirror.
enum class Corner { kTT, kSS, kFF, kSF, kFS };

inline constexpr double kCornerDeltaVt = 0.03;  ///< |VT| shift per corner [V]
inline constexpr double kCornerKpShift = 0.10;  ///< relative kp shift

/// Apply a corner to a model card (dispatches on the card's polarity).
[[nodiscard]] inline MosfetModel with_corner(MosfetModel m, Corner corner) {
  const bool is_nmos = m.polarity == MosPolarity::kNmos;
  const bool slow = corner == Corner::kSS ||
                    (corner == Corner::kSF && is_nmos) ||
                    (corner == Corner::kFS && !is_nmos);
  const bool fast = corner == Corner::kFF ||
                    (corner == Corner::kSF && !is_nmos) ||
                    (corner == Corner::kFS && is_nmos);
  if (slow) {
    m.vt0 += kCornerDeltaVt;
    m.kp *= 1.0 - kCornerKpShift;
  } else if (fast) {
    m.vt0 -= kCornerDeltaVt;
    m.kp *= 1.0 + kCornerKpShift;
  }
  return m;
}

[[nodiscard]] inline const char* corner_name(Corner corner) {
  switch (corner) {
    case Corner::kTT: return "TT";
    case Corner::kSS: return "SS";
    case Corner::kFF: return "FF";
    case Corner::kSF: return "SF";
    case Corner::kFS: return "FS";
  }
  return "?";
}

/// Minimum-size dimensions for each polarity.
[[nodiscard]] inline MosfetDims min_nmos_dims(double m_mult = 1.0) {
  return {kWminN, kLmin, m_mult};
}
[[nodiscard]] inline MosfetDims min_pmos_dims(double m_mult = 1.0) {
  return {kWminP, kLmin, m_mult};
}

}  // namespace softfet::devices::tech40
