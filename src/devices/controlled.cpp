#include "devices/controlled.hpp"

#include "sim/ac.hpp"
#include "devices/common.hpp"
#include "util/strings.hpp"

namespace softfet::devices {

Vcvs::Vcvs(std::string name, sim::NodeId p, sim::NodeId n, sim::NodeId cp,
           sim::NodeId cn, double gain)
    : Device(std::move(name)), p_(p), n_(n), cp_(cp), cn_(cn), gain_(gain) {}

void Vcvs::setup(sim::Circuit& circuit) {
  up_ = circuit.node_unknown(p_);
  un_ = circuit.node_unknown(n_);
  ucp_ = circuit.node_unknown(cp_);
  ucn_ = circuit.node_unknown(cn_);
  branch_ = circuit.claim_branch_unknown("i(" + util::to_lower(name()) + ")");
}

void Vcvs::load(const std::vector<double>& x, sim::Stamper& stamper,
                const sim::LoadContext& /*ctx*/) {
  const double i = x[static_cast<std::size_t>(branch_)];
  stamper.add_residual(up_, i);
  stamper.add_residual(un_, -i);
  stamper.add_jacobian(up_, branch_, 1.0);
  stamper.add_jacobian(un_, branch_, -1.0);

  const double vp = voltage_of(x, up_);
  const double vn = voltage_of(x, un_);
  const double vc = voltage_of(x, ucp_) - voltage_of(x, ucn_);
  stamper.add_residual(branch_, vp - vn - gain_ * vc);
  stamper.add_jacobian(branch_, up_, 1.0);
  stamper.add_jacobian(branch_, un_, -1.0);
  stamper.add_jacobian(branch_, ucp_, -gain_);
  stamper.add_jacobian(branch_, ucn_, gain_);
}

void Vcvs::load_ac(const std::vector<double>& /*x_op*/, sim::AcStamper& ac,
                   double /*omega*/) {
  ac.add_matrix(up_, branch_, 1.0);
  ac.add_matrix(un_, branch_, -1.0);
  ac.add_matrix(branch_, up_, 1.0);
  ac.add_matrix(branch_, un_, -1.0);
  ac.add_matrix(branch_, ucp_, -gain_);
  ac.add_matrix(branch_, ucn_, gain_);
}

Vccs::Vccs(std::string name, sim::NodeId p, sim::NodeId n, sim::NodeId cp,
           sim::NodeId cn, double gm)
    : Device(std::move(name)), p_(p), n_(n), cp_(cp), cn_(cn), gm_(gm) {}

void Vccs::setup(sim::Circuit& circuit) {
  up_ = circuit.node_unknown(p_);
  un_ = circuit.node_unknown(n_);
  ucp_ = circuit.node_unknown(cp_);
  ucn_ = circuit.node_unknown(cn_);
}

void Vccs::load(const std::vector<double>& x, sim::Stamper& stamper,
                const sim::LoadContext& /*ctx*/) {
  const double vc = voltage_of(x, ucp_) - voltage_of(x, ucn_);
  const double i = gm_ * vc;
  stamper.add_residual(up_, i);
  stamper.add_residual(un_, -i);
  stamper.add_jacobian(up_, ucp_, gm_);
  stamper.add_jacobian(up_, ucn_, -gm_);
  stamper.add_jacobian(un_, ucp_, -gm_);
  stamper.add_jacobian(un_, ucn_, gm_);
}

void Vccs::load_ac(const std::vector<double>& /*x_op*/, sim::AcStamper& ac,
                   double /*omega*/) {
  ac.add_matrix(up_, ucp_, gm_);
  ac.add_matrix(up_, ucn_, -gm_);
  ac.add_matrix(un_, ucp_, -gm_);
  ac.add_matrix(un_, ucn_, gm_);
}

}  // namespace softfet::devices
