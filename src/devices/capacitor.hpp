// Linear two-terminal capacitor (charge-based companion in transient,
// open circuit in DC).
#pragma once

#include "sim/circuit.hpp"
#include "sim/companion.hpp"
#include "sim/device.hpp"

namespace softfet::devices {

class Capacitor final : public sim::Device {
 public:
  Capacitor(std::string name, sim::NodeId p, sim::NodeId n, double capacitance);

  void setup(sim::Circuit& circuit) override;
  void load(const std::vector<double>& x, sim::Stamper& stamper,
            const sim::LoadContext& ctx) override;
  void load_ac(const std::vector<double>& x_op, sim::AcStamper& ac,
               double omega) override;
  void init_state(const std::vector<double>& x_op) override;
  void accept_step(const std::vector<double>& x,
                   const sim::LoadContext& ctx) override;

  [[nodiscard]] double capacitance() const noexcept { return capacitance_; }

 private:
  [[nodiscard]] double charge(const std::vector<double>& x) const;

  sim::NodeId p_;
  sim::NodeId n_;
  double capacitance_;
  int up_ = sim::kGround;
  int un_ = sim::kGround;
  sim::CompanionCap companion_;
};

}  // namespace softfet::devices
