#include "devices/diode.hpp"

#include "sim/ac.hpp"
#include <cmath>
#include <vector>

#include "devices/common.hpp"
#include "numeric/vecmath.hpp"

namespace softfet::devices {

namespace {
// exp with a linear extension above kExpCap so Newton iterates stay finite.
[[nodiscard]] double exp_safe(double x) {
  if (x <= Diode::kExpCap) return std::exp(x);
  return std::exp(Diode::kExpCap) * (1.0 + (x - Diode::kExpCap));
}
[[nodiscard]] double exp_safe_deriv(double x) {
  return x <= Diode::kExpCap ? std::exp(x) : std::exp(Diode::kExpCap);
}
}  // namespace

Diode::Diode(std::string name, sim::NodeId anode, sim::NodeId cathode,
             const DiodeParams& params)
    : Device(std::move(name)), anode_(anode), cathode_(cathode),
      params_(params) {}

void Diode::setup(sim::Circuit& circuit) {
  ua_ = circuit.node_unknown(anode_);
  uc_ = circuit.node_unknown(cathode_);
}

void Diode::evaluate(const DiodeParams& params, double v, double& i,
                     double& g) {
  const double nvt = params.emission * params.v_thermal;
  const double x = v / nvt;
  i = params.i_sat * (exp_safe(x) - 1.0);
  g = params.i_sat * exp_safe_deriv(x) / nvt;
}

void Diode::load(const std::vector<double>& x, sim::Stamper& stamper,
                 const sim::LoadContext& /*ctx*/) {
  const double v = voltage_of(x, ua_) - voltage_of(x, uc_);
  double i = 0.0;
  double g = 0.0;
  evaluate(params_, v, i, g);
  stamper.add_residual(ua_, i);
  stamper.add_residual(uc_, -i);
  stamper.add_jacobian(ua_, ua_, g);
  stamper.add_jacobian(ua_, uc_, -g);
  stamper.add_jacobian(uc_, ua_, -g);
  stamper.add_jacobian(uc_, uc_, g);
}

void Diode::load_lanes(sim::Device* const* peers,
                       const sim::LaneLoadView* views, std::size_t m) {
  thread_local std::vector<double> arg;
  thread_local std::vector<double> e;
  thread_local std::vector<double> de;
  arg.resize(m);
  e.resize(m);
  de.resize(m);
  for (std::size_t i = 0; i < m; ++i) {
    const auto& dev = *static_cast<const Diode*>(peers[i]);
    const auto& x = *views[i].x;
    const double v = voltage_of(x, dev.ua_) - voltage_of(x, dev.uc_);
    arg[i] = v / (dev.params_.emission * dev.params_.v_thermal);
  }
  numeric::vecmath::exp_capped_v(arg.data(), kExpCap, e.data(), de.data(), m);
  for (std::size_t i = 0; i < m; ++i) {
    const auto& dev = *static_cast<const Diode*>(peers[i]);
    const double nvt = dev.params_.emission * dev.params_.v_thermal;
    const double current = dev.params_.i_sat * (e[i] - 1.0);
    const double g = dev.params_.i_sat * de[i] / nvt;
    sim::Stamper& stamper = *views[i].stamper;
    stamper.add_residual(dev.ua_, current);
    stamper.add_residual(dev.uc_, -current);
    stamper.add_jacobian(dev.ua_, dev.ua_, g);
    stamper.add_jacobian(dev.ua_, dev.uc_, -g);
    stamper.add_jacobian(dev.uc_, dev.ua_, -g);
    stamper.add_jacobian(dev.uc_, dev.uc_, g);
  }
}

void Diode::load_ac(const std::vector<double>& x_op, sim::AcStamper& ac,
                    double /*omega*/) {
  const double v = voltage_of(x_op, ua_) - voltage_of(x_op, uc_);
  double i = 0.0;
  double g = 0.0;
  evaluate(params_, v, i, g);
  ac.add_admittance(ua_, uc_, g);
}

}  // namespace softfet::devices
