#include "devices/diode.hpp"

#include "sim/ac.hpp"
#include <cmath>

#include "devices/common.hpp"

namespace softfet::devices {

namespace {
// exp with a linear extension above x = 80 so Newton iterates stay finite.
constexpr double kExpCap = 80.0;

[[nodiscard]] double exp_safe(double x) {
  if (x <= kExpCap) return std::exp(x);
  return std::exp(kExpCap) * (1.0 + (x - kExpCap));
}
[[nodiscard]] double exp_safe_deriv(double x) {
  return x <= kExpCap ? std::exp(x) : std::exp(kExpCap);
}
}  // namespace

Diode::Diode(std::string name, sim::NodeId anode, sim::NodeId cathode,
             const DiodeParams& params)
    : Device(std::move(name)), anode_(anode), cathode_(cathode),
      params_(params) {}

void Diode::setup(sim::Circuit& circuit) {
  ua_ = circuit.node_unknown(anode_);
  uc_ = circuit.node_unknown(cathode_);
}

void Diode::evaluate(const DiodeParams& params, double v, double& i,
                     double& g) {
  const double nvt = params.emission * params.v_thermal;
  const double x = v / nvt;
  i = params.i_sat * (exp_safe(x) - 1.0);
  g = params.i_sat * exp_safe_deriv(x) / nvt;
}

void Diode::load(const std::vector<double>& x, sim::Stamper& stamper,
                 const sim::LoadContext& /*ctx*/) {
  const double v = voltage_of(x, ua_) - voltage_of(x, uc_);
  double i = 0.0;
  double g = 0.0;
  evaluate(params_, v, i, g);
  stamper.add_residual(ua_, i);
  stamper.add_residual(uc_, -i);
  stamper.add_jacobian(ua_, ua_, g);
  stamper.add_jacobian(ua_, uc_, -g);
  stamper.add_jacobian(uc_, ua_, -g);
  stamper.add_jacobian(uc_, uc_, g);
}

void Diode::load_ac(const std::vector<double>& x_op, sim::AcStamper& ac,
                    double /*omega*/) {
  const double v = voltage_of(x_op, ua_) - voltage_of(x_op, uc_);
  double i = 0.0;
  double g = 0.0;
  evaluate(params_, v, i, g);
  ac.add_admittance(ua_, uc_, g);
}

}  // namespace softfet::devices
