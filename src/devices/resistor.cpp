#include "devices/resistor.hpp"

#include "sim/ac.hpp"
#include "devices/common.hpp"
#include "util/error.hpp"

namespace softfet::devices {

Resistor::Resistor(std::string name, sim::NodeId p, sim::NodeId n,
                   double resistance)
    : Device(std::move(name)), p_(p), n_(n), resistance_(resistance) {
  if (!(resistance > 0.0)) {
    throw InvalidCircuitError("resistor " + this->name() +
                              ": resistance must be positive");
  }
}

void Resistor::setup(sim::Circuit& circuit) {
  up_ = circuit.node_unknown(p_);
  un_ = circuit.node_unknown(n_);
}

void Resistor::set_resistance(double resistance) {
  if (!(resistance > 0.0)) {
    throw InvalidCircuitError("resistor " + name() +
                              ": resistance must be positive");
  }
  resistance_ = resistance;
}

void Resistor::load(const std::vector<double>& x, sim::Stamper& stamper,
                    const sim::LoadContext& /*ctx*/) {
  stamper.add_conductance(up_, un_, 1.0 / resistance_, voltage_of(x, up_),
                          voltage_of(x, un_));
}

void Resistor::load_ac(const std::vector<double>& /*x_op*/, sim::AcStamper& ac,
                       double /*omega*/) {
  ac.add_admittance(up_, un_, 1.0 / resistance_);
}

}  // namespace softfet::devices
