// Linear two-terminal resistor.
#pragma once

#include "sim/circuit.hpp"
#include "sim/device.hpp"

namespace softfet::devices {

class Resistor final : public sim::Device {
 public:
  Resistor(std::string name, sim::NodeId p, sim::NodeId n, double resistance);

  void setup(sim::Circuit& circuit) override;
  void load(const std::vector<double>& x, sim::Stamper& stamper,
            const sim::LoadContext& ctx) override;
  void load_ac(const std::vector<double>& x_op, sim::AcStamper& ac,
               double omega) override;

  [[nodiscard]] double resistance() const noexcept { return resistance_; }
  void set_resistance(double resistance);

 private:
  sim::NodeId p_;
  sim::NodeId n_;
  double resistance_;
  int up_ = sim::kGround;
  int un_ = sim::kGround;
};

}  // namespace softfet::devices
