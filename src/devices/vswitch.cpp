#include "devices/vswitch.hpp"

#include "sim/ac.hpp"
#include <algorithm>
#include <cmath>

#include "devices/common.hpp"
#include "numeric/vecmath.hpp"
#include "util/error.hpp"

namespace softfet::devices {

VSwitch::VSwitch(std::string name, sim::NodeId p, sim::NodeId n, sim::NodeId cp,
                 sim::NodeId cn, const VSwitchParams& params)
    : Device(std::move(name)), p_(p), n_(n), cp_(cp), cn_(cn), params_(params) {
  if (!(params.r_on > 0.0) || !(params.r_off > params.r_on) ||
      !(params.v_width > 0.0)) {
    throw InvalidCircuitError("vswitch " + this->name() +
                              ": invalid parameters");
  }
}

void VSwitch::setup(sim::Circuit& circuit) {
  up_ = circuit.node_unknown(p_);
  un_ = circuit.node_unknown(n_);
  ucp_ = circuit.node_unknown(cp_);
  ucn_ = circuit.node_unknown(cn_);
}

void VSwitch::load(const std::vector<double>& x, sim::Stamper& stamper,
                   const sim::LoadContext& /*ctx*/) {
  const double vp = voltage_of(x, up_);
  const double vn = voltage_of(x, un_);
  const double vc = voltage_of(x, ucp_) - voltage_of(x, ucn_);

  // Logistic blend in conductance: g(vc) = g_off + (g_on - g_off) * s.
  const double g_on = 1.0 / params_.r_on;
  const double g_off = 1.0 / params_.r_off;
  const double z = (vc - params_.v_threshold) / params_.v_width;
  const double s = 1.0 / (1.0 + std::exp(-std::clamp(z, -60.0, 60.0)));
  const double g = g_off + (g_on - g_off) * s;
  const double dg_dvc = (g_on - g_off) * s * (1.0 - s) / params_.v_width;

  const double v = vp - vn;
  const double i = g * v;
  stamper.add_residual(up_, i);
  stamper.add_residual(un_, -i);
  stamper.add_jacobian(up_, up_, g);
  stamper.add_jacobian(up_, un_, -g);
  stamper.add_jacobian(un_, up_, -g);
  stamper.add_jacobian(un_, un_, g);
  // Control-voltage dependence.
  const double didc = dg_dvc * v;
  stamper.add_jacobian(up_, ucp_, didc);
  stamper.add_jacobian(up_, ucn_, -didc);
  stamper.add_jacobian(un_, ucp_, -didc);
  stamper.add_jacobian(un_, ucn_, didc);
}

void VSwitch::load_lanes(sim::Device* const* peers,
                         const sim::LaneLoadView* views, std::size_t m) {
  thread_local std::vector<double> arg;
  thread_local std::vector<double> s;
  arg.resize(m);
  s.resize(m);
  for (std::size_t i = 0; i < m; ++i) {
    const auto& dev = *static_cast<const VSwitch*>(peers[i]);
    const auto& x = *views[i].x;
    const double vc = voltage_of(x, dev.ucp_) - voltage_of(x, dev.ucn_);
    const double z = (vc - dev.params_.v_threshold) / dev.params_.v_width;
    arg[i] = std::clamp(z, -60.0, 60.0);
  }
  numeric::vecmath::sigmoid_v(arg.data(), s.data(), m);
  for (std::size_t i = 0; i < m; ++i) {
    const auto& dev = *static_cast<const VSwitch*>(peers[i]);
    const auto& x = *views[i].x;
    const double vp = voltage_of(x, dev.up_);
    const double vn = voltage_of(x, dev.un_);
    const double g_on = 1.0 / dev.params_.r_on;
    const double g_off = 1.0 / dev.params_.r_off;
    const double g = g_off + (g_on - g_off) * s[i];
    const double dg_dvc = (g_on - g_off) * s[i] * (1.0 - s[i]) /
                          dev.params_.v_width;
    const double v = vp - vn;
    const double current = g * v;
    sim::Stamper& stamper = *views[i].stamper;
    stamper.add_residual(dev.up_, current);
    stamper.add_residual(dev.un_, -current);
    stamper.add_jacobian(dev.up_, dev.up_, g);
    stamper.add_jacobian(dev.up_, dev.un_, -g);
    stamper.add_jacobian(dev.un_, dev.up_, -g);
    stamper.add_jacobian(dev.un_, dev.un_, g);
    const double didc = dg_dvc * v;
    stamper.add_jacobian(dev.up_, dev.ucp_, didc);
    stamper.add_jacobian(dev.up_, dev.ucn_, -didc);
    stamper.add_jacobian(dev.un_, dev.ucp_, -didc);
    stamper.add_jacobian(dev.un_, dev.ucn_, didc);
  }
}

void VSwitch::load_ac(const std::vector<double>& x_op, sim::AcStamper& ac,
                      double /*omega*/) {
  const double vp = voltage_of(x_op, up_);
  const double vn = voltage_of(x_op, un_);
  const double vc = voltage_of(x_op, ucp_) - voltage_of(x_op, ucn_);
  const double g_on = 1.0 / params_.r_on;
  const double g_off = 1.0 / params_.r_off;
  const double z = (vc - params_.v_threshold) / params_.v_width;
  const double s = 1.0 / (1.0 + std::exp(-std::clamp(z, -60.0, 60.0)));
  const double g = g_off + (g_on - g_off) * s;
  const double dg_dvc = (g_on - g_off) * s * (1.0 - s) / params_.v_width;
  ac.add_admittance(up_, un_, g);
  const double didc = dg_dvc * (vp - vn);
  ac.add_matrix(up_, ucp_, didc);
  ac.add_matrix(up_, ucn_, -didc);
  ac.add_matrix(un_, ucp_, -didc);
  ac.add_matrix(un_, ucn_, didc);
}

}  // namespace softfet::devices
