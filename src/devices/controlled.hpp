// Linear controlled sources: VCVS (SPICE 'E') and VCCS (SPICE 'G').
#pragma once

#include "sim/circuit.hpp"
#include "sim/device.hpp"

namespace softfet::devices {

/// Voltage-controlled voltage source: v(p,n) = gain * v(cp,cn).
class Vcvs final : public sim::Device {
 public:
  Vcvs(std::string name, sim::NodeId p, sim::NodeId n, sim::NodeId cp,
       sim::NodeId cn, double gain);

  void setup(sim::Circuit& circuit) override;
  void load(const std::vector<double>& x, sim::Stamper& stamper,
            const sim::LoadContext& ctx) override;
  void load_ac(const std::vector<double>& x_op, sim::AcStamper& ac,
               double omega) override;

 private:
  sim::NodeId p_, n_, cp_, cn_;
  double gain_;
  int up_ = sim::kGround, un_ = sim::kGround;
  int ucp_ = sim::kGround, ucn_ = sim::kGround;
  int branch_ = sim::kGround;
};

/// Voltage-controlled current source: i(p->n) = gm * v(cp,cn).
class Vccs final : public sim::Device {
 public:
  Vccs(std::string name, sim::NodeId p, sim::NodeId n, sim::NodeId cp,
       sim::NodeId cn, double gm);

  void setup(sim::Circuit& circuit) override;
  void load(const std::vector<double>& x, sim::Stamper& stamper,
            const sim::LoadContext& ctx) override;
  void load_ac(const std::vector<double>& x_op, sim::AcStamper& ac,
               double omega) override;

 private:
  sim::NodeId p_, n_, cp_, cn_;
  double gm_;
  int up_ = sim::kGround, un_ = sim::kGround;
  int ucp_ = sim::kGround, ucn_ = sim::kGround;
};

}  // namespace softfet::devices
