// Independent voltage and current sources with DC / PULSE / PWL / SIN
// waveforms (SPICE semantics, including pulse periodicity).
#pragma once

#include <vector>

#include "numeric/interp.hpp"
#include "sim/analyses.hpp"
#include "sim/circuit.hpp"
#include "sim/device.hpp"

namespace softfet::devices {

/// Time-dependent source waveform description.
class SourceSpec {
 public:
  /// Constant value.
  static SourceSpec dc(double value);

  /// SPICE PULSE(v1 v2 td tr tf pw per); per <= 0 makes it one-shot.
  static SourceSpec pulse(double v1, double v2, double td, double tr, double tf,
                          double pw, double period = 0.0);

  /// Piecewise-linear waveform (points sorted by time).
  static SourceSpec pwl(std::vector<numeric::PwlPoint> points);

  /// vo + va*sin(2*pi*freq*(t - td)).
  static SourceSpec sine(double vo, double va, double freq, double td = 0.0);

  /// A voltage ramp from v0 to v1 starting at t0 lasting `ramp` seconds —
  /// the paper's standard input stimulus.
  static SourceSpec ramp(double v0, double v1, double t0, double ramp_time);

  [[nodiscard]] double value(double time) const;

  /// Next waveform corner strictly after `time` (kNeverTime when none).
  [[nodiscard]] double next_breakpoint(double time) const;

  /// Is this a plain DC spec?
  [[nodiscard]] bool is_dc() const noexcept { return kind_ == Kind::kDc; }

  void set_dc_value(double value);

  /// AC small-signal magnitude (SPICE "AC <mag>"); 0 = quiet in AC.
  [[nodiscard]] double ac_magnitude() const noexcept { return ac_mag_; }
  void set_ac_magnitude(double mag) noexcept { ac_mag_ = mag; }

 private:
  enum class Kind { kDc, kPulse, kPwl, kSin };

  SourceSpec() = default;

  Kind kind_ = Kind::kDc;
  double dc_ = 0.0;
  // pulse
  double v1_ = 0.0, v2_ = 0.0, td_ = 0.0, tr_ = 0.0, tf_ = 0.0, pw_ = 0.0,
         per_ = 0.0;
  // pwl
  numeric::PwlCurve pwl_;
  // sin
  double vo_ = 0.0, va_ = 0.0, freq_ = 0.0, sin_td_ = 0.0;
  double ac_mag_ = 0.0;
};

/// Independent voltage source; its branch current is an MNA unknown
/// recorded as "i(<name>)" (SPICE sign convention: current flowing from the
/// + node through the source, so a supply sourcing current reads negative).
class VSource final : public sim::Device, public sim::DcSettable {
 public:
  VSource(std::string name, sim::NodeId p, sim::NodeId n, SourceSpec spec);

  void setup(sim::Circuit& circuit) override;
  void load(const std::vector<double>& x, sim::Stamper& stamper,
            const sim::LoadContext& ctx) override;
  void load_ac(const std::vector<double>& x_op, sim::AcStamper& ac,
               double omega) override;
  [[nodiscard]] double next_breakpoint(double time) const override;
  void set_dc(double value) override;

  [[nodiscard]] const SourceSpec& spec() const noexcept { return spec_; }
  void set_spec(SourceSpec spec) { spec_ = std::move(spec); }

  /// Unknown index of the branch current (valid after prepare()).
  [[nodiscard]] int branch_unknown() const noexcept { return branch_; }

 private:
  sim::NodeId p_;
  sim::NodeId n_;
  SourceSpec spec_;
  int up_ = sim::kGround;
  int un_ = sim::kGround;
  int branch_ = sim::kGround;
};

/// Independent current source: current flows from node p through the source
/// to node n.
class ISource final : public sim::Device, public sim::DcSettable {
 public:
  ISource(std::string name, sim::NodeId p, sim::NodeId n, SourceSpec spec);

  void setup(sim::Circuit& circuit) override;
  void load(const std::vector<double>& x, sim::Stamper& stamper,
            const sim::LoadContext& ctx) override;
  void load_ac(const std::vector<double>& x_op, sim::AcStamper& ac,
               double omega) override;
  [[nodiscard]] double next_breakpoint(double time) const override;
  void set_dc(double value) override;

  void set_spec(SourceSpec spec) { spec_ = std::move(spec); }

 private:
  sim::NodeId p_;
  sim::NodeId n_;
  SourceSpec spec_;
  int up_ = sim::kGround;
  int un_ = sim::kGround;
};

}  // namespace softfet::devices
