#include "devices/ptm.hpp"

#include "sim/ac.hpp"
#include <algorithm>
#include <cmath>

#include "devices/common.hpp"
#include "numeric/vecmath.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace softfet::devices {

namespace {
// Tolerance band so a step that lands exactly on a threshold (event cut)
// triggers the flip.
constexpr double kThresholdSlack = 1e-9;
}  // namespace

void PtmParams::validate() const {
  if (!(r_ins > r_met) || !(r_met > 0.0)) {
    throw InvalidCircuitError("ptm: need r_ins > r_met > 0");
  }
  if (!(v_imt > v_mit) || !(v_mit > 0.0)) {
    throw InvalidCircuitError("ptm: need v_imt > v_mit > 0");
  }
  if (!(t_ptm > 0.0)) {
    throw InvalidCircuitError("ptm: t_ptm must be positive");
  }
}

Ptm::Ptm(std::string name, sim::NodeId p, sim::NodeId n,
         const PtmParams& params)
    : Device(std::move(name)), p_(p), n_(n), params_(params) {
  params_.validate();
  cache_log_resistances();
  const std::string lname = util::to_lower(this->name());
  probe_i_ = "i(" + lname + ")";
  probe_r_ = "r(" + lname + ")";
  probe_s_ = "s(" + lname + ")";
}

void Ptm::setup(sim::Circuit& circuit) {
  up_ = circuit.node_unknown(p_);
  un_ = circuit.node_unknown(n_);
}

double Ptm::resistance_at(const PtmParams& params, double s) {
  if (params.law == PtmResistanceLaw::kLinear) {
    return (1.0 - s) * params.r_ins + s * params.r_met;
  }
  const double log_r =
      (1.0 - s) * std::log(params.r_ins) + s * std::log(params.r_met);
  return std::exp(log_r);
}

void Ptm::cache_log_resistances() {
  log_r_ins_ = std::log(params_.r_ins);
  log_r_met_ = std::log(params_.r_met);
}

double Ptm::resistance_cached(double s) const {
  if (params_.law == PtmResistanceLaw::kLinear) {
    return (1.0 - s) * params_.r_ins + s * params_.r_met;
  }
  return std::exp((1.0 - s) * log_r_ins_ + s * log_r_met_);
}

double Ptm::resistance() const noexcept { return resistance_cached(s_); }

double Ptm::voltage_across(const std::vector<double>& x) const {
  return voltage_of(x, up_) - voltage_of(x, un_);
}

double Ptm::projected_phase(double dt) const {
  const double direction = (target_ == PtmPhase::kMetallic) ? 1.0 : -1.0;
  return std::clamp(s_ + direction * dt / params_.t_ptm, 0.0, 1.0);
}

void Ptm::load(const std::vector<double>& x, sim::Stamper& stamper,
               const sim::LoadContext& ctx) {
  const double s_eval = (ctx.mode == sim::AnalysisMode::kTransient)
                            ? projected_phase(ctx.dt)
                            : s_;
  const double g = 1.0 / resistance_cached(s_eval);
  stamper.add_conductance(up_, un_, g, voltage_of(x, up_),
                          voltage_of(x, un_));
}

void Ptm::load_lanes(sim::Device* const* peers, const sim::LaneLoadView* views,
                     std::size_t m) {
  // The batched path assumes one resistance law across lanes (true for
  // Monte-Carlo parameter draws); mixed laws fall back to the scalar loop.
  for (std::size_t i = 0; i < m; ++i) {
    if (static_cast<const Ptm*>(peers[i])->params_.law != params_.law) {
      Device::load_lanes(peers, views, m);
      return;
    }
  }

  thread_local std::vector<double> r;
  r.resize(m);
  if (params_.law == PtmResistanceLaw::kLinear) {
    for (std::size_t i = 0; i < m; ++i) {
      const auto& dev = *static_cast<const Ptm*>(peers[i]);
      const auto& ctx = *views[i].ctx;
      const double s_eval = (ctx.mode == sim::AnalysisMode::kTransient)
                                ? dev.projected_phase(ctx.dt)
                                : dev.s_;
      r[i] = (1.0 - s_eval) * dev.params_.r_ins + s_eval * dev.params_.r_met;
    }
  } else {
    thread_local std::vector<double> arg;
    arg.resize(m);
    for (std::size_t i = 0; i < m; ++i) {
      const auto& dev = *static_cast<const Ptm*>(peers[i]);
      const auto& ctx = *views[i].ctx;
      const double s_eval = (ctx.mode == sim::AnalysisMode::kTransient)
                                ? dev.projected_phase(ctx.dt)
                                : dev.s_;
      arg[i] = (1.0 - s_eval) * dev.log_r_ins_ + s_eval * dev.log_r_met_;
    }
    numeric::vecmath::exp_v(arg.data(), r.data(), m);
  }
  for (std::size_t i = 0; i < m; ++i) {
    const auto& dev = *static_cast<const Ptm*>(peers[i]);
    const auto& x = *views[i].x;
    views[i].stamper->add_conductance(dev.up_, dev.un_, 1.0 / r[i],
                                      voltage_of(x, dev.up_),
                                      voltage_of(x, dev.un_));
  }
}

void Ptm::load_ac(const std::vector<double>& /*x_op*/, sim::AcStamper& ac,
                  double /*omega*/) {
  // Small-signal: the phase is frozen at its quasistatic position.
  ac.add_admittance(up_, un_, 1.0 / resistance());
}

void Ptm::maybe_flip_target(double v) {
  const double mag = std::fabs(v);
  if (target_ == PtmPhase::kInsulating &&
      mag >= params_.v_imt * (1.0 - kThresholdSlack)) {
    target_ = PtmPhase::kMetallic;
    ++imt_count_;
  } else if (target_ == PtmPhase::kMetallic &&
             mag <= params_.v_mit * (1.0 + kThresholdSlack)) {
    target_ = PtmPhase::kInsulating;
    ++mit_count_;
  }
}

void Ptm::init_state(const std::vector<double>& x_op) {
  v_prev_ = voltage_across(x_op);
  last_i_ = v_prev_ / resistance();
}

void Ptm::accept_step(const std::vector<double>& x,
                      const sim::LoadContext& ctx) {
  s_ = projected_phase(ctx.dt);
  const double v = voltage_across(x);
  maybe_flip_target(v);
  v_prev_ = v;
  last_i_ = v / resistance();
}

double Ptm::event_time(const std::vector<double>& x, double t_start,
                       double t_end) const {
  const double v0 = std::fabs(v_prev_);
  const double v1 = std::fabs(voltage_across(x));
  double threshold = 0.0;
  bool crossed = false;
  if (target_ == PtmPhase::kInsulating) {
    threshold = params_.v_imt;
    crossed = v0 < threshold && v1 >= threshold;
  } else {
    threshold = params_.v_mit;
    crossed = v0 > threshold && v1 <= threshold;
  }
  if (!crossed) return sim::kNeverTime;
  const double frac = (threshold - v0) / (v1 - v0);
  return t_start + frac * (t_end - t_start);
}

double Ptm::max_timestep() const {
  const double s_target = (target_ == PtmPhase::kMetallic) ? 1.0 : 0.0;
  if (s_ != s_target) return params_.t_ptm / 5.0;
  return sim::kNeverTime;
}

bool Ptm::update_quasistatic_state(const std::vector<double>& x) {
  const double v = voltage_across(x);
  const double mag = std::fabs(v);
  if (target_ == PtmPhase::kInsulating && mag >= params_.v_imt) {
    target_ = PtmPhase::kMetallic;
    s_ = 1.0;
    ++imt_count_;
    return true;
  }
  if (target_ == PtmPhase::kMetallic && mag <= params_.v_mit) {
    target_ = PtmPhase::kInsulating;
    s_ = 0.0;
    ++mit_count_;
    return true;
  }
  // In DC the phase must sit at its target (no partial transition).
  const double s_target = (target_ == PtmPhase::kMetallic) ? 1.0 : 0.0;
  if (s_ != s_target) {
    s_ = s_target;
    return true;
  }
  return false;
}

std::vector<sim::Probe> Ptm::probes() const {
  return {{probe_i_, last_i_}, {probe_r_, resistance()}, {probe_s_, s_}};
}

}  // namespace softfet::devices
