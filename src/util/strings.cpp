#include "util/strings.hpp"

#include <algorithm>
#include <cctype>

namespace softfet::util {

namespace {
[[nodiscard]] char lower(char c) {
  return static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
}
[[nodiscard]] bool is_space(char c) {
  return std::isspace(static_cast<unsigned char>(c)) != 0;
}
}  // namespace

std::string_view trim(std::string_view s) {
  while (!s.empty() && is_space(s.front())) s.remove_prefix(1);
  while (!s.empty() && is_space(s.back())) s.remove_suffix(1);
  return s;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](char c) { return lower(c); });
  return out;
}

std::vector<std::string> split(std::string_view s, std::string_view delims) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start < s.size()) {
    const std::size_t end = s.find_first_of(delims, start);
    const std::size_t stop = (end == std::string_view::npos) ? s.size() : end;
    if (stop > start) out.emplace_back(s.substr(start, stop - start));
    start = stop + 1;
  }
  return out;
}

bool iequals(std::string_view a, std::string_view b) {
  return a.size() == b.size() &&
         std::equal(a.begin(), a.end(), b.begin(),
                    [](char x, char y) { return lower(x) == lower(y); });
}

bool istarts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && iequals(s.substr(0, prefix.size()), prefix);
}

bool contains(std::string_view s, char c) {
  return s.find(c) != std::string_view::npos;
}

}  // namespace softfet::util
