// Batch checkpoint store: completed index slots persisted for resume.
//
// A Checkpoint maps batch indices to opaque single-line payloads. Batch
// drivers record() a slot when its point completes, save() periodically and
// on cancellation, and on resume skip every slot the loaded file already
// holds. Saves are atomic and durable: each save writes a per-save unique
// tmp file, fsyncs it, renames it over the target, and fsyncs the parent
// directory, so a killed process (or a power cut) leaves either the
// previous complete file or the new complete file — never a torn or lost
// one. Concurrent writers sharing a directory (or even a path) cannot
// clobber each other's tmp files. The file is line-oriented text:
//
//   softfet-checkpoint v1
//   tag <escaped batch tag>
//   total <slot count>
//   slot <index> <payload>
//
// The tag identifies the batch (spec parameters, seed, grid); a resume
// against a file whose tag or total mismatches is refused, because mixing
// points from two different studies would corrupt the statistics silently.
// Payloads are free-form but must be single-line; escape_field() percent-
// encodes whitespace and newlines for embedded strings.
#pragma once

#include <cstddef>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace softfet::util {

/// Percent-encode a string so it survives as one whitespace-free token on a
/// checkpoint line ('%', whitespace, and control characters are escaped).
[[nodiscard]] std::string escape_field(const std::string& text);
[[nodiscard]] std::string unescape_field(const std::string& field);

class Checkpoint {
 public:
  Checkpoint() = default;
  Checkpoint(std::string tag, std::size_t total);

  Checkpoint(Checkpoint&& other) noexcept;
  Checkpoint& operator=(Checkpoint&& other) noexcept;

  /// Load `path` if it exists, else start a fresh checkpoint. Throws
  /// softfet::Error when the file exists but is malformed or its tag/total
  /// does not match the expected batch.
  [[nodiscard]] static Checkpoint load_or_create(const std::string& path,
                                                 const std::string& tag,
                                                 std::size_t total);

  [[nodiscard]] const std::string& tag() const noexcept { return tag_; }
  [[nodiscard]] std::size_t total() const noexcept { return slots_.size(); }

  [[nodiscard]] bool has(std::size_t index) const;
  /// Payload of a completed slot (nullopt when the slot is still open).
  [[nodiscard]] std::optional<std::string> payload(std::size_t index) const;
  [[nodiscard]] std::size_t completed() const;

  /// Record a completed slot (thread-safe; last write wins on re-record).
  void record(std::size_t index, std::string payload);

  /// Atomically and durably persist the current state to `path` (unique
  /// tmp + fsync + rename + parent-directory fsync).
  void save(const std::string& path) const;

 private:
  std::string tag_;
  std::vector<std::optional<std::string>> slots_;
  mutable std::mutex mutex_;
};

}  // namespace softfet::util
