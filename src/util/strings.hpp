// Small string helpers used by the netlist parser and report writers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace softfet::util {

/// Remove leading and trailing whitespace.
[[nodiscard]] std::string_view trim(std::string_view s);

/// Lower-case an ASCII string (netlists are case-insensitive).
[[nodiscard]] std::string to_lower(std::string_view s);

/// Split on any of the given delimiter characters; empty fields are dropped.
[[nodiscard]] std::vector<std::string> split(std::string_view s,
                                             std::string_view delims = " \t");

/// Case-insensitive ASCII equality.
[[nodiscard]] bool iequals(std::string_view a, std::string_view b);

/// Case-insensitive prefix test.
[[nodiscard]] bool istarts_with(std::string_view s, std::string_view prefix);

/// True if the string contains the character.
[[nodiscard]] bool contains(std::string_view s, char c);

}  // namespace softfet::util
