// Error types shared across the softfet libraries.
//
// All library failures are reported through exceptions derived from
// softfet::Error so callers can distinguish library faults from std:: ones.
// Solver failures additionally carry a SolverDiagnostics payload describing
// *where* and *why* the numerics gave up (worst node, blamed device, last
// timestep, recovery attempts) so batch drivers can record structured
// failure entries instead of opaque strings.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/budget.hpp"

namespace softfet {

/// Root of the softfet exception hierarchy.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A malformed netlist, bad parameter value, or inconsistent circuit.
class InvalidCircuitError : public Error {
 public:
  explicit InvalidCircuitError(const std::string& what) : Error(what) {}
};

/// One recovery-ladder rung tried after a solver failure.
struct RecoveryAttempt {
  std::string strategy;  ///< "dt_shrink", "predictor_reset", "gmin_ramp", ...
  bool succeeded = false;
  std::string detail;  ///< human-readable context ("t=120ps dt=4ps -> 1ps")
};

/// One Newton iteration of the last failed solve (for the iteration trace).
struct IterationRecord {
  double max_dx = 0.0;        ///< largest |dx| of the iteration
  double max_residual = 0.0;  ///< largest scaled |F| entry of the iteration
};

/// Structured description of a solver failure (or of the recovery work a
/// successful analysis had to do). Threaded through the Newton loop and the
/// analysis drivers; embedded in ConvergenceError and exposed on results.
struct SolverDiagnostics {
  std::string analysis;  ///< "transient", "dc operating point", ...
  std::string failure;   ///< short reason ("newton max iterations", ...)
  double time = 0.0;     ///< simulation time of the failure [s]
  double last_dt = 0.0;  ///< last attempted timestep [s] (0 for DC)
  int iterations = 0;    ///< Newton iterations of the last failed solve
  int total_iterations = 0;  ///< cumulative iterations incl. recovery work
  double worst_residual = 0.0;   ///< largest |F| entry at the failure
  std::string worst_node;        ///< unknown label with the worst residual
  std::string worst_device;      ///< device blamed for that residual row
  std::vector<IterationRecord> iteration_trace;  ///< last failed solve
  std::vector<RecoveryAttempt> attempts;         ///< ladder rungs tried
  std::size_t attempts_dropped = 0;  ///< attempts beyond the recording cap

  // Linear-solver counters of the run (filled by the analysis drivers from
  // numeric::LinearSolver::stats(); all zero when the run never reached a
  // sparse solve). Mirrored as plain fields because util cannot depend on
  // the numeric layer.
  std::size_t symbolic_analyses = 0;   ///< full symbolic factorizations
  std::size_t refactorizations = 0;    ///< cached numeric-only refactors
  double fill_ratio = 0.0;             ///< nnz(L+U)/nnz(A), last analysis
  bool reordered = false;              ///< AMD ordering was applied
  std::size_t krylov_solves = 0;       ///< solves answered iteratively
  std::size_t krylov_iterations = 0;   ///< cumulative Krylov iterations
  std::size_t krylov_fallbacks = 0;    ///< Krylov failures -> refactor

  /// Active determinism contract of the run ("bitwise" or "relaxed"),
  /// echoed by the analysis drivers. Plain string because util cannot
  /// depend on the sim layer's enum.
  std::string determinism = "bitwise";

  /// Record an attempt, bounded so pathological runs cannot grow unbounded.
  void record_attempt(RecoveryAttempt attempt);

  /// Mark the most recently recorded attempt as having succeeded.
  void mark_last_attempt_succeeded();

  /// One-line human-readable report with engineering-notation time/units,
  /// e.g. "transient: newton max iterations at t=1.2ns (dt=40fs, 150
  /// iterations), worst residual 3.2mA at v(out) (device MN1), 4 recovery
  /// attempts".
  [[nodiscard]] std::string summary() const;
};

/// Bound on recorded recovery attempts (excess is counted, not stored).
inline constexpr std::size_t kMaxRecordedAttempts = 256;

/// Numerical failure: singular matrix, Newton divergence, step underflow.
class ConvergenceError : public Error {
 public:
  explicit ConvergenceError(const std::string& what) : Error(what) {}

  /// `what` is prefixed to the diagnostics' one-line summary.
  ConvergenceError(const std::string& what, SolverDiagnostics diagnostics);

  [[nodiscard]] bool has_diagnostics() const noexcept {
    return has_diagnostics_;
  }
  [[nodiscard]] const SolverDiagnostics& diagnostics() const noexcept {
    return diagnostics_;
  }

 private:
  SolverDiagnostics diagnostics_;
  bool has_diagnostics_ = false;
};

/// A run stopped by its RunBudget or a cooperative cancel request rather
/// than by a numerical failure. Batch drivers record these as isolated
/// FailureRecords WITHOUT the tightened-options retry (retrying a point
/// that ran out of budget only doubles the spent wall clock, and retrying
/// under cancellation defeats the cancel).
class BudgetExceededError : public ConvergenceError {
 public:
  BudgetExceededError(const std::string& what, util::BudgetStop stop);
  BudgetExceededError(const std::string& what, util::BudgetStop stop,
                      SolverDiagnostics diagnostics);

  /// Which budget limit (or the cancel token) stopped the run.
  [[nodiscard]] util::BudgetStop stop() const noexcept { return stop_; }

 private:
  util::BudgetStop stop_;
};

/// A numerically singular linear system; `column` is the unknown whose pivot
/// vanished (maps back to a node/branch label in MNA systems).
class SingularMatrixError : public ConvergenceError {
 public:
  SingularMatrixError(const std::string& what, std::size_t column)
      : ConvergenceError(what), column_(column) {}

  [[nodiscard]] std::size_t column() const noexcept { return column_; }

 private:
  std::size_t column_;
};

/// Netlist (or service request) text could not be parsed. `line` is
/// 1-based; `column` is the 1-based character position when the producer
/// tracks it (0 = unknown — the netlist tokenizer reports lines only, the
/// service NDJSON parser reports both).
class ParseError : public Error {
 public:
  ParseError(const std::string& what, int line)
      : Error("line " + std::to_string(line) + ": " + what), line_(line) {}

  ParseError(const std::string& what, int line, int column)
      : Error(with_position(what, line, column)),
        line_(line),
        column_(column) {}

  [[nodiscard]] int line() const noexcept { return line_; }
  [[nodiscard]] int column() const noexcept { return column_; }

 private:
  // Built by appends: GCC 12's -Wrestrict misfires on long chains of
  // std::string operator+ (GCC PR105651), which -Werror would promote.
  [[nodiscard]] static std::string with_position(const std::string& what,
                                                 int line, int column) {
    std::string msg = "line ";
    msg += std::to_string(line);
    msg += ':';
    msg += std::to_string(column);
    msg += ": ";
    msg += what;
    return msg;
  }

  int line_;
  int column_ = 0;
};

}  // namespace softfet
