// Error types shared across the softfet libraries.
//
// All library failures are reported through exceptions derived from
// softfet::Error so callers can distinguish library faults from std:: ones.
#pragma once

#include <stdexcept>
#include <string>

namespace softfet {

/// Root of the softfet exception hierarchy.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A malformed netlist, bad parameter value, or inconsistent circuit.
class InvalidCircuitError : public Error {
 public:
  explicit InvalidCircuitError(const std::string& what) : Error(what) {}
};

/// Numerical failure: singular matrix, Newton divergence, step underflow.
class ConvergenceError : public Error {
 public:
  explicit ConvergenceError(const std::string& what) : Error(what) {}
};

/// Netlist text could not be parsed.
class ParseError : public Error {
 public:
  ParseError(const std::string& what, int line)
      : Error("line " + std::to_string(line) + ": " + what), line_(line) {}

  [[nodiscard]] int line() const noexcept { return line_; }

 private:
  int line_;
};

}  // namespace softfet
