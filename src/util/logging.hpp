// Minimal leveled logger.
//
// The simulator reports convergence trouble and analysis progress through
// this; benches and tests raise/lower the global level.
#pragma once

#include <string>

namespace softfet::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Set the process-wide minimum level that is emitted (default: kWarn).
void set_log_level(LogLevel level) noexcept;
[[nodiscard]] LogLevel log_level() noexcept;

/// Emit one line to stderr if `level` is at or above the global level.
void log(LogLevel level, const std::string& message);

void log_debug(const std::string& message);
void log_info(const std::string& message);
void log_warn(const std::string& message);
void log_error(const std::string& message);

}  // namespace softfet::util
