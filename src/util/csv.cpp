#include "util/csv.hpp"

#include <cstdio>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace softfet::util {

std::string csv_escape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

CsvWriter::CsvWriter(std::ostream& out, std::vector<std::string> columns)
    : out_(out), columns_(columns.size()) {
  if (columns.empty()) throw Error("CsvWriter: no columns");
  for (std::size_t i = 0; i < columns.size(); ++i) {
    if (i != 0) out_ << ',';
    out_ << csv_escape(columns[i]);
  }
  out_ << '\n';
}

void CsvWriter::write_row(const std::vector<double>& values) {
  if (values.size() != columns_) {
    throw Error("CsvWriter: row has " + std::to_string(values.size()) +
                " fields, expected " + std::to_string(columns_));
  }
  char buf[32];
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i != 0) out_ << ',';
    std::snprintf(buf, sizeof buf, "%.9g", values[i]);
    out_ << buf;
  }
  out_ << '\n';
  ++rows_;
}

NdjsonWriter::NdjsonWriter(std::ostream& out, std::vector<std::string> columns)
    : out_(out), columns_(std::move(columns)) {
  if (columns_.empty()) throw Error("NdjsonWriter: no columns");
}

void NdjsonWriter::write_row(const std::vector<double>& values) {
  if (values.size() != columns_.size()) {
    throw Error("NdjsonWriter: row has " + std::to_string(values.size()) +
                " fields, expected " + std::to_string(columns_.size()));
  }
  char buf[32];
  out_ << '{';
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i != 0) out_ << ',';
    std::snprintf(buf, sizeof buf, "%.9g", values[i]);
    out_ << '"' << json_escape(columns_[i]) << "\":" << buf;
  }
  out_ << "}\n";
  ++rows_;
}

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace softfet::util
