// Small fixed-size thread pool and a parallel_for built on it.
//
// Built for the embarrassingly parallel outer loops of the studies (Monte
// Carlo samples, design-space sweep points, iso-I_MAX curves): tasks are
// coarse (each is a full circuit characterization), so a shared pool with an
// atomic work index — workers "steal" the next index when they finish — is
// all the scheduling these loops need. Determinism is the caller's job: give
// every index an independent RNG stream / output slot and the result is
// identical for any worker count, including the serial fallback.
#pragma once

#include <cstddef>
#include <functional>

#include "util/budget.hpp"

namespace softfet::util {

/// Worker count used by default: SOFTFET_THREADS when set (>= 1), otherwise
/// std::thread::hardware_concurrency (min 1).
[[nodiscard]] std::size_t hardware_threads() noexcept;

/// Run body(0..count-1), distributing indices over `threads` workers
/// (0 = hardware_threads()). Blocks until every *claimed* index completed.
/// The calling thread participates, so threads = 1 is exactly a serial
/// loop. Nested calls from inside a body run serially (no deadlock, same
/// results).
///
/// Fast-fail: once any body throws, workers stop claiming new indices —
/// only bodies already in flight run to completion — and the first
/// exception thrown is rethrown here after the pool joins.
///
/// Cancellation: when `cancel` is given, it is checked at every index
/// claim; once tripped, no new indices are claimed (in-flight bodies
/// finish) and the call returns normally. The caller decides what a
/// partially covered batch means — typically flushing a checkpoint and
/// raising BudgetExceededError.
void parallel_for(std::size_t count,
                  const std::function<void(std::size_t)>& body,
                  std::size_t threads = 0,
                  const CancelToken* cancel = nullptr);

}  // namespace softfet::util
