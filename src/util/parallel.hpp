// Small fixed-size thread pool and a parallel_for built on it.
//
// Built for the embarrassingly parallel outer loops of the studies (Monte
// Carlo samples, design-space sweep points, iso-I_MAX curves): tasks are
// coarse (each is a full circuit characterization), so a shared pool with an
// atomic work index — workers "steal" the next index when they finish — is
// all the scheduling these loops need. Determinism is the caller's job: give
// every index an independent RNG stream / output slot and the result is
// identical for any worker count, including the serial fallback.
#pragma once

#include <cstddef>
#include <functional>

namespace softfet::util {

/// Worker count used by default: SOFTFET_THREADS when set (>= 1), otherwise
/// std::thread::hardware_concurrency (min 1).
[[nodiscard]] std::size_t hardware_threads() noexcept;

/// Run body(0..count-1), distributing indices over `threads` workers
/// (0 = hardware_threads()). Blocks until all indices completed. The calling
/// thread participates, so threads = 1 is exactly a serial loop. Nested
/// calls from inside a body run serially (no deadlock, same results). The
/// first exception thrown by any body is rethrown here after the loop
/// drains.
void parallel_for(std::size_t count,
                  const std::function<void(std::size_t)>& body,
                  std::size_t threads = 0);

}  // namespace softfet::util
