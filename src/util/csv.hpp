// CSV / NDJSON writers for waveforms and experiment results.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace softfet::util {

/// Streams rows of doubles (plus a header) as RFC-4180-ish CSV.
class CsvWriter {
 public:
  /// `out` must outlive the writer.
  CsvWriter(std::ostream& out, std::vector<std::string> columns);

  /// Write one data row; throws softfet::Error on column-count mismatch.
  void write_row(const std::vector<double>& values);

  [[nodiscard]] std::size_t rows_written() const noexcept { return rows_; }

 private:
  std::ostream& out_;
  std::size_t columns_;
  std::size_t rows_ = 0;
};

/// Escape a string for a CSV field (quotes + commas).
[[nodiscard]] std::string csv_escape(const std::string& field);

/// Streams one JSON object per line (NDJSON): numeric fields keyed by the
/// column names given at construction.
class NdjsonWriter {
 public:
  NdjsonWriter(std::ostream& out, std::vector<std::string> columns);

  void write_row(const std::vector<double>& values);

  [[nodiscard]] std::size_t rows_written() const noexcept { return rows_; }

 private:
  std::ostream& out_;
  std::vector<std::string> columns_;
  std::size_t rows_ = 0;
};

/// Escape a string for a JSON string literal (quotes, backslash, control).
[[nodiscard]] std::string json_escape(const std::string& text);

}  // namespace softfet::util
