// Build provenance for binaries, the service hello, and crash reports.
//
// Crash forensics are only actionable when they are attributable to a
// build: a last-gasp record saying "SIGSEGV in handler:netlist" means a
// different thing on a sanitizer build than on a Release binary three
// commits later. The CMake configure step stamps the git SHA, build type,
// and sanitizer flags into compile definitions; this module exposes them
// as data (for the service's stats/hello JSON) and as a one-line string
// (for --version output and the crash handler's `build` field).
#pragma once

#include <string>

namespace softfet::util {

struct BuildInfo {
  const char* project_version;  ///< CMake project VERSION
  const char* git_sha;          ///< short commit SHA, "unknown" outside git
  const char* compiler;         ///< compiler id + version string
  const char* build_type;       ///< CMAKE_BUILD_TYPE
  const char* sanitizer;        ///< "none", "asan-ubsan", or "tsan"
};

[[nodiscard]] const BuildInfo& build_info();

/// "softfet 1.0.0 (git abc123def456, g++ 13.2.0, Release, sanitizer=none)"
[[nodiscard]] std::string build_info_line();

}  // namespace softfet::util
