#include "util/checkpoint.hpp"

#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <utility>

#include "util/error.hpp"

namespace softfet::util {

namespace {

constexpr const char* kMagic = "softfet-checkpoint v1";

[[nodiscard]] char hex_digit(int v) {
  return static_cast<char>(v < 10 ? '0' + v : 'A' + (v - 10));
}

[[nodiscard]] int hex_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  return -1;
}

}  // namespace

std::string escape_field(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    const auto u = static_cast<unsigned char>(c);
    if (c == '%' || std::isspace(u) != 0 || u < 0x20) {
      out += '%';
      out += hex_digit(u >> 4);
      out += hex_digit(u & 0xF);
    } else {
      out += c;
    }
  }
  // An empty field still needs a token on the line.
  return out.empty() ? "%00" : out;
}

std::string unescape_field(const std::string& field) {
  if (field == "%00") return {};
  std::string out;
  out.reserve(field.size());
  for (std::size_t i = 0; i < field.size(); ++i) {
    if (field[i] == '%' && i + 2 < field.size()) {
      const int hi = hex_value(field[i + 1]);
      const int lo = hex_value(field[i + 2]);
      if (hi >= 0 && lo >= 0) {
        out += static_cast<char>((hi << 4) | lo);
        i += 2;
        continue;
      }
    }
    out += field[i];
  }
  return out;
}

Checkpoint::Checkpoint(std::string tag, std::size_t total)
    : tag_(std::move(tag)), slots_(total) {}

Checkpoint::Checkpoint(Checkpoint&& other) noexcept {
  const std::lock_guard<std::mutex> lock(other.mutex_);
  tag_ = std::move(other.tag_);
  slots_ = std::move(other.slots_);
}

Checkpoint& Checkpoint::operator=(Checkpoint&& other) noexcept {
  if (this != &other) {
    const std::scoped_lock lock(mutex_, other.mutex_);
    tag_ = std::move(other.tag_);
    slots_ = std::move(other.slots_);
  }
  return *this;
}

Checkpoint Checkpoint::load_or_create(const std::string& path,
                                      const std::string& tag,
                                      std::size_t total) {
  std::ifstream file(path);
  if (!file) return Checkpoint(tag, total);  // fresh start

  const auto malformed = [&](const std::string& why) {
    return Error("checkpoint '" + path + "': " + why);
  };

  std::string line;
  if (!std::getline(file, line) || line != kMagic) {
    throw malformed("not a softfet checkpoint file");
  }

  Checkpoint out(tag, total);
  bool saw_tag = false;
  bool saw_total = false;
  int line_no = 1;
  while (std::getline(file, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::istringstream fields(line);
    std::string keyword;
    fields >> keyword;
    if (keyword == "tag") {
      std::string stored;
      fields >> stored;
      if (unescape_field(stored) != tag) {
        throw malformed("tag mismatch: file holds a different batch (\"" +
                        unescape_field(stored) + "\" vs expected \"" + tag +
                        "\"); refusing to mix studies");
      }
      saw_tag = true;
    } else if (keyword == "total") {
      std::size_t stored = 0;
      if (!(fields >> stored)) {
        throw malformed("bad total on line " + std::to_string(line_no));
      }
      if (stored != total) {
        throw malformed("slot-count mismatch (" + std::to_string(stored) +
                        " in file, " + std::to_string(total) + " expected)");
      }
      saw_total = true;
    } else if (keyword == "slot") {
      std::size_t index = 0;
      if (!(fields >> index) || index >= total) {
        throw malformed("bad slot index on line " + std::to_string(line_no));
      }
      std::string payload;
      std::getline(fields, payload);
      // Drop the single separating space left by operator>>.
      if (!payload.empty() && payload.front() == ' ') payload.erase(0, 1);
      out.slots_[index] = std::move(payload);
    } else {
      throw malformed("unknown keyword '" + keyword + "' on line " +
                      std::to_string(line_no));
    }
  }
  if (!saw_tag || !saw_total) throw malformed("missing tag/total header");
  return out;
}

bool Checkpoint::has(std::size_t index) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return index < slots_.size() && slots_[index].has_value();
}

std::optional<std::string> Checkpoint::payload(std::size_t index) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (index >= slots_.size()) return std::nullopt;
  return slots_[index];
}

std::size_t Checkpoint::completed() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::size_t count = 0;
  for (const auto& slot : slots_) {
    if (slot.has_value()) ++count;
  }
  return count;
}

void Checkpoint::record(std::size_t index, std::string payload) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (index >= slots_.size()) {
    throw Error("checkpoint: slot " + std::to_string(index) +
                " out of range (total " + std::to_string(slots_.size()) + ")");
  }
  slots_[index] = std::move(payload);
}

void Checkpoint::save(const std::string& path) const {
  const std::string tmp = path + ".tmp";
  // The rename stays under the lock: concurrent saves share the tmp path,
  // and renaming it while another save is mid-write would publish a torn
  // file — the one thing this protocol exists to rule out.
  const std::lock_guard<std::mutex> lock(mutex_);
  {
    std::ofstream file(tmp, std::ios::trunc);
    if (!file) throw Error("checkpoint: cannot write '" + tmp + "'");
    file << kMagic << '\n';
    file << "tag " << escape_field(tag_) << '\n';
    file << "total " << slots_.size() << '\n';
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      if (slots_[i].has_value()) file << "slot " << i << ' ' << *slots_[i] << '\n';
    }
    file.flush();
    if (!file) throw Error("checkpoint: write to '" + tmp + "' failed");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    throw Error("checkpoint: atomic rename to '" + path + "' failed");
  }
}

}  // namespace softfet::util
