#include "util/checkpoint.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <utility>

#include "util/error.hpp"

namespace softfet::util {

namespace {

constexpr const char* kMagic = "softfet-checkpoint v1";

/// fsync a path (file or directory). Directories need it too: rename() only
/// becomes durable once the containing directory's entry table is written
/// back, so without this a power cut can lose BOTH the old and new file.
void fsync_path(const std::string& path, bool required) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    if (required) throw Error("checkpoint: cannot fsync '" + path + "'");
    return;  // e.g. a filesystem that refuses O_RDONLY on directories
  }
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0 && required) {
    throw Error("checkpoint: fsync of '" + path + "' failed");
  }
}

[[nodiscard]] std::string parent_directory(const std::string& path) {
  const auto slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

/// Per-save unique temp path: two processes (or two Checkpoint objects)
/// targeting the same file must never write through one shared tmp name —
/// a rename could otherwise publish the other writer's half-written data.
[[nodiscard]] std::string unique_tmp_path(const std::string& path) {
  static std::atomic<unsigned long> counter{0};
  return path + ".tmp." + std::to_string(static_cast<long>(::getpid())) +
         "." + std::to_string(counter.fetch_add(1, std::memory_order_relaxed));
}

[[nodiscard]] char hex_digit(int v) {
  return static_cast<char>(v < 10 ? '0' + v : 'A' + (v - 10));
}

[[nodiscard]] int hex_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  return -1;
}

}  // namespace

std::string escape_field(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    const auto u = static_cast<unsigned char>(c);
    if (c == '%' || std::isspace(u) != 0 || u < 0x20) {
      out += '%';
      out += hex_digit(u >> 4);
      out += hex_digit(u & 0xF);
    } else {
      out += c;
    }
  }
  // An empty field still needs a token on the line.
  return out.empty() ? "%00" : out;
}

std::string unescape_field(const std::string& field) {
  if (field == "%00") return {};
  std::string out;
  out.reserve(field.size());
  for (std::size_t i = 0; i < field.size(); ++i) {
    if (field[i] == '%' && i + 2 < field.size()) {
      const int hi = hex_value(field[i + 1]);
      const int lo = hex_value(field[i + 2]);
      if (hi >= 0 && lo >= 0) {
        out += static_cast<char>((hi << 4) | lo);
        i += 2;
        continue;
      }
    }
    out += field[i];
  }
  return out;
}

Checkpoint::Checkpoint(std::string tag, std::size_t total)
    : tag_(std::move(tag)), slots_(total) {}

Checkpoint::Checkpoint(Checkpoint&& other) noexcept {
  const std::lock_guard<std::mutex> lock(other.mutex_);
  tag_ = std::move(other.tag_);
  slots_ = std::move(other.slots_);
}

Checkpoint& Checkpoint::operator=(Checkpoint&& other) noexcept {
  if (this != &other) {
    const std::scoped_lock lock(mutex_, other.mutex_);
    tag_ = std::move(other.tag_);
    slots_ = std::move(other.slots_);
  }
  return *this;
}

Checkpoint Checkpoint::load_or_create(const std::string& path,
                                      const std::string& tag,
                                      std::size_t total) {
  std::ifstream file(path);
  if (!file) return Checkpoint(tag, total);  // fresh start

  const auto malformed = [&](const std::string& why) {
    return Error("checkpoint '" + path + "': " + why);
  };

  std::string line;
  if (!std::getline(file, line) || line != kMagic) {
    throw malformed("not a softfet checkpoint file");
  }

  Checkpoint out(tag, total);
  bool saw_tag = false;
  bool saw_total = false;
  int line_no = 1;
  while (std::getline(file, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::istringstream fields(line);
    std::string keyword;
    fields >> keyword;
    if (keyword == "tag") {
      std::string stored;
      fields >> stored;
      if (unescape_field(stored) != tag) {
        throw malformed("tag mismatch: file holds a different batch (\"" +
                        unescape_field(stored) + "\" vs expected \"" + tag +
                        "\"); refusing to mix studies");
      }
      saw_tag = true;
    } else if (keyword == "total") {
      std::size_t stored = 0;
      if (!(fields >> stored)) {
        throw malformed("bad total on line " + std::to_string(line_no));
      }
      if (stored != total) {
        throw malformed("slot-count mismatch (" + std::to_string(stored) +
                        " in file, " + std::to_string(total) + " expected)");
      }
      saw_total = true;
    } else if (keyword == "slot") {
      std::size_t index = 0;
      if (!(fields >> index) || index >= total) {
        throw malformed("bad slot index on line " + std::to_string(line_no));
      }
      std::string payload;
      std::getline(fields, payload);
      // Drop the single separating space left by operator>>.
      if (!payload.empty() && payload.front() == ' ') payload.erase(0, 1);
      out.slots_[index] = std::move(payload);
    } else {
      throw malformed("unknown keyword '" + keyword + "' on line " +
                      std::to_string(line_no));
    }
  }
  if (!saw_tag || !saw_total) throw malformed("missing tag/total header");
  return out;
}

bool Checkpoint::has(std::size_t index) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return index < slots_.size() && slots_[index].has_value();
}

std::optional<std::string> Checkpoint::payload(std::size_t index) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (index >= slots_.size()) return std::nullopt;
  return slots_[index];
}

std::size_t Checkpoint::completed() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::size_t count = 0;
  for (const auto& slot : slots_) {
    if (slot.has_value()) ++count;
  }
  return count;
}

void Checkpoint::record(std::size_t index, std::string payload) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (index >= slots_.size()) {
    throw Error("checkpoint: slot " + std::to_string(index) +
                " out of range (total " + std::to_string(slots_.size()) + ")");
  }
  slots_[index] = std::move(payload);
}

void Checkpoint::save(const std::string& path) const {
  // Unique per-save tmp name: concurrent writers (two jobs sharing a
  // checkpoint directory, or two processes racing on one path) each write
  // their own tmp file, so a rename always publishes a complete file —
  // last writer wins, but no interleaving can publish a torn one.
  const std::string tmp = unique_tmp_path(path);
  const std::lock_guard<std::mutex> lock(mutex_);
  {
    std::ofstream file(tmp, std::ios::trunc);
    if (!file) throw Error("checkpoint: cannot write '" + tmp + "'");
    file << kMagic << '\n';
    file << "tag " << escape_field(tag_) << '\n';
    file << "total " << slots_.size() << '\n';
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      if (slots_[i].has_value()) file << "slot " << i << ' ' << *slots_[i] << '\n';
    }
    file.flush();
    if (!file) throw Error("checkpoint: write to '" + tmp + "' failed");
  }
  // Durability, not just atomicity: the tmp's *contents* must hit the disk
  // before the rename makes them reachable (else a crash can expose a
  // zero-length renamed file), and the parent directory entry after it
  // (else a power cut between rename and directory writeback loses the
  // resume file entirely).
  fsync_path(tmp, /*required=*/true);
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw Error("checkpoint: atomic rename to '" + path + "' failed");
  }
  fsync_path(parent_directory(path), /*required=*/false);
}

}  // namespace softfet::util
