// Async-signal-safe crash handler for worker processes.
//
// A process-isolated worker can die from a SIGSEGV in a device model, a
// SIGABRT from a failed assert, or a SIGXCPU from the supervisor's CPU
// rlimit. The parent only sees a wait status; without help it cannot tell
// *where* the worker was when it died. install_crash_handler() arms a
// handler for the fatal signals that writes one JSON "last gasp" line —
// signal, faulting stage, active job id, netlist/work hash, last emitted
// progress seq, build stamp — to a pre-opened fd, then restores the
// default disposition and re-raises so the wait status stays truthful.
//
// Everything in the handler path is async-signal-safe: the JSON line is
// assembled with hand-rolled append/itoa into a static buffer (no malloc,
// no snprintf, no iostreams) and emitted with write()+fsync(). The mutable
// context (stage/job/seq) is published through lock-free, pre-sanitized
// static buffers — the setters below strip characters that would break the
// JSON so the handler can splice them in verbatim.
//
// The context setters are NOT thread-safe against each other: a worker
// process runs jobs on a single thread, which is the only writer. The
// handler may interrupt a setter mid-copy; buffers are NUL-padded so the
// worst case is a truncated (never malformed) field.
#pragma once

#include <cstdint>

namespace softfet::util {

/// Arm the handler on SIGSEGV, SIGBUS, SIGILL, SIGFPE, SIGABRT, SIGXCPU.
/// `fd` must stay open for the process lifetime (pre-opened crash file).
/// `build` is a short build identifier embedded in every report; copied.
/// Installs an alternate signal stack so stack-overflow SIGSEGVs are
/// still reportable. Safe to call again to re-point fd/build.
void install_crash_handler(int fd, const char* build);

/// Label the stage the worker is about to enter ("parse", "handler:netlist",
/// "idle", ...). Copied and sanitized; nullptr clears.
void crash_set_stage(const char* stage);

/// Record the active job id and a content hash of the work (netlist/spec
/// fingerprint) so a crash is attributable to its input.
void crash_set_job(const char* job_id, std::uint64_t work_hash);

/// Record the seq of the last event the worker emitted for the active job,
/// so forensics show how far the job got.
void crash_set_last_seq(std::uint64_t seq);

/// Forget job context (between jobs).
void crash_clear_job();

}  // namespace softfet::util
