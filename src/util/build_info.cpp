#include "util/build_info.hpp"

namespace softfet::util {
namespace {

#ifndef SOFTFET_VERSION
#define SOFTFET_VERSION "unknown"
#endif
#ifndef SOFTFET_GIT_SHA
#define SOFTFET_GIT_SHA "unknown"
#endif
#ifndef SOFTFET_BUILD_TYPE
#define SOFTFET_BUILD_TYPE "unknown"
#endif
#ifndef SOFTFET_SAN
#define SOFTFET_SAN "none"
#endif

const char* compiler_string() {
#if defined(__clang_version__)
  return "clang " __clang_version__;
#elif defined(__VERSION__)
  return "g++ " __VERSION__;
#else
  return "unknown";
#endif
}

}  // namespace

const BuildInfo& build_info() {
  static const BuildInfo info{
      SOFTFET_VERSION, SOFTFET_GIT_SHA, compiler_string(),
      SOFTFET_BUILD_TYPE, SOFTFET_SAN,
  };
  return info;
}

std::string build_info_line() {
  const BuildInfo& b = build_info();
  std::string out = "softfet ";
  out += b.project_version;
  out += " (git ";
  out += b.git_sha;
  out += ", ";
  out += b.compiler;
  out += ", ";
  out += b.build_type;
  out += ", sanitizer=";
  out += b.sanitizer;
  out += ")";
  return out;
}

}  // namespace softfet::util
