// Minimal POSIX subprocess toolkit for process-isolated workers.
//
// The service's supervisor (service/supervisor.hpp) forks sandboxed worker
// processes and ships jobs over pipes; this header holds the low-level,
// service-agnostic half of that: fork/reap/kill with decoded exit statuses,
// a length-prefixed frame protocol over file descriptors, and the rlimit
// helpers that bound a worker's address space and CPU time.
//
// Frame protocol: every message is a 4-byte little-endian length followed
// by that many payload bytes. Length prefixing (rather than newline
// delimiting) keeps the protocol binary-safe and makes a torn write
// detectable: a reader that hits EOF mid-frame knows the peer died
// mid-message instead of silently truncating it. Frames are capped at
// kMaxFrameBytes so a corrupted length prefix cannot trigger an unbounded
// allocation.
//
// fork() without exec() from a threaded parent is deliberate: workers need
// the full simulation library and the registered job handlers, and glibc
// guarantees malloc consistency across fork. The child must only touch
// fresh objects (never the parent's mutex-guarded state) and must leave
// via _exit(), both of which the supervisor's worker main enforces.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>

#include <sys/types.h>

namespace softfet::util {

/// Decoded waitpid() status.
struct ExitStatus {
  bool exited = false;    ///< terminated via exit()/_exit()
  int exit_code = 0;      ///< valid when `exited`
  bool signaled = false;  ///< terminated by a signal
  int term_signal = 0;    ///< valid when `signaled`

  [[nodiscard]] bool clean() const noexcept { return exited && exit_code == 0; }
  /// "exit 3" / "killed by SIGSEGV (11)" — for logs and crash forensics.
  [[nodiscard]] std::string describe() const;
};

/// "SIGSEGV" for 11 etc.; "SIG<n>" for unknown numbers. Never nullptr.
[[nodiscard]] const char* signal_name(int signo);

/// fork() and run `body` in the child; the child terminates via
/// _exit(body()) and never returns into the caller's stack. Returns the
/// child pid, or -1 when fork() failed.
[[nodiscard]] pid_t spawn_child(const std::function<int()>& body);

/// Reap `pid`. Blocking form waits; non-blocking returns nullopt while the
/// child is still running. Also nullopt when `pid` is not a child (already
/// reaped).
[[nodiscard]] std::optional<ExitStatus> wait_child(pid_t pid, bool block);

/// kill() wrapper that tolerates an already-dead pid.
void kill_child(pid_t pid, int signo);

/// Hard cap on one frame's payload (a corrupt length prefix must not turn
/// into a multi-gigabyte allocation). Generous: the service already caps
/// request lines at ~4 MiB and streams waveforms in bounded chunks.
inline constexpr std::size_t kMaxFrameBytes = 64u << 20;

/// Write one length-prefixed frame, retrying EINTR and partial writes.
/// Returns false on any unrecoverable error (EPIPE when the peer died —
/// callers must have SIGPIPE ignored or blocked).
[[nodiscard]] bool write_frame(int fd, std::string_view payload);

enum class FrameRead {
  kFrame,    ///< one complete frame delivered
  kTimeout,  ///< no complete frame within the poll window
  kEof,      ///< peer closed (possibly mid-frame — the peer died)
  kError,    ///< fd error or an over-cap/corrupt length prefix
};

/// Buffered frame reader over a pipe fd. poll_frame() returns as soon as a
/// complete frame is buffered, waiting at most `timeout_ms` for *progress*
/// (each poll window restarts after any bytes arrive, so a slowly streamed
/// large frame is not misreported as a timeout).
class FrameReader {
 public:
  explicit FrameReader(int fd = -1) : fd_(fd) {}

  /// Point at a new fd (drops any buffered partial frame).
  void reset(int fd) {
    fd_ = fd;
    buffer_.clear();
  }
  [[nodiscard]] int fd() const noexcept { return fd_; }

  [[nodiscard]] FrameRead poll_frame(int timeout_ms, std::string& out);

 private:
  [[nodiscard]] bool complete_frame(std::string& out);

  int fd_;
  std::string buffer_;
};

/// Cap the process's address space (RLIMIT_AS, soft and hard). Allocation
/// beyond the cap fails with ENOMEM — std::bad_alloc — instead of inviting
/// the OOM killer. No-op when bytes == 0.
void limit_address_space(std::size_t bytes);

/// CPU seconds (user + system) this process has consumed so far.
[[nodiscard]] double cpu_seconds_used();

/// Arm a CPU-time watchdog `seconds` from the *current* usage: the soft
/// RLIMIT_CPU is set to ceil(used + seconds) while the hard limit stays
/// unlimited, so the limit can be re-armed per job on a reused worker.
/// Exceeding it delivers SIGXCPU (fatal by default; the crash handler
/// turns it into a last-gasp record). No-op when seconds <= 0.
void limit_cpu_seconds_from_now(double seconds);

}  // namespace softfet::util
