// SI / SPICE engineering-unit parsing and formatting.
//
// Netlists write values like "500k", "10p", "1meg", "0.5u"; reports want the
// inverse ("2.3e-11" -> "23p"). Both directions live here.
#pragma once

#include <optional>
#include <string>
#include <string_view>

namespace softfet::util {

/// Parse a SPICE-style engineering number: an optional sign, decimal number,
/// then an optional scale suffix (T, G, MEG/X, K, M, U, N, P, F, A) followed
/// by arbitrary trailing unit letters ("10pF" -> 1e-11).
/// Returns std::nullopt on malformed input.
[[nodiscard]] std::optional<double> parse_spice_number(std::string_view text);

/// Like parse_spice_number but throws softfet::Error with context on failure.
[[nodiscard]] double parse_spice_number_or_throw(std::string_view text);

/// Format with an SI prefix and the given significant digits: 2.3e-11 -> "23p".
[[nodiscard]] std::string format_si(double value, int significant_digits = 4,
                                    std::string_view unit = "");

}  // namespace softfet::util
