#include "util/budget.hpp"

#include <csignal>
#include <cstdlib>

namespace softfet::util {

const char* to_string(BudgetStop stop) {
  switch (stop) {
    case BudgetStop::kNone: return "within budget";
    case BudgetStop::kCancel: return "cancel requested";
    case BudgetStop::kWallClock: return "wall-clock budget exhausted";
    case BudgetStop::kAcceptedSteps: return "accepted-step budget exhausted";
    case BudgetStop::kNewtonIterations:
      return "newton-iteration budget exhausted";
  }
  return "unknown budget stop";
}

BudgetTimer::BudgetTimer(const RunBudget& budget) : budget_(budget) {
  if (budget_.max_wall_seconds > 0.0) {
    deadline_ = std::chrono::steady_clock::now() +
                std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                    std::chrono::duration<double>(budget_.max_wall_seconds));
    has_deadline_ = true;
  }
}

BudgetStop BudgetTimer::check_now() const {
  if (budget_.cancel != nullptr && budget_.cancel->requested()) {
    return BudgetStop::kCancel;
  }
  if (has_deadline_ && std::chrono::steady_clock::now() >= deadline_) {
    return BudgetStop::kWallClock;
  }
  return BudgetStop::kNone;
}

BudgetStop BudgetTimer::check(std::size_t accepted_steps,
                              std::size_t newton_iterations) const {
  const BudgetStop now = check_now();
  if (now != BudgetStop::kNone) return now;
  if (budget_.max_accepted_steps > 0 &&
      accepted_steps >= budget_.max_accepted_steps) {
    return BudgetStop::kAcceptedSteps;
  }
  if (budget_.max_newton_iterations > 0 &&
      newton_iterations >= budget_.max_newton_iterations) {
    return BudgetStop::kNewtonIterations;
  }
  return BudgetStop::kNone;
}

namespace {

CancelToken g_sigint_token;
std::atomic<int> g_sigint_count{0};
std::atomic<int> g_last_signal{0};
std::atomic<bool> g_sigint_installed{false};

void cancel_signal_handler(int signo) {
  g_last_signal.store(signo, std::memory_order_relaxed);
  if (g_sigint_count.fetch_add(1, std::memory_order_relaxed) == 0) {
    g_sigint_token.request();
  } else {
    // Second signal (either kind): the controller wants out now. _Exit is
    // async-signal-safe; 128 + signo is the conventional status.
    std::_Exit(128 + signo);
  }
}

}  // namespace

CancelToken& sigint_cancel_token() { return g_sigint_token; }

int last_cancel_signal() noexcept {
  return g_last_signal.load(std::memory_order_relaxed);
}

int cancel_exit_code(int fallback) noexcept {
  const int signo = last_cancel_signal();
  return signo > 0 ? 128 + signo : fallback;
}

void install_signal_cancel() {
  if (g_sigint_installed.exchange(true)) return;
  std::signal(SIGINT, cancel_signal_handler);
  std::signal(SIGTERM, cancel_signal_handler);
}

void install_sigint_cancel() { install_signal_cancel(); }

}  // namespace softfet::util
