#include "util/table.hpp"

#include <algorithm>
#include <cstdio>

#include "util/error.hpp"

namespace softfet::util {

std::string fmt_g(double value, int digits) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.*g", digits, value);
  return buf;
}

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  if (header_.empty()) throw Error("TextTable: empty header");
}

void TextTable::add_row(std::vector<std::string> cells) {
  if (cells.size() != header_.size()) {
    throw Error("TextTable: row width " + std::to_string(cells.size()) +
                " != header width " + std::to_string(header_.size()));
  }
  rows_.push_back(std::move(cells));
}

void TextTable::add_row_values(const std::vector<double>& values) {
  std::vector<std::string> cells;
  cells.reserve(values.size());
  for (double v : values) cells.push_back(fmt_g(v));
  add_row(std::move(cells));
}

void TextTable::print(std::ostream& out) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  const auto print_line = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out << (c == 0 ? "| " : " | ");
      out << cells[c];
      out << std::string(widths[c] - cells[c].size(), ' ');
    }
    out << " |\n";
  };

  print_line(header_);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    out << (c == 0 ? "|" : "|") << std::string(widths[c] + 2, '-');
  }
  out << "|\n";
  for (const auto& row : rows_) print_line(row);
}

}  // namespace softfet::util
