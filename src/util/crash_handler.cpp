#include "util/crash_handler.hpp"

#include <atomic>
#include <csignal>
#include <cstring>

#include <signal.h>
#include <unistd.h>

namespace softfet::util {
namespace {

constexpr int kFatalSignals[] = {SIGSEGV, SIGBUS, SIGILL,
                                 SIGFPE,  SIGABRT, SIGXCPU};

// All handler inputs live in fixed static storage, written only by the
// (single-threaded) job loop and read by the handler. Copies are sanitized
// at set time so the handler can emit them into JSON without escaping.
constexpr std::size_t kFieldBytes = 128;
char g_build[kFieldBytes] = "unknown";
char g_stage[kFieldBytes] = "startup";
char g_job[kFieldBytes] = "";
std::atomic<std::uint64_t> g_work_hash{0};
std::atomic<std::uint64_t> g_last_seq{0};
std::atomic<int> g_fd{-1};

// 64 KiB alternate stack: enough for the handler's fixed buffers even when
// the fault is a stack overflow on the main stack.
alignas(16) char g_altstack[64 * 1024];

void sanitize_copy(char* dst, const char* src) {
  std::size_t o = 0;
  if (src != nullptr) {
    for (std::size_t i = 0; src[i] != '\0' && o + 1 < kFieldBytes; ++i) {
      const auto c = static_cast<unsigned char>(src[i]);
      if (c == '"' || c == '\\' || c < 0x20) continue;
      dst[o++] = static_cast<char>(c);
    }
  }
  // NUL-pad the tail so a handler interrupting this copy mid-way always
  // sees a terminated string.
  for (; o < kFieldBytes; ++o) dst[o] = '\0';
}

// --- async-signal-safe emit helpers (no libc formatting) ---

struct GaspBuffer {
  char data[1024];
  std::size_t len = 0;

  void put(char c) {
    if (len < sizeof(data)) data[len++] = c;
  }
  void puts(const char* s) {
    for (std::size_t i = 0; s[i] != '\0'; ++i) put(s[i]);
  }
  void put_u64(std::uint64_t v) {
    char tmp[20];
    std::size_t n = 0;
    do {
      tmp[n++] = static_cast<char>('0' + (v % 10));
      v /= 10;
    } while (v != 0);
    while (n > 0) put(tmp[--n]);
  }
  void put_hex64(std::uint64_t v) {
    const char* digits = "0123456789abcdef";
    for (int shift = 60; shift >= 0; shift -= 4) {
      put(digits[(v >> shift) & 0xf]);
    }
  }
};

const char* safe_signal_name(int signo) {
  // Duplicated from subprocess.cpp's signal_name on purpose: that one
  // falls back to snprintf, which is not async-signal-safe.
  switch (signo) {
    case SIGSEGV: return "SIGSEGV";
    case SIGBUS: return "SIGBUS";
    case SIGILL: return "SIGILL";
    case SIGFPE: return "SIGFPE";
    case SIGABRT: return "SIGABRT";
    case SIGXCPU: return "SIGXCPU";
    default: return "SIG?";
  }
}

void crash_signal_handler(int signo) {
  const int fd = g_fd.load(std::memory_order_relaxed);
  if (fd >= 0) {
    GaspBuffer b;
    b.puts("{\"signal\":");
    b.put_u64(static_cast<std::uint64_t>(signo));
    b.puts(",\"signal_name\":\"");
    b.puts(safe_signal_name(signo));
    b.puts("\",\"stage\":\"");
    b.puts(g_stage);
    b.puts("\",\"job\":\"");
    b.puts(g_job);
    b.puts("\",\"work_hash\":\"");
    b.put_hex64(g_work_hash.load(std::memory_order_relaxed));
    b.puts("\",\"last_seq\":");
    b.put_u64(g_last_seq.load(std::memory_order_relaxed));
    b.puts(",\"build\":\"");
    b.puts(g_build);
    b.puts("\"}\n");

    // The crash file is pre-opened O_TRUNC by the supervisor before each
    // spawn; rewind so a report from a long-lived worker lands at offset 0
    // even if something else moved the fd.
    (void)::lseek(fd, 0, SEEK_SET);
    std::size_t off = 0;
    while (off < b.len) {
      const ssize_t wrote = ::write(fd, b.data + off, b.len - off);
      if (wrote <= 0) break;
      off += static_cast<std::size_t>(wrote);
    }
    (void)::fsync(fd);
  }

  // Restore default disposition and re-raise so the parent's waitpid()
  // status reports the true fatal signal (not exit-with-code).
  ::signal(signo, SIG_DFL);
  (void)::raise(signo);
}

}  // namespace

void install_crash_handler(int fd, const char* build) {
  sanitize_copy(g_build, build);
  g_fd.store(fd, std::memory_order_relaxed);

  stack_t ss{};
  ss.ss_sp = g_altstack;
  ss.ss_size = sizeof(g_altstack);
  ss.ss_flags = 0;
  (void)::sigaltstack(&ss, nullptr);

  struct sigaction sa {};
  sa.sa_handler = crash_signal_handler;
  ::sigemptyset(&sa.sa_mask);
  sa.sa_flags = SA_ONSTACK;
  for (const int signo : kFatalSignals) {
    (void)::sigaction(signo, &sa, nullptr);
  }
}

void crash_set_stage(const char* stage) {
  sanitize_copy(g_stage, stage == nullptr ? "" : stage);
}

void crash_set_job(const char* job_id, std::uint64_t work_hash) {
  sanitize_copy(g_job, job_id == nullptr ? "" : job_id);
  g_work_hash.store(work_hash, std::memory_order_relaxed);
  g_last_seq.store(0, std::memory_order_relaxed);
}

void crash_set_last_seq(std::uint64_t seq) {
  g_last_seq.store(seq, std::memory_order_relaxed);
}

void crash_clear_job() {
  sanitize_copy(g_job, "");
  g_work_hash.store(0, std::memory_order_relaxed);
  g_last_seq.store(0, std::memory_order_relaxed);
  crash_set_stage("idle");
}

}  // namespace softfet::util
