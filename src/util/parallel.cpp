#include "util/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace softfet::util {

namespace {

// True while the current thread is inside a parallel_for body; nested
// parallel_for calls then degrade to plain serial loops instead of
// oversubscribing (or deadlocking on) the workers.
thread_local bool t_in_parallel_region = false;

}  // namespace

std::size_t hardware_threads() noexcept {
  if (const char* env = std::getenv("SOFTFET_THREADS")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed >= 1) return static_cast<std::size_t>(parsed);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

void parallel_for(std::size_t count,
                  const std::function<void(std::size_t)>& body,
                  std::size_t threads, const CancelToken* cancel) {
  if (count == 0) return;
  if (threads == 0) threads = hardware_threads();
  threads = std::min(threads, count);

  if (threads <= 1 || t_in_parallel_region) {
    for (std::size_t i = 0; i < count; ++i) {
      if (cancel != nullptr && cancel->requested()) return;
      body(i);
    }
    return;
  }

  // Dynamic (work-stealing style) scheduling: each worker claims the next
  // unclaimed index, so uneven task costs — common when some samples need
  // more Newton iterations — balance themselves.
  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  const auto worker = [&] {
    t_in_parallel_region = true;
    while (!failed.load(std::memory_order_relaxed) &&
           (cancel == nullptr || !cancel->requested())) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) break;
      // A claim can race a failure flagged between the loop condition and
      // fetch_add; re-check so no new body starts after the first throw.
      if (failed.load(std::memory_order_relaxed)) break;
      try {
        body(i);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
      }
    }
    t_in_parallel_region = false;
  };

  std::vector<std::thread> pool;
  pool.reserve(threads - 1);
  for (std::size_t t = 0; t + 1 < threads; ++t) pool.emplace_back(worker);
  worker();  // the calling thread participates
  for (auto& thread : pool) thread.join();

  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace softfet::util
