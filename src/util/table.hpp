// Aligned ASCII table printer used by the bench harnesses to print
// paper-style rows (one table/figure per bench binary).
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace softfet::util {

/// Collects string cells and renders them as an aligned, pipe-separated table.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  /// Convenience: format doubles with %.4g.
  void add_row_values(const std::vector<double>& values);

  void print(std::ostream& out) const;

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Shorthand for formatting a double with %.4g.
[[nodiscard]] std::string fmt_g(double value, int digits = 4);

}  // namespace softfet::util
