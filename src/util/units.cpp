#include "util/units.hpp"

#include <array>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace softfet::util {

namespace {

struct Scale {
  std::string_view suffix;
  double factor;
};

// Order matters: "meg" must match before "m".
constexpr std::array<Scale, 12> kScales{{
    {"meg", 1e6},
    {"mil", 25.4e-6},
    {"t", 1e12},
    {"g", 1e9},
    {"x", 1e6},
    {"k", 1e3},
    {"m", 1e-3},
    {"u", 1e-6},
    {"n", 1e-9},
    {"p", 1e-12},
    {"f", 1e-15},
    {"a", 1e-18},
}};

}  // namespace

std::optional<double> parse_spice_number(std::string_view text) {
  const std::string_view s = trim(text);
  if (s.empty()) return std::nullopt;

  const std::string str(s);
  char* end = nullptr;
  const double base = std::strtod(str.c_str(), &end);
  if (end == str.c_str()) return std::nullopt;  // no leading number at all

  std::string_view rest = trim(std::string_view(end));
  if (rest.empty()) return base;

  // Unit suffixes are letters only; anything else is malformed.
  for (char c : rest) {
    if (std::isalpha(static_cast<unsigned char>(c)) == 0) return std::nullopt;
  }

  const std::string lowered = to_lower(rest);
  for (const auto& scale : kScales) {
    if (istarts_with(lowered, scale.suffix)) return base * scale.factor;
  }
  // Unknown letters with no scale prefix are treated as a bare unit ("10V").
  return base;
}

double parse_spice_number_or_throw(std::string_view text) {
  const auto value = parse_spice_number(text);
  if (!value) {
    throw Error("cannot parse numeric value: '" + std::string(text) + "'");
  }
  return *value;
}

std::string format_si(double value, int significant_digits,
                      std::string_view unit) {
  if (value == 0.0 || !std::isfinite(value)) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*g%s", significant_digits, value,
                  std::string(unit).c_str());
    return buf;
  }

  struct Prefix {
    double factor;
    const char* name;
  };
  static constexpr std::array<Prefix, 13> kPrefixes{{
      {1e12, "T"},
      {1e9, "G"},
      {1e6, "M"},
      {1e3, "k"},
      {1e0, ""},
      {1e-3, "m"},
      {1e-6, "u"},
      {1e-9, "n"},
      {1e-12, "p"},
      {1e-15, "f"},
      {1e-18, "a"},
      {1e-21, "z"},
      {1e-24, "y"},
  }};

  const double mag = std::fabs(value);
  const Prefix* chosen = &kPrefixes.back();
  for (const auto& p : kPrefixes) {
    if (mag >= p.factor * 0.9999995) {
      chosen = &p;
      break;
    }
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*g%s%s", significant_digits,
                value / chosen->factor, chosen->name,
                std::string(unit).c_str());
  return buf;
}

}  // namespace softfet::util
