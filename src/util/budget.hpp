// Run budgets and cooperative cancellation for long-running analyses.
//
// A RunBudget puts a bounded worst case on every run: a wall-clock deadline,
// a cap on accepted transient steps, and a cap on total Newton iterations.
// A CancelToken is the cooperative-cancellation half: a controller (SIGINT
// handler, watchdog, batch driver) requests cancellation once and every
// worker observes it at its next check point. Checks happen at every
// accepted transient step, every Newton entry (and iteration), and every
// parallel_for index claim, so neither an event storm near the PTM
// hysteresis thresholds nor a dt collapse can hang a run unbounded.
//
// The budget is a plain spec; BudgetTimer is the armed runtime object that
// records the deadline at analysis entry and answers "should we stop, and
// why" as a BudgetStop.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>

namespace softfet::util {

/// Shared cooperative-cancellation flag. request() is async-signal-safe and
/// thread-safe; workers poll requested() at their check points. A token is
/// not owned by the budgets that reference it — the controller keeps it
/// alive for the duration of the run.
class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  void request() noexcept {
    requested_.store(true, std::memory_order_release);
  }
  [[nodiscard]] bool requested() const noexcept {
    return requested_.load(std::memory_order_acquire);
  }
  /// Re-arm the token (between independent runs sharing one token).
  void reset() noexcept {
    requested_.store(false, std::memory_order_release);
  }

 private:
  std::atomic<bool> requested_{false};
};

/// Limits for one analysis run. Zero (or a null token) disables the
/// corresponding limit; the default budget is fully unlimited.
struct RunBudget {
  double max_wall_seconds = 0.0;          ///< wall-clock deadline [s]
  std::size_t max_accepted_steps = 0;     ///< accepted transient steps
  std::size_t max_newton_iterations = 0;  ///< cumulative Newton iterations
  const CancelToken* cancel = nullptr;    ///< shared cancel flag (not owned)

  [[nodiscard]] bool unlimited() const noexcept {
    return max_wall_seconds <= 0.0 && max_accepted_steps == 0 &&
           max_newton_iterations == 0 && cancel == nullptr;
  }
};

/// Which limit stopped a run (kNone = still within budget).
enum class BudgetStop {
  kNone,
  kCancel,            ///< the shared CancelToken was tripped
  kWallClock,         ///< the wall-clock deadline passed
  kAcceptedSteps,     ///< accepted-step cap reached
  kNewtonIterations,  ///< cumulative Newton-iteration cap reached
};

[[nodiscard]] const char* to_string(BudgetStop stop);

/// A RunBudget armed at analysis entry: the wall-clock deadline is fixed at
/// construction. Cheap to poll (one relaxed atomic load plus one
/// steady_clock read), copyable, and safe to share by const pointer with
/// inner loops (the Newton solver takes one through its options).
class BudgetTimer {
 public:
  /// Unlimited timer: every check returns kNone without reading the clock.
  BudgetTimer() = default;

  /// Arm `budget` now; the deadline is entry time + max_wall_seconds.
  explicit BudgetTimer(const RunBudget& budget);

  /// Full check at an accepted-step boundary. Order: cancel, wall clock,
  /// accepted steps, Newton iterations (cancellation always wins so a
  /// Ctrl-C reports as a cancel even when a limit tripped simultaneously).
  [[nodiscard]] BudgetStop check(std::size_t accepted_steps,
                                 std::size_t newton_iterations) const;

  /// Cheap check for inner loops (cancel + wall clock only).
  [[nodiscard]] BudgetStop check_now() const;

 private:
  RunBudget budget_{};
  std::chrono::steady_clock::time_point deadline_{};
  bool has_deadline_ = false;
};

/// Process-global token wired to SIGINT/SIGTERM by install_signal_cancel().
[[nodiscard]] CancelToken& sigint_cancel_token();

/// Install SIGINT *and* SIGTERM handlers implementing the double-tap
/// protocol: the first signal requests cooperative cancellation through
/// sigint_cancel_token() (in-flight points finish and checkpoints flush);
/// a second signal of either kind hard-exits with 128 + signo. SIGTERM is
/// handled identically to SIGINT so service managers (systemd, docker
/// stop, CI timeouts) get the same checkpoint flush a Ctrl-C does.
/// Idempotent.
void install_signal_cancel();

/// Back-compat alias for install_signal_cancel().
void install_sigint_cancel();

/// The signal number that triggered the cooperative cancel (0 when the
/// token was never tripped by a signal). Lets drivers exit 130 for SIGINT
/// vs 143 for SIGTERM after a cooperative drain.
[[nodiscard]] int last_cancel_signal() noexcept;

/// Conventional exit status for a signal-cancelled run: 128 + signo
/// (130 SIGINT, 143 SIGTERM), or `fallback` when no signal was involved.
[[nodiscard]] int cancel_exit_code(int fallback = 130) noexcept;

}  // namespace softfet::util
