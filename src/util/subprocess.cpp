#include "util/subprocess.hpp"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstring>

#include <poll.h>
#include <signal.h>
#include <sys/resource.h>
#include <sys/time.h>
#include <sys/wait.h>
#include <unistd.h>

namespace softfet::util {

std::string ExitStatus::describe() const {
  if (exited) return "exit " + std::to_string(exit_code);
  if (signaled) {
    return std::string("killed by ") + signal_name(term_signal) + " (" +
           std::to_string(term_signal) + ")";
  }
  return "unknown status";
}

const char* signal_name(int signo) {
  switch (signo) {
    case SIGHUP: return "SIGHUP";
    case SIGINT: return "SIGINT";
    case SIGQUIT: return "SIGQUIT";
    case SIGILL: return "SIGILL";
    case SIGTRAP: return "SIGTRAP";
    case SIGABRT: return "SIGABRT";
    case SIGBUS: return "SIGBUS";
    case SIGFPE: return "SIGFPE";
    case SIGKILL: return "SIGKILL";
    case SIGUSR1: return "SIGUSR1";
    case SIGSEGV: return "SIGSEGV";
    case SIGUSR2: return "SIGUSR2";
    case SIGPIPE: return "SIGPIPE";
    case SIGALRM: return "SIGALRM";
    case SIGTERM: return "SIGTERM";
    case SIGCHLD: return "SIGCHLD";
    case SIGCONT: return "SIGCONT";
    case SIGSTOP: return "SIGSTOP";
    case SIGTSTP: return "SIGTSTP";
    case SIGXCPU: return "SIGXCPU";
    case SIGXFSZ: return "SIGXFSZ";
    case SIGSYS: return "SIGSYS";
    default: break;
  }
  // Static so the pointer stays valid; sized for "SIG" + int digits. Only
  // reached for exotic real-time signals, so the shared buffer is fine.
  static thread_local char unknown[16];
  std::snprintf(unknown, sizeof(unknown), "SIG%d", signo);
  return unknown;
}

pid_t spawn_child(const std::function<int()>& body) {
  const pid_t pid = ::fork();
  if (pid == 0) {
    // Child. Never return into the caller's stack, never run atexit
    // handlers or flush the parent's stdio buffers: _exit only.
    int rc = 127;
    try {
      rc = body();
    } catch (...) {
      rc = 126;
    }
    ::_exit(rc);
  }
  return pid;
}

std::optional<ExitStatus> wait_child(pid_t pid, bool block) {
  int status = 0;
  for (;;) {
    const pid_t got = ::waitpid(pid, &status, block ? 0 : WNOHANG);
    if (got == pid) break;
    if (got == 0) return std::nullopt;  // still running (WNOHANG)
    if (got < 0 && errno == EINTR) continue;
    return std::nullopt;  // ECHILD: already reaped or not ours
  }
  ExitStatus out;
  if (WIFEXITED(status)) {
    out.exited = true;
    out.exit_code = WEXITSTATUS(status);
  } else if (WIFSIGNALED(status)) {
    out.signaled = true;
    out.term_signal = WTERMSIG(status);
  }
  return out;
}

void kill_child(pid_t pid, int signo) {
  if (pid > 0) (void)::kill(pid, signo);
}

bool write_frame(int fd, std::string_view payload) {
  if (fd < 0 || payload.size() > kMaxFrameBytes) return false;
  const auto n = static_cast<std::uint32_t>(payload.size());
  unsigned char header[4] = {
      static_cast<unsigned char>(n & 0xff),
      static_cast<unsigned char>((n >> 8) & 0xff),
      static_cast<unsigned char>((n >> 16) & 0xff),
      static_cast<unsigned char>((n >> 24) & 0xff),
  };
  // Frame = header + payload in one buffer so that concurrent writers on a
  // shared pipe (not used today, but cheap insurance) cannot interleave a
  // header with another frame's payload when the whole frame fits in
  // PIPE_BUF. Larger frames fall back to plain sequential writes.
  std::string frame;
  frame.reserve(sizeof(header) + payload.size());
  frame.append(reinterpret_cast<const char*>(header), sizeof(header));
  frame.append(payload.data(), payload.size());

  std::size_t off = 0;
  while (off < frame.size()) {
    const ssize_t wrote = ::write(fd, frame.data() + off, frame.size() - off);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(wrote);
  }
  return true;
}

bool FrameReader::complete_frame(std::string& out) {
  if (buffer_.size() < 4) return false;
  const auto b = [this](std::size_t i) {
    return static_cast<std::uint32_t>(static_cast<unsigned char>(buffer_[i]));
  };
  const std::uint32_t n = b(0) | (b(1) << 8) | (b(2) << 16) | (b(3) << 24);
  if (n > kMaxFrameBytes) return false;  // caller checks cap separately
  if (buffer_.size() < 4u + n) return false;
  out.assign(buffer_, 4, n);
  buffer_.erase(0, 4u + n);
  return true;
}

FrameRead FrameReader::poll_frame(int timeout_ms, std::string& out) {
  if (fd_ < 0) return FrameRead::kError;
  for (;;) {
    if (buffer_.size() >= 4) {
      const auto b = [this](std::size_t i) {
        return static_cast<std::uint32_t>(
            static_cast<unsigned char>(buffer_[i]));
      };
      const std::uint32_t n = b(0) | (b(1) << 8) | (b(2) << 16) | (b(3) << 24);
      if (n > kMaxFrameBytes) return FrameRead::kError;
    }
    if (complete_frame(out)) return FrameRead::kFrame;

    struct pollfd pfd {};
    pfd.fd = fd_;
    pfd.events = POLLIN;
    const int ready = ::poll(&pfd, 1, timeout_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return FrameRead::kError;
    }
    if (ready == 0) return FrameRead::kTimeout;
    if ((pfd.revents & (POLLERR | POLLNVAL)) != 0) return FrameRead::kError;

    char chunk[4096];
    const ssize_t got = ::read(fd_, chunk, sizeof(chunk));
    if (got < 0) {
      if (errno == EINTR) continue;
      return FrameRead::kError;
    }
    if (got == 0) return FrameRead::kEof;
    buffer_.append(chunk, static_cast<std::size_t>(got));
    // Progress was made: loop again, re-check for a complete frame, and if
    // still incomplete grant a fresh poll window rather than charging the
    // bytes already received against the timeout.
  }
}

void limit_address_space(std::size_t bytes) {
  if (bytes == 0) return;
  struct rlimit lim {};
  lim.rlim_cur = static_cast<rlim_t>(bytes);
  lim.rlim_max = static_cast<rlim_t>(bytes);
  (void)::setrlimit(RLIMIT_AS, &lim);
}

double cpu_seconds_used() {
  struct rusage ru {};
  if (::getrusage(RUSAGE_SELF, &ru) != 0) return 0.0;
  const auto tv = [](const struct timeval& t) {
    return static_cast<double>(t.tv_sec) +
           static_cast<double>(t.tv_usec) * 1e-6;
  };
  return tv(ru.ru_utime) + tv(ru.ru_stime);
}

void limit_cpu_seconds_from_now(double seconds) {
  if (seconds <= 0.0) return;
  const double deadline = cpu_seconds_used() + seconds;
  struct rlimit lim {};
  lim.rlim_cur = static_cast<rlim_t>(std::ceil(deadline)) + 1;
  lim.rlim_max = RLIM_INFINITY;  // keep raisable for the next job
  (void)::setrlimit(RLIMIT_CPU, &lim);
}

}  // namespace softfet::util
