#include "util/error.hpp"

// Exception types are header-only; this TU anchors the library.
namespace softfet {}
