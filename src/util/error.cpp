#include "util/error.hpp"

#include <utility>

#include "util/table.hpp"
#include "util/units.hpp"

namespace softfet {

void SolverDiagnostics::record_attempt(RecoveryAttempt attempt) {
  if (attempts.size() >= kMaxRecordedAttempts) {
    ++attempts_dropped;
    return;
  }
  attempts.push_back(std::move(attempt));
}

void SolverDiagnostics::mark_last_attempt_succeeded() {
  if (!attempts.empty()) attempts.back().succeeded = true;
}

std::string SolverDiagnostics::summary() const {
  std::string out = analysis.empty() ? "solver" : analysis;
  out += ": ";
  out += failure.empty() ? "failure" : failure;
  out += " at t=" + util::format_si(time, 4, "s");
  if (last_dt > 0.0) out += " (dt=" + util::format_si(last_dt, 3, "s");
  if (last_dt > 0.0 && iterations > 0) {
    out += ", " + std::to_string(iterations) + " iterations)";
  } else if (last_dt > 0.0) {
    out += ")";
  } else if (iterations > 0) {
    out += " (" + std::to_string(iterations) + " iterations)";
  }
  if (!worst_node.empty()) {
    out += ", worst residual " + util::format_si(worst_residual, 3) + " at " +
           worst_node;
    if (!worst_device.empty()) out += " (device " + worst_device + ")";
  }
  const std::size_t tried = attempts.size() + attempts_dropped;
  if (tried > 0) {
    out += ", " + std::to_string(tried) + " recovery attempt" +
           (tried == 1 ? "" : "s");
  }
  if (symbolic_analyses > 0) {
    out += "; LU: " + std::to_string(symbolic_analyses) + " analyses / " +
           std::to_string(refactorizations) + " refactors, fill " +
           util::fmt_g(fill_ratio, 3) + "x" + (reordered ? " (amd)" : "");
  }
  if (krylov_solves > 0 || krylov_fallbacks > 0) {
    out += "; krylov: " + std::to_string(krylov_solves) + " solves / " +
           std::to_string(krylov_iterations) + " iterations, " +
           std::to_string(krylov_fallbacks) + " fallbacks";
  }
  return out;
}

BudgetExceededError::BudgetExceededError(const std::string& what,
                                         util::BudgetStop stop)
    : ConvergenceError(what + " (" + util::to_string(stop) + ")"),
      stop_(stop) {}

BudgetExceededError::BudgetExceededError(const std::string& what,
                                         util::BudgetStop stop,
                                         SolverDiagnostics diagnostics)
    : ConvergenceError(what, std::move(diagnostics)), stop_(stop) {}

ConvergenceError::ConvergenceError(const std::string& what,
                                   SolverDiagnostics diagnostics)
    // summary() already leads with the analysis name; skip a duplicate
    // prefix when the caller context is the same string.
    : Error(what == diagnostics.analysis
                ? diagnostics.summary()
                : what + ": " + diagnostics.summary()),
      diagnostics_(std::move(diagnostics)),
      has_diagnostics_(true) {}

}  // namespace softfet
