// Hyper-FET composition and crossbar selector demo (Table 1 context).
#include <gtest/gtest.h>

#include <cmath>

#include "cells/hyperfet.hpp"
#include "devices/tech40.hpp"
#include "util/error.hpp"

namespace sc = softfet::cells;
namespace sd = softfet::devices;
namespace t40 = softfet::devices::tech40;

namespace {
sd::PtmParams hyperfet_ptm() {
  // Source-side PTM card for a minimum device. Starving subthreshold
  // leakage needs R_INS * I_off >~ nVt (source degeneration in the
  // exponential region), so R_INS is in the GOhm range for a ~0.1 nA
  // leakage device; the metallic state is a tolerable 200 ohm series drop.
  // V_MIT maps to a ~0.25 uA holding current (I_MIT = V_MIT / R_MET).
  sd::PtmParams p;
  p.r_ins = 2.5e9;
  p.r_met = 200.0;
  p.v_imt = 0.2;
  p.v_mit = 5e-5;
  return p;
}
}  // namespace

TEST(HyperFet, ImprovesIonIoffRatio) {
  const auto dims = t40::min_nmos_dims();
  const auto model = t40::nmos();
  const auto plain = sc::mosfet_transfer_curve(model, dims, 1.0, 1.0, 21);
  const auto hyper =
      sc::hyperfet_transfer_curve(model, dims, hyperfet_ptm(), 1.0, 1.0, 21);
  ASSERT_EQ(plain.id.size(), 21u);
  ASSERT_EQ(hyper.id.size(), 21u);

  const double plain_ratio = plain.id.back() / plain.id.front();
  const double hyper_ratio = hyper.id.back() / hyper.id.front();
  // The insulating PTM starves subthreshold leakage: better Ion/Ioff.
  EXPECT_GT(hyper_ratio, 3.0 * plain_ratio);
  // On current is not destroyed (metallic PTM is a small series R).
  EXPECT_GT(hyper.id.back(), 0.5 * plain.id.back());
}

TEST(HyperFet, AbruptTransitionInTransferCurve) {
  const auto hyper = sc::hyperfet_transfer_curve(
      t40::nmos(), t40::min_nmos_dims(), hyperfet_ptm(), 1.0, 1.0, 41);
  // Find the largest log-current step between consecutive Vgs points: the
  // PTM firing produces a jump far steeper than the baseline's 80 mV/dec.
  double max_step = 0.0;
  for (std::size_t i = 1; i < hyper.id.size(); ++i) {
    max_step =
        std::max(max_step, std::log10(hyper.id[i] / hyper.id[i - 1]));
  }
  // 25 mV of Vgs per point; a > 1 decade jump means < 25 mV/dec locally,
  // i.e. sub-thermal swing (the Hyper-FET claim).
  EXPECT_GT(max_step, 1.0);
}

TEST(HyperFet, CellComposition) {
  softfet::sim::Circuit c;
  const auto cell = sc::add_hyperfet_nmos(
      c, "hf", c.node("d"), c.node("g"), softfet::sim::kGroundNode,
      t40::nmos(), t40::min_nmos_dims(), hyperfet_ptm());
  EXPECT_NE(cell.mosfet, nullptr);
  EXPECT_NE(cell.ptm, nullptr);
  EXPECT_TRUE(c.has_node("hf.si"));
}

TEST(Crossbar, SelectorSuppressesSneakCurrent) {
  const sd::PtmParams selector{500e3, 5e3, 0.4, 0.3, 10e-12};
  const auto with = sc::crossbar_read(4, 10e3, 1e6, true, selector, 1.0);
  const auto without = sc::crossbar_read(4, 10e3, 1e6, false, selector, 1.0);

  // Read margin: selected-LRS current over selected-HRS (sneak-dominated)
  // current. Without selectors the margin collapses; with them it holds.
  const double margin_with = with.selected_current / with.sneak_current;
  const double margin_without =
      without.selected_current / without.sneak_current;
  EXPECT_GT(margin_with, 5.0 * margin_without);
  EXPECT_GT(margin_with, 10.0);
}

TEST(Crossbar, LargerArrayWorsensBaselineSneak) {
  const sd::PtmParams selector{500e3, 5e3, 0.4, 0.3, 10e-12};
  const auto small = sc::crossbar_read(2, 10e3, 1e6, false, selector, 1.0);
  const auto large = sc::crossbar_read(6, 10e3, 1e6, false, selector, 1.0);
  // More parallel sneak paths -> more parasitic current when reading HRS.
  EXPECT_GT(large.sneak_current, small.sneak_current);
}

TEST(Crossbar, RejectsTinyArray) {
  const sd::PtmParams selector;
  EXPECT_THROW((void)sc::crossbar_read(1, 1e3, 1e6, false, selector, 1.0),
               softfet::Error);
}
