// Preconditioned Krylov solvers: CG and BiCGSTAB against the direct sparse
// factorization, preconditioned and not, plus the breakdown/cap paths that
// drive the LinearSolver policy fallback.
#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <vector>

#include "numeric/krylov.hpp"
#include "numeric/sparse_lu.hpp"
#include "numeric/sparse_matrix.hpp"

namespace sn = softfet::numeric;

namespace {

/// SPD 2-D mesh Laplacian with a ground leak (a resistor-grid conductance
/// matrix — the CG case).
sn::SparseMatrix mesh_system(std::size_t side) {
  sn::SparseMatrix a(side * side);
  const auto id = [side](std::size_t r, std::size_t c) {
    return r * side + c;
  };
  for (std::size_t r = 0; r < side; ++r) {
    for (std::size_t c = 0; c < side; ++c) {
      double diag = 1e-2;
      if (c + 1 < side) {
        a.add(id(r, c), id(r, c + 1), -1.0);
        a.add(id(r, c + 1), id(r, c), -1.0);
        diag += 1.0;
      }
      if (c > 0) diag += 1.0;
      if (r + 1 < side) {
        a.add(id(r, c), id(r + 1, c), -1.0);
        a.add(id(r + 1, c), id(r, c), -1.0);
        diag += 1.0;
      }
      if (r > 0) diag += 1.0;
      a.add(id(r, c), id(r, c), diag);
    }
  }
  return a;
}

/// Unsymmetric diagonally dominant system (the BiCGSTAB / MNA case).
sn::SparseMatrix unsymmetric_system(std::size_t n, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  std::uniform_int_distribution<std::size_t> pick(0, n - 1);
  sn::SparseMatrix a(n);
  for (std::size_t k = 0; k < 4 * n; ++k) {
    a.add(pick(rng), pick(rng), dist(rng));
  }
  for (std::size_t i = 0; i < n; ++i) a.add(i, i, 8.0);
  return a;
}

std::vector<double> multiply(const sn::SparseMatrix& a,
                             const std::vector<double>& x) {
  std::vector<double> y(a.size(), 0.0);
  for (std::size_t i = 0; i < a.size(); ++i) {
    for (const auto& [j, v] : a.row(i)) y[i] += v * x[j];
  }
  return y;
}

std::vector<double> reference_solution(std::size_t n) {
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = std::cos(static_cast<double>(i) * 0.7);
  }
  return x;
}

}  // namespace

TEST(ConjugateGradient, SolvesSpdMeshUnpreconditioned) {
  const auto a = mesh_system(8);
  const auto x_ref = reference_solution(a.size());
  const auto b = multiply(a, x_ref);
  std::vector<double> x(a.size(), 0.0);
  const auto result = sn::conjugate_gradient(a, b, x);
  ASSERT_TRUE(result.converged);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(x[i], x_ref[i], 1e-8) << "unknown " << i;
  }
}

TEST(ConjugateGradient, ExactPreconditionerConvergesInOneIteration) {
  const auto a = mesh_system(8);
  const auto x_ref = reference_solution(a.size());
  const auto b = multiply(a, x_ref);
  const sn::SparseLu lu(a);
  std::vector<double> x(a.size(), 0.0);
  const auto result = sn::conjugate_gradient(a, b, x, &lu);
  ASSERT_TRUE(result.converged);
  EXPECT_LE(result.iterations, 2u);
}

TEST(ConjugateGradient, StalePreconditionerMatchesDirect) {
  // The policy's steady state: LU of a nearby (older) matrix preconditions
  // the current one. Must land on the direct answer within tolerance in a
  // handful of iterations.
  auto a = mesh_system(8);
  const sn::SparseLu stale(a);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a.add(i, i, 0.05 * static_cast<double>(i % 8 + 1) / 8.0);
  }
  const auto x_ref = reference_solution(a.size());
  const auto b = multiply(a, x_ref);
  std::vector<double> x(a.size(), 0.0);
  const auto result = sn::conjugate_gradient(a, b, x, &stale);
  ASSERT_TRUE(result.converged);
  EXPECT_LT(result.iterations, 20u);
  const auto x_direct = sn::SparseLu(a).solve(b);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(x[i], x_direct[i], 1e-8) << "unknown " << i;
  }
}

TEST(ConjugateGradient, RespectsIterationCap) {
  // Non-uniform rhs: the all-ones vector is an eigenvector of the leaky
  // mesh Laplacian (constant row sums) and would converge in one step.
  const auto a = mesh_system(10);
  const auto b = multiply(a, reference_solution(a.size()));
  std::vector<double> x(a.size(), 0.0);
  sn::KrylovOptions options;
  options.max_iterations = 2;
  options.rtol = 1e-14;
  const auto result = sn::conjugate_gradient(a, b, x, nullptr, options);
  EXPECT_FALSE(result.converged);
  EXPECT_LE(result.iterations, 2u);
}

TEST(Bicgstab, SolvesUnsymmetricSystem) {
  const auto a = unsymmetric_system(100, 11);
  const auto x_ref = reference_solution(a.size());
  const auto b = multiply(a, x_ref);
  std::vector<double> x(a.size(), 0.0);
  const auto result = sn::bicgstab(a, b, x);
  ASSERT_TRUE(result.converged);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(x[i], x_ref[i], 1e-7) << "unknown " << i;
  }
}

TEST(Bicgstab, StalePreconditionerMatchesDirect) {
  auto a = unsymmetric_system(100, 5);
  const sn::SparseLu stale(a);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a.add(i, i, 0.1 * static_cast<double>(i % 5 + 1) / 5.0);
  }
  const auto x_ref = reference_solution(a.size());
  const auto b = multiply(a, x_ref);
  std::vector<double> x(a.size(), 0.0);
  const auto result = sn::bicgstab(a, b, x, &stale);
  ASSERT_TRUE(result.converged);
  EXPECT_LT(result.iterations, 25u);
  const auto x_direct = sn::SparseLu(a).solve(b);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(x[i], x_direct[i], 1e-8) << "unknown " << i;
  }
}

TEST(Bicgstab, WarmStartFromExactSolutionReturnsImmediately) {
  const auto a = unsymmetric_system(60, 2);
  const auto x_ref = reference_solution(a.size());
  const auto b = multiply(a, x_ref);
  std::vector<double> x = x_ref;  // guess == solution
  const auto result = sn::bicgstab(a, b, x);
  ASSERT_TRUE(result.converged);
  EXPECT_EQ(result.iterations, 0u);
}

TEST(Bicgstab, ZeroRhsNeedsAbsoluteTolerance) {
  // ||b|| = 0 makes the pure-relative target unreachable; atol is the
  // escape hatch and the solution must land on zero.
  const auto a = unsymmetric_system(40, 9);
  const std::vector<double> b(a.size(), 0.0);
  std::vector<double> x(a.size(), 0.5);
  sn::KrylovOptions options;
  options.atol = 1e-10;
  const auto result = sn::bicgstab(a, b, x, nullptr, options);
  ASSERT_TRUE(result.converged);
  for (const double v : x) EXPECT_NEAR(v, 0.0, 1e-9);
}
