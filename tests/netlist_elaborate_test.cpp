// Netlist elaboration: end-to-end from text to simulated results.
#include <gtest/gtest.h>

#include <cmath>

#include "devices/mosfet.hpp"
#include "devices/ptm.hpp"
#include "measure/waveform.hpp"
#include "netlist/elaborate.hpp"
#include "sim/analyses.hpp"
#include "util/error.hpp"

namespace nl = softfet::netlist;
namespace ss = softfet::sim;
using softfet::measure::Waveform;

TEST(Elaborate, VoltageDividerOp) {
  auto net = nl::compile_netlist(R"(divider
V1 in 0 DC 10
R1 in mid 1k
R2 mid 0 3k
.op
)");
  EXPECT_TRUE(net.op);
  const auto op = ss::dc_operating_point(*net.circuit);
  EXPECT_NEAR(op.voltage("mid"), 7.5, 1e-6);
}

TEST(Elaborate, ParamsAndExpressions) {
  auto net = nl::compile_netlist(R"(params
.param vcc=2 half={vcc/2}
V1 in 0 {vcc}
R1 in mid {1k*2}
R2 mid 0 2k
)");
  const auto op = ss::dc_operating_point(*net.circuit);
  EXPECT_NEAR(op.voltage("in"), 2.0, 1e-9);
  EXPECT_NEAR(op.voltage("mid"), 1.0, 1e-6);
}

TEST(Elaborate, SubcktFlatteningWithParams) {
  auto net = nl::compile_netlist(R"(hierarchy
.param vcc=1
.model nch nmos
.model pch pmos
.subckt inv in out vdd wn=120n
MP out in vdd vdd pch W={2*wn}
MN out in 0 0 nch W={wn}
.ends
Vdd vdd 0 {vcc}
Vin a 0 0
X1 a b vdd inv
X2 b c vdd inv wn=240n
)");
  auto& c = *net.circuit;
  c.prepare();
  // Flattened device names carry the instance prefix.
  EXPECT_NE(c.find_device("x1.mp"), nullptr);
  EXPECT_NE(c.find_device("x2.mn"), nullptr);
  // Two cascaded inverters: c follows a.
  const auto op = ss::dc_operating_point(c);
  EXPECT_GT(op.voltage("b"), 0.95);  // first inverter output high
  EXPECT_LT(op.voltage("c"), 0.05);  // second output low
}

TEST(Elaborate, SubcktInternalNodesAreScoped) {
  auto net = nl::compile_netlist(R"(scoping
.subckt rdiv in out
R1 in m 1k
R2 m out 1k
.ends
V1 a 0 1
X1 a b rdiv
X2 a c rdiv
Rload1 b 0 1k
Rload2 c 0 1k
)");
  auto& c = *net.circuit;
  c.prepare();
  // Each instance gets a private "m" node.
  EXPECT_TRUE(c.has_node("x1.m"));
  EXPECT_TRUE(c.has_node("x2.m"));
}

TEST(Elaborate, PtmFromModelCard) {
  auto net = nl::compile_netlist(R"(ptm card
.model vo2 ptm rins=500k rmet=5k vimt=0.4 vmit=0.1 tptm=10p
V1 in 0 PWL(0 0 10p 0 40p 1)
P1 in g vo2
C1 g 0 0.5f
.tran 1p 1n
)");
  ASSERT_TRUE(net.tran.has_value());
  auto* ptm = dynamic_cast<softfet::devices::Ptm*>(
      net.circuit->find_device("p1"));
  ASSERT_NE(ptm, nullptr);
  EXPECT_DOUBLE_EQ(ptm->params().r_ins, 500e3);
  EXPECT_DOUBLE_EQ(ptm->params().t_ptm, 10e-12);
  const auto result = ss::run_transient(*net.circuit, net.tran->tstop);
  const Waveform vg = Waveform::from_tran(result, "v(g)");
  EXPECT_NEAR(vg.value(1e-9), 1.0, 0.05);
  EXPECT_GE(ptm->imt_count(), 1);
}

TEST(Elaborate, TranDirectiveDrivesRcCircuit) {
  auto net = nl::compile_netlist(R"(rc
V1 in 0 PULSE(0 1 1n 1p 1p 1)
R1 in out 1k
C1 out 0 1n
.tran 10n 5u
)");
  const auto result = ss::run_transient(*net.circuit, net.tran->tstop);
  const Waveform vout = Waveform::from_tran(result, "v(out)");
  EXPECT_NEAR(vout.value(5e-6), 1.0 - std::exp(-(5e-6 - 1e-9) / 1e-6), 1e-2);
}

TEST(Elaborate, MosfetModelOverrides) {
  auto net = nl::compile_netlist(R"(hvt
.model nhvt nmos vt0=0.55
Vd d 0 1
Vg g 0 1
M1 d g 0 0 nhvt W=120n L=40n
)");
  auto* m = dynamic_cast<softfet::devices::Mosfet*>(
      net.circuit->find_device("m1"));
  ASSERT_NE(m, nullptr);
  EXPECT_DOUBLE_EQ(m->model().vt0, 0.55);
  EXPECT_DOUBLE_EQ(m->dims().w, 120e-9);
}

TEST(Elaborate, DiodeAndSwitchModels) {
  auto net = nl::compile_netlist(R"(models
.model dfast d is=1e-12 n=1.2
.model swlow sw ron=5 roff=1e8 vt=0.4 vw=0.01
V1 a 0 1
D1 a b dfast
R1 b 0 1k
S1 a c ctrl 0 swlow
Vc ctrl 0 1
R2 c 0 1k
)");
  const auto op = ss::dc_operating_point(*net.circuit);
  EXPECT_GT(op.voltage("b"), 0.1);
  EXPECT_GT(op.voltage("c"), 0.9);  // switch on
}

TEST(Elaborate, SemanticErrors) {
  EXPECT_THROW((void)nl::compile_netlist("t\nM1 d g s b nomodel\n"),
               softfet::ParseError);
  EXPECT_THROW((void)nl::compile_netlist("t\nX1 a b missing\n"),
               softfet::ParseError);
  EXPECT_THROW(
      (void)nl::compile_netlist(".subckt i a b\nR1 a b 1k\n.ends\nX1 a i\n"),
      softfet::ParseError);
  // First line is the title, so the bogus element sits on line 2.
  EXPECT_THROW((void)nl::compile_netlist("title\nQ1 a b c\n"),
               softfet::ParseError);
  EXPECT_THROW((void)nl::compile_netlist("t\nR1 a 0 {undefined_param}\n"),
               softfet::ParseError);
  // Wrong model type for the element.
  EXPECT_THROW(
      (void)nl::compile_netlist(".model m1 nmos\nP1 a 0 m1\n"),
      softfet::ParseError);
}

TEST(Elaborate, SubcktUnknownParamOverrideRejected) {
  EXPECT_THROW((void)nl::compile_netlist(R"(bad
.subckt inv in out
R1 in out 1k
.ends
X1 a b inv nosuch=1
)"),
               softfet::ParseError);
}
