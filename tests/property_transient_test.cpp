// Property-based transient-engine accuracy: for every (R, C) combination
// the simulated RC step response must match the closed form within
// tolerance, and basic conservation/passivity laws must hold.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "devices/capacitor.hpp"
#include "devices/inductor.hpp"
#include "devices/resistor.hpp"
#include "devices/sources.hpp"
#include "measure/metrics.hpp"
#include "measure/waveform.hpp"
#include "sim/analyses.hpp"

namespace sd = softfet::devices;
namespace ss = softfet::sim;
namespace sm = softfet::measure;
using softfet::measure::Waveform;

namespace {

using RcParam = std::tuple<double, double>;  // (R, C)

class RcStepProperty : public ::testing::TestWithParam<RcParam> {};

}  // namespace

TEST_P(RcStepProperty, MatchesClosedForm) {
  const auto [r, c_val] = GetParam();
  const double tau = r * c_val;
  ss::Circuit c;
  const auto in = c.node("in");
  const auto out = c.node("out");
  c.add<sd::VSource>("Vin", in, ss::kGroundNode,
                     sd::SourceSpec::pulse(0.0, 1.0, tau / 10.0, tau / 1e4,
                                           tau / 1e4, 1e6 * tau));
  c.add<sd::Resistor>("R1", in, out, r);
  c.add<sd::Capacitor>("C1", out, ss::kGroundNode, c_val);
  const auto result = ss::run_transient(c, 8.0 * tau);
  const Waveform v = Waveform::from_tran(result, "v(out)");
  const double t0 = tau / 10.0;
  for (const double multiple : {0.5, 1.0, 2.0, 4.0, 6.0}) {
    const double t = t0 + multiple * tau;
    const double expected = 1.0 - std::exp(-multiple);
    EXPECT_NEAR(v.value(t), expected, 8e-3)
        << "R=" << r << " C=" << c_val << " t/tau=" << multiple;
  }
}

TEST_P(RcStepProperty, ChargeDeliveredEqualsCV) {
  const auto [r, c_val] = GetParam();
  const double tau = r * c_val;
  ss::Circuit c;
  const auto in = c.node("in");
  const auto out = c.node("out");
  c.add<sd::VSource>("Vin", in, ss::kGroundNode,
                     sd::SourceSpec::pulse(0.0, 1.0, tau / 10.0, tau / 1e4,
                                           tau / 1e4, 1e6 * tau));
  c.add<sd::Resistor>("R1", in, out, r);
  c.add<sd::Capacitor>("C1", out, ss::kGroundNode, c_val);
  const auto result = ss::run_transient(c, 15.0 * tau);
  const Waveform i = Waveform::from_tran(result, "i(vin)");
  EXPECT_NEAR(-i.integral(), c_val * 1.0, 0.02 * c_val);
}

TEST_P(RcStepProperty, OutputNeverOvershoots) {
  const auto [r, c_val] = GetParam();
  const double tau = r * c_val;
  ss::Circuit c;
  const auto in = c.node("in");
  const auto out = c.node("out");
  c.add<sd::VSource>("Vin", in, ss::kGroundNode,
                     sd::SourceSpec::pulse(0.0, 1.0, tau / 10.0, tau / 1e4,
                                           tau / 1e4, 1e6 * tau));
  c.add<sd::Resistor>("R1", in, out, r);
  c.add<sd::Capacitor>("C1", out, ss::kGroundNode, c_val);
  const auto result = ss::run_transient(c, 8.0 * tau);
  const Waveform v = Waveform::from_tran(result, "v(out)");
  // First-order RC is passive and monotone: no overshoot, no undershoot.
  EXPECT_LE(v.max_value(), 1.0 + 1e-6);
  EXPECT_GE(v.min_value(), -1e-6);
}

// Time constants spanning twelve orders of magnitude exercise the adaptive
// step controller at every scale the paper's circuits use (ps gate edges to
// us PDN settling).
INSTANTIATE_TEST_SUITE_P(
    TimeConstants, RcStepProperty,
    ::testing::Values(RcParam{1e3, 1e-9},    // tau = 1 us
                      RcParam{1e3, 1e-12},   // 1 ns
                      RcParam{50.0, 2e-12},  // 100 ps
                      RcParam{500e3, 0.5e-15},  // 250 ps (Soft-FET gate)
                      RcParam{5e3, 0.5e-15},    // 2.5 ps (metallic gate)
                      RcParam{1e6, 1e-6},       // 1 s
                      RcParam{10.0, 1e-15}),    // 10 fs
    [](const ::testing::TestParamInfo<RcParam>& param_info) {
      const double tau = std::get<0>(param_info.param) * std::get<1>(param_info.param);
      const int exponent = static_cast<int>(std::round(std::log10(tau)));
      return "case" + std::to_string(param_info.index) + "_tau_1e" +
             std::string(exponent < 0 ? "m" : "p") +
             std::to_string(std::abs(exponent));
    });

namespace {
using RlcParam = std::tuple<double, double, double>;  // (R, L, C)
class RlcStepProperty : public ::testing::TestWithParam<RlcParam> {};
}  // namespace

TEST_P(RlcStepProperty, SettlesToDcAndRespectsDampingClass) {
  const auto [r, l, c_val] = GetParam();
  ss::Circuit c;
  const auto in = c.node("in");
  const auto mid = c.node("mid");
  const auto out = c.node("out");
  const double w0 = 1.0 / std::sqrt(l * c_val);
  const double t_char = 2.0 * M_PI / w0;
  c.add<sd::VSource>("Vin", in, ss::kGroundNode,
                     sd::SourceSpec::pulse(0.0, 1.0, t_char / 10.0,
                                           t_char / 1e4, t_char / 1e4, 1e9));
  c.add<sd::Resistor>("R1", in, mid, r);
  c.add<sd::Inductor>("L1", mid, out, l);
  c.add<sd::Capacitor>("C1", out, ss::kGroundNode, c_val);
  const double zeta = r / 2.0 * std::sqrt(c_val / l);
  // Underdamped rings decay with 1/(zeta*w0): give them 8 decay constants.
  const double tstop =
      (zeta < 1.0) ? std::max(40.0 * t_char, 8.0 / (zeta * w0))
                   : 40.0 * t_char * zeta;
  // High-Q rings need enough samples per period: trapezoidal integration
  // preserves oscillation amplitude when the step is a large fraction of
  // the period, so cap dtmax well below t_char.
  ss::SimOptions options;
  options.dtmax = t_char / 40.0;
  const auto result = ss::run_transient(c, tstop, options);
  const Waveform v = Waveform::from_tran(result, "v(out)");
  EXPECT_NEAR(v.value(tstop), 1.0, 2e-2) << "zeta=" << zeta;
  if (zeta >= 1.0) {
    EXPECT_LE(v.max_value(), 1.005);  // overdamped: no overshoot
  } else {
    const double overshoot =
        std::exp(-zeta * M_PI / std::sqrt(1.0 - zeta * zeta));
    EXPECT_NEAR(v.max_value(), 1.0 + overshoot, 0.05) << "zeta=" << zeta;
  }
}

INSTANTIATE_TEST_SUITE_P(
    DampingClasses, RlcStepProperty,
    ::testing::Values(RlcParam{10.0, 1e-6, 1e-9},     // zeta ~ 0.16
                      RlcParam{30.0, 1e-6, 1e-9},     // zeta ~ 0.47
                      RlcParam{63.2, 1e-6, 1e-9},     // zeta ~ 1 (critical)
                      RlcParam{300.0, 1e-6, 1e-9},    // overdamped
                      RlcParam{0.05, 0.5e-9, 100e-12}),  // PDN-like hi-Q
    [](const ::testing::TestParamInfo<RlcParam>& param_info) {
      const double zeta = std::get<0>(param_info.param) / 2.0 *
                          std::sqrt(std::get<2>(param_info.param) /
                                    std::get<1>(param_info.param));
      return "zeta_" + std::to_string(static_cast<int>(zeta * 100));
    });
