// Fault-injection harness for solver-robustness tests.
//
// FaultDevice is a circuit element that behaves as a harmless fixture until
// its scheduled window, then sabotages the solve in a controlled way:
//
//  - kNanResidual:  stamps NaN into its node's KCL residual,
//  - kNanJacobian:  stamps NaN into the Jacobian diagonal,
//  - kSingularRow:  claims a branch unknown and stamps nothing, producing a
//                   structurally zero (singular) matrix row,
//  - kEventStorm:   reports a discrete event every `storm_dt`, forcing the
//                   engine through a dense burst of step cuts.
//
// Hard faults — the process-isolation soak's ammunition. These do NOT
// throw; they take the whole process down (or hang it), which is exactly
// what a sandboxed worker must contain and a threaded server cannot:
//
//  - kCrashAbort:     calls std::abort() (SIGABRT),
//  - kCrashNullDeref: writes through a null pointer (SIGSEGV),
//  - kAllocBomb:      allocates and touches memory until the allocator
//                     gives out — run ONLY under an RLIMIT_AS sandbox,
//                     where it degrades to std::bad_alloc / OOM-kill of
//                     the worker instead of the host,
//  - kInfiniteLoop:   spins forever on a volatile counter (never yields,
//                     never checks the cancel token).
//
// `fault_budget` counts sabotaged solves (one Newton solve fails per
// injection, because non-finite stamps abort the very first iteration);
// after the budget is spent the device turns harmless again. That makes the
// recovery ladder deterministic to test: with recovery_escalate_after = 1,
// a budget of 1 is cured by the predictor-reset rung, 2 by the gmin ramp,
// 3 by the source ramp, and an unlimited budget (-1) proves the final
// diagnostics-carrying throw.
#pragma once

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <string>
#include <vector>

#include "sim/circuit.hpp"
#include "sim/device.hpp"
#include "util/strings.hpp"

namespace softfet::testing {

enum class FaultMode {
  kNanResidual,
  kNanJacobian,
  kSingularRow,
  kEventStorm,
  kCrashAbort,
  kCrashNullDeref,
  kAllocBomb,
  kInfiniteLoop,
};

namespace detail {

/// Out-of-line null write so the optimizer cannot prove UB and elide it.
/// Both qualifiers matter: the volatile *pointer* forces the read of p,
/// and the volatile *pointee* makes the store itself an observable access
/// (GCC at -O2 happily deletes a plain store through a just-read null
/// pointer — UB grants it that). → SIGSEGV.
[[gnu::noinline]] inline void null_deref() {
  volatile int* volatile p = nullptr;
  *p = 42;
}

/// Allocate-and-touch until the allocator fails. Touching every page
/// defeats overcommit: the address space (or physical memory) is genuinely
/// consumed, so under RLIMIT_AS this throws std::bad_alloc at the cap —
/// or, when nothing catches in time, ends in worker death by OOM. The
/// hoard is released before rethrowing so a worker that survives via the
/// exception path is not left wedged against its own rlimit.
[[gnu::noinline]] inline void alloc_bomb() {
  std::vector<char*> hoard;
  constexpr std::size_t kChunk = 16u << 20;
  try {
    for (;;) {
      char* chunk = new char[kChunk];
      for (std::size_t i = 0; i < kChunk; i += 4096) chunk[i] = 1;
      hoard.push_back(chunk);
    }
  } catch (...) {
    for (char* chunk : hoard) delete[] chunk;
    throw;
  }
}

[[gnu::noinline]] inline void infinite_loop() {
  volatile std::uint64_t spin = 0;
  for (;;) spin = spin + 1;
}

}  // namespace detail

class FaultDevice final : public sim::Device {
 public:
  /// Faults are armed for solves whose end-of-step time lies in
  /// [t_start, t_end]; `fault_budget` < 0 means unlimited. For kEventStorm,
  /// `storm_dt` is the event spacing inside the window.
  FaultDevice(std::string name, sim::NodeId node, FaultMode mode,
              double t_start, double t_end, int fault_budget = -1,
              double storm_dt = 1e-12)
      : Device(std::move(name)),
        node_(node),
        mode_(mode),
        t_start_(t_start),
        t_end_(t_end),
        fault_budget_(fault_budget),
        storm_dt_(storm_dt) {}

  void setup(sim::Circuit& circuit) override {
    unknown_ = circuit.node_unknown(node_);
    if (mode_ == FaultMode::kSingularRow) {
      branch_ = circuit.claim_branch_unknown("i(" + util::to_lower(name()) +
                                             ")");
    }
  }

  void load(const std::vector<double>& x, sim::Stamper& stamper,
            const sim::LoadContext& ctx) override {
    const bool armed = in_window(ctx.time) && budget_left();
    switch (mode_) {
      case FaultMode::kNanResidual:
        if (armed) {
          ++injected_;
          stamper.add_residual(unknown_,
                               std::numeric_limits<double>::quiet_NaN());
        }
        break;
      case FaultMode::kNanJacobian:
        if (armed) {
          ++injected_;
          stamper.add_jacobian(unknown_, unknown_,
                               std::numeric_limits<double>::quiet_NaN());
        }
        break;
      case FaultMode::kSingularRow:
        if (armed) {
          // Stamp nothing: the claimed branch row stays all-zero, so the
          // LU factorization hits a vanishing pivot at that column.
          ++injected_;
        } else {
          // Harmless self-consistent branch: i_branch = 0.
          stamper.add_residual(branch_, x[static_cast<std::size_t>(branch_)]);
          stamper.add_jacobian(branch_, branch_, 1.0);
        }
        break;
      case FaultMode::kEventStorm:
        break;  // sabotage happens via event_time, not stamps
      case FaultMode::kCrashAbort:
        if (armed) {
          ++injected_;
          std::abort();
        }
        break;
      case FaultMode::kCrashNullDeref:
        if (armed) {
          ++injected_;
          detail::null_deref();
        }
        break;
      case FaultMode::kAllocBomb:
        if (armed) {
          ++injected_;
          detail::alloc_bomb();
        }
        break;
      case FaultMode::kInfiniteLoop:
        if (armed) {
          ++injected_;
          detail::infinite_loop();
        }
        break;
    }
  }

  double event_time(const std::vector<double>& /*x*/, double t_start,
                    double t_end) const override {
    if (mode_ != FaultMode::kEventStorm) return sim::kNeverTime;
    if (t_end < t_start_ || t_start > t_end_) return sim::kNeverTime;
    // Boundary hits (next == t_end) count as events; interior hits force a
    // step cut. Either way the engine is driven at storm_dt resolution.
    const double next = t_start + storm_dt_;
    return next <= t_end ? next : sim::kNeverTime;
  }

  /// Solves actually sabotaged so far.
  [[nodiscard]] int injections() const noexcept { return injected_; }

 private:
  [[nodiscard]] bool in_window(double time) const noexcept {
    return time >= t_start_ && time <= t_end_;
  }
  [[nodiscard]] bool budget_left() const noexcept {
    return fault_budget_ < 0 || injected_ < fault_budget_;
  }

  sim::NodeId node_;
  FaultMode mode_;
  double t_start_;
  double t_end_;
  int fault_budget_;
  double storm_dt_;
  int unknown_ = sim::kGround;
  int branch_ = sim::kGround;
  int injected_ = 0;
};

}  // namespace softfet::testing
