#include <gtest/gtest.h>

#include "devices/resistor.hpp"
#include "devices/sources.hpp"
#include "sim/circuit.hpp"
#include "util/error.hpp"

namespace ss = softfet::sim;
namespace sd = softfet::devices;

TEST(Circuit, GroundAliases) {
  ss::Circuit c;
  EXPECT_EQ(c.node("0"), ss::kGroundNode);
  EXPECT_EQ(c.node("gnd"), ss::kGroundNode);
  EXPECT_EQ(c.node("GND"), ss::kGroundNode);
  EXPECT_EQ(c.node("ground"), ss::kGroundNode);
}

TEST(Circuit, NodesAreCaseInsensitiveAndStable) {
  ss::Circuit c;
  const auto a = c.node("VDD");
  const auto b = c.node("vdd");
  EXPECT_EQ(a, b);
  EXPECT_EQ(c.node_name(a), "vdd");
  EXPECT_EQ(c.node_count(), 2u);  // ground + vdd
}

TEST(Circuit, FindNodeThrowsOnUnknown) {
  ss::Circuit c;
  EXPECT_THROW((void)c.find_node("nope"), softfet::InvalidCircuitError);
  (void)c.node("a");
  EXPECT_EQ(c.find_node("A"), c.node("a"));
  EXPECT_TRUE(c.has_node("a"));
  EXPECT_FALSE(c.has_node("b"));
}

TEST(Circuit, UnknownLayoutNodesThenBranches) {
  ss::Circuit c;
  const auto vdd = c.node("vdd");
  const auto out = c.node("out");
  c.add<sd::Resistor>("R1", vdd, out, 1e3);
  c.add<sd::VSource>("Vdd", vdd, ss::kGroundNode,
                     sd::SourceSpec::dc(1.0));
  c.prepare();
  // 2 node unknowns + 1 branch current.
  EXPECT_EQ(c.unknown_count(), 3u);
  const auto& labels = c.unknown_labels();
  ASSERT_EQ(labels.size(), 3u);
  EXPECT_EQ(labels[0], "v(vdd)");
  EXPECT_EQ(labels[1], "v(out)");
  EXPECT_EQ(labels[2], "i(vdd)");
  EXPECT_TRUE(c.unknown_is_voltage(0));
  EXPECT_FALSE(c.unknown_is_voltage(2));
}

TEST(Circuit, FindDeviceCaseInsensitive) {
  ss::Circuit c;
  c.add<sd::Resistor>("Rload", c.node("a"), ss::kGroundNode, 50.0);
  EXPECT_NE(c.find_device("rload"), nullptr);
  EXPECT_EQ(c.find_device("nothere"), nullptr);
}

TEST(Circuit, PrepareIsIdempotent) {
  ss::Circuit c;
  c.add<sd::VSource>("V1", c.node("a"), ss::kGroundNode,
                     sd::SourceSpec::dc(1.0));
  c.prepare();
  const auto n = c.unknown_count();
  c.prepare();
  EXPECT_EQ(c.unknown_count(), n);
}

TEST(Circuit, InvalidDeviceParamsThrow) {
  ss::Circuit c;
  EXPECT_THROW(
      c.add<sd::Resistor>("R1", c.node("a"), ss::kGroundNode, -5.0),
      softfet::InvalidCircuitError);
  EXPECT_THROW(c.add<sd::Resistor>("R2", c.node("a"), ss::kGroundNode, 0.0),
               softfet::InvalidCircuitError);
}
