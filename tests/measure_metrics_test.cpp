#include <gtest/gtest.h>

#include <cmath>

#include "measure/metrics.hpp"
#include "util/error.hpp"

namespace sm = softfet::measure;
using sm::CrossDirection;
using sm::Waveform;

namespace {

/// Linear edge from v0 to v1 between t0 and t1, held outside.
Waveform edge(double v0, double v1, double t0, double t1) {
  return Waveform({0.0, t0, t1, t1 + 1.0}, {v0, v0, v1, v1});
}

}  // namespace

TEST(Metrics, PeakCurrentIsMagnitude) {
  const Waveform i({0.0, 1.0, 2.0}, {0.0, -3e-3, 1e-3});
  EXPECT_DOUBLE_EQ(sm::peak_current(i), 3e-3);
}

TEST(Metrics, MaxDidt) {
  const Waveform i({0.0, 1e-9, 2e-9}, {0.0, 1e-3, 1e-3});
  EXPECT_NEAR(sm::max_didt(i), 1e6, 1.0);
}

TEST(Metrics, PropagationDelayRisingOutput) {
  // Inverter: input falls 1->0 over [10, 20] ns; output rises 0->1 over
  // [18, 38] ns. Input 50% at 15ns; output 80% at 18 + 0.8*20 = 34 ns.
  const auto in = edge(1.0, 0.0, 10e-9, 20e-9);
  const auto out = edge(0.0, 1.0, 18e-9, 38e-9);
  const double d = sm::propagation_delay(in, out, 0.0, 1.0, true);
  EXPECT_NEAR(d, 34e-9 - 15e-9, 1e-12);
}

TEST(Metrics, PropagationDelayFallingOutput) {
  // Input rises, output falls; 20% level at 0.2.
  const auto in = edge(0.0, 1.0, 10e-9, 20e-9);
  const auto out = edge(1.0, 0.0, 18e-9, 38e-9);
  const double d = sm::propagation_delay(in, out, 0.0, 1.0, false);
  // Output falls to 0.2 at 18 + 0.8*20 = 34 ns.
  EXPECT_NEAR(d, 34e-9 - 15e-9, 1e-12);
}

TEST(Metrics, TransitionTime2080) {
  const auto rising = edge(0.0, 1.0, 0.0, 10e-9);
  EXPECT_NEAR(sm::transition_time(rising, 0.0, 1.0, true), 6e-9, 1e-12);
  const auto falling = edge(1.0, 0.0, 0.0, 10e-9);
  EXPECT_NEAR(sm::transition_time(falling, 0.0, 1.0, false), 6e-9, 1e-12);
}

TEST(Metrics, ChargeIntegralOfRectangle) {
  const Waveform i({0.0, 1e-9, 1e-9, 2e-9, 2e-9, 3e-9},
                   {0.0, 0.0, 2e-3, 2e-3, 0.0, 0.0});
  EXPECT_NEAR(sm::charge(i, 0.0, 3e-9), 2e-12, 1e-18);
  EXPECT_NEAR(sm::charge(i, 1e-9, 2e-9), 2e-12, 1e-18);
}

TEST(Metrics, DroopAndBounce) {
  const Waveform rail({0.0, 1.0, 2.0, 3.0}, {1.0, 0.93, 1.04, 1.0});
  EXPECT_NEAR(sm::worst_droop(rail, 1.0), 0.07, 1e-12);
  EXPECT_NEAR(sm::worst_bounce(rail, 1.0), 0.07, 1e-12);
  const Waveform calm({0.0, 1.0}, {1.0, 1.0});
  EXPECT_DOUBLE_EQ(sm::worst_droop(calm, 1.0), 0.0);
}

TEST(Metrics, EnergyOfConstantPower) {
  const Waveform v({0.0, 1.0}, {2.0, 2.0});
  const Waveform i({0.0, 1.0}, {3.0, 3.0});
  EXPECT_NEAR(sm::energy(v, i), 6.0, 1e-12);
}

TEST(Metrics, EnergyUsesOverlapOnly) {
  const Waveform v({0.0, 2.0}, {1.0, 1.0});
  const Waveform i({1.0, 3.0}, {1.0, 1.0});
  EXPECT_NEAR(sm::energy(v, i), 1.0, 1e-12);  // overlap [1,2]
}
