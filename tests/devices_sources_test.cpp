#include <gtest/gtest.h>

#include "devices/sources.hpp"
#include "sim/device.hpp"
#include "util/error.hpp"

namespace sd = softfet::devices;
using sd::SourceSpec;

TEST(SourceSpec, DcConstant) {
  const auto s = SourceSpec::dc(1.5);
  EXPECT_DOUBLE_EQ(s.value(0.0), 1.5);
  EXPECT_DOUBLE_EQ(s.value(1.0), 1.5);
  EXPECT_EQ(s.next_breakpoint(0.0), softfet::sim::kNeverTime);
}

TEST(SourceSpec, PulseShape) {
  // 0->1V, delay 1n, rise 2n, width 3n, fall 2n.
  const auto s = SourceSpec::pulse(0.0, 1.0, 1e-9, 2e-9, 2e-9, 3e-9, 0.0);
  EXPECT_DOUBLE_EQ(s.value(0.0), 0.0);
  EXPECT_DOUBLE_EQ(s.value(1e-9), 0.0);
  EXPECT_DOUBLE_EQ(s.value(2e-9), 0.5);   // mid-rise
  EXPECT_DOUBLE_EQ(s.value(3e-9), 1.0);   // top
  EXPECT_DOUBLE_EQ(s.value(5e-9), 1.0);   // still high
  EXPECT_DOUBLE_EQ(s.value(7e-9), 0.5);   // mid-fall
  EXPECT_DOUBLE_EQ(s.value(9e-9), 0.0);   // back low
}

TEST(SourceSpec, PulsePeriodicRepeats) {
  const auto s = SourceSpec::pulse(0.0, 1.0, 0.0, 1e-9, 1e-9, 1e-9, 10e-9);
  EXPECT_DOUBLE_EQ(s.value(0.5e-9), 0.5);
  EXPECT_NEAR(s.value(10.5e-9), 0.5, 1e-9);  // next period
  EXPECT_DOUBLE_EQ(s.value(25e-9), 0.0);    // between pulses? t_rel=5n: after fall
}

TEST(SourceSpec, PulseBreakpoints) {
  const auto s = SourceSpec::pulse(0.0, 1.0, 1e-9, 2e-9, 2e-9, 3e-9, 0.0);
  EXPECT_DOUBLE_EQ(s.next_breakpoint(0.0), 1e-9);
  EXPECT_DOUBLE_EQ(s.next_breakpoint(1e-9), 3e-9);
  EXPECT_DOUBLE_EQ(s.next_breakpoint(3e-9), 6e-9);
  EXPECT_DOUBLE_EQ(s.next_breakpoint(6e-9), 8e-9);
  EXPECT_EQ(s.next_breakpoint(8e-9), softfet::sim::kNeverTime);
}

TEST(SourceSpec, PeriodicPulseBreakpointsRepeat) {
  const auto s = SourceSpec::pulse(0.0, 1.0, 0.0, 1e-9, 1e-9, 1e-9, 10e-9);
  // Inside period 1 the next corner after 3n is the next-period start (10n).
  EXPECT_DOUBLE_EQ(s.next_breakpoint(3e-9), 10e-9);
  EXPECT_DOUBLE_EQ(s.next_breakpoint(10e-9), 11e-9);
}

TEST(SourceSpec, PwlAndRamp) {
  const auto s = SourceSpec::ramp(1.0, 0.0, 100e-12, 30e-12);
  EXPECT_DOUBLE_EQ(s.value(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.value(100e-12), 1.0);
  EXPECT_DOUBLE_EQ(s.value(115e-12), 0.5);
  EXPECT_NEAR(s.value(130e-12), 0.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.value(1.0), 0.0);
  EXPECT_DOUBLE_EQ(s.next_breakpoint(0.0), 100e-12);
  EXPECT_DOUBLE_EQ(s.next_breakpoint(100e-12), 130e-12);
}

TEST(SourceSpec, Sine) {
  const auto s = SourceSpec::sine(0.5, 0.5, 1e9);
  EXPECT_DOUBLE_EQ(s.value(0.0), 0.5);
  EXPECT_NEAR(s.value(0.25e-9), 1.0, 1e-12);
  EXPECT_NEAR(s.value(0.75e-9), 0.0, 1e-12);
}

TEST(SourceSpec, SetDcValueOverrides) {
  auto s = SourceSpec::pulse(0.0, 1.0, 0.0, 1e-9, 1e-9, 1e-9, 0.0);
  s.set_dc_value(0.7);
  EXPECT_TRUE(s.is_dc());
  EXPECT_DOUBLE_EQ(s.value(0.5e-9), 0.7);
}

TEST(SourceSpec, NegativeTimingThrows) {
  EXPECT_THROW(SourceSpec::pulse(0.0, 1.0, 0.0, -1e-9, 0.0, 0.0),
               softfet::InvalidCircuitError);
}
