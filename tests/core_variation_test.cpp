// PTM sensitivity and Monte-Carlo variability analysis.
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <string>

#include "core/variation.hpp"
#include "devices/ptm.hpp"
#include "fault_injection.hpp"
#include "util/error.hpp"

namespace sc = softfet::core;
namespace sd = softfet::devices;

namespace {
softfet::cells::InverterTestbenchSpec soft_base() {
  softfet::cells::InverterTestbenchSpec spec;
  spec.input_transition = 30e-12;
  spec.input_rising = false;
  spec.dut.ptm = sd::PtmParams{};
  return spec;
}

/// Sabotages samples 2 and 5 with an unrecoverable NaN source on the
/// inverter output, armed from 150 ps onward.
void poison_samples_2_and_5(std::size_t k,
                            softfet::cells::InverterTestbenchSpec& spec) {
  if (k != 2 && k != 5) return;
  spec.instrument = [](softfet::sim::Circuit& c) {
    c.add<softfet::testing::FaultDevice>(
        "FLT1", c.node("out"), softfet::testing::FaultMode::kNanResidual,
        150e-12, 1.0, /*fault_budget=*/-1);
  };
}
}  // namespace

TEST(Sensitivity, RequiresSoftFetAndSaneDelta) {
  softfet::cells::InverterTestbenchSpec plain;
  EXPECT_THROW((void)sc::ptm_sensitivity(plain), softfet::Error);
  EXPECT_THROW((void)sc::ptm_sensitivity(soft_base(), 0.0), softfet::Error);
  EXPECT_THROW((void)sc::ptm_sensitivity(soft_base(), 0.6), softfet::Error);
}

TEST(Sensitivity, CoversAllFiveParameters) {
  const auto rows = sc::ptm_sensitivity(soft_base(), 0.05);
  ASSERT_EQ(rows.size(), 5u);
  EXPECT_EQ(rows[0].parameter, "r_ins");
  EXPECT_EQ(rows[2].parameter, "v_imt");
  EXPECT_EQ(rows[4].parameter, "t_ptm");
  for (const auto& row : rows) {
    EXPECT_GT(row.nominal, 0.0);
    EXPECT_TRUE(std::isfinite(row.imax_sensitivity));
    EXPECT_TRUE(std::isfinite(row.didt_sensitivity));
    EXPECT_TRUE(std::isfinite(row.delay_sensitivity));
  }
}

TEST(Sensitivity, ThresholdsMatterMoreThanNothing) {
  // The design-space study showed V_MIT moves I_MAX strongly; its
  // sensitivity must be clearly nonzero.
  const auto rows = sc::ptm_sensitivity(soft_base(), 0.10);
  double v_mit_sens = 0.0;
  for (const auto& row : rows) {
    if (row.parameter == "v_mit") v_mit_sens = std::fabs(row.imax_sensitivity);
  }
  EXPECT_GT(v_mit_sens, 0.05);
}

TEST(MonteCarlo, StatisticsAreSane) {
  sc::MonteCarloSpec mc;
  mc.samples = 24;  // keep the test quick
  const auto stats = sc::ptm_monte_carlo(soft_base(), mc);
  EXPECT_EQ(stats.samples, 24);
  EXPECT_GT(stats.imax_mean, 20e-6);
  EXPECT_LT(stats.imax_mean, 200e-6);
  EXPECT_GT(stats.imax_std, 0.0);
  EXPECT_GE(stats.imax_worst, stats.imax_mean);
  EXPECT_GT(stats.delay_mean, 0.0);
  EXPECT_GE(stats.fraction_below_baseline, 0.0);
  EXPECT_LE(stats.fraction_below_baseline, 1.0);
}

TEST(MonteCarlo, Reproducible) {
  sc::MonteCarloSpec mc;
  mc.samples = 8;
  mc.seed = 42;
  const auto a = sc::ptm_monte_carlo(soft_base(), mc);
  const auto b = sc::ptm_monte_carlo(soft_base(), mc);
  EXPECT_DOUBLE_EQ(a.imax_mean, b.imax_mean);
  EXPECT_DOUBLE_EQ(a.delay_std, b.delay_std);
}

TEST(MonteCarlo, DeterministicAcrossThreadCounts) {
  // Per-sample RNG streams + serial index-ordered reductions: the parallel
  // run must reproduce the serial run bit for bit, whatever the pool size.
  sc::MonteCarloSpec mc;
  mc.samples = 10;
  mc.seed = 7;
  mc.threads = 1;
  const auto serial = sc::ptm_monte_carlo(soft_base(), mc);
  for (const int threads : {2, 3, 5}) {
    mc.threads = threads;
    const auto parallel = sc::ptm_monte_carlo(soft_base(), mc);
    EXPECT_DOUBLE_EQ(parallel.imax_mean, serial.imax_mean) << threads;
    EXPECT_DOUBLE_EQ(parallel.imax_std, serial.imax_std) << threads;
    EXPECT_DOUBLE_EQ(parallel.imax_worst, serial.imax_worst) << threads;
    EXPECT_DOUBLE_EQ(parallel.delay_mean, serial.delay_mean) << threads;
    EXPECT_DOUBLE_EQ(parallel.delay_std, serial.delay_std) << threads;
    EXPECT_DOUBLE_EQ(parallel.fraction_below_baseline,
                     serial.fraction_below_baseline)
        << threads;
  }
}

TEST(MonteCarlo, SurfacesImpossibleDrawSpreads) {
  // A card whose V_MIT is negative can never produce a valid draw: every
  // retry fails. The loop used to silently proceed with the last (invalid)
  // draw; it must now raise a descriptive error instead.
  auto spec = soft_base();
  spec.dut.ptm->v_mit = -0.1;
  sc::MonteCarloSpec mc;
  mc.samples = 4;
  mc.threads = 1;
  try {
    (void)sc::ptm_monte_carlo(spec, mc);
    FAIL() << "expected ptm_monte_carlo to reject the impossible card";
  } catch (const softfet::Error& e) {
    EXPECT_NE(std::string(e.what()).find("no valid PTM parameter draw"),
              std::string::npos)
        << e.what();
  }
}

TEST(MonteCarlo, InjectedFaultsAreIsolatedWithDiagnostics) {
  // Two of eight samples carry an unrecoverable fault: the run must still
  // complete, report both failures with full solver diagnostics (after a
  // tightened-options retry), and compute statistics over the survivors.
  sc::MonteCarloSpec mc;
  mc.samples = 8;
  mc.seed = 11;
  mc.threads = 2;
  mc.per_sample_hook = poison_samples_2_and_5;
  const auto stats = sc::ptm_monte_carlo(soft_base(), mc);
  EXPECT_EQ(stats.samples, 8);
  EXPECT_EQ(stats.failed_samples, 2);
  ASSERT_EQ(stats.failures.size(), 2u);
  EXPECT_EQ(stats.failures[0].index, 2u);
  EXPECT_EQ(stats.failures[1].index, 5u);
  for (const auto& f : stats.failures) {
    EXPECT_TRUE(f.retried);  // tightened options were given their chance
    EXPECT_NE(f.context.find("sample"), std::string::npos);
    const auto& d = f.diagnostics;
    EXPECT_EQ(d.analysis, "transient");
    EXPECT_EQ(d.worst_device, "FLT1");
    EXPECT_GT(d.time, 0.0);
    EXPECT_FALSE(d.attempts.empty());
  }
  // Survivor statistics stay sane.
  EXPECT_GT(stats.imax_mean, 20e-6);
  EXPECT_GT(stats.imax_std, 0.0);
}

TEST(MonteCarlo, FaultyRunIsDeterministicAcrossThreadCounts) {
  // Failure isolation must not break bitwise reproducibility: survivors'
  // statistics AND the failure reports must match for any pool size.
  sc::MonteCarloSpec mc;
  mc.samples = 8;
  mc.seed = 11;
  mc.threads = 1;
  mc.per_sample_hook = poison_samples_2_and_5;
  const auto serial = sc::ptm_monte_carlo(soft_base(), mc);
  ASSERT_EQ(serial.failures.size(), 2u);
  for (const int threads : {2, 3}) {
    mc.threads = threads;
    const auto parallel = sc::ptm_monte_carlo(soft_base(), mc);
    EXPECT_DOUBLE_EQ(parallel.imax_mean, serial.imax_mean) << threads;
    EXPECT_DOUBLE_EQ(parallel.imax_std, serial.imax_std) << threads;
    EXPECT_DOUBLE_EQ(parallel.delay_mean, serial.delay_mean) << threads;
    EXPECT_DOUBLE_EQ(parallel.fraction_below_baseline,
                     serial.fraction_below_baseline)
        << threads;
    ASSERT_EQ(parallel.failures.size(), serial.failures.size()) << threads;
    for (std::size_t i = 0; i < serial.failures.size(); ++i) {
      EXPECT_EQ(parallel.failures[i].index, serial.failures[i].index);
      EXPECT_EQ(parallel.failures[i].message, serial.failures[i].message);
    }
  }
}

TEST(MonteCarlo, MostSamplesKeepTheBenefit) {
  sc::MonteCarloSpec mc;
  mc.samples = 32;
  const auto stats = sc::ptm_monte_carlo(soft_base(), mc);
  // With 5-15% spreads the Soft-FET advantage should survive in nearly all
  // samples (the paper's benefit is not knife-edge).
  EXPECT_GT(stats.fraction_below_baseline, 0.85);
}

TEST(MonteCarlo, RejectsTinySampleCount) {
  sc::MonteCarloSpec mc;
  mc.samples = 1;
  EXPECT_THROW((void)sc::ptm_monte_carlo(soft_base(), mc), softfet::Error);
}
