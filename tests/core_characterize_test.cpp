// Transition characterization: the measurement layer all figure benches use.
#include <gtest/gtest.h>

#include "core/characterize.hpp"
#include "devices/tech40.hpp"

namespace sc = softfet::cells;
namespace sd = softfet::devices;
namespace t40 = softfet::devices::tech40;
using softfet::core::TransitionMetrics;
using softfet::core::characterize_inverter;

namespace {
sc::InverterTestbenchSpec baseline_spec() {
  sc::InverterTestbenchSpec spec;
  spec.input_transition = 30e-12;
  spec.input_rising = false;
  return spec;
}
}  // namespace

TEST(Characterize, BaselineMetricsSane) {
  const TransitionMetrics m = characterize_inverter(baseline_spec());
  EXPECT_GT(m.i_max, 50e-6);
  EXPECT_LT(m.i_max, 500e-6);
  EXPECT_GT(m.delay, 5e-12);
  EXPECT_LT(m.delay, 200e-12);
  EXPECT_GT(m.max_didt, 0.0);
  EXPECT_EQ(m.imt_count, 0);
  // Output charge ~ C_load * VCC: FO4 load is a few fF.
  EXPECT_GT(m.q_output, 1e-15);
  EXPECT_LT(m.q_output, 20e-15);
  EXPECT_GT(m.energy, 0.0);
}

TEST(Characterize, SoftFetReducesImaxAndDidt) {
  auto spec = baseline_spec();
  const TransitionMetrics base = characterize_inverter(spec);
  spec.dut.ptm = sd::PtmParams{};
  const TransitionMetrics soft = characterize_inverter(spec);
  EXPECT_LT(soft.i_max, 0.7 * base.i_max);   // paper: significant reduction
  EXPECT_LT(soft.max_didt, 0.8 * base.max_didt);
  EXPECT_GT(soft.delay, base.delay);         // the cost: delay penalty
  EXPECT_GE(soft.imt_count, 1);
  EXPECT_GE(soft.mit_count, 1);
}

TEST(Characterize, RisingInputMirrorsFalling) {
  auto spec = baseline_spec();
  spec.input_rising = true;
  const TransitionMetrics m = characterize_inverter(spec);
  EXPECT_GT(m.delay, 0.0);
  // For a falling output, the NMOS discharges the load: q_output positive.
  EXPECT_GT(m.q_output, 1e-16);
}

TEST(Characterize, OutputChargeMatchesLoad) {
  // q_output ~ (C_load + parasitics) * VCC; check against the known FO4
  // load input capacitance within a loose band.
  auto spec = baseline_spec();
  const TransitionMetrics m = characterize_inverter(spec);
  softfet::sim::Circuit probe;
  auto* nm = probe.add<sd::Mosfet>("n", probe.node("d"), probe.node("g"),
                                   softfet::sim::kGroundNode,
                                   softfet::sim::kGroundNode, t40::nmos(),
                                   t40::min_nmos_dims());
  auto* pm = probe.add<sd::Mosfet>("p", probe.node("d"), probe.node("g"),
                                   softfet::sim::kGroundNode,
                                   softfet::sim::kGroundNode, t40::pmos(),
                                   t40::min_pmos_dims());
  const double c_fo4 =
      4.0 * (nm->gate_capacitance() + pm->gate_capacitance());
  EXPECT_GT(m.q_output, 0.7 * c_fo4 * spec.vcc);
  EXPECT_LT(m.q_output, 3.0 * c_fo4 * spec.vcc);
}

TEST(Characterize, SlowVariantGetsStretchedWindow) {
  // A huge series resistance makes the transition far slower than the
  // default stop-time heuristic; the retry loop must still complete it.
  auto spec = baseline_spec();
  spec.dut.gate_series_r = 2e6;
  const TransitionMetrics m = characterize_inverter(spec);
  EXPECT_GT(m.delay, 100e-12);  // very slow
  EXPECT_GT(m.q_output, 1e-15);  // but the transition completed
}

TEST(Characterize, LowVccStillMeasures) {
  auto spec = baseline_spec();
  spec.vcc = 0.5;
  spec.dut.nmos_model = t40::nmos(t40::kVtHvt);
  spec.dut.pmos_model = t40::pmos(t40::kVtHvt);
  const TransitionMetrics m = characterize_inverter(spec);
  // HVT at half VCC: decades slower than nominal but still measurable.
  EXPECT_GT(m.delay, 1e-9);
}

TEST(Characterize, EnergyScalesWithVccSquaredRoughly) {
  auto spec = baseline_spec();
  const TransitionMetrics at_1v = characterize_inverter(spec);
  spec.vcc = 0.8;
  const TransitionMetrics at_08 = characterize_inverter(spec);
  const double ratio = at_08.energy / at_1v.energy;
  EXPECT_GT(ratio, 0.4);
  EXPECT_LT(ratio, 0.9);  // ~0.64 expected from CV^2
}
