#include "util/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/budget.hpp"

namespace su = softfet::util;

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  constexpr std::size_t kCount = 1000;
  std::vector<std::atomic<int>> hits(kCount);
  su::parallel_for(kCount, [&](std::size_t i) { ++hits[i]; }, 4);
  for (std::size_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelFor, ZeroCountIsNoop) {
  bool called = false;
  su::parallel_for(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelFor, SerialAndParallelProduceSameResults) {
  constexpr std::size_t kCount = 257;
  const auto fill = [&](std::size_t threads) {
    std::vector<double> out(kCount);
    su::parallel_for(
        kCount, [&](std::size_t i) { out[i] = static_cast<double>(i) * 1.5; },
        threads);
    return out;
  };
  const auto serial = fill(1);
  for (const std::size_t threads : {2u, 3u, 8u}) {
    EXPECT_EQ(fill(threads), serial) << threads << " threads";
  }
}

TEST(ParallelFor, PropagatesException) {
  EXPECT_THROW(
      su::parallel_for(
          100,
          [&](std::size_t i) {
            if (i == 37) throw std::runtime_error("boom");
          },
          4),
      std::runtime_error);
}

TEST(ParallelFor, NestedCallsRunSerially) {
  std::vector<std::atomic<int>> hits(64);
  su::parallel_for(
      8,
      [&](std::size_t outer) {
        su::parallel_for(
            8, [&](std::size_t inner) { ++hits[outer * 8 + inner]; }, 4);
      },
      4);
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "slot " << i;
  }
}

TEST(ParallelFor, FastFailStopsClaimingNewWork) {
  // After the first body throws, no worker may start a fresh index: a batch
  // of expensive simulations must not keep burning CPU behind a failure.
  constexpr std::size_t kCount = 64;
  std::atomic<int> executed{0};
  EXPECT_THROW(
      su::parallel_for(
          kCount,
          [&](std::size_t i) {
            if (i == 0) throw std::runtime_error("boom");
            ++executed;
            std::this_thread::sleep_for(std::chrono::milliseconds(2));
          },
          4),
      std::runtime_error);
  // Only the bodies already in flight when index 0 threw may have run.
  EXPECT_LT(executed.load(), static_cast<int>(kCount));
}

TEST(ParallelFor, PreTrippedCancelRunsNothing) {
  su::CancelToken token;
  token.request();
  std::atomic<int> executed{0};
  // Cancellation is cooperative, not an error: returns normally.
  su::parallel_for(1000, [&](std::size_t) { ++executed; }, 4, &token);
  EXPECT_EQ(executed.load(), 0);
  executed = 0;
  su::parallel_for(1000, [&](std::size_t) { ++executed; }, 1, &token);
  EXPECT_EQ(executed.load(), 0);
}

TEST(ParallelFor, MidRunCancelStopsSerialLoopImmediately) {
  su::CancelToken token;
  std::atomic<int> executed{0};
  su::parallel_for(
      100,
      [&](std::size_t i) {
        ++executed;
        if (i == 9) token.request();
      },
      1, &token);
  // Serial path checks the token before every index: 0..9 ran, 10+ did not.
  EXPECT_EQ(executed.load(), 10);
}

TEST(ParallelFor, MidRunCancelStopsWorkersClaiming) {
  su::CancelToken token;
  std::atomic<int> executed{0};
  su::parallel_for(
      10000,
      [&](std::size_t) {
        if (++executed == 8) token.request();
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      },
      4, &token);
  EXPECT_LT(executed.load(), 10000);
}

TEST(HardwareThreads, IsAtLeastOne) {
  EXPECT_GE(su::hardware_threads(), 1u);
}
