#include "util/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace su = softfet::util;

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  constexpr std::size_t kCount = 1000;
  std::vector<std::atomic<int>> hits(kCount);
  su::parallel_for(kCount, [&](std::size_t i) { ++hits[i]; }, 4);
  for (std::size_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelFor, ZeroCountIsNoop) {
  bool called = false;
  su::parallel_for(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelFor, SerialAndParallelProduceSameResults) {
  constexpr std::size_t kCount = 257;
  const auto fill = [&](std::size_t threads) {
    std::vector<double> out(kCount);
    su::parallel_for(
        kCount, [&](std::size_t i) { out[i] = static_cast<double>(i) * 1.5; },
        threads);
    return out;
  };
  const auto serial = fill(1);
  for (const std::size_t threads : {2u, 3u, 8u}) {
    EXPECT_EQ(fill(threads), serial) << threads << " threads";
  }
}

TEST(ParallelFor, PropagatesException) {
  EXPECT_THROW(
      su::parallel_for(
          100,
          [&](std::size_t i) {
            if (i == 37) throw std::runtime_error("boom");
          },
          4),
      std::runtime_error);
}

TEST(ParallelFor, NestedCallsRunSerially) {
  std::vector<std::atomic<int>> hits(64);
  su::parallel_for(
      8,
      [&](std::size_t outer) {
        su::parallel_for(
            8, [&](std::size_t inner) { ++hits[outer * 8 + inner]; }, 4);
      },
      4);
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "slot " << i;
  }
}

TEST(HardwareThreads, IsAtLeastOne) {
  EXPECT_GE(su::hardware_threads(), 1u);
}
