// AMD fill-reducing ordering: permutation validity, fill prediction, the
// fill win on mesh patterns, and solve correctness under reordering —
// including bitwise identity of the kAuto default below the size threshold.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <random>
#include <vector>

#include "numeric/ordering.hpp"
#include "numeric/sparse_lu.hpp"
#include "numeric/sparse_matrix.hpp"
#include "util/error.hpp"

namespace sn = softfet::numeric;

namespace {

/// Rail mesh with one decap leaf per tile, rails numbered before leaves —
/// the stamp order make_pdn_grid produces and the pattern where natural
/// order fills the whole band.
sn::SparseMatrix grid_system(std::size_t side) {
  const std::size_t tiles = side * side;
  sn::SparseMatrix a(2 * tiles);
  const auto id = [side](std::size_t r, std::size_t c) {
    return r * side + c;
  };
  for (std::size_t r = 0; r < side; ++r) {
    for (std::size_t c = 0; c < side; ++c) {
      double diag = 1e-3;
      if (c + 1 < side) {
        a.add(id(r, c), id(r, c + 1), -1.0);
        a.add(id(r, c + 1), id(r, c), -1.0);
        diag += 1.0;
      }
      if (c > 0) diag += 1.0;
      if (r + 1 < side) {
        a.add(id(r, c), id(r + 1, c), -1.0);
        a.add(id(r + 1, c), id(r, c), -1.0);
        diag += 1.0;
      }
      if (r > 0) diag += 1.0;
      const std::size_t leaf = tiles + id(r, c);
      a.add(id(r, c), leaf, -0.5);
      a.add(leaf, id(r, c), -0.5);
      a.add(leaf, leaf, 0.5 + 1e-3);
      diag += 0.5;
      a.add(id(r, c), id(r, c), diag);
    }
  }
  return a;
}

sn::SparseMatrix random_system(std::size_t n, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  std::uniform_int_distribution<std::size_t> pick(0, n - 1);
  sn::SparseMatrix a(n);
  for (std::size_t k = 0; k < 5 * n; ++k) {
    a.add(pick(rng), pick(rng), dist(rng));
  }
  for (std::size_t i = 0; i < n; ++i) a.add(i, i, 6.0);
  return a;
}

std::vector<double> multiply(const sn::SparseMatrix& a,
                             const std::vector<double>& x) {
  std::vector<double> y(a.size(), 0.0);
  for (std::size_t i = 0; i < a.size(); ++i) {
    for (const auto& [j, v] : a.row(i)) y[i] += v * x[j];
  }
  return y;
}

}  // namespace

TEST(AmdOrder, IsAPermutation) {
  const auto a = grid_system(8);
  const auto order = sn::amd_order(a);
  ASSERT_EQ(order.size(), a.size());
  std::vector<bool> seen(a.size(), false);
  for (const std::size_t v : order) {
    ASSERT_LT(v, a.size());
    EXPECT_FALSE(seen[v]) << "duplicate index " << v;
    seen[v] = true;
  }
}

TEST(AmdOrder, Deterministic) {
  const auto a = random_system(120, 7);
  EXPECT_EQ(sn::amd_order(a), sn::amd_order(a));
}

TEST(AmdOrder, HandlesDiagonalMatrix) {
  sn::SparseMatrix a(5);
  for (std::size_t i = 0; i < 5; ++i) a.add(i, i, 2.0);
  const auto order = sn::amd_order(a);
  ASSERT_EQ(order.size(), 5u);
  // Fully disconnected: degree ties all the way, so lowest-index wins.
  for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(order[i], i);
}

TEST(SymbolicFill, MatchesDenseOnFullMatrix) {
  // A dense 6x6 pattern fills nothing beyond itself: nnz(L+U) = 36.
  sn::SparseMatrix a(6);
  for (std::size_t i = 0; i < 6; ++i) {
    for (std::size_t j = 0; j < 6; ++j) a.add(i, j, 1.0 + (i == j ? 6.0 : 0.0));
  }
  const auto adjacency = sn::pattern_adjacency(a);
  EXPECT_EQ(sn::symbolic_fill_natural(adjacency), 36u);
}

TEST(SymbolicFill, TridiagonalHasNoFill) {
  sn::SparseMatrix a(50);
  for (std::size_t i = 0; i < 50; ++i) {
    a.add(i, i, 4.0);
    if (i + 1 < 50) {
      a.add(i, i + 1, -1.0);
      a.add(i + 1, i, -1.0);
    }
  }
  const auto adjacency = sn::pattern_adjacency(a);
  EXPECT_EQ(sn::symbolic_fill_natural(adjacency), 50u + 2 * 49u);
}

TEST(SymbolicFill, PredictsActualFactorFill) {
  // For a symmetric-pattern matrix factored without pivot departures the
  // symbolic count must equal the structure the factorization builds.
  const auto a = grid_system(6);
  const auto adjacency = sn::pattern_adjacency(a);
  sn::SparseLu lu;
  lu.set_ordering(sn::OrderingKind::kNatural);
  lu.factor(a);
  EXPECT_EQ(sn::symbolic_fill_natural(adjacency), lu.fill_nonzeros());
}

TEST(AmdOrder, CutsMeshFillByFivefold) {
  // The headline claim at the droop-study scale: >= 4k unknowns. Symbolic
  // counts keep this fast enough for sanitizer jobs.
  const auto a = grid_system(48);  // 4608 unknowns
  const auto adjacency = sn::pattern_adjacency(a);
  const std::size_t natural = sn::symbolic_fill_natural(adjacency);
  const std::size_t amd = sn::symbolic_fill(adjacency, sn::amd_order(adjacency));
  EXPECT_GE(natural, 5u * amd)
      << "natural " << natural << " vs amd " << amd;
}

TEST(SparseLuOrdering, AmdSolveMatchesNaturalSolve) {
  const auto a = grid_system(10);
  std::vector<double> x_ref(a.size());
  for (std::size_t i = 0; i < x_ref.size(); ++i) {
    x_ref[i] = std::sin(static_cast<double>(i));
  }
  const auto b = multiply(a, x_ref);

  sn::SparseLu natural;
  natural.set_ordering(sn::OrderingKind::kNatural);
  natural.factor(a);
  sn::SparseLu amd;
  amd.set_ordering(sn::OrderingKind::kAmd);
  amd.factor(a);
  EXPECT_TRUE(amd.reordered());
  EXPECT_FALSE(natural.reordered());
  EXPECT_LT(amd.fill_nonzeros(), natural.fill_nonzeros());

  const auto xn = natural.solve(b);
  const auto xa = amd.solve(b);
  for (std::size_t i = 0; i < x_ref.size(); ++i) {
    EXPECT_NEAR(xn[i], x_ref[i], 1e-9);
    EXPECT_NEAR(xa[i], x_ref[i], 1e-9);
  }
}

TEST(SparseLuOrdering, AmdRefactorPathStaysNumericOnly) {
  auto a = grid_system(10);
  sn::SparseLu lu;
  lu.set_ordering(sn::OrderingKind::kAmd);
  lu.factor(a);
  EXPECT_EQ(lu.analyze_count(), 1u);
  const std::vector<double> b(a.size(), 1.0);
  const auto x0 = lu.solve(b);
  // Same pattern, moved values: must take the refactor path and stay right.
  for (std::size_t i = 0; i < a.size(); ++i) a.add(i, i, 0.5);
  lu.factor(a);
  EXPECT_EQ(lu.analyze_count(), 1u);
  EXPECT_EQ(lu.refactor_count(), 1u);
  const auto x1 = lu.solve(b);
  const auto residual = multiply(a, x1);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(residual[i], 1.0, 1e-9);
  }
  // And the values must differ from the stale solve (the diagonal moved).
  EXPECT_GT(std::fabs(x1[0] - x0[0]), 0.0);
}

TEST(SparseLuOrdering, AutoKeepsSmallSystemsBitwiseNatural) {
  // Below kAutoOrderingThreshold the kAuto default must produce the exact
  // natural-order factorization: memcmp-level identity of solutions.
  const auto a = random_system(64, 3);
  const std::vector<double> b(a.size(), 1.0);
  sn::SparseLu auto_lu;  // default ordering = kAuto
  auto_lu.factor(a);
  EXPECT_FALSE(auto_lu.reordered());
  sn::SparseLu natural;
  natural.set_ordering(sn::OrderingKind::kNatural);
  natural.factor(a);
  const auto xa = auto_lu.solve(b);
  const auto xn = natural.solve(b);
  ASSERT_EQ(xa.size(), xn.size());
  EXPECT_EQ(0, std::memcmp(xa.data(), xn.data(), xa.size() * sizeof(double)));
}

TEST(SparseLuOrdering, AutoReordersLargeSystems) {
  const auto a = grid_system(10);  // 200 unknowns >= threshold of 128
  sn::SparseLu lu;                 // default kAuto
  lu.factor(a);
  EXPECT_TRUE(lu.reordered());
  EXPECT_GE(a.size(), sn::SparseLu::kAutoOrderingThreshold);
}

TEST(SparseLuOrdering, SingularMatrixReportsOriginalColumn) {
  // Unknown 3 is isolated (zero row/column) in a system big enough that a
  // permutation would scramble indices if the error did not map back.
  sn::SparseMatrix a(6);
  for (std::size_t i = 0; i < 6; ++i) {
    if (i != 3) a.add(i, i, 2.0);
  }
  a.add(0, 1, -1.0);
  a.add(1, 0, -1.0);
  sn::SparseLu lu;
  lu.set_ordering(sn::OrderingKind::kAmd);
  EXPECT_THROW(lu.factor(a), softfet::ConvergenceError);
}
