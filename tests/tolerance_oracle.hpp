// Tolerance-based equivalence oracle for relaxed-determinism runs.
//
// Under SimOptions::determinism = kRelaxedUlp the batched engine evaluates
// device models through the numeric/vecmath SIMD kernels, whose results
// differ from libm by a documented ULP bound. Those perturbations flow
// through Newton into the local-truncation-error step controller, so a
// relaxed run may take slightly different time steps than the scalar
// bitwise engine — trajectories are compared on a common time basis
// (linear interpolation onto the reference axis, amplitude-relative
// tolerance) rather than memcmp'd, and aggregate statistics are compared
// with relative tolerances. Survivor/failure *counts* stay exact: relaxed
// mode may round differently, but it must not change which samples
// converge.
#pragma once

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "core/variation.hpp"
#include "sim/analyses.hpp"

namespace softfet::testing {

/// ULP distance between two doubles via the ordered-integer map (monotone
/// per sign, adjacent floats differ by 1; +0 and -0 coincide). NaN vs NaN
/// is 0; NaN vs non-NaN is the maximum.
[[nodiscard]] inline std::uint64_t ulp_distance(double a, double b) {
  if (std::isnan(a) || std::isnan(b)) {
    return (std::isnan(a) && std::isnan(b))
               ? 0
               : std::numeric_limits<std::uint64_t>::max();
  }
  const auto ordered = [](double x) {
    auto bits = static_cast<std::int64_t>(std::bit_cast<std::uint64_t>(x));
    return bits < 0 ? std::numeric_limits<std::int64_t>::min() - bits : bits;
  };
  const std::int64_t ia = ordered(a);
  const std::int64_t ib = ordered(b);
  return ia > ib
             ? static_cast<std::uint64_t>(ia) - static_cast<std::uint64_t>(ib)
             : static_cast<std::uint64_t>(ib) - static_cast<std::uint64_t>(ia);
}

/// Linear interpolation of (times, values) at t; clamps outside the span.
[[nodiscard]] inline double interp_at(const std::vector<double>& times,
                                      const std::vector<double>& values,
                                      double t) {
  if (times.empty()) return 0.0;
  if (t <= times.front()) return values.front();
  if (t >= times.back()) return values.back();
  const auto it = std::lower_bound(times.begin(), times.end(), t);
  const auto hi = static_cast<std::size_t>(it - times.begin());
  const std::size_t lo = hi - 1;
  const double span = times[hi] - times[lo];
  const double w = span > 0.0 ? (t - times[lo]) / span : 0.0;
  return values[lo] + w * (values[hi] - values[lo]);
}

/// Max deviation of signal `b` (on time axis tb) from `a` (on ta), sampled
/// at a's points, normalized by a's peak amplitude, with a ±time_tol
/// matching window: a point passes if the reference graph attains its
/// value anywhere within the window. Pointwise relative error is
/// meaningless at zero crossings, and ULP-level perturbations legitimately
/// shift the PTM threshold events (hence the ps-wide current spikes) by
/// femtoseconds, which a rigid pointwise compare misreads as percent-level
/// amplitude error.
[[nodiscard]] inline double max_amplitude_relative_deviation(
    const std::vector<double>& ta, const std::vector<double>& va,
    const std::vector<double>& tb, const std::vector<double>& vb,
    double time_tol) {
  double amplitude = 0.0;
  for (const double v : va) amplitude = std::max(amplitude, std::fabs(v));
  if (amplitude == 0.0) amplitude = 1.0;
  double worst = 0.0;
  for (std::size_t i = 0; i < ta.size(); ++i) {
    // Range of the reference over [t - tol, t + tol]: the interpolated
    // window endpoints plus every sample point strictly inside.
    double lo = interp_at(tb, vb, ta[i] - time_tol);
    double hi = lo;
    const double mid = interp_at(tb, vb, ta[i]);
    const double end = interp_at(tb, vb, ta[i] + time_tol);
    lo = std::min({lo, mid, end});
    hi = std::max({hi, mid, end});
    auto it = std::lower_bound(tb.begin(), tb.end(), ta[i] - time_tol);
    for (; it != tb.end() && *it <= ta[i] + time_tol; ++it) {
      const double v = vb[static_cast<std::size_t>(it - tb.begin())];
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    const double dev = va[i] < lo ? lo - va[i] : (va[i] > hi ? va[i] - hi : 0.0);
    worst = std::max(worst, dev / amplitude);
  }
  return worst;
}

/// Trapezoidal integral of a sampled signal (and of its magnitude, for the
/// normalization scale).
struct SignalIntegral {
  double net = 0.0;
  double abs = 0.0;
};
[[nodiscard]] inline SignalIntegral trapezoid(const std::vector<double>& t,
                                              const std::vector<double>& v) {
  SignalIntegral out;
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    const double dt = t[i + 1] - t[i];
    out.net += 0.5 * (v[i] + v[i + 1]) * dt;
    out.abs += 0.5 * (std::fabs(v[i]) + std::fabs(v[i + 1])) * dt;
  }
  return out;
}

/// Trajectory oracle for relaxed runs. Voltages are continuous and must
/// match within `rtol` of their peak amplitude (with the ±time_tol
/// event-shift window). Current signals are ps-wide spikes whose sampled
/// peak depends on where the adaptive grid lands on the spike, so their
/// windowed amplitude budget is `spike_rtol` — but their net charge
/// (trapezoidal integral, immune to sampling phase) must match within
/// `rtol` of the absolute-integral scale, which is what pins the physics.
/// Step counters are NOT compared — relaxed runs may legitimately take
/// different steps.
inline void expect_tran_close(const sim::TranResult& got,
                              const sim::TranResult& want, double rtol,
                              double spike_rtol, double time_tol) {
  ASSERT_FALSE(got.truncated);
  ASSERT_FALSE(want.truncated);
  ASSERT_FALSE(got.time.empty());
  ASSERT_FALSE(want.time.empty());
  EXPECT_EQ(got.table.names(), want.table.names());
  EXPECT_NEAR(got.time.back(), want.time.back(),
              rtol * std::max(got.time.back(), want.time.back()));
  for (const auto& name : want.table.names()) {
    const bool is_current = name.rfind("i(", 0) == 0;
    const double dev = max_amplitude_relative_deviation(
        want.time, want.table.signal(name), got.time, got.table.signal(name),
        time_tol);
    EXPECT_LE(dev, is_current ? spike_rtol : rtol)
        << "signal " << name << ": amplitude-relative deviation " << dev
        << " with time window " << time_tol;
    const SignalIntegral ia = trapezoid(got.time, got.table.signal(name));
    const SignalIntegral ib = trapezoid(want.time, want.table.signal(name));
    const double scale =
        std::max(ib.abs, std::numeric_limits<double>::min());
    // 10x budget: the trapezoid rule itself carries O(dt^2 * curvature)
    // quadrature error that differs between the two adaptive grids on
    // sharp spikes (observed ~5e-3 on the nmos shoot-through charge).
    EXPECT_LE(std::fabs(ia.net - ib.net) / scale, 10.0 * rtol)
        << "signal " << name << ": integral " << ia.net << " vs " << ib.net;
  }
}

/// Statistics oracle: survivor and failure counts exact; means/spreads
/// within `rtol` relative; the baseline-beat fraction within the quantum
/// one flipped sample would cause (a sample whose I_MAX sits ULPs from the
/// baseline may legitimately land on either side).
inline void expect_stats_close(const core::MonteCarloStats& got,
                               const core::MonteCarloStats& want,
                               double rtol) {
  ASSERT_EQ(got.samples, want.samples);
  EXPECT_EQ(got.failed_samples, want.failed_samples);
  const auto close = [&](double a, double b, const char* what) {
    const double scale = std::max(std::fabs(a), std::fabs(b));
    EXPECT_LE(std::fabs(a - b), rtol * scale)
        << what << ": " << a << " vs " << b;
  };
  close(got.imax_mean, want.imax_mean, "imax_mean");
  close(got.imax_std, want.imax_std, "imax_std");
  close(got.imax_worst, want.imax_worst, "imax_worst");
  close(got.delay_mean, want.delay_mean, "delay_mean");
  close(got.delay_std, want.delay_std, "delay_std");
  close(got.delay_worst, want.delay_worst, "delay_worst");
  const int survivors = want.samples - want.failed_samples;
  EXPECT_NEAR(got.fraction_below_baseline, want.fraction_below_baseline,
              survivors > 0 ? 1.0 / survivors + 1e-12 : 1e-12);
}

}  // namespace softfet::testing
