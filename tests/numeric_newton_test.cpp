#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>

#include "numeric/newton.hpp"
#include "util/error.hpp"

namespace sn = softfet::numeric;

namespace {

// F(x) = x^2 - 4 = 0, scalar.
class Quadratic final : public sn::NonlinearSystem {
 public:
  [[nodiscard]] std::size_t size() const override { return 1; }
  void load(const std::vector<double>& x, sn::SparseMatrix& jacobian,
            std::vector<double>& residual) override {
    residual[0] = x[0] * x[0] - 4.0;
    jacobian.add(0, 0, 2.0 * x[0]);
  }
  [[nodiscard]] double abstol(std::size_t) const override { return 1e-12; }
};

// Coupled 2-D system: x0 + x1 = 3, x0 * x1 = 2 -> (1,2) or (2,1).
class Coupled final : public sn::NonlinearSystem {
 public:
  [[nodiscard]] std::size_t size() const override { return 2; }
  void load(const std::vector<double>& x, sn::SparseMatrix& jacobian,
            std::vector<double>& residual) override {
    residual[0] = x[0] + x[1] - 3.0;
    residual[1] = x[0] * x[1] - 2.0;
    jacobian.add(0, 0, 1.0);
    jacobian.add(0, 1, 1.0);
    jacobian.add(1, 0, x[1]);
    jacobian.add(1, 1, x[0]);
  }
  [[nodiscard]] double abstol(std::size_t) const override { return 1e-12; }
};

// Exponential (diode-like) residual that benefits from step limiting:
// F(x) = e^{10x} - 1 - 5.
class StiffExponential final : public sn::NonlinearSystem {
 public:
  explicit StiffExponential(double limit) : limit_(limit) {}
  [[nodiscard]] std::size_t size() const override { return 1; }
  void load(const std::vector<double>& x, sn::SparseMatrix& jacobian,
            std::vector<double>& residual) override {
    residual[0] = std::exp(10.0 * x[0]) - 6.0;
    jacobian.add(0, 0, 10.0 * std::exp(10.0 * x[0]));
  }
  [[nodiscard]] double abstol(std::size_t) const override { return 1e-14; }
  [[nodiscard]] double max_step(std::size_t) const override { return limit_; }

 private:
  double limit_;
};

// Residual that is NaN in row 1 from the very first evaluation.
class NanResidual final : public sn::NonlinearSystem {
 public:
  [[nodiscard]] std::size_t size() const override { return 2; }
  void load(const std::vector<double>& x, sn::SparseMatrix& jacobian,
            std::vector<double>& residual) override {
    residual[0] = x[0] - 1.0;
    residual[1] = std::numeric_limits<double>::quiet_NaN();
    jacobian.add(0, 0, 1.0);
    jacobian.add(1, 1, 1.0);
  }
  [[nodiscard]] double abstol(std::size_t) const override { return 1e-12; }
  [[nodiscard]] std::string unknown_label(std::size_t i) const override {
    return i == 1 ? "v(bad)" : "v(ok)";
  }
};

// Row 1 never receives a Jacobian entry: structurally singular.
class SingularRow final : public sn::NonlinearSystem {
 public:
  [[nodiscard]] std::size_t size() const override { return 2; }
  void load(const std::vector<double>& x, sn::SparseMatrix& jacobian,
            std::vector<double>& residual) override {
    residual[0] = x[0] - 1.0;
    residual[1] = 0.0;
    jacobian.add(0, 0, 1.0);
  }
  [[nodiscard]] double abstol(std::size_t) const override { return 1e-12; }
};

}  // namespace

TEST(Newton, NonFiniteResidualFailsFastWithStructuredResult) {
  // The guard must abort on the first poisoned evaluation instead of
  // iterating to the budget, and must name the offending unknown.
  NanResidual system;
  std::vector<double> x{0.0, 0.0};
  const auto result = sn::solve_newton(system, x);
  EXPECT_FALSE(result.converged);
  EXPECT_EQ(result.failure, sn::NewtonFailure::kNonFiniteResidual);
  EXPECT_LE(result.iterations, 1);
  EXPECT_EQ(result.worst_unknown, 1u);
  EXPECT_EQ(system.unknown_label(result.worst_unknown), "v(bad)");
}

TEST(Newton, SingularMatrixIsASoftFailureNotAThrow) {
  // A vanishing pivot must come back as a structured result so homotopy
  // ladders (gmin/source stepping) get their chance to run.
  SingularRow system;
  std::vector<double> x{0.0, 0.0};
  const auto result = sn::solve_newton(system, x);
  EXPECT_FALSE(result.converged);
  EXPECT_EQ(result.failure, sn::NewtonFailure::kSingularMatrix);
  EXPECT_EQ(result.worst_unknown, 1u);
}

TEST(Newton, FailureKindsHaveReadableNames) {
  EXPECT_STREQ(sn::to_string(sn::NewtonFailure::kNone), "converged");
  EXPECT_NE(std::string(sn::to_string(sn::NewtonFailure::kNonFiniteResidual))
                .find("residual"),
            std::string::npos);
  EXPECT_NE(std::string(sn::to_string(sn::NewtonFailure::kSingularMatrix))
                .find("singular"),
            std::string::npos);
}

TEST(Newton, SolvesQuadratic) {
  Quadratic system;
  std::vector<double> x{3.0};
  const auto result = sn::solve_newton(system, x);
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(x[0], 2.0, 1e-6);
  EXPECT_LT(result.iterations, 12);
}

TEST(Newton, FindsNegativeRootFromNegativeGuess) {
  Quadratic system;
  std::vector<double> x{-1.0};
  const auto result = sn::solve_newton(system, x);
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(x[0], -2.0, 1e-6);
}

TEST(Newton, SolvesCoupledSystem) {
  Coupled system;
  std::vector<double> x{0.5, 2.5};
  const auto result = sn::solve_newton(system, x);
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(x[0] + x[1], 3.0, 1e-6);
  EXPECT_NEAR(x[0] * x[1], 2.0, 1e-6);
}

TEST(Newton, StepLimitingTamesExponential) {
  StiffExponential system(0.2);
  std::vector<double> x{2.0};  // exp(20): wildly off
  const auto result = sn::solve_newton(system, x);
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(x[0], std::log(6.0) / 10.0, 1e-9);
}

TEST(Newton, ReportsNonConvergence) {
  StiffExponential system(0.0);  // no limiting
  sn::NewtonOptions options;
  options.max_iterations = 3;  // not enough from a bad start
  std::vector<double> x{5.0};
  // Either throws (overflow detected) or reports non-convergence.
  try {
    const auto result = sn::solve_newton(system, x, options);
    EXPECT_FALSE(result.converged);
  } catch (const softfet::ConvergenceError&) {
    SUCCEED();
  }
}

TEST(Newton, SizeMismatchThrows) {
  Quadratic system;
  std::vector<double> x{1.0, 2.0};
  EXPECT_THROW((void)sn::solve_newton(system, x), softfet::Error);
}
