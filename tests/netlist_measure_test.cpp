// .measure directive parsing and evaluation.
#include <gtest/gtest.h>

#include <cmath>

#include "netlist/elaborate.hpp"
#include "netlist/measure_eval.hpp"
#include "netlist/parser.hpp"
#include "sim/analyses.hpp"
#include "util/error.hpp"

namespace nl = softfet::netlist;
namespace ss = softfet::sim;

namespace {

/// RC circuit with the full set of measures.
nl::ElaboratedNetlist rc_netlist() {
  return nl::compile_netlist(R"(rc measures
V1 in 0 PULSE(0 1 1n 1p 1p 1)
R1 in out 1k
C1 out 0 1n
.tran 10n 6u
.measure tran vmax MAX v(out)
.measure tran vmin MIN v(out)
.measure tran swing PP v(out)
.measure tran vavg AVG v(out) FROM=5u TO=6u
.measure tran vrms RMS v(out) FROM=5u TO=6u
.measure tran q INTEG i(v1)
.measure tran trise TRIG v(in) VAL=0.5 RISE=1 TARG v(out) VAL=0.63 RISE=1
)");
}

}  // namespace

TEST(Measure, ParsedFromNetlist) {
  const auto net = rc_netlist();
  ASSERT_EQ(net.measures.size(), 7u);
  EXPECT_EQ(net.measures[0].name, "vmax");
  EXPECT_EQ(net.measures[0].tokens[0], "MAX");
  EXPECT_EQ(net.measures[0].tokens[1], "v(out)");  // parens re-joined
}

TEST(Measure, EvaluatesAgainstRcAnalytic) {
  auto net = rc_netlist();
  const auto result = ss::run_transient(*net.circuit, net.tran->tstop);
  const auto values = nl::evaluate_measures(net.measures, result);
  ASSERT_EQ(values.size(), 7u);
  const auto value_of = [&](const std::string& name) {
    for (const auto& v : values) {
      if (v.name == name) return v.value;
    }
    throw std::runtime_error("missing measure " + name);
  };
  EXPECT_NEAR(value_of("vmax"), 1.0, 1e-2);
  EXPECT_NEAR(value_of("vmin"), 0.0, 1e-3);
  EXPECT_NEAR(value_of("swing"), 1.0, 1e-2);
  // Settled window: avg = rms = 1.
  EXPECT_NEAR(value_of("vavg"), 1.0, 1e-2);
  EXPECT_NEAR(value_of("vrms"), 1.0, 1e-2);
  // Total charge from the source (SPICE sign: negative when sourcing).
  EXPECT_NEAR(value_of("q"), -1e-9, 5e-11);
  // RC rise to 63% takes ~tau = 1 us.
  EXPECT_NEAR(value_of("trise"), 1e-6, 5e-8);
}

TEST(Measure, FailedMeasureBecomesNan) {
  auto net = nl::compile_netlist(R"(bad crossing
V1 a 0 1
R1 a 0 1k
.tran 1n 10n
.measure tran never TRIG v(a) VAL=0.5 RISE=1 TARG v(a) VAL=2 RISE=1
)");
  const auto result = ss::run_transient(*net.circuit, net.tran->tstop);
  const auto values = nl::evaluate_measures(net.measures, result);
  ASSERT_EQ(values.size(), 1u);
  EXPECT_TRUE(std::isnan(values[0].value));
}

TEST(Measure, MalformedDirectivesThrow) {
  EXPECT_THROW((void)nl::parse("t\n.measure tran x\n"), softfet::ParseError);

  nl::MeasureDirective bad;
  bad.analysis = "ac";
  bad.name = "x";
  bad.tokens = {"max", "v(a)"};
  ss::TranResult empty;
  EXPECT_THROW((void)nl::evaluate_measure(bad, empty), softfet::ParseError);

  bad.analysis = "tran";
  bad.tokens = {"frobnicate", "v(a)"};
  EXPECT_THROW((void)nl::evaluate_measure(bad, empty), softfet::ParseError);

  bad.tokens = {"max", "v(a)", "bogus"};
  EXPECT_THROW((void)nl::evaluate_measure(bad, empty), softfet::ParseError);
}

TEST(Measure, WindowOptionsRespected) {
  auto net = nl::compile_netlist(R"(windowed
V1 in 0 PULSE(0 1 1u 1p 1p 1u 2u)
R1 in 0 1k
.tran 10n 4u
.measure tran hi AVG v(in) FROM=1.5u TO=1.9u
.measure tran lo AVG v(in) FROM=2.5u TO=2.9u
)");
  const auto result = ss::run_transient(*net.circuit, net.tran->tstop);
  const auto values = nl::evaluate_measures(net.measures, result);
  EXPECT_NEAR(values[0].value, 1.0, 1e-6);
  EXPECT_NEAR(values[1].value, 0.0, 1e-6);
}

TEST(Measure, TruncatedTrigTargThrowsParseErrorNotOutOfRange) {
  // A ".measure tran d TRIG" cut short after any keyword used to escape as
  // std::out_of_range from tokens.at(++i); every truncation must surface as
  // a ParseError carrying the netlist line instead.
  ss::TranResult empty;
  nl::MeasureDirective bad;
  bad.analysis = "tran";
  bad.name = "d";
  bad.line = 12;

  const std::vector<std::vector<std::string>> truncations = {
      {"TRIG"},                                         // no trigger signal
      {"TRIG", "v(in)", "VAL=0.5", "TARG"},             // no target signal
      {"TRIG", "v(in)", "VAL=0.5"},                     // TARG missing
      {"TRIG", "v(in)", "TARG", "v(out)", "VAL="},      // empty value
  };
  for (const auto& tokens : truncations) {
    bad.tokens = tokens;
    try {
      (void)nl::evaluate_measure(bad, empty);
      FAIL() << "expected ParseError for " << tokens.size() << " tokens";
    } catch (const softfet::ParseError& e) {
      EXPECT_EQ(e.line(), 12) << e.what();
    }
  }
}
