#include <gtest/gtest.h>

#include <cmath>

#include "measure/waveform.hpp"
#include "util/error.hpp"

using softfet::measure::CrossDirection;
using softfet::measure::Waveform;

namespace {
Waveform triangle() {
  // 0 at t=0, 1 at t=1, 0 at t=2.
  return Waveform({0.0, 1.0, 2.0}, {0.0, 1.0, 0.0});
}
}  // namespace

TEST(Waveform, ValueInterpolatesAndClamps) {
  const auto w = triangle();
  EXPECT_DOUBLE_EQ(w.value(0.5), 0.5);
  EXPECT_DOUBLE_EQ(w.value(1.5), 0.5);
  EXPECT_DOUBLE_EQ(w.value(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(w.value(5.0), 0.0);
}

TEST(Waveform, MinMaxPeak) {
  const auto w = Waveform({0.0, 1.0, 2.0}, {-2.0, 1.0, 0.5});
  EXPECT_DOUBLE_EQ(w.min_value(), -2.0);
  EXPECT_DOUBLE_EQ(w.max_value(), 1.0);
  EXPECT_DOUBLE_EQ(w.peak_magnitude(), 2.0);
}

TEST(Waveform, DerivativeOfTriangle) {
  const auto d = triangle().derivative();
  ASSERT_EQ(d.size(), 2u);
  EXPECT_DOUBLE_EQ(d.y()[0], 1.0);
  EXPECT_DOUBLE_EQ(d.y()[1], -1.0);
  EXPECT_DOUBLE_EQ(triangle().max_abs_derivative(), 1.0);
}

TEST(Waveform, MaxAbsDerivativeMergesMicroSteps) {
  // A glitch over 1e-15 s looks like a huge slope unless merged.
  const Waveform w({0.0, 1e-9, 1e-9 + 1e-15, 2e-9},
                   {0.0, 0.0, 1e-3, 1e-3});
  EXPECT_GT(w.max_abs_derivative(0.0), 1e11);
  EXPECT_LT(w.max_abs_derivative(10e-12), 1e9);
}

TEST(Waveform, IntegralOfTriangle) {
  EXPECT_DOUBLE_EQ(triangle().integral(), 1.0);
  EXPECT_DOUBLE_EQ(triangle().integral(0.0, 1.0), 0.5);
  EXPECT_DOUBLE_EQ(triangle().integral(0.5, 1.5), 0.75);
  EXPECT_DOUBLE_EQ(triangle().integral(1.0, 0.0), 0.0);  // empty window
}

TEST(Waveform, Crossings) {
  const auto w = triangle();
  const auto rising = w.crossings(0.5, CrossDirection::kRising);
  ASSERT_EQ(rising.size(), 1u);
  EXPECT_DOUBLE_EQ(rising[0], 0.5);
  const auto falling = w.crossings(0.5, CrossDirection::kFalling);
  ASSERT_EQ(falling.size(), 1u);
  EXPECT_DOUBLE_EQ(falling[0], 1.5);
  EXPECT_EQ(w.crossings(0.5, CrossDirection::kEither).size(), 2u);
  EXPECT_TRUE(w.crossings(2.0, CrossDirection::kEither).empty());
}

TEST(Waveform, FirstCrossingAfter) {
  const auto w = triangle();
  EXPECT_DOUBLE_EQ(w.first_crossing(0.5, CrossDirection::kEither, 1.0), 1.5);
  EXPECT_THROW((void)w.first_crossing(0.5, CrossDirection::kRising, 1.0),
               softfet::Error);
  EXPECT_TRUE(w.has_crossing(0.5, CrossDirection::kFalling, 1.0));
  EXPECT_FALSE(w.has_crossing(0.5, CrossDirection::kRising, 1.0));
}

TEST(Waveform, WindowInterpolatesEndpoints) {
  const auto w = triangle().window(0.5, 1.5);
  EXPECT_DOUBLE_EQ(w.t_begin(), 0.5);
  EXPECT_DOUBLE_EQ(w.t_end(), 1.5);
  EXPECT_DOUBLE_EQ(w.value(0.5), 0.5);
  EXPECT_DOUBLE_EQ(w.max_value(), 1.0);
}

TEST(Waveform, ScaledAppliesAffineMap) {
  const auto w = triangle().scaled(2.0, 1.0);
  EXPECT_DOUBLE_EQ(w.value(1.0), 3.0);
  EXPECT_DOUBLE_EQ(w.value(0.0), 1.0);
}

TEST(Waveform, MultiplyOnUnionGrid) {
  const Waveform a({0.0, 2.0}, {1.0, 1.0});
  const Waveform b({0.0, 1.0, 2.0}, {0.0, 1.0, 0.0});
  const auto p = Waveform::multiply(a, b);
  EXPECT_DOUBLE_EQ(p.value(1.0), 1.0);
  EXPECT_DOUBLE_EQ(p.integral(), 1.0);
}

TEST(Waveform, ConstructionValidation) {
  EXPECT_THROW(Waveform({0.0, 1.0}, {0.0}), softfet::Error);
  EXPECT_THROW(Waveform({1.0, 0.0}, {0.0, 0.0}), softfet::Error);
  EXPECT_NO_THROW(Waveform({0.0, 0.0}, {0.0, 1.0}));  // repeated t allowed
}
