// Iso-I_MAX study: calibration machinery and paper Fig. 5 trends.
#include <gtest/gtest.h>

#include <cmath>

#include "core/iso_imax.hpp"
#include "devices/ptm.hpp"
#include "util/error.hpp"

namespace sd = softfet::devices;
using softfet::core::IsoImaxSpec;
using softfet::core::bisect_to_target;
using softfet::core::run_iso_imax_study;

TEST(Bisect, FindsRootOfIncreasingFunction) {
  const double knob = bisect_to_target([](double x) { return x * x; }, 0.0,
                                       10.0, 25.0, true, 1e-6);
  EXPECT_NEAR(knob, 5.0, 1e-3);
}

TEST(Bisect, FindsRootOfDecreasingFunction) {
  const double knob = bisect_to_target([](double x) { return 10.0 - x; }, 0.0,
                                       10.0, 4.0, false, 1e-9);
  EXPECT_NEAR(knob, 6.0, 1e-6);
}

TEST(Bisect, AcceptsMatchingEndpoint) {
  const double knob = bisect_to_target([](double x) { return x; }, 5.0, 10.0,
                                       5.0, true, 1e-3);
  EXPECT_DOUBLE_EQ(knob, 5.0);
}

TEST(Bisect, ThrowsWhenNotBracketed) {
  EXPECT_THROW((void)bisect_to_target([](double x) { return x; }, 0.0, 1.0,
                                      5.0, true, 1e-6),
               softfet::ConvergenceError);
}

TEST(IsoImax, RequiresSoftFetBase) {
  IsoImaxSpec spec;  // no PTM set
  EXPECT_THROW((void)run_iso_imax_study(spec), softfet::Error);
}

namespace {
IsoImaxSpec quick_spec() {
  IsoImaxSpec spec;
  spec.base.input_transition = 30e-12;
  spec.base.input_rising = false;
  spec.base.dut.ptm = sd::PtmParams{};
  spec.vcc_sweep = {0.6, 0.8, 1.0};  // keep the test fast
  return spec;
}
}  // namespace

TEST(IsoImax, CalibrationMatchesTargets) {
  const auto result = run_iso_imax_study(quick_spec());
  EXPECT_GT(result.target_imax, 10e-6);
  // Knobs moved away from their trivial values.
  EXPECT_GT(result.hvt_delta_vt, 0.02);
  EXPECT_GT(result.series_r, 100.0);
  EXPECT_GT(result.stack_width_mult, 0.1);
  // Every calibrated variant hits the target at VCC = 1 within tolerance.
  for (const char* name : {"hvt", "series-r", "stacked"}) {
    const auto& curve = result.curves.at(name);
    const auto& last = curve.back();  // vcc = 1.0
    EXPECT_NEAR(last.i_max, result.target_imax, 0.06 * result.target_imax)
        << name;
  }
}

TEST(IsoImax, PaperFig5Trends) {
  const auto result = run_iso_imax_study(quick_spec());
  const auto& soft = result.curves.at("softfet");
  const auto& hvt = result.curves.at("hvt");
  const auto& base = result.curves.at("baseline");

  // The Soft-FET cuts I_MAX versus the un-calibrated baseline at 1 V.
  EXPECT_LT(soft.back().i_max, 0.75 * base.back().i_max);

  // The paper's central claim: at low VCC the iso-I_MAX HVT variant's delay
  // explodes (subthreshold operation) while the Soft-FET degrades mildly.
  const double hvt_blowup = hvt.front().delay / hvt.back().delay;
  const double soft_blowup = soft.front().delay / soft.back().delay;
  EXPECT_GT(hvt_blowup, 3.0 * soft_blowup);
  EXPECT_GT(hvt.front().delay, soft.front().delay);
}

TEST(IsoImax, DelayMonotoneInVcc) {
  const auto result = run_iso_imax_study(quick_spec());
  for (const auto& [name, curve] : result.curves) {
    for (std::size_t i = 1; i < curve.size(); ++i) {
      EXPECT_LE(curve[i].delay, curve[i - 1].delay * 1.05)
          << name << " at vcc=" << curve[i].vcc;
    }
  }
}
