// End-to-end equivalence of the cached-refactorization solver path: full
// analyses forced through the sparse CSR solver (which reuses the symbolic
// analysis across every Newton iteration and timestep) must match the
// always-fresh dense factorization on RC, RLC and Soft-FET circuits.
#include <gtest/gtest.h>

#include <cmath>

#include "cells/inverter.hpp"
#include "core/characterize.hpp"
#include "devices/capacitor.hpp"
#include "devices/inductor.hpp"
#include "devices/ptm.hpp"
#include "devices/resistor.hpp"
#include "devices/sources.hpp"
#include "measure/waveform.hpp"
#include "sim/analyses.hpp"

namespace ss = softfet::sim;
namespace sd = softfet::devices;
namespace sc = softfet::core;
using softfet::measure::Waveform;

namespace {

ss::TranResult run_rc(ss::SimOptions options) {
  ss::Circuit c;
  const auto in = c.node("in");
  const auto out = c.node("out");
  c.add<sd::VSource>("Vin", in, ss::kGroundNode,
                     sd::SourceSpec::pulse(0.0, 1.0, 1e-9, 1e-12, 1e-12, 1.0));
  c.add<sd::Resistor>("R1", in, out, 1e3);
  c.add<sd::Capacitor>("C1", out, ss::kGroundNode, 1e-9);
  return ss::run_transient(c, 5e-6, options);
}

ss::TranResult run_rlc(ss::SimOptions options) {
  ss::Circuit c;
  const auto in = c.node("in");
  const auto mid = c.node("mid");
  const auto out = c.node("out");
  c.add<sd::VSource>("Vin", in, ss::kGroundNode,
                     sd::SourceSpec::pulse(0.0, 1.0, 1e-9, 1e-12, 1e-12, 1.0));
  c.add<sd::Resistor>("R1", in, mid, 10.0);
  c.add<sd::Inductor>("L1", mid, out, 1e-6);
  c.add<sd::Capacitor>("C1", out, ss::kGroundNode, 1e-9);
  return ss::run_transient(c, 2e-6, options);
}

void expect_waveforms_close(const ss::TranResult& sparse,
                            const ss::TranResult& dense,
                            const std::string& signal, double tstop,
                            double tol) {
  const Waveform ws = Waveform::from_tran(sparse, signal);
  const Waveform wd = Waveform::from_tran(dense, signal);
  for (int i = 1; i <= 20; ++i) {
    const double t = tstop * i / 20.0;
    EXPECT_NEAR(ws.value(t), wd.value(t), tol) << signal << " at t=" << t;
  }
}

}  // namespace

TEST(RefactorEquivalence, RcTransientSparseMatchesDense) {
  ss::SimOptions sparse_opt;
  sparse_opt.solver = softfet::numeric::SolverKind::kSparse;
  ss::SimOptions dense_opt;
  dense_opt.solver = softfet::numeric::SolverKind::kDense;
  expect_waveforms_close(run_rc(sparse_opt), run_rc(dense_opt), "v(out)",
                         5e-6, 1e-6);
}

TEST(RefactorEquivalence, RlcTransientSparseMatchesDense) {
  ss::SimOptions sparse_opt;
  sparse_opt.solver = softfet::numeric::SolverKind::kSparse;
  ss::SimOptions dense_opt;
  dense_opt.solver = softfet::numeric::SolverKind::kDense;
  expect_waveforms_close(run_rlc(sparse_opt), run_rlc(dense_opt), "v(out)",
                         2e-6, 1e-4);
}

TEST(RefactorEquivalence, SoftFetCharacterizationSparseMatchesDense) {
  softfet::cells::InverterTestbenchSpec spec;
  spec.input_transition = 30e-12;
  spec.input_rising = false;
  spec.dut.ptm = sd::PtmParams{};

  ss::SimOptions sparse_opt;
  sparse_opt.solver = softfet::numeric::SolverKind::kSparse;
  ss::SimOptions dense_opt;
  dense_opt.solver = softfet::numeric::SolverKind::kDense;

  const sc::TransitionMetrics ms = sc::characterize_inverter(spec, sparse_opt);
  const sc::TransitionMetrics md = sc::characterize_inverter(spec, dense_opt);

  ASSERT_GT(md.i_max, 0.0);
  EXPECT_NEAR(ms.i_max, md.i_max, 0.01 * md.i_max);
  EXPECT_NEAR(ms.delay, md.delay, 0.02 * md.delay);
  EXPECT_EQ(ms.imt_count, md.imt_count);
  EXPECT_EQ(ms.mit_count, md.mit_count);
}

TEST(RefactorEquivalence, DcSweepHysteresisSparseMatchesDense) {
  // A PTM in series with a resistor swept up and down traces the hysteresis
  // loop; the cached-refactor path must reproduce the same loop (the sweep
  // reuses one solver across every bias point and phase flip).
  const auto run = [](softfet::numeric::SolverKind kind) {
    ss::Circuit c;
    const auto in = c.node("in");
    const auto mid = c.node("mid");
    c.add<sd::VSource>("V1", in, ss::kGroundNode, sd::SourceSpec::dc(0.0));
    c.add<sd::Resistor>("R1", in, mid, 10e3);
    c.add<sd::Ptm>("X1", mid, ss::kGroundNode, sd::PtmParams{});
    std::vector<double> biases;
    for (double v = 0.0; v <= 1.5; v += 0.05) biases.push_back(v);
    for (double v = 1.5; v >= 0.0; v -= 0.05) biases.push_back(v);
    ss::SimOptions options;
    options.solver = kind;
    return ss::dc_sweep(c, "V1", biases, options);
  };
  const auto sparse = run(softfet::numeric::SolverKind::kSparse);
  const auto dense = run(softfet::numeric::SolverKind::kDense);
  const auto& vs = sparse.table.signal("v(mid)");
  const auto& vd = dense.table.signal("v(mid)");
  ASSERT_EQ(vs.size(), vd.size());
  for (std::size_t i = 0; i < vs.size(); ++i) {
    EXPECT_NEAR(vs[i], vd[i], 1e-6) << "sweep point " << i;
  }
}
