// Inverter cell builders and the single-gate testbench.
#include <gtest/gtest.h>

#include "cells/inverter.hpp"
#include "devices/tech40.hpp"
#include "measure/waveform.hpp"
#include "sim/analyses.hpp"
#include "util/error.hpp"

namespace sc = softfet::cells;
namespace sd = softfet::devices;
namespace ss = softfet::sim;
using softfet::measure::Waveform;

TEST(InverterCell, BaselineHasDirectGate) {
  ss::Circuit c;
  const auto cell = sc::add_inverter(c, "i0", c.node("a"), c.node("y"),
                                     c.node("vdd"), ss::kGroundNode,
                                     sc::InverterSpec{});
  EXPECT_EQ(cell.in, cell.gate);
  EXPECT_EQ(cell.ptm, nullptr);
  EXPECT_NE(cell.pmos, nullptr);
  EXPECT_NE(cell.nmos, nullptr);
}

TEST(InverterCell, SoftFetInsertsPtm) {
  ss::Circuit c;
  sc::InverterSpec spec;
  spec.ptm = sd::PtmParams{};
  const auto cell = sc::add_inverter(c, "i0", c.node("a"), c.node("y"),
                                     c.node("vdd"), ss::kGroundNode, spec);
  EXPECT_NE(cell.in, cell.gate);
  ASSERT_NE(cell.ptm, nullptr);
  EXPECT_TRUE(c.has_node("i0.g"));
}

TEST(InverterCell, SeriesRInsertsResistor) {
  ss::Circuit c;
  sc::InverterSpec spec;
  spec.gate_series_r = 10e3;
  const auto cell = sc::add_inverter(c, "i0", c.node("a"), c.node("y"),
                                     c.node("vdd"), ss::kGroundNode, spec);
  EXPECT_NE(cell.in, cell.gate);
  EXPECT_NE(c.find_device("i0.rg"), nullptr);
}

TEST(InverterCell, StackedCreatesSeriesDevices) {
  ss::Circuit c;
  sc::InverterSpec spec;
  spec.stack = 2;
  (void)sc::add_inverter(c, "i0", c.node("a"), c.node("y"), c.node("vdd"),
                         ss::kGroundNode, spec);
  EXPECT_NE(c.find_device("i0.mp0"), nullptr);
  EXPECT_NE(c.find_device("i0.mp1"), nullptr);
  EXPECT_NE(c.find_device("i0.mn1"), nullptr);
  EXPECT_TRUE(c.has_node("i0.p0"));  // intermediate stack node
}

TEST(InverterCell, PtmAndSeriesRAreExclusive) {
  ss::Circuit c;
  sc::InverterSpec spec;
  spec.ptm = sd::PtmParams{};
  spec.gate_series_r = 1e3;
  EXPECT_THROW((void)sc::add_inverter(c, "i0", c.node("a"), c.node("y"),
                                      c.node("vdd"), ss::kGroundNode, spec),
               softfet::InvalidCircuitError);
}

TEST(InverterCell, InvalidStackRejected) {
  ss::Circuit c;
  sc::InverterSpec spec;
  spec.stack = 0;
  EXPECT_THROW((void)sc::add_inverter(c, "i0", c.node("a"), c.node("y"),
                                      c.node("vdd"), ss::kGroundNode, spec),
               softfet::InvalidCircuitError);
}

TEST(InverterTestbench, BaselineSwitchesCleanly) {
  sc::InverterTestbenchSpec spec;
  spec.input_rising = false;  // falling input -> rising output
  auto tb = sc::make_inverter_testbench(spec);
  const auto result = ss::run_transient(tb.circuit, tb.suggested_tstop);
  const Waveform vout = Waveform::from_tran(result, tb.output_signal);
  EXPECT_NEAR(vout.value(0.0), 0.0, 0.01);
  EXPECT_NEAR(vout.value(result.time.back()), spec.vcc, 0.01);
}

TEST(InverterTestbench, DutSupplyIsolatedFromLoad) {
  // Before the edge everything is static: the DUT supply current is just
  // leakage, far below the load inverter's switching current later.
  sc::InverterTestbenchSpec spec;
  spec.input_rising = false;
  auto tb = sc::make_inverter_testbench(spec);
  const auto result = ss::run_transient(tb.circuit, tb.suggested_tstop);
  const Waveform icc = Waveform::from_tran(result, tb.supply_current_signal);
  // Quiescent current small.
  EXPECT_LT(std::abs(icc.value(10e-12)), 1e-8);
  // Load inverter's own rail exists and is separate.
  EXPECT_TRUE(result.table.has("i(vddl)"));
}

TEST(InverterTestbench, SoftFetReducesPeakCurrent) {
  sc::InverterTestbenchSpec base;
  base.input_rising = false;
  auto tb_base = sc::make_inverter_testbench(base);
  const auto res_base = ss::run_transient(tb_base.circuit, tb_base.suggested_tstop);
  const double imax_base =
      Waveform::from_tran(res_base, "i(vdd)").peak_magnitude();

  auto soft = base;
  soft.dut.ptm = sd::PtmParams{};
  auto tb_soft = sc::make_inverter_testbench(soft);
  const auto res_soft = ss::run_transient(tb_soft.circuit, tb_soft.suggested_tstop);
  const double imax_soft =
      Waveform::from_tran(res_soft, "i(vdd)").peak_magnitude();

  EXPECT_LT(imax_soft, 0.75 * imax_base);
  EXPECT_GE(tb_soft.dut.ptm->imt_count(), 1);
}

TEST(InverterTestbench, RisingInputDirection) {
  sc::InverterTestbenchSpec spec;
  spec.input_rising = true;
  auto tb = sc::make_inverter_testbench(spec);
  const auto result = ss::run_transient(tb.circuit, tb.suggested_tstop);
  const Waveform vout = Waveform::from_tran(result, tb.output_signal);
  EXPECT_NEAR(vout.value(0.0), spec.vcc, 0.01);
  EXPECT_NEAR(vout.value(result.time.back()), 0.0, 0.01);
}
