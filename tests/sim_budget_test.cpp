// Run-budget enforcement inside the analyses: a budget-stopped transient
// returns a flagged partial result with diagnostics instead of hanging or
// throwing, and every limit reports the right BudgetStop.
#include <gtest/gtest.h>

#include <string>

#include "devices/capacitor.hpp"
#include "devices/resistor.hpp"
#include "devices/sources.hpp"
#include "fault_injection.hpp"
#include "sim/analyses.hpp"
#include "util/budget.hpp"
#include "util/error.hpp"

namespace sd = softfet::devices;
namespace ss = softfet::sim;
namespace su = softfet::util;
using softfet::testing::FaultDevice;
using softfet::testing::FaultMode;

namespace {

constexpr double kTstop = 1e-9;

/// Ramp-driven RC bench; `storm_dt > 0` attaches an event-storm fault that
/// reports a breakpoint every storm_dt within [200 ps, tstop].
ss::Circuit make_bench(double storm_dt = 0.0) {
  ss::Circuit c;
  const auto in = c.node("in");
  const auto out = c.node("out");
  c.add<sd::VSource>("Vin", in, ss::kGroundNode,
                     sd::SourceSpec::ramp(0.0, 1.0, 100e-12, 30e-12));
  c.add<sd::Resistor>("R1", in, out, 1e3);
  c.add<sd::Capacitor>("C1", out, ss::kGroundNode, 1e-15);
  if (storm_dt > 0.0) {
    c.add<FaultDevice>("FLT1", out, FaultMode::kEventStorm, 200e-12, kTstop,
                       /*fault_budget=*/-1, storm_dt);
  }
  return c;
}

}  // namespace

TEST(Budget, UnlimitedRunCompletesUnflagged) {
  auto c = make_bench();
  const auto result = ss::run_transient(c, kTstop);
  EXPECT_FALSE(result.truncated);
  EXPECT_EQ(result.stop_reason, su::BudgetStop::kNone);
  EXPECT_NEAR(result.time.back(), kTstop, 1e-15);
}

TEST(Budget, EventStormHitsWallClockAndTruncates) {
  // An event storm near the PTM thresholds used to be the unbounded-runtime
  // failure mode: every reported event forces a time cut, so a 1 fs storm
  // over 800 ps is ~1e6 forced steps. The wall-clock budget must stop it
  // and hand back the partial waveform with diagnostics, not hang or throw.
  auto c = make_bench(/*storm_dt=*/1e-15);
  ss::SimOptions options;
  options.budget.max_wall_seconds = 0.2;
  const auto result = ss::run_transient(c, kTstop, options);
  EXPECT_TRUE(result.truncated);
  EXPECT_EQ(result.stop_reason, su::BudgetStop::kWallClock);
  // Partial waveform: it got past the storm start but nowhere near tstop.
  ASSERT_FALSE(result.time.empty());
  EXPECT_LT(result.time.back(), kTstop);
  // Structured diagnostics say why and where it stopped.
  EXPECT_EQ(result.diagnostics.analysis, "transient");
  EXPECT_NE(result.diagnostics.failure.find("wall-clock"), std::string::npos)
      << result.diagnostics.failure;
}

TEST(Budget, AcceptedStepCapTruncates) {
  auto c = make_bench();
  ss::SimOptions options;
  options.budget.max_accepted_steps = 5;
  const auto result = ss::run_transient(c, kTstop, options);
  EXPECT_TRUE(result.truncated);
  EXPECT_EQ(result.stop_reason, su::BudgetStop::kAcceptedSteps);
  EXPECT_EQ(result.accepted_steps, 5u);
  EXPECT_LT(result.time.back(), kTstop);
}

TEST(Budget, NewtonIterationCapTruncates) {
  auto c = make_bench();
  ss::SimOptions options;
  options.budget.max_newton_iterations = 3;
  const auto result = ss::run_transient(c, kTstop, options);
  EXPECT_TRUE(result.truncated);
  EXPECT_EQ(result.stop_reason, su::BudgetStop::kNewtonIterations);
  EXPECT_LT(result.time.back(), kTstop);
}

TEST(Budget, PreTrippedCancelStopsBeforeFirstStep) {
  auto c = make_bench();
  su::CancelToken token;
  token.request();
  ss::SimOptions options;
  options.budget.cancel = &token;
  const auto result = ss::run_transient(c, kTstop, options);
  EXPECT_TRUE(result.truncated);
  EXPECT_EQ(result.stop_reason, su::BudgetStop::kCancel);
  // Cancelled before the operating point: no accepted waveform points.
  EXPECT_TRUE(result.time.empty());
  EXPECT_EQ(result.accepted_steps, 0u);
}

TEST(Budget, CancelledOperatingPointThrowsBudgetError) {
  auto c = make_bench();
  su::CancelToken token;
  token.request();
  ss::SimOptions options;
  options.budget.cancel = &token;
  try {
    (void)ss::dc_operating_point(c, options);
    FAIL() << "expected BudgetExceededError";
  } catch (const softfet::BudgetExceededError& e) {
    EXPECT_EQ(e.stop(), su::BudgetStop::kCancel);
  }
}

TEST(Budget, ResultStaysDeterministicUnderStepCap) {
  // The budget layer must not perturb the accepted trajectory: a capped run
  // is an exact prefix of the uncapped run.
  auto c_full = make_bench();
  const auto full = ss::run_transient(c_full, kTstop);
  auto c_capped = make_bench();
  ss::SimOptions options;
  options.budget.max_accepted_steps = 8;
  const auto capped = ss::run_transient(c_capped, kTstop, options);
  ASSERT_LE(capped.time.size(), full.time.size());
  for (std::size_t i = 0; i < capped.time.size(); ++i) {
    EXPECT_EQ(capped.time[i], full.time[i]) << "index " << i;
  }
}
