// NDJSON protocol unit tests: JSON parse/dump round trips, pinpointed
// parse errors (line/column), request validation, retry classification and
// backoff bounds, and the mapping of netlist-relative error positions back
// to columns of the original request line (walking the \n escapes).
#include "service/protocol.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>

#include "netlist/parser.hpp"
#include "service/json.hpp"
#include "service/retry.hpp"
#include "util/error.hpp"

namespace ss = softfet::service;
using softfet::BudgetExceededError;
using softfet::ConvergenceError;
using softfet::Error;
using softfet::ParseError;

TEST(Json, ParsesScalarsAndContainers) {
  const ss::JsonValue v = ss::json_parse(
      R"({"a": 1, "b": -2.5e3, "c": "x\ny", "d": [true, false, null], "e": {}})");
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.number_or("a", 0), 1.0);
  EXPECT_EQ(v.number_or("b", 0), -2500.0);
  EXPECT_EQ(v.get("c")->as_string(), "x\ny");
  ASSERT_TRUE(v.get("d")->is_array());
  EXPECT_EQ(v.get("d")->items().size(), 3u);
  EXPECT_TRUE(v.get("d")->items()[0].as_bool());
  EXPECT_TRUE(v.get("d")->items()[2].is_null());
  EXPECT_TRUE(v.get("e")->is_object());
  EXPECT_EQ(v.get("missing"), nullptr);
}

TEST(Json, DumpIsDeterministicAndRoundTrips) {
  ss::JsonValue obj = ss::JsonValue::object();
  obj.set("z", ss::JsonValue::number(5));          // integral: no fraction
  obj.set("a", ss::JsonValue::number(0.1));        // %.17g round trip
  obj.set("s", ss::JsonValue::string("tab\there"));
  const std::string text = obj.dump();
  // Insertion order is preserved (z before a), making transcripts stable.
  EXPECT_LT(text.find("\"z\""), text.find("\"a\""));
  EXPECT_NE(text.find("\"z\":5,"), std::string::npos) << text;
  const ss::JsonValue back = ss::json_parse(text);
  EXPECT_EQ(back.number_or("z", 0), 5.0);
  EXPECT_EQ(back.number_or("a", 0), 0.1);  // bitwise via %.17g
  EXPECT_EQ(back.get("s")->as_string(), "tab\there");
}

TEST(Json, UnicodeEscapesDecodeToUtf8) {
  const ss::JsonValue v = ss::json_parse(R"({"s": "µA → pk"})");
  EXPECT_EQ(v.get("s")->as_string(), "\xC2\xB5" "A \xE2\x86\x92 pk");
}

TEST(Json, NonFiniteNumbersSerializeAsNull) {
  ss::JsonValue obj = ss::JsonValue::object();
  obj.set("inf", ss::JsonValue::number(INFINITY));
  obj.set("nan", ss::JsonValue::number(NAN));
  EXPECT_EQ(obj.dump(), R"({"inf":null,"nan":null})");
}

TEST(Json, ParseErrorsCarryLineAndColumn) {
  try {
    (void)ss::json_parse("{\n  \"a\": }");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 2);
    EXPECT_GT(e.column(), 0);
  }
  // Trailing garbage after a complete document is an error, not ignored.
  EXPECT_THROW((void)ss::json_parse("{} trailing"), ParseError);
  // Unterminated string.
  EXPECT_THROW((void)ss::json_parse(R"({"a": "oops})"), ParseError);
  // Depth bomb: 100 nested arrays exceed the parser's recursion bound.
  std::string bomb(100, '[');
  bomb += std::string(100, ']');
  EXPECT_THROW((void)ss::json_parse(bomb), ParseError);
}

TEST(Protocol, ParseRequestValidatesIdAndType) {
  const ss::Request req = ss::parse_request(
      R"({"id": "j1", "type": "netlist", "netlist": "x"})");
  EXPECT_EQ(req.id, "j1");
  EXPECT_EQ(req.type, "netlist");
  EXPECT_NE(req.payload.get("netlist"), nullptr);
  EXPECT_FALSE(req.raw_line.empty());

  EXPECT_THROW((void)ss::parse_request(R"({"type": "netlist"})"), Error);
  EXPECT_THROW((void)ss::parse_request(R"({"id": "x"})"), Error);
  EXPECT_THROW((void)ss::parse_request(R"({"id": 7, "type": "t"})"), Error);
  EXPECT_THROW((void)ss::parse_request(R"([1,2,3])"), Error);
  EXPECT_THROW((void)ss::parse_request("not json"), ParseError);
}

TEST(Protocol, MakeEventShape) {
  const ss::JsonValue ev = ss::make_event("job-9", 3, "started");
  EXPECT_EQ(ev.dump(), R"({"id":"job-9","seq":3,"event":"started"})");
}

TEST(Protocol, NetlistErrorMapsThroughEscapedNewlines) {
  // The embedded netlist has its "error" on netlist line 3; the error is
  // synthesized (rather than produced by the frontend) to pin the mapping
  // itself.
  const std::string raw =
      R"({"id":"j","type":"netlist","netlist":"title\nV1 a 0 1\nR1 a b oops\n.end"})";
  const ParseError error("element R1 needs a value", /*line=*/3);
  const ss::NetlistErrorPosition pos = ss::map_netlist_error(error, raw);
  EXPECT_EQ(pos.netlist_line, 3);
  EXPECT_EQ(pos.netlist_column, 0);  // the netlist tokenizer tracks lines only
  ASSERT_TRUE(pos.request_column.has_value());
  // The mapped 1-based column must point at the 'R' of "R1 a b oops"
  // inside the raw request line.
  EXPECT_EQ(raw[*pos.request_column - 1], 'R');
  EXPECT_EQ(raw.substr(*pos.request_column - 1, 4), "R1 a");
}

TEST(Protocol, NetlistErrorMappingUsesColumnsWhenAvailable) {
  const std::string raw =
      R"({"id":"j","type":"netlist","netlist":"t\nabcdef"})";
  const ParseError error("bad char", /*line=*/2, /*column=*/3);
  const ss::NetlistErrorPosition pos = ss::map_netlist_error(error, raw);
  EXPECT_EQ(pos.netlist_line, 2);
  EXPECT_EQ(pos.netlist_column, 3);
  ASSERT_TRUE(pos.request_column.has_value());
  EXPECT_EQ(raw[*pos.request_column - 1], 'c');  // 3rd char of "abcdef"
}

TEST(Protocol, NetlistErrorMappingAbsentWithoutNetlistKey) {
  const ParseError error("nope", 1);
  const ss::NetlistErrorPosition pos =
      ss::map_netlist_error(error, R"({"id":"j","type":"x"})");
  EXPECT_FALSE(pos.request_column.has_value());
}

TEST(Protocol, RealFrontendErrorMapsIntoRequestLine) {
  // End to end: a genuinely malformed embedded netlist, the real frontend
  // error, and the mapping against the exact NDJSON encoding the service
  // would have received.
  ss::JsonValue req = ss::JsonValue::object();
  req.set("id", ss::JsonValue::string("j"));
  req.set("type", ss::JsonValue::string("netlist"));
  const std::string netlist = "title line\nV1 in 0 1\n.tran\n.end\n";
  req.set("netlist", ss::JsonValue::string(netlist));
  const std::string raw = req.dump();
  try {
    (void)softfet::netlist::parse(netlist);
    FAIL() << "expected the frontend to reject .tran without arguments";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 3);
    const ss::NetlistErrorPosition pos = ss::map_netlist_error(e, raw);
    EXPECT_EQ(pos.netlist_line, 3);
    ASSERT_TRUE(pos.request_column.has_value());
    // The mapped column lands inside the escaped netlist string, on the
    // offending netlist line's first character (the '.' of ".tran").
    EXPECT_EQ(raw.substr(*pos.request_column - 1, 5), ".tran");
  }
}

TEST(Retry, ClassifiesFailures) {
  EXPECT_EQ(ss::classify_failure(ConvergenceError("newton diverged")),
            ss::FailureClass::kTransient);
  EXPECT_EQ(ss::classify_failure(BudgetExceededError(
                "wall clock", softfet::util::BudgetStop::kWallClock)),
            ss::FailureClass::kTerminal);
  EXPECT_EQ(ss::classify_failure(BudgetExceededError(
                "cancelled", softfet::util::BudgetStop::kCancel)),
            ss::FailureClass::kCancelled);
  EXPECT_EQ(ss::classify_failure(ParseError("bad", 1)),
            ss::FailureClass::kTerminal);
  EXPECT_EQ(ss::classify_failure(std::runtime_error("bug")),
            ss::FailureClass::kTerminal);
}

TEST(Retry, BackoffBoundsAndDeterminism) {
  ss::RetryPolicy policy;
  policy.base_backoff_ms = 100;
  policy.backoff_multiplier = 4.0;
  policy.max_backoff_ms = 1000;
  policy.jitter = 0.5;

  EXPECT_EQ(ss::backoff_ms(policy, 1, 7), 0u);  // no sleep before attempt 1
  for (int attempt = 2; attempt <= 5; ++attempt) {
    const double base =
        std::min(100.0 * std::pow(4.0, attempt - 2), 1000.0);
    for (std::uint64_t seed : {1ull, 99ull, 123456789ull}) {
      const unsigned ms = ss::backoff_ms(policy, attempt, seed);
      EXPECT_GE(ms, static_cast<unsigned>(base * 0.5) - 1) << attempt;
      EXPECT_LE(ms, static_cast<unsigned>(base) + 1) << attempt;
      // Deterministic per (seed, attempt).
      EXPECT_EQ(ms, ss::backoff_ms(policy, attempt, seed));
    }
  }
  // Distinct seeds decorrelate (not all equal across a few draws).
  const unsigned a = ss::backoff_ms(policy, 3, 1);
  const unsigned b = ss::backoff_ms(policy, 3, 2);
  const unsigned c = ss::backoff_ms(policy, 3, 3);
  EXPECT_TRUE(a != b || b != c);

  policy.jitter = 0.0;  // fully deterministic: exact exponential
  EXPECT_EQ(ss::backoff_ms(policy, 2, 42), 100u);
  EXPECT_EQ(ss::backoff_ms(policy, 3, 42), 400u);
  EXPECT_EQ(ss::backoff_ms(policy, 4, 42), 1000u);  // capped
}

TEST(Retry, Fnv1a64MatchesReference) {
  EXPECT_EQ(ss::fnv1a64(""), 0xCBF29CE484222325ull);
  EXPECT_EQ(ss::fnv1a64("a"), 0xAF63DC4C8601EC8Cull);
  EXPECT_NE(ss::fnv1a64("netlist-a"), ss::fnv1a64("netlist-b"));
}

// ---------------------------------------------------------------------------
// Dynamic retry_after_ms: the overload hint scales with queue depth and
// the mean of recent job latencies (DESIGN.md §5g) instead of parroting a
// constant. Needs a live Server, but stays protocol-level: only the
// `rejected` event's advertised hint is under test.
// ---------------------------------------------------------------------------

#include <chrono>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "service/server.hpp"

namespace {

/// Minimal thread-safe line collector for the hint tests.
class HintCollector {
 public:
  ss::Sink sink() {
    return [this](const std::string& line) {
      const std::lock_guard<std::mutex> lock(mutex_);
      lines_.push_back(line);
    };
  }
  [[nodiscard]] std::vector<ss::JsonValue> events(const std::string& id) const {
    const std::lock_guard<std::mutex> lock(mutex_);
    std::vector<ss::JsonValue> out;
    for (const auto& line : lines_) {
      ss::JsonValue v = ss::json_parse(line);
      if (v.string_or("id", "") == id) out.push_back(std::move(v));
    }
    return out;
  }
  /// Blocks (bounded) until `id` has seen `event`.
  [[nodiscard]] bool await(const std::string& id, const std::string& event,
                           int timeout_ms = 10000) const {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms);
    while (std::chrono::steady_clock::now() < deadline) {
      for (const auto& ev : events(id)) {
        if (ev.string_or("event", "") == event) return true;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    return false;
  }

 private:
  mutable std::mutex mutex_;
  std::vector<std::string> lines_;
};

}  // namespace

TEST(Protocol, RetryAfterHintTracksQueueDepthAndLatency) {
  ss::ServerConfig config;
  config.workers = 1;
  config.queue_capacity = 1;
  config.retry_after_ms = 1;  // the configured floor
  const auto owned = std::make_unique<ss::Server>(config);
  ss::Server& server = *owned;
  server.register_handler("slow", [](const ss::Request&, ss::JobContext& ctx) {
    std::this_thread::sleep_for(std::chrono::milliseconds(120));
    ctx.finish(ss::JsonValue::object());
  });

  HintCollector out;
  const ss::Sink sink = out.sink();

  // No latency history yet: the server has nothing honest to extrapolate
  // from, so an overload rejection advertises exactly the floor.
  server.handle_line(R"({"id":"a0","type":"slow"})", sink);
  ASSERT_TRUE(out.await("a0", "started"));  // worker busy, queue empty
  server.handle_line(R"({"id":"a1","type":"slow"})", sink);  // fills queue
  server.handle_line(R"({"id":"a2","type":"slow"})", sink);  // sheds
  {
    const auto rejected = out.events("a2");
    ASSERT_EQ(rejected.size(), 1u);
    ASSERT_EQ(rejected.front().string_or("event", ""), "rejected");
    EXPECT_EQ(rejected.front().number_or("retry_after_ms", -1), 1.0);
  }
  server.wait_idle();  // a0 and a1 complete: two ~120 ms latency samples

  // With history, the hint grows to depth x mean latency / workers: one
  // queued job at a ~120 ms mean must advertise roughly that long a wait,
  // not the 1 ms floor.
  server.handle_line(R"({"id":"b0","type":"slow"})", sink);
  ASSERT_TRUE(out.await("b0", "started"));
  server.handle_line(R"({"id":"b1","type":"slow"})", sink);  // fills queue
  server.handle_line(R"({"id":"b2","type":"slow"})", sink);  // sheds
  {
    const auto rejected = out.events("b2");
    ASSERT_EQ(rejected.size(), 1u);
    ASSERT_EQ(rejected.front().string_or("event", ""), "rejected");
    const double hint = rejected.front().number_or("retry_after_ms", -1);
    EXPECT_GE(hint, 50.0);     // well above the floor: latency-derived
    EXPECT_LE(hint, 60000.0);  // and inside the advertised ceiling
  }
  server.wait_idle();
}
