// RunBudget / CancelToken / BudgetTimer unit tests: limit arithmetic,
// check ordering, and the unlimited fast path.
#include "util/budget.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>

namespace su = softfet::util;

TEST(CancelToken, RequestIsStickyUntilReset) {
  su::CancelToken token;
  EXPECT_FALSE(token.requested());
  token.request();
  EXPECT_TRUE(token.requested());
  token.request();  // idempotent
  EXPECT_TRUE(token.requested());
  token.reset();
  EXPECT_FALSE(token.requested());
}

TEST(RunBudget, DefaultIsUnlimited) {
  const su::RunBudget budget;
  EXPECT_TRUE(budget.unlimited());
}

TEST(RunBudget, AnyLimitMakesItLimited) {
  su::CancelToken token;
  su::RunBudget budget;
  budget.max_wall_seconds = 1.0;
  EXPECT_FALSE(budget.unlimited());
  budget = {};
  budget.max_accepted_steps = 1;
  EXPECT_FALSE(budget.unlimited());
  budget = {};
  budget.max_newton_iterations = 1;
  EXPECT_FALSE(budget.unlimited());
  budget = {};
  budget.cancel = &token;
  EXPECT_FALSE(budget.unlimited());
}

TEST(BudgetTimer, DefaultTimerNeverStops) {
  const su::BudgetTimer timer;
  EXPECT_EQ(timer.check(1u << 20, 1u << 20), su::BudgetStop::kNone);
  EXPECT_EQ(timer.check_now(), su::BudgetStop::kNone);
}

TEST(BudgetTimer, AcceptedStepCapTripsAtLimit) {
  su::RunBudget budget;
  budget.max_accepted_steps = 10;
  const su::BudgetTimer timer(budget);
  EXPECT_EQ(timer.check(9, 0), su::BudgetStop::kNone);
  EXPECT_EQ(timer.check(10, 0), su::BudgetStop::kAcceptedSteps);
  EXPECT_EQ(timer.check(11, 0), su::BudgetStop::kAcceptedSteps);
  // check_now is the cheap inner-loop variant: no step accounting.
  EXPECT_EQ(timer.check_now(), su::BudgetStop::kNone);
}

TEST(BudgetTimer, NewtonIterationCapTripsAtLimit) {
  su::RunBudget budget;
  budget.max_newton_iterations = 100;
  const su::BudgetTimer timer(budget);
  EXPECT_EQ(timer.check(0, 99), su::BudgetStop::kNone);
  EXPECT_EQ(timer.check(0, 100), su::BudgetStop::kNewtonIterations);
}

TEST(BudgetTimer, WallClockDeadlinePasses) {
  su::RunBudget budget;
  budget.max_wall_seconds = 1e-3;
  const su::BudgetTimer timer(budget);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_EQ(timer.check(0, 0), su::BudgetStop::kWallClock);
  EXPECT_EQ(timer.check_now(), su::BudgetStop::kWallClock);
}

TEST(BudgetTimer, CancelWinsOverEveryOtherLimit) {
  // Cancellation must report as kCancel even when a hard limit tripped at
  // the same check point: Ctrl-C exit codes depend on it.
  su::CancelToken token;
  su::RunBudget budget;
  budget.max_wall_seconds = 1e-6;
  budget.max_accepted_steps = 1;
  budget.max_newton_iterations = 1;
  budget.cancel = &token;
  const su::BudgetTimer timer(budget);
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  EXPECT_EQ(timer.check(100, 100), su::BudgetStop::kWallClock);
  token.request();
  EXPECT_EQ(timer.check(100, 100), su::BudgetStop::kCancel);
  EXPECT_EQ(timer.check_now(), su::BudgetStop::kCancel);
}

TEST(BudgetTimer, UntrippedLimitsReportNone) {
  su::CancelToken token;
  su::RunBudget budget;
  budget.max_wall_seconds = 3600.0;
  budget.max_accepted_steps = 1000;
  budget.max_newton_iterations = 1000;
  budget.cancel = &token;
  const su::BudgetTimer timer(budget);
  EXPECT_EQ(timer.check(999, 999), su::BudgetStop::kNone);
  EXPECT_EQ(timer.check_now(), su::BudgetStop::kNone);
}

TEST(BudgetStop, ToStringCoversEveryValue) {
  EXPECT_STREQ(su::to_string(su::BudgetStop::kNone), "within budget");
  EXPECT_NE(std::string(su::to_string(su::BudgetStop::kCancel)), "");
  EXPECT_NE(std::string(su::to_string(su::BudgetStop::kWallClock)), "");
  EXPECT_NE(std::string(su::to_string(su::BudgetStop::kAcceptedSteps)), "");
  EXPECT_NE(std::string(su::to_string(su::BudgetStop::kNewtonIterations)), "");
}
