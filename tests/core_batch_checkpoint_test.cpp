// Checkpoint/resume interop between the batched lockstep engine and the
// scalar oracle: a killed batched run resumes bitwise-identically, and a
// checkpoint written by either engine restores under the other. The
// payloads are engine-agnostic (hexfloat sample metrics keyed by index), so
// lane width is a pure execution detail — these tests pin that down.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "core/checkpointing.hpp"
#include "core/variation.hpp"
#include "devices/ptm.hpp"
#include "util/budget.hpp"
#include "util/error.hpp"

namespace sc = softfet::core;
namespace sd = softfet::devices;
namespace su = softfet::util;

namespace {

softfet::cells::InverterTestbenchSpec soft_base() {
  softfet::cells::InverterTestbenchSpec spec;
  spec.input_transition = 30e-12;
  spec.input_rising = false;
  spec.dut.ptm = sd::PtmParams{};
  return spec;
}

struct TempFile {
  explicit TempFile(const std::string& name)
      : path(::testing::TempDir() + name) {
    std::remove(path.c_str());
  }
  ~TempFile() {
    std::remove(path.c_str());
    std::remove((path + ".tmp").c_str());
  }
  std::string path;
};

void copy_file(const std::string& from, const std::string& to) {
  std::ifstream src(from, std::ios::binary);
  std::ofstream dst(to, std::ios::binary);
  ASSERT_TRUE(src.good());
  dst << src.rdbuf();
  ASSERT_TRUE(dst.good());
}

void expect_stats_bitwise(const sc::MonteCarloStats& a,
                          const sc::MonteCarloStats& b) {
  EXPECT_EQ(a.samples, b.samples);
  EXPECT_EQ(a.failed_samples, b.failed_samples);
  EXPECT_EQ(a.imax_mean, b.imax_mean);
  EXPECT_EQ(a.imax_std, b.imax_std);
  EXPECT_EQ(a.imax_worst, b.imax_worst);
  EXPECT_EQ(a.delay_mean, b.delay_mean);
  EXPECT_EQ(a.delay_std, b.delay_std);
  EXPECT_EQ(a.delay_worst, b.delay_worst);
  EXPECT_EQ(a.fraction_below_baseline, b.fraction_below_baseline);
}

/// Kill a batched run by cooperative cancel at sample `kill_at` (a block
/// boundary, so the cut is deterministic: the batch draws a whole 8-lane
/// block before simulating it, and cancel-poisoned samples are never
/// persisted). Returns nothing; the checkpoint file holds samples
/// [0, kill_at).
void run_killed_batched(const sc::MonteCarloSpec& base, std::size_t kill_at) {
  su::CancelToken token;
  softfet::sim::SimOptions options;
  options.budget.cancel = &token;

  auto killed = base;
  killed.lanes = 8;
  killed.per_sample_hook = [&](std::size_t k,
                               softfet::cells::InverterTestbenchSpec&) {
    if (k == kill_at) token.request();
  };
  try {
    (void)sc::ptm_monte_carlo(soft_base(), killed, options);
    FAIL() << "expected BudgetExceededError";
  } catch (const softfet::BudgetExceededError& e) {
    EXPECT_EQ(e.stop(), su::BudgetStop::kCancel);
  }
}

}  // namespace

// A batched run killed at a block boundary resumes — under either engine —
// to statistics bitwise equal to an uninterrupted scalar-oracle run, and
// the resume only simulates the samples the killed run never finished.
TEST(BatchCheckpoint, BatchedKilledRunResumesUnderBothEngines) {
  TempFile batched_file("mc_batch_resume.ckpt");
  TempFile scalar_file("mc_batch_resume_scalar.ckpt");

  sc::MonteCarloSpec mc;
  mc.samples = 16;
  mc.seed = 7;
  mc.threads = 1;
  mc.checkpoint.path = batched_file.path;
  mc.checkpoint.flush_every = 1;

  run_killed_batched(mc, 8);
  // Same partial checkpoint, one copy per resume direction.
  copy_file(batched_file.path, scalar_file.path);

  // Uninterrupted scalar-oracle reference, no checkpoint.
  auto reference_spec = mc;
  reference_spec.checkpoint = sc::CheckpointSpec{};
  reference_spec.lanes = 1;
  const auto reference = sc::ptm_monte_carlo(soft_base(), reference_spec);

  for (const int lanes : {8, 1}) {
    SCOPED_TRACE("resume lanes=" + std::to_string(lanes));
    auto resumed_spec = mc;
    resumed_spec.lanes = lanes;
    resumed_spec.checkpoint.path =
        lanes == 8 ? batched_file.path : scalar_file.path;
    std::vector<std::size_t> simulated;
    resumed_spec.per_sample_hook =
        [&](std::size_t k, softfet::cells::InverterTestbenchSpec&) {
          simulated.push_back(k);
        };
    const auto resumed = sc::ptm_monte_carlo(soft_base(), resumed_spec);
    std::sort(simulated.begin(), simulated.end());
    EXPECT_EQ(simulated,
              (std::vector<std::size_t>{8, 9, 10, 11, 12, 13, 14, 15}));
    expect_stats_bitwise(resumed, reference);
  }
}

// The reverse interop: a checkpoint written by the scalar oracle restores
// under the batched engine (the direction a user upgrading an in-flight
// long study actually hits).
TEST(BatchCheckpoint, ScalarKilledRunResumesUnderBatchedEngine) {
  TempFile file("mc_scalar_to_batch.ckpt");
  sc::MonteCarloSpec mc;
  mc.samples = 8;
  mc.seed = 42;
  mc.threads = 1;
  mc.checkpoint.path = file.path;
  mc.checkpoint.flush_every = 1;

  su::CancelToken token;
  softfet::sim::SimOptions options;
  options.budget.cancel = &token;
  auto killed = mc;
  killed.lanes = 1;  // scalar per-sample sequencing: kill point is exact
  killed.per_sample_hook = [&](std::size_t k,
                               softfet::cells::InverterTestbenchSpec&) {
    if (k == 4) token.request();
  };
  try {
    (void)sc::ptm_monte_carlo(soft_base(), killed, options);
    FAIL() << "expected BudgetExceededError";
  } catch (const softfet::BudgetExceededError& e) {
    EXPECT_EQ(e.stop(), su::BudgetStop::kCancel);
  }

  auto resumed_spec = mc;
  resumed_spec.lanes = 8;
  std::vector<std::size_t> simulated;
  resumed_spec.per_sample_hook =
      [&](std::size_t k, softfet::cells::InverterTestbenchSpec&) {
        simulated.push_back(k);
      };
  const auto resumed = sc::ptm_monte_carlo(soft_base(), resumed_spec);
  std::sort(simulated.begin(), simulated.end());
  EXPECT_EQ(simulated, (std::vector<std::size_t>{4, 5, 6, 7}));

  auto reference_spec = mc;
  reference_spec.checkpoint = sc::CheckpointSpec{};
  reference_spec.lanes = 1;
  const auto reference = sc::ptm_monte_carlo(soft_base(), reference_spec);
  expect_stats_bitwise(resumed, reference);
}
