// Application case studies (paper Section V / Figs. 10-11).
#include <gtest/gtest.h>

#include "core/case_studies.hpp"

namespace sc = softfet::cells;
using softfet::core::run_io_buffer_study;
using softfet::core::run_power_gate_study;

TEST(PowerGateStudy, SoftGateCutsInrushAndDroop) {
  const auto study = run_power_gate_study(sc::PowerGateSpec{});
  // Paper Fig. 10: ~2x peak current reduction, ~20 mV less droop.
  EXPECT_GT(study.current_reduction_factor(), 1.5);
  EXPECT_LT(study.current_reduction_factor(), 4.0);
  EXPECT_GT(study.droop_improvement(), 10e-3);
  EXPECT_LT(study.droop_improvement(), 60e-3);
  // The cost: a slower wake.
  EXPECT_GT(study.soft.wake_time, study.baseline.wake_time);
  // Both variants finished waking within the window.
  EXPECT_LT(study.soft.wake_time, 20e-9);
}

TEST(PowerGateStudy, DroopsAreMeasuredAfterSettling) {
  const auto study = run_power_gate_study(sc::PowerGateSpec{});
  EXPECT_GT(study.baseline.droop, 20e-3);
  EXPECT_LT(study.baseline.droop, 150e-3);
  EXPECT_GT(study.soft.droop, 0.0);
}

TEST(PowerGateStudy, StrongerHeaderMoreDroop) {
  sc::PowerGateSpec weak;
  weak.header_m = 100.0;
  sc::PowerGateSpec strong;
  strong.header_m = 400.0;
  const auto weak_study = run_power_gate_study(weak);
  const auto strong_study = run_power_gate_study(strong);
  EXPECT_GT(strong_study.baseline.droop, weak_study.baseline.droop);
  EXPECT_GT(strong_study.baseline.peak_current,
            weak_study.baseline.peak_current);
}

TEST(IoBufferStudy, SoftDriverCutsSsn) {
  const auto study = run_io_buffer_study(sc::IoBufferSpec{});
  // Paper Fig. 11: ~46% SSN reduction, ~8.8% energy efficiency at 1 V.
  EXPECT_GT(study.ssn_reduction_pct(), 30.0);
  EXPECT_LT(study.ssn_reduction_pct(), 75.0);
  EXPECT_GT(study.energy_efficiency_gain_pct(1.0), 4.0);
  EXPECT_LT(study.energy_efficiency_gain_pct(1.0), 20.0);
  // Slower pad edge is the cost.
  EXPECT_GT(study.soft.pad_delay, study.baseline.pad_delay);
}

TEST(IoBufferStudy, SsnImprovementGrowsWithTransitionTime) {
  // Paper Fig. 11 inset: higher SSN improvement with increasing input
  // transition times.
  sc::IoBufferSpec fast;
  fast.input_transition = 50e-12;
  sc::IoBufferSpec slow;
  slow.input_transition = 400e-12;
  const auto fast_study = run_io_buffer_study(fast);
  const auto slow_study = run_io_buffer_study(slow);
  EXPECT_GE(slow_study.ssn_reduction_pct(),
            fast_study.ssn_reduction_pct() - 5.0);
}

TEST(IoBufferStudy, BouncePolarity) {
  const auto study = run_io_buffer_study(sc::IoBufferSpec{});
  EXPECT_GT(study.baseline.gnd_bounce, 0.0);
  EXPECT_GT(study.baseline.vcc_bounce, 0.0);
  EXPECT_GT(study.baseline.peak_current, study.soft.peak_current);
}
