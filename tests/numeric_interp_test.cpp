#include <gtest/gtest.h>

#include "numeric/interp.hpp"
#include "util/error.hpp"

namespace sn = softfet::numeric;

TEST(PwlCurve, InterpolatesAndClamps) {
  const sn::PwlCurve curve({{0.0, 0.0}, {1.0, 2.0}, {3.0, 2.0}});
  EXPECT_DOUBLE_EQ(curve.value(-1.0), 0.0);  // clamp left
  EXPECT_DOUBLE_EQ(curve.value(0.5), 1.0);
  EXPECT_DOUBLE_EQ(curve.value(2.0), 2.0);
  EXPECT_DOUBLE_EQ(curve.value(9.0), 2.0);  // clamp right
}

TEST(PwlCurve, Slope) {
  const sn::PwlCurve curve({{0.0, 0.0}, {2.0, 4.0}});
  EXPECT_DOUBLE_EQ(curve.slope(1.0), 2.0);
  EXPECT_DOUBLE_EQ(curve.slope(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(curve.slope(5.0), 0.0);
}

TEST(PwlCurve, RejectsUnsortedPoints) {
  EXPECT_THROW(sn::PwlCurve({{1.0, 0.0}, {0.5, 1.0}}), softfet::Error);
  EXPECT_THROW(sn::PwlCurve({{1.0, 0.0}, {1.0, 1.0}}), softfet::Error);
}

TEST(PwlCurve, EmptyIsZero) {
  const sn::PwlCurve curve;
  EXPECT_TRUE(curve.empty());
  EXPECT_DOUBLE_EQ(curve.value(1.0), 0.0);
}

TEST(LerpSorted, Basic) {
  const std::vector<double> xs{0.0, 1.0, 2.0};
  const std::vector<double> ys{0.0, 10.0, 0.0};
  EXPECT_DOUBLE_EQ(sn::lerp_sorted(xs, ys, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(sn::lerp_sorted(xs, ys, 1.5), 5.0);
  EXPECT_DOUBLE_EQ(sn::lerp_sorted(xs, ys, -1.0), 0.0);
  EXPECT_DOUBLE_EQ(sn::lerp_sorted(xs, ys, 3.0), 0.0);
}

TEST(LerpSorted, SizeMismatchThrows) {
  EXPECT_THROW((void)sn::lerp_sorted({0.0}, {}, 0.0), softfet::Error);
}
