// AC small-signal analysis validated against closed-form transfer
// functions.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "devices/capacitor.hpp"
#include "devices/controlled.hpp"
#include "devices/inductor.hpp"
#include "devices/mosfet.hpp"
#include "devices/resistor.hpp"
#include "devices/sources.hpp"
#include "devices/tech40.hpp"
#include "netlist/elaborate.hpp"
#include "numeric/complex_lu.hpp"
#include "sim/ac.hpp"
#include "util/error.hpp"

namespace ss = softfet::sim;
namespace sd = softfet::devices;
namespace sn = softfet::numeric;
namespace t40 = softfet::devices::tech40;

TEST(ComplexLu, SolvesComplexSystem) {
  sn::ComplexMatrix a(2, 2);
  a(0, 0) = {1.0, 1.0};
  a(0, 1) = {0.0, -1.0};
  a(1, 0) = {2.0, 0.0};
  a(1, 1) = {3.0, 1.0};
  const std::vector<sn::Complex> x_true{{1.0, 2.0}, {-1.0, 0.5}};
  const auto b = a.multiply(x_true);
  const auto x = sn::ComplexLu(a).solve(b);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_NEAR(std::abs(x[i] - x_true[i]), 0.0, 1e-12);
  }
}

TEST(ComplexLu, SingularThrows) {
  sn::ComplexMatrix a(2, 2);
  a(0, 0) = {1.0, 0.0};
  a(1, 0) = {2.0, 0.0};
  EXPECT_THROW(sn::ComplexLu{a}, softfet::ConvergenceError);
}

TEST(AcSweep, RcLowPassPole) {
  ss::Circuit c;
  const auto in = c.node("in");
  const auto out = c.node("out");
  auto spec = sd::SourceSpec::dc(0.0);
  spec.set_ac_magnitude(1.0);
  c.add<sd::VSource>("Vin", in, ss::kGroundNode, spec);
  c.add<sd::Resistor>("R1", in, out, 1e3);
  c.add<sd::Capacitor>("C1", out, ss::kGroundNode, 1e-9);
  // f_3dB = 1/(2 pi RC) = 159.2 kHz.
  const double f3db = 1.0 / (2.0 * std::numbers::pi * 1e3 * 1e-9);
  const auto result = ss::ac_sweep(c, {f3db / 100.0, f3db, 100.0 * f3db});
  const auto mag = result.magnitude("v(out)");
  EXPECT_NEAR(mag[0], 1.0, 1e-3);
  EXPECT_NEAR(mag[1], 1.0 / std::sqrt(2.0), 1e-3);
  EXPECT_NEAR(mag[2], 0.01, 1e-3);
  const auto phase = result.phase_deg("v(out)");
  EXPECT_NEAR(phase[1], -45.0, 0.5);
}

TEST(AcSweep, RlcResonancePeak) {
  // Series R-L with shunt C: the rail impedance peaks at the LC resonance.
  ss::Circuit c;
  const auto rail = c.node("rail");
  auto iac = sd::SourceSpec::dc(0.0);
  iac.set_ac_magnitude(1.0);  // 1 A probe into the rail
  c.add<sd::ISource>("Iprobe", ss::kGroundNode, rail, iac);
  const auto mid = c.node("mid");
  c.add<sd::Inductor>("L1", ss::kGroundNode, mid, 1e-9);
  c.add<sd::Resistor>("R1", mid, rail, 10e-3);
  c.add<sd::Capacitor>("C1", rail, ss::kGroundNode, 100e-12);
  const double f0 =
      1.0 / (2.0 * std::numbers::pi * std::sqrt(1e-9 * 100e-12));  // 503 MHz
  const auto freqs = ss::decade_frequencies(1e6, 100e9, 20);
  const auto result = ss::ac_sweep(c, freqs);
  const auto z = result.magnitude("v(rail)");  // 1 A probe: |V| = |Z|
  // Find the peak.
  std::size_t peak = 0;
  for (std::size_t i = 1; i < z.size(); ++i) {
    if (z[i] > z[peak]) peak = i;
  }
  EXPECT_NEAR(std::log10(freqs[peak]), std::log10(f0), 0.2);
  // Far below resonance: |Z| ~ wL (inductive, small). Far above: capacitor
  // shorts it. At resonance: |Z| >> R (high-Q parallel resonance).
  EXPECT_GT(z[peak], 10.0 * 10e-3);
}

TEST(AcSweep, InductorShortsAtDc) {
  ss::Circuit c;
  const auto in = c.node("in");
  const auto out = c.node("out");
  auto spec = sd::SourceSpec::dc(0.0);
  spec.set_ac_magnitude(1.0);
  c.add<sd::VSource>("Vin", in, ss::kGroundNode, spec);
  c.add<sd::Inductor>("L1", in, out, 1e-6);
  c.add<sd::Resistor>("R1", out, ss::kGroundNode, 50.0);
  const auto result = ss::ac_sweep(c, {1.0, 1e9});
  const auto mag = result.magnitude("v(out)");
  EXPECT_NEAR(mag[0], 1.0, 1e-3);   // 1 Hz: inductor ~ short
  EXPECT_LT(mag[1], 0.05);          // 1 GHz: wL = 6.3k >> 50
}

TEST(AcSweep, CommonSourceAmpGain) {
  // NMOS common-source amplifier: |gain| = gm*Rload at low frequency.
  ss::Circuit c;
  const auto vdd = c.node("vdd");
  const auto g = c.node("g");
  const auto d = c.node("d");
  c.add<sd::VSource>("Vdd", vdd, ss::kGroundNode, sd::SourceSpec::dc(1.0));
  auto vg = sd::SourceSpec::dc(0.5);
  vg.set_ac_magnitude(1.0);
  c.add<sd::VSource>("Vg", g, ss::kGroundNode, vg);
  c.add<sd::Resistor>("RL", vdd, d, 20e3);
  auto* m = c.add<sd::Mosfet>("M1", d, g, ss::kGroundNode, ss::kGroundNode,
                              t40::nmos(), t40::min_nmos_dims());
  const auto op = ss::dc_operating_point(c);
  const auto eq = sd::mosfet_evaluate(t40::nmos(), t40::min_nmos_dims(), 0.5,
                                      op.voltage("d"));
  (void)m;
  const double expected_gain =
      eq.gm * (1.0 / (1.0 / 20e3 + eq.gds));
  const auto result = ss::ac_sweep(c, {1e3});
  EXPECT_NEAR(result.magnitude("v(d)")[0], expected_gain,
              0.05 * expected_gain);
  // Inverting stage: ~180 degrees.
  EXPECT_NEAR(std::fabs(result.phase_deg("v(d)")[0]), 180.0, 2.0);
}

TEST(AcSweep, VcvsIsFrequencyFlat) {
  ss::Circuit c;
  const auto in = c.node("in");
  const auto out = c.node("out");
  auto spec = sd::SourceSpec::dc(0.0);
  spec.set_ac_magnitude(0.5);
  c.add<sd::VSource>("Vin", in, ss::kGroundNode, spec);
  c.add<sd::Vcvs>("E1", out, ss::kGroundNode, in, ss::kGroundNode, 4.0);
  c.add<sd::Resistor>("RL", out, ss::kGroundNode, 1e3);
  const auto result = ss::ac_sweep(c, {10.0, 1e6, 1e12});
  for (const double m : result.magnitude("v(out)")) EXPECT_NEAR(m, 2.0, 1e-6);
}

TEST(AcSweep, DecadeFrequencies) {
  const auto freqs = ss::decade_frequencies(1.0, 1000.0, 1);
  ASSERT_EQ(freqs.size(), 4u);
  EXPECT_NEAR(freqs[3], 1000.0, 1e-9);
  EXPECT_THROW((void)ss::decade_frequencies(0.0, 10.0, 1), softfet::Error);
  EXPECT_THROW((void)ss::decade_frequencies(10.0, 1.0, 1), softfet::Error);
}

TEST(AcSweep, NetlistAcDirective) {
  auto net = softfet::netlist::compile_netlist(R"(ac rc
V1 in 0 DC 0 AC 1
R1 in out 1k
C1 out 0 1n
.ac dec 2 1k 10meg
)");
  ASSERT_TRUE(net.ac.has_value());
  const auto freqs = net.ac->frequencies();
  EXPECT_GE(freqs.size(), 8u);
  const auto result = ss::ac_sweep(*net.circuit, freqs);
  const auto mag = result.magnitude("v(out)");
  EXPECT_NEAR(mag.front(), 1.0, 1e-2);
  EXPECT_LT(mag.back(), 0.05);
}

TEST(AcSweep, QuietSourceGivesZeroResponse) {
  ss::Circuit c;
  const auto in = c.node("in");
  c.add<sd::VSource>("Vin", in, ss::kGroundNode, sd::SourceSpec::dc(1.0));
  c.add<sd::Resistor>("R1", in, ss::kGroundNode, 1e3);
  const auto result = ss::ac_sweep(c, {1e6});
  EXPECT_NEAR(result.magnitude("v(in)")[0], 0.0, 1e-12);
}
