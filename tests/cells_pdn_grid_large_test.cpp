// Large mesh-PDN transients: the direct (auto-ordered) policy against the
// preconditioned-iterative policy on a grid big enough for ordering and
// the Krylov path to engage. Registered with the `grid-large` ctest label
// and a long timeout in tests/CMakeLists.txt; sanitizer CI excludes the
// label so instrumented runs stay bounded.
#include <gtest/gtest.h>

#include "cells/pdn.hpp"
#include "devices/sources.hpp"
#include "measure/metrics.hpp"
#include "measure/waveform.hpp"
#include "sim/analyses.hpp"

namespace sc = softfet::cells;
namespace sd = softfet::devices;
namespace ss = softfet::sim;
using softfet::measure::Waveform;

namespace {

sc::PdnGrid build_grid(ss::Circuit& c, std::size_t side) {
  const auto grid = sc::make_pdn_grid(
      c, "pdn",
      sc::PdnGridParams::from_lumped(sc::PdnParams::zhang_islped13(), side,
                                     side));
  c.add<sd::ISource>("Iload", grid.tile(side / 4, side / 4), ss::kGroundNode,
                     sd::SourceSpec::pulse(0.0, 20e-3, 1e-9, 100e-12, 100e-12,
                                           1.0));
  return grid;
}

}  // namespace

TEST(PdnGridLarge, IterativePolicyMatchesDirectOnMesh) {
  constexpr std::size_t kSide = 32;

  ss::Circuit direct_c;
  const auto grid = build_grid(direct_c, kSide);
  ss::SimOptions direct_opt;  // default: kDirect policy, kAuto ordering
  const auto direct = ss::run_transient(direct_c, 4e-9, direct_opt);
  EXPECT_TRUE(direct.diagnostics.reordered);
  EXPECT_GT(direct.diagnostics.fill_ratio, 1.0);
  EXPECT_EQ(direct.diagnostics.krylov_solves, 0u);
  EXPECT_EQ(direct.diagnostics.symbolic_analyses, 1u);

  ss::Circuit iter_c;
  build_grid(iter_c, kSide);
  ss::SimOptions iter_opt;
  iter_opt.solver_policy = softfet::numeric::SolverPolicy::kIterative;
  const auto iterative = ss::run_transient(iter_c, 4e-9, iter_opt);
  EXPECT_GT(iterative.diagnostics.krylov_solves, 0u);
  // The iterative run answers most solves from the stale factorization.
  EXPECT_LT(iterative.diagnostics.refactorizations,
            direct.diagnostics.refactorizations);

  const Waveform rail_d =
      Waveform::from_tran(direct, grid.tile_signal(kSide / 4, kSide / 4));
  const Waveform rail_i =
      Waveform::from_tran(iterative, grid.tile_signal(kSide / 4, kSide / 4));
  for (int i = 1; i <= 20; ++i) {
    const double t = 4e-9 * i / 20.0;
    EXPECT_NEAR(rail_i.value(t), rail_d.value(t), 1e-6) << "t=" << t;
  }
}

TEST(PdnGridLarge, AutoPolicyStaysDirectWhenFillIsModest) {
  // AMD keeps mesh fill well under the auto trigger's explosive-fill
  // threshold, so kAuto behaves exactly like kDirect here.
  ss::Circuit c;
  build_grid(c, 24);
  ss::SimOptions options;
  options.solver_policy = softfet::numeric::SolverPolicy::kAuto;
  const auto result = ss::run_transient(c, 3e-9, options);
  EXPECT_EQ(result.diagnostics.krylov_solves, 0u);
  EXPECT_TRUE(result.diagnostics.reordered);
}
