// Design-space, T_PTM, slew, and ratio sweeps (paper Figs. 6, 8, 9, IV.E).
#include <gtest/gtest.h>

#include <algorithm>

#include "core/sweeps.hpp"
#include "devices/ptm.hpp"
#include "util/error.hpp"

namespace sd = softfet::devices;
namespace sc = softfet::core;

namespace {
softfet::cells::InverterTestbenchSpec soft_base() {
  softfet::cells::InverterTestbenchSpec spec;
  spec.input_transition = 30e-12;
  spec.input_rising = false;
  spec.dut.ptm = sd::PtmParams{};
  return spec;
}
}  // namespace

TEST(Sweeps, RequireSoftFetBase) {
  softfet::cells::InverterTestbenchSpec plain;
  EXPECT_THROW((void)sc::sweep_vimt_vmit(plain, {0.4}, {0.1}), softfet::Error);
  EXPECT_THROW((void)sc::sweep_tptm(plain, {1e-12}), softfet::Error);
  EXPECT_THROW((void)sc::sweep_slew(plain, {1e-12}), softfet::Error);
  EXPECT_THROW((void)sc::sweep_slew_tptm_ratio(plain, {1e-12}, {1e-12}),
               softfet::Error);
}

TEST(Sweeps, DesignSpaceSkipsInfeasiblePoints) {
  const auto points =
      sc::sweep_vimt_vmit(soft_base(), {0.2, 0.4}, {0.1, 0.3});
  // (0.2, 0.3) infeasible -> 3 points remain.
  ASSERT_EQ(points.size(), 3u);
  for (const auto& p : points) EXPECT_LT(p.v_mit, p.v_imt);
}

TEST(Sweeps, TransitionCountDecreasesWithVimt) {
  // Paper Fig. 6 mechanism: lower V_IMT thresholds re-fire more often.
  const auto points = sc::sweep_vimt_vmit(
      soft_base(), {0.25, 0.35, 0.45, 0.55}, {0.2});
  ASSERT_EQ(points.size(), 4u);
  EXPECT_GE(points.front().metrics.imt_count,
            points.back().metrics.imt_count);
  EXPECT_GE(points.front().metrics.imt_count, 2);
}

TEST(Sweeps, DidtGrowsWithVimt) {
  // Paper Fig. 6: max di/dt increases with V_IMT (single bigger jump).
  const auto points =
      sc::sweep_vimt_vmit(soft_base(), {0.25, 0.55}, {0.2});
  ASSERT_EQ(points.size(), 2u);
  EXPECT_GT(points.back().metrics.max_didt,
            points.front().metrics.max_didt);
}

TEST(Sweeps, TptmSweepShapes) {
  const auto points = sc::sweep_tptm(
      soft_base(), {2e-12, 10e-12, 50e-12, 150e-12});
  ASSERT_EQ(points.size(), 4u);
  // Very large T_PTM behaves like a slow constant-R gate: delay grows.
  EXPECT_GT(points.back().metrics.delay, points[1].metrics.delay);
  // All points still switch.
  for (const auto& p : points) EXPECT_GE(p.metrics.imt_count, 1);
}

TEST(Sweeps, SlewSweepReductionShrinksWithSlowerInput) {
  // Paper Fig. 9: soft switching vanishes as the input slows.
  const auto points =
      sc::sweep_slew(soft_base(), {10e-12, 30e-12, 300e-12});
  ASSERT_EQ(points.size(), 3u);
  EXPECT_GT(points[0].imax_reduction_pct(), 25.0);
  EXPECT_GT(points[0].imax_reduction_pct(), points[2].imax_reduction_pct());
  // Baseline metrics come from the PTM-free twin.
  EXPECT_EQ(points[0].baseline.imt_count, 0);
}

TEST(Sweeps, RatioSweepFindsPaperWindow) {
  // Paper IV.E: best operation near slew/T_PTM of 1.5-3.
  const auto points = sc::sweep_slew_tptm_ratio(
      soft_base(), {15e-12, 30e-12, 60e-12}, {5e-12, 10e-12, 20e-12});
  ASSERT_EQ(points.size(), 9u);
  // The best I_MAX reduction in the grid sits at a ratio in [1, 6].
  const auto best = std::max_element(
      points.begin(), points.end(), [](const auto& a, const auto& b) {
        return a.imax_reduction_pct < b.imax_reduction_pct;
      });
  EXPECT_GE(best->ratio, 0.75);
  EXPECT_LE(best->ratio, 12.0);
  EXPECT_GT(best->imax_reduction_pct, 20.0);
  // Ratios are self-consistent.
  for (const auto& p : points) {
    EXPECT_NEAR(p.ratio, p.slew / p.t_ptm, 1e-9);
  }
}
