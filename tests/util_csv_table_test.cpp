#include <gtest/gtest.h>

#include <sstream>

#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/table.hpp"

namespace su = softfet::util;

TEST(Csv, HeaderAndRows) {
  std::ostringstream out;
  su::CsvWriter writer(out, {"t", "v"});
  writer.write_row({0.0, 1.5});
  writer.write_row({1e-9, 2.5});
  EXPECT_EQ(out.str(), "t,v\n0,1.5\n1e-09,2.5\n");
  EXPECT_EQ(writer.rows_written(), 2u);
}

TEST(Csv, RowWidthMismatchThrows) {
  std::ostringstream out;
  su::CsvWriter writer(out, {"a", "b"});
  EXPECT_THROW(writer.write_row({1.0}), softfet::Error);
}

TEST(Csv, EscapeQuotesAndCommas) {
  EXPECT_EQ(su::csv_escape("plain"), "plain");
  EXPECT_EQ(su::csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(su::csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(Table, AlignedOutput) {
  su::TextTable table({"name", "value"});
  table.add_row({"alpha", "1"});
  table.add_row({"b", "22222"});
  std::ostringstream out;
  table.print(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("| name  | value |"), std::string::npos);
  EXPECT_NE(text.find("| alpha | 1     |"), std::string::npos);
  EXPECT_EQ(table.row_count(), 2u);
}

TEST(Table, RowValuesFormatting) {
  su::TextTable table({"x"});
  table.add_row_values({3.14159265});
  std::ostringstream out;
  table.print(out);
  EXPECT_NE(out.str().find("3.142"), std::string::npos);
}

TEST(Table, WidthMismatchThrows) {
  su::TextTable table({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), softfet::Error);
}

TEST(Ndjson, RowsAreJsonObjects) {
  std::ostringstream out;
  su::NdjsonWriter writer(out, {"t", "v(out)"});
  writer.write_row({1e-9, 0.5});
  writer.write_row({2e-9, 1.0});
  EXPECT_EQ(out.str(),
            "{\"t\":1e-09,\"v(out)\":0.5}\n{\"t\":2e-09,\"v(out)\":1}\n");
  EXPECT_EQ(writer.rows_written(), 2u);
}

TEST(Ndjson, WidthMismatchThrows) {
  std::ostringstream out;
  su::NdjsonWriter writer(out, {"a"});
  EXPECT_THROW(writer.write_row({1.0, 2.0}), softfet::Error);
}

TEST(Ndjson, JsonEscape) {
  EXPECT_EQ(su::json_escape("plain"), "plain");
  EXPECT_EQ(su::json_escape("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(su::json_escape("a\nb"), "a\\nb");
  EXPECT_EQ(su::json_escape("back\\slash"), "back\\\\slash");
}

TEST(Table, FmtG) {
  EXPECT_EQ(su::fmt_g(0.000123), "0.000123");
  EXPECT_EQ(su::fmt_g(1234567.0, 3), "1.23e+06");
}
