// Relaxed-determinism mode (SimOptions::determinism = kRelaxedUlp) vs the
// scalar bitwise oracle: trajectories and Monte-Carlo statistics agree
// within the tolerance oracle for every lane width and thread count,
// relaxed results are themselves bitwise reproducible across lane packings
// (the kernels are elementwise, so packing is a pure execution detail),
// and the checkpoint tag guard refuses strict<->relaxed resume in both
// directions.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "cells/inverter.hpp"
#include "core/checkpointing.hpp"
#include "core/variation.hpp"
#include "devices/ptm.hpp"
#include "sim/analyses.hpp"
#include "sim/batch.hpp"
#include "tolerance_oracle.hpp"
#include "util/budget.hpp"
#include "util/error.hpp"

namespace sc = softfet::core;
namespace sd = softfet::devices;
namespace ss = softfet::sim;
namespace su = softfet::util;
namespace st = softfet::testing;

namespace {

// Oracle budgets for relaxed mode. The kernels diverge from libm by
// <= 8 ULP (~1e-15 relative), but the transient loop amplifies that
// discontinuously: LTE accept/reject decisions flip and the PTM threshold
// events shift by femtoseconds, so the two runs take different adaptive
// grids. Voltages (continuous) get a 1e-3 amplitude budget with a ±0.5 ps
// event-shift window; the ps-wide current spikes are sampled at different
// grid phases, so their pointwise budget is 10% while their net charge
// (sampling-immune) must match to 1e-3; statistics get 2e-3 relative
// (observed worst ~6e-4 on delay_std — delay is quantized by the step
// controller at the few-fs level). A real model error (wrong formula,
// swapped lane) lands orders of magnitude outside all of these.
constexpr double kTranRtol = 1e-3;
constexpr double kTranSpikeRtol = 0.1;
constexpr double kTranTimeTol = 0.5e-12;
constexpr double kStatsRtol = 2e-3;

softfet::cells::InverterTestbenchSpec soft_base() {
  softfet::cells::InverterTestbenchSpec spec;
  spec.input_transition = 30e-12;
  spec.input_rising = false;
  spec.dut.ptm = sd::PtmParams{};
  return spec;
}

ss::SimOptions relaxed_options() {
  ss::SimOptions options;
  options.determinism = ss::Determinism::kRelaxedUlp;
  return options;
}

void expect_stats_bitwise(const sc::MonteCarloStats& a,
                          const sc::MonteCarloStats& b) {
  EXPECT_EQ(a.samples, b.samples);
  EXPECT_EQ(a.failed_samples, b.failed_samples);
  EXPECT_EQ(a.imax_mean, b.imax_mean);
  EXPECT_EQ(a.imax_std, b.imax_std);
  EXPECT_EQ(a.imax_worst, b.imax_worst);
  EXPECT_EQ(a.delay_mean, b.delay_mean);
  EXPECT_EQ(a.delay_std, b.delay_std);
  EXPECT_EQ(a.delay_worst, b.delay_worst);
  EXPECT_EQ(a.fraction_below_baseline, b.fraction_below_baseline);
}

struct TempFile {
  explicit TempFile(const std::string& name)
      : path(::testing::TempDir() + name) {
    std::remove(path.c_str());
  }
  ~TempFile() {
    std::remove(path.c_str());
    std::remove((path + ".tmp").c_str());
  }
  std::string path;
};

}  // namespace

// The default is — and must stay — the bitwise contract: a freshly
// constructed SimOptions runs the batched engine in kBitwise mode, whose
// results equal the scalar oracle bit for bit (the full memcmp suite in
// core_batch_equivalence_test runs on exactly these defaults).
TEST(RelaxedEquivalence, DefaultModeIsBitwise) {
  ss::SimOptions options;
  EXPECT_EQ(options.determinism, ss::Determinism::kBitwise);
  EXPECT_STREQ(ss::to_string(ss::Determinism::kBitwise), "bitwise");
  EXPECT_STREQ(ss::to_string(ss::Determinism::kRelaxedUlp), "relaxed");

  // Pin the explicit-enum path too, not just the default: a batch run with
  // determinism set to kBitwise by hand is bitwise equal to scalar.
  auto spec = soft_base();
  auto scalar_bench = softfet::cells::make_inverter_testbench(spec);
  const auto scalar =
      ss::run_transient(scalar_bench.circuit, scalar_bench.suggested_tstop);

  auto bench_a = softfet::cells::make_inverter_testbench(spec);
  auto bench_b = softfet::cells::make_inverter_testbench(spec);
  std::vector<ss::BatchLaneSpec> lanes;
  lanes.push_back({&bench_a.circuit, bench_a.suggested_tstop});
  lanes.push_back({&bench_b.circuit, bench_b.suggested_tstop});
  ss::SimOptions explicit_bitwise;
  explicit_bitwise.determinism = ss::Determinism::kBitwise;
  const auto outcomes = ss::run_transient_batch(lanes, explicit_bitwise);
  ASSERT_EQ(outcomes.size(), 2u);
  for (const auto& outcome : outcomes) {
    ASSERT_FALSE(outcome.evicted) << outcome.eviction_reason;
    ASSERT_EQ(outcome.tran.time.size(), scalar.time.size());
    for (std::size_t i = 0; i < scalar.time.size(); ++i) {
      ASSERT_EQ(outcome.tran.time[i], scalar.time[i]);
    }
    for (const auto& name : scalar.table.names()) {
      const auto& a = outcome.tran.table.signal(name);
      const auto& b = scalar.table.signal(name);
      ASSERT_EQ(a.size(), b.size());
      for (std::size_t i = 0; i < b.size(); ++i) {
        ASSERT_EQ(a[i], b[i]) << name << "[" << i << "]";
      }
    }
    EXPECT_EQ(outcome.tran.diagnostics.determinism, "bitwise");
  }
}

// Relaxed batched trajectories track the scalar bitwise engine within the
// tolerance oracle, and the diagnostics echo the active mode.
TEST(RelaxedEquivalence, RelaxedTranWithinToleranceOfScalar) {
  const double v_imts[] = {0.33, 0.38, 0.44, 0.48};

  auto make_bench = [&](double v_imt) {
    auto spec = soft_base();
    spec.dut.ptm->v_imt = v_imt;
    return softfet::cells::make_inverter_testbench(spec);
  };

  std::vector<ss::TranResult> scalar;
  for (const double v_imt : v_imts) {
    auto bench = make_bench(v_imt);
    scalar.push_back(ss::run_transient(bench.circuit, bench.suggested_tstop));
  }

  std::vector<softfet::cells::InverterTestbench> benches;
  for (const double v_imt : v_imts) benches.push_back(make_bench(v_imt));
  std::vector<ss::BatchLaneSpec> lanes;
  for (auto& bench : benches) {
    lanes.push_back({&bench.circuit, bench.suggested_tstop});
  }
  const auto outcomes = ss::run_transient_batch(lanes, relaxed_options());

  ASSERT_EQ(outcomes.size(), scalar.size());
  for (std::size_t k = 0; k < outcomes.size(); ++k) {
    SCOPED_TRACE("lane " + std::to_string(k));
    ASSERT_FALSE(outcomes[k].evicted) << outcomes[k].eviction_reason;
    st::expect_tran_close(outcomes[k].tran, scalar[k], kTranRtol,
                          kTranSpikeRtol, kTranTimeTol);
    EXPECT_EQ(outcomes[k].tran.diagnostics.determinism, "relaxed");
  }
}

// Relaxed Monte-Carlo statistics pass the oracle against the scalar
// bitwise engine across lane widths {1, 4, 8, auto} and thread counts —
// the acceptance matrix. lanes=1 routes through the scalar engine, so it
// stays bitwise equal to the oracle even in relaxed mode.
TEST(RelaxedEquivalence, McStatsWithinToleranceAcrossLanesAndThreads) {
  sc::MonteCarloSpec oracle_spec;
  oracle_spec.samples = 23;
  oracle_spec.seed = 42;
  oracle_spec.threads = 1;
  oracle_spec.lanes = 1;
  const auto oracle = sc::ptm_monte_carlo(soft_base(), oracle_spec);
  ASSERT_EQ(oracle.failed_samples, 0);

  for (const int lanes : {1, 4, 8, 0}) {
    for (const int threads : {1, 3}) {
      auto spec = oracle_spec;
      spec.lanes = lanes;
      spec.threads = threads;
      const auto got =
          sc::ptm_monte_carlo(soft_base(), spec, relaxed_options());
      SCOPED_TRACE("lanes=" + std::to_string(lanes) +
                   " threads=" + std::to_string(threads));
      if (lanes == 1) {
        expect_stats_bitwise(got, oracle);
      } else {
        st::expect_stats_close(got, oracle, kStatsRtol);
      }
    }
  }
}

// Lane packing is a pure execution detail even in relaxed mode: the
// kernels are elementwise (element i depends only on input i), so the same
// sample produces the same bits whether it runs in a 4-lane block, an
// 8-lane block, or a ragged tail — and for any thread count.
TEST(RelaxedEquivalence, RelaxedResultsBitwiseAcrossLanePackings) {
  sc::MonteCarloSpec base_spec;
  base_spec.samples = 23;
  base_spec.seed = 42;
  base_spec.threads = 1;
  base_spec.lanes = 4;
  const auto reference =
      sc::ptm_monte_carlo(soft_base(), base_spec, relaxed_options());

  for (const int lanes : {8, 7, 0}) {
    for (const int threads : {1, 3}) {
      auto spec = base_spec;
      spec.lanes = lanes;
      spec.threads = threads;
      const auto got =
          sc::ptm_monte_carlo(soft_base(), spec, relaxed_options());
      SCOPED_TRACE("lanes=" + std::to_string(lanes) +
                   " threads=" + std::to_string(threads));
      expect_stats_bitwise(got, reference);
    }
  }
}

// Checkpoint determinism guard: a file written under one mode refuses to
// resume under the other, in both directions, with a diagnosable message.
TEST(RelaxedCheckpoint, CrossModeResumeRefusedBothWays) {
  TempFile bitwise_file("mc_det_bitwise.ckpt");
  TempFile relaxed_file("mc_det_relaxed.ckpt");

  sc::MonteCarloSpec mc;
  mc.samples = 4;
  mc.seed = 7;
  mc.threads = 1;
  mc.checkpoint.flush_every = 1;

  // Write one checkpoint per mode.
  mc.checkpoint.path = bitwise_file.path;
  (void)sc::ptm_monte_carlo(soft_base(), mc);
  mc.checkpoint.path = relaxed_file.path;
  (void)sc::ptm_monte_carlo(soft_base(), mc, relaxed_options());

  // bitwise file + relaxed run -> refused with the mode in the message.
  mc.checkpoint.path = bitwise_file.path;
  try {
    (void)sc::ptm_monte_carlo(soft_base(), mc, relaxed_options());
    FAIL() << "expected determinism-mode refusal";
  } catch (const softfet::Error& e) {
    EXPECT_NE(std::string(e.what()).find("determinism mode 'bitwise'"),
              std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("relaxed"), std::string::npos)
        << e.what();
  }

  // relaxed file + bitwise run -> refused the other way around.
  mc.checkpoint.path = relaxed_file.path;
  try {
    (void)sc::ptm_monte_carlo(soft_base(), mc);
    FAIL() << "expected determinism-mode refusal";
  } catch (const softfet::Error& e) {
    EXPECT_NE(std::string(e.what()).find("determinism mode 'relaxed'"),
              std::string::npos)
        << e.what();
  }

  // A genuinely different study must still get the generic tag-mismatch
  // refusal, not a bogus determinism diagnosis.
  auto other = mc;
  other.seed = 8;
  other.checkpoint.path = relaxed_file.path;
  try {
    (void)sc::ptm_monte_carlo(soft_base(), other, relaxed_options());
    FAIL() << "expected tag-mismatch refusal";
  } catch (const softfet::Error& e) {
    EXPECT_EQ(std::string(e.what()).find("determinism mode"),
              std::string::npos)
        << e.what();
  }
}

// Same-mode relaxed resume: a killed relaxed batched run resumes to
// statistics bitwise equal to an uninterrupted relaxed run (stronger than
// the within-tolerance requirement — hexfloat payloads plus deterministic
// kernels make the resume exact).
TEST(RelaxedCheckpoint, SameModeRelaxedResumeReproduces) {
  TempFile file("mc_det_relaxed_resume.ckpt");

  sc::MonteCarloSpec mc;
  mc.samples = 16;
  mc.seed = 7;
  mc.threads = 1;
  mc.lanes = 8;
  mc.checkpoint.path = file.path;
  mc.checkpoint.flush_every = 1;

  // Kill at the second block's first sample: the checkpoint holds block 0.
  {
    su::CancelToken token;
    auto options = relaxed_options();
    options.budget.cancel = &token;
    auto killed = mc;
    killed.per_sample_hook = [&](std::size_t k,
                                 softfet::cells::InverterTestbenchSpec&) {
      if (k == 8) token.request();
    };
    try {
      (void)sc::ptm_monte_carlo(soft_base(), killed, options);
      FAIL() << "expected BudgetExceededError";
    } catch (const softfet::BudgetExceededError& e) {
      EXPECT_EQ(e.stop(), su::BudgetStop::kCancel);
    }
  }

  // Uninterrupted relaxed reference without a checkpoint.
  auto reference_spec = mc;
  reference_spec.checkpoint = sc::CheckpointSpec{};
  const auto reference =
      sc::ptm_monte_carlo(soft_base(), reference_spec, relaxed_options());

  // Resume under relaxed mode: only the unfinished samples simulate.
  std::vector<std::size_t> simulated;
  auto resumed_spec = mc;
  resumed_spec.per_sample_hook =
      [&](std::size_t k, softfet::cells::InverterTestbenchSpec&) {
        simulated.push_back(k);
      };
  const auto resumed =
      sc::ptm_monte_carlo(soft_base(), resumed_spec, relaxed_options());
  std::sort(simulated.begin(), simulated.end());
  EXPECT_EQ(simulated, (std::vector<std::size_t>{8, 9, 10, 11, 12, 13, 14, 15}));
  expect_stats_bitwise(resumed, reference);
}
