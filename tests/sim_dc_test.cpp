#include <gtest/gtest.h>

#include "devices/controlled.hpp"
#include "devices/diode.hpp"
#include "devices/resistor.hpp"
#include "devices/sources.hpp"
#include "devices/vswitch.hpp"
#include "sim/analyses.hpp"
#include "util/error.hpp"

namespace ss = softfet::sim;
namespace sd = softfet::devices;

TEST(DcOp, VoltageDivider) {
  ss::Circuit c;
  const auto vin = c.node("in");
  const auto mid = c.node("mid");
  c.add<sd::VSource>("V1", vin, ss::kGroundNode, sd::SourceSpec::dc(10.0));
  c.add<sd::Resistor>("R1", vin, mid, 1e3);
  c.add<sd::Resistor>("R2", mid, ss::kGroundNode, 3e3);
  const auto op = ss::dc_operating_point(c);
  EXPECT_NEAR(op.voltage("mid"), 7.5, 1e-6);
  EXPECT_NEAR(op.voltage("in"), 10.0, 1e-9);
  // SPICE sign convention: source delivering current reads negative.
  EXPECT_NEAR(op.unknown("i(v1)"), -10.0 / 4e3, 1e-9);
}

TEST(DcOp, CurrentSourceIntoResistor) {
  ss::Circuit c;
  const auto n1 = c.node("n1");
  // 1 mA pulled from ground into n1 (source from n1 to ground pushes
  // current n1 -> gnd; to get +1V we drive gnd -> n1).
  c.add<sd::ISource>("I1", ss::kGroundNode, n1, sd::SourceSpec::dc(1e-3));
  c.add<sd::Resistor>("R1", n1, ss::kGroundNode, 1e3);
  const auto op = ss::dc_operating_point(c);
  EXPECT_NEAR(op.voltage("n1"), 1.0, 1e-6);
}

TEST(DcOp, VcvsGain) {
  ss::Circuit c;
  const auto in = c.node("in");
  const auto out = c.node("out");
  c.add<sd::VSource>("V1", in, ss::kGroundNode, sd::SourceSpec::dc(0.25));
  c.add<sd::Vcvs>("E1", out, ss::kGroundNode, in, ss::kGroundNode, 4.0);
  c.add<sd::Resistor>("RL", out, ss::kGroundNode, 1e3);
  const auto op = ss::dc_operating_point(c);
  EXPECT_NEAR(op.voltage("out"), 1.0, 1e-6);
}

TEST(DcOp, VccsTransconductance) {
  ss::Circuit c;
  const auto in = c.node("in");
  const auto out = c.node("out");
  c.add<sd::VSource>("V1", in, ss::kGroundNode, sd::SourceSpec::dc(2.0));
  // i = gm*v(in) = 2 mA flows out -> gnd through the source; the resistor
  // then develops -2 V at `out`.
  c.add<sd::Vccs>("G1", out, ss::kGroundNode, in, ss::kGroundNode, 1e-3);
  c.add<sd::Resistor>("RL", out, ss::kGroundNode, 1e3);
  const auto op = ss::dc_operating_point(c);
  EXPECT_NEAR(op.voltage("out"), -2.0, 1e-6);
}

TEST(DcOp, DiodeForwardDrop) {
  ss::Circuit c;
  const auto vin = c.node("in");
  const auto va = c.node("a");
  c.add<sd::VSource>("V1", vin, ss::kGroundNode, sd::SourceSpec::dc(5.0));
  c.add<sd::Resistor>("R1", vin, va, 1e3);
  c.add<sd::Diode>("D1", va, ss::kGroundNode);
  const auto op = ss::dc_operating_point(c);
  const double vd = op.voltage("a");
  EXPECT_GT(vd, 0.4);
  EXPECT_LT(vd, 0.8);
  // KCL: diode current equals resistor current.
  double id = 0.0;
  double gd = 0.0;
  sd::Diode::evaluate({}, vd, id, gd);
  EXPECT_NEAR(id, (5.0 - vd) / 1e3, 1e-6);
}

TEST(DcOp, SwitchOnOff) {
  ss::Circuit c;
  const auto ctrl = c.node("ctrl");
  const auto out = c.node("out");
  const auto vdd = c.node("vdd");
  c.add<sd::VSource>("Vdd", vdd, ss::kGroundNode, sd::SourceSpec::dc(1.0));
  auto* vc = c.add<sd::VSource>("Vc", ctrl, ss::kGroundNode,
                                sd::SourceSpec::dc(1.0));
  c.add<sd::VSwitch>("S1", vdd, out, ctrl, ss::kGroundNode,
                     sd::VSwitchParams{10.0, 1e9, 0.5, 0.02});
  c.add<sd::Resistor>("RL", out, ss::kGroundNode, 1e3);
  auto op = ss::dc_operating_point(c);
  EXPECT_GT(op.voltage("out"), 0.97);  // on: tiny drop across 10 ohm

  vc->set_dc(0.0);
  op = ss::dc_operating_point(c);
  EXPECT_LT(op.voltage("out"), 0.01);  // off
}

TEST(DcSweep, ResistorLadderTracksSource) {
  ss::Circuit c;
  const auto in = c.node("in");
  const auto mid = c.node("mid");
  c.add<sd::VSource>("Vs", in, ss::kGroundNode, sd::SourceSpec::dc(0.0));
  c.add<sd::Resistor>("R1", in, mid, 2e3);
  c.add<sd::Resistor>("R2", mid, ss::kGroundNode, 2e3);
  const std::vector<double> values{0.0, 0.5, 1.0, 1.5, 2.0};
  const auto sweep = ss::dc_sweep(c, "Vs", values);
  ASSERT_EQ(sweep.axis.size(), values.size());
  const auto& vm = sweep.table.signal("v(mid)");
  for (std::size_t i = 0; i < values.size(); ++i) {
    EXPECT_NEAR(vm[i], values[i] / 2.0, 1e-6);
  }
}

TEST(DcSweep, UnknownSourceThrows) {
  ss::Circuit c;
  c.add<sd::Resistor>("R1", c.node("a"), ss::kGroundNode, 1e3);
  EXPECT_THROW((void)ss::dc_sweep(c, "Vmissing", {0.0}),
               softfet::InvalidCircuitError);
  EXPECT_THROW((void)ss::dc_sweep(c, "R1", {0.0}),
               softfet::InvalidCircuitError);
}

TEST(DcOp, FloatingNodePinnedByGmin) {
  ss::Circuit c;
  (void)c.node("float");
  c.add<sd::Resistor>("R1", c.node("a"), c.node("float"), 1e3);
  c.add<sd::VSource>("V1", c.node("a"), ss::kGroundNode,
                     sd::SourceSpec::dc(1.0));
  const auto op = ss::dc_operating_point(c);
  // No DC path from "float" to ground except gmin: it floats to v(a).
  EXPECT_NEAR(op.voltage("float"), 1.0, 1e-3);
}
