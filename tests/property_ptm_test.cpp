// Property-based PTM checks over parameter cards and both resistance laws.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "devices/capacitor.hpp"
#include "devices/ptm.hpp"
#include "devices/resistor.hpp"
#include "devices/sources.hpp"
#include "measure/waveform.hpp"
#include "sim/analyses.hpp"

namespace sd = softfet::devices;
namespace ss = softfet::sim;
using sd::Ptm;
using sd::PtmParams;
using sd::PtmResistanceLaw;
using softfet::measure::Waveform;

namespace {

// (r_ins, r_met, v_imt, v_mit, t_ptm, law)
using PtmCard = std::tuple<double, double, double, double, double,
                           PtmResistanceLaw>;

class PtmProperty : public ::testing::TestWithParam<PtmCard> {
 protected:
  [[nodiscard]] PtmParams params() const {
    PtmParams p;
    std::tie(p.r_ins, p.r_met, p.v_imt, p.v_mit, p.t_ptm, p.law) = GetParam();
    return p;
  }
};

}  // namespace

TEST_P(PtmProperty, CardIsValid) {
  EXPECT_NO_THROW(params().validate());
}

TEST_P(PtmProperty, ResistanceMonotoneDecreasingInPhase) {
  const auto p = params();
  double previous = Ptm::resistance_at(p, 0.0);
  EXPECT_NEAR(previous, p.r_ins, 1e-6 * p.r_ins);
  for (double s = 0.05; s <= 1.0001; s += 0.05) {
    const double r = Ptm::resistance_at(p, s);
    EXPECT_LT(r, previous) << "s=" << s;
    previous = r;
  }
  EXPECT_NEAR(previous, p.r_met, 1e-6 * p.r_met);
}

TEST_P(PtmProperty, ResistanceBoundedByEndpoints) {
  const auto p = params();
  for (double s = 0.0; s <= 1.0001; s += 0.1) {
    const double r = Ptm::resistance_at(p, s);
    EXPECT_GE(r, p.r_met * (1.0 - 1e-9));
    EXPECT_LE(r, p.r_ins * (1.0 + 1e-9));
  }
}

TEST_P(PtmProperty, DcHysteresisWindowRespectsThresholds) {
  // Drive the PTM directly with a swept ideal source: the IMT must fire at
  // v >= v_imt, and once metallic the device must hold until v <= v_mit.
  const auto p = params();
  ss::Circuit c;
  const auto in = c.node("in");
  c.add<sd::VSource>("Vs", in, ss::kGroundNode, sd::SourceSpec::dc(0.0));
  auto* device = c.add<Ptm>("P1", in, ss::kGroundNode, p);

  std::vector<double> up;
  std::vector<double> down;
  const double v_top = p.v_imt * 1.5;
  for (int i = 0; i <= 50; ++i) up.push_back(v_top * i / 50.0);
  for (int i = 50; i >= 0; --i) down.push_back(v_top * i / 50.0);
  std::vector<double> all = up;
  all.insert(all.end(), down.begin(), down.end());
  const auto sweep = ss::dc_sweep(c, "Vs", all);
  const auto& phase = sweep.table.signal("s(p1)");

  for (std::size_t i = 0; i < up.size(); ++i) {
    if (all[i] < p.v_imt * 0.999) {
      EXPECT_DOUBLE_EQ(phase[i], 0.0) << "up bias " << all[i];
    } else if (all[i] > p.v_imt * 1.001) {
      EXPECT_DOUBLE_EQ(phase[i], 1.0) << "up bias " << all[i];
    }
  }
  for (std::size_t i = up.size(); i < all.size(); ++i) {
    if (all[i] > p.v_mit * 1.001) {
      EXPECT_DOUBLE_EQ(phase[i], 1.0) << "down bias " << all[i];
    } else if (all[i] < p.v_mit * 0.999) {
      EXPECT_DOUBLE_EQ(phase[i], 0.0) << "down bias " << all[i];
    }
  }
  EXPECT_EQ(device->imt_count(), 1);
  EXPECT_EQ(device->mit_count(), 1);
}

TEST_P(PtmProperty, SoftChargingReachesTheRailAndCounts) {
  const auto p = params();
  ss::Circuit c;
  const auto in = c.node("in");
  const auto vc = c.node("vc");
  c.add<sd::VSource>("Vin", in, ss::kGroundNode,
                     sd::SourceSpec::ramp(0.0, 1.0, 20e-12, 30e-12));
  auto* device = c.add<Ptm>("P1", in, vc, p);
  const double cap = 0.5e-15;
  c.add<sd::Capacitor>("C1", vc, ss::kGroundNode, cap);
  // Stop after several insulating time constants so the tail completes.
  const double tstop = 50e-12 + 10.0 * p.r_ins * cap;
  const auto result = ss::run_transient(c, tstop);
  const Waveform v = Waveform::from_tran(result, "v(vc)");
  EXPECT_NEAR(v.value(tstop), 1.0, 0.03);
  // Balanced transitions: every IMT eventually re-insulates.
  EXPECT_EQ(device->imt_count(), device->mit_count());
  EXPECT_GE(device->imt_count(), 1);
  // Capacitor never overshoots the rail (passivity).
  EXPECT_LT(v.max_value(), 1.02);
}

INSTANTIATE_TEST_SUITE_P(
    Cards, PtmProperty,
    ::testing::Values(
        PtmCard{500e3, 5e3, 0.4, 0.3, 10e-12, PtmResistanceLaw::kLinear},
        PtmCard{500e3, 5e3, 0.4, 0.3, 10e-12, PtmResistanceLaw::kLogarithmic},
        PtmCard{500e3, 5e3, 0.3, 0.15, 5e-12, PtmResistanceLaw::kLinear},
        PtmCard{100e3, 1e3, 0.5, 0.1, 20e-12, PtmResistanceLaw::kLinear},
        PtmCard{2e6, 50e3, 0.25, 0.2, 2e-12, PtmResistanceLaw::kLinear},
        PtmCard{50e3, 500.0, 0.45, 0.05, 10e-12,
                PtmResistanceLaw::kLogarithmic}),
    [](const ::testing::TestParamInfo<PtmCard>& param_info) {
      return "rins" +
             std::to_string(static_cast<int>(std::get<0>(param_info.param) / 1e3)) +
             "k_vimt" +
             std::to_string(static_cast<int>(std::get<2>(param_info.param) * 100)) +
             "_vmit" +
             std::to_string(static_cast<int>(std::get<3>(param_info.param) * 100)) +
             "_t" +
             std::to_string(static_cast<int>(std::get<4>(param_info.param) * 1e12)) +
             "ps_" +
             (std::get<5>(param_info.param) == PtmResistanceLaw::kLinear ? "lin"
                                                                   : "log");
    });
