// Admission queue, compiled-netlist cache, and Server lifecycle unit
// tests: bounded non-blocking admission with load shedding, close/drain
// semantics, content-addressed cache hits/invalidation/LRU, and the
// request -> accepted/started/.../terminal event contract including retry,
// cancel, duplicate-id and oversized-netlist handling.
#include "service/server.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <filesystem>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "service/cache.hpp"
#include "service/job_queue.hpp"
#include "numeric/ordering.hpp"
#include "numeric/sparse_matrix.hpp"
#include "util/error.hpp"

namespace ss = softfet::service;
using softfet::ConvergenceError;
using softfet::Error;

namespace {

/// Thread-safe response collector: every line, in arrival order, plus a
/// parsed view for assertions.
class Collector {
 public:
  ss::Sink sink() {
    return [this](const std::string& line) {
      const std::lock_guard<std::mutex> lock(mutex_);
      lines_.push_back(line);
    };
  }
  [[nodiscard]] std::vector<std::string> lines() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return lines_;
  }
  /// Events for one job id, in arrival order, as parsed JSON.
  [[nodiscard]] std::vector<ss::JsonValue> events(const std::string& id) const {
    std::vector<ss::JsonValue> out;
    for (const auto& line : lines()) {
      ss::JsonValue v = ss::json_parse(line);
      if (v.string_or("id", "") == id) out.push_back(std::move(v));
    }
    return out;
  }
  [[nodiscard]] std::string event_chain(const std::string& id) const {
    std::string chain;
    for (const auto& ev : events(id)) {
      if (!chain.empty()) chain += ' ';
      chain += ev.string_or("event", "?");
    }
    return chain;
  }

 private:
  mutable std::mutex mutex_;
  std::vector<std::string> lines_;
};

[[nodiscard]] ss::ServerConfig test_config() {
  ss::ServerConfig config;
  config.workers = 2;
  config.queue_capacity = 8;
  config.retry.max_attempts = 2;
  config.retry.base_backoff_ms = 1;
  config.retry.max_backoff_ms = 2;
  return config;
}

}  // namespace

TEST(JobQueue, BoundedNonBlockingAdmission) {
  ss::JobQueue<int> queue(2);
  EXPECT_EQ(queue.try_push(1), ss::PushResult::kAdmitted);
  EXPECT_EQ(queue.try_push(2), ss::PushResult::kAdmitted);
  EXPECT_EQ(queue.try_push(3), ss::PushResult::kOverloaded);  // shed, no block
  EXPECT_EQ(queue.depth(), 2u);

  EXPECT_EQ(queue.pop().value(), 1);  // FIFO
  EXPECT_EQ(queue.try_push(4), ss::PushResult::kAdmitted);

  queue.close();
  EXPECT_EQ(queue.try_push(5), ss::PushResult::kClosed);
  // Queued items still drain after close; then pop signals exit.
  EXPECT_EQ(queue.pop().value(), 2);
  EXPECT_EQ(queue.pop().value(), 4);
  EXPECT_FALSE(queue.pop().has_value());
}

TEST(JobQueue, PopBlocksUntilPushOrClose) {
  ss::JobQueue<int> queue(4);
  std::atomic<int> got{-1};
  std::thread consumer([&] {
    const auto item = queue.pop();
    got.store(item.value_or(-2));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(got.load(), -1);  // still blocked
  EXPECT_EQ(queue.try_push(7), ss::PushResult::kAdmitted);
  consumer.join();
  EXPECT_EQ(got.load(), 7);

  std::thread waiter([&] { got.store(queue.pop().value_or(-2)); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  queue.close();
  waiter.join();
  EXPECT_EQ(got.load(), -2);  // closed + drained -> nullopt
}

TEST(NetlistCache, ContentAddressedHitsAndInvalidation) {
  ss::NetlistCache cache(4, 1u << 20);
  const std::string rc = "rc title\nV1 in 0 1\nR1 in out 1k\nC1 out 0 1n\n.end";

  const ss::CompiledNetlist first = cache.lookup(rc, "amd/direct");
  const ss::CompiledNetlist again = cache.lookup(rc, "amd/direct");
  EXPECT_EQ(first.ast.get(), again.ast.get());  // shared, parsed once
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);

  // Different options fingerprint must not alias the same text.
  const ss::CompiledNetlist other = cache.lookup(rc, "natural/iterative");
  EXPECT_NE(other.ast.get(), first.ast.get());
  EXPECT_EQ(cache.stats().misses, 2u);

  // A single changed character is a different netlist (content addressing,
  // not path/mtime): the stale AST must not be served.
  std::string edited = rc;
  edited.replace(edited.find("1k"), 2, "2k");
  const ss::CompiledNetlist changed = cache.lookup(edited, "amd/direct");
  EXPECT_NE(changed.ast.get(), first.ast.get());
  EXPECT_EQ(cache.stats().misses, 3u);
}

TEST(NetlistCache, LruEvictionKeepsBounds) {
  ss::NetlistCache cache(2, 1u << 20);
  const std::string a = "a\nV1 x 0 1\n.end";
  const std::string b = "b\nV1 x 0 2\n.end";
  const std::string c = "c\nV1 x 0 3\n.end";
  (void)cache.lookup(a, "f");
  (void)cache.lookup(b, "f");
  (void)cache.lookup(a, "f");  // a is now MRU
  (void)cache.lookup(c, "f");  // evicts b (LRU)
  EXPECT_EQ(cache.stats().entries, 2u);
  EXPECT_EQ(cache.stats().evictions, 1u);
  (void)cache.lookup(a, "f");  // still cached
  EXPECT_EQ(cache.stats().hits, 2u);
  (void)cache.lookup(b, "f");  // misses: b was evicted
  EXPECT_EQ(cache.stats().misses, 4u);
}

TEST(NetlistCache, ParseFailuresAreNotCached) {
  ss::NetlistCache cache(4, 1u << 20);
  const std::string bad = "title\n.tran\n.end";  // .tran needs arguments
  EXPECT_THROW((void)cache.lookup(bad, "f"), softfet::Error);
  EXPECT_THROW((void)cache.lookup(bad, "f"), softfet::Error);
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.stats().misses, 2u);
}

TEST(OrderingCache, MemoizesAmdPermutationsByPattern) {
  namespace sn = softfet::numeric;
  sn::SparseMatrix a(5);
  for (std::size_t i = 0; i < 5; ++i) {
    a.add(i, i, 4.0);
    if (i + 1 < 5) {
      a.add(i, i + 1, -1.0);
      a.add(i + 1, i, -1.0);
    }
  }
  a.add(0, 4, -0.5);
  a.add(4, 0, -0.5);

  sn::OrderingCache cache;
  const auto first = cache.order_for(a);
  const auto second = cache.order_for(a);
  EXPECT_EQ(first.get(), second.get());  // served from the memo
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  // Bitwise-neutral: the memo returns exactly what AMD computes.
  EXPECT_EQ(*first, sn::amd_order(a));

  // Same size, different pattern -> different entry.
  sn::SparseMatrix b(5);
  for (std::size_t i = 0; i < 5; ++i) b.add(i, i, 1.0);
  const auto diagonal = cache.order_for(b);
  EXPECT_NE(diagonal.get(), first.get());
  EXPECT_EQ(cache.misses(), 2u);
}

TEST(Server, JobLifecycleAndControlRequests) {
  Collector out;
  const auto owned = std::make_unique<ss::Server>(test_config());
  ss::Server& server = *owned;
  server.register_handler("echo", [](const ss::Request& req, ss::JobContext& ctx) {
    ss::JsonValue result = ss::JsonValue::object();
    result.set("echo", ss::JsonValue::string(req.payload.string_or("text", "")));
    ctx.finish(std::move(result));
  });

  server.handle_line(R"({"id":"c0","type":"ping"})", out.sink());
  server.handle_line(R"({"id":"e1","type":"echo","text":"hi"})", out.sink());
  server.wait_idle();

  EXPECT_EQ(out.event_chain("c0"), "result");
  EXPECT_EQ(out.event_chain("e1"), "accepted started result");
  const auto events = out.events("e1");
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].number_or("seq", -1), static_cast<double>(i));
  }
  EXPECT_EQ(events.back().string_or("echo", ""), "hi");

  server.handle_line(R"({"id":"s0","type":"stats"})", out.sink());
  const auto stats = out.events("s0");
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].get("stats")->number_or("admitted", -1), 1.0);
  EXPECT_EQ(stats[0].get("stats")->number_or("completed", -1), 1.0);
}

TEST(Server, MalformedAndInvalidRequestsAreRejectedStructurally) {
  Collector out;
  const auto owned = std::make_unique<ss::Server>(test_config());
  ss::Server& server = *owned;

  server.handle_line("this is not json", out.sink());
  server.handle_line(R"({"id":"x","type":"no_such_type"})", out.sink());
  server.handle_line(R"({"type":"netlist","netlist":"t"})", out.sink());
  std::string oversized = R"({"id":"big","type":"netlist","netlist":")";
  oversized += std::string(ss::ServerConfig{}.max_netlist_bytes + 1, 'x');
  oversized += R"("})";
  server.handle_line(oversized, out.sink());
  server.wait_idle();

  const auto lines = out.lines();
  ASSERT_EQ(lines.size(), 4u);
  for (const auto& line : lines) {
    const ss::JsonValue v = ss::json_parse(line);
    EXPECT_EQ(v.string_or("event", ""), "rejected") << line;
    EXPECT_EQ(v.string_or("code", ""), ss::kRejectInvalid) << line;
    EXPECT_FALSE(v.string_or("message", "").empty()) << line;
  }
  EXPECT_EQ(server.stats().rejected_invalid, 4u);
  EXPECT_EQ(server.stats().admitted, 0u);
}

TEST(Server, TransientFailuresRetryThenSucceed) {
  Collector out;
  const auto owned = std::make_unique<ss::Server>(test_config());
  ss::Server& server = *owned;
  std::atomic<int> calls{0};
  server.register_handler("flaky", [&](const ss::Request&, ss::JobContext& ctx) {
    if (calls.fetch_add(1) == 0) {
      throw ConvergenceError("newton diverged (injected)");
    }
    EXPECT_EQ(ctx.attempt, 2);
    ctx.finish(ss::JsonValue::object());
  });

  server.handle_line(R"({"id":"f1","type":"flaky"})", out.sink());
  server.wait_idle();

  EXPECT_EQ(out.event_chain("f1"), "accepted started retrying result");
  EXPECT_EQ(calls.load(), 2);
  const auto events = out.events("f1");
  EXPECT_NE(events[2].string_or("message", "").find("injected"),
            std::string::npos);
  EXPECT_EQ(server.stats().retries, 1u);
  EXPECT_EQ(server.stats().completed, 1u);
}

TEST(Server, ExhaustedRetriesBecomeStructuredErrors) {
  Collector out;
  const auto owned = std::make_unique<ss::Server>(test_config());
  ss::Server& server = *owned;  // max_attempts = 2
  server.register_handler("doomed", [](const ss::Request&, ss::JobContext&) {
    softfet::SolverDiagnostics d;
    d.analysis = "transient";
    d.failure = "newton max iterations";
    d.worst_node = "v(out)";
    throw ConvergenceError("always diverges", std::move(d));
  });

  server.handle_line(R"({"id":"d1","type":"doomed"})", out.sink());
  server.wait_idle();

  EXPECT_EQ(out.event_chain("d1"), "accepted started retrying error");
  const auto events = out.events("d1");
  const ss::JsonValue& error = events.back();
  EXPECT_EQ(error.string_or("code", ""), ss::kErrorConvergence);
  ASSERT_NE(error.get("diagnostics"), nullptr);
  EXPECT_EQ(error.get("diagnostics")->string_or("worst_node", ""), "v(out)");
  EXPECT_EQ(server.stats().failed, 1u);
}

TEST(Server, PoisonedHandlersNeverKillTheProcess) {
  Collector out;
  const auto owned = std::make_unique<ss::Server>(test_config());
  ss::Server& server = *owned;
  server.register_handler("bug", [](const ss::Request&, ss::JobContext&) {
    throw std::runtime_error("segfault-adjacent logic bug");
  });
  server.register_handler("weird", [](const ss::Request&, ss::JobContext&) {
    throw 42;  // not even a std::exception
  });
  server.register_handler("silent", [](const ss::Request&, ss::JobContext&) {
    // Returns without finish(): must surface as an internal error, not hang.
  });

  server.handle_line(R"({"id":"b1","type":"bug"})", out.sink());
  server.handle_line(R"({"id":"w1","type":"weird"})", out.sink());
  server.handle_line(R"({"id":"s1","type":"silent"})", out.sink());
  server.wait_idle();

  for (const char* id : {"b1", "w1", "s1"}) {
    const auto events = out.events(id);
    ASSERT_FALSE(events.empty()) << id;
    EXPECT_EQ(events.back().string_or("event", ""), "error") << id;
    EXPECT_EQ(events.back().string_or("code", ""), ss::kErrorInternal) << id;
  }
  EXPECT_EQ(server.stats().failed, 3u);

  // The server still serves healthy jobs afterwards.
  server.register_handler("ok", [](const ss::Request&, ss::JobContext& ctx) {
    ctx.finish(ss::JsonValue::object());
  });
  server.handle_line(R"({"id":"ok1","type":"ok"})", out.sink());
  server.wait_idle();
  EXPECT_EQ(out.event_chain("ok1"), "accepted started result");
}

TEST(Server, OverloadShedsWithRetryAfter) {
  Collector out;
  ss::ServerConfig config = test_config();
  config.workers = 1;
  config.queue_capacity = 2;
  const auto owned = std::make_unique<ss::Server>(config);
  ss::Server& server = *owned;

  std::mutex gate_mutex;
  std::condition_variable gate_cv;
  bool open = false;
  server.register_handler("block", [&](const ss::Request&, ss::JobContext& ctx) {
    std::unique_lock<std::mutex> lock(gate_mutex);
    gate_cv.wait(lock, [&] { return open; });
    ctx.finish(ss::JsonValue::object());
  });

  // One running + two queued fills the system; the rest must shed.
  for (int i = 0; i < 6; ++i) {
    server.handle_line(
        R"({"id":"q)" + std::to_string(i) + R"(","type":"block"})",
        out.sink());
  }
  // Give the worker a moment to pop the first job so counts are stable.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  std::size_t overloaded = 0;
  for (const auto& line : out.lines()) {
    const ss::JsonValue v = ss::json_parse(line);
    if (v.string_or("event", "") == "rejected") {
      EXPECT_EQ(v.string_or("code", ""), ss::kRejectOverloaded);
      EXPECT_GT(v.number_or("retry_after_ms", 0), 0.0);
      EXPECT_EQ(v.number_or("queue_capacity", 0), 2.0);
      ++overloaded;
    }
  }
  EXPECT_GE(overloaded, 3u);  // at least 6 - (1 running + 2 queued)
  EXPECT_EQ(server.stats().rejected_overloaded, overloaded);

  {
    const std::lock_guard<std::mutex> lock(gate_mutex);
    open = true;
  }
  gate_cv.notify_all();
  server.wait_idle();

  // No leaked queue slots: every admitted job reached a terminal event and
  // the queue is reusable at full capacity.
  const ss::ServerStats stats = server.stats();
  EXPECT_EQ(stats.admitted, stats.completed);
  EXPECT_EQ(stats.queue_depth, 0u);
  server.handle_line(R"({"id":"after","type":"block"})", out.sink());
  server.wait_idle();
  EXPECT_EQ(out.event_chain("after"), "accepted started result");
}

TEST(Server, CancelAndDuplicateIds) {
  Collector out;
  ss::ServerConfig config = test_config();
  config.workers = 1;
  const auto owned = std::make_unique<ss::Server>(config);
  ss::Server& server = *owned;

  std::mutex gate_mutex;
  std::condition_variable gate_cv;
  bool open = false;
  server.register_handler("wait", [&](const ss::Request&, ss::JobContext& ctx) {
    {
      std::unique_lock<std::mutex> lock(gate_mutex);
      gate_cv.wait(lock, [&] { return open; });
    }
    if (ctx.cancel->requested()) {
      throw softfet::BudgetExceededError("cancelled mid-flight",
                                         softfet::util::BudgetStop::kCancel);
    }
    ctx.finish(ss::JsonValue::object());
  });

  server.handle_line(R"({"id":"w1","type":"wait"})", out.sink());
  // Wait until the worker has popped w1 (emitted `started`) so the event
  // order below is deterministic.
  while (out.event_chain("w1") != "accepted started") {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // Duplicate id while w1 is active -> rejected invalid.
  server.handle_line(R"({"id":"w1","type":"wait"})", out.sink());
  // Queued-behind job cancelled before it starts.
  server.handle_line(R"({"id":"w2","type":"wait"})", out.sink());
  server.handle_line(R"({"id":"c1","type":"cancel","job":"w1"})", out.sink());
  server.handle_line(R"({"id":"c2","type":"cancel","job":"w2"})", out.sink());
  server.handle_line(R"({"id":"c3","type":"cancel","job":"nope"})", out.sink());
  {
    const std::lock_guard<std::mutex> lock(gate_mutex);
    open = true;
  }
  gate_cv.notify_all();
  server.wait_idle();

  EXPECT_EQ(out.event_chain("w1"), "accepted started rejected cancelled");
  EXPECT_EQ(out.event_chain("w2"), "accepted cancelled");
  const auto c3 = out.events("c3");
  EXPECT_EQ(c3.at(0).string_or("state", ""), "unknown");
  EXPECT_EQ(server.stats().cancelled, 2u);

  // After its terminal event the id is reusable.
  server.handle_line(R"({"id":"w1","type":"wait"})", out.sink());
  server.wait_idle();
}

TEST(Server, ShutdownRejectsNewWorkAndDrains) {
  Collector out;
  const auto owned = std::make_unique<ss::Server>(test_config());
  ss::Server& server = *owned;
  server.register_handler("ok", [](const ss::Request&, ss::JobContext& ctx) {
    ctx.finish(ss::JsonValue::object());
  });
  server.handle_line(R"({"id":"j1","type":"ok"})", out.sink());
  server.handle_line(R"({"id":"sd","type":"shutdown"})", out.sink());
  EXPECT_TRUE(server.stop_requested());
  EXPECT_FALSE(server.stop_cancels_inflight());
  server.shutdown(server.stop_cancels_inflight());

  server.handle_line(R"({"id":"late","type":"ok"})", out.sink());
  const auto late = out.events("late");
  ASSERT_EQ(late.size(), 1u);
  EXPECT_EQ(late[0].string_or("event", ""), "rejected");
  EXPECT_EQ(late[0].string_or("code", ""), ss::kRejectShuttingDown);
  EXPECT_EQ(out.event_chain("j1"), "accepted started result");
}

TEST(Server, MonteCarloDeterminismFieldSelectsModeAndRejectsUnknown) {
  Collector out;
  const auto owned = std::make_unique<ss::Server>(test_config());
  ss::Server& server = *owned;

  server.handle_line(
      R"({"id":"mb","type":"monte_carlo","samples":4,"lanes":1})", out.sink());
  server.handle_line(
      R"({"id":"mr","type":"monte_carlo","samples":4,"lanes":1,)"
      R"("determinism":"relaxed"})",
      out.sink());
  server.handle_line(
      R"({"id":"mx","type":"monte_carlo","samples":4,)"
      R"("determinism":"fast-and-loose"})",
      out.sink());
  server.wait_idle();

  // Default and explicit modes are echoed in the result payload.
  const auto bitwise = out.events("mb");
  ASSERT_FALSE(bitwise.empty());
  EXPECT_EQ(bitwise.back().string_or("event", ""), "result");
  EXPECT_EQ(bitwise.back().string_or("determinism", ""), "bitwise");
  const auto relaxed = out.events("mr");
  ASSERT_FALSE(relaxed.empty());
  EXPECT_EQ(relaxed.back().string_or("event", ""), "result");
  EXPECT_EQ(relaxed.back().string_or("determinism", ""), "relaxed");

  // An unknown mode is a structured error naming the field, not a crash.
  const auto bad = out.events("mx");
  ASSERT_FALSE(bad.empty());
  EXPECT_EQ(bad.back().string_or("event", ""), "error");
  EXPECT_NE(bad.back().string_or("message", "").find("determinism"),
            std::string::npos);
}

TEST(Server, TornJournalTailsAreDroppedSilentlyAtEveryOffset) {
  // A daemon killed mid-journal-write can leave a *prefix* of the request
  // line on disk (no rename barrier survives every filesystem). Recovery
  // must drop such a journal silently — no spurious anonymous `rejected`
  // for a job no client is waiting on — and still resume every intact
  // neighbor. Truncating at every byte offset proves no prefix length is
  // special-cased.
  namespace fs = std::filesystem;
  const fs::path state_dir =
      fs::path(::testing::TempDir()) / "softfet-torn-journal";
  const std::string keep_a = R"({"id":"keep-a","type":"echo","n":1})";
  const std::string keep_b = R"({"id":"keep-b","type":"echo","n":2})";
  const std::string torn = R"({"id":"torn","type":"echo","n":3})";

  for (std::size_t cut = 0; cut < torn.size(); ++cut) {
    fs::remove_all(state_dir);
    fs::create_directories(state_dir);
    const auto plant = [&](const char* name, const std::string& content,
                           bool newline) {
      std::ofstream file(state_dir / name, std::ios::binary);
      file << content;
      if (newline) file << '\n';
    };
    plant("job-keep-a.req", keep_a, true);
    plant("job-keep-b.req", keep_b, true);
    plant("job-torn.req", torn.substr(0, cut), false);  // torn tail

    ss::ServerConfig config = test_config();
    config.state_dir = state_dir.string();
    const auto owned = std::make_unique<ss::Server>(config);
    ss::Server& server = *owned;
    server.register_handler("echo", [](const ss::Request& req,
                                       ss::JobContext& ctx) {
      ss::JsonValue result = ss::JsonValue::object();
      result.set("n", ss::JsonValue::number(req.payload.number_or("n", -1)));
      ctx.finish(std::move(result));
    });

    Collector out;
    const std::size_t resumed = server.resume_journaled(out.sink());
    EXPECT_EQ(resumed, 2u) << "cut=" << cut;
    server.wait_idle();

    EXPECT_EQ(out.event_chain("keep-a"), "accepted started result")
        << "cut=" << cut;
    EXPECT_EQ(out.event_chain("keep-b"), "accepted started result")
        << "cut=" << cut;
    // The torn journal vanished without a trace: no events under its id,
    // no anonymous rejection, and the file itself is gone so the next
    // restart does not trip over it either.
    EXPECT_TRUE(out.events("torn").empty()) << "cut=" << cut;
    EXPECT_TRUE(out.events("").empty()) << "cut=" << cut;
    EXPECT_FALSE(fs::exists(state_dir / "job-torn.req")) << "cut=" << cut;
  }
  fs::remove_all(state_dir);
}
