// Transient engine validation against closed-form RC responses.
#include <gtest/gtest.h>

#include <cmath>

#include "devices/capacitor.hpp"
#include "devices/resistor.hpp"
#include "devices/sources.hpp"
#include "measure/waveform.hpp"
#include "sim/analyses.hpp"
#include "util/error.hpp"

namespace ss = softfet::sim;
namespace sd = softfet::devices;
using softfet::measure::Waveform;

namespace {

/// RC low-pass driven by a 0->1V step (rise time `tr`), R=1k, C=1n.
ss::TranResult simulate_rc_step(double tr, double tstop,
                                const ss::SimOptions& options = {}) {
  ss::Circuit c;
  const auto in = c.node("in");
  const auto out = c.node("out");
  c.add<sd::VSource>("Vin", in, ss::kGroundNode,
                     sd::SourceSpec::pulse(0.0, 1.0, 1e-9, tr, tr, 1.0, 0.0));
  c.add<sd::Resistor>("R1", in, out, 1e3);
  c.add<sd::Capacitor>("C1", out, ss::kGroundNode, 1e-9);
  return ss::run_transient(c, tstop, options);
}

}  // namespace

TEST(TransientRc, StepResponseMatchesAnalytic) {
  const auto result = simulate_rc_step(1e-12, 10e-6);
  const Waveform vout = Waveform::from_tran(result, "v(out)");
  const double tau = 1e-6;
  // Compare at several times after the (effectively instantaneous) step.
  for (const double t : {1.5e-6, 2e-6, 3e-6, 5e-6, 8e-6}) {
    const double expected = 1.0 - std::exp(-(t - 1e-9) / tau);
    EXPECT_NEAR(vout.value(t), expected, 5e-3) << "t=" << t;
  }
}

TEST(TransientRc, BackwardEulerAlsoAccurate) {
  ss::SimOptions options;
  options.use_trapezoidal = false;
  options.dtmax = 20e-9;
  const auto result = simulate_rc_step(1e-12, 5e-6, options);
  const Waveform vout = Waveform::from_tran(result, "v(out)");
  const double tau = 1e-6;
  const double expected = 1.0 - std::exp(-(3e-6 - 1e-9) / tau);
  EXPECT_NEAR(vout.value(3e-6), expected, 2e-2);
}

TEST(TransientRc, InitialConditionFromOp) {
  // Source starts at 1V (pulse v1=1): capacitor must start charged, no
  // transient at all.
  ss::Circuit c;
  const auto in = c.node("in");
  const auto out = c.node("out");
  c.add<sd::VSource>("Vin", in, ss::kGroundNode, sd::SourceSpec::dc(1.0));
  c.add<sd::Resistor>("R1", in, out, 1e3);
  c.add<sd::Capacitor>("C1", out, ss::kGroundNode, 1e-9);
  const auto result = ss::run_transient(c, 1e-6);
  const Waveform vout = Waveform::from_tran(result, "v(out)");
  EXPECT_NEAR(vout.min_value(), 1.0, 1e-6);
  EXPECT_NEAR(vout.max_value(), 1.0, 1e-6);
}

TEST(TransientRc, SupplyCurrentIsCapCurrent) {
  const auto result = simulate_rc_step(1e-12, 5e-6);
  const Waveform i_vin = Waveform::from_tran(result, "i(vin)");
  // Just after the step: i = -(V/R) = -1mA (SPICE sign: sourcing reads
  // negative); decays with tau.
  EXPECT_NEAR(i_vin.value(1.05e-9), -1e-3, 8e-5);
  EXPECT_NEAR(i_vin.value(5e-6 - 1e-9), 0.0, 2e-5);
}

TEST(TransientRc, RampInputTracksWithLag) {
  // Slow ramp (100 tau): output tracks input with lag ~ tau * slope.
  const double tr = 100e-6;
  const auto result = simulate_rc_step(tr, 50e-6);
  const Waveform vin = Waveform::from_tran(result, "v(in)");
  const Waveform vout = Waveform::from_tran(result, "v(out)");
  const double slope = 1.0 / tr;
  const double t = 30e-6;
  EXPECT_NEAR(vin.value(t) - vout.value(t), 1e-6 * slope, 2e-3);
}

TEST(TransientRc, BreakpointLandsOnPulseEdges) {
  const auto result = simulate_rc_step(1e-9, 3e-6);
  // The engine must have a sample exactly at the pulse corners 1ns and 2ns.
  bool found_start = false;
  bool found_end = false;
  for (const double t : result.time) {
    if (std::fabs(t - 1e-9) < 1e-15) found_start = true;
    if (std::fabs(t - 2e-9) < 1e-15) found_end = true;
  }
  EXPECT_TRUE(found_start);
  EXPECT_TRUE(found_end);
}

TEST(TransientRc, ChargeConservation) {
  // Total charge delivered by the source equals C*V (plus resistor losses
  // are in energy, not charge).
  const auto result = simulate_rc_step(1e-12, 20e-6);
  const Waveform i_vin = Waveform::from_tran(result, "i(vin)");
  const double q = -i_vin.integral();  // source current is negative
  EXPECT_NEAR(q, 1e-9 * 1.0, 2e-11);
}

TEST(TransientRc, RejectsNonPositiveTstop) {
  ss::Circuit c;
  c.add<sd::Resistor>("R1", c.node("a"), ss::kGroundNode, 1.0);
  EXPECT_THROW((void)ss::run_transient(c, 0.0), softfet::Error);
}
