// Ring oscillator: oscillation, period scaling, corners, and the Soft-FET
// ring variant.
#include <gtest/gtest.h>

#include "cells/ring_oscillator.hpp"
#include "devices/ptm.hpp"
#include "devices/tech40.hpp"
#include "measure/metrics.hpp"
#include "measure/waveform.hpp"
#include "sim/analyses.hpp"
#include "util/error.hpp"

namespace sc = softfet::cells;
namespace sd = softfet::devices;
namespace sm = softfet::measure;
namespace ss = softfet::sim;
namespace t40 = softfet::devices::tech40;
using softfet::measure::Waveform;

namespace {

double ring_period(const sc::RingOscillatorSpec& spec, double tstop) {
  auto ring = sc::make_ring_oscillator(spec);
  const auto result = ss::run_transient(ring.circuit, tstop);
  const Waveform tap = Waveform::from_tran(result, ring.tap_signal);
  // Skip the startup transient.
  return sm::oscillation_period(tap, 0.5 * spec.vcc, 0.3 * tstop);
}

}  // namespace

TEST(RingOscillator, RejectsEvenOrTinyStageCounts) {
  sc::RingOscillatorSpec spec;
  spec.stages = 4;
  EXPECT_THROW((void)sc::make_ring_oscillator(spec),
               softfet::InvalidCircuitError);
  spec.stages = 1;
  EXPECT_THROW((void)sc::make_ring_oscillator(spec),
               softfet::InvalidCircuitError);
}

TEST(RingOscillator, OscillatesFullSwing) {
  sc::RingOscillatorSpec spec;
  auto ring = sc::make_ring_oscillator(spec);
  const auto result = ss::run_transient(ring.circuit, 2e-9);
  const Waveform tap = Waveform::from_tran(result, ring.tap_signal);
  const Waveform late = tap.window(1e-9, 2e-9);
  EXPECT_GT(late.max_value(), 0.9);
  EXPECT_LT(late.min_value(), 0.1);
  EXPECT_GT(late.crossings(0.5, softfet::measure::CrossDirection::kRising)
                .size(),
            3u);
}

TEST(RingOscillator, PeriodScalesWithStageCount) {
  sc::RingOscillatorSpec five;
  five.stages = 5;
  sc::RingOscillatorSpec nine;
  nine.stages = 9;
  const double t5 = ring_period(five, 2e-9);
  const double t9 = ring_period(nine, 3e-9);
  // Period ~ 2 * N * t_pd: 9 stages ~ 1.8x the 5-stage period.
  EXPECT_NEAR(t9 / t5, 9.0 / 5.0, 0.35);
}

TEST(RingOscillator, SlowCornerSlowsItDown) {
  sc::RingOscillatorSpec tt;
  sc::RingOscillatorSpec ss_corner;
  ss_corner.inverter.nmos_model =
      t40::with_corner(t40::nmos(), t40::Corner::kSS);
  ss_corner.inverter.pmos_model =
      t40::with_corner(t40::pmos(), t40::Corner::kSS);
  sc::RingOscillatorSpec ff;
  ff.inverter.nmos_model = t40::with_corner(t40::nmos(), t40::Corner::kFF);
  ff.inverter.pmos_model = t40::with_corner(t40::pmos(), t40::Corner::kFF);

  const double t_tt = ring_period(tt, 2e-9);
  const double t_ss = ring_period(ss_corner, 2e-9);
  const double t_ff = ring_period(ff, 2e-9);
  EXPECT_GT(t_ss, 1.05 * t_tt);
  EXPECT_LT(t_ff, 0.95 * t_tt);
}

TEST(RingOscillator, SoftFetRingOscillatesSlower) {
  sc::RingOscillatorSpec base;
  sc::RingOscillatorSpec soft;
  soft.inverter.ptm = sd::PtmParams{};
  const double t_base = ring_period(base, 2e-9);
  const double t_soft = ring_period(soft, 8e-9);
  EXPECT_GT(t_soft, 1.5 * t_base);  // the Soft-FET delay penalty, in a loop
}

TEST(RingOscillator, CornerHelpers) {
  const auto nm = t40::nmos();
  const auto ss_m = t40::with_corner(nm, t40::Corner::kSS);
  EXPECT_GT(ss_m.vt0, nm.vt0);
  EXPECT_LT(ss_m.kp, nm.kp);
  const auto ff_m = t40::with_corner(nm, t40::Corner::kFF);
  EXPECT_LT(ff_m.vt0, nm.vt0);
  // SF: NMOS slow, PMOS fast.
  EXPECT_GT(t40::with_corner(t40::nmos(), t40::Corner::kSF).vt0, nm.vt0);
  EXPECT_LT(t40::with_corner(t40::pmos(), t40::Corner::kSF).vt0,
            t40::pmos().vt0);
  EXPECT_STREQ(t40::corner_name(t40::Corner::kSF), "SF");
  // TT is identity.
  EXPECT_DOUBLE_EQ(t40::with_corner(nm, t40::Corner::kTT).vt0, nm.vt0);
}

TEST(OscillationPeriod, ThrowsWithoutOscillation) {
  const Waveform flat({0.0, 1.0, 2.0}, {0.0, 0.0, 0.0});
  EXPECT_THROW((void)sm::oscillation_period(flat, 0.5), softfet::Error);
}

TEST(OscillationPeriod, MeasuresSyntheticSquareWave) {
  std::vector<double> t;
  std::vector<double> y;
  for (int k = 0; k < 40; ++k) {
    t.push_back(k * 0.5);
    y.push_back(k % 2 == 0 ? 0.0 : 1.0);
  }
  const Waveform square(std::move(t), std::move(y));
  EXPECT_NEAR(sm::oscillation_period(square, 0.5), 1.0, 1e-9);
}
