#include <gtest/gtest.h>

#include <random>

#include "numeric/dense_lu.hpp"
#include "numeric/dense_matrix.hpp"
#include "util/error.hpp"

namespace sn = softfet::numeric;

TEST(DenseMatrix, MultiplyIdentity) {
  sn::DenseMatrix a(3, 3);
  for (std::size_t i = 0; i < 3; ++i) a(i, i) = 1.0;
  const auto y = a.multiply({1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(y[0], 1.0);
  EXPECT_DOUBLE_EQ(y[1], 2.0);
  EXPECT_DOUBLE_EQ(y[2], 3.0);
}

TEST(DenseLu, Solves2x2) {
  sn::DenseMatrix a(2, 2);
  a(0, 0) = 2.0;
  a(0, 1) = 1.0;
  a(1, 0) = 1.0;
  a(1, 1) = 3.0;
  const sn::DenseLu lu(a);
  const auto x = lu.solve({5.0, 10.0});
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(DenseLu, RequiresPivoting) {
  // Zero on the diagonal forces a row swap.
  sn::DenseMatrix a(2, 2);
  a(0, 0) = 0.0;
  a(0, 1) = 1.0;
  a(1, 0) = 1.0;
  a(1, 1) = 0.0;
  const sn::DenseLu lu(a);
  const auto x = lu.solve({3.0, 7.0});
  EXPECT_NEAR(x[0], 7.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(DenseLu, SingularThrows) {
  sn::DenseMatrix a(2, 2);
  a(0, 0) = 1.0;
  a(0, 1) = 2.0;
  a(1, 0) = 2.0;
  a(1, 1) = 4.0;
  EXPECT_THROW(sn::DenseLu{a}, softfet::ConvergenceError);
}

TEST(DenseLu, RandomRoundTrip) {
  std::mt19937 rng(42);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 1 + static_cast<std::size_t>(trial % 17);
    sn::DenseMatrix a(n, n);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) a(i, j) = dist(rng);
      a(i, i) += 3.0;  // diagonally dominant => nonsingular
    }
    std::vector<double> x_true(n);
    for (auto& v : x_true) v = dist(rng);
    const auto b = a.multiply(x_true);
    const auto x = sn::DenseLu(a).solve(b);
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-9);
  }
}

TEST(DenseLu, NonSquareThrows) {
  sn::DenseMatrix a(2, 3);
  EXPECT_THROW(sn::DenseLu{a}, softfet::Error);
}
