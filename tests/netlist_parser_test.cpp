#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "netlist/parser.hpp"
#include "util/error.hpp"

namespace nl = softfet::netlist;

TEST(NetlistParser, TitleCommentsContinuations) {
  const auto ast = nl::parse(R"(My Test Circuit
* a comment line
R1 a b 1k  ; trailing comment
V1 a 0
+ DC 1.0   $ continued card
.end
)");
  EXPECT_EQ(ast.title, "My Test Circuit");
  ASSERT_EQ(ast.top_devices.size(), 2u);
  EXPECT_EQ(ast.top_devices[0].tokens[0], "R1");
  // Continuation merged the DC spec into V1's card.
  const auto& v1 = ast.top_devices[1].tokens;
  ASSERT_EQ(v1.size(), 5u);
  EXPECT_EQ(v1[3], "DC");
  EXPECT_EQ(v1[4], "1.0");
}

TEST(NetlistParser, FirstLineIsAlwaysTitleUnlessDirective) {
  // Classic SPICE: the first line is the title, even if it looks like a card.
  const auto ast = nl::parse("R1 a 0 1k\nR2 b 0 1k\n");
  EXPECT_EQ(ast.title, "R1 a 0 1k");
  EXPECT_EQ(ast.top_devices.size(), 1u);
  // A directive first line is not a title.
  const auto ast2 = nl::parse(".param x=1\nR1 a 0 1k\n");
  EXPECT_TRUE(ast2.title.empty());
  EXPECT_EQ(ast2.top_devices.size(), 1u);
}

TEST(NetlistParser, ParenthesesActAsWhitespace) {
  const auto ast = nl::parse("t\nV1 in 0 PULSE(0 1 1n 2n 2n 3n)\n");
  const auto& tokens = ast.top_devices[0].tokens;
  ASSERT_EQ(tokens.size(), 10u);
  EXPECT_EQ(tokens[3], "PULSE");
  EXPECT_EQ(tokens[9], "3n");
}

TEST(NetlistParser, BracesSurviveTokenization) {
  const auto ast = nl::parse(".param w=120n\nM1 d g s b nch W={w * 2} L=40n\n");
  const auto& tokens = ast.top_devices[0].tokens;
  ASSERT_EQ(tokens.size(), 8u);
  EXPECT_EQ(tokens[6], "W={w * 2}");
}

TEST(NetlistParser, SpacedAssignmentsGlue) {
  const auto ast = nl::parse("t\nM1 d g s b nch W = 240n\n");
  const auto& tokens = ast.top_devices[0].tokens;
  ASSERT_EQ(tokens.size(), 7u);
  EXPECT_EQ(tokens[6], "W=240n");
}

TEST(NetlistParser, Directives) {
  const auto ast = nl::parse(R"(.param vcc=1 cl=2f
.model nch nmos vt0=0.35
.tran 1p 10n
.dc Vin 0 1 0.1
.op
.end
)");
  ASSERT_EQ(ast.params.size(), 2u);
  EXPECT_EQ(ast.params[0].first, "vcc");
  ASSERT_TRUE(ast.models.count("nch"));
  EXPECT_EQ(ast.models.at("nch").type, "nmos");
  EXPECT_EQ(ast.models.at("nch").params.at("vt0"), "0.35");
  ASSERT_TRUE(ast.tran.has_value());
  EXPECT_DOUBLE_EQ(ast.tran->tstop, 10e-9);
  ASSERT_TRUE(ast.dc.has_value());
  EXPECT_EQ(ast.dc->source, "vin");
  EXPECT_TRUE(ast.op);
}

TEST(NetlistParser, DcPointsExpansion) {
  nl::DcDirective dc;
  dc.start = 0.0;
  dc.stop = 1.0;
  dc.step = 0.25;
  const auto pts = dc.points();
  ASSERT_EQ(pts.size(), 5u);
  EXPECT_DOUBLE_EQ(pts[4], 1.0);
  dc.start = 1.0;
  dc.stop = 0.0;
  const auto down = dc.points();
  ASSERT_EQ(down.size(), 5u);
  EXPECT_DOUBLE_EQ(down[0], 1.0);
  EXPECT_DOUBLE_EQ(down[4], 0.0);
}

TEST(NetlistParser, SubcktCapture) {
  const auto ast = nl::parse(R"(.subckt inv in out vdd w=120n
MP out in vdd vdd pch W={2*w}
MN out in 0 0 nch W={w}
.ends
X1 a b vcc inv w=240n
)");
  ASSERT_TRUE(ast.subckts.count("inv"));
  const auto& def = ast.subckts.at("inv");
  ASSERT_EQ(def.ports.size(), 3u);
  EXPECT_EQ(def.ports[2], "vdd");
  ASSERT_EQ(def.default_params.size(), 1u);
  EXPECT_EQ(def.default_params[0].first, "w");
  EXPECT_EQ(def.devices.size(), 2u);
  ASSERT_EQ(ast.top_devices.size(), 1u);
}

TEST(NetlistParser, ContentAfterEndIgnored) {
  const auto ast = nl::parse("t\nR1 a 0 1k\n.end\nR2 b 0 1k\n");
  EXPECT_EQ(ast.top_devices.size(), 1u);
}

TEST(NetlistParser, IncludeFilesMergeDefinitions) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "softfet_inc_test";
  fs::create_directories(dir);
  {
    std::ofstream lib(dir / "lib.sp");
    lib << ".param rload=2k\n.model nch nmos vt0=0.4\n";
  }
  {
    std::ofstream top(dir / "top.sp");
    top << "include test\n.include \"lib.sp\"\nR1 a 0 {rload}\n.end\n";
  }
  const auto ast = nl::parse_file((dir / "top.sp").string());
  EXPECT_EQ(ast.title, "include test");
  ASSERT_EQ(ast.params.size(), 1u);
  EXPECT_EQ(ast.params[0].first, "rload");
  EXPECT_TRUE(ast.models.count("nch"));
  EXPECT_EQ(ast.top_devices.size(), 1u);
  fs::remove_all(dir);
}

TEST(NetlistParser, MissingIncludeThrows) {
  EXPECT_THROW((void)nl::parse("t\n.include \"/nonexistent/nope.sp\"\n"),
               softfet::ParseError);
}

TEST(NetlistParser, ErrorsCarryLineNumbers) {
  try {
    (void)nl::parse("t\nR1 a 0 1k\n.tran 1p\n");
    FAIL() << "expected ParseError";
  } catch (const softfet::ParseError& e) {
    EXPECT_EQ(e.line(), 3);
  }
  EXPECT_THROW((void)nl::parse(".subckt foo a\nR1 a 0 1k\n"),
               softfet::ParseError);
  EXPECT_THROW((void)nl::parse(".ends\n"), softfet::ParseError);
  EXPECT_THROW((void)nl::parse("+continuation first\n"), softfet::ParseError);
  EXPECT_THROW((void)nl::parse(".bogus\n"), softfet::ParseError);
  EXPECT_THROW((void)nl::parse("t\nR1 a 0 {1k\n"), softfet::ParseError);
}
