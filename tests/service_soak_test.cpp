// Fault-injected soak harness for the simulation service (ctest label
// "service-soak").
//
// Thousands of queued jobs — healthy, transiently failing, poisoned,
// malformed, oversized, cancelled, plus real netlist and fault-injected
// device simulations — flow through one Server from several submitter
// threads. The harness then audits the full response transcript against the
// protocol's lifecycle contract: per-job seq numbers contiguous and in
// arrival order, exactly one terminal event per admitted job, standalone
// `rejected` for everything never admitted, zero leaked queue slots, and a
// process that is still healthy afterwards. Separate cases prove the
// service's answers are bitwise-equal to direct library calls and that a
// killed daemon resumes journaled Monte-Carlo jobs to bitwise-identical
// results.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstddef>
#include <filesystem>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "cells/inverter.hpp"
#include "core/variation.hpp"
#include "devices/capacitor.hpp"
#include "devices/ptm.hpp"
#include "devices/resistor.hpp"
#include "devices/sources.hpp"
#include "fault_injection.hpp"
#include "netlist/elaborate.hpp"
#include "netlist/parser.hpp"
#include "service/server.hpp"
#include "sim/analyses.hpp"
#include "util/error.hpp"

namespace ss = softfet::service;
namespace fs = std::filesystem;
using softfet::BudgetExceededError;
using softfet::ConvergenceError;
using softfet::util::BudgetStop;

namespace {

/// Thread-safe transcript collector with per-id views.
class Transcript {
 public:
  ss::Sink sink() {
    return [this](const std::string& line) {
      const std::lock_guard<std::mutex> lock(mutex_);
      lines_.push_back(line);
    };
  }
  [[nodiscard]] std::vector<std::string> lines() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return lines_;
  }
  [[nodiscard]] std::map<std::string, std::vector<ss::JsonValue>> by_id()
      const {
    std::map<std::string, std::vector<ss::JsonValue>> out;
    for (const auto& line : lines()) {
      ss::JsonValue v = ss::json_parse(line);
      out[v.string_or("id", "")].push_back(std::move(v));
    }
    return out;
  }
  [[nodiscard]] std::vector<ss::JsonValue> events(const std::string& id) const {
    std::vector<ss::JsonValue> out;
    for (const auto& line : lines()) {
      ss::JsonValue v = ss::json_parse(line);
      if (v.string_or("id", "") == id) out.push_back(std::move(v));
    }
    return out;
  }
  [[nodiscard]] std::size_t count(const std::string& id,
                                  const std::string& event) const {
    std::size_t n = 0;
    for (const auto& ev : events(id)) {
      if (ev.string_or("event", "") == event) ++n;
    }
    return n;
  }

 private:
  mutable std::mutex mutex_;
  std::vector<std::string> lines_;
};

[[nodiscard]] bool is_terminal(const std::string& event) {
  return event == "result" || event == "error" || event == "cancelled";
}

/// Audit one admitted-or-rejected job transcript against the lifecycle
/// contract. Returns the terminal event name ("rejected" for non-admitted).
std::string check_lifecycle(const std::string& id,
                            const std::vector<ss::JsonValue>& events) {
  EXPECT_FALSE(events.empty()) << id << " produced no response at all";
  if (events.empty()) return "missing";
  const std::string first = events.front().string_or("event", "");
  if (first == "rejected") {
    EXPECT_EQ(events.size(), 1u) << id << " got events past its rejection";
    return "rejected";
  }
  EXPECT_EQ(first, "accepted") << id;
  bool started = false;
  std::size_t terminals = 0;
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].number_or("seq", -1), static_cast<double>(i))
        << id << " seq gap at position " << i;
    const std::string event = events[i].string_or("event", "");
    if (i == 0) continue;
    if (event == "started") {
      EXPECT_FALSE(started) << id << " started twice";
      EXPECT_EQ(terminals, 0u) << id;
      started = true;
    } else if (event == "chunk" || event == "progress" ||
               event == "retrying") {
      EXPECT_TRUE(started) << id << " streamed before start";
      EXPECT_EQ(terminals, 0u) << id;
    } else if (is_terminal(event)) {
      ++terminals;
      EXPECT_EQ(i, events.size() - 1)
          << id << " emitted past its terminal " << event;
    } else {
      ADD_FAILURE() << id << " unexpected event '" << event << "'";
    }
  }
  EXPECT_EQ(terminals, 1u) << id << " needs exactly one terminal event";
  const std::string last = events.back().string_or("event", "");
  if (last == "result") {
    EXPECT_TRUE(started) << id;
  }
  return last;
}

/// Small linear RC netlists (note the mandatory SPICE title line) — a few
/// variants so the content-addressed cache sees both hits and misses.
[[nodiscard]] std::string rc_netlist(int variant) {
  return "soak rc " + std::to_string(variant) +
         "\\nV1 in 0 1\\nR1 in out " + std::to_string(1 + variant) +
         "k\\nC1 out 0 1n\\n.tran 1u 10u\\n.end";
}

/// Register the cheap fault-injection handlers the soak mixes in. All of
/// them are driven by the request payload, so one server serves every mode.
void register_fault_handlers(ss::Server& server) {
  server.register_handler("ok", [](const ss::Request& req,
                                   ss::JobContext& ctx) {
    ss::JsonValue result = ss::JsonValue::object();
    result.set("value", ss::JsonValue::number(req.payload.number_or("n", 0)));
    ctx.finish(std::move(result));
  });
  server.register_handler("flaky", [](const ss::Request&, ss::JobContext& ctx) {
    if (ctx.attempt < 2) throw ConvergenceError("injected transient failure");
    ctx.finish(ss::JsonValue::object());
  });
  server.register_handler("fatal", [](const ss::Request&, ss::JobContext&) {
    throw ConvergenceError("injected permanent divergence");
  });
  server.register_handler("internal", [](const ss::Request&, ss::JobContext&) {
    throw std::runtime_error("injected handler bug");
  });
  server.register_handler("budget", [](const ss::Request&, ss::JobContext&) {
    throw BudgetExceededError("injected wall-clock exhaustion",
                              BudgetStop::kWallClock);
  });
  server.register_handler(
      "cancelme", [](const ss::Request&, ss::JobContext& ctx) {
        // Wait (bounded) for the client's cancel; a cancel that never
        // arrives — or arrived before the pop — still terminates cleanly.
        const auto deadline =
            std::chrono::steady_clock::now() + std::chrono::milliseconds(400);
        while (!ctx.cancel->requested() &&
               std::chrono::steady_clock::now() < deadline) {
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        if (ctx.cancel->requested()) {
          throw BudgetExceededError("cancelled", BudgetStop::kCancel);
        }
        ctx.finish(ss::JsonValue::object());
      });
  server.register_handler(
      "fault_rc", [](const ss::Request& req, ss::JobContext& ctx) {
        // A real fault-injected device simulation: NaN residuals sabotage
        // the Newton solves mid-transient. A bounded fault budget is cured
        // by the recovery ladder; an unlimited one diverges terminally.
        namespace sd = softfet::devices;
        namespace sim = softfet::sim;
        const int budget = static_cast<int>(req.payload.number_or("fault_budget", 1));
        sim::Circuit circuit;
        const auto in = circuit.node("in");
        const auto out = circuit.node("out");
        circuit.add<sd::VSource>("Vin", in, sim::kGroundNode,
                                 sd::SourceSpec::ramp(0.0, 1.0, 100e-12,
                                                      30e-12));
        circuit.add<sd::Resistor>("R1", in, out, 1e3);
        circuit.add<sd::Capacitor>("C1", out, sim::kGroundNode, 1e-15);
        circuit.add<softfet::testing::FaultDevice>(
            "FLT1", out, softfet::testing::FaultMode::kNanResidual, 200e-12,
            1e-9, budget);
        circuit.prepare();
        const auto tran = sim::run_transient(circuit, 2e-9, ctx.options);
        ss::JsonValue result = ss::JsonValue::object();
        result.set("accepted_steps",
                   ss::JsonValue::number(
                       static_cast<double>(tran.accepted_steps)));
        ctx.finish(std::move(result));
      });
}

}  // namespace

TEST(ServiceSoak, ThousandsOfFaultInjectedJobsKeepTheContract) {
  ss::ServerConfig config;
  config.workers = 4;
  config.queue_capacity = 256;
  config.max_netlist_bytes = 1024;  // small cap so oversized lines are cheap
  config.retry.max_attempts = 3;
  config.retry.base_backoff_ms = 1;
  config.retry.max_backoff_ms = 2;
  const auto owned = std::make_unique<ss::Server>(config);
  ss::Server& server = *owned;
  register_fault_handlers(server);

  Transcript out;
  const ss::Sink sink = out.sink();

  constexpr int kThreads = 3;
  constexpr int kPerThread = 700;  // 2100 submissions total
  std::mutex ids_mutex;
  std::vector<std::string> job_ids;
  std::vector<std::string> control_ids;
  std::atomic<std::size_t> unaddressed_rejections{0};

  const auto submitter = [&](int tid) {
    std::vector<std::string> my_jobs;
    std::vector<std::string> my_controls;
    for (int i = 0; i < kPerThread; ++i) {
      const std::string id =
          "j" + std::to_string(tid) + "-" + std::to_string(i);
      const std::string idq = "\"id\":\"" + id + "\"";
      switch (i % 20) {
        case 0:  // malformed NDJSON -> standalone rejection with empty id
          server.handle_line("{\"id\": " + id, sink);
          ++unaddressed_rejections;
          continue;
        case 1:  // blank keepalive -> no response at all
          server.handle_line("   \t ", sink);
          continue;
        case 2: {  // oversized embedded netlist -> rejected invalid
          server.handle_line("{" + idq + ",\"type\":\"netlist\",\"netlist\":\"" +
                                 std::string(2000, 'x') + "\"}",
                             sink);
          my_jobs.push_back(id);
          continue;
        }
        case 3:  // real netlist simulation through the cache
          server.handle_line("{" + idq + ",\"type\":\"netlist\",\"netlist\":\"" +
                                 rc_netlist(i % 3) + "\"}",
                             sink);
          my_jobs.push_back(id);
          continue;
        case 4: {  // mid-job (or pre-pop) cooperative cancel
          server.handle_line("{" + idq + ",\"type\":\"cancelme\"}", sink);
          const std::string ctl =
              "c" + std::to_string(tid) + "-" + std::to_string(i);
          server.handle_line("{\"id\":\"" + ctl +
                                 "\",\"type\":\"cancel\",\"job\":\"" + id +
                                 "\"}",
                             sink);
          my_jobs.push_back(id);
          my_controls.push_back(ctl);
          continue;
        }
        case 5:
          server.handle_line("{" + idq + ",\"type\":\"flaky\"}", sink);
          break;
        case 6:
          server.handle_line("{" + idq + ",\"type\":\"fatal\"}", sink);
          break;
        case 7:
          server.handle_line("{" + idq + ",\"type\":\"internal\"}", sink);
          break;
        case 8:
          server.handle_line("{" + idq + ",\"type\":\"budget\"}", sink);
          break;
        case 9:  // fault-injected device sim, cured by the recovery ladder
          server.handle_line(
              "{" + idq + ",\"type\":\"fault_rc\",\"fault_budget\":1}", sink);
          break;
        case 19:
          if (i % 400 == 19) {  // a few terminally diverging device sims
            server.handle_line(
                "{" + idq + ",\"type\":\"fault_rc\",\"fault_budget\":-1}",
                sink);
            break;
          }
          [[fallthrough]];
        default:
          server.handle_line(
              "{" + idq + ",\"type\":\"ok\",\"n\":" + std::to_string(i) + "}",
              sink);
          break;
      }
      my_jobs.push_back(id);
    }
    const std::lock_guard<std::mutex> lock(ids_mutex);
    job_ids.insert(job_ids.end(), my_jobs.begin(), my_jobs.end());
    control_ids.insert(control_ids.end(), my_controls.begin(),
                       my_controls.end());
  };

  std::vector<std::thread> submitters;
  for (int t = 0; t < kThreads; ++t) submitters.emplace_back(submitter, t);
  for (auto& t : submitters) t.join();
  server.wait_idle();

  // Every submitted job reached exactly one ending; tally them.
  const auto transcript = out.by_id();
  std::map<std::string, std::size_t> endings;
  for (const auto& id : job_ids) {
    const auto it = transcript.find(id);
    ASSERT_NE(it, transcript.end()) << id << " left no transcript";
    ++endings[check_lifecycle(id, it->second)];
  }
  // Control requests answer exactly once, synchronously.
  for (const auto& id : control_ids) {
    const auto it = transcript.find(id);
    ASSERT_NE(it, transcript.end()) << id;
    EXPECT_EQ(it->second.size(), 1u) << id;
    EXPECT_EQ(it->second.front().string_or("event", ""), "result") << id;
  }
  // Malformed lines produced their standalone empty-id rejections.
  const auto anonymous = transcript.find("");
  ASSERT_NE(anonymous, transcript.end());
  EXPECT_EQ(anonymous->second.size(), unaddressed_rejections.load());
  for (const auto& ev : anonymous->second) {
    EXPECT_EQ(ev.string_or("event", ""), "rejected");
  }

  // Global accounting: no leaked queue slots, no stuck jobs, counters add
  // up to the transcript.
  const ss::ServerStats stats = server.stats();
  EXPECT_EQ(stats.queue_depth, 0u);
  EXPECT_EQ(stats.admitted, stats.completed + stats.failed + stats.cancelled);
  EXPECT_EQ(stats.admitted,
            endings["result"] + endings["error"] + endings["cancelled"]);
  EXPECT_EQ(stats.completed, endings["result"]);
  EXPECT_EQ(stats.failed, endings["error"]);
  EXPECT_EQ(stats.cancelled, endings["cancelled"]);
  EXPECT_GT(stats.completed, 0u);
  EXPECT_GT(stats.failed, 0u);       // fatal/internal/budget modes
  EXPECT_GT(stats.retries, 0u);      // flaky mode
  EXPECT_GT(stats.rejected_invalid, 0u);
  EXPECT_GT(stats.cache.hits, 0u);   // repeated RC netlists hit the cache
  EXPECT_LE(stats.cache.entries, config.cache_entries);

  // The server is still healthy: a fresh job runs clean after the storm.
  Transcript after;
  server.handle_line(R"({"id":"after","type":"ok"})", after.sink());
  server.wait_idle();
  EXPECT_EQ(after.count("after", "result"), 1u);
}

TEST(ServiceSoak, NetlistResultsAreBitwiseEqualToDirectCalls) {
  ss::ServerConfig config;
  config.workers = 1;
  config.chunk_rows = 7;  // force multi-chunk reassembly
  const auto owned = std::make_unique<ss::Server>(config);
  ss::Server& server = *owned;

  Transcript out;
  server.handle_line(
      "{\"id\":\"rc\",\"type\":\"netlist\",\"netlist\":\"" + rc_netlist(0) +
          "\"}",
      out.sink());
  server.wait_idle();

  const auto events = out.events("rc");
  ASSERT_FALSE(events.empty());
  ASSERT_EQ(events.back().string_or("event", ""), "result");

  // Reassemble the streamed chunks into columns.
  std::vector<std::string> columns;
  std::vector<std::vector<double>> data;
  std::size_t rows_seen = 0;
  for (const auto& ev : events) {
    if (ev.string_or("event", "") != "chunk") continue;
    ASSERT_EQ(ev.string_or("kind", ""), "tran");
    if (columns.empty()) {
      for (const auto& name : ev.get("columns")->items()) {
        columns.push_back(name.as_string());
        data.emplace_back();
      }
    }
    EXPECT_EQ(ev.number_or("row_offset", -1),
              static_cast<double>(rows_seen));  // monotone chunk order
    for (const auto& row : ev.get("rows")->items()) {
      ASSERT_EQ(row.items().size(), columns.size());
      for (std::size_t c = 0; c < columns.size(); ++c) {
        data[c].push_back(row.items()[c].as_number());
      }
      ++rows_seen;
    }
  }
  ASSERT_GT(rows_seen, 0u);
  ASSERT_FALSE(columns.empty());
  EXPECT_EQ(columns.front(), "time");

  // The direct library call under the same options the service arms:
  // default SimOptions plus dtmax = 10 * tstep (the handler's rule).
  std::string netlist_text = rc_netlist(0);
  for (std::size_t nl = netlist_text.find("\\n"); nl != std::string::npos;
       nl = netlist_text.find("\\n")) {
    netlist_text.replace(nl, 2, "\n");
  }
  const auto ast = softfet::netlist::parse(netlist_text);
  auto net = softfet::netlist::elaborate(ast);
  net.circuit->prepare();
  softfet::sim::SimOptions options;
  options.dtmax = net.tran->tstep * 10.0;
  const auto tran =
      softfet::sim::run_transient(*net.circuit, net.tran->tstop, options);

  ASSERT_EQ(rows_seen, tran.time.size());
  for (std::size_t c = 0; c < columns.size(); ++c) {
    const std::vector<double>& direct =
        c == 0 ? tran.time : tran.table.signal(columns[c]);
    for (std::size_t row = 0; row < rows_seen; ++row) {
      // Bitwise: %.17g JSON numbers round-trip doubles exactly.
      EXPECT_EQ(data[c][row], direct[row])
          << columns[c] << " row " << row << " differs from the direct call";
    }
  }
  const ss::JsonValue* summary = events.back().get("tran");
  ASSERT_NE(summary, nullptr);
  EXPECT_EQ(summary->number_or("accepted_steps", -1),
            static_cast<double>(tran.accepted_steps));
}

TEST(ServiceSoak, KilledDaemonResumesMonteCarloBitwise) {
  const std::string state_dir =
      (fs::path(::testing::TempDir()) / "softfet-soak-state").string();
  fs::remove_all(state_dir);

  const char* kJob =
      R"({"id":"mc1","type":"monte_carlo","samples":12,"seed":9,"lanes":1,)"
      R"("checkpoint_every":1,"timeout_seconds":240})";

  ss::ServerConfig config;
  config.workers = 1;
  config.state_dir = state_dir;
  config.max_timeout_seconds = 300.0;

  // Phase 1: admit the job, let it make progress, then kill the daemon the
  // cooperative way a SIGTERM would (cancel in-flight, flush checkpoints,
  // keep journals).
  Transcript first;
  {
    const auto owned = std::make_unique<ss::Server>(config);
  ss::Server& server = *owned;
    server.handle_line(kJob, first.sink());
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(120);
    while (first.count("mc1", "progress") == 0 &&
           first.count("mc1", "result") == 0 &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    server.shutdown(/*cancel_inflight=*/true);
  }
  ASSERT_EQ(first.count("mc1", "result"), 0u)
      << "job finished before the kill; nothing left to resume";
  ASSERT_EQ(first.count("mc1", "cancelled"), 1u);
  ASSERT_TRUE(fs::exists(state_dir));

  // Phase 2: a fresh daemon over the same state dir re-admits the journaled
  // job and finishes it from the checkpoint.
  Transcript second;
  ss::JsonValue result;
  {
    const auto owned = std::make_unique<ss::Server>(config);
  ss::Server& server = *owned;
    const std::size_t resumed = server.resume_journaled(second.sink());
    EXPECT_EQ(resumed, 1u);
    server.wait_idle();
    const auto events = second.events("mc1");
    ASSERT_FALSE(events.empty());
    result = events.back();
    EXPECT_EQ(server.stats().resumed, 1u);
    server.shutdown(/*cancel_inflight=*/false);
  }
  ASSERT_EQ(result.string_or("event", ""), "result");
  // Terminal success removed the job's journal and checkpoint.
  EXPECT_TRUE(fs::is_empty(state_dir));

  // The direct, uninterrupted library call with the same study parameters.
  softfet::cells::InverterTestbenchSpec base;
  base.input_rising = false;
  base.dut.ptm = softfet::devices::PtmParams{};
  softfet::core::MonteCarloSpec mc;
  mc.samples = 12;
  mc.seed = 9;
  mc.lanes = 1;
  mc.threads = 1;
  const auto direct = softfet::core::ptm_monte_carlo(base, mc, {});

  EXPECT_EQ(result.number_or("samples", -1),
            static_cast<double>(direct.samples));
  EXPECT_EQ(result.number_or("failed_samples", -1),
            static_cast<double>(direct.failed_samples));
  // Bitwise equality of every statistic: the resumed run must reproduce the
  // uninterrupted study exactly (%.17g survives the JSON round trip).
  EXPECT_EQ(result.number_or("imax_mean", -1), direct.imax_mean);
  EXPECT_EQ(result.number_or("imax_std", -1), direct.imax_std);
  EXPECT_EQ(result.number_or("imax_worst", -1), direct.imax_worst);
  EXPECT_EQ(result.number_or("delay_mean", -1), direct.delay_mean);
  EXPECT_EQ(result.number_or("delay_std", -1), direct.delay_std);
  EXPECT_EQ(result.number_or("delay_worst", -1), direct.delay_worst);
  EXPECT_EQ(result.number_or("fraction_below_baseline", -1),
            direct.fraction_below_baseline);

  fs::remove_all(state_dir);
}
